#!/bin/sh
# verify.sh — the repo's verification gauntlet, in tiers.
#
# Tier 1 (fast, required for every change):
#   build + full test suite
# Tier 2 (static + concurrency, required for changes touching hot paths
#   or anything under internal/board / internal/parallel):
#   go vet + race detector on the concurrent packages
#
# Usage: scripts/verify.sh [tier]
#   scripts/verify.sh       # run all tiers
#   scripts/verify.sh 1     # tier 1 only
set -eu
cd "$(dirname "$0")/.."

tier="${1:-all}"

if [ "$tier" = 1 ] || [ "$tier" = all ]; then
	echo "== tier 1: build + tests =="
	go build ./...
	go test ./...
fi

if [ "$tier" = 2 ] || [ "$tier" = all ]; then
	echo "== tier 2: vet + race =="
	go vet ./...
	go test -race ./internal/board/... ./internal/chip/... ./internal/gbackend/... ./internal/hermite/... ./internal/parallel/...
fi

echo "verify: OK ($tier)"
