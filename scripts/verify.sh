#!/bin/sh
# verify.sh — the repo's verification gauntlet, in tiers.
#
# Tier 1 (fast, required for every change):
#   build + full test suite
# Tier 2 (static + concurrency, required for changes touching hot paths
#   or anything concurrent):
#   go vet + race detector across the whole module
# Tier 3 (repo-native static analysis, required for every change):
#   grapelint — the intraprocedural suite (noalloc/deterministic/
#   nodeprecated/gfixedboundary/goroutinejoin) plus the interprocedural
#   closures over the module call graph (noallocdeep/hotblock/
#   puritydeep) and the stale-suppression audit (DESIGN.md §7).
#   Findings fail the gauntlet.
# Tier 4 (fuzz, full gauntlet only):
#   the gfixed differential fuzz targets, 10s each — the rounding and
#   accumulation hot paths against their references.
#
# Usage: scripts/verify.sh [tier]
#   scripts/verify.sh       # run all tiers (the default gauntlet)
#   scripts/verify.sh 1     # tier 1 only
set -eu
cd "$(dirname "$0")/.."

tier="${1:-all}"

if [ "$tier" = 1 ] || [ "$tier" = all ]; then
	echo "== tier 1: build + tests =="
	go build ./...
	go test ./...
fi

if [ "$tier" = 2 ] || [ "$tier" = all ]; then
	echo "== tier 2: vet + race =="
	go vet ./...
	go test -race ./...
fi

if [ "$tier" = 3 ] || [ "$tier" = all ]; then
	echo "== tier 3: grapelint =="
	go run ./cmd/grapelint ./...
fi

if [ "$tier" = 4 ] || [ "$tier" = all ]; then
	echo "== tier 4: fuzz (10s per target) =="
	go test -run '^$' -fuzz '^FuzzRound$' -fuzztime=10s ./internal/gfixed/
	go test -run '^$' -fuzz '^FuzzAccumAdd$' -fuzztime=10s ./internal/gfixed/
fi

echo "verify: OK ($tier)"
