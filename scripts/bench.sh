#!/bin/sh
# bench.sh — run the steady-state perf benchmarks and record them in a
# BENCH_pr<k>.json trajectory file.
#
# Usage: scripts/bench.sh [out.json]
#
# With no argument the output name is derived from the committed
# trajectory: one past the highest BENCH_pr<k>.json present, so a new
# PR's run never silently clobbers its predecessor's file. CI (or a
# builder who knows the PR number) can pass the name explicitly.
#
# The tracked set covers the block-step hot path (predictor variants,
# small-block steps, raw chip throughput), the block-timestep scheduler
# against its retired O(N) scan baseline at N = 64k and N = 1M, the
# streamed j-memory force path and the Ahmad-Cohen steady state, the
# Fig. 13 headline run whose model Gflops double as a regression canary
# for the cycle model, the cache-blocked force kernel (full-depth chip
# and array passes plus the j-tile-length sweep validating the Fig. 14
# cache-model tile derivation), the multi-node virtual-time sweeps (ring
# at 2-16 hosts per NIC, hybrid at 1-4 clusters) whose per-phase
# breakdown totals track the co-simulation's communication accounting,
# the raw DES engine throughput (events/s on the handler and process
# paths, pinned allocation-free), the full-machine co-simulation (256
# ranks emulating 64 boards × 32 chips) whose ns/op is the tracked
# wall-clock, and the multi-tenant scheduler (the allocation-free
# submit→coalesce→dispatch round trip plus the 1/2/4/8-session tenancy
# sweep, whose psteps/s, batch-fill and fleet-idle metrics track how
# well cross-session coalescing keeps the shared pipelines full).
# A GOMAXPROCS sweep (via -cpu 1,2,4,8) over the array force kernel and
# the block-step benches records how the worker pool and the predict-
# ahead overlap scale with host cores; BenchmarkArrayDispatch tracks the
# pool's per-evaluation synchronization cost.
set -eu
cd "$(dirname "$0")/.."

if [ $# -ge 1 ]; then
	out="$1"
else
	last=$(ls BENCH_pr*.json 2>/dev/null |
		sed -n 's/^BENCH_pr\([0-9][0-9]*\)\.json$/\1/p' | sort -n | tail -1)
	out="BENCH_pr$((${last:-0} + 1)).json"
fi
tmp="$(mktemp)"
objs="$(mktemp)"
trap 'rm -f "$tmp" "$objs"' EXIT

# parse [sweep] — turn `go test -bench` output on stdin into one JSON
# object per line. Fields per input line:
#   name iters ns/op [value unit]... [B/op] [allocs/op]
# With sweep=1 the GOMAXPROCS value is taken from the benchmark name's
# -N suffix and recorded as "procs"; otherwise the suffix is stripped.
parse() {
	awk -v sweep="${1:-0}" '
	/^Benchmark/ {
		name = $1
		procs = ""
		if (match(name, /-[0-9]+$/)) {
			if (sweep) procs = substr(name, RSTART + 1)
			name = substr(name, 1, RSTART - 1)
		} else if (sweep) {
			# -cpu 1 runs carry no -N suffix.
			procs = 1
		}
		ns = ""; allocs = ""; gflops = ""
		vtime = ""; comm = ""; sync = ""; events = ""
		block = ""; mpairs = ""
		psteps = ""; fill = ""; idle = ""
		for (i = 3; i < NF; i++) {
			if ($(i+1) == "ns/op") ns = $i
			if ($(i+1) == "allocs/op") allocs = $i
			if ($(i+1) ~ /^Gflops/) gflops = $i
			if ($(i+1) == "vtime_s") vtime = $i
			if ($(i+1) == "comm_s") comm = $i
			if ($(i+1) == "sync_s") sync = $i
			if ($(i+1) == "events/s") events = $i
			if ($(i+1) == "particles/block") block = $i
			if ($(i+1) == "Mpairs/s") mpairs = $i
			if ($(i+1) == "psteps/s") psteps = $i
			if ($(i+1) == "fill") fill = $i
			if ($(i+1) == "idle") idle = $i
		}
		if (ns == "") next
		line = sprintf("{\"name\": \"%s\", \"ns_per_op\": %s", name, ns)
		if (procs != "") line = line sprintf(", \"procs\": %s", procs)
		if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
		if (gflops != "") line = line sprintf(", \"model_gflops\": %s", gflops)
		if (block != "") line = line sprintf(", \"particles_per_block\": %s", block)
		if (mpairs != "") line = line sprintf(", \"mpairs_per_s\": %s", mpairs)
		if (vtime != "") line = line sprintf(", \"vtime_s\": %s", vtime)
		if (comm != "") line = line sprintf(", \"comm_s\": %s", comm)
		if (sync != "") line = line sprintf(", \"sync_s\": %s", sync)
		if (events != "") line = line sprintf(", \"events_per_s\": %s", events)
		if (psteps != "") line = line sprintf(", \"psteps_per_s\": %s", psteps)
		if (fill != "") line = line sprintf(", \"fill\": %s", fill)
		if (idle != "") line = line sprintf(", \"idle\": %s", idle)
		print line "}"
	}' >> "$objs"
}

go test . -run '^$' \
	-bench 'BenchmarkPredictFull$|BenchmarkPredictStriped$|BenchmarkPredictSlotPatch$|BenchmarkSmallBlockStep$|BenchmarkEmulatedChipThroughput$|BenchmarkFig13SingleNode$|BenchmarkBlockSchedStep64k$|BenchmarkBlockScanStep64k$|BenchmarkAhmadCohenBlockStep$' \
	-benchmem -benchtime=1s | tee "$tmp"
parse < "$tmp"

# The 1M scheduler pair and the streamed force path carry seconds of
# per-round warmup, so they run a fixed iteration count.
go test . -run '^$' \
	-bench 'BenchmarkBlockSchedStep1M$|BenchmarkBlockScanStep1M$' \
	-benchmem -benchtime=100x | tee "$tmp"
parse < "$tmp"

go test . -run '^$' \
	-bench 'BenchmarkStreamLoadJ$' \
	-benchmem -benchtime=3x | tee "$tmp"
parse < "$tmp"

go test ./internal/chip -run '^$' \
	-bench 'BenchmarkForceBatch48$|BenchmarkForceBatch48x64k$|BenchmarkForceTiled$' \
	-benchmem -benchtime=1s | tee "$tmp"
parse < "$tmp"

go test ./internal/board -run '^$' \
	-bench 'BenchmarkArrayForces$|BenchmarkArrayForces64k$|BenchmarkArrayDispatch$' \
	-benchmem -benchtime=1s | tee "$tmp"
parse < "$tmp"

go test ./internal/des -run '^$' \
	-bench 'BenchmarkEngineEventsPerSec$|BenchmarkSleepProcCycle$' \
	-benchmem -benchtime=2s | tee "$tmp"
parse < "$tmp"

# Multi-tenant scheduler: the allocation-free dispatch round trip and the
# tenancy sweep (1/2/4/8 concurrent sessions sharing a two-array fleet;
# psteps/s is the aggregate throughput, fill the mean batch occupancy,
# idle the fraction of fleet time no tenant's evaluation occupied).
go test ./internal/grape6d -run '^$' \
	-bench 'BenchmarkSchedulerDispatch$' \
	-benchmem -benchtime=1s | tee "$tmp"
parse < "$tmp"

go test ./internal/grape6d -run '^$' \
	-bench 'BenchmarkTenancySweep' \
	-benchtime=20x | tee "$tmp"
parse < "$tmp"

# GOMAXPROCS sweep: how the striped force kernel and the end-to-end
# block step scale across 1/2/4/8 host cores.
go test ./internal/board -run '^$' -cpu 1,2,4,8 \
	-bench 'BenchmarkArrayForces$|BenchmarkArrayForces64k$' \
	-benchmem -benchtime=1s | tee "$tmp"
parse 1 < "$tmp"

go test . -run '^$' -cpu 1,2,4,8 \
	-bench 'BenchmarkSmallBlockStep$' \
	-benchmem -benchtime=1s | tee "$tmp"
parse 1 < "$tmp"

go test . -run '^$' -cpu 1,2,4,8 \
	-bench 'BenchmarkStreamLoadJ$' \
	-benchmem -benchtime=3x | tee "$tmp"
parse 1 < "$tmp"

# The co-simulations are deterministic in virtual time, so one iteration
# per configuration is the measurement — the metrics of interest are the
# virtual-time phase totals, not Go wall-clock; for the full machine the
# ns/op wall-clock itself is the tracked number (acceptance: < 10 s).
go test . -run '^$' \
	-bench 'BenchmarkCosimRing$|BenchmarkCosimHybrid$|BenchmarkCosimFullMachine$' \
	-benchtime=1x | tee "$tmp"
parse < "$tmp"

awk '
BEGIN { printf "[\n" }
NR > 1 { printf ",\n" }
{ printf "  %s", $0 }
END { printf "\n]\n" }
' "$objs" > "$out"

echo "bench: wrote $out"
