#!/bin/sh
# bench.sh — run the steady-state perf benchmarks and record them in
# BENCH_pr6.json so future PRs can track the trajectory.
#
# Usage: scripts/bench.sh [out.json]
#
# The tracked set covers the block-step hot path (predictor variants,
# small-block steps, raw chip throughput), the Fig. 13 headline run whose
# model Gflops double as a regression canary for the cycle model, the
# cache-blocked force kernel (full-depth chip and array passes plus the
# j-tile-length sweep validating the Fig. 14 cache-model tile derivation),
# the multi-node virtual-time sweeps (ring at 2-16 hosts per NIC, hybrid
# at 1-4 clusters) whose per-phase breakdown totals track the
# co-simulation's communication accounting, the raw DES engine throughput
# (events/s on the handler and process paths, pinned allocation-free),
# and the full-machine co-simulation (256 ranks emulating 64 boards × 32
# chips) whose ns/op is the wall-clock the engine rework targets.
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_pr6.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test . -run '^$' \
	-bench 'BenchmarkPredictFull$|BenchmarkPredictStriped$|BenchmarkPredictSlotPatch$|BenchmarkSmallBlockStep$|BenchmarkEmulatedChipThroughput$|BenchmarkFig13SingleNode$' \
	-benchmem -benchtime=1s | tee "$tmp"

go test ./internal/chip -run '^$' \
	-bench 'BenchmarkForceBatch48$|BenchmarkForceBatch48x64k$|BenchmarkForceTiled$' \
	-benchmem -benchtime=1s | tee -a "$tmp"

go test ./internal/board -run '^$' \
	-bench 'BenchmarkArrayForces$|BenchmarkArrayForces64k$' \
	-benchmem -benchtime=1s | tee -a "$tmp"

go test ./internal/des -run '^$' \
	-bench 'BenchmarkEngineEventsPerSec$|BenchmarkSleepProcCycle$' \
	-benchmem -benchtime=2s | tee -a "$tmp"

# The co-simulations are deterministic in virtual time, so one iteration
# per configuration is the measurement — the metrics of interest are the
# virtual-time phase totals, not Go wall-clock; for the full machine the
# ns/op wall-clock itself is the tracked number (acceptance: < 10 s).
go test . -run '^$' \
	-bench 'BenchmarkCosimRing$|BenchmarkCosimHybrid$|BenchmarkCosimFullMachine$' \
	-benchtime=1x | tee -a "$tmp"

# Parse `go test -bench` lines into JSON. Fields per line:
#   name iters ns/op [value unit]... [B/op] [allocs/op]
awk '
BEGIN { printf "[\n"; first = 1 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; allocs = ""; gflops = ""
	vtime = ""; comm = ""; sync = ""; events = ""
	for (i = 3; i < NF; i++) {
		if ($(i+1) == "ns/op") ns = $i
		if ($(i+1) == "allocs/op") allocs = $i
		if ($(i+1) ~ /^Gflops/) gflops = $i
		if ($(i+1) == "vtime_s") vtime = $i
		if ($(i+1) == "comm_s") comm = $i
		if ($(i+1) == "sync_s") sync = $i
		if ($(i+1) == "events/s") events = $i
	}
	if (ns == "") next
	if (!first) printf ",\n"
	first = 0
	printf "  {\"name\": \"%s\", \"ns_per_op\": %s", name, ns
	if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
	if (gflops != "") printf ", \"model_gflops\": %s", gflops
	if (vtime != "") printf ", \"vtime_s\": %s", vtime
	if (comm != "") printf ", \"comm_s\": %s", comm
	if (sync != "") printf ", \"sync_s\": %s", sync
	if (events != "") printf ", \"events_per_s\": %s", events
	printf "}"
}
END { printf "\n]\n" }
' "$tmp" > "$out"

echo "bench: wrote $out"
