// Kuiper-belt example: a scaled-down version of the paper's first
// production application (Section 5) — planetesimals in a disk around a
// central star, the Makino et al. (2003) early-Kuiper-belt setup. The full
// run used 1.8M particles for 16.30 hours at 33.4 Tflops on the real
// machine; here we integrate a laptop-sized disk functionally and then use
// the machine model to reproduce the paper-scale accounting.
//
//	go run ./examples/kuiperbelt
package main

import (
	"fmt"
	"log"
	"math"

	"grape6/internal/core"
	"grape6/internal/model"
	"grape6/internal/perfmodel"
	"grape6/internal/simnet"
	"grape6/internal/timing"
	"grape6/internal/xrand"
)

func main() {
	const n = 1000
	cfg := model.DefaultKuiperDisk(n)
	sys := model.Disk(cfg, xrand.New(7))

	// Planetesimal dynamics needs a softening far below the interparticle
	// spacing; the central star dominates every orbit.
	sim, err := core.NewSimulator(sys, core.Config{
		Backend: core.Direct,
		Eps:     1e-4,
		Eta:     0.05, // near-Keplerian orbits tolerate a larger eta
	})
	if err != nil {
		log.Fatal(err)
	}

	// Integrate for two inner-edge orbital periods.
	period := model.OrbitalPeriod(cfg.MCentral, cfg.RInner)
	e0 := sim.Energy()
	fmt.Printf("disk: %d planetesimals in [%.2g, %.2g], inner period %.3g\n",
		n, cfg.RInner, cfg.ROuter, period)

	for _, frac := range []float64{0.5, 1.0, 1.5, 2.0} {
		sim.Run(frac * period)
		snap := sim.Synchronized()
		// Eccentricity proxy: RMS radial velocity over Kepler speed.
		var sum float64
		for i := 1; i < snap.N; i++ {
			r := snap.Pos[i].Norm()
			vr := snap.Pos[i].Unit().Dot(snap.Vel[i])
			vk := math.Sqrt(cfg.MCentral / r)
			sum += (vr / vk) * (vr / vk)
		}
		fmt.Printf("t=%.3g orbits=%.1f  steps=%-9d rms(vr/vk)=%.4f |dE/E|=%.2e\n",
			sim.Time(), frac, sim.Steps(),
			math.Sqrt(sum/float64(snap.N-1)),
			math.Abs((sim.Energy()-e0)/e0))
	}

	// Paper-scale accounting on the modelled machine.
	fmt.Println("\npaper-scale accounting (model):")
	m := perfmodel.MultiCluster(4, simnet.Intel82540EM, perfmodel.P4)
	rep := timing.EstimateApplication(m, timing.KuiperBelt)
	fmt.Printf("  1.8M particles, 1.911e10 steps → %.1f hours at %.1f Tflops\n",
		rep.Hours(), rep.Tflops)
	fmt.Printf("  paper reports: 16.30 hours at 33.4 Tflops\n")
}
