// NIC tuning study: the Section 4.4 experiment as a library demo. The
// paper swapped the Gigabit NIC and frontend (NS83820+Athlon → Intel
// 82540EM+P4) and gained 50-100% across the whole N range because the
// parallel code is synchronization-latency bound. This example reproduces
// that comparison two ways:
//
//  1. analytically, with the machine performance model, across N; and
//  2. at message level, running the real copy-algorithm co-simulation over
//     the simulated network at a laptop-feasible N.
//
// go run ./examples/nicstudy
package main

import (
	"fmt"
	"log"

	"grape6/internal/hermite"
	"grape6/internal/model"
	"grape6/internal/parallel"
	"grape6/internal/perfmodel"
	"grape6/internal/sched"
	"grape6/internal/simnet"
	"grape6/internal/units"
	"grape6/internal/xrand"
)

func main() {
	fmt.Println("— analytic model: 16-node machine speed across N —")
	w, err := sched.FitWorkload(units.SoftConstant, []int{256, 512, 1024}, 0.25, 1)
	if err != nil {
		log.Fatal(err)
	}
	old := perfmodel.MultiCluster(4, simnet.NS83820, perfmodel.Athlon)
	tuned := perfmodel.MultiCluster(4, simnet.Intel82540EM, perfmodel.P4)
	myri := perfmodel.MultiCluster(4, simnet.Myrinet, perfmodel.P4)
	fmt.Printf("%-10s %14s %14s %14s %8s\n", "N", "NS83820", "Intel82540EM", "Myrinet", "gain")
	for _, n := range []int{10000, 30000, 100000, 300000, 1000000, 1800000} {
		nb := w.MeanBlockSize(n)
		a := old.Speed(n, nb) / 1e12
		b := tuned.Speed(n, nb) / 1e12
		c := myri.Speed(n, nb) / 1e12
		fmt.Printf("%-10d %11.2f Tf %11.2f Tf %11.2f Tf %7.0f%%\n", n, a, b, c, 100*(b/a-1))
	}
	fmt.Println("paper: 50-100% improvement; 36.0 Tflops at N=1.8M")

	fmt.Println("\n— message-level co-simulation: 4-host copy algorithm, N=256 —")
	for _, tc := range []struct {
		label string
		nic   simnet.NIC
		host  perfmodel.HostProfile
	}{
		{"NS83820 + Athlon", simnet.NS83820, perfmodel.Athlon},
		{"Tigon2 + Athlon", simnet.Tigon2, perfmodel.Athlon},
		{"Intel82540EM + P4", simnet.Intel82540EM, perfmodel.P4},
		{"Myrinet-class + P4", simnet.Myrinet, perfmodel.P4},
	} {
		sys := model.Plummer(256, xrand.New(3))
		res, err := parallel.RunCopy(sys, 0.125, parallel.Config{
			Hosts:   4,
			NIC:     tc.nic,
			Machine: perfmodel.SingleNode(tc.nic, tc.host),
			Params:  hermite.DefaultParams(1.0 / 64),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s virtual wall %8.4fs  %9.0f steps/s  %7d msgs\n",
			tc.label, res.VirtualTime, res.StepsPerSecond(), res.Messages)
	}
	fmt.Println("\nlatency, not bandwidth, sets the rate — the paper's conclusion")
}
