// Quickstart: integrate a small Plummer model on the emulated GRAPE-6 for
// one Heggie time unit — the paper's benchmark workload in miniature — and
// verify energy conservation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"grape6/internal/core"
	"grape6/internal/model"
	"grape6/internal/units"
	"grape6/internal/xrand"
)

func main() {
	const n = 256
	eps := units.Softening(units.SoftConstant, n) // ε = 1/64, as in Section 4

	sys := model.Plummer(n, xrand.New(42))
	sim, err := core.NewSimulator(sys, core.Config{
		Backend: core.Grape, // bit-faithful hardware emulation
		Eps:     eps,
		Boards:  1,
	})
	if err != nil {
		log.Fatal(err)
	}

	e0 := sim.Energy()
	fmt.Printf("N=%d Plummer model, E0=%.6f (Heggie units: want ≈ -0.25)\n", n, e0)

	for _, t := range []float64{0.25, 0.5, 0.75, 1.0} {
		sim.Run(t)
		e := sim.Energy()
		fmt.Printf("t=%.2f  steps=%-8d blocks=%-6d |dE/E|=%.2e\n",
			sim.Time(), sim.Steps(), sim.Blocks(), math.Abs((e-e0)/e0))
	}

	fmt.Printf("\npairwise interactions: %d (%.3g flops at 57/interaction)\n",
		sim.Interactions(), sim.Flops())
	fmt.Printf("emulated hardware busy cycles: %d\n", sim.HardwareCycles())
	fmt.Println("\nThe same run on a machine with a different board count gives")
	fmt.Println("bit-identical trajectories — the GRAPE-6 block-floating-point")
	fmt.Println("property of Section 3.4. Try it: change Boards above.")
}
