// Cluster-evolution example: the collisional-dynamics use case that
// motivates the whole GRAPE program (Section 1) — a star cluster followed
// over many crossing times, with the structural diagnostics the frontend
// hosts compute on the fly (Lagrangian radii, core radius) and a
// checkpoint/restart in the middle, as production runs do.
//
//	go run ./examples/clusterlife
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"

	"grape6/internal/core"
	"grape6/internal/diag"
	"grape6/internal/model"
	"grape6/internal/units"
	"grape6/internal/xrand"
)

func main() {
	const n = 512
	eps := units.Softening(units.SoftNDependent, n)
	sys := model.Plummer(n, xrand.New(2003))

	sim, err := core.NewSimulator(sys, core.Config{Backend: core.Direct, Eps: eps})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("N=%d cluster, eps=%.4g, relaxation time ≈ %.1f Heggie units\n",
		n, eps, units.RelaxationTime(n))
	fmt.Printf("%-6s %-10s %-9s %-9s %-9s %-9s %-10s\n",
		"t", "steps", "r10%", "r50%", "r90%", "r_core", "|dE/E|")

	e0 := sim.Energy()
	report := func() {
		snap := sim.Synchronized()
		rs, err := diag.LagrangianRadii(snap, []float64{0.1, 0.5, 0.9})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6.2f %-10d %-9.4f %-9.4f %-9.4f %-9.4f %-10.2e\n",
			sim.Time(), sim.Steps(), rs[0], rs[1], rs[2],
			diag.CoreRadius(snap), math.Abs((sim.Energy()-e0)/e0))
	}

	report()
	for t := 0.5; t <= 2.0; t += 0.5 {
		sim.Run(t)
		report()
	}

	// Mid-run checkpoint and restart — the mechanism behind the paper's
	// "including file operations" accounting.
	var ckpt bytes.Buffer
	if err := sim.Checkpoint(&ckpt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncheckpoint at t=%.2f: %d bytes\n", sim.Time(), ckpt.Len())

	sim2, err := core.Restore(&ckpt, core.Config{Backend: core.Direct})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restarted; continuing to t=3\n")
	sim = sim2
	for t := 2.5; t <= 3.0; t += 0.5 {
		sim.Run(t)
		report()
	}
	fmt.Println("\nthe half-mass radius stays near the Plummer value while the")
	fmt.Println("core fluctuates — two-body relaxation needs many more crossing")
	fmt.Println("times (t_rh grows ∝ N/log N: the paper's cost argument)")
}
