// Black-hole-binary example: a scaled-down version of the paper's second
// production application (Section 5) — two massive "black hole" particles
// (0.5% of the system mass each) embedded in a Plummer model. The paper
// integrated 2M particles for 36 time units (37.19 hours, 35.3 Tflops);
// here we follow the binary's orbital decay in a laptop-sized cluster and
// reproduce the paper-scale accounting with the machine model.
//
//	go run ./examples/blackholebinary
package main

import (
	"fmt"
	"log"

	"grape6/internal/binaries"
	"grape6/internal/core"
	"grape6/internal/model"
	"grape6/internal/perfmodel"
	"grape6/internal/simnet"
	"grape6/internal/timing"
	"grape6/internal/units"
	"grape6/internal/xrand"
)

func main() {
	const n = 512
	sys := model.PlummerWithBlackHoles(n, 0.005, 0.3, xrand.New(11))
	bh1, bh2 := n, n+1 // the two massive particles

	sim, err := core.NewSimulator(sys, core.Config{
		Backend: core.Direct,
		Eps:     units.Softening(units.SoftConstant, n),
	})
	if err != nil {
		log.Fatal(err)
	}

	e0 := sim.Energy()
	fmt.Printf("N=%d field + 2 BHs (m=%.3g each), initial separation %.3g\n",
		n, sys.Mass[bh1], sys.Pos[bh1].Dist(sys.Pos[bh2]))

	for _, t := range []float64{0.5, 1.0, 1.5, 2.0} {
		sim.Run(t)
		snap := sim.Synchronized()
		sep := snap.Pos[bh1].Dist(snap.Pos[bh2])
		if b, bound := binaries.Track(snap, bh1, bh2); bound {
			fmt.Printf("t=%.2f  sep=%.4f  BOUND: a=%.4f e=%.3f hardness=%.1f  steps=%-9d |dE/E|=%.2e\n",
				sim.Time(), sep, b.SemiMajor, b.Ecc, b.Hardness, sim.Steps(), rel(sim.Energy(), e0))
		} else {
			fmt.Printf("t=%.2f  sep=%.4f  unbound pair              steps=%-9d |dE/E|=%.2e\n",
				sim.Time(), sep, sim.Steps(), rel(sim.Energy(), e0))
		}
	}
	fmt.Println("\nthe pair sinks by dynamical friction and hardens (Heggie's law)")
	fmt.Println("— the physics whose N-dependence motivated the 2M-particle run")

	fmt.Println("\npaper-scale accounting (model):")
	m := perfmodel.MultiCluster(4, simnet.Intel82540EM, perfmodel.P4)
	rep := timing.EstimateApplication(m, timing.BHBinary)
	fmt.Printf("  2M particles, 4.143e10 steps → %.1f hours at %.1f Tflops\n",
		rep.Hours(), rep.Tflops)
	fmt.Printf("  paper reports: 37.19 hours at 35.3 Tflops\n")
}

func rel(a, b float64) float64 {
	d := (a - b) / b
	if d < 0 {
		return -d
	}
	return d
}
