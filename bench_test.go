// Benchmarks regenerating the paper's evaluation: one testing.B target per
// table and figure (see DESIGN.md's experiment index). Each benchmark
// reports domain metrics through b.ReportMetric — model Gflops/Tflops at
// headline N, crossover locations — in addition to Go's wall-clock, so
// `go test -bench=.` doubles as the reproduction report.
package grape6_test

import (
	"fmt"
	"math"
	"testing"

	"grape6/internal/bench"
	"grape6/internal/chip"
	"grape6/internal/direct"
	"grape6/internal/gbackend"
	"grape6/internal/hermite"
	"grape6/internal/model"
	"grape6/internal/parallel"
	"grape6/internal/perfmodel"
	"grape6/internal/simnet"
	"grape6/internal/units"
	"grape6/internal/xrand"

	gboard "grape6/internal/board"
)

// benchOpts share workload fits across benchmarks in this file.
var benchOpts = bench.QuickOptions()

func reportSeriesAt(b *testing.B, e bench.Experiment, label string, n int, metric string) {
	b.Helper()
	s := e.FindSeries(label)
	if s == nil {
		b.Fatalf("missing series %q", label)
	}
	v, ok := s.ValueAt(n)
	if !ok {
		b.Fatalf("missing N=%d in series %q", n, label)
	}
	b.ReportMetric(v, metric)
}

// BenchmarkTable1Peak regenerates the hardware inventory (Sections 1-2).
func BenchmarkTable1Peak(b *testing.B) {
	var e bench.Experiment
	for i := 0; i < b.N; i++ {
		e = bench.RunT1()
	}
	reportSeriesAt(b, e, "peak speed", 1, "Gflops/chip")
	reportSeriesAt(b, e, "peak speed", 2048, "Gflops/machine")
}

// BenchmarkFig13SingleNode regenerates Figure 13.
func BenchmarkFig13SingleNode(b *testing.B) {
	var e bench.Experiment
	var err error
	for i := 0; i < b.N; i++ {
		e, err = bench.RunF13(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeriesAt(b, e, "eps=1/64", 300000, "Gflops@3e5")
}

// BenchmarkFig14TimePerStep regenerates Figure 14.
func BenchmarkFig14TimePerStep(b *testing.B) {
	var e bench.Experiment
	var err error
	for i := 0; i < b.N; i++ {
		e, err = bench.RunF14(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeriesAt(b, e, "model: cache-aware T_host", 100000, "s/step@1e5")
}

// BenchmarkFig15MultiNode regenerates Figure 15.
func BenchmarkFig15MultiNode(b *testing.B) {
	var e bench.Experiment
	var err error
	for i := 0; i < b.N; i++ {
		e, err = bench.RunF15(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeriesAt(b, e, "4-node, eps=1/64", 100000, "Gflops@1e5")
}

// BenchmarkFig16FourNode regenerates Figure 16.
func BenchmarkFig16FourNode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunF16(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig17MultiCluster regenerates Figure 17.
func BenchmarkFig17MultiCluster(b *testing.B) {
	var e bench.Experiment
	var err error
	for i := 0; i < b.N; i++ {
		e, err = bench.RunF17(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeriesAt(b, e, "16-node (4 clusters)", 1000000, "Tflops@1e6")
}

// BenchmarkFig18SixteenNode regenerates Figure 18.
func BenchmarkFig18SixteenNode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunF18(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig19NICTuning regenerates Figure 19.
func BenchmarkFig19NICTuning(b *testing.B) {
	var e bench.Experiment
	var err error
	for i := 0; i < b.N; i++ {
		e, err = bench.RunF19(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeriesAt(b, e, "Intel82540EM + P4", 1000000, "Tflops@1e6")
	reportSeriesAt(b, e, "NS83820 + Athlon", 1000000, "Tflops@1e6-untuned")
}

// BenchmarkTable5Kuiper and BenchmarkTable5BHBinary regenerate the
// Section 5 application accounting.
func BenchmarkTable5Kuiper(b *testing.B) {
	var e bench.Experiment
	var err error
	for i := 0; i < b.N; i++ {
		e, err = bench.RunApplications(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeriesAt(b, e, "sustained speed", 1800000, "Tflops")
	reportSeriesAt(b, e, "wall-clock", 1800000, "hours")
}

func BenchmarkTable5BHBinary(b *testing.B) {
	var e bench.Experiment
	var err error
	for i := 0; i < b.N; i++ {
		e, err = bench.RunApplications(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeriesAt(b, e, "sustained speed", 2000000, "Tflops")
	reportSeriesAt(b, e, "wall-clock", 2000000, "hours")
}

// BenchmarkTable5Treecode regenerates the treecode comparison.
func BenchmarkTable5Treecode(b *testing.B) {
	var e bench.Experiment
	var err error
	for i := 0; i < b.N; i++ {
		e, err = bench.RunTreecode(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeriesAt(b, e, "particle steps per second", 1, "steps/s-grape6")
}

// BenchmarkCosim runs the message-level co-simulation companion.
func BenchmarkCosim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunCosim(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches (DESIGN.md §6).
func BenchmarkAblationMantissa(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblationMantissa(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationAccumulator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblationAccumulator(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationVMP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblationVMP(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMyrinet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblationMyrinet(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationHostGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblationHostGrid(benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmulatedChipThroughput measures the raw emulation speed of one
// pipeline chip: pairwise interactions per second of host time.
func BenchmarkEmulatedChipThroughput(b *testing.B) {
	sys := model.Plummer(2048, xrand.New(1))
	ch := chip.New(chip.Default)
	js := make([]chip.JParticle, sys.N)
	f := chip.Default.Format
	for i := 0; i < sys.N; i++ {
		p, err := chip.MakeJParticle(f, i, 0, sys.Mass[i], sys.Pos[i], sys.Vel[i], sys.Acc[i], sys.Jerk[i], sys.Snap[i])
		if err != nil {
			b.Fatal(err)
		}
		js[i] = p
	}
	if err := ch.LoadJ(js); err != nil {
		b.Fatal(err)
	}
	is := make([]chip.IParticle, 48)
	for k := range is {
		x, v := chip.PredictParticle(f, &js[k], 0)
		is[k] = chip.IParticle{X: x, V: v, SelfID: k, ExpAcc: 4, ExpJerk: 6, ExpPot: 6}
	}
	dst := make([]chip.Partial, len(is))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.ForceBatchInto(dst, 0, is, 1.0/64)
	}
	b.ReportMetric(float64(48*sys.N*b.N)/b.Elapsed().Seconds(), "pairs/s")
}

// predictChip loads one default chip with n Plummer particles for the
// predictor benchmarks.
func predictChip(b *testing.B, n int) (*chip.Chip, []chip.JParticle) {
	b.Helper()
	sys := model.Plummer(n, xrand.New(3))
	ch := chip.New(chip.Default)
	f := chip.Default.Format
	js := make([]chip.JParticle, sys.N)
	for i := 0; i < sys.N; i++ {
		p, err := chip.MakeJParticle(f, i, 0, sys.Mass[i], sys.Pos[i], sys.Vel[i], sys.Acc[i], sys.Jerk[i], sys.Snap[i])
		if err != nil {
			b.Fatal(err)
		}
		js[i] = p
	}
	if err := ch.LoadJ(js); err != nil {
		b.Fatal(err)
	}
	return ch, js
}

// BenchmarkPredictFull is the pre-existing predictor cost: one serial
// whole-memory predict per op, with the time advancing every iteration so
// the same-t memo never hits (the individual-timestep regime).
func BenchmarkPredictFull(b *testing.B) {
	ch, _ := predictChip(b, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Predict(float64(i+1) * math.Ldexp(1, -30))
	}
}

// BenchmarkPredictStriped runs the same predict pass striped across the
// host's cores through PredictRange — the board predict stage's inner
// loop. On a single-core host it degenerates to the serial pass.
func BenchmarkPredictStriped(b *testing.B) {
	ch, _ := predictChip(b, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := float64(i+1) * math.Ldexp(1, -30)
		direct.ParallelFor(ch.NJ(), 512, func(lo, hi int) {
			ch.PredictRange(t, lo, hi)
		})
		ch.MarkPredicted(t)
	}
}

// BenchmarkPredictSlotPatch measures the corrector write path when the
// prediction cache is current: WriteJ re-predicts only the touched slot,
// O(1) instead of the O(N_j) whole-memory invalidation it replaced.
func BenchmarkPredictSlotPatch(b *testing.B) {
	ch, js := predictChip(b, 4096)
	ch.Predict(math.Ldexp(1, -10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ch.WriteJ(i%len(js), js[i%len(js)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSmallBlockStep is the Figure 14 small-block regime end to end:
// an individual-timestep integration on an emulated 4-chip attachment in
// steady state, where every block advances the time and the predictor
// would dominate without the parallel predict stage and slot patching.
func BenchmarkSmallBlockStep(b *testing.B) {
	cfg := gboard.Default
	cfg.ChipsPerModule = 2
	cfg.ModulesPerBoard = 2
	cfg.Boards = 1 // 4 chips
	sys := model.Plummer(2048, xrand.New(11))
	it, err := hermite.New(sys, gbackend.New(gboard.New(cfg)), hermite.DefaultParams(1.0/64))
	if err != nil {
		b.Fatal(err)
	}
	// Settle out of the synchronised start into individual-timestep steady
	// state, where blocks are small.
	for i := 0; i < 64; i++ {
		it.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		steps += int64(it.Step().Size)
	}
	b.ReportMetric(float64(steps)/float64(b.N), "particles/block")
}

// BenchmarkHermiteOnEmulatedHardware measures end-to-end integration speed
// on a small emulated attachment.
func BenchmarkHermiteOnEmulatedHardware(b *testing.B) {
	cfg := gboard.Default
	cfg.ChipsPerModule = 2
	cfg.ModulesPerBoard = 2
	cfg.Boards = 1
	for i := 0; i < b.N; i++ {
		sys := model.Plummer(64, xrand.New(9))
		it, err := hermite.New(sys, gbackend.New(gboard.New(cfg)), hermite.DefaultParams(1.0/64))
		if err != nil {
			b.Fatal(err)
		}
		it.Run(1.0 / 32)
	}
}

// cosimBench runs one recorded multi-node co-simulation and reports the
// virtual-time phase decomposition as benchmark metrics, so the tracked
// JSON carries the per-NIC breakdown trajectory alongside wall-clock.
func cosimBench(b *testing.B, run func() (*parallel.Result, error)) {
	var res *parallel.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = run()
		if err != nil {
			b.Fatal(err)
		}
	}
	m := res.Breakdown.Mean()
	b.ReportMetric(res.VirtualTime, "vtime_s")
	b.ReportMetric(m.Host(), "host_s")
	b.ReportMetric(m.Grape(), "grape_s")
	b.ReportMetric(m.Comm(), "comm_s")
	b.ReportMetric(m.Sync(), "sync_s")
	b.ReportMetric(res.StepsPerSecond(), "steps/vs")
}

func cosimConfig(hosts int, nic simnet.NIC) parallel.Config {
	eps := units.Softening(units.SoftConstant, 128)
	return parallel.Config{
		Hosts:   hosts,
		NIC:     nic,
		Machine: perfmodel.SingleNode(nic, perfmodel.Athlon),
		Params:  hermite.DefaultParams(eps),
		Record:  true,
	}
}

// BenchmarkCosimRing sweeps the ring algorithm over host counts and NIC
// generations (the Figure 15/19 axes) with phase accounting on.
func BenchmarkCosimRing(b *testing.B) {
	for _, nc := range []struct {
		name string
		nic  simnet.NIC
	}{{"ns83820", simnet.NS83820}, {"intel82540em", simnet.Intel82540EM}} {
		for _, hosts := range []int{2, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/hosts=%d", nc.name, hosts), func(b *testing.B) {
				cfg := cosimConfig(hosts, nc.nic)
				cosimBench(b, func() (*parallel.Result, error) {
					return parallel.RunRing(model.Plummer(128, xrand.New(1)), 0.03125, cfg)
				})
			})
		}
	}
}

// BenchmarkCosimHybrid sweeps the production clusters×grid structure
// (Figure 17 axes) with phase accounting on.
func BenchmarkCosimHybrid(b *testing.B) {
	for _, sh := range []struct{ clusters, hosts int }{{1, 4}, {2, 8}, {4, 16}} {
		b.Run(fmt.Sprintf("clusters=%d/hosts=%d", sh.clusters, sh.hosts), func(b *testing.B) {
			cfg := cosimConfig(sh.hosts, simnet.NS83820)
			cosimBench(b, func() (*parallel.Result, error) {
				return parallel.RunHybrid(model.Plummer(128, xrand.New(1)), 0.03125, sh.clusters, cfg)
			})
		})
	}
}

// BenchmarkCosimFullMachine is the Figure 19 flagship: the complete
// 64-board × 32-chip machine as a 4-cluster hybrid co-simulation over 256
// ranks (8 chips each), N=2048, gigabit ethernet, P4 frontends. One
// iteration is a full t=1/32 integration — run with -benchtime=1x; the
// wall-clock per iteration is the number the allocation-free DES rework
// drives (< 10 s is the acceptance bar on one core).
func BenchmarkCosimFullMachine(b *testing.B) {
	const clusters, ranks = 4, 256
	m, err := perfmodel.ShardedFleet(clusters, ranks, 64, 32, simnet.Intel82540EM, perfmodel.P4)
	if err != nil {
		b.Fatal(err)
	}
	cfg := parallel.Config{
		Hosts:   ranks,
		NIC:     simnet.Intel82540EM,
		Machine: m,
		Params:  hermite.DefaultParams(units.Softening(units.SoftConstant, 2048)),
		Record:  true,
	}
	cosimBench(b, func() (*parallel.Result, error) {
		return parallel.RunHybrid(model.Plummer(2048, xrand.New(1)), 0.03125, clusters, cfg)
	})
}
