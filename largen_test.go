// Large-N smoke: the paper's production regime is N ≈ 1-2M, far beyond
// what an O(N²)-initialised integration can cover in a test budget. This
// file exercises the two scaling mechanisms this regime depends on — the
// bucketed block-timestep scheduler and the paged j-memory streaming —
// directly at N = 64k, in a few seconds.
package grape6_test

import (
	"math"
	"testing"

	"grape6/internal/chip"
	"grape6/internal/gbackend"
	"grape6/internal/model"
	"grape6/internal/nbody"
	"grape6/internal/xrand"

	gboard "grape6/internal/board"
)

// syntheticSteps assigns a power-law-ish mix of commensurate power-of-two
// steps to sys, mimicking a settled block-timestep distribution.
func syntheticSteps(sys *nbody.System, rng *xrand.Source, minExp, maxExp int) {
	for i := 0; i < sys.N; i++ {
		e := minExp + rng.Intn(maxExp-minExp+1)
		sys.Step[i] = math.Ldexp(1, e)
		sys.Time[i] = 0
	}
}

func TestLargeN64kSchedulerSmoke(t *testing.T) {
	// 64k particles, settled synthetic step spectrum: drive 64 blocks and
	// hold the scheduler to the O(N)-scan reference at every one.
	const n = 65536
	sys := nbody.New(n)
	rng := xrand.New(1009)
	syntheticSteps(sys, rng, -16, -9)
	s := nbody.NewBlockSched(sys)
	var block []int
	var total int
	for b := 0; b < 64; b++ {
		wantT := sys.MinTime()
		if got := s.NextTime(); got != wantT {
			t.Fatalf("block %d: NextTime %v, want %v", b, got, wantT)
		}
		block = s.AppendBlock(sys, wantT, block[:0])
		wantSize := 0
		for i := 0; i < n; i++ {
			if sys.Time[i]+sys.Step[i] == wantT {
				wantSize++
			}
		}
		if len(block) != wantSize {
			t.Fatalf("block %d: size %d, want %d", b, len(block), wantSize)
		}
		total += len(block)
		for _, i := range block {
			sys.Time[i] = wantT
			// Random commensurate walk keeps the spectrum evolving.
			switch rng.Intn(4) {
			case 0:
				if sys.Step[i] > math.Ldexp(1, -20) {
					sys.Step[i] /= 2
				}
			case 1:
				d := 2 * sys.Step[i]
				if wantT == math.Trunc(wantT/d)*d {
					sys.Step[i] = d
				}
			}
			s.Rebin(sys, i)
		}
		if s.Bins() < 1 || s.Bins() > 64 {
			t.Fatalf("block %d: implausible bin occupancy %d", b, s.Bins())
		}
	}
	if total == 0 {
		t.Fatal("no particles stepped")
	}
}

func TestLargeN64kPagedForceSmoke(t *testing.T) {
	// A 64k j-set forced through 4 chips of 4096 slots (16k resident —
	// 4 pages) must reproduce the fully resident evaluation bit for bit.
	if testing.Short() {
		t.Skip("large-N smoke skipped in -short")
	}
	const n = 65536
	sys := model.Plummer(n, xrand.New(2027))

	force := func(memCapacity int) ([]chip.Partial, bool) {
		cfg := gboard.Default
		cfg.ChipsPerModule = 2
		cfg.ModulesPerBoard = 2
		cfg.Boards = 1 // 4 chips
		cfg.Chip.MemCapacity = memCapacity
		arr := gboard.New(cfg)
		defer arr.Close()
		bk := gbackend.New(arr)
		bk.Load(sys)
		f := cfg.Chip.Format

		const ni = 8
		is := make([]chip.IParticle, ni)
		for q := 0; q < ni; q++ {
			i := q * (n / ni)
			p, err := chip.MakeJParticle(f, sys.ID[i], 0, sys.Mass[i], sys.Pos[i], sys.Vel[i],
				sys.Acc[i], sys.Jerk[i], sys.Snap[i])
			if err != nil {
				t.Fatal(err)
			}
			x, v := chip.PredictParticle(f, &p, 0)
			is[q] = chip.IParticle{X: x, V: v, SelfID: p.ID, ExpAcc: 4, ExpJerk: 6, ExpPot: 6}
		}
		dst := make([]chip.Partial, ni)
		arr.ForcesInto(dst, 0, is, 1.0/64)
		paged := arr.NJ() > memCapacity*cfg.TotalChips()
		return dst, paged
	}

	want, wantPaged := force(65536) // resident
	got, gotPaged := force(4096)    // 4-page streaming
	if wantPaged {
		t.Fatal("reference run unexpectedly paged")
	}
	if !gotPaged {
		t.Fatal("streaming run did not engage paged mode")
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("partial %d differs between resident and paged at N=64k", i)
		}
	}
}
