// Command grape6topo inspects the machine topology: the cluster wiring of
// Figures 1-3 (hosts, network boards, processor boards, LVDS links), the
// legal partitions of a cluster into sub-units, and the peak-speed
// inventory of any configuration.
//
//	grape6topo                     # the production 4-cluster machine
//	grape6topo -partition perhost  # each host with its own boards
//	grape6topo -partition half     # two 2-host sub-units
package main

import (
	"flag"
	"fmt"
	"os"

	"grape6/internal/netboard"
	"grape6/internal/perfmodel"
	"grape6/internal/simnet"
)

func main() {
	var (
		part = flag.String("partition", "whole", "cluster partition: whole, perhost, half")
	)
	flag.Parse()

	full := perfmodel.MultiCluster(4, simnet.Intel82540EM, perfmodel.P4)
	fmt.Println("GRAPE-6 production machine")
	fmt.Printf("  %d clusters x %d hosts x %d boards x %d chips = %d chips\n",
		full.Clusters, full.HostsPerCl, full.BoardsPerHost,
		full.HW.ChipsPerBoard, full.TotalChips())
	fmt.Printf("  peak %.2f Tflops (57 flops/interaction at %.0f MHz, %d pipes x %d-way VMP)\n",
		full.PeakFlops()/1e12, full.HW.ClockHz/1e6, full.HW.Pipelines, full.HW.VMP)
	fmt.Printf("  per-host i-parallelism: %d particles per pipeline pass\n\n", full.HW.IBatch())

	c := netboard.Production
	var p netboard.Partition
	switch *part {
	case "whole":
		p = c.WholeCluster()
	case "perhost":
		p = c.PerHost()
	case "half":
		p = netboard.Partition{Units: []netboard.Unit{
			{Hosts: []int{0, 1}, Boards: ints(0, 7)},
			{Hosts: []int{2, 3}, Boards: ints(8, 15)},
		}}
	default:
		fmt.Fprintf(os.Stderr, "grape6topo: unknown partition %q\n", *part)
		os.Exit(2)
	}
	if err := c.ValidatePartition(p); err != nil {
		fmt.Fprintf(os.Stderr, "grape6topo: invalid partition: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(c.Describe(p))

	fmt.Println("\nLVDS link timing (Section 3.3 serial channels):")
	for _, bytes := range []int{72, 1024, 65536} {
		bt, err := c.BroadcastTime(0, p.Units[0], bytes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "grape6topo: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  broadcast %6d B to unit 0: %8.2f µs\n", bytes, bt*1e6)
	}
}

func ints(lo, hi int) []int {
	var out []int
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}
