// Command grape6bench regenerates the paper's tables and figures. Each
// experiment id matches DESIGN.md's index:
//
//	grape6bench -exp f13          # Figure 13: single-node speed vs N
//	grape6bench -exp all          # everything
//	grape6bench -exp f19 -quick   # fast, low-fidelity pass
//
// Output is a text rendition of each figure: one labelled series per
// curve, with the paper's reported result quoted alongside.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"grape6/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (t1, f13..f19, t5ab, t5c, cosim, a1..a5, all)")
		quick = flag.Bool("quick", false, "reduced-fidelity fast mode")
		seed  = flag.Uint64("seed", 20031115, "random seed for workload sampling")
	)
	flag.Parse()

	opts := bench.DefaultOptions()
	if *quick {
		opts = bench.QuickOptions()
	}
	opts.Seed = *seed

	runners := map[string]func() (bench.Experiment, error){
		"t1":    func() (bench.Experiment, error) { return bench.RunT1(), nil },
		"f13":   func() (bench.Experiment, error) { return bench.RunF13(opts) },
		"f14":   func() (bench.Experiment, error) { return bench.RunF14(opts) },
		"f15":   func() (bench.Experiment, error) { return bench.RunF15(opts) },
		"f16":   func() (bench.Experiment, error) { return bench.RunF16(opts) },
		"f17":   func() (bench.Experiment, error) { return bench.RunF17(opts) },
		"f18":   func() (bench.Experiment, error) { return bench.RunF18(opts) },
		"f19":   func() (bench.Experiment, error) { return bench.RunF19(opts) },
		"t5ab":  func() (bench.Experiment, error) { return bench.RunApplications(opts) },
		"t5c":   func() (bench.Experiment, error) { return bench.RunTreecode(opts) },
		"cosim": func() (bench.Experiment, error) { return bench.RunCosim(opts) },
		"a1":    func() (bench.Experiment, error) { return bench.RunAblationMantissa(opts) },
		"a2":    func() (bench.Experiment, error) { return bench.RunAblationAccumulator(opts) },
		"a3":    func() (bench.Experiment, error) { return bench.RunAblationVMP(opts) },
		"a4":    func() (bench.Experiment, error) { return bench.RunAblationMyrinet(opts) },
		"a5":    func() (bench.Experiment, error) { return bench.RunAblationHostGrid(opts) },
		"a6":    func() (bench.Experiment, error) { return bench.RunAblationGrape4(opts) },
		"a7":    func() (bench.Experiment, error) { return bench.RunAblationNeighbourScheme(opts) },
		"v1":    func() (bench.Experiment, error) { return bench.RunValidation(opts) },
	}

	// Aliases from DESIGN.md's index.
	runners["kuiper"] = runners["t5ab"]
	runners["bhbinary"] = runners["t5ab"]
	runners["treecmp"] = runners["t5c"]

	if *exp == "all" {
		es, err := bench.All(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "grape6bench: %v\n", err)
			os.Exit(1)
		}
		for _, e := range es {
			e.Format(os.Stdout)
		}
		return
	}

	run, ok := runners[strings.ToLower(*exp)]
	if !ok {
		fmt.Fprintf(os.Stderr, "grape6bench: unknown experiment %q\n", *exp)
		fmt.Fprintf(os.Stderr, "known: t1 f13 f14 f15 f16 f17 f18 f19 t5ab t5c cosim a1 a2 a3 a4 a5 a6 a7 v1 all\n")
		os.Exit(2)
	}
	e, err := run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "grape6bench: %v\n", err)
		os.Exit(1)
	}
	e.Format(os.Stdout)
}
