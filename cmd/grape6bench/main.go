// Command grape6bench regenerates the paper's tables and figures. Each
// experiment id matches DESIGN.md's index:
//
//	grape6bench -exp f13          # Figure 13: single-node speed vs N
//	grape6bench -exp all          # everything
//	grape6bench -exp f19 -quick   # fast, low-fidelity pass
//
// Figure experiments with a declarative spec under scenarios/ run
// through the scenario engine (internal/scenario), which also provides
// the committed-baseline regression workflow:
//
//	grape6bench -exp f13 -json            # figure JSON to stdout
//	grape6bench -exp scenarios -quick -diff    # diff the whole matrix
//	grape6bench -exp g6a -quick -update   # re-pin one baseline
//
// Output is a text rendition of each figure: one labelled series per
// curve, with the paper's reported result quoted alongside. With -diff,
// out-of-tolerance points, missing/extra series and non-finite values
// are reported and the exit status is non-zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"grape6/internal/bench"
	"grape6/internal/scenario"
)

// builtinRunners is the single source of truth for the hand-wired
// experiment ids: the -exp flag help and the unknown-id error are both
// generated from it, so the lists cannot drift from the code again.
func builtinRunners() map[string]func(*bench.Options) (bench.Experiment, error) {
	return map[string]func(*bench.Options) (bench.Experiment, error){
		"t1":    func(*bench.Options) (bench.Experiment, error) { return bench.RunT1(), nil },
		"f13":   bench.RunF13,
		"f14":   bench.RunF14,
		"f15":   bench.RunF15,
		"f16":   bench.RunF16,
		"f17":   bench.RunF17,
		"f18":   bench.RunF18,
		"f19":   bench.RunF19,
		"t5ab":  bench.RunApplications,
		"t5c":   bench.RunTreecode,
		"cosim": bench.RunCosim,
		"a1":    bench.RunAblationMantissa,
		"a2":    bench.RunAblationAccumulator,
		"a3":    bench.RunAblationVMP,
		"a4":    bench.RunAblationMyrinet,
		"a5":    bench.RunAblationHostGrid,
		"a6":    bench.RunAblationGrape4,
		"a7":    bench.RunAblationNeighbourScheme,
		"v1":    bench.RunValidation,
	}
}

// aliases are the DESIGN.md index names for the application experiments.
var aliases = map[string]string{
	"kuiper":   "t5ab",
	"bhbinary": "t5ab",
	"treecmp":  "t5c",
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func main() {
	runners := builtinRunners()
	expHelp := fmt.Sprintf(
		"experiment id (%s), a scenario spec id (-list shows them), an alias (%s), \"scenarios\" for the whole spec matrix, or \"all\"",
		strings.Join(sortedKeys(runners), ", "), strings.Join(sortedKeys(aliases), ", "))

	var (
		exp     = flag.String("exp", "all", expHelp)
		quick   = flag.Bool("quick", false, "reduced-fidelity fast mode")
		seed    = flag.Uint64("seed", 20031115, "random seed for workload sampling")
		scnDir  = flag.String("scenarios", "scenarios", "scenario spec directory")
		baseDir = flag.String("baseline", "testdata/scenarios", "committed figure-baseline directory")
		jsonOut = flag.Bool("json", false, "emit figure JSON instead of the text report")
		doDiff  = flag.Bool("diff", false, "diff against the committed baseline (non-zero exit on findings)")
		update  = flag.Bool("update", false, "regenerate the committed baseline from this run")
		list    = flag.Bool("list", false, "list every known experiment id and exit")
	)
	flag.Parse()

	opts := bench.DefaultOptions()
	if *quick {
		opts = bench.QuickOptions()
	}
	opts.Seed = *seed

	specs := loadSpecs(*scnDir)

	if *list {
		fmt.Printf("built-in: %s\n", strings.Join(sortedKeys(runners), " "))
		fmt.Printf("scenario specs (%s): %s\n", *scnDir, strings.Join(sortedKeys(specs), " "))
		fmt.Printf("aliases: %s\n", strings.Join(sortedKeys(aliases), " "))
		fmt.Printf("meta: all scenarios\n")
		return
	}

	id := strings.ToLower(*exp)
	if canon, ok := aliases[id]; ok {
		id = canon
	}

	switch {
	case id == "all":
		requireNoScenarioFlags(*jsonOut, *doDiff, *update, "all")
		es, err := bench.All(opts)
		if err != nil {
			fatal("%v", err)
		}
		for _, e := range es {
			e.Format(os.Stdout)
		}
	case id == "scenarios":
		ids := sortedKeys(specs)
		if len(ids) == 0 {
			fatal("no scenario specs under %s", *scnDir)
		}
		failed := false
		for _, sid := range ids {
			if !runSpec(specs[sid], opts, *baseDir, *jsonOut, *doDiff, *update) {
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
	case specs[id] != nil:
		// Spec-driven experiments shadow the hand-wired runner of the
		// same id: Figs. 13-19 migrated to scenarios/.
		if !runSpec(specs[id], opts, *baseDir, *jsonOut, *doDiff, *update) {
			os.Exit(1)
		}
	default:
		run, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "grape6bench: unknown experiment %q\n", *exp)
			fmt.Fprintf(os.Stderr, "known: %s all scenarios (aliases: %s; specs under %s: %s)\n",
				strings.Join(sortedKeys(runners), " "), strings.Join(sortedKeys(aliases), " "),
				*scnDir, strings.Join(sortedKeys(specs), " "))
			os.Exit(2)
		}
		requireNoScenarioFlags(false, *doDiff, *update, id)
		e, err := run(opts)
		if err != nil {
			fatal("%v", err)
		}
		if *jsonOut {
			if err := scenario.FromExperiment(e, opts).Write(os.Stdout); err != nil {
				fatal("%v", err)
			}
			return
		}
		e.Format(os.Stdout)
	}
}

// loadSpecs returns the scenario specs by id; a missing directory is an
// empty matrix (the built-in runners still work without a checkout of
// scenarios/).
func loadSpecs(dir string) map[string]*scenario.Spec {
	specs := make(map[string]*scenario.Spec)
	if _, err := os.Stat(dir); err != nil {
		return specs
	}
	list, err := scenario.LoadDir(dir)
	if err != nil {
		fatal("%v", err)
	}
	for _, s := range list {
		specs[s.ID] = s
	}
	return specs
}

// runSpec executes one spec and applies the requested output/baseline
// actions. It returns false when a diff found problems.
func runSpec(s *scenario.Spec, opts *bench.Options, baseDir string, jsonOut, doDiff, update bool) bool {
	fig, err := scenario.Run(s, opts)
	if err != nil {
		fatal("%v", err)
	}
	if update {
		if err := scenario.WriteBaseline(baseDir, fig); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("%s: baseline written to %s\n", s.ID, scenario.BaselinePath(baseDir, fig.ID, fig.Fidelity))
	}
	ok := true
	if doDiff {
		base, err := scenario.LoadBaseline(baseDir, s.ID, fig.Fidelity)
		if err != nil {
			fmt.Fprintf(os.Stderr, "grape6bench: %v\n", err)
			ok = false
		} else if ps := scenario.Diff(fig, base, s); len(ps) > 0 {
			fmt.Fprint(os.Stderr, scenario.FormatProblems(s.ID, ps))
			ok = false
		} else {
			points := 0
			for _, fs := range fig.Series {
				points += len(fs.Points)
			}
			fmt.Printf("%s: ok (%d series, %d points within tolerance)\n", s.ID, len(fig.Series), points)
		}
	}
	if jsonOut {
		if err := fig.Write(os.Stdout); err != nil {
			fatal("%v", err)
		}
	} else if !doDiff && !update {
		e := fig.ToExperiment()
		e.Paper = s.Paper
		e.Format(os.Stdout)
	}
	return ok
}

// requireNoScenarioFlags rejects baseline actions on targets that have
// no spec (and -json on "all", which emits many figures).
func requireNoScenarioFlags(jsonOut, doDiff, update bool, id string) {
	if jsonOut {
		fatal("-json is not supported with -exp %s", id)
	}
	if doDiff || update {
		fatal("-diff/-update need a scenario spec for %q (none found; see -list)", id)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "grape6bench: "+format+"\n", args...)
	os.Exit(1)
}
