// Command grape6calib inspects the reproduction's calibration layers: the
// measured block-step workloads, their power-law fits, the timestep
// distribution behind the shared-vs-individual-step argument, and the
// machine model's component breakdown at a given N.
//
//	grape6calib -workload            # measure + fit block statistics
//	grape6calib -breakdown -n 100000 # per-block cost components
//	grape6calib -steps -n 512        # individual-timestep distribution
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"grape6/internal/hermite"
	"grape6/internal/model"
	"grape6/internal/perfmodel"
	"grape6/internal/sched"
	"grape6/internal/simnet"
	"grape6/internal/timing"
	"grape6/internal/tree"
	"grape6/internal/units"
	"grape6/internal/xrand"
)

func main() {
	var (
		workload  = flag.Bool("workload", false, "measure and fit block-step workloads")
		breakdown = flag.Bool("breakdown", false, "print the block-cost component breakdown")
		steps     = flag.Bool("steps", false, "print the individual-timestep distribution")
		n         = flag.Int("n", 100000, "particle count for -breakdown/-record")
		seed      = flag.Uint64("seed", 20031115, "seed")
		record    = flag.String("record", "", "record a block trace to this file (-n sets the size)")
		duration  = flag.Float64("duration", 0.25, "simulated time units for -record")
		replay    = flag.String("replay", "", "replay a recorded trace on the machine models")
	)
	flag.Parse()
	if !*workload && !*breakdown && !*steps && *record == "" && *replay == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *record != "" {
		nn := *n
		if nn > 8192 {
			fatal("-record at N=%d would take very long; use N ≤ 8192", nn)
		}
		tr, err := sched.Record(nn, units.SoftConstant, *duration, *seed)
		if err != nil {
			fatal("%v", err)
		}
		f, err := os.Create(*record)
		if err != nil {
			fatal("%v", err)
		}
		if err := tr.Write(f); err != nil {
			fatal("writing trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("recorded N=%d trace: %d blocks, %d steps over %g time units → %s\n",
			tr.N, len(tr.Blocks), tr.TotalSteps(), tr.Duration, *record)
	}

	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fatal("%v", err)
		}
		tr, err := sched.ReadTrace(f)
		f.Close()
		if err != nil {
			fatal("reading trace: %v", err)
		}
		fmt.Printf("trace: N=%d, %d blocks, %d steps, mean block %.1f\n",
			tr.N, len(tr.Blocks), tr.TotalSteps(), tr.MeanBlockSize())
		for _, mc := range []perfmodel.Machine{
			perfmodel.SingleNode(simnet.NS83820, perfmodel.Athlon),
			perfmodel.MultiNode(4, simnet.NS83820, perfmodel.Athlon),
			perfmodel.MultiCluster(4, simnet.Intel82540EM, perfmodel.P4),
		} {
			rep := timing.Simulate(mc, tr)
			fmt.Printf("  %s\n", rep)
		}
	}

	if *workload {
		for _, kind := range []units.SofteningKind{units.SoftConstant, units.SoftNDependent, units.SoftOverN} {
			w, err := sched.FitWorkload(kind, sched.DefaultNs, 0.25, *seed)
			if err != nil {
				fatal("%v", err)
			}
			fmt.Printf("softening %s:\n", kind)
			fmt.Printf("  steps/unit-time  ~ N^%.3f\n", w.StepsB)
			fmt.Printf("  blocks/unit-time ~ N^%.3f\n", w.BlocksB)
			for _, tr := range w.Measured {
				fmt.Printf("  measured N=%-6d steps/t=%-10.0f blocks/t=%-8.0f mean block=%.1f\n",
					tr.N, tr.StepsPerUnitTime(), tr.BlocksPerUnitTime(), tr.MeanBlockSize())
			}
			for _, nn := range []int{1e4, 1e5, 1e6} {
				fmt.Printf("  extrapolated N=%-8d mean block=%.0f (%.2f%% of N)\n",
					nn, w.MeanBlockSize(nn), 100*w.MeanBlockSize(nn)/float64(nn))
			}
		}
	}

	if *breakdown {
		w, err := sched.FitWorkload(units.SoftConstant, sched.DefaultNs, 0.25, *seed)
		if err != nil {
			fatal("%v", err)
		}
		nb := int(math.Round(w.MeanBlockSize(*n)))
		fmt.Printf("N=%d, mean block=%d\n", *n, nb)
		for _, mc := range []perfmodel.Machine{
			perfmodel.SingleNode(simnet.NS83820, perfmodel.Athlon),
			perfmodel.MultiNode(4, simnet.NS83820, perfmodel.Athlon),
			perfmodel.MultiCluster(4, simnet.NS83820, perfmodel.Athlon),
			perfmodel.MultiCluster(4, simnet.Intel82540EM, perfmodel.P4),
		} {
			c := mc.BlockTime(*n, nb)
			fmt.Printf("%-28s host=%.3gs comm=%.3gs grape=%.3gs sync=%.3gs total=%.3gs → %.3g Gflops\n",
				mc.Name, c.Host, c.Comm, c.Grape, c.Sync, c.Total(),
				mc.Speed(*n, float64(nb))/1e9)
		}
	}

	if *steps {
		nn := *n
		if nn > 4096 {
			nn = 512
		}
		sys := model.Plummer(nn, xrand.New(*seed))
		it, err := hermite.New(sys, hermite.NewDirectBackend(), hermite.DefaultParams(1.0/64))
		if err != nil {
			fatal("%v", err)
		}
		it.Run(1.0 / 16)
		ss := append([]float64(nil), sys.Step...)
		sort.Float64s(ss)
		fmt.Printf("N=%d timestep distribution after t=1/16:\n", nn)
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
			i := int(q * float64(len(ss)-1))
			fmt.Printf("  p%-3.0f %g\n", q*100, ss[i])
		}
		fmt.Printf("  harmonic-mean/min ratio: %.1f (paper: >100 at N=2e6)\n", tree.StepRatio(ss))
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "grape6calib: "+format+"\n", args...)
	os.Exit(1)
}
