// Command grape6sim integrates an N-body system on the reproduction's
// GRAPE-6 stack, reporting conservation diagnostics and performance
// accounting as the run progresses:
//
//	grape6sim -n 1024 -t 1 -model plummer -backend grape
//	grape6sim -n 4096 -t 0.5 -model disk -backend direct -checkpoint out.g6
//	grape6sim -restore out.g6 -t 1.0
//
// With -hosts it instead runs the multi-node co-simulation (the parallel
// drivers over the simulated network), with optional per-phase virtual-
// time accounting:
//
//	grape6sim -hosts 4 -algo ring -n 256 -t 0.0625 -breakdown
//	grape6sim -hosts 8 -algo hybrid -clusters 2 -nic myrinet -trace out.json
package main

import (
	"flag"
	"fmt"
	"os"

	"grape6/internal/binaries"
	"grape6/internal/core"
	"grape6/internal/diag"
	"grape6/internal/hermite"
	"grape6/internal/nbody"
	"grape6/internal/parallel"
	"grape6/internal/perfmodel"
	"grape6/internal/scenario"
	"grape6/internal/timing"
	"grape6/internal/units"
	"grape6/internal/xrand"
)

func main() {
	var (
		n         = flag.Int("n", 1024, "particle count")
		modelName = flag.String("model", "plummer", "initial model: plummer, king, disk, bhbinary, coldsphere")
		kingW0    = flag.Float64("w0", 6, "King model central potential (model=king)")
		trackBin  = flag.Bool("binaries", false, "report hard binaries at each diagnostic interval")
		backend   = flag.String("backend", "direct", "force backend: direct or grape")
		softening = flag.String("softening", "const", "softening: const (1/64), ncbrt (1/[8(2N)^1/3]), overn (4/N)")
		tEnd      = flag.Float64("t", 1.0, "integration end time (Heggie units)")
		eta       = flag.Float64("eta", 0, "Aarseth accuracy parameter (0 = default 0.02)")
		seed      = flag.Uint64("seed", 1, "initial-condition seed")
		report    = flag.Float64("report", 0.25, "diagnostic report interval")
		check     = flag.String("checkpoint", "", "write a checkpoint here at the end")
		restore   = flag.String("restore", "", "restore from this checkpoint instead of sampling")

		hosts     = flag.Int("hosts", 0, "co-simulation host count (0 = single-process mode)")
		algo      = flag.String("algo", "copy", "co-simulation algorithm: copy, ring, grid, hybrid")
		clusters  = flag.Int("clusters", 1, "co-simulation cluster count (algo=hybrid)")
		nicName   = flag.String("nic", "ns83820", "co-simulation NIC: ns83820, tigon2, intel82540em, myrinet, bypass")
		boards    = flag.Int("boards", 0, "emulate a boards × chips GRAPE-6 fleet sharded over the hosts (needs -chips)")
		chips     = flag.Int("chips", 0, "pipeline chips per emulated board (needs -boards)")
		fullMach  = flag.Bool("fullmachine", false, "preset: the full 64-board × 32-chip machine as a 4-cluster × 64-host hybrid co-simulation")
		breakdown = flag.Bool("breakdown", false, "print the per-rank virtual-time phase breakdown (needs -hosts)")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON of the co-simulation here (needs -hosts)")
	)
	flag.Parse()

	if *fullMach {
		// The paper's flagship machine: 2048 chips in 4 host clusters,
		// gigabit ethernet, P4-class frontends (Section 6). 256 ranks keep
		// the hybrid r² constraint while sharding 8 chips to each.
		set := func(name string) bool {
			found := false
			flag.Visit(func(f *flag.Flag) {
				if f.Name == name {
					found = true
				}
			})
			return found
		}
		if !set("hosts") {
			*hosts = 256
		}
		if !set("algo") {
			*algo = "hybrid"
		}
		if !set("clusters") {
			*clusters = 4
		}
		if !set("nic") {
			*nicName = "intel82540em"
		}
		if !set("boards") {
			*boards = 64
		}
		if !set("chips") {
			*chips = 32
		}
	}

	kind := units.SoftConstant
	switch *softening {
	case "const":
	case "ncbrt":
		kind = units.SoftNDependent
	case "overn":
		kind = units.SoftOverN
	default:
		fatal("unknown softening %q", *softening)
	}

	var bk core.BackendKind
	switch *backend {
	case "direct":
		bk = core.Direct
	case "grape":
		bk = core.Grape
	default:
		fatal("unknown backend %q", *backend)
	}

	if *hosts > 0 {
		if *restore != "" || *check != "" {
			fatal("checkpointing is not supported in co-simulation mode")
		}
		if bk != core.Direct {
			fatal("co-simulation mode supports only -backend direct")
		}
		runCosim(cosimOpts{
			n: *n, modelName: *modelName, kingW0: *kingW0, seed: *seed,
			kind: kind, tEnd: *tEnd, eta: *eta,
			hosts: *hosts, algo: *algo, clusters: *clusters,
			nicName: *nicName, boards: *boards, chips: *chips, fullMach: *fullMach,
			breakdown: *breakdown, traceOut: *traceOut,
		})
		return
	}
	if *fullMach || *boards != 0 || *chips != 0 {
		fatal("-fullmachine/-boards/-chips need the co-simulation mode (-hosts)")
	}
	if *breakdown || *traceOut != "" {
		fatal("-breakdown and -trace need the co-simulation mode (-hosts)")
	}

	var sim *core.Simulator
	var eps float64
	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			fatal("%v", err)
		}
		sim, err = core.Restore(f, core.Config{Backend: bk, Eta: *eta})
		f.Close()
		if err != nil {
			fatal("restore: %v", err)
		}
		// The checkpoint header carries the softening; the conservation
		// diagnostics below must use it, not the zero value of a fresh
		// local (a restored run once reported eps=0 energies here).
		eps = sim.Eps()
		fmt.Printf("restored N=%d at t=%.6g eps=%.6g\n", sim.System().N, sim.Time(), eps)
	} else {
		sys := buildSystem(*modelName, *n, *kingW0, *seed)
		eps = units.Softening(kind, sys.N)
		var err error
		sim, err = core.NewSimulator(sys, core.Config{Backend: bk, Eps: eps, Eta: *eta})
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("model=%s N=%d backend=%s eps=%.6g eta=%g\n",
			*modelName, sys.N, bk, eps, *eta)
	}

	cons := diag.NewConservation(sim.Synchronized(), eps)
	next := sim.Time() + *report
	for sim.Time() < *tEnd {
		stop := next
		if stop > *tEnd {
			stop = *tEnd
		}
		sim.Run(stop)
		snap := sim.Synchronized()
		dE, dL, _ := cons.Drift(snap, eps)
		e := diag.Measure(snap, eps)
		fmt.Printf("t=%-8.5g steps=%-10d blocks=%-8d E=%.8g dE/E=%.3g |dL|=%.3g virial=%.4g flops=%.4g\n",
			sim.Time(), sim.Steps(), sim.Blocks(), e.Total(), dE, dL, e.Virial, sim.Flops())
		if *trackBin {
			for _, b := range binaries.Detect(snap, 0.1) {
				if b.Hard() {
					fmt.Printf("  hard binary (%d,%d): a=%.5g e=%.3f hardness=%.1f\n",
						b.I, b.J, b.SemiMajor, b.Ecc, b.Hardness)
				}
			}
		}
		next += *report
	}

	if bk == core.Grape {
		fmt.Printf("emulated hardware cycles: %d\n", sim.HardwareCycles())
	}

	if *check != "" {
		f, err := os.Create(*check)
		if err != nil {
			fatal("%v", err)
		}
		if err := sim.Checkpoint(f); err != nil {
			fatal("checkpoint: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("checkpoint: %v", err)
		}
		fmt.Printf("checkpoint written to %s\n", *check)
	}
}

// buildSystem samples the requested initial model via the shared
// scenario table, so the CLI and the scenario specs accept the same
// model names.
func buildSystem(name string, n int, w0 float64, seed uint64) *nbody.System {
	sys, err := scenario.BuildModel(name, n, w0, xrand.New(seed))
	if err != nil {
		fatal("%v", err)
	}
	return sys
}

type cosimOpts struct {
	n         int
	modelName string
	kingW0    float64
	seed      uint64
	kind      units.SofteningKind
	tEnd      float64
	eta       float64

	hosts     int
	algo      string
	clusters  int
	nicName   string
	boards    int
	chips     int
	fullMach  bool
	breakdown bool
	traceOut  string
}

// runCosim executes one multi-node co-simulation and reports virtual-time
// performance, optionally with the per-phase breakdown and a Chrome
// trace-event export.
func runCosim(o cosimOpts) {
	nic, ok := scenario.LookupNIC(o.nicName)
	if !ok {
		fatal("unknown NIC %q", o.nicName)
	}
	if (o.boards > 0) != (o.chips > 0) {
		fatal("-boards and -chips must be given together")
	}
	sys := buildSystem(o.modelName, o.n, o.kingW0, o.seed)
	eps := units.Softening(o.kind, sys.N)
	params := hermite.DefaultParams(eps)
	if o.eta > 0 {
		params.Eta = o.eta
	}
	host := perfmodel.Athlon
	if o.fullMach {
		host = perfmodel.P4
	}
	machine := perfmodel.SingleNode(nic, host)
	if o.boards > 0 {
		cl := 1
		if o.algo == "hybrid" {
			cl = o.clusters
		}
		m, err := perfmodel.ShardedFleet(cl, o.hosts, o.boards, o.chips, nic, host)
		if err != nil {
			fatal("%v", err)
		}
		machine = m
	}
	cfg := parallel.Config{
		Hosts:   o.hosts,
		NIC:     nic,
		Machine: machine,
		Params:  params,
		Record:  o.breakdown || o.traceOut != "",
	}
	fmt.Printf("cosim model=%s N=%d algo=%s hosts=%d nic=%s eps=%.6g eta=%g\n",
		o.modelName, sys.N, o.algo, o.hosts, nic.Name, eps, params.Eta)
	if o.boards > 0 {
		fmt.Printf("emulating %d boards × %d chips = %d pipeline chips (%d per rank, %.4g peak Tflops)\n",
			o.boards, o.chips, o.boards*o.chips,
			machine.BoardsPerHost*machine.HW.ChipsPerBoard, machine.PeakFlops()/1e12)
	}

	var res *parallel.Result
	var err error
	switch o.algo {
	case "copy":
		res, err = parallel.RunCopy(sys, o.tEnd, cfg)
	case "ring":
		res, err = parallel.RunRing(sys, o.tEnd, cfg)
	case "grid":
		res, err = parallel.RunGrid(sys, o.tEnd, cfg)
	case "hybrid":
		res, err = parallel.RunHybrid(sys, o.tEnd, o.clusters, cfg)
	default:
		fatal("unknown algorithm %q", o.algo)
	}
	if err != nil {
		fatal("%v", err)
	}

	fmt.Printf("virtual time %.6g s: %d blocks, %d steps (%.4g steps/s), %d messages, %d bytes\n",
		res.VirtualTime, res.Blocks, res.Steps, res.StepsPerSecond(),
		res.Messages, res.Bytes)

	if res.Breakdown != nil {
		fmt.Print("\nper-rank virtual-time breakdown (seconds):\n")
		fmt.Print(res.Breakdown.Table())

		// Analytic cross-check: replay the recorded global block sizes
		// through the perfmodel decomposition of the same machine shape.
		am := cfg.Machine
		am.Name = "cosim cross-check"
		am.Clusters = o.clusters
		am.HostsPerCl = o.hosts / o.clusters
		if o.algo != "hybrid" {
			am.Clusters = 1
			am.HostsPerCl = o.hosts
		}
		rep := timing.ReportForBlocks(am, sys.N, res.BlockSizes)
		mean := res.Breakdown.Mean()
		fmt.Printf("\nanalytic model for the same blocks (per-host means, seconds):\n")
		fmt.Printf("  %-10s %12s %12s\n", "component", "cosim", "model")
		fmt.Printf("  %-10s %12.6g %12.6g\n", "host", mean.Host(), rep.Host)
		fmt.Printf("  %-10s %12.6g %12.6g\n", "grape", mean.Grape(), rep.Grape)
		fmt.Printf("  %-10s %12.6g %12.6g\n", "comm", mean.Comm(), rep.Comm)
		fmt.Printf("  %-10s %12.6g %12.6g\n", "sync", mean.Sync(), rep.Sync)
	}

	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			fatal("%v", err)
		}
		if err := res.Trace.WriteTrace(f); err != nil {
			fatal("trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("trace: %v", err)
		}
		fmt.Printf("trace written to %s (chrome://tracing or https://ui.perfetto.dev)\n", o.traceOut)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "grape6sim: "+format+"\n", args...)
	os.Exit(1)
}
