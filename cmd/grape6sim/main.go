// Command grape6sim integrates an N-body system on the reproduction's
// GRAPE-6 stack, reporting conservation diagnostics and performance
// accounting as the run progresses:
//
//	grape6sim -n 1024 -t 1 -model plummer -backend grape
//	grape6sim -n 4096 -t 0.5 -model disk -backend direct -checkpoint out.g6
//	grape6sim -restore out.g6 -t 1.0
package main

import (
	"flag"
	"fmt"
	"os"

	"grape6/internal/binaries"
	"grape6/internal/core"
	"grape6/internal/diag"
	"grape6/internal/model"
	"grape6/internal/nbody"
	"grape6/internal/units"
	"grape6/internal/xrand"
)

func main() {
	var (
		n         = flag.Int("n", 1024, "particle count")
		modelName = flag.String("model", "plummer", "initial model: plummer, king, disk, bhbinary, coldsphere")
		kingW0    = flag.Float64("w0", 6, "King model central potential (model=king)")
		trackBin  = flag.Bool("binaries", false, "report hard binaries at each diagnostic interval")
		backend   = flag.String("backend", "direct", "force backend: direct or grape")
		softening = flag.String("softening", "const", "softening: const (1/64), ncbrt (1/[8(2N)^1/3]), overn (4/N)")
		tEnd      = flag.Float64("t", 1.0, "integration end time (Heggie units)")
		eta       = flag.Float64("eta", 0, "Aarseth accuracy parameter (0 = default 0.02)")
		seed      = flag.Uint64("seed", 1, "initial-condition seed")
		report    = flag.Float64("report", 0.25, "diagnostic report interval")
		check     = flag.String("checkpoint", "", "write a checkpoint here at the end")
		restore   = flag.String("restore", "", "restore from this checkpoint instead of sampling")
	)
	flag.Parse()

	kind := units.SoftConstant
	switch *softening {
	case "const":
	case "ncbrt":
		kind = units.SoftNDependent
	case "overn":
		kind = units.SoftOverN
	default:
		fatal("unknown softening %q", *softening)
	}

	var bk core.BackendKind
	switch *backend {
	case "direct":
		bk = core.Direct
	case "grape":
		bk = core.Grape
	default:
		fatal("unknown backend %q", *backend)
	}

	var sim *core.Simulator
	var eps float64
	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			fatal("%v", err)
		}
		sim, err = core.Restore(f, core.Config{Backend: bk, Eta: *eta})
		f.Close()
		if err != nil {
			fatal("restore: %v", err)
		}
		fmt.Printf("restored N=%d at t=%.6g\n", sim.System().N, sim.Time())
	} else {
		rng := xrand.New(*seed)
		var sys *nbody.System
		switch *modelName {
		case "plummer":
			sys = model.Plummer(*n, rng)
		case "king":
			var err error
			sys, err = model.King(*n, *kingW0, rng)
			if err != nil {
				fatal("%v", err)
			}
		case "disk":
			sys = model.Disk(model.DefaultKuiperDisk(*n), rng)
		case "bhbinary":
			sys = model.PlummerWithBlackHoles(*n, 0.005, 0.3, rng)
		case "coldsphere":
			sys = model.ColdSphere(*n, 1.5, rng)
		default:
			fatal("unknown model %q", *modelName)
		}
		eps = units.Softening(kind, sys.N)
		var err error
		sim, err = core.NewSimulator(sys, core.Config{Backend: bk, Eps: eps, Eta: *eta})
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("model=%s N=%d backend=%s eps=%.6g eta=%g\n",
			*modelName, sys.N, bk, eps, *eta)
	}

	cons := diag.NewConservation(sim.Synchronized(), eps)
	next := sim.Time() + *report
	for sim.Time() < *tEnd {
		stop := next
		if stop > *tEnd {
			stop = *tEnd
		}
		sim.Run(stop)
		snap := sim.Synchronized()
		dE, dL, _ := cons.Drift(snap, eps)
		e := diag.Measure(snap, eps)
		fmt.Printf("t=%-8.5g steps=%-10d blocks=%-8d E=%.8g dE/E=%.3g |dL|=%.3g virial=%.4g flops=%.4g\n",
			sim.Time(), sim.Steps(), sim.Blocks(), e.Total(), dE, dL, e.Virial, sim.Flops())
		if *trackBin {
			for _, b := range binaries.Detect(snap, 0.1) {
				if b.Hard() {
					fmt.Printf("  hard binary (%d,%d): a=%.5g e=%.3f hardness=%.1f\n",
						b.I, b.J, b.SemiMajor, b.Ecc, b.Hardness)
				}
			}
		}
		next += *report
	}

	if bk == core.Grape {
		fmt.Printf("emulated hardware cycles: %d\n", sim.HardwareCycles())
	}

	if *check != "" {
		f, err := os.Create(*check)
		if err != nil {
			fatal("%v", err)
		}
		if err := sim.Checkpoint(f); err != nil {
			fatal("checkpoint: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("checkpoint: %v", err)
		}
		fmt.Printf("checkpoint written to %s\n", *check)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "grape6sim: "+format+"\n", args...)
	os.Exit(1)
}
