// Command grape6d runs the multi-tenant GRAPE scheduler as a network
// daemon: many host programs attach sessions over net/rpc and share one
// emulated board fleet, the way the real GRAPE-6 installation
// time-shared its pipelines across users.
//
//	grape6d -listen :7646 -fleet 2 -boards 4
//
// With -smoke it instead runs the CI end-to-end scenario in-process:
// start a daemon, attach two sessions of different N, step both,
// snapshot one, restore it as a third session, detach, and verify every
// session's state hash against the same workloads run on dedicated
// arrays — the scheduler's bit-exactness contract, end to end over the
// wire.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"grape6/internal/board"
	"grape6/internal/core"
	"grape6/internal/grape6d"
	"grape6/internal/model"
	"grape6/internal/xrand"
)

func main() {
	var (
		listen  = flag.String("listen", ":7646", "address to serve RPC on")
		fleet   = flag.Int("fleet", 1, "number of board arrays in the shared fleet")
		boards  = flag.Int("boards", 0, "boards per array (0 = production 4-board attachment)")
		chips   = flag.Int("chips", 0, "chips per module override (0 = production 4)")
		maxWait = flag.Duration("maxwait", 0, "coalescing window for under-filled batches")
		smoke   = flag.Bool("smoke", false, "run the in-process end-to-end smoke scenario and exit")
	)
	flag.Parse()

	hw := board.Default
	if *boards > 0 {
		hw.Boards = *boards
	}
	if *chips > 0 {
		hw.ChipsPerModule = *chips
	}

	if *smoke {
		if err := runSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "grape6d smoke:", err)
			os.Exit(1)
		}
		fmt.Println("grape6d smoke: OK")
		return
	}

	sv := grape6d.NewServer(grape6d.NewScheduler(grape6d.Config{
		Fleet:   *fleet,
		HW:      hw,
		MaxWait: *maxWait,
	}))
	defer sv.Close()
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "grape6d:", err)
		os.Exit(1)
	}
	fmt.Printf("grape6d: fleet of %d × %d-board arrays on %s\n", *fleet, hw.Boards, ln.Addr())
	if err := sv.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "grape6d:", err)
		os.Exit(1)
	}
}

// smokeHW is a small fleet array so the scenario runs in CI seconds.
func smokeHW() board.Config {
	c := board.Default
	c.ChipsPerModule = 2
	c.ModulesPerBoard = 2
	c.Boards = 1 // 4 chips
	return c
}

// soloHash runs n particles (seed) for blocks block steps on a
// dedicated array and fingerprints the synchronized state.
func soloHash(hw board.Config, n int, seed uint64, eps float64, blocks int) (uint64, error) {
	sim, err := core.NewSimulator(model.Plummer(n, xrand.New(seed)), core.Config{
		Backend: core.Grape, Eps: eps, HW: &hw,
	})
	if err != nil {
		return 0, err
	}
	for k := 0; k < blocks; k++ {
		sim.Step()
	}
	return grape6d.SystemHash(sim.Synchronized()), nil
}

func runSmoke() error {
	hw := smokeHW()
	eps := 1.0 / 64
	sv := grape6d.NewServer(grape6d.NewScheduler(grape6d.Config{
		Fleet: 1, HW: hw, MaxWait: 200 * time.Microsecond,
	}))
	defer sv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go sv.Serve(ln)

	cl, err := grape6d.Dial(ln.Addr().String())
	if err != nil {
		return err
	}
	defer cl.Close()

	// Two tenants of different N share the single-array fleet.
	if _, err := cl.Attach(grape6d.AttachArgs{Name: "a", N: 128, Seed: 7}); err != nil {
		return err
	}
	if _, err := cl.Attach(grape6d.AttachArgs{Name: "b", N: 96, Seed: 11}); err != nil {
		return err
	}
	const blocks = 20
	for k := 0; k < blocks/2; k++ {
		if _, err := cl.Step("a", 2); err != nil {
			return err
		}
		if _, err := cl.Step("b", 2); err != nil {
			return err
		}
	}

	// Snapshot tenant a and restore it as a third session.
	snap, err := cl.Snapshot("a")
	if err != nil {
		return err
	}
	if _, err := cl.Restore("a2", snap.Data, grape6d.Quota{}); err != nil {
		return err
	}
	const extra = 5
	if _, err := cl.Step("a2", extra); err != nil {
		return err
	}

	// Detach b; the fleet must keep serving the others.
	if err := cl.Detach("b"); err != nil {
		return err
	}
	if _, err := cl.Step("a", 1); err != nil {
		return err
	}

	// Every session must match the identical workload on a dedicated
	// array, bit for bit.
	wantA, err := soloHash(hw, 128, 7, eps, blocks+1)
	if err != nil {
		return err
	}
	gotA, err := cl.Hash("a")
	if err != nil {
		return err
	}
	if gotA.Hash != wantA {
		return fmt.Errorf("session a hash %#016x, dedicated run %#016x: multi-tenancy changed bits", gotA.Hash, wantA)
	}

	soloRestored, err := core.Restore(bytes.NewReader(snap.Data), core.Config{Backend: core.Grape, HW: &hw})
	if err != nil {
		return err
	}
	for k := 0; k < extra; k++ {
		soloRestored.Step()
	}
	wantA2 := grape6d.SystemHash(soloRestored.Synchronized())
	gotA2, err := cl.Hash("a2")
	if err != nil {
		return err
	}
	if gotA2.Hash != wantA2 {
		return fmt.Errorf("restored session hash %#016x, dedicated restore %#016x: snapshot round-trip changed bits", gotA2.Hash, wantA2)
	}

	st, err := cl.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("grape6d smoke: %d sessions, %d dispatches, mean fill %.2f, %d swaps\n",
		len(st.Sessions), st.Fill.Dispatches, st.Fill.MeanFill, st.Arrays[0].Swaps)
	if len(st.Sessions) != 2 {
		return fmt.Errorf("stats show %d sessions after detach, want 2", len(st.Sessions))
	}
	if st.Arrays[0].Swaps < 2 {
		return fmt.Errorf("single-array fleet saw %d swaps across three tenants, want ≥ 2", st.Arrays[0].Swaps)
	}
	return nil
}
