// Command grapelint runs the repo's static-analysis suite: the five
// intraprocedural checks (noalloc, deterministic, nodeprecated,
// gfixedboundary, goroutinejoin) plus the interprocedural closures over
// the module call graph (noallocdeep, hotblock, puritydeep) — see
// DESIGN.md §7 "Static guarantees". It type-checks the whole module
// with the standard library only; the interprocedural analyzers always
// see every package (a chain through an unlisted package must not go
// dark), and the given patterns select which findings to report:
//
//	grapelint ./...                  # everything (the verify.sh tier-3 call)
//	grapelint ./internal/chip        # one package
//	grapelint grape6/internal/...    # import-path prefix
//	grapelint -json ./...            # machine-readable findings on stdout
//
// A finding is reported when its site or its chain's root function lies
// in a selected package, so `grapelint ./internal/board` still shows a
// board kernel reaching an allocation in another package.
//
// Exit status: 0 clean, 1 findings, 2 load/usage error (including a
// pattern that matches no package).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"grape6/internal/analysis"
)

// jsonFinding is the -json wire form of one finding. Root fields are
// present only on interprocedural findings.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	RootFile string `json:"rootFile,omitempty"`
	RootLine int    `json:"rootLine,omitempty"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: grapelint [-list] [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, az := range analysis.All() {
			fmt.Printf("%-16s %s\n", az.Name, az.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selDirs := make(map[string]bool)
	for _, pat := range patterns {
		hit := false
		for _, p := range pkgs {
			if matches(p, pat, cwd) {
				selDirs[p.Dir] = true
				hit = true
			}
		}
		if !hit {
			fatal(fmt.Errorf("no packages match %q", pat))
		}
	}

	// The analyzers always run over the whole module — the call graph and
	// the cross-package indexes are only sound with every package present.
	// The selection filters what gets reported, by finding site or chain
	// root.
	all := analysis.Run(pkgs, analysis.All())
	var findings []analysis.Finding
	for _, f := range all {
		if selDirs[filepath.Dir(f.Pos.Filename)] ||
			(f.Root.Filename != "" && selDirs[filepath.Dir(f.Root.Filename)]) {
			findings = append(findings, f)
		}
	}

	if *asJSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			jf := jsonFinding{
				File:     relTo(cwd, f.Pos.Filename),
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			}
			if f.Root.Filename != "" {
				jf.RootFile = relTo(cwd, f.Root.Filename)
				jf.RootLine = f.Root.Line
			}
			out = append(out, jf)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			pos := f.Pos
			pos.Filename = relTo(cwd, pos.Filename)
			fmt.Printf("%s: %s: %s\n", pos, f.Analyzer, f.Message)
		}
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "grapelint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// relTo returns path relative to base when it lies underneath it,
// unchanged otherwise.
func relTo(base, path string) string {
	if rel, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

// matches implements the two pattern families: filesystem-relative
// ("./x", "./x/...", "./...") against the package directory, and
// import-path ("grape6/internal/chip", "grape6/...") against the path.
func matches(p *analysis.Package, pat, cwd string) bool {
	if pat == "." || strings.HasPrefix(pat, "./") {
		rest := strings.TrimPrefix(strings.TrimPrefix(pat, "."), "/")
		recursive := false
		if rest == "..." {
			recursive, rest = true, ""
		} else if strings.HasSuffix(rest, "/...") {
			recursive, rest = true, strings.TrimSuffix(rest, "/...")
		}
		dir := cwd
		if rest != "" {
			dir = filepath.Join(cwd, filepath.FromSlash(rest))
		}
		if recursive {
			return p.Dir == dir || strings.HasPrefix(p.Dir, dir+string(filepath.Separator))
		}
		return p.Dir == dir
	}
	if strings.HasSuffix(pat, "/...") {
		prefix := strings.TrimSuffix(pat, "/...")
		return p.Path == prefix || strings.HasPrefix(p.Path, prefix+"/")
	}
	return p.Path == pat
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "grapelint: %v\n", err)
	os.Exit(2)
}
