// Command grapelint runs the repo's static-analysis suite: noalloc,
// deterministic, nodeprecated, gfixedboundary, goroutinejoin (see
// DESIGN.md §7 "Static guarantees"). It type-checks the whole module
// with the standard library only, then filters packages by the given
// patterns:
//
//	grapelint ./...                  # everything (the verify.sh tier-3 call)
//	grapelint ./internal/chip        # one package
//	grapelint grape6/internal/...    # import-path prefix
//
// Exit status: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"grape6/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: grapelint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, az := range analysis.All() {
			fmt.Printf("%-16s %s\n", az.Name, az.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var sel []*analysis.Package
	for _, p := range pkgs {
		for _, pat := range patterns {
			if matches(p, pat, cwd) {
				sel = append(sel, p)
				break
			}
		}
	}
	if len(sel) == 0 {
		fatal(fmt.Errorf("no packages match %v", patterns))
	}

	findings := analysis.Run(sel, analysis.All())
	for _, f := range findings {
		pos := f.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Printf("%s: %s: %s\n", pos, f.Analyzer, f.Message)
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "grapelint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// matches implements the two pattern families: filesystem-relative
// ("./x", "./x/...", "./...") against the package directory, and
// import-path ("grape6/internal/chip", "grape6/...") against the path.
func matches(p *analysis.Package, pat, cwd string) bool {
	if pat == "." || strings.HasPrefix(pat, "./") {
		rest := strings.TrimPrefix(strings.TrimPrefix(pat, "."), "/")
		recursive := false
		if rest == "..." {
			recursive, rest = true, ""
		} else if strings.HasSuffix(rest, "/...") {
			recursive, rest = true, strings.TrimSuffix(rest, "/...")
		}
		dir := cwd
		if rest != "" {
			dir = filepath.Join(cwd, filepath.FromSlash(rest))
		}
		if recursive {
			return p.Dir == dir || strings.HasPrefix(p.Dir, dir+string(filepath.Separator))
		}
		return p.Dir == dir
	}
	if strings.HasSuffix(pat, "/...") {
		prefix := strings.TrimSuffix(pat, "/...")
		return p.Path == prefix || strings.HasPrefix(p.Path, prefix+"/")
	}
	return p.Path == pat
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "grapelint: %v\n", err)
	os.Exit(2)
}
