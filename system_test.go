// Cross-stack scenario tests: each exercises several subsystems together,
// the way a production run would (IC generator → integrator → emulated
// hardware → diagnostics → checkpoints → timing model).
package grape6_test

import (
	"bytes"
	"math"
	"testing"

	gboard "grape6/internal/board"
	"grape6/internal/chip"
	"grape6/internal/core"
	"grape6/internal/diag"
	"grape6/internal/model"
	"grape6/internal/perfmodel"
	"grape6/internal/sched"
	"grape6/internal/simnet"
	"grape6/internal/timing"
	"grape6/internal/units"
	"grape6/internal/xrand"
)

func tinyHW() *gboard.Config {
	hw := gboard.Default
	hw.ChipsPerModule = 2
	hw.ModulesPerBoard = 2
	hw.Boards = 1
	return &hw
}

// TestKingClusterOnEmulatedHardware: the canonical GRAPE workload — a
// concentrated King cluster — integrated on the emulated machine.
func TestKingClusterOnEmulatedHardware(t *testing.T) {
	sys, err := model.King(96, 6, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	eps := units.Softening(units.SoftNDependent, sys.N)
	sim, err := core.NewSimulator(sys, core.Config{Backend: core.Grape, Eps: eps, HW: tinyHW()})
	if err != nil {
		t.Fatal(err)
	}
	e0 := sim.Energy()
	if math.Abs(e0+0.25) > 0.01 {
		t.Fatalf("King cluster E0 = %v, want ≈ -0.25", e0)
	}
	sim.Run(0.25)
	if rel := math.Abs((sim.Energy() - e0) / e0); rel > 1e-4 {
		t.Errorf("energy error on hardware = %v", rel)
	}
	// Concentrated cluster: Lagrangian radii strictly ordered, core small.
	snap := sim.Synchronized()
	rs, err := diag.LagrangianRadii(snap, []float64{0.1, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !(rs[0] < rs[1] && rs[1] < rs[2]) {
		t.Errorf("Lagrangian radii not ordered: %v", rs)
	}
}

// TestCheckpointRestartOnHardware: a production-style restart mid-run on
// the emulated backend, continuing conservatively.
func TestCheckpointRestartOnHardware(t *testing.T) {
	sys := model.Plummer(64, xrand.New(9))
	cfg := core.Config{Backend: core.Grape, Eps: 1.0 / 64, HW: tinyHW()}
	sim, err := core.NewSimulator(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e0 := sim.Energy()
	sim.Run(0.125)

	var buf bytes.Buffer
	if err := sim.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	sim2, err := core.Restore(&buf, core.Config{Backend: core.Grape, HW: tinyHW()})
	if err != nil {
		t.Fatal(err)
	}
	sim2.Run(0.25)
	if rel := math.Abs((sim2.Energy() - e0) / e0); rel > 1e-4 {
		t.Errorf("energy error across hardware restart = %v", rel)
	}
	if sim2.HardwareCycles() == 0 {
		t.Error("restart did not run on hardware")
	}
}

// TestTracePersistenceFeedsTimingModel: record a real trace, round-trip it
// through the binary format, and replay it on two machine models.
func TestTracePersistenceFeedsTimingModel(t *testing.T) {
	tr, err := sched.Record(128, units.SoftConstant, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := sched.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}

	m1 := perfmodel.SingleNode(simnet.NS83820, perfmodel.Athlon)
	m4 := perfmodel.MultiNode(4, simnet.NS83820, perfmodel.Athlon)
	r1 := timing.Simulate(m1, restored)
	r4 := timing.Simulate(m4, restored)
	if r1.Steps != tr.TotalSteps() || r4.Steps != tr.TotalSteps() {
		t.Error("replay lost steps")
	}
	// At N=128 the single node must beat the 4-node machine (Figure 15's
	// small-N regime), end to end through the persistence layer.
	if r4.SpeedFlops() >= r1.SpeedFlops() {
		t.Errorf("4-node (%v) not slower than 1-node (%v) at N=128",
			r4.SpeedFlops(), r1.SpeedFlops())
	}
}

// TestDiskOnHardware: the Kuiper-belt-style workload runs on the emulated
// backend (dominant central mass exercises the block-exponent spread).
func TestDiskOnHardware(t *testing.T) {
	cfg := model.DefaultKuiperDisk(48)
	sys := model.Disk(cfg, xrand.New(11))
	sim, err := core.NewSimulator(sys, core.Config{Backend: core.Grape, Eps: 1e-3, Eta: 0.05, HW: tinyHW()})
	if err != nil {
		t.Fatal(err)
	}
	e0 := sim.Energy()
	period := model.OrbitalPeriod(cfg.MCentral, cfg.RInner)
	sim.Run(period / 4)
	if rel := math.Abs((sim.Energy() - e0) / e0); rel > 1e-5 {
		t.Errorf("disk energy error on hardware = %v", rel)
	}
	// Planetesimals stay near their Keplerian annulus.
	snap := sim.Synchronized()
	for i := 1; i < snap.N; i++ {
		r := snap.Pos[i].Norm()
		if r < 0.5*cfg.RInner || r > 2*cfg.ROuter {
			t.Errorf("planetesimal %d wandered to r=%v", i, r)
		}
	}
}

// TestBenchQuickSuiteIsSelfConsistent: the harness's own cross-experiment
// invariants (peak ordering, crossover ordering) hold in one pass.
func TestBenchQuickSuiteIsSelfConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("harness pass skipped in -short mode")
	}
	m1 := perfmodel.SingleNode(simnet.NS83820, perfmodel.Athlon)
	m16 := perfmodel.MultiCluster(4, simnet.Intel82540EM, perfmodel.P4)
	g4 := perfmodel.Grape4Machine()
	// Peak ordering: GRAPE-4 < single node < full machine.
	if !(g4.PeakFlops() < m1.PeakFlops() && m1.PeakFlops() < m16.PeakFlops()) {
		t.Error("peak ordering violated")
	}
	// At N=1e6 with 2% blocks, the full machine dominates everything.
	n, nb := 1_000_000, 20_000.0
	if !(m16.Speed(n, nb) > m1.Speed(n, nb) && m1.Speed(n, nb) > g4.Speed(n, nb)) {
		t.Error("speed ordering at scale violated")
	}
}

// TestCycleModelsAgree cross-validates the two independent implementations
// of the GRAPE timing: the emulated hardware's cycle counter (board.Array)
// and the analytic model (perfmodel.GrapeTimeHost). For a matching
// configuration they must agree up to the reduction-tree latency, which
// only the emulator counts.
func TestCycleModelsAgree(t *testing.T) {
	hw := gboard.Default
	hw.ChipsPerModule = 2
	hw.ModulesPerBoard = 2
	hw.Boards = 2 // 8 chips
	arr := gboard.New(hw)

	n := 512
	sys := model.Plummer(n, xrand.New(61))
	js := make([]chip.JParticle, n)
	f := hw.Chip.Format
	for i := 0; i < n; i++ {
		p, err := chip.MakeJParticle(f, i, 0, sys.Mass[i], sys.Pos[i], sys.Vel[i], sys.Acc[i], sys.Jerk[i], sys.Snap[i])
		if err != nil {
			t.Fatal(err)
		}
		js[i] = p
	}
	if err := arr.LoadJ(js); err != nil {
		t.Fatal(err)
	}

	m := perfmodel.Machine{
		Name: "x", Clusters: 1, HostsPerCl: 1, BoardsPerHost: hw.Boards,
		HW: perfmodel.GrapeHW{
			ClockHz:       hw.Chip.ClockHz,
			Pipelines:     hw.Chip.Pipelines,
			VMP:           hw.Chip.VMP,
			ChipsPerBoard: hw.ChipsPerModule * hw.ModulesPerBoard,
			PipelineDepth: hw.Chip.PipelineDepth,
		},
		Link: perfmodel.PCI, NIC: simnet.NS83820, Host: perfmodel.Athlon,
	}

	for _, ni := range []int{1, 17, 48, 96, 200} {
		is := make([]chip.IParticle, ni)
		for k := range is {
			x, v := chip.PredictParticle(f, &js[k%n], 0)
			is[k] = chip.IParticle{X: x, V: v, SelfID: k % n, ExpAcc: 4, ExpJerk: 6, ExpPot: 6}
		}
		cycles := arr.ForcesInto(make([]chip.Partial, len(is)), 0, is, 1.0/64)
		emulated := arr.TimeFor(cycles)
		analytic := m.GrapeTimeHost(ni, n)
		// The emulator adds the reduction-tree stages; rounding of the
		// per-chip j-count may differ by one particle per chip.
		slack := arr.TimeFor(int64(3*4)) + float64(hw.Chip.VMP)*2/hw.Chip.ClockHz*
			float64((ni+m.HW.IBatch()-1)/m.HW.IBatch())
		diff := emulated - analytic
		if diff < 0 || diff > slack {
			t.Errorf("ni=%d: emulated %.3g vs analytic %.3g (slack %.3g)", ni, emulated, analytic, slack)
		}
	}
}
