// Block-step overhead benchmarks: the host-side costs that bound GRAPE
// throughput once blocks get small at large N (the regime of the paper's
// production runs). BenchmarkBlockSchedStep vs BenchmarkBlockScanStep
// isolates the scheduling cost itself — bucketed O(active block)
// selection against the retired O(N) MinTime scan — on identical
// synthetic step spectra at N = 64k and N = 1M. BenchmarkStreamLoadJ
// measures the paged j-memory force path, and
// BenchmarkAhmadCohenBlockStep the neighbour-scheme steady state.
package grape6_test

import (
	"math"
	"math/bits"
	"testing"

	"grape6/internal/ahmadcohen"
	"grape6/internal/direct"
	"grape6/internal/gbackend"
	"grape6/internal/model"
	"grape6/internal/nbody"
	"grape6/internal/xrand"

	gboard "grape6/internal/board"
)

// benchStepSystem builds a bare N-particle system with a settled
// power-of-two step spectrum (no forces — these benchmarks isolate
// scheduling overhead from force work). Level populations halve with
// each finer octave over 16 octaves (P(exp = -9-k) = 2^-(k+1)), the
// shape a relaxed cluster with hard binaries settles into: the finest
// levels, which fire most often, hold a handful of particles, so the
// typical block is tiny relative to N — the paper's production regime,
// where a per-block O(N) scan dominates the step cost. The spectrum is
// static across the run (steps do not churn), so both benchmarks walk
// bit-identical block sequences; step-change Rebin correctness is
// covered by the scheduler property tests.
func benchStepSystem(n int) *nbody.System {
	sys := nbody.New(n)
	rng := xrand.New(509)
	for i := 0; i < n; i++ {
		k := bits.TrailingZeros64(rng.Uint64() | 1<<15)
		sys.Step[i] = math.Ldexp(1, -9-k)
	}
	return sys
}

func benchBlockSched(b *testing.B, n int) {
	sys := benchStepSystem(n)
	s := nbody.NewBlockSched(sys)
	block := make([]int, 0, n)
	// Warm out of the synchronised start so the bin member slices are
	// grown and blocks carry their steady-state sizes.
	for k := 0; k < 2048; k++ {
		t := s.NextTime()
		block = s.AppendBlock(sys, t, block[:0])
		for _, i := range block {
			sys.Time[i] = t
			s.Rebin(sys, i)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var steps int64
	for k := 0; k < b.N; k++ {
		t := s.NextTime()
		block = s.AppendBlock(sys, t, block[:0])
		for _, i := range block {
			sys.Time[i] = t
			s.Rebin(sys, i)
		}
		steps += int64(len(block))
	}
	b.ReportMetric(float64(steps)/float64(b.N), "particles/block")
}

func benchBlockScan(b *testing.B, n int) {
	// The retired selection: O(N) MinTime plus an O(N) membership scan
	// per block, on the same step spectrum as benchBlockSched.
	sys := benchStepSystem(n)
	block := make([]int, 0, n)
	step := func() int {
		t := sys.MinTime()
		block = block[:0]
		for i := 0; i < sys.N; i++ {
			if sys.Time[i]+sys.Step[i] == t {
				block = append(block, i)
			}
		}
		for _, i := range block {
			sys.Time[i] = t
		}
		return len(block)
	}
	for k := 0; k < 2048; k++ {
		step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	var steps int64
	for k := 0; k < b.N; k++ {
		steps += int64(step())
	}
	b.ReportMetric(float64(steps)/float64(b.N), "particles/block")
}

func BenchmarkBlockSchedStep64k(b *testing.B) { benchBlockSched(b, 65536) }
func BenchmarkBlockScanStep64k(b *testing.B)  { benchBlockScan(b, 65536) }
func BenchmarkBlockSchedStep1M(b *testing.B)  { benchBlockSched(b, 1048576) }
func BenchmarkBlockScanStep1M(b *testing.B)   { benchBlockScan(b, 1048576) }

// BenchmarkStreamLoadJ is the paged j-memory force path: a 64k Plummer
// j-set streamed through 4 chips of 4096 slots (4 fleet pages per force
// evaluation) for a 48-particle i-batch — the bounded-memory chip model
// evaluating a j-set 4× its combined capacity.
func BenchmarkStreamLoadJ(b *testing.B) {
	cfg := gboard.Default
	cfg.ChipsPerModule = 2
	cfg.ModulesPerBoard = 2
	cfg.Boards = 1 // 4 chips
	cfg.Chip.MemCapacity = 4096
	const n = 65536
	sys := model.Plummer(n, xrand.New(21))
	arr := gboard.New(cfg)
	defer arr.Close()
	bk := gbackend.New(arr)
	bk.Load(sys)

	const ni = 48
	ids := make([]int, ni)
	for q := range ids {
		ids[q] = q * (n / ni)
	}
	dst := make([]direct.Force, ni)
	// A few warm passes: the first sizes the page scratch and chip
	// planes, the next settle lazily allocated runtime structures
	// (worker-pool channel internals) so the timed section is clean.
	for k := 0; k < 3; k++ {
		bk.ForcesInto(dst, 0, ids, sys.Pos, sys.Vel, 1.0/64)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		bk.ForcesInto(dst, 0, ids, sys.Pos, sys.Vel, 1.0/64)
	}
	b.ReportMetric(float64(ni)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpairs/s")
}

// BenchmarkAhmadCohenBlockStep is the neighbour scheme in steady state:
// mostly irregular blocks touching ~32 neighbours each, with the full-j
// regular force amortized over ~RegFactor irregular steps.
func BenchmarkAhmadCohenBlockStep(b *testing.B) {
	sys := model.Plummer(2048, xrand.New(13))
	it, err := ahmadcohen.New(sys, ahmadcohen.DefaultParams(1.0/64))
	if err != nil {
		b.Fatal(err)
	}
	for k := 0; k < 256; k++ {
		it.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	var steps int64
	for k := 0; k < b.N; k++ {
		steps += int64(it.Step().Size)
	}
	b.ReportMetric(float64(steps)/float64(b.N), "particles/block")
	b.ReportMetric(it.MeanNeighbours(), "neighbours")
}
