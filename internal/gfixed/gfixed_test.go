package gfixed

import (
	"math"
	"testing"
	"testing/quick"

	"grape6/internal/xrand"
)

func TestGrape6FormatValid(t *testing.T) {
	if err := Grape6.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadFormats(t *testing.T) {
	bad := []Format{
		{PosFrac: 0, MantBits: 24, AccumFrac: 40},
		{PosFrac: 63, MantBits: 24, AccumFrac: 40},
		{PosFrac: 44, MantBits: 1, AccumFrac: 40},
		{PosFrac: 44, MantBits: 54, AccumFrac: 40},
		{PosFrac: 44, MantBits: 24, AccumFrac: 0},
		{PosFrac: 44, MantBits: 24, AccumFrac: 63},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("case %d: accepted invalid format %+v", i, f)
		}
	}
}

func TestFixedRoundTrip(t *testing.T) {
	f := Grape6
	for _, x := range []float64{0, 1, -1, 0.5, 1.0 / 3, -math.Pi, 1e-10, 524287.9} {
		v, err := f.ToFixed(x)
		if err != nil {
			t.Fatalf("ToFixed(%v): %v", x, err)
		}
		back := f.FromFixed(v)
		if math.Abs(back-x) > f.PosResolution()/2+1e-18 {
			t.Errorf("round trip %v → %v, error %v > resolution/2", x, back, math.Abs(back-x))
		}
	}
}

func TestFixedRange(t *testing.T) {
	f := Grape6
	if _, err := f.ToFixed(f.PosRange() * 1.01); err != ErrPosRange {
		t.Error("accepted out-of-range positive position")
	}
	if _, err := f.ToFixed(-f.PosRange() * 1.01); err != ErrPosRange {
		t.Error("accepted out-of-range negative position")
	}
	if _, err := f.ToFixed(math.NaN()); err != ErrPosRange {
		t.Error("accepted NaN")
	}
	if _, err := f.ToFixed(math.Inf(1)); err != ErrPosRange {
		t.Error("accepted +Inf")
	}
	// Just inside must work.
	if _, err := f.ToFixed(f.PosRange() * 0.999); err != nil {
		t.Errorf("rejected in-range position: %v", err)
	}
}

func TestDiffExactness(t *testing.T) {
	// The whole point of fixed-point positions: differences of quantized
	// coordinates are exact, even for nearby large coordinates.
	f := Grape6
	delta := math.Ldexp(1, -40) // a multiple of the quantum, representable next to 1000.0
	a, _ := f.ToFixed(1000.0)
	b, _ := f.ToFixed(1000.0 + delta)
	d := f.DiffToFloat(a, b)
	if d != delta {
		t.Errorf("diff = %v, want exactly %v", d, delta)
	}
}

func TestRoundMantissa(t *testing.T) {
	// 1 + 2^-30 rounds to 1 with 24-bit mantissa.
	if got := RoundMantissa(1+math.Ldexp(1, -30), 24); got != 1 {
		t.Errorf("RoundMantissa = %v", got)
	}
	// Identity cases.
	if got := RoundMantissa(1.5, 53); got != 1.5 {
		t.Errorf("53-bit round changed value: %v", got)
	}
	if got := RoundMantissa(0, 24); got != 0 {
		t.Errorf("zero changed: %v", got)
	}
	if !math.IsNaN(RoundMantissa(math.NaN(), 24)) {
		t.Error("NaN not preserved")
	}
	if !math.IsInf(RoundMantissa(math.Inf(-1), 24), -1) {
		t.Error("-Inf not preserved")
	}
	// Round-to-even at the halfway point: with 2 bits, 1.25 is halfway
	// between 1.0 and 1.5; even mantissa is 1.0.
	if got := RoundMantissa(1.25, 2); got != 1.0 {
		t.Errorf("ties-to-even: %v, want 1.0", got)
	}
	// 1.75 is halfway between 1.5 and 2.0 with 2 bits; even is 2.0.
	if got := RoundMantissa(1.75, 2); got != 2.0 {
		t.Errorf("ties-to-even: %v, want 2.0", got)
	}
}

func TestPropRoundMantissaError(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 || math.Abs(x) > 1e300 || math.Abs(x) < 1e-300 {
			return true
		}
		r := RoundMantissa(x, 24)
		// Relative error bounded by 2^-24.
		return math.Abs(r-x) <= math.Abs(x)*math.Ldexp(1, -24)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPropRoundMantissaIdempotent(t *testing.T) {
	f := func(x float64, b uint8) bool {
		bits := uint(b%50) + 2
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		r := RoundMantissa(x, bits)
		return RoundMantissa(r, bits) == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAccumBasic(t *testing.T) {
	a := Grape6.NewAccum(4)
	a.Add(1.0)
	a.Add(2.5)
	a.Add(-0.5)
	if got := a.Value(); math.Abs(got-3.0) > 1e-9 {
		t.Errorf("accum value = %v, want 3", got)
	}
	if a.Overflow {
		t.Error("unexpected overflow")
	}
}

func TestAccumQuantization(t *testing.T) {
	// The quantum is 2^(Exp-AccumFrac); values below half a quantum vanish.
	f := Format{PosFrac: 44, MantBits: 24, AccumFrac: 10}
	a := f.NewAccum(0)
	quantum := math.Ldexp(1, -10)
	a.Add(quantum / 4)
	if a.Value() != 0 {
		t.Errorf("sub-quantum contribution survived: %v", a.Value())
	}
	a.Add(quantum)
	if a.Value() != quantum {
		t.Errorf("one-quantum add = %v", a.Value())
	}
}

func TestAccumOrderIndependence(t *testing.T) {
	// THE GRAPE-6 property (Section 3.4): identical bits regardless of
	// summation order.
	rng := xrand.New(99)
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = rng.Uniform(-1, 1) * math.Ldexp(1, rng.Intn(20)-10)
	}
	exp := ExponentFor(100, 8)

	forward := Grape6.NewAccum(exp)
	for _, v := range vals {
		forward.Add(v)
	}
	backward := Grape6.NewAccum(exp)
	for i := len(vals) - 1; i >= 0; i-- {
		backward.Add(vals[i])
	}
	shuffled := Grape6.NewAccum(exp)
	perm := rng.Perm(len(vals))
	for _, i := range perm {
		shuffled.Add(vals[i])
	}
	if forward.Sum != backward.Sum || forward.Sum != shuffled.Sum {
		t.Errorf("order-dependent sums: %d %d %d", forward.Sum, backward.Sum, shuffled.Sum)
	}
}

func TestAccumPartitionInvariance(t *testing.T) {
	// Splitting the j-set across "chips" and merging partial accumulators
	// must give identical bits to a single accumulation — the property
	// that makes GRAPE-6 results machine-size-independent.
	rng := xrand.New(7)
	vals := make([]float64, 512)
	for i := range vals {
		vals[i] = rng.Norm() * 0.01
	}
	exp := ExponentFor(1, 8)

	single := Grape6.NewAccum(exp)
	for _, v := range vals {
		single.Add(v)
	}

	for _, parts := range []int{2, 3, 8, 32, 128} {
		chips := make([]*Accum, parts)
		for c := range chips {
			chips[c] = Grape6.NewAccum(exp)
		}
		for i, v := range vals {
			chips[i%parts].Add(v)
		}
		total := Grape6.NewAccum(exp)
		for _, c := range chips {
			total.Merge(c)
		}
		if total.Sum != single.Sum {
			t.Errorf("%d-way partition: sum %d != single %d", parts, total.Sum, single.Sum)
		}
	}
}

func TestPropPartitionInvariance(t *testing.T) {
	f := func(seed uint32, parts uint8) bool {
		p := int(parts)%7 + 2
		rng := xrand.New(uint64(seed))
		n := 64
		exp := 8
		single := Grape6.NewAccum(exp)
		chips := make([]*Accum, p)
		for c := range chips {
			chips[c] = Grape6.NewAccum(exp)
		}
		for i := 0; i < n; i++ {
			v := rng.Norm()
			single.Add(v)
			chips[rng.Intn(p)].Add(v)
		}
		total := Grape6.NewAccum(exp)
		for _, c := range chips {
			total.Merge(c)
		}
		return total.Sum == single.Sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAccumOverflowOnLargeContribution(t *testing.T) {
	a := Grape6.NewAccum(0)
	a.Add(math.Ldexp(1, 30)) // far beyond exponent-0 block range
	if !a.Overflow {
		t.Error("large contribution did not set overflow")
	}
}

func TestAccumOverflowOnSumGrowth(t *testing.T) {
	f := Format{PosFrac: 44, MantBits: 24, AccumFrac: 60}
	a := f.NewAccum(0)
	for i := 0; i < 16 && !a.Overflow; i++ {
		a.Add(0.4)
	}
	if !a.Overflow {
		t.Error("sum growth did not overflow 2^62 range")
	}
}

func TestAccumOverflowOnNaN(t *testing.T) {
	a := Grape6.NewAccum(0)
	a.Add(math.NaN())
	if !a.Overflow {
		t.Error("NaN did not set overflow")
	}
}

func TestMergePropagatesOverflow(t *testing.T) {
	a := Grape6.NewAccum(0)
	b := Grape6.NewAccum(0)
	b.Overflow = true
	a.Merge(b)
	if !a.Overflow {
		t.Error("merge did not propagate overflow")
	}
}

func TestMergeMismatchedExponentsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merge of mismatched exponents did not panic")
		}
	}()
	Grape6.NewAccum(0).Merge(Grape6.NewAccum(1))
}

func TestAccumReset(t *testing.T) {
	a := Grape6.NewAccum(2)
	a.Add(1)
	a.Overflow = true
	a.Reset()
	if a.Sum != 0 || a.Overflow || a.Exp != 2 {
		t.Errorf("reset failed: %+v", a)
	}
}

func TestAddCheck(t *testing.T) {
	if _, ok := addCheck(math.MaxInt64, 1); ok {
		t.Error("positive overflow not detected")
	}
	if _, ok := addCheck(math.MinInt64, -1); ok {
		t.Error("negative overflow not detected")
	}
	if s, ok := addCheck(math.MaxInt64, math.MinInt64); !ok || s != -1 {
		t.Errorf("mixed-sign add: %d %v", s, ok)
	}
	if s, ok := addCheck(5, -3); !ok || s != 2 {
		t.Errorf("simple add: %d %v", s, ok)
	}
}

func TestExponentFor(t *testing.T) {
	// 1.0 = 0.5 × 2^1 → exponent 1 + headroom.
	if got := ExponentFor(1.0, 8); got != 9 {
		t.Errorf("ExponentFor(1, 8) = %d", got)
	}
	if got := ExponentFor(0, 8); got != 8 {
		t.Errorf("ExponentFor(0, 8) = %d", got)
	}
	// Larger values get larger exponents.
	if ExponentFor(1e6, 4) <= ExponentFor(1.0, 4) {
		t.Error("exponent not monotone in magnitude")
	}
}

func TestAccumAccuracy(t *testing.T) {
	// With the Grape6 format the accumulated value should match the exact
	// float64 sum to ~2^-40 relative of the block scale.
	rng := xrand.New(12)
	exp := ExponentFor(10, 6)
	a := Grape6.NewAccum(exp)
	var exact float64
	for i := 0; i < 10000; i++ {
		v := rng.Norm() * 0.01
		a.Add(v)
		exact += v
	}
	quantum := math.Ldexp(1, exp-int(Grape6.AccumFrac))
	if math.Abs(a.Value()-exact) > 10000*quantum {
		t.Errorf("accumulated %v vs exact %v, quantum %v", a.Value(), exact, quantum)
	}
}

func BenchmarkAccumAdd(b *testing.B) {
	a := Grape6.NewAccum(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Add(0.123456789)
		if a.Overflow {
			a.Reset()
		}
	}
}

func BenchmarkRoundMantissa(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		s += RoundMantissa(math.Pi*float64(i), 24)
	}
	_ = s
}
