package gfixed

import (
	"math"
	"testing"
)

// The fuzz targets are differential: the optimized hot-path entry points
// (Rounder.Round's branch-free carry, Accum.Add's 2^52 magic-constant
// trick) must stay bit-identical to their straightforward references for
// EVERY input, not just the corpus the unit tests enumerate. Seeds come
// from interestingFloats(), which pins the known cliffs: the 2^52
// integrality boundary, the 2^62 saturation boundary, subnormals, ties,
// infinities and NaN. verify.sh runs each target with -fuzztime=10s.

func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// FuzzRound checks Format.Round and Rounder.Round against RoundMantissa
// across all mantissa widths, plus idempotence of the rounding itself.
func FuzzRound(f *testing.F) {
	for _, x := range interestingFloats() {
		for _, bits := range []uint{2, 8, 24, 32, 52, 53} {
			f.Add(math.Float64bits(x), bits)
		}
	}
	f.Fuzz(func(t *testing.T, xb uint64, bits uint) {
		bits = 2 + bits%52 // valid widths [2, 53]
		x := math.Float64frombits(xb)
		fm := Format{PosFrac: 44, MantBits: bits, AccumFrac: 40}

		want := RoundMantissa(x, bits)
		if got := fm.Round(x); !sameBits(got, want) {
			t.Fatalf("bits=%d x=%#x: Format.Round %#x != RoundMantissa %#x",
				bits, xb, math.Float64bits(got), math.Float64bits(want))
		}
		if got := fm.Rounder().Round(x); !sameBits(got, want) {
			t.Fatalf("bits=%d x=%#x: Rounder.Round %#x != RoundMantissa %#x",
				bits, xb, math.Float64bits(got), math.Float64bits(want))
		}
		// Rounding is idempotent: a value already on the short-mantissa
		// grid must pass through unchanged.
		if again := RoundMantissa(want, bits); !sameBits(again, want) {
			t.Fatalf("bits=%d x=%#x: rounding not idempotent: %#x -> %#x",
				bits, xb, math.Float64bits(want), math.Float64bits(again))
		}
		// Sign and zero/NaN class are preserved.
		if math.Signbit(want) != math.Signbit(x) && !math.IsNaN(x) {
			t.Fatalf("bits=%d x=%#x: sign flipped to %#x", bits, xb, math.Float64bits(want))
		}
	})
}

// FuzzAccumAdd streams three contributions through the magic-constant
// Add and the math.RoundToEven reference in lockstep, then checks the
// partition-invariance property (Section 3.4): splitting the stream
// across two accumulators and merging is bit-identical to sequential
// accumulation whenever nothing overflowed.
func FuzzAccumAdd(f *testing.F) {
	for _, v := range interestingFloats() {
		f.Add(4, math.Float64bits(v), math.Float64bits(v/3), math.Float64bits(-v))
		f.Add(80, math.Float64bits(v), math.Float64bits(1.0), math.Float64bits(v*0.5))
		f.Add(-20, math.Float64bits(v), math.Float64bits(v), math.Float64bits(v))
	}
	f.Fuzz(func(t *testing.T, exp int, b1, b2, b3 uint64) {
		exp %= 2000 // beyond this Ldexp saturates anyway; keep shrinks readable
		vs := [3]float64{
			math.Float64frombits(b1),
			math.Float64frombits(b2),
			math.Float64frombits(b3),
		}

		a := Grape6.MakeAccum(exp)
		r := Grape6.MakeAccum(exp)
		for i, v := range vs {
			a.Add(v)
			refAdd(&r, v)
			if a.Sum != r.Sum || a.Overflow != r.Overflow {
				t.Fatalf("exp=%d step=%d v=%#x: Add (sum=%d ovf=%v) != reference (sum=%d ovf=%v)",
					exp, i, math.Float64bits(v), a.Sum, a.Overflow, r.Sum, r.Overflow)
			}
		}

		p1 := Grape6.MakeAccum(exp)
		p2 := Grape6.MakeAccum(exp)
		p1.Add(vs[0])
		p2.Add(vs[1])
		p2.Add(vs[2])
		p1.Merge(&p2)
		if !a.Overflow && !p1.Overflow && p1.Sum != a.Sum {
			t.Fatalf("exp=%d vs=%#x,%#x,%#x: partition variance: merged %d != sequential %d",
				exp, b1, b2, b3, p1.Sum, a.Sum)
		}
	})
}
