// Package gfixed implements the reduced-precision number formats of the
// GRAPE-6 processor chip (Section 3.4 of the paper):
//
//   - 64-bit fixed-point particle positions, so that coordinate differences
//     are exact;
//   - short-mantissa floating point for the pipeline arithmetic;
//   - block floating point for force accumulation: a fixed-point 64-bit
//     accumulator whose scale is set by an exponent chosen BEFORE the
//     calculation starts.
//
// The block-floating-point design gives GRAPE-6 a property the paper calls
// out explicitly: "the calculated result is independent of the number of
// processor chips used to calculate one force", because the integer
// summation is exact and the only rounding happens when each pairwise
// force is shifted into the block format. This package preserves that
// property bit-for-bit, and the chip emulator's tests rely on it.
package gfixed

import (
	"errors"
	"fmt"
	"math"
)

// Fixed64 is a position coordinate in 64-bit two's-complement fixed point.
// The binary point position is carried by the Format, not the value.
type Fixed64 int64

// Format describes the chip's arithmetic configuration.
type Format struct {
	// PosFrac is the number of fraction bits of the fixed-point position
	// format. The representable range is ±2^(63-PosFrac).
	PosFrac uint

	// MantBits is the mantissa width (including the implicit leading 1)
	// used for the pipeline's floating-point operations.
	MantBits uint

	// AccumFrac is the number of fraction bits of the block-floating-point
	// accumulator relative to 2^Exp: a contribution v is stored as the
	// integer round(v · 2^(AccumFrac-Exp)).
	AccumFrac uint
}

// Grape6 is the default format, modelled on the published GRAPE-6 word
// lengths: 64-bit fixed-point positions with 44 fraction bits (range
// ±2^19, resolution 2^-44), a 32-bit-mantissa pipeline, and a 64-bit
// accumulator with 40 fraction bits below the block exponent.
//
// The pipeline width follows the hardware's design rule rather than a
// specific gate count: the paper notes "the word length itself is chosen
// as such" that arithmetic error never affects the simulation. Below ~28
// mantissa bits the Aarseth timestep criterion becomes noise-dominated
// (reconstructed crackle ∝ δa/dt³) and block timesteps collapse — the
// ablation bench BenchmarkAblationMantissa demonstrates exactly this
// cliff, and 32 bits sits safely above it.
var Grape6 = Format{
	PosFrac:   44,
	MantBits:  32,
	AccumFrac: 40,
}

// Validate reports configuration errors.
func (f Format) Validate() error {
	if f.PosFrac == 0 || f.PosFrac > 62 {
		return fmt.Errorf("gfixed: PosFrac %d out of range [1,62]", f.PosFrac)
	}
	if f.MantBits < 2 || f.MantBits > 53 {
		return fmt.Errorf("gfixed: MantBits %d out of range [2,53]", f.MantBits)
	}
	if f.AccumFrac == 0 || f.AccumFrac > 62 {
		return fmt.Errorf("gfixed: AccumFrac %d out of range [1,62]", f.AccumFrac)
	}
	return nil
}

// ErrPosRange is returned when a coordinate exceeds the fixed-point range.
var ErrPosRange = errors.New("gfixed: position outside fixed-point range")

const two63 = 9.223372036854776e18 // 2^63

// ToFixed converts a float64 coordinate to fixed point, rounding to
// nearest. It returns ErrPosRange if x is outside the representable range
// or not finite.
func (f Format) ToFixed(x float64) (Fixed64, error) {
	// Multiplying by an exact power of two is exact; the comparison below
	// also rejects NaN and ±Inf.
	scaled := math.RoundToEven(x * float64(uint64(1)<<f.PosFrac))
	if !(scaled < two63 && scaled >= -two63) {
		return 0, ErrPosRange
	}
	return Fixed64(scaled), nil
}

// FromFixed converts a fixed-point coordinate back to float64.
func (f Format) FromFixed(v Fixed64) float64 {
	return float64(v) * (1 / float64(uint64(1)<<f.PosFrac))
}

// PosResolution returns the quantum of the position format: exactly
// 2^-PosFrac, the scale factor that converts a fixed-point difference to
// the pipeline float format. Kernels hoist it out of their pair loops.
func (f Format) PosResolution() float64 { return math.Ldexp(1, -int(f.PosFrac)) }

// FloatBits returns the raw IEEE-754 bit pattern of x. It exists so that
// serialization layers (the chip's ECC-protected DRAM image, snapshot
// codecs) cross the float↔bits boundary through this package: grapelint's
// gfixedboundary analyzer forbids math.Float64bits outside gfixed, keeping
// every bit-level number-format decision in one place.
func FloatBits(x float64) uint64 { return math.Float64bits(x) }

// FloatFromBits is the inverse of FloatBits.
func FloatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// PosRange returns the largest representable coordinate magnitude.
func (f Format) PosRange() float64 { return math.Ldexp(1, 63-int(f.PosFrac)) }

// DiffToFloat computes the coordinate difference b-a exactly in fixed
// point and converts it to the pipeline's floating format. This is the
// chip's first pipeline stage: because the subtraction is exact, distant
// pairs lose no precision to catastrophic cancellation.
func (f Format) DiffToFloat(a, b Fixed64) float64 {
	return f.Round(f.FromFixed(b - a))
}

// Round rounds x to the pipeline mantissa width (round-to-nearest-even).
// Zero, infinities and NaN pass through unchanged.
//
//grape:noalloc
func (f Format) Round(x float64) float64 {
	return RoundMantissa(x, f.MantBits)
}

// RoundMantissa rounds x to the given mantissa width (including the
// implicit bit), round-to-nearest-even. bits must be in [1, 53]; 53 is an
// identity. This sits on the chip emulator's innermost loop, so it works
// directly on the IEEE-754 bit pattern.
//
//grape:noalloc
func RoundMantissa(x float64, bits uint) float64 {
	if x == 0 || bits >= 53 {
		return x
	}
	b := math.Float64bits(x)
	exp := (b >> 52) & 0x7ff
	if exp == 0x7ff {
		return x // Inf or NaN
	}
	if exp == 0 {
		return roundSubnormal(x, bits)
	}
	// Keep bits-1 stored fraction bits; clear and round the rest.
	shift := 53 - bits
	half := uint64(1) << (shift - 1)
	mask := uint64(1)<<shift - 1
	frac := b & mask
	b &^= mask
	if frac > half || (frac == half && (b>>shift)&1 == 1) {
		// Round up; a mantissa carry propagates into the exponent, which
		// is exactly the correct IEEE rounding behaviour.
		b += uint64(1) << shift
	}
	return math.Float64frombits(b)
}

// roundSubnormal is the slow exact path for subnormal inputs, kept out of
// line so the normal-number fast path stays within the inlining budget.
//
//grape:noalloc
func roundSubnormal(x float64, bits uint) float64 {
	frac, e := math.Frexp(x)
	scaled := math.Ldexp(frac, int(bits))
	return math.Ldexp(math.RoundToEven(scaled), e-int(bits))
}

// Rounder is a mantissa rounder with the Format's shift/half/mask
// constants hoisted out, for use in kernels that round in a tight loop.
// Obtain one via Format.Rounder (the zero value is NOT valid).
// Rounder.Round is bit-identical to Format.Round but avoids recomputing
// the masks and the two-deep call chain on every pipeline stage.
type Rounder struct {
	bits  uint   // mantissa width; ≥53 (or shift==0) means identity
	shift uint64 // 53 - bits
	half  uint64 // 1 << (shift-1)
	mask  uint64 // 1<<shift - 1
}

// Rounder returns the precomputed rounder for the format's mantissa width.
func (f Format) Rounder() Rounder {
	if f.MantBits >= 53 {
		// Identity sentinel: shift 64 makes b>>shift zero, half 1 and mask 0
		// turn the branch-free carry formula into b+1-1+0 — a no-op — so
		// identity widths need no extra test on the fast path.
		return Rounder{bits: f.MantBits, shift: 64, half: 1, mask: 0}
	}
	shift := uint64(53 - f.MantBits)
	return Rounder{
		bits:  f.MantBits,
		shift: shift,
		half:  uint64(1) << (shift - 1),
		mask:  uint64(1)<<shift - 1,
	}
}

// Round rounds x to the rounder's mantissa width, round-to-nearest-even.
// Bit-identical to RoundMantissa(x, bits). The round-up carry is computed
// branch-free: adding half-1+lsb carries into the kept bits exactly when
// the dropped fraction exceeds half, or equals half with an odd kept lsb.
//
//grape:noalloc
func (r Rounder) Round(x float64) float64 {
	b := math.Float64bits(x)
	if e := (b >> 52) & 0x7ff; e-1 >= 0x7fe {
		// Zero, subnormal, Inf or NaN: off the fast path.
		return r.roundSpecial(x)
	}
	b = (b + r.half - 1 + ((b >> r.shift) & 1)) &^ r.mask
	return math.Float64frombits(b)
}

// roundSpecial handles the rare inputs excluded from Round's fast path.
//
//grape:noalloc
func (r Rounder) roundSpecial(x float64) float64 {
	if r.bits >= 53 || x == 0 {
		return x
	}
	if (math.Float64bits(x)>>52)&0x7ff == 0x7ff {
		return x // Inf or NaN
	}
	return roundSubnormal(x, r.bits)
}

// Accum is a block-floating-point accumulator: Sum counts units of
// 2^(Exp-AccumFrac). Two accumulators with equal Exp merge by exact
// integer addition, which is what the module/board FPGA reduction trees do.
//
// Accum is a plain value type (no interior pointers) so that slabs of
// accumulators can be embedded in larger result records and reused across
// force evaluations without allocation — mirroring the hardware, where
// every accumulator is a register.
type Accum struct {
	Exp      int   // block exponent, fixed before accumulation starts
	Sum      int64 // fixed-point sum
	Overflow bool  // set when a contribution or the sum left the range
	fmt      Format
	scale    float64 // 2^(AccumFrac-Exp), cached for the hot Add path
}

// MakeAccum returns an accumulator value with the given block exponent.
//
//grape:noalloc
func (f Format) MakeAccum(exp int) Accum {
	return Accum{Exp: exp, fmt: f, scale: math.Ldexp(1, int(f.AccumFrac)-exp)}
}

// NewAccum returns an accumulator with the given block exponent. Thin shim
// over MakeAccum for callers that want a heap accumulator.
func (f Format) NewAccum(exp int) *Accum {
	a := f.MakeAccum(exp)
	return &a
}

// Init re-initialises an accumulator in place: zero sum, cleared overflow
// flag, new block exponent. Used by callers that reuse accumulator slabs
// across evaluations.
//
//grape:noalloc
func (a *Accum) Init(f Format, exp int) {
	*a = f.MakeAccum(exp)
}

// Add quantizes v into the block format and adds it. The quantization is
// the ONLY rounding in the whole summation, making the result independent
// of summation order and machine partitioning. Contributions too large for
// the block exponent set the Overflow flag (the hardware's signal to the
// host to retry with a larger exponent).
//
// The integer rounding uses the 2^52 magic-constant trick instead of
// math.RoundToEven: for |q| < 2^52 the addition rounds q to an integer in
// one IEEE round-to-nearest-even operation, and anything ≥ 2^52 is already
// integral. Bit-identical results, but the whole of Add stays within the
// compiler's inlining budget for the kernel's accumulation stage.
//
//grape:noalloc
func (a *Accum) Add(v float64) {
	if v == 0 {
		return
	}
	const two52 = 4.503599627370496e15 // 2^52
	const two62 = 4.611686018427388e18 // 2^62
	q := v * a.scale
	if q < two52 && q > -two52 {
		if q >= 0 {
			q = q + two52 - two52
		} else {
			q = q - two52 + two52
		}
	}
	// The comparison rejects over-range values, ±Inf and NaN in one shot.
	if !(q < two62 && q > -two62) {
		a.Overflow = true
		return
	}
	qi := int64(q)
	s := a.Sum + qi
	// Reject saturation (|s| ≥ 2^62) and two's-complement wraparound
	// (operands share a sign, sum's sign differs) in one predicate.
	if s >= 1<<62 || s <= -(1<<62) ||
		((a.Sum >= 0) == (qi >= 0) && (s >= 0) != (a.Sum >= 0) && a.Sum != 0 && qi != 0) {
		a.Overflow = true
		return
	}
	a.Sum = s
}

// Merge adds another accumulator's partial sum exactly. Both must share
// the same block exponent; mismatch is a programming error and panics, as
// the hardware has no path for it.
//
//grape:noalloc
func (a *Accum) Merge(b *Accum) {
	if a.Exp != b.Exp || a.fmt.AccumFrac != b.fmt.AccumFrac {
		panic("gfixed: merging accumulators with different block formats")
	}
	if b.Overflow {
		a.Overflow = true
	}
	s, ok := addCheck(a.Sum, b.Sum)
	if !ok {
		a.Overflow = true
		return
	}
	a.Sum = s
}

// Value converts the accumulated fixed-point sum back to float64.
func (a *Accum) Value() float64 {
	return math.Ldexp(float64(a.Sum), a.Exp-int(a.fmt.AccumFrac))
}

// Reset clears the sum and overflow flag, keeping the exponent.
func (a *Accum) Reset() {
	a.Sum = 0
	a.Overflow = false
}

func addCheck(a, b int64) (int64, bool) {
	s := a + b
	// Overflow iff operands share a sign and the sum's sign differs.
	if (a >= 0) == (b >= 0) && (s >= 0) != (a >= 0) && a != 0 && b != 0 {
		return 0, false
	}
	return s, true
}

// ExponentFor returns a block exponent suitable for accumulating values
// whose final magnitude is around |v|, with headroom bits of margin for
// intermediate growth. This is the host's "guess from the previous
// timestep" (Section 3.4).
func ExponentFor(v float64, headroom int) int {
	if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return headroom
	}
	_, e := math.Frexp(v)
	return e + headroom
}
