// Package gfixed implements the reduced-precision number formats of the
// GRAPE-6 processor chip (Section 3.4 of the paper):
//
//   - 64-bit fixed-point particle positions, so that coordinate differences
//     are exact;
//   - short-mantissa floating point for the pipeline arithmetic;
//   - block floating point for force accumulation: a fixed-point 64-bit
//     accumulator whose scale is set by an exponent chosen BEFORE the
//     calculation starts.
//
// The block-floating-point design gives GRAPE-6 a property the paper calls
// out explicitly: "the calculated result is independent of the number of
// processor chips used to calculate one force", because the integer
// summation is exact and the only rounding happens when each pairwise
// force is shifted into the block format. This package preserves that
// property bit-for-bit, and the chip emulator's tests rely on it.
package gfixed

import (
	"errors"
	"fmt"
	"math"
)

// Fixed64 is a position coordinate in 64-bit two's-complement fixed point.
// The binary point position is carried by the Format, not the value.
type Fixed64 int64

// Format describes the chip's arithmetic configuration.
type Format struct {
	// PosFrac is the number of fraction bits of the fixed-point position
	// format. The representable range is ±2^(63-PosFrac).
	PosFrac uint

	// MantBits is the mantissa width (including the implicit leading 1)
	// used for the pipeline's floating-point operations.
	MantBits uint

	// AccumFrac is the number of fraction bits of the block-floating-point
	// accumulator relative to 2^Exp: a contribution v is stored as the
	// integer round(v · 2^(AccumFrac-Exp)).
	AccumFrac uint
}

// Grape6 is the default format, modelled on the published GRAPE-6 word
// lengths: 64-bit fixed-point positions with 44 fraction bits (range
// ±2^19, resolution 2^-44), a 32-bit-mantissa pipeline, and a 64-bit
// accumulator with 40 fraction bits below the block exponent.
//
// The pipeline width follows the hardware's design rule rather than a
// specific gate count: the paper notes "the word length itself is chosen
// as such" that arithmetic error never affects the simulation. Below ~28
// mantissa bits the Aarseth timestep criterion becomes noise-dominated
// (reconstructed crackle ∝ δa/dt³) and block timesteps collapse — the
// ablation bench BenchmarkAblationMantissa demonstrates exactly this
// cliff, and 32 bits sits safely above it.
var Grape6 = Format{
	PosFrac:   44,
	MantBits:  32,
	AccumFrac: 40,
}

// Validate reports configuration errors.
func (f Format) Validate() error {
	if f.PosFrac == 0 || f.PosFrac > 62 {
		return fmt.Errorf("gfixed: PosFrac %d out of range [1,62]", f.PosFrac)
	}
	if f.MantBits < 2 || f.MantBits > 53 {
		return fmt.Errorf("gfixed: MantBits %d out of range [2,53]", f.MantBits)
	}
	if f.AccumFrac == 0 || f.AccumFrac > 62 {
		return fmt.Errorf("gfixed: AccumFrac %d out of range [1,62]", f.AccumFrac)
	}
	return nil
}

// ErrPosRange is returned when a coordinate exceeds the fixed-point range.
var ErrPosRange = errors.New("gfixed: position outside fixed-point range")

const two63 = 9.223372036854776e18 // 2^63

// ToFixed converts a float64 coordinate to fixed point, rounding to
// nearest. It returns ErrPosRange if x is outside the representable range
// or not finite.
func (f Format) ToFixed(x float64) (Fixed64, error) {
	// Multiplying by an exact power of two is exact; the comparison below
	// also rejects NaN and ±Inf.
	scaled := math.RoundToEven(x * float64(uint64(1)<<f.PosFrac))
	if !(scaled < two63 && scaled >= -two63) {
		return 0, ErrPosRange
	}
	return Fixed64(scaled), nil
}

// FromFixed converts a fixed-point coordinate back to float64.
func (f Format) FromFixed(v Fixed64) float64 {
	return float64(v) * (1 / float64(uint64(1)<<f.PosFrac))
}

// PosResolution returns the quantum of the position format.
func (f Format) PosResolution() float64 { return math.Ldexp(1, -int(f.PosFrac)) }

// PosRange returns the largest representable coordinate magnitude.
func (f Format) PosRange() float64 { return math.Ldexp(1, 63-int(f.PosFrac)) }

// DiffToFloat computes the coordinate difference b-a exactly in fixed
// point and converts it to the pipeline's floating format. This is the
// chip's first pipeline stage: because the subtraction is exact, distant
// pairs lose no precision to catastrophic cancellation.
func (f Format) DiffToFloat(a, b Fixed64) float64 {
	return f.Round(f.FromFixed(b - a))
}

// Round rounds x to the pipeline mantissa width (round-to-nearest-even).
// Zero, infinities and NaN pass through unchanged.
func (f Format) Round(x float64) float64 {
	return RoundMantissa(x, f.MantBits)
}

// RoundMantissa rounds x to the given mantissa width (including the
// implicit bit), round-to-nearest-even. bits must be in [1, 53]; 53 is an
// identity. This sits on the chip emulator's innermost loop, so it works
// directly on the IEEE-754 bit pattern.
func RoundMantissa(x float64, bits uint) float64 {
	if x == 0 || bits >= 53 {
		return x
	}
	b := math.Float64bits(x)
	exp := (b >> 52) & 0x7ff
	if exp == 0x7ff {
		return x // Inf or NaN
	}
	if exp == 0 {
		// Subnormal: fall back to the slow exact path.
		frac, e := math.Frexp(x)
		scaled := math.Ldexp(frac, int(bits))
		return math.Ldexp(math.RoundToEven(scaled), e-int(bits))
	}
	// Keep bits-1 stored fraction bits; clear and round the rest.
	shift := 53 - bits
	half := uint64(1) << (shift - 1)
	mask := uint64(1)<<shift - 1
	frac := b & mask
	b &^= mask
	if frac > half || (frac == half && (b>>shift)&1 == 1) {
		// Round up; a mantissa carry propagates into the exponent, which
		// is exactly the correct IEEE rounding behaviour.
		b += uint64(1) << shift
	}
	return math.Float64frombits(b)
}

// Accum is a block-floating-point accumulator: Sum counts units of
// 2^(Exp-AccumFrac). Two accumulators with equal Exp merge by exact
// integer addition, which is what the module/board FPGA reduction trees do.
type Accum struct {
	Exp      int   // block exponent, fixed before accumulation starts
	Sum      int64 // fixed-point sum
	Overflow bool  // set when a contribution or the sum left the range
	fmt      Format
	scale    float64 // 2^(AccumFrac-Exp), cached for the hot Add path
}

// NewAccum returns an accumulator with the given block exponent.
func (f Format) NewAccum(exp int) *Accum {
	return &Accum{Exp: exp, fmt: f, scale: math.Ldexp(1, int(f.AccumFrac)-exp)}
}

// Add quantizes v into the block format and adds it. The quantization is
// the ONLY rounding in the whole summation, making the result independent
// of summation order and machine partitioning. Contributions too large for
// the block exponent set the Overflow flag (the hardware's signal to the
// host to retry with a larger exponent).
func (a *Accum) Add(v float64) {
	if v == 0 {
		return
	}
	const two62 = 4.611686018427388e18 // 2^62
	q := math.RoundToEven(v * a.scale)
	// The comparison rejects over-range values, ±Inf and NaN in one shot.
	if !(q < two62 && q > -two62) {
		a.Overflow = true
		return
	}
	s, ok := addCheck(a.Sum, int64(q))
	if !ok || s >= 1<<62 || s <= -(1<<62) {
		a.Overflow = true
		return
	}
	a.Sum = s
}

// Merge adds another accumulator's partial sum exactly. Both must share
// the same block exponent; mismatch is a programming error and panics, as
// the hardware has no path for it.
func (a *Accum) Merge(b *Accum) {
	if a.Exp != b.Exp || a.fmt.AccumFrac != b.fmt.AccumFrac {
		panic("gfixed: merging accumulators with different block formats")
	}
	if b.Overflow {
		a.Overflow = true
	}
	s, ok := addCheck(a.Sum, b.Sum)
	if !ok {
		a.Overflow = true
		return
	}
	a.Sum = s
}

// Value converts the accumulated fixed-point sum back to float64.
func (a *Accum) Value() float64 {
	return math.Ldexp(float64(a.Sum), a.Exp-int(a.fmt.AccumFrac))
}

// Reset clears the sum and overflow flag, keeping the exponent.
func (a *Accum) Reset() {
	a.Sum = 0
	a.Overflow = false
}

func addCheck(a, b int64) (int64, bool) {
	s := a + b
	// Overflow iff operands share a sign and the sum's sign differs.
	if (a >= 0) == (b >= 0) && (s >= 0) != (a >= 0) && a != 0 && b != 0 {
		return 0, false
	}
	return s, true
}

// ExponentFor returns a block exponent suitable for accumulating values
// whose final magnitude is around |v|, with headroom bits of margin for
// intermediate growth. This is the host's "guess from the previous
// timestep" (Section 3.4).
func ExponentFor(v float64, headroom int) int {
	if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return headroom
	}
	_, e := math.Frexp(v)
	return e + headroom
}
