package gfixed

import (
	"math"
	"testing"

	"grape6/internal/xrand"
)

// refAdd is the pre-optimization Add: math.RoundToEven quantization and
// the two-step overflow check. The hot Add must stay bit-identical to it.
func refAdd(a *Accum, v float64) {
	if v == 0 {
		return
	}
	const two62 = 4.611686018427388e18 // 2^62
	q := math.RoundToEven(v * a.scale)
	if !(q < two62 && q > -two62) {
		a.Overflow = true
		return
	}
	s, ok := addCheck(a.Sum, int64(q))
	if !ok || s >= 1<<62 || s <= -(1<<62) {
		a.Overflow = true
		return
	}
	a.Sum = s
}

// interestingFloats covers the edge cases of the rounding fast paths:
// zeros, subnormals, values at the magic-constant and saturation
// boundaries, infinities and NaN.
func interestingFloats() []float64 {
	vs := []float64{
		0, math.Copysign(0, -1),
		1, -1, 0.5, 1.5, 2.5, math.Pi, -math.E,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		math.Ldexp(1, -1030), math.Ldexp(1.37, -1040), // subnormals
		math.Ldexp(1, -1022), math.Nextafter(math.Ldexp(1, -1022), 0),
		math.MaxFloat64, -math.MaxFloat64,
		math.Ldexp(1, 52), math.Ldexp(1, 52) - 0.5, math.Ldexp(1, 52) + 1,
		math.Ldexp(1, 62), math.Nextafter(math.Ldexp(1, 62), 0),
		math.Inf(1), math.Inf(-1), math.NaN(),
	}
	// Tie patterns for round-to-even: x.5 ulps at various widths.
	for _, bits := range []uint{8, 24, 32} {
		ulp := math.Ldexp(1, -int(bits))
		vs = append(vs, 1+ulp, 1+3*ulp, 1+ulp/2, 1+3*ulp/2, -(1 + 3*ulp/2))
	}
	return vs
}

func TestRounderMatchesRoundMantissa(t *testing.T) {
	rng := xrand.New(99)
	for _, bits := range []uint{2, 8, 24, 32, 52, 53} {
		f := Format{PosFrac: 44, MantBits: bits, AccumFrac: 40}
		r := f.Rounder()
		check := func(x float64) {
			t.Helper()
			want := RoundMantissa(x, bits)
			got := r.Round(x)
			if math.Float64bits(got) != math.Float64bits(want) &&
				!(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("bits=%d x=%g (%#x): Rounder %g (%#x) != RoundMantissa %g (%#x)",
					bits, x, math.Float64bits(x), got, math.Float64bits(got),
					want, math.Float64bits(want))
			}
		}
		for _, x := range interestingFloats() {
			check(x)
		}
		for i := 0; i < 100000; i++ {
			x := math.Float64frombits(rng.Uint64())
			check(x)
		}
	}
}

func TestAddMatchesReference(t *testing.T) {
	rng := xrand.New(100)
	for _, exp := range []int{-20, 0, 8, 40, 80} {
		a := Grape6.MakeAccum(exp)
		b := Grape6.MakeAccum(exp)
		step := func(v float64) {
			t.Helper()
			a.Add(v)
			refAdd(&b, v)
			if a.Sum != b.Sum || a.Overflow != b.Overflow {
				t.Fatalf("exp=%d v=%g: Add (sum=%d ovf=%v) != reference (sum=%d ovf=%v)",
					exp, v, a.Sum, a.Overflow, b.Sum, b.Overflow)
			}
			if a.Overflow {
				a.Reset()
				b.Reset()
			}
		}
		for _, v := range interestingFloats() {
			step(v)
		}
		for i := 0; i < 100000; i++ {
			// Mix magnitudes so quantized values land both below and above
			// the 2^52 magic-constant boundary.
			v := rng.Norm() * math.Ldexp(1, rng.Intn(40)-10+exp)
			step(v)
		}
	}
}

func TestAccumInitReuse(t *testing.T) {
	a := Grape6.MakeAccum(4)
	a.Add(1.25)
	a.Add(-0.5)
	if a.Sum == 0 {
		t.Fatal("accumulator did not accumulate")
	}
	a.Init(Grape6, 7)
	fresh := Grape6.MakeAccum(7)
	if a != fresh {
		t.Errorf("Init did not restore the fresh state: %+v vs %+v", a, fresh)
	}
	a.Add(3)
	fresh.Add(3)
	if a.Sum != fresh.Sum {
		t.Errorf("reused accumulator diverges: %d vs %d", a.Sum, fresh.Sum)
	}
}

func BenchmarkRounderRound(b *testing.B) {
	r := Grape6.Rounder()
	b.ReportAllocs()
	var s float64
	for i := 0; i < b.N; i++ {
		s += r.Round(math.Pi * float64(i))
	}
	_ = s
}
