package bench

import (
	"fmt"
	"math"

	"grape6/internal/ahmadcohen"
	"grape6/internal/board"
	"grape6/internal/gbackend"
	"grape6/internal/hermite"
	"grape6/internal/model"
	"grape6/internal/xrand"
)

// RunValidation is the cross-cutting accuracy experiment: it integrates
// the same Plummer model on the float64 reference and on the emulated
// GRAPE-6 hardware, reporting trajectory deviation and energy drift, and
// verifies the machine-size bit-invariance of Section 3.4 end to end.
func RunValidation(o *Options) (Experiment, error) {
	e := Experiment{
		ID:    "v1",
		Title: "validation: emulated hardware vs float64 reference",
		Paper: "Section 3.4: word lengths chosen so arithmetic never affects the simulation; results machine-size independent",
	}
	n := 64
	until := 0.25
	if o.Quick {
		until = 0.125
	}
	eps := 1.0 / 64

	mkHW := func(boards int) hermite.Backend {
		cfg := board.Default
		cfg.ChipsPerModule = 2
		cfg.ModulesPerBoard = 2
		cfg.Boards = boards
		return gbackend.New(board.New(cfg))
	}
	run := func(b hermite.Backend) (*hermite.Integrator, error) {
		sys := model.Plummer(n, xrand.New(o.Seed+3))
		it, err := hermite.New(sys, b, hermite.DefaultParams(eps))
		if err != nil {
			return nil, err
		}
		it.Run(until)
		return it, nil
	}

	ref, err := run(hermite.NewDirectBackend())
	if err != nil {
		return e, err
	}
	hw1, err := run(mkHW(1))
	if err != nil {
		return e, err
	}
	hw4, err := run(mkHW(4))
	if err != nil {
		return e, err
	}

	var maxDev float64
	bitIdentical := true
	for i := 0; i < n; i++ {
		if d := ref.Sys.Pos[i].Dist(hw1.Sys.Pos[i]); d > maxDev {
			maxDev = d
		}
		if hw1.Sys.Pos[i] != hw4.Sys.Pos[i] || hw1.Sys.Vel[i] != hw4.Sys.Vel[i] {
			bitIdentical = false
		}
	}

	e0 := model.Plummer(n, xrand.New(o.Seed+3)).TotalEnergy(eps)
	drift := func(it *hermite.Integrator) float64 {
		return math.Abs((it.Energy() - e0) / e0)
	}

	s := Series{Label: "validation metrics", YUnits: "dimensionless"}
	s.Points = append(s.Points,
		Point{N: 1, Value: maxDev},                 // max position deviation HW vs reference
		Point{N: 2, Value: drift(ref)},             // reference energy drift
		Point{N: 3, Value: drift(hw1)},             // hardware energy drift
		Point{N: 4, Value: boolTo01(bitIdentical)}, // 1-board vs 4-board bit identity
	)
	e.Series = append(e.Series, s)
	e.Notes = append(e.Notes,
		"x: 1=max |Δx| HW vs float64, 2=|dE/E| reference, 3=|dE/E| hardware, 4=bit-identity across board counts (1=yes)",
		fmt.Sprintf("N=%d, t=%g, eps=1/64", n, until))
	if !bitIdentical {
		e.Notes = append(e.Notes, "WARNING: machine-size bit-invariance violated")
	}
	return e, nil
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// RunAblationNeighbourScheme measures the Ahmad-Cohen neighbour scheme's
// pairwise-work saving over the plain Hermite integrator — the software
// optimisation layered on the same hardware, from the paper's reference
// [10] (Makino & Aarseth 1992).
func RunAblationNeighbourScheme(o *Options) (Experiment, error) {
	e := Experiment{
		ID:    "a7",
		Title: "ablation: Ahmad-Cohen neighbour scheme pairwise-work saving",
		Paper: "reference [10]: neighbour scheme + Hermite, the NBODY-family algorithm",
	}
	ns := []int{128, 256}
	if !o.Quick {
		ns = []int{128, 256, 512}
	}
	until := 0.125
	eps := 1.0 / 64

	saving := Series{Label: "pairwise-work saving factor", YUnits: "x"}
	for _, n := range ns {
		acSys := model.Plummer(n, xrand.New(o.Seed+uint64(n)))
		ac, err := ahmadcohen.New(acSys, ahmadcohen.DefaultParams(eps))
		if err != nil {
			return e, err
		}
		ac.Run(until)

		plainSys := model.Plummer(n, xrand.New(o.Seed+uint64(n)))
		plain, err := hermite.New(plainSys, hermite.NewDirectBackend(), hermite.DefaultParams(eps))
		if err != nil {
			return e, err
		}
		plain.Run(until)

		saving.Points = append(saving.Points, Point{
			N: n, Value: float64(plain.Interactions) / float64(ac.PairOps),
		})
	}
	e.Series = append(e.Series, saving)
	e.Notes = append(e.Notes, "saving grows with N: regular (full-N) force evaluations become rarer relative to neighbour work")
	return e, nil
}
