package bench

import (
	"fmt"
	"math"

	"grape6/internal/board"
	"grape6/internal/chip"
	"grape6/internal/direct"
	"grape6/internal/gbackend"
	"grape6/internal/hermite"
	"grape6/internal/model"
	"grape6/internal/nbody"
	"grape6/internal/perfmodel"
	"grape6/internal/simnet"
	"grape6/internal/units"
	"grape6/internal/vec"
	"grape6/internal/xrand"
)

// measureStepRatio integrates briefly and returns the harmonic-mean /
// minimum ratio of the individual timesteps — the quantity behind the
// paper's "factor 100" shared-timestep argument.
func measureStepRatio(sys *nbody.System) (float64, error) {
	it, err := hermite.New(sys, hermite.NewDirectBackend(), hermite.DefaultParams(1.0/64))
	if err != nil {
		return 0, err
	}
	it.Run(1.0 / 64)
	steps := append([]float64(nil), sys.Step...)
	min := steps[0]
	var inv float64
	for _, s := range steps {
		if s < min {
			min = s
		}
		inv += 1 / s
	}
	return float64(len(steps)) / inv / min, nil
}

// RunAblationMantissa demonstrates the word-length design rule of Section
// 3.4 ("the word length itself is chosen as such"): below ~28 pipeline
// mantissa bits the Aarseth timestep criterion is dominated by arithmetic
// noise and the block count explodes.
func RunAblationMantissa(o *Options) (Experiment, error) {
	e := Experiment{
		ID:    "a1",
		Title: "ablation: pipeline mantissa width vs block-step count",
		Paper: "design-rule reproduction: word lengths chosen so arithmetic error never drives the integrator",
	}
	n := 48
	until := 0.05
	if o.Quick {
		until = 0.025
	}
	s := Series{Label: "block steps per run", YUnits: "blocks"}
	for _, mant := range []uint{24, 26, 28, 30, 32, 40} {
		cfg := board.Default
		cfg.ChipsPerModule = 2
		cfg.ModulesPerBoard = 2
		cfg.Boards = 1
		cfg.Chip.Format.MantBits = mant
		sys := model.Plummer(n, xrand.New(o.Seed))
		it, err := hermite.New(sys, gbackend.New(board.New(cfg)), hermite.DefaultParams(1.0/64))
		if err != nil {
			return e, err
		}
		it.Run(until)
		s.Points = append(s.Points, Point{N: int(mant), Value: float64(it.Blocks)})
	}
	e.Series = append(e.Series, s)
	e.Notes = append(e.Notes, "x = mantissa bits; blow-up at the short end is the timestep-noise cliff")
	return e, nil
}

// RunAblationAccumulator quantifies the block-floating-point accumulator
// width against force accuracy — the other half of the Section 3.4
// number-format design.
func RunAblationAccumulator(o *Options) (Experiment, error) {
	e := Experiment{
		ID:    "a2",
		Title: "ablation: accumulator fraction bits vs force error",
		Paper: "fixed-point block-float summation: error set by quantization, not by N or order",
	}
	n := 256
	sys := model.Plummer(n, xrand.New(o.Seed))
	eps := 1.0 / 64
	ref := direct.JSet{Mass: sys.Mass, Pos: sys.Pos, Vel: sys.Vel}

	s := Series{Label: "max relative acc error", YUnits: "relative"}
	for _, frac := range []uint{12, 16, 24, 32, 40, 48} {
		cfg := chip.Default
		cfg.Format.AccumFrac = frac
		ch := chip.New(cfg)
		js := make([]chip.JParticle, n)
		for i := 0; i < n; i++ {
			p, err := chip.MakeJParticle(cfg.Format, i, 0, sys.Mass[i], sys.Pos[i], sys.Vel[i], vec.Zero, vec.Zero, vec.Zero)
			if err != nil {
				return e, err
			}
			js[i] = p
		}
		if err := ch.LoadJ(js); err != nil {
			return e, err
		}
		var maxRel float64
		ps := make([]chip.Partial, 1)
		for i := 0; i < 16; i++ {
			ip := chip.IParticle{SelfID: i, ExpAcc: 4, ExpJerk: 6, ExpPot: 6}
			x, v := chip.PredictParticle(cfg.Format, &js[i], 0)
			ip.X, ip.V = x, v
			ch.ForceBatchInto(ps, 0, []chip.IParticle{ip}, eps)
			acc, _, _ := chip.PartialValues(&ps[0])
			want := direct.EvalSkip(sys.Pos[i], sys.Vel[i], ref, eps, i)
			rel := acc.Dist(want.Acc) / want.Acc.Norm()
			if rel > maxRel {
				maxRel = rel
			}
		}
		s.Points = append(s.Points, Point{N: int(frac), Value: maxRel})
	}
	e.Series = append(e.Series, s)
	e.Notes = append(e.Notes, "x = accumulator fraction bits below the block exponent")
	return e, nil
}

// RunAblationVMP reproduces the Section 3.4 parallelism-degree argument:
// the efficiency of a machine whose pipelines serve B i-particles per pass
// collapses when typical blocks are smaller than B. GRAPE-6 chose local
// memories to keep B at 48 per chip; a GRAPE-4-style shared-memory design
// would have pushed it to ~1000.
func RunAblationVMP(o *Options) (Experiment, error) {
	e := Experiment{
		ID:    "a3",
		Title: "ablation: i-parallelism degree vs single-node efficiency",
		Paper: "Section 3.4: degree ~1000 'too large ... for star clusters with small, high-density cores'",
	}
	w, err := o.Workload(units.SoftConstant)
	if err != nil {
		return e, err
	}
	for _, batch := range []int{48, 192, 768} {
		m := perfmodel.SingleNode(simnet.NS83820, perfmodel.Athlon)
		// Re-shape the hardware: same peak, different i-parallelism.
		m.HW.VMP = batch / m.HW.Pipelines
		s := Series{Label: fmt.Sprintf("i-batch %d", batch), YUnits: "efficiency"}
		for _, n := range o.curveNs() {
			s.Points = append(s.Points, Point{N: n, Value: m.Efficiency(n, w.MeanBlockSize(n))})
		}
		e.Series = append(e.Series, s)
	}
	return e, nil
}

// RunAblationMyrinet evaluates the upgrade the paper wanted but could not
// afford: a Myrinet-class low-latency network on the full machine.
func RunAblationMyrinet(o *Options) (Experiment, error) {
	e := Experiment{
		ID:    "a4",
		Title: "ablation: Myrinet-class network on the 16-node machine",
		Paper: "'Myrinet would provide the latency 5-10 times shorter' (Section 4.4)",
	}
	w, err := o.Workload(units.SoftConstant)
	if err != nil {
		return e, err
	}
	for _, c := range []struct {
		label string
		nic   simnet.NIC
	}{
		{"NS83820 (TCP/IP)", simnet.NS83820},
		{"NS83820 + GAMMA/VIA (kernel bypass)", simnet.KernelBypass},
		{"Intel82540EM (tuned TCP/IP)", simnet.Intel82540EM},
		{"Myrinet-class", simnet.Myrinet},
	} {
		m := perfmodel.MultiCluster(4, c.nic, perfmodel.P4)
		s := Series{Label: c.label, YUnits: "Tflops"}
		for _, n := range o.curveNs() {
			s.Points = append(s.Points, Point{N: n, Value: m.Speed(n, w.MeanBlockSize(n)) / 1e12})
		}
		e.Series = append(e.Series, s)
	}
	return e, nil
}

// RunAblationGrape4 compares the predecessor machine against GRAPE-6
// configurations — Section 3's design-evolution argument ("two orders of
// magnitude faster than that of GRAPE-4" at scale, but with carefully
// bounded i-parallelism so that small-core star clusters still run well).
func RunAblationGrape4(o *Options) (Experiment, error) {
	e := Experiment{
		ID:    "a6",
		Title: "ablation: GRAPE-4 (1 Tflops, batch 384) vs GRAPE-6 configurations",
		Paper: "Section 3: ~100x chip speedup; parallelism kept ≤400 'not much different from full-size GRAPE-4'",
	}
	w, err := o.Workload(units.SoftConstant)
	if err != nil {
		return e, err
	}
	for _, c := range []struct {
		label string
		m     perfmodel.Machine
	}{
		{"GRAPE-4 (full machine)", perfmodel.Grape4Machine()},
		{"GRAPE-6 single node", perfmodel.SingleNode(simnet.NS83820, perfmodel.Athlon)},
		{"GRAPE-6 full machine", perfmodel.MultiCluster(4, simnet.Intel82540EM, perfmodel.P4)},
	} {
		s := Series{Label: c.label, YUnits: "Gflops"}
		for _, n := range o.curveNs() {
			s.Points = append(s.Points, Point{N: n, Value: c.m.Speed(n, w.MeanBlockSize(n)) / 1e9})
		}
		e.Series = append(e.Series, s)
	}
	e.Notes = append(e.Notes,
		fmt.Sprintf("peaks: GRAPE-4 %.2f Tflops, GRAPE-6 single node %.2f, full %.2f",
			perfmodel.Grape4Machine().PeakFlops()/1e12,
			perfmodel.SingleNode(simnet.NS83820, perfmodel.Athlon).PeakFlops()/1e12,
			perfmodel.MultiCluster(4, simnet.Intel82540EM, perfmodel.P4).PeakFlops()/1e12))
	return e, nil
}

// RunAblationHostGrid compares the paper's two topology options (Section
// 3.2): the r²-host grid (each host needs only O(N/r) communication but
// you need r² hosts) versus the GRAPE-side hardware network with a 1-D
// host array. We compare predicted per-block synchronization+exchange cost.
func RunAblationHostGrid(o *Options) (Experiment, error) {
	e := Experiment{
		ID:    "a5",
		Title: "ablation: r^2-host grid vs GRAPE hardware network (sync cost per block)",
		Paper: "Section 3.2: the hybrid chosen 'to make a reasonable compromise'",
	}
	w, err := o.Workload(units.SoftConstant)
	if err != nil {
		return e, err
	}
	nic := simnet.NS83820
	gridCost := Series{Label: "16-host 2D grid (host-network updates)", YUnits: "s/block"}
	hwCost := Series{Label: "4-host + GRAPE network (sync only)", YUnits: "s/block"}
	for _, n := range o.curveNs() {
		nb := int(math.Round(w.MeanBlockSize(n)))
		if nb < 1 {
			nb = 1
		}
		// Host grid (r=4): diagonal broadcasts nb/r updates to 2(r-1)
		// hosts plus an allreduce over 16.
		r := 4
		upBytes := float64(nb/r+1) * 176 * float64(2*(r-1))
		grid := upBytes/nic.Bandwidth + 4*nic.OneWay(8)
		gridCost.Points = append(gridCost.Points, Point{N: n, Value: grid})
		// GRAPE network: the boards move the data; hosts only butterfly.
		hw := 2 * nic.OneWay(8)
		hwCost.Points = append(hwCost.Points, Point{N: n, Value: hw})
	}
	e.Series = append(e.Series, gridCost, hwCost)
	e.Notes = append(e.Notes,
		"the hardware network wins per block, but offers no sub-machine partitioning — the flexibility trade the paper describes")
	return e, nil
}
