// Package bench is the experiment harness: one runner per table and
// figure of the paper's evaluation (see DESIGN.md's experiment index).
// Each runner produces an Experiment — labelled series of (N, value)
// points plus the paper's reference numbers — that cmd/grape6bench prints
// and bench_test.go wraps as Go benchmarks.
package bench

import (
	"fmt"
	"io"
	"sort"

	"grape6/internal/sched"
	"grape6/internal/units"
)

// Point is one datum of a series.
type Point struct {
	N     int     // particle count (or other x value)
	Value float64 // y value (units depend on the experiment)
}

// Series is one labelled curve.
type Series struct {
	Label  string
	YUnits string
	Points []Point
}

// Experiment is a reproduced table or figure.
type Experiment struct {
	ID     string // experiment id from DESIGN.md: "t1", "f13", ...
	Title  string
	Paper  string // the paper's reported result, for side-by-side reading
	Series []Series
	Notes  []string
}

// Options tunes the harness cost.
type Options struct {
	// Quick shrinks the measured workloads so the whole suite runs in
	// seconds (used by unit tests and -bench smoke runs).
	Quick bool
	// Seed makes the stochastic parts reproducible.
	Seed uint64

	// workload cache, keyed by softening kind.
	workloads map[units.SofteningKind]*sched.Workload
}

// DefaultOptions returns the full-fidelity configuration.
func DefaultOptions() *Options {
	return &Options{Seed: 20031115} // the paper's conference date
}

// QuickOptions returns the fast configuration for tests.
func QuickOptions() *Options {
	return &Options{Quick: true, Seed: 20031115}
}

// measureNs returns the particle counts used for functional workload
// measurement.
func (o *Options) measureNs() []int {
	if o.Quick {
		// The block-statistics fit needs at least a decade of N above the
		// tiny-N regime, or the extrapolated mean block size comes out far
		// too flat (the paper's nb ∝ N behaviour emerges above N ≈ 256).
		return []int{256, 512, 1024}
	}
	return sched.DefaultNs
}

// measureDuration returns the simulated time per workload measurement.
func (o *Options) measureDuration() float64 {
	if o.Quick {
		return 0.25
	}
	return 0.5
}

// curveNs returns the N grid for model-driven curves.
func (o *Options) curveNs() []int {
	if o.Quick {
		return []int{1000, 3000, 10000, 30000, 100000, 300000, 1000000}
	}
	return []int{
		500, 1000, 2000, 3000, 5000, 10000, 20000, 30000, 50000,
		100000, 200000, 300000, 500000, 1000000, 1800000,
	}
}

// CurveNs returns the default N grid for model-driven curves at this
// fidelity — the grid scenario specs inherit when they name none.
func (o *Options) CurveNs() []int {
	return append([]int(nil), o.curveNs()...)
}

// Workload returns (building and caching on first use) the fitted block
// statistics for a softening choice.
func (o *Options) Workload(kind units.SofteningKind) (*sched.Workload, error) {
	if o.workloads == nil {
		o.workloads = make(map[units.SofteningKind]*sched.Workload)
	}
	if w, ok := o.workloads[kind]; ok {
		return w, nil
	}
	w, err := sched.FitWorkload(kind, o.measureNs(), o.measureDuration(), o.Seed)
	if err != nil {
		return nil, err
	}
	o.workloads[kind] = w
	return w, nil
}

// Format renders the experiment as an aligned text report.
func (e Experiment) Format(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Title)
	if e.Paper != "" {
		fmt.Fprintf(w, "paper: %s\n", e.Paper)
	}
	for _, s := range e.Series {
		fmt.Fprintf(w, "\n-- %s", s.Label)
		if s.YUnits != "" {
			fmt.Fprintf(w, " [%s]", s.YUnits)
		}
		fmt.Fprintln(w)
		pts := append([]Point(nil), s.Points...)
		sort.Slice(pts, func(i, j int) bool { return pts[i].N < pts[j].N })
		for _, p := range pts {
			fmt.Fprintf(w, "  N=%-9d %.6g\n", p.N, p.Value)
		}
	}
	for _, n := range e.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// FindSeries returns the series with the given label, or nil.
func (e Experiment) FindSeries(label string) *Series {
	for i := range e.Series {
		if e.Series[i].Label == label {
			return &e.Series[i]
		}
	}
	return nil
}

// ValueAt returns the value at the given N of a series, and whether it
// exists.
func (s *Series) ValueAt(n int) (float64, bool) {
	for _, p := range s.Points {
		if p.N == n {
			return p.Value, true
		}
	}
	return 0, false
}
