package bench

import (
	"fmt"

	"grape6/internal/perfmodel"
	"grape6/internal/sched"
	"grape6/internal/simnet"
	"grape6/internal/timing"
	"grape6/internal/units"
	"grape6/internal/xrand"
)

// speedCurve produces a Gflops-vs-N series for one machine and softening
// workload: measured traces where they exist, synthetic traces beyond.
func speedCurve(o *Options, label string, m perfmodel.Machine, w *sched.Workload, ns []int) Series {
	s := Series{Label: label, YUnits: "Gflops"}
	rng := xrand.New(o.Seed + 17)

	// Functional (measured-trace) points at the laptop-feasible sizes.
	for _, tr := range w.Measured {
		rep := timing.Simulate(m, tr)
		s.Points = append(s.Points, Point{N: tr.N, Value: rep.SpeedFlops() / 1e9})
	}
	// Model-driven points at paper scale.
	for _, n := range ns {
		tr := w.Synthetic(n, 0.01, rng.Split())
		rep := timing.Simulate(m, tr)
		s.Points = append(s.Points, Point{N: n, Value: rep.SpeedFlops() / 1e9})
	}
	return s
}

// timePerStepCurve produces a seconds-per-step-vs-N series.
func timePerStepCurve(o *Options, label string, m perfmodel.Machine, w *sched.Workload, ns []int) Series {
	s := Series{Label: label, YUnits: "s/step"}
	rng := xrand.New(o.Seed + 23)
	for _, tr := range w.Measured {
		rep := timing.Simulate(m, tr)
		s.Points = append(s.Points, Point{N: tr.N, Value: rep.TimePerStep()})
	}
	for _, n := range ns {
		tr := w.Synthetic(n, 0.01, rng.Split())
		rep := timing.Simulate(m, tr)
		s.Points = append(s.Points, Point{N: n, Value: rep.TimePerStep()})
	}
	return s
}

// RunF13 reproduces Figure 13: calculation speed of the 1-host 4-board
// system versus N, for the three softening choices.
func RunF13(o *Options) (Experiment, error) {
	e := Experiment{
		ID:    "f13",
		Title: "single-node (1 host, 4 boards) speed vs N, three softenings",
		Paper: "speed practically independent of softening; >1 Tflops at N=2e5",
	}
	m := perfmodel.SingleNode(simnet.NS83820, perfmodel.Athlon)
	for _, kind := range []units.SofteningKind{units.SoftConstant, units.SoftNDependent, units.SoftOverN} {
		w, err := o.Workload(kind)
		if err != nil {
			return e, err
		}
		e.Series = append(e.Series, speedCurve(o, kind.String(), m, w, o.curveNs()))
	}
	e.Notes = append(e.Notes,
		"measured-trace points at small N; power-law-extrapolated synthetic traces beyond (DESIGN.md §3)")
	return e, nil
}

// RunF14 reproduces Figure 14: CPU time per particle step vs N for the
// single-node system, with the constant-host-time fit (dashed) and the
// cache-aware model (dotted).
func RunF14(o *Options) (Experiment, error) {
	e := Experiment{
		ID:    "f14",
		Title: "single-node time per step vs N, with host-time models",
		Paper: "cache-aware model tracks measurement; small-N excess from DMA overhead",
	}
	w, err := o.Workload(units.SoftConstant)
	if err != nil {
		return e, err
	}
	m := perfmodel.SingleNode(simnet.NS83820, perfmodel.Athlon)
	e.Series = append(e.Series, timePerStepCurve(o, "simulated (full model)", m, w, o.curveNs()))

	// The two analytic host-time curves of the figure.
	dashed := Series{Label: "model: constant T_host", YUnits: "s/step"}
	dotted := Series{Label: "model: cache-aware T_host", YUnits: "s/step"}
	for _, n := range o.curveNs() {
		nb := w.MeanBlockSize(n)
		cache := m.TimePerStep(n, nb)
		mc := m
		mc.Host.CacheBytes = 0 // no cache benefit: constant host time
		flat := mc.TimePerStep(n, nb)
		dashed.Points = append(dashed.Points, Point{N: n, Value: flat})
		dotted.Points = append(dotted.Points, Point{N: n, Value: cache})
	}
	e.Series = append(e.Series, dashed, dotted)
	return e, nil
}

// RunF15 reproduces Figure 15: multi-node (single-cluster) speed vs N for
// 1, 2 and 4 hosts, in two softening panels.
func RunF15(o *Options) (Experiment, error) {
	e := Experiment{
		ID:    "f15",
		Title: "multi-node speed vs N (1/2/4 hosts), const softening and eps=4/N",
		Paper: "2-host crossover at N~3e3 (const softening); ~3e4 for eps=4/N",
	}
	for _, kind := range []units.SofteningKind{units.SoftConstant, units.SoftOverN} {
		w, err := o.Workload(kind)
		if err != nil {
			return e, err
		}
		for _, hosts := range []int{1, 2, 4} {
			m := perfmodel.MultiNode(hosts, simnet.NS83820, perfmodel.Athlon)
			label := fmt.Sprintf("%d-node, %s", hosts, kind)
			e.Series = append(e.Series, speedCurve(o, label, m, w, o.curveNs()))
		}
	}
	return e, nil
}

// RunF16 reproduces Figure 16: time per step vs N for the 4-node system,
// showing the 1/N synchronization-dominated regime at small N.
func RunF16(o *Options) (Experiment, error) {
	e := Experiment{
		ID:    "f16",
		Title: "4-node time per step vs N with synchronization model",
		Paper: "time/step ∝ 1/N for N<1e4: latency-dominated, not bandwidth-dominated",
	}
	w, err := o.Workload(units.SoftConstant)
	if err != nil {
		return e, err
	}
	m := perfmodel.MultiNode(4, simnet.NS83820, perfmodel.Athlon)
	e.Series = append(e.Series, timePerStepCurve(o, "simulated (4 nodes)", m, w, o.curveNs()))

	// Model with synchronization included (the paper's "extension of the
	// performance model").
	model := Series{Label: "model incl. synchronization", YUnits: "s/step"}
	for _, n := range o.curveNs() {
		model.Points = append(model.Points, Point{N: n, Value: m.TimePerStep(n, w.MeanBlockSize(n))})
	}
	e.Series = append(e.Series, model)
	return e, nil
}

// RunF17 reproduces Figure 17: multi-cluster speed vs N for 4, 8 and 16
// hosts (1, 2 and 4 clusters), constant softening.
func RunF17(o *Options) (Experiment, error) {
	e := Experiment{
		ID:    "f17",
		Title: "multi-cluster speed vs N (4/8/16 hosts = 1/2/4 clusters)",
		Paper: "multi-cluster crossover at N~1e5; speedups at N=1e6 below ideal",
	}
	w, err := o.Workload(units.SoftConstant)
	if err != nil {
		return e, err
	}
	configs := []struct {
		label string
		m     perfmodel.Machine
	}{
		{"4-node (1 cluster)", perfmodel.MultiNode(4, simnet.NS83820, perfmodel.Athlon)},
		{"8-node (2 clusters)", perfmodel.MultiCluster(2, simnet.NS83820, perfmodel.Athlon)},
		{"16-node (4 clusters)", perfmodel.MultiCluster(4, simnet.NS83820, perfmodel.Athlon)},
	}
	for _, c := range configs {
		s := speedCurve(o, c.label, c.m, w, o.curveNs())
		// Report in Tflops to match the figure's axis.
		for i := range s.Points {
			s.Points[i].Value /= 1e3
		}
		s.YUnits = "Tflops"
		e.Series = append(e.Series, s)
	}
	return e, nil
}

// RunF18 reproduces Figure 18: time per step vs N for the full 16-node
// machine.
func RunF18(o *Options) (Experiment, error) {
	e := Experiment{
		ID:    "f18",
		Title: "16-node time per step vs N with cluster-exchange model",
		Paper: "time/step ∝ 1/N for N<1e5: synchronization again the bottleneck",
	}
	w, err := o.Workload(units.SoftConstant)
	if err != nil {
		return e, err
	}
	m := perfmodel.MultiCluster(4, simnet.NS83820, perfmodel.Athlon)
	e.Series = append(e.Series, timePerStepCurve(o, "simulated (16 nodes)", m, w, o.curveNs()))
	model := Series{Label: "model incl. cluster exchange", YUnits: "s/step"}
	for _, n := range o.curveNs() {
		model.Points = append(model.Points, Point{N: n, Value: m.TimePerStep(n, w.MeanBlockSize(n))})
	}
	e.Series = append(e.Series, model)
	return e, nil
}

// RunF19 reproduces Figure 19: the NIC/host tuning comparison on the full
// machine — NS83820+Athlon vs Intel 82540EM+P4.
func RunF19(o *Options) (Experiment, error) {
	e := Experiment{
		ID:    "f19",
		Title: "NIC tuning: NS83820+Athlon vs Intel82540EM+P4, 16 nodes",
		Paper: "50-100% improvement across N; 36.0 Tflops at N=1.8M",
	}
	w, err := o.Workload(units.SoftConstant)
	if err != nil {
		return e, err
	}
	old := perfmodel.MultiCluster(4, simnet.NS83820, perfmodel.Athlon)
	tuned := perfmodel.MultiCluster(4, simnet.Intel82540EM, perfmodel.P4)
	sOld := speedCurve(o, "NS83820 + Athlon", old, w, o.curveNs())
	sNew := speedCurve(o, "Intel82540EM + P4", tuned, w, o.curveNs())
	for _, s := range []*Series{&sOld, &sNew} {
		for i := range s.Points {
			s.Points[i].Value /= 1e3
		}
		s.YUnits = "Tflops"
	}
	e.Series = append(e.Series, sOld, sNew)

	// Headline number: tuned machine at N = 1.8M.
	tr := w.Synthetic(1_800_000, 0.01, xrand.New(o.Seed+31))
	rep := timing.Simulate(tuned, tr)
	e.Notes = append(e.Notes, fmt.Sprintf(
		"tuned machine at N=1.8M: %.1f Tflops (paper: 36.0)", rep.SpeedFlops()/1e12))
	return e, nil
}
