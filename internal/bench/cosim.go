package bench

import (
	"fmt"

	"grape6/internal/hermite"
	"grape6/internal/model"
	"grape6/internal/parallel"
	"grape6/internal/perfmodel"
	"grape6/internal/simnet"
	"grape6/internal/units"
	"grape6/internal/xrand"
)

// RunCosim is the message-level validation companion to Figures 15/16: it
// executes the REAL parallel algorithms (copy, ring, 2D grid) over the
// simulated network at laptop-feasible N and reports virtual-time step
// rates. It demonstrates, with actual message traffic rather than the
// analytic model, that adding hosts at small N makes the machine slower —
// the paper's central small-N finding.
func RunCosim(o *Options) (Experiment, error) {
	e := Experiment{
		ID:    "cosim",
		Title: "message-level co-simulation: copy/ring/grid step rates vs host count",
		Paper: "multi-host slower than single-host at small N (Figures 15-16)",
	}
	n := 256
	until := 0.0625
	if o.Quick {
		n = 96
		until = 0.03125
	}
	eps := units.Softening(units.SoftConstant, n)

	mk := func(hosts int, nic simnet.NIC) parallel.Config {
		return parallel.Config{
			Hosts:   hosts,
			NIC:     nic,
			Machine: perfmodel.SingleNode(nic, perfmodel.Athlon),
			Params:  hermite.DefaultParams(eps),
		}
	}

	copySeries := Series{Label: "copy algorithm", YUnits: "steps/s (virtual)"}
	for _, hosts := range []int{1, 2, 4} {
		res, err := parallel.RunCopy(model.Plummer(n, xrand.New(o.Seed)), until, mk(hosts, simnet.NS83820))
		if err != nil {
			return e, err
		}
		copySeries.Points = append(copySeries.Points, Point{N: hosts, Value: res.StepsPerSecond()})
	}
	e.Series = append(e.Series, copySeries)

	ringSeries := Series{Label: "ring algorithm", YUnits: "steps/s (virtual)"}
	for _, hosts := range []int{1, 2, 4} {
		res, err := parallel.RunRing(model.Plummer(n, xrand.New(o.Seed)), until, mk(hosts, simnet.NS83820))
		if err != nil {
			return e, err
		}
		ringSeries.Points = append(ringSeries.Points, Point{N: hosts, Value: res.StepsPerSecond()})
	}
	e.Series = append(e.Series, ringSeries)

	gridSeries := Series{Label: "2D grid algorithm", YUnits: "steps/s (virtual)"}
	for _, hosts := range []int{1, 4} {
		res, err := parallel.RunGrid(model.Plummer(n, xrand.New(o.Seed)), until, mk(hosts, simnet.NS83820))
		if err != nil {
			return e, err
		}
		gridSeries.Points = append(gridSeries.Points, Point{N: hosts, Value: res.StepsPerSecond()})
	}
	e.Series = append(e.Series, gridSeries)

	// The production structure: copy across clusters × grid within.
	hybridSeries := Series{Label: "hybrid (clusters x 2D grid)", YUnits: "steps/s (virtual)"}
	for _, cl := range []struct{ clusters, hosts int }{{1, 4}, {2, 8}} {
		res, err := parallel.RunHybrid(model.Plummer(n, xrand.New(o.Seed)), until, cl.clusters, mk(cl.hosts, simnet.NS83820))
		if err != nil {
			return e, err
		}
		hybridSeries.Points = append(hybridSeries.Points, Point{N: cl.hosts, Value: res.StepsPerSecond()})
	}
	e.Series = append(e.Series, hybridSeries)

	e.Notes = append(e.Notes,
		fmt.Sprintf("N=%d, %s, NS83820 network; x = host count", n, units.SoftConstant),
		"rates fall with host count at this N: synchronization latency dominates, as in the paper")
	return e, nil
}

// All runs every experiment in DESIGN.md's index.
func All(o *Options) ([]Experiment, error) {
	var out []Experiment
	out = append(out, RunT1())
	for _, f := range []func(*Options) (Experiment, error){
		RunF13, RunF14, RunF15, RunF16, RunF17, RunF18, RunF19,
		RunApplications, RunTreecode, RunCosim,
		RunAblationMantissa, RunAblationAccumulator, RunAblationVMP,
		RunAblationMyrinet, RunAblationHostGrid, RunAblationGrape4,
		RunAblationNeighbourScheme, RunValidation,
	} {
		e, err := f(o)
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
	return out, nil
}
