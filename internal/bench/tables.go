package bench

import (
	"fmt"
	"time"

	"grape6/internal/board"
	"grape6/internal/chip"
	"grape6/internal/model"
	"grape6/internal/perfmodel"
	"grape6/internal/simnet"
	"grape6/internal/timing"
	"grape6/internal/tree"
	"grape6/internal/units"
	"grape6/internal/xrand"
)

// RunT1 reproduces the hardware inventory of Sections 1-2: peak speeds of
// chip, board, cluster and full machine under the 57-flops convention.
func RunT1() Experiment {
	e := Experiment{
		ID:    "t1",
		Title: "hardware peak-speed inventory",
		Paper: "chip 30.8 Gflops; 2048 chips; total 63.04 Tflops (Section 1)",
	}
	c := chip.Default
	s := Series{Label: "peak speed", YUnits: "Gflops"}
	s.Points = append(s.Points,
		Point{N: 1, Value: c.PeakFlops() / 1e9}, // one chip
		Point{N: 32, Value: board.Config{Chip: c, ChipsPerModule: 4, ModulesPerBoard: 8, Boards: 1, ReduceCyclesPerStage: 4}.PeakFlops() / 1e9},
		Point{N: 512, Value: perfmodel.MultiNode(4, simnet.NS83820, perfmodel.Athlon).PeakFlops() / 1e9},
		Point{N: 2048, Value: perfmodel.MultiCluster(4, simnet.NS83820, perfmodel.Athlon).PeakFlops() / 1e9},
	)
	e.Series = append(e.Series, s)
	e.Notes = append(e.Notes,
		"x = chip count: 1 chip, 1 board (32), 1 cluster (512), full machine (2048)",
		fmt.Sprintf("i-parallelism per chip: %d (6 pipelines x 8-way VMP)", c.IBatch()))
	return e
}

// RunApplications reproduces the Section 5 application accounting: the
// Kuiper-belt and black-hole-binary production runs. When a workload fit
// is available the per-step cost is weighted over the block-size
// distribution (EstimateApplicationTrace); otherwise the mean-block model
// is used.
func RunApplications(o *Options) (Experiment, error) {
	e := Experiment{
		ID:    "t5ab",
		Title: "application runs: Kuiper belt (1.8M) and BH binary (2M)",
		Paper: "16.30 h / 33.4 Tflops and 37.19 h / 35.3 Tflops",
	}
	w, err := o.Workload(units.SoftConstant)
	if err != nil {
		return e, err
	}
	m := perfmodel.MultiCluster(4, simnet.Intel82540EM, perfmodel.P4)
	hours := Series{Label: "wall-clock", YUnits: "hours"}
	tflops := Series{Label: "sustained speed", YUnits: "Tflops"}
	rng := xrand.New(o.Seed + 41)
	for _, app := range []timing.Application{timing.KuiperBelt, timing.BHBinary} {
		tr := w.Synthetic(app.N, 0.01, rng.Split())
		rep := timing.EstimateApplicationTrace(m, app, tr)
		hours.Points = append(hours.Points, Point{N: app.N, Value: rep.Hours()})
		tflops.Points = append(tflops.Points, Point{N: app.N, Value: rep.Tflops})
		e.Notes = append(e.Notes, fmt.Sprintf("%s: %.4g total flops (paper accounting)",
			app.Name, rep.Flops))
	}
	e.Series = append(e.Series, hours, tflops)
	return e, nil
}

// RunTreecode reproduces the Section 5 treecode comparison: particle steps
// per second of GRAPE-6 against the treecodes the paper cites, with the
// shared-vs-individual timestep and accuracy corrections applied; plus a
// live measurement of this machine's own Barnes-Hut implementation to
// demonstrate the baseline actually exists and runs.
func RunTreecode(o *Options) (Experiment, error) {
	e := Experiment{
		ID:    "t5c",
		Title: "treecode comparison: particle steps per second",
		Paper: "GRAPE-6 ~3.3e5 steps/s; Gadget/T3E(16) ~1e4; ASCI-Red 2.55e6 (shared step)",
	}

	// Model-side GRAPE-6 rate at the application scale.
	w, err := o.Workload(units.SoftConstant)
	if err != nil {
		return e, err
	}
	m := perfmodel.MultiCluster(4, simnet.Intel82540EM, perfmodel.P4)
	n := 1_800_000
	grapeRate := 1 / m.TimePerStep(n, w.MeanBlockSize(n))

	s := Series{Label: "particle steps per second", YUnits: "steps/s"}
	s.Points = append(s.Points,
		Point{N: 1, Value: grapeRate},        // GRAPE-6 (this model)
		Point{N: 2, Value: 1e4},              // Gadget on 16-node T3E (paper-quoted)
		Point{N: 3, Value: 2.55e6},           // Warren et al., ASCI Red, shared step (paper-quoted)
		Point{N: 4, Value: 2.55e6 / 100 / 5}, // ASCI Red corrected: /100 step count, /5 accuracy
	)
	e.Series = append(e.Series, s)
	e.Notes = append(e.Notes,
		"x index: 1=GRAPE-6 (model), 2=Gadget/T3E16 (quoted), 3=ASCI-Red shared-step (quoted), 4=ASCI-Red after x100 step-count and x5 accuracy corrections (the paper's ~1/70 argument)",
	)

	// Live local measurement of our own treecode (shared timestep).
	nLocal := 4096
	if o.Quick {
		nLocal = 1024
	}
	sys := model.Plummer(nLocal, xrand.New(o.Seed))
	cfg := tree.DefaultConfig(units.Softening(units.SoftConstant, nLocal))
	it, err := tree.NewIntegrator(sys, cfg, 1.0/256)
	if err != nil {
		return e, err
	}
	start := time.Now()
	steps := 4
	for k := 0; k < steps; k++ {
		if err := it.Step(); err != nil {
			return e, err
		}
	}
	elapsed := time.Since(start).Seconds()
	local := Series{Label: "this machine's treecode (shared step)", YUnits: "steps/s"}
	local.Points = append(local.Points, Point{N: nLocal, Value: float64(it.Steps) / elapsed})
	e.Series = append(e.Series, local)

	// Step-ratio evidence for the x100 claim: measure the individual-step
	// distribution of a Hermite run and report harmonic-mean/min ratio.
	ratioN := 512
	if o.Quick {
		ratioN = 256
	}
	hsys := model.Plummer(ratioN, xrand.New(o.Seed+1))
	ratio, err := measureStepRatio(hsys)
	if err != nil {
		return e, err
	}
	e.Notes = append(e.Notes, fmt.Sprintf(
		"measured harmonic-mean/min timestep ratio at N=%d: %.1f (grows with N; paper: >100 at 2e6)",
		ratioN, ratio))
	return e, nil
}
