package bench

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"
)

// sharedOpts caches workload fits across tests in this package.
var sharedOpts = QuickOptions()

func TestT1MatchesPaperInventory(t *testing.T) {
	e := RunT1()
	s := e.FindSeries("peak speed")
	if s == nil {
		t.Fatal("missing series")
	}
	chip, _ := s.ValueAt(1)
	if math.Abs(chip-30.78) > 0.05 {
		t.Errorf("chip peak = %v, paper: 30.8 Gflops", chip)
	}
	full, _ := s.ValueAt(2048)
	if math.Abs(full-63040) > 100 {
		t.Errorf("full machine = %v Gflops, paper: 63.04 Tflops", full)
	}
}

func TestF13ShapeMatchesPaper(t *testing.T) {
	e, err := RunF13(sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Series) != 3 {
		t.Fatalf("want 3 softening series, got %d", len(e.Series))
	}
	// Speed grows with N and exceeds 1 Tflops at N=2e5... our grid uses
	// 1e5 and 3e5; check 3e5 > 1000 Gflops for the constant softening.
	s := e.Series[0]
	v3e5, ok := s.ValueAt(300000)
	if !ok {
		t.Fatal("missing N=3e5 point")
	}
	if v3e5 < 1000 {
		t.Errorf("speed at 3e5 = %v Gflops, paper shows >1 Tflops region", v3e5)
	}
	// Monotone increase over the model range.
	v1e3, _ := s.ValueAt(1000)
	if v1e3 >= v3e5 {
		t.Error("speed not increasing with N")
	}
	// Softening choices give similar speeds at equal N (paper: "practically
	// independent of the choice of the softening") — within a factor 3.
	for _, other := range e.Series[1:] {
		vo, ok := other.ValueAt(300000)
		if !ok {
			t.Fatal("missing point in softening series")
		}
		if r := vo / v3e5; r < 0.33 || r > 3 {
			t.Errorf("softening changed speed by %vx at N=3e5", r)
		}
	}
}

func TestF14ModelsOrdered(t *testing.T) {
	e, err := RunF14(sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	dashed := e.FindSeries("model: constant T_host")
	dotted := e.FindSeries("model: cache-aware T_host")
	if dashed == nil || dotted == nil {
		t.Fatal("missing model series")
	}
	// The cache-aware model is cheaper at small N, converging at large N.
	d1, _ := dashed.ValueAt(1000)
	c1, _ := dotted.ValueAt(1000)
	if c1 >= d1 {
		t.Errorf("cache-aware model not cheaper at small N: %v vs %v", c1, d1)
	}
	dBig, _ := dashed.ValueAt(1000000)
	cBig, _ := dotted.ValueAt(1000000)
	if math.Abs(cBig-dBig)/dBig > 0.2 {
		t.Errorf("models do not converge at large N: %v vs %v", cBig, dBig)
	}
}

func TestF15CrossoverExists(t *testing.T) {
	e, err := RunF15(sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	one := e.FindSeries("1-node, eps=1/64")
	two := e.FindSeries("2-node, eps=1/64")
	if one == nil || two == nil {
		t.Fatalf("missing series; have %v", labels(e))
	}
	// 2-node slower at N=1e3, faster at N=1e5.
	o1, _ := one.ValueAt(1000)
	t1, _ := two.ValueAt(1000)
	if t1 >= o1 {
		t.Errorf("2-node already faster at N=1e3: %v vs %v", t1, o1)
	}
	o2, _ := one.ValueAt(100000)
	t2, _ := two.ValueAt(100000)
	if t2 <= o2 {
		t.Errorf("2-node not faster at N=1e5: %v vs %v", t2, o2)
	}
}

func TestF15SofteningMovesCrossover(t *testing.T) {
	e, err := RunF15(sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: the 1→2 node crossover moves from N~3e3 (constant softening)
	// to N~3e4 (eps=4/N). The robust property is relational: the smaller
	// softening's crossover must NOT sit at lower N than the constant
	// softening's, and both crossovers must exist within the N range.
	crossover := func(kind string) int {
		one := e.FindSeries("1-node, " + kind)
		two := e.FindSeries("2-node, " + kind)
		if one == nil || two == nil {
			t.Fatalf("missing series for %s; have %v", kind, labels(e))
		}
		pts := append([]Point(nil), one.Points...)
		sort.Slice(pts, func(i, j int) bool { return pts[i].N < pts[j].N })
		for _, p := range pts {
			v2, ok := two.ValueAt(p.N)
			if ok && v2 > p.Value {
				return p.N
			}
		}
		return 1 << 30
	}
	cConst := crossover("eps=1/64")
	cOverN := crossover("eps=4/N")
	if cConst >= 1<<30 || cOverN >= 1<<30 {
		t.Fatalf("no crossover found: const=%d 4/N=%d", cConst, cOverN)
	}
	if cOverN < cConst {
		t.Errorf("eps=4/N crossover N=%d below constant-softening crossover N=%d", cOverN, cConst)
	}
}

func labels(e Experiment) []string {
	var out []string
	for _, s := range e.Series {
		out = append(out, s.Label)
	}
	return out
}

func TestF16OneOverNRegime(t *testing.T) {
	e, err := RunF16(sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	m := e.FindSeries("model incl. synchronization")
	if m == nil {
		t.Fatal("missing model series")
	}
	// time/step at N=1e3 ≈ 2-4x the value at N=3e3 (1/N scaling, with
	// block-size fit wobble).
	a, _ := m.ValueAt(1000)
	b, _ := m.ValueAt(3000)
	ratio := a / b
	if ratio < 1.5 || ratio > 6 {
		t.Errorf("small-N scaling ratio = %v, want ≈3 (1/N)", ratio)
	}
}

func TestF17ClusterCrossover(t *testing.T) {
	e, err := RunF17(sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	four := e.FindSeries("4-node (1 cluster)")
	sixteen := e.FindSeries("16-node (4 clusters)")
	if four == nil || sixteen == nil {
		t.Fatalf("missing series; have %v", labels(e))
	}
	a4, _ := four.ValueAt(10000)
	a16, _ := sixteen.ValueAt(10000)
	if a16 >= a4 {
		t.Errorf("16-node already faster at N=1e4: %v vs %v", a16, a4)
	}
	b4, _ := four.ValueAt(1000000)
	b16, _ := sixteen.ValueAt(1000000)
	if b16 <= b4 {
		t.Errorf("16-node not faster at N=1e6: %v vs %v", b16, b4)
	}
	// Speedup significantly below ideal 4x (paper: "significantly smaller
	// than the ideal speedup").
	if sp := b16 / b4; sp >= 4 {
		t.Errorf("speedup at 1e6 = %v, should be below ideal 4", sp)
	}
}

func TestF18SyncDominatedSmallN(t *testing.T) {
	e, err := RunF18(sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	m := e.FindSeries("model incl. cluster exchange")
	if m == nil {
		t.Fatal("missing series")
	}
	a, _ := m.ValueAt(10000)
	b, _ := m.ValueAt(30000)
	if ratio := a / b; ratio < 1.5 {
		t.Errorf("16-node small-N scaling ratio = %v, want ≈3", ratio)
	}
}

func TestF19TuningImprovement(t *testing.T) {
	e, err := RunF19(sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	old := e.FindSeries("NS83820 + Athlon")
	tuned := e.FindSeries("Intel82540EM + P4")
	if old == nil || tuned == nil {
		t.Fatal("missing series")
	}
	// Improvement 30-150% somewhere in the mid range, shrinking at high N.
	oMid, _ := old.ValueAt(100000)
	tMid, _ := tuned.ValueAt(100000)
	gainMid := tMid / oMid
	if gainMid < 1.2 || gainMid > 2.6 {
		t.Errorf("tuning gain at 1e5 = %v, paper: 1.5-2", gainMid)
	}
	oBig, _ := old.ValueAt(1000000)
	tBig, _ := tuned.ValueAt(1000000)
	if gainBig := tBig / oBig; gainBig >= gainMid {
		t.Errorf("gain did not shrink with N: %v vs %v", gainBig, gainMid)
	}
	// Headline note present.
	found := false
	for _, n := range e.Notes {
		if strings.Contains(n, "N=1.8M") {
			found = true
		}
	}
	if !found {
		t.Error("missing 1.8M headline note")
	}
}

func TestApplicationsInPaperDecade(t *testing.T) {
	e, err := RunApplications(sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	tf := e.FindSeries("sustained speed")
	if tf == nil {
		t.Fatal("missing series")
	}
	k, _ := tf.ValueAt(1800000)
	b, _ := tf.ValueAt(2000000)
	for _, v := range []float64{k, b} {
		if v < 20 || v > 63 {
			t.Errorf("application Tflops = %v, paper: 33.4/35.3", v)
		}
	}
	h := e.FindSeries("wall-clock")
	kh, _ := h.ValueAt(1800000)
	bh, _ := h.ValueAt(2000000)
	if kh < 8 || kh > 35 {
		t.Errorf("Kuiper hours = %v, paper: 16.30", kh)
	}
	if bh <= kh {
		t.Error("BH run should take longer than Kuiper run")
	}
}

func TestTreecodeComparison(t *testing.T) {
	e, err := RunTreecode(sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	s := e.FindSeries("particle steps per second")
	if s == nil {
		t.Fatal("missing series")
	}
	grape, _ := s.ValueAt(1)
	gadget, _ := s.ValueAt(2)
	asciCorrected, _ := s.ValueAt(4)
	// Paper: GRAPE-6 ~3.3e5; Gadget 1e4 (~3% of GRAPE); corrected ASCI Red
	// ~1/70 of GRAPE.
	if grape < 1e5 || grape > 1e6 {
		t.Errorf("GRAPE-6 rate = %v, paper: ~3.3e5", grape)
	}
	if gadget >= grape {
		t.Error("Gadget should be far below GRAPE-6")
	}
	if asciCorrected >= grape {
		t.Error("corrected ASCI-Red rate should be below GRAPE-6")
	}
	local := e.FindSeries("this machine's treecode (shared step)")
	if local == nil || len(local.Points) == 0 || local.Points[0].Value <= 0 {
		t.Error("local treecode measurement missing")
	}
}

func TestCosimSmallNSlowdown(t *testing.T) {
	e, err := RunCosim(sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	cp := e.FindSeries("copy algorithm")
	if cp == nil {
		t.Fatal("missing copy series")
	}
	r1, _ := cp.ValueAt(1)
	r4, _ := cp.ValueAt(4)
	if r4 >= r1 {
		t.Errorf("copy: 4 hosts (%v steps/s) not slower than 1 host (%v) at small N", r4, r1)
	}
}

func TestAblationMantissaCliff(t *testing.T) {
	e, err := RunAblationMantissa(sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	s := e.Series[0]
	short, _ := s.ValueAt(24)
	long, _ := s.ValueAt(32)
	if short < 3*long {
		t.Errorf("no noise cliff: %v blocks at 24 bits vs %v at 32", short, long)
	}
}

func TestAblationAccumulatorMonotone(t *testing.T) {
	e, err := RunAblationAccumulator(sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	s := e.Series[0]
	coarse, _ := s.ValueAt(12)
	fine, _ := s.ValueAt(40)
	if fine >= coarse {
		t.Errorf("accumulator error not decreasing: %v at 12 bits, %v at 40", coarse, fine)
	}
}

func TestAblationVMPEfficiency(t *testing.T) {
	e, err := RunAblationVMP(sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	b48 := e.FindSeries("i-batch 48")
	b768 := e.FindSeries("i-batch 768")
	if b48 == nil || b768 == nil {
		t.Fatal("missing series")
	}
	// At small N the shallow-parallelism design is more efficient.
	v48, _ := b48.ValueAt(1000)
	v768, _ := b768.ValueAt(1000)
	if v768 >= v48 {
		t.Errorf("deep parallelism should hurt small N: %v vs %v", v768, v48)
	}
}

func TestAblationMyrinetHelps(t *testing.T) {
	e, err := RunAblationMyrinet(sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	ns := e.FindSeries("NS83820 (TCP/IP)")
	my := e.FindSeries("Myrinet-class")
	if ns == nil || my == nil {
		t.Fatal("missing series")
	}
	a, _ := ns.ValueAt(100000)
	b, _ := my.ValueAt(100000)
	if b <= a {
		t.Errorf("Myrinet not faster at N=1e5: %v vs %v", b, a)
	}
}

func TestAblationHostGrid(t *testing.T) {
	e, err := RunAblationHostGrid(sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Series) != 2 {
		t.Fatalf("series = %v", labels(e))
	}
	// The hardware network always costs less per block.
	grid := e.Series[0]
	hw := e.Series[1]
	for i := range grid.Points {
		if hw.Points[i].Value >= grid.Points[i].Value {
			t.Errorf("hardware network not cheaper at N=%d", grid.Points[i].N)
		}
	}
}

func TestFormatOutput(t *testing.T) {
	e := RunT1()
	var buf bytes.Buffer
	e.Format(&buf)
	out := buf.String()
	for _, want := range []string{"t1", "peak speed", "N=2048", "paper:"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in -short mode")
	}
	es, err := All(sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) < 15 {
		t.Errorf("only %d experiments", len(es))
	}
	ids := map[string]bool{}
	for _, e := range es {
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
		if len(e.Series) == 0 {
			t.Errorf("experiment %s has no series", e.ID)
		}
	}
	for _, want := range []string{"t1", "f13", "f14", "f15", "f16", "f17", "f18", "f19", "t5ab", "t5c"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}

func TestAblationGrape4(t *testing.T) {
	e, err := RunAblationGrape4(sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	g4 := e.FindSeries("GRAPE-4 (full machine)")
	g6 := e.FindSeries("GRAPE-6 full machine")
	if g4 == nil || g6 == nil {
		t.Fatalf("missing series: %v", labels(e))
	}
	a, _ := g4.ValueAt(1000000)
	b, _ := g6.ValueAt(1000000)
	if b/a < 20 {
		t.Errorf("GRAPE-6/GRAPE-4 ratio at 1e6 = %v, want ≫1", b/a)
	}
	// GRAPE-4 approaches its ~1 Tflops peak at large N.
	if a < 300 || a > 1100 {
		t.Errorf("GRAPE-4 at 1e6 = %v Gflops, want hundreds", a)
	}
}

func TestValidationExperiment(t *testing.T) {
	e, err := RunValidation(sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	s := e.FindSeries("validation metrics")
	if s == nil {
		t.Fatal("missing series")
	}
	dev, _ := s.ValueAt(1)
	if dev > 1e-6 {
		t.Errorf("hardware deviation %v too large", dev)
	}
	hwDrift, _ := s.ValueAt(3)
	if hwDrift > 1e-4 {
		t.Errorf("hardware energy drift %v", hwDrift)
	}
	bitID, _ := s.ValueAt(4)
	if bitID != 1 {
		t.Error("machine-size bit-invariance violated")
	}
}

func TestNeighbourSchemeSaving(t *testing.T) {
	e, err := RunAblationNeighbourScheme(sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	s := e.Series[0]
	small, _ := s.ValueAt(128)
	big, _ := s.ValueAt(256)
	if small < 1.0 || big < 1.2 {
		t.Errorf("savings too small: %v at 128, %v at 256", small, big)
	}
	if big <= small {
		t.Errorf("saving did not grow with N: %v vs %v", big, small)
	}
}

func TestCosimHybridSlowdown(t *testing.T) {
	e, err := RunCosim(sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	hy := e.FindSeries("hybrid (clusters x 2D grid)")
	if hy == nil {
		t.Fatalf("missing hybrid series: %v", labels(e))
	}
	r4, _ := hy.ValueAt(4)
	r8, _ := hy.ValueAt(8)
	if r8 >= r4 {
		t.Errorf("hybrid: 8 hosts/2 clusters (%v steps/s) not slower than 4 hosts (%v) at small N", r8, r4)
	}
}

func TestAblationKernelBypassOrdering(t *testing.T) {
	e, err := RunAblationMyrinet(sharedOpts)
	if err != nil {
		t.Fatal(err)
	}
	ns := e.FindSeries("NS83820 (TCP/IP)")
	kb := e.FindSeries("NS83820 + GAMMA/VIA (kernel bypass)")
	my := e.FindSeries("Myrinet-class")
	if ns == nil || kb == nil || my == nil {
		t.Fatalf("missing series: %v", labels(e))
	}
	n := 100000
	a, _ := ns.ValueAt(n)
	b, _ := kb.ValueAt(n)
	c, _ := my.ValueAt(n)
	if !(a < b && b < c) {
		t.Errorf("ordering at N=1e5: tcp %v, bypass %v, myrinet %v", a, b, c)
	}
}
