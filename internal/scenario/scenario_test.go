package scenario

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"grape6/internal/bench"
)

const (
	specDir     = "../../scenarios"
	baselineDir = "../../testdata/scenarios"
)

// quickOpts is shared across the executing tests so the measured
// workload fits (the expensive part) are built once per softening kind.
var quickOpts = bench.QuickOptions()

func testSpec() *Spec {
	return &Spec{
		ID: "t", Title: "t", Kind: "speed",
		Machines:   []MachineSpec{{NIC: "ns83820", Host: "athlon"}},
		Tolerance:  0.5,
		Tolerances: map[string]float64{"tight": 1e-9},
	}
}

func fig(series ...FigSeries) Figure {
	return Figure{ID: "t", Title: "t", Fidelity: "quick", Seed: 1, Series: series}
}

func s1(label string, pts ...FigPoint) FigSeries {
	return FigSeries{Label: label, Units: "Gflops", Points: pts}
}

// problemKinds extracts the finding kinds for compact assertions.
func problemKinds(ps []Problem) []string {
	ks := make([]string, len(ps))
	for i, p := range ps {
		ks[i] = p.Kind
	}
	return ks
}

func TestDiffClean(t *testing.T) {
	f := fig(s1("a", FigPoint{N: 1, Value: 2}, FigPoint{N: 2, Value: 4}))
	if ps := Diff(f, f, testSpec()); len(ps) != 0 {
		t.Fatalf("identical figures produced findings: %v", ps)
	}
}

func TestDiffMissingAndExtraSeries(t *testing.T) {
	got := fig(s1("a", FigPoint{N: 1, Value: 2}), s1("c", FigPoint{N: 1, Value: 2}))
	base := fig(s1("a", FigPoint{N: 1, Value: 2}), s1("b", FigPoint{N: 1, Value: 2}))
	ps := Diff(got, base, testSpec())
	if want := []string{"missing-series", "extra-series"}; !reflect.DeepEqual(problemKinds(ps), want) {
		t.Fatalf("got %v, want %v", ps, want)
	}
	if ps[0].Series != "b" || ps[1].Series != "c" {
		t.Errorf("series misattributed: %v", ps)
	}
}

func TestDiffMissingAndExtraPoint(t *testing.T) {
	got := fig(s1("a", FigPoint{N: 1, Value: 2}, FigPoint{N: 3, Value: 8}))
	base := fig(s1("a", FigPoint{N: 1, Value: 2}, FigPoint{N: 2, Value: 4}))
	ps := Diff(got, base, testSpec())
	if want := []string{"missing-point", "extra-point"}; !reflect.DeepEqual(problemKinds(ps), want) {
		t.Fatalf("got %v, want %v", ps, want)
	}
	if ps[0].N != 2 || ps[1].N != 3 {
		t.Errorf("points misattributed: %v", ps)
	}
}

// TestDiffToleranceBoundary pins the inclusive semantics: a deviation of
// exactly tol·|want| passes, anything beyond fails, and a zero baseline
// value compares absolutely.
func TestDiffToleranceBoundary(t *testing.T) {
	spec := testSpec() // default tol 0.5
	base := fig(s1("a", FigPoint{N: 1, Value: 2}))

	exact := fig(s1("a", FigPoint{N: 1, Value: 3})) // |3-2| = 1 = 0.5*2
	if ps := Diff(exact, base, spec); len(ps) != 0 {
		t.Errorf("exact-boundary deviation failed: %v", ps)
	}
	over := fig(s1("a", FigPoint{N: 1, Value: 3.0000001}))
	ps := Diff(over, base, spec)
	if !reflect.DeepEqual(problemKinds(ps), []string{"tolerance"}) {
		t.Errorf("just-over-boundary deviation passed: %v", ps)
	}

	// Per-series override beats the default.
	tight := fig(s1("tight", FigPoint{N: 1, Value: 2}))
	tightOff := fig(s1("tight", FigPoint{N: 1, Value: 2.001}))
	if ps := Diff(tightOff, tight, spec); !reflect.DeepEqual(problemKinds(ps), []string{"tolerance"}) {
		t.Errorf("per-series tolerance not applied: %v", ps)
	}

	// Zero baseline: absolute comparison.
	zero := fig(s1("a", FigPoint{N: 1, Value: 0}))
	within := fig(s1("a", FigPoint{N: 1, Value: 0.5}))
	if ps := Diff(within, zero, spec); len(ps) != 0 {
		t.Errorf("zero-baseline absolute pass failed: %v", ps)
	}
	outside := fig(s1("a", FigPoint{N: 1, Value: 0.51}))
	if ps := Diff(outside, zero, spec); !reflect.DeepEqual(problemKinds(ps), []string{"tolerance"}) {
		t.Errorf("zero-baseline absolute fail missed: %v", ps)
	}
}

func TestDiffNonFinite(t *testing.T) {
	base := fig(s1("a", FigPoint{N: 1, Value: 2}))
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		got := fig(s1("a", FigPoint{N: 1, Value: v}))
		if ps := Diff(got, base, testSpec()); !reflect.DeepEqual(problemKinds(ps), []string{"nonfinite"}) {
			t.Errorf("non-finite run value %v not flagged: %v", v, ps)
		}
		// And the other side: a corrupted baseline must fail too.
		if ps := Diff(base, got, testSpec()); !reflect.DeepEqual(problemKinds(ps), []string{"nonfinite"}) {
			t.Errorf("non-finite baseline value %v not flagged: %v", v, ps)
		}
	}
	// NaN vs NaN is not a pass either.
	nan := fig(s1("a", FigPoint{N: 1, Value: math.NaN()}))
	if ps := Diff(nan, nan, testSpec()); !reflect.DeepEqual(problemKinds(ps), []string{"nonfinite"}) {
		t.Errorf("NaN==NaN slipped through: %v", ps)
	}
}

func TestDiffMetadataMismatch(t *testing.T) {
	got := fig(s1("a", FigPoint{N: 1, Value: 2}))
	base := got
	base.Fidelity = "full"
	base.Seed = 2
	ps := Diff(got, base, testSpec())
	if len(ps) != 2 || ps[0].Kind != "meta" || ps[1].Kind != "meta" {
		t.Fatalf("fidelity/seed mismatch not flagged: %v", ps)
	}
}

func TestWriteRejectsNonFinite(t *testing.T) {
	f := fig(s1("a", FigPoint{N: 1, Value: math.NaN()}))
	var b strings.Builder
	if err := f.Write(&b); err == nil {
		t.Fatal("NaN figure serialised without error")
	}
}

// TestNoBaselineFailsLoudly: an experiment without a committed baseline
// is an error, never a vacuous pass.
func TestNoBaselineFailsLoudly(t *testing.T) {
	if _, err := LoadBaseline(t.TempDir(), "f13", "quick"); err == nil {
		t.Fatal("missing baseline did not error")
	} else if !strings.Contains(err.Error(), "no committed") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f := fig(s1("a", FigPoint{N: 1, Value: 2.5}))
	if err := WriteBaseline(dir, f); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBaseline(dir, f.ID, f.Fidelity)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, back) {
		t.Fatalf("round trip mutated the figure:\n%+v\n%+v", f, back)
	}
}

// TestSpecRoundTrip: every committed spec parses, validates, re-emits to
// an equivalent spec, and expands deterministically.
func TestSpecRoundTrip(t *testing.T) {
	specs, err := LoadDir(specDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < 8 {
		t.Fatalf("expected the migrated figure matrix, found %d specs", len(specs))
	}
	for _, s := range specs {
		var b strings.Builder
		if err := s.Emit(&b); err != nil {
			t.Fatalf("%s: emit: %v", s.ID, err)
		}
		back, err := Parse([]byte(b.String()))
		if err != nil {
			t.Fatalf("%s: re-parse: %v", s.ID, err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Errorf("%s: parse -> emit -> parse not stable", s.ID)
		}
		c1, err := s.Expand()
		if err != nil {
			t.Fatalf("%s: expand: %v", s.ID, err)
		}
		c2, _ := s.Expand()
		c3, _ := back.Expand()
		if !reflect.DeepEqual(c1, c2) || !reflect.DeepEqual(c1, c3) {
			t.Errorf("%s: expansion unstable across calls / round trip", s.ID)
		}
	}
}

func TestParseRejectsUnknownFieldsAndBadSpecs(t *testing.T) {
	cases := map[string]string{
		"unknown field":  `{"id":"x","kind":"speed","machines":[{"nic":"ns83820","host":"athlon"}],"typo_field":1}`,
		"bad kind":       `{"id":"x","kind":"warp","machines":[{"nic":"ns83820","host":"athlon"}]}`,
		"no machines":    `{"id":"x","kind":"speed"}`,
		"bad nic":        `{"id":"x","kind":"speed","machines":[{"nic":"token-ring","host":"athlon"}]}`,
		"bad host":       `{"id":"x","kind":"speed","machines":[{"nic":"ns83820","host":"i486"}]}`,
		"bad softening":  `{"id":"x","kind":"speed","softening":["cubed"],"machines":[{"nic":"ns83820","host":"athlon"}]}`,
		"bad curve":      `{"id":"x","kind":"speed","machines":[{"curve":"spline","nic":"ns83820","host":"athlon"}]}`,
		"empty sweep":    `{"id":"x","kind":"cosim","n":8,"t_end":0.1,"machines":[{"algo":"ring","nic":"ns83820","host":"athlon"}]}`,
		"hybrid needs c": `{"id":"x","kind":"cosim","n":8,"t_end":0.1,"machines":[{"algo":"hybrid","nic":"ns83820","host":"athlon","sweep":[{"hosts":4}]}]}`,
		"no id":          `{"kind":"speed","machines":[{"nic":"ns83820","host":"athlon"}]}`,
	}
	for name, src := range cases {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestG6AMachinePeak pins the new GRAPE-6A row's silicon: one 4-chip
// card at 96 MHz is the 131.3 Gflops single-card peak of
// astro-ph/0504407.
func TestG6AMachinePeak(t *testing.T) {
	m := MachineSpec{Hosts: 1, Boards: 1, Chips: 4, ClockMHz: 96, NIC: "intel82540em", Host: "p4"}
	mm, err := m.Build()
	if err != nil {
		t.Fatal(err)
	}
	peak := mm.PeakFlops() / 1e9
	if math.Abs(peak-131.3) > 0.2 {
		t.Fatalf("GRAPE-6A peak %.1f Gflops, want 131.3", peak)
	}
}

// TestSpecMatchesHandWired proves the migration: the f13 spec produces
// bit-identical curves to the hand-wired bench.RunF13 it replaced.
func TestSpecMatchesHandWired(t *testing.T) {
	spec, err := Load(filepath.Join(specDir, "f13.json"))
	if err != nil {
		t.Fatal(err)
	}
	o := quickOpts
	want, err := bench.RunF13(o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(spec, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Series) != len(want.Series) {
		t.Fatalf("series count %d vs %d", len(got.Series), len(want.Series))
	}
	for _, ws := range want.Series {
		gs := got.FindSeries(ws.Label)
		if gs == nil {
			t.Fatalf("series %q missing from the spec run", ws.Label)
		}
		for _, wp := range ws.Points {
			found := false
			for _, gp := range gs.Points {
				if gp.N == wp.N {
					found = true
					if gp.Value != wp.Value {
						t.Errorf("series %q N=%d: spec %v != hand-wired %v", ws.Label, wp.N, gp.Value, wp.Value)
					}
				}
			}
			if !found {
				t.Errorf("series %q N=%d missing from the spec run", ws.Label, wp.N)
			}
		}
	}
}

// TestCommittedBaselineDiffsClean runs one model-kind spec and one
// cosim-kind spec at quick fidelity against the committed baselines —
// the in-process version of the CI matrix job.
func TestCommittedBaselineDiffsClean(t *testing.T) {
	o := quickOpts
	for _, id := range []string{"f13", "cosim"} {
		spec, err := Load(filepath.Join(specDir, id+".json"))
		if err != nil {
			t.Fatal(err)
		}
		fig, err := Run(spec, o)
		if err != nil {
			t.Fatal(err)
		}
		base, err := LoadBaseline(baselineDir, id, "quick")
		if err != nil {
			t.Fatal(err)
		}
		if ps := Diff(fig, base, spec); len(ps) > 0 {
			t.Errorf("%s: committed baseline diff not clean:\n%s", id, FormatProblems(id, ps))
		}
	}
}

// TestBaselinesCommittedForEverySpec: the quick tier of the whole matrix
// must stay pinned — a new spec row without a baseline fails here, not
// silently in CI.
func TestBaselinesCommittedForEverySpec(t *testing.T) {
	specs, err := LoadDir(specDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		path := BaselinePath(baselineDir, s.ID, "quick")
		if _, err := os.Stat(path); err != nil {
			t.Errorf("%s: no committed quick baseline (%v); run grape6bench -exp %s -quick -update", s.ID, err, s.ID)
		}
	}
}
