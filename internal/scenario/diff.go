package scenario

import (
	"fmt"
	"math"
	"strings"
)

// Problem is one baseline-diff finding.
type Problem struct {
	Kind   string // "meta", "missing-series", "extra-series", "missing-point", "extra-point", "nonfinite", "tolerance"
	Series string
	N      int
	Got    float64
	Want   float64
	Tol    float64
	Msg    string
}

// String renders the finding for the CLI report.
func (p Problem) String() string {
	switch p.Kind {
	case "tolerance":
		rel := math.Abs(p.Got-p.Want) / math.Max(math.Abs(p.Want), 1e-300)
		return fmt.Sprintf("tolerance: series %q N=%d got %.9g want %.9g (rel %.3g > tol %.3g)",
			p.Series, p.N, p.Got, p.Want, rel, p.Tol)
	case "nonfinite":
		return fmt.Sprintf("nonfinite: series %q N=%d got %v want %v", p.Series, p.N, p.Got, p.Want)
	case "missing-point", "extra-point":
		return fmt.Sprintf("%s: series %q N=%d", p.Kind, p.Series, p.N)
	case "missing-series", "extra-series":
		return fmt.Sprintf("%s: %q", p.Kind, p.Series)
	default:
		return fmt.Sprintf("%s: %s", p.Kind, p.Msg)
	}
}

// Diff compares a freshly produced figure against the committed
// baseline under the spec's tolerance policy. It reports, in order:
// metadata mismatches (fidelity, seed — diffing a quick run against a
// full baseline is always a finding), series present in only one side,
// points present in only one side, non-finite values on either side,
// and values outside the per-series relative tolerance.
//
// The tolerance test is inclusive: |got − want| ≤ tol·|want| passes
// (with a baseline value of exactly zero, |got| ≤ tol passes). NaN and
// Inf never pass, whichever side they appear on.
func Diff(got, base Figure, spec *Spec) []Problem {
	var ps []Problem
	if got.Fidelity != base.Fidelity {
		ps = append(ps, Problem{Kind: "meta", Msg: fmt.Sprintf(
			"fidelity mismatch: run is %q, baseline is %q", got.Fidelity, base.Fidelity)})
	}
	if got.Seed != base.Seed {
		ps = append(ps, Problem{Kind: "meta", Msg: fmt.Sprintf(
			"seed mismatch: run used %d, baseline was pinned at %d", got.Seed, base.Seed)})
	}
	if got.ID != base.ID {
		ps = append(ps, Problem{Kind: "meta", Msg: fmt.Sprintf(
			"id mismatch: run is %q, baseline is %q", got.ID, base.ID)})
	}

	for _, bs := range base.Series {
		gs := got.FindSeries(bs.Label)
		if gs == nil {
			ps = append(ps, Problem{Kind: "missing-series", Series: bs.Label})
			continue
		}
		tol := spec.TolFor(bs.Label)
		ps = append(ps, diffSeries(*gs, bs, tol)...)
	}
	for _, gs := range got.Series {
		if base.FindSeries(gs.Label) == nil {
			ps = append(ps, Problem{Kind: "extra-series", Series: gs.Label})
		}
	}
	return ps
}

func diffSeries(got, base FigSeries, tol float64) []Problem {
	var ps []Problem
	gotAt := make(map[int]float64, len(got.Points))
	for _, p := range got.Points {
		gotAt[p.N] = p.Value
	}
	baseAt := make(map[int]float64, len(base.Points))
	for _, p := range base.Points {
		baseAt[p.N] = p.Value
	}
	for _, bp := range base.Points {
		g, ok := gotAt[bp.N]
		if !ok {
			ps = append(ps, Problem{Kind: "missing-point", Series: base.Label, N: bp.N})
			continue
		}
		if !isFinite(g) || !isFinite(bp.Value) {
			ps = append(ps, Problem{Kind: "nonfinite", Series: base.Label, N: bp.N, Got: g, Want: bp.Value})
			continue
		}
		if !withinTol(g, bp.Value, tol) {
			ps = append(ps, Problem{Kind: "tolerance", Series: base.Label, N: bp.N, Got: g, Want: bp.Value, Tol: tol})
		}
	}
	for _, gp := range got.Points {
		if _, ok := baseAt[gp.N]; !ok {
			ps = append(ps, Problem{Kind: "extra-point", Series: base.Label, N: gp.N})
			// A non-finite value in a point the baseline lacks is still a
			// harness bug worth naming.
			if !isFinite(gp.Value) {
				ps = append(ps, Problem{Kind: "nonfinite", Series: base.Label, N: gp.N, Got: gp.Value, Want: math.NaN()})
			}
		}
	}
	return ps
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// withinTol implements the inclusive relative-tolerance test.
func withinTol(got, want, tol float64) bool {
	if want == 0 {
		return math.Abs(got) <= tol
	}
	return math.Abs(got-want) <= tol*math.Abs(want)
}

// FormatProblems renders a diff report, one finding per line, prefixed
// with the experiment id.
func FormatProblems(id string, ps []Problem) string {
	if len(ps) == 0 {
		return ""
	}
	var b strings.Builder
	for _, p := range ps {
		fmt.Fprintf(&b, "%s: %s\n", id, p)
	}
	return b.String()
}
