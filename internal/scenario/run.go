package scenario

import (
	"fmt"
	"sort"

	"grape6/internal/bench"
	"grape6/internal/hermite"
	"grape6/internal/parallel"
	"grape6/internal/perfmodel"
	"grape6/internal/timing"
	"grape6/internal/units"
	"grape6/internal/xrand"
)

// Seed offsets keep the spec-driven curves bit-identical to the
// hand-wired runners they migrated (bench.speedCurve and friends used
// the same constants), so a committed baseline survives the migration.
const (
	speedSeedOffset = 17
	tpsSeedOffset   = 23
)

// Run executes the spec's cross-product through the existing harness
// layers and returns the figure: one series per expanded cell, points
// sorted by x.
func Run(s *Spec, o *bench.Options) (Figure, error) {
	cells, err := s.Expand()
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID: s.ID, Title: s.Title, Fidelity: Fidelity(o), Seed: o.Seed,
		Notes: append([]string(nil), s.Notes...),
	}
	for _, c := range cells {
		var fs FigSeries
		if s.Kind == "cosim" {
			fs, err = runCosimCell(s, o, c)
		} else {
			fs, err = runModelCell(s, o, c)
		}
		if err != nil {
			return Figure{}, fmt.Errorf("scenario %s: series %q: %w", s.ID, c.Label, err)
		}
		sort.Slice(fs.Points, func(i, j int) bool { return fs.Points[i].N < fs.Points[j].N })
		fig.Series = append(fig.Series, fs)
	}
	return fig, nil
}

// curveNs returns the spec's N grid at the current fidelity tier.
func (s *Spec) curveNs(o *bench.Options) []int {
	if o.Quick && len(s.QuickNs) > 0 {
		return s.QuickNs
	}
	if !o.Quick && len(s.Ns) > 0 {
		return s.Ns
	}
	return o.CurveNs()
}

// runModelCell produces one speed or time-per-step series: measured and
// synthetic traces through the timing simulator for trace curves, the
// analytic mean-block-size prediction for model curves.
func runModelCell(s *Spec, o *bench.Options, c Cell) (FigSeries, error) {
	w, err := o.Workload(c.Soft)
	if err != nil {
		return FigSeries{}, err
	}
	fs := FigSeries{Label: c.Label}
	scale := 1.0
	seedOff := uint64(tpsSeedOffset)
	switch s.Kind {
	case "speed":
		fs.Units = "Gflops"
		scale = 1e9
		seedOff = speedSeedOffset
		if s.Unit == "Tflops" {
			fs.Units = "Tflops"
			scale = 1e12
		}
	case "timeperstep":
		fs.Units = "s/step"
	}

	value := func(rep timing.Report) float64 {
		if s.Kind == "speed" {
			return rep.SpeedFlops() / scale
		}
		return rep.TimePerStep()
	}
	modelValue := func(n int) float64 {
		nb := w.MeanBlockSize(n)
		if s.Kind == "speed" {
			return c.Machine.Speed(n, nb) / scale
		}
		return c.Machine.TimePerStep(n, nb)
	}

	ns := s.curveNs(o)
	if c.Curve == "model" {
		for _, n := range ns {
			fs.Points = append(fs.Points, FigPoint{N: n, Value: modelValue(n)})
		}
		return fs, nil
	}
	// Trace curve: functional (measured) traces at laptop-feasible N,
	// power-law-extrapolated synthetic traces at paper scale.
	for _, tr := range w.Measured {
		fs.Points = append(fs.Points, FigPoint{N: tr.N, Value: value(timing.Simulate(c.Machine, tr))})
	}
	rng := xrand.New(o.Seed + seedOff)
	for _, n := range ns {
		tr := w.Synthetic(n, 0.01, rng.Split())
		fs.Points = append(fs.Points, FigPoint{N: n, Value: value(timing.Simulate(c.Machine, tr))})
	}
	return fs, nil
}

// runCosimCell executes the real parallel algorithms over the simulated
// network: one point per (hosts, clusters) sweep entry, the series value
// being the virtual-time step rate.
func runCosimCell(s *Spec, o *bench.Options, c Cell) (FigSeries, error) {
	n := s.N
	tEnd := s.TEnd
	if o.Quick {
		if s.QuickN > 0 {
			n = s.QuickN
		}
		if s.QuickTEnd > 0 {
			tEnd = s.QuickTEnd
		}
	}
	if n <= 0 || tEnd <= 0 {
		return FigSeries{}, fmt.Errorf("cosim kind needs positive n and t_end")
	}
	modelName := s.Model
	if modelName == "" {
		modelName = "plummer"
	}
	soft := units.SoftConstant
	if len(s.Softening) > 0 {
		soft, _ = LookupSoftening(s.Softening[0])
	}
	eps := units.Softening(soft, n)
	params := hermite.DefaultParams(eps)
	if s.Eta > 0 {
		params.Eta = s.Eta
	}

	fs := FigSeries{Label: c.Label, Units: "steps/s (virtual)"}
	for _, sw := range c.Sweep {
		sys, err := BuildModel(modelName, n, 6, xrand.New(o.Seed))
		if err != nil {
			return FigSeries{}, err
		}
		cfg := parallel.Config{
			Hosts:   sw.Hosts,
			NIC:     c.NIC,
			Machine: perfmodel.SingleNode(c.NIC, c.Host),
			Params:  params,
		}
		var res *parallel.Result
		switch c.Algo {
		case "copy":
			res, err = parallel.RunCopy(sys, tEnd, cfg)
		case "ring":
			res, err = parallel.RunRing(sys, tEnd, cfg)
		case "grid":
			res, err = parallel.RunGrid(sys, tEnd, cfg)
		case "hybrid":
			res, err = parallel.RunHybrid(sys, tEnd, sw.Clusters, cfg)
		default:
			return FigSeries{}, fmt.Errorf("unknown algorithm %q", c.Algo)
		}
		if err != nil {
			return FigSeries{}, err
		}
		fs.Points = append(fs.Points, FigPoint{N: sw.Hosts, Value: res.StepsPerSecond()})
	}
	return fs, nil
}
