package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"grape6/internal/bench"
)

// Figure is the paper-style figure JSON a scenario run emits: one file
// per experiment id, one labelled series per curve, points sorted by N.
// The same schema is committed under testdata/scenarios/ as the golden
// baseline.
type Figure struct {
	ID       string      `json:"id"`
	Title    string      `json:"title"`
	Fidelity string      `json:"fidelity"` // "quick" or "full"
	Seed     uint64      `json:"seed"`
	Series   []FigSeries `json:"series"`
	Notes    []string    `json:"notes,omitempty"`
}

// FigSeries is one labelled curve.
type FigSeries struct {
	Label  string     `json:"label"`
	Units  string     `json:"units,omitempty"`
	Points []FigPoint `json:"points"`
}

// FigPoint is one datum; N is the x value (particle count or, for cosim
// figures, host count).
type FigPoint struct {
	N     int     `json:"n"`
	Value float64 `json:"v"`
}

// Fidelity names the tier of a harness configuration.
func Fidelity(o *bench.Options) string {
	if o.Quick {
		return "quick"
	}
	return "full"
}

// FromExperiment converts a hand-wired bench experiment into the figure
// schema (points sorted by N), so -json works for every experiment id.
func FromExperiment(e bench.Experiment, o *bench.Options) Figure {
	f := Figure{
		ID: e.ID, Title: e.Title, Fidelity: Fidelity(o), Seed: o.Seed,
		Notes: append([]string(nil), e.Notes...),
	}
	for _, s := range e.Series {
		fs := FigSeries{Label: s.Label, Units: s.YUnits}
		for _, p := range s.Points {
			fs.Points = append(fs.Points, FigPoint{N: p.N, Value: p.Value})
		}
		sort.Slice(fs.Points, func(i, j int) bool { return fs.Points[i].N < fs.Points[j].N })
		f.Series = append(f.Series, fs)
	}
	return f
}

// ToExperiment converts back for the text renderer.
func (f Figure) ToExperiment() bench.Experiment {
	e := bench.Experiment{
		ID: f.ID, Title: f.Title,
		Notes: append([]string(nil), f.Notes...),
	}
	for _, s := range f.Series {
		bs := bench.Series{Label: s.Label, YUnits: s.Units}
		for _, p := range s.Points {
			bs.Points = append(bs.Points, bench.Point{N: p.N, Value: p.Value})
		}
		e.Series = append(e.Series, bs)
	}
	return e
}

// FindSeries returns the series with the given label, or nil.
func (f Figure) FindSeries(label string) *FigSeries {
	for i := range f.Series {
		if f.Series[i].Label == label {
			return &f.Series[i]
		}
	}
	return nil
}

// Write emits the committed JSON form (indented, trailing newline).
// Non-finite values are rejected here rather than silently mangled: a
// NaN or Inf in a figure is a harness bug that must fail loudly.
func (f Figure) Write(w io.Writer) error {
	for _, s := range f.Series {
		for _, p := range s.Points {
			if math.IsNaN(p.Value) || math.IsInf(p.Value, 0) {
				return fmt.Errorf("scenario %s: non-finite value %v in series %q at N=%d",
					f.ID, p.Value, s.Label, p.N)
			}
		}
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}

// ReadFigure decodes a figure JSON stream.
func ReadFigure(r io.Reader) (Figure, error) {
	var f Figure
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return Figure{}, fmt.Errorf("scenario: %w", err)
	}
	return f, nil
}

// BaselinePath names the committed baseline for an experiment id at a
// fidelity tier: <dir>/<id>.<fidelity>.json.
func BaselinePath(dir, id, fidelity string) string {
	return filepath.Join(dir, id+"."+fidelity+".json")
}

// LoadBaseline reads the committed baseline. A missing baseline is an
// error — an experiment with no pinned curve must fail loudly, not pass
// vacuously.
func LoadBaseline(dir, id, fidelity string) (Figure, error) {
	path := BaselinePath(dir, id, fidelity)
	file, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return Figure{}, fmt.Errorf(
				"scenario %s: no committed %s-fidelity baseline at %s (run with -update to create it)",
				id, fidelity, path)
		}
		return Figure{}, err
	}
	defer file.Close()
	f, err := ReadFigure(file)
	if err != nil {
		return Figure{}, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// WriteBaseline writes (or overwrites) the committed baseline file.
func WriteBaseline(dir string, f Figure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var buf strings.Builder
	if err := f.Write(&buf); err != nil {
		return err
	}
	return os.WriteFile(BaselinePath(dir, f.ID, f.Fidelity), []byte(buf.String()), 0o644)
}
