// Package scenario is the declarative experiment matrix: a Spec names an
// initial model, particle counts, softening choices, integrator
// parameters and backend topologies (direct model curves, GRAPE fleets,
// message-level co-simulation), and the runner expands the cross-product
// through the existing bench/timing/parallel/perfmodel layers into
// paper-style figure JSON. Committed baselines under testdata/scenarios/
// plus per-series relative tolerances turn every figure into a
// machine-checkable regression: a new scale or speed claim lands as a
// spec row and a pinned curve, and CI diffs the whole matrix.
//
// The spec grammar, tolerance policy and the add-a-row / update-a-
// baseline workflows are documented in DESIGN.md §12.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"grape6/internal/model"
	"grape6/internal/nbody"
	"grape6/internal/perfmodel"
	"grape6/internal/simnet"
	"grape6/internal/units"
	"grape6/internal/xrand"
)

// Spec is one declarative experiment: a figure identity plus the axes
// whose cross-product the runner executes.
type Spec struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	// Kind selects the runner: "speed" (flops vs N through the timing
	// simulator), "timeperstep" (seconds per particle step vs N), or
	// "cosim" (message-level co-simulation step rates vs host count).
	Kind  string `json:"kind"`
	Paper string `json:"paper,omitempty"` // the paper's reported result

	// Unit overrides the y units of model-driven kinds: "Gflops"
	// (default) or "Tflops" for speed; timeperstep is always "s/step".
	Unit string `json:"unit,omitempty"`

	// Softening lists the workload softening choices: "const", "ncbrt",
	// "overn" (default ["const"]). Each entry multiplies the machine
	// axis into one series per (machine, softening).
	Softening []string `json:"softening,omitempty"`

	// Ns / QuickNs override the model-curve N grid per fidelity tier;
	// empty uses the harness defaults (bench.Options.CurveNs). Trace
	// curves additionally include the measured-workload points.
	Ns      []int `json:"ns,omitempty"`
	QuickNs []int `json:"quick_ns,omitempty"`

	// Eta overrides the Aarseth accuracy parameter (cosim kind).
	Eta float64 `json:"eta,omitempty"`

	// Cosim-kind workload: initial model (default "plummer"), system
	// size and integration span per fidelity tier.
	Model     string  `json:"model,omitempty"`
	N         int     `json:"n,omitempty"`
	QuickN    int     `json:"quick_n,omitempty"`
	TEnd      float64 `json:"t_end,omitempty"`
	QuickTEnd float64 `json:"quick_t_end,omitempty"`

	// Machines is the topology axis: one entry per backend
	// configuration (model curves) or per algorithm sweep (cosim).
	Machines []MachineSpec `json:"machines"`

	// Tolerance is the default relative tolerance for baseline diffing;
	// zero means the DefaultTolerance. Tolerances overrides it per
	// series label.
	Tolerance  float64            `json:"tolerance,omitempty"`
	Tolerances map[string]float64 `json:"tolerances,omitempty"`

	Notes []string `json:"notes,omitempty"`
}

// MachineSpec is one backend topology of the matrix.
type MachineSpec struct {
	// Label names the series; empty uses the softening label alone.
	Label string `json:"label,omitempty"`

	// Curve selects how model-kind values are produced: "trace"
	// (default; block-by-block through the timing simulator over
	// measured and synthetic traces) or "model" (the analytic
	// mean-block-size prediction, the dashed/dotted curves of the
	// figures).
	Curve string `json:"curve,omitempty"`

	// Topology: clusters × hosts per cluster, each host with
	// boards × chips GRAPE silicon. Zero values take the production
	// defaults (1 cluster, 1 host, 4 boards, 32 chips per board).
	Clusters int `json:"clusters,omitempty"`
	Hosts    int `json:"hosts_per_cluster,omitempty"`
	Boards   int `json:"boards_per_host,omitempty"`
	Chips    int `json:"chips_per_board,omitempty"`

	// ClockMHz overrides the pipeline clock (default the production
	// 90 MHz; GRAPE-6A cards ran at 96).
	ClockMHz float64 `json:"chip_clock_mhz,omitempty"`

	// NIC and Host select the interconnect and frontend profiles by
	// name (LookupNIC / LookupHost).
	NIC  string `json:"nic"`
	Host string `json:"host"`

	// FlatCache zeroes the host cache model — the constant-host-time
	// (dashed) variant of Figure 14.
	FlatCache bool `json:"flat_cache,omitempty"`

	// Cosim kind only: the parallel algorithm and the (hosts, clusters)
	// sweep whose step rates form the series.
	Algo  string      `json:"algo,omitempty"`
	Sweep []CosimCell `json:"sweep,omitempty"`
}

// CosimCell is one co-simulation configuration of a sweep.
type CosimCell struct {
	Hosts    int `json:"hosts"`
	Clusters int `json:"clusters,omitempty"` // hybrid algorithm only
}

// DefaultTolerance is the relative tolerance applied when a spec names
// none: tight enough that any real change to the deterministic harness
// fails, loose enough to absorb cross-platform FMA contraction.
const DefaultTolerance = 1e-6

// TolFor returns the relative tolerance for a series label.
func (s *Spec) TolFor(label string) float64 {
	if t, ok := s.Tolerances[label]; ok {
		return t
	}
	if s.Tolerance > 0 {
		return s.Tolerance
	}
	return DefaultTolerance
}

// Load reads and validates one spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// Parse decodes and validates a spec. Unknown fields are errors so typos
// in a spec file cannot silently drop an axis.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadDir reads every *.json spec in dir, sorted by id.
func LoadDir(dir string) ([]*Spec, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("scenario: no specs under %s", dir)
	}
	sort.Strings(paths)
	specs := make([]*Spec, 0, len(paths))
	seen := make(map[string]string)
	for _, p := range paths {
		s, err := Load(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if prev, dup := seen[s.ID]; dup {
			return nil, fmt.Errorf("scenario: id %q in both %s and %s", s.ID, prev, p)
		}
		seen[s.ID] = p
		specs = append(specs, s)
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].ID < specs[j].ID })
	return specs, nil
}

// Emit re-serialises the spec in the committed format (indented,
// stable field order): parse → Emit → Parse is the identity.
func (s *Spec) Emit(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}

// Validate reports grammar errors.
func (s *Spec) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("scenario: spec without id")
	}
	switch s.Kind {
	case "speed", "timeperstep", "cosim":
	default:
		return fmt.Errorf("scenario %s: unknown kind %q (want speed, timeperstep or cosim)", s.ID, s.Kind)
	}
	if len(s.Machines) == 0 {
		return fmt.Errorf("scenario %s: no machines", s.ID)
	}
	switch s.Unit {
	case "", "Gflops", "Tflops":
	default:
		return fmt.Errorf("scenario %s: unknown unit %q", s.ID, s.Unit)
	}
	for _, name := range s.Softening {
		if _, ok := LookupSoftening(name); !ok {
			return fmt.Errorf("scenario %s: unknown softening %q", s.ID, name)
		}
	}
	if s.Model != "" {
		if !KnownModel(s.Model) {
			return fmt.Errorf("scenario %s: unknown model %q", s.ID, s.Model)
		}
	}
	for i, m := range s.Machines {
		if _, ok := LookupNIC(m.NIC); !ok {
			return fmt.Errorf("scenario %s: machine %d: unknown NIC %q", s.ID, i, m.NIC)
		}
		if _, ok := LookupHost(m.Host); !ok {
			return fmt.Errorf("scenario %s: machine %d: unknown host %q", s.ID, i, m.Host)
		}
		if s.Kind == "cosim" {
			switch m.Algo {
			case "copy", "ring", "grid", "hybrid":
			default:
				return fmt.Errorf("scenario %s: machine %d: unknown algorithm %q", s.ID, i, m.Algo)
			}
			if len(m.Sweep) == 0 {
				return fmt.Errorf("scenario %s: machine %d: cosim sweep is empty", s.ID, i)
			}
			for _, c := range m.Sweep {
				if c.Hosts <= 0 {
					return fmt.Errorf("scenario %s: machine %d: non-positive host count %d", s.ID, i, c.Hosts)
				}
				if m.Algo == "hybrid" && c.Clusters <= 0 {
					return fmt.Errorf("scenario %s: machine %d: hybrid sweep needs clusters", s.ID, i)
				}
			}
		} else {
			switch m.Curve {
			case "", "trace", "model":
			default:
				return fmt.Errorf("scenario %s: machine %d: unknown curve %q", s.ID, i, m.Curve)
			}
			if _, err := m.Build(); err != nil {
				return err
			}
		}
	}
	for _, t := range s.Tolerances {
		if t <= 0 {
			return fmt.Errorf("scenario %s: non-positive tolerance %v", s.ID, t)
		}
	}
	if s.Tolerance < 0 {
		return fmt.Errorf("scenario %s: negative tolerance %v", s.ID, s.Tolerance)
	}
	return nil
}

// Build constructs the perfmodel machine for a model-kind entry.
func (m MachineSpec) Build() (perfmodel.Machine, error) {
	nic, ok := LookupNIC(m.NIC)
	if !ok {
		return perfmodel.Machine{}, fmt.Errorf("scenario: unknown NIC %q", m.NIC)
	}
	host, ok := LookupHost(m.Host)
	if !ok {
		return perfmodel.Machine{}, fmt.Errorf("scenario: unknown host %q", m.Host)
	}
	if m.FlatCache {
		host.CacheBytes = 0
	}
	hw := perfmodel.ProductionHW
	if m.Chips > 0 {
		hw.ChipsPerBoard = m.Chips
	}
	if m.ClockMHz > 0 {
		hw.ClockHz = m.ClockMHz * 1e6
	}
	mm := perfmodel.Machine{
		Name:          m.Label,
		Clusters:      max1(m.Clusters),
		HostsPerCl:    max1(m.Hosts),
		BoardsPerHost: m.Boards,
		HW:            hw,
		Link:          perfmodel.PCI,
		NIC:           nic,
		Host:          host,
	}
	if mm.BoardsPerHost == 0 {
		mm.BoardsPerHost = 4
	}
	if err := mm.Validate(); err != nil {
		return perfmodel.Machine{}, err
	}
	return mm, nil
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

// LookupNIC resolves a NIC profile by its spec/CLI name. cmd/grape6sim
// shares this table for its -nic flag.
func LookupNIC(name string) (simnet.NIC, bool) {
	switch name {
	case "ns83820":
		return simnet.NS83820, true
	case "tigon2":
		return simnet.Tigon2, true
	case "intel82540em":
		return simnet.Intel82540EM, true
	case "myrinet":
		return simnet.Myrinet, true
	case "bypass":
		return simnet.KernelBypass, true
	}
	return simnet.NIC{}, false
}

// LookupHost resolves a frontend profile by name.
func LookupHost(name string) (perfmodel.HostProfile, bool) {
	switch name {
	case "athlon":
		return perfmodel.Athlon, true
	case "p4":
		return perfmodel.P4, true
	}
	return perfmodel.HostProfile{}, false
}

// LookupSoftening resolves a softening choice by its spec/CLI name.
func LookupSoftening(name string) (units.SofteningKind, bool) {
	switch name {
	case "const":
		return units.SoftConstant, true
	case "ncbrt":
		return units.SoftNDependent, true
	case "overn":
		return units.SoftOverN, true
	}
	return 0, false
}

// KnownModel reports whether BuildModel accepts the name.
func KnownModel(name string) bool {
	switch name {
	case "plummer", "king", "disk", "bhbinary", "coldsphere":
		return true
	}
	return false
}

// BuildModel samples an initial model by name — the shared table behind
// grape6sim's -model flag and the cosim scenario kind. w0 is the King
// central potential (ignored elsewhere).
func BuildModel(name string, n int, w0 float64, rng *xrand.Source) (*nbody.System, error) {
	switch name {
	case "plummer":
		return model.Plummer(n, rng), nil
	case "king":
		return model.King(n, w0, rng)
	case "disk":
		return model.Disk(model.DefaultKuiperDisk(n), rng), nil
	case "bhbinary":
		return model.PlummerWithBlackHoles(n, 0.005, 0.3, rng), nil
	case "coldsphere":
		return model.ColdSphere(n, 1.5, rng), nil
	}
	return nil, fmt.Errorf("scenario: unknown model %q", name)
}

// Cell is one expanded series of the matrix: the unit of execution.
type Cell struct {
	Label string
	// Model kinds.
	Machine perfmodel.Machine
	Soft    units.SofteningKind
	Curve   string // "trace" or "model"
	// Cosim kind.
	Algo  string
	NIC   simnet.NIC
	Host  perfmodel.HostProfile
	Sweep []CosimCell
}

// Expand returns the deterministic cross-product of the spec's axes, one
// Cell per output series.
func (s *Spec) Expand() ([]Cell, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var cells []Cell
	if s.Kind == "cosim" {
		for _, m := range s.Machines {
			nic, _ := LookupNIC(m.NIC)
			host, _ := LookupHost(m.Host)
			cells = append(cells, Cell{
				Label: m.Label, Algo: m.Algo, NIC: nic, Host: host,
				Sweep: append([]CosimCell(nil), m.Sweep...),
			})
		}
		return cells, nil
	}
	softs := s.Softening
	if len(softs) == 0 {
		softs = []string{"const"}
	}
	for _, m := range s.Machines {
		mm, err := m.Build()
		if err != nil {
			return nil, err
		}
		curve := m.Curve
		if curve == "" {
			curve = "trace"
		}
		for _, sn := range softs {
			kind, _ := LookupSoftening(sn)
			cells = append(cells, Cell{
				Label:   seriesLabel(m.Label, kind, len(softs) > 1),
				Machine: mm,
				Soft:    kind,
				Curve:   curve,
			})
		}
	}
	return cells, nil
}

// seriesLabel composes the series label from the machine label and the
// softening choice, matching the hand-wired runners' conventions: a
// lone softening axis uses the paper's softening notation, a lone
// machine axis uses the machine label, and a true cross-product joins
// both.
func seriesLabel(machine string, kind units.SofteningKind, multiSoft bool) string {
	if machine == "" {
		return kind.String()
	}
	if multiSoft {
		return fmt.Sprintf("%s, %s", machine, kind)
	}
	return machine
}
