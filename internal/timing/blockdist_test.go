package timing

import (
	"math"
	"testing"

	"grape6/internal/perfmodel"
	"grape6/internal/sched"
	"grape6/internal/simnet"
	"grape6/internal/units"
	"grape6/internal/xrand"
)

// TestReportForBlocksMatchesMeasuredTrace feeds the block sizes measured
// from a real scheduler-driven integration through ReportForBlocks and
// requires exact agreement with Simulate on the recorded trace: the
// explicit-sizes bridge and the trace replay must price identical block
// structures identically. It also pins the new BlockStat.Bins channel —
// every recorded block must report a plausible occupied-bin count from
// the bucketed scheduler.
func TestReportForBlocksMatchesMeasuredTrace(t *testing.T) {
	tr, err := sched.Record(256, units.SoftConstant, 1.0/16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Blocks) == 0 {
		t.Fatal("empty measured trace")
	}
	sizes := make([]int, len(tr.Blocks))
	for i, b := range tr.Blocks {
		sizes[i] = b.Size
		if b.Bins < 1 || b.Bins > 64 {
			t.Fatalf("block %d: implausible scheduler bin count %d", i, b.Bins)
		}
		if b.Size < 1 || b.Size > tr.N {
			t.Fatalf("block %d: implausible size %d", i, b.Size)
		}
	}

	m := perfmodel.SingleNode(simnet.NS83820, perfmodel.Athlon)
	want := Simulate(m, tr)
	got := ReportForBlocks(m, tr.N, sizes)
	if got.Blocks != want.Blocks || got.Steps != want.Steps {
		t.Fatalf("counters differ: got %d/%d blocks/steps, want %d/%d",
			got.Blocks, got.Steps, want.Blocks, want.Steps)
	}
	if got.Host != want.Host || got.Comm != want.Comm ||
		got.Grape != want.Grape || got.Sync != want.Sync {
		t.Fatalf("component totals differ: got %+v, want %+v", got, want)
	}
}

// TestSynthetic64kDistribution validates the 64k block-size distribution
// the timing pipeline runs on: a workload fitted to measured traces,
// extrapolated to N = 65536, must produce a size stream whose
// ReportForBlocks accounting is self-consistent and whose mean matches
// the fit's MeanBlockSize prediction — the skew-preserving resampling
// must not shift the first moment it was scaled to.
func TestSynthetic64kDistribution(t *testing.T) {
	w, err := sched.FitWorkload(units.SoftConstant, []int{256, 512}, 1.0/16, 7)
	if err != nil {
		t.Fatal(err)
	}
	const n = 65536
	synth := w.Synthetic(n, 1.0/64, xrand.New(11))
	if len(synth.Blocks) == 0 {
		t.Fatal("empty synthetic trace")
	}
	sizes := make([]int, len(synth.Blocks))
	for i, b := range synth.Blocks {
		sizes[i] = b.Size
	}

	m := perfmodel.SingleNode(simnet.NS83820, perfmodel.Athlon)
	rep := ReportForBlocks(m, n, sizes)
	if rep.Blocks != int64(len(sizes)) || rep.Steps != synth.TotalSteps() {
		t.Fatalf("accounting: %d blocks %d steps, want %d blocks %d steps",
			rep.Blocks, rep.Steps, len(sizes), synth.TotalSteps())
	}
	if rep.TimePerStep() <= 0 || math.IsInf(rep.TimePerStep(), 0) {
		t.Fatalf("degenerate time per step %v", rep.TimePerStep())
	}

	mean := float64(rep.Steps) / float64(rep.Blocks)
	want := w.MeanBlockSize(n)
	if math.Abs(mean-want) > 0.25*want {
		t.Fatalf("synthetic mean block %.1f drifted from fit prediction %.1f", mean, want)
	}

	// The explicit-size bridge and the trace replay must agree exactly on
	// the synthetic trace too.
	ref := Simulate(m, synth)
	if rep.Host != ref.Host || rep.Grape != ref.Grape ||
		rep.Comm != ref.Comm || rep.Sync != ref.Sync {
		t.Fatalf("bridge totals differ from replay: %+v vs %+v", rep, ref)
	}
}
