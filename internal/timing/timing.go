// Package timing is the trace-driven whole-system simulator: it replays a
// block-step trace (measured or synthetic, from internal/sched) against a
// machine configuration (internal/perfmodel) and accumulates the wall-
// clock cost block by block. This is how the reproduction obtains
// paper-scale performance numbers — the functional emulator supplies the
// block structure at feasible N, the power-law workload model extends it
// to N = 2×10^6, and this package turns either into Figures 13-19 points
// and the Section 5 application estimates.
package timing

import (
	"fmt"

	"grape6/internal/hermite"
	"grape6/internal/perfmodel"
	"grape6/internal/sched"
	"grape6/internal/units"
)

// Report is the outcome of replaying one trace on one machine.
type Report struct {
	Machine perfmodel.Machine
	N       int
	Blocks  int64
	Steps   int64

	// Wall-clock component totals in seconds.
	Host, Comm, Grape, Sync float64

	// SimDuration is the simulated time covered by the trace, in N-body
	// units.
	SimDuration float64
}

// Wall returns the total predicted wall-clock time.
func (r Report) Wall() float64 { return r.Host + r.Comm + r.Grape + r.Sync }

// StepsPerSecond returns the individual-step rate.
func (r Report) StepsPerSecond() float64 {
	w := r.Wall()
	if w <= 0 {
		return 0
	}
	return float64(r.Steps) / w
}

// TimePerStep returns the mean wall-clock time per individual step — the
// y-axis of Figures 14, 16 and 18.
func (r Report) TimePerStep() float64 {
	if r.Steps == 0 {
		return 0
	}
	return r.Wall() / float64(r.Steps)
}

// SpeedFlops returns the sustained speed under eq. (9).
func (r Report) SpeedFlops() float64 {
	return units.Speed(r.N, r.StepsPerSecond())
}

// Efficiency returns sustained/peak.
func (r Report) Efficiency() float64 {
	return r.SpeedFlops() / r.Machine.PeakFlops()
}

// DominantComponent names the largest cost component — the paper's
// bottleneck analysis (Section 4.4).
func (r Report) DominantComponent() string {
	best, name := r.Host, "host"
	if r.Comm > best {
		best, name = r.Comm, "comm"
	}
	if r.Grape > best {
		best, name = r.Grape, "grape"
	}
	if r.Sync > best {
		name = "sync"
	}
	return name
}

// String summarises the report.
func (r Report) String() string {
	return fmt.Sprintf("%s N=%d: %.3g Gflops (%.1f%% of peak), %.3g s/step, bottleneck=%s",
		r.Machine.Name, r.N, r.SpeedFlops()/1e9, 100*r.Efficiency(),
		r.TimePerStep(), r.DominantComponent())
}

// Simulate replays the trace on the machine.
func Simulate(m perfmodel.Machine, tr *sched.Trace) Report {
	rep := Report{Machine: m, N: tr.N, SimDuration: tr.Duration}
	for _, b := range tr.Blocks {
		c := m.BlockTime(tr.N, b.Size)
		rep.Host += c.Host
		rep.Comm += c.Comm
		rep.Grape += c.Grape
		rep.Sync += c.Sync
		rep.Blocks++
		rep.Steps += int64(b.Size)
	}
	return rep
}

// ReportForBlocks replays an explicit sequence of block sizes — such as
// the per-round global block sizes a co-simulation run records — on the
// machine. It is the bridge between the event-driven co-simulation and
// the analytic model: both price the same block structure, so their
// component totals can be cross-checked.
func ReportForBlocks(m perfmodel.Machine, n int, sizes []int) Report {
	tr := &sched.Trace{N: n, Blocks: make([]hermite.BlockStat, len(sizes))}
	for i, s := range sizes {
		tr.Blocks[i] = hermite.BlockStat{Size: s}
	}
	return Simulate(m, tr)
}

// Application describes a production run for the Section 5 accounting.
type Application struct {
	Name       string
	N          int
	TotalSteps int64   // individual particle steps over the whole run
	MeanBlock  float64 // mean block size (particles per block step)
	FileIO     float64 // wall-clock overhead for snapshots etc., seconds
}

// Paper applications (Section 5), with the exact step counts the paper
// reports. Mean block sizes follow the ~2% of N typical of the benchmark
// traces.
var (
	// KuiperBelt: "We used 1.8M particles... the number of individual
	// steps was 1.911×10^10. The whole simulation, including file
	// operations, took 16.30 hours... 33.4 Tflops."
	KuiperBelt = Application{
		Name: "kuiper-belt", N: 1_800_000, TotalSteps: 19_110_000_000,
		MeanBlock: 0.02 * 1_800_000, FileIO: 1800,
	}
	// BHBinary: "we used 2M particles... 4.143×10^10 [steps]... took
	// 37.19 hours... 35.3 Tflops."
	BHBinary = Application{
		Name: "bh-binary", N: 2_000_000, TotalSteps: 41_430_000_000,
		MeanBlock: 0.02 * 2_000_000, FileIO: 3600,
	}
)

// AppReport is the predicted cost of an application run.
type AppReport struct {
	App    Application
	Mach   perfmodel.Machine
	Wall   float64 // seconds, including file I/O
	Flops  float64 // total floating-point operations (57 per interaction)
	Tflops float64 // sustained speed
}

// Hours returns the wall-clock in hours.
func (a AppReport) Hours() float64 { return a.Wall / 3600 }

// EstimateApplication predicts the wall-clock and sustained speed of an
// application run on the machine, using the paper's flop accounting
// (TotalSteps × (N-1) × 57; the paper multiplies by N-1: "1.911×10^10 ×
// 1799999 × 57"). The per-step time is evaluated at the mean block size,
// which understates the cost of the skewed real block-size distribution
// (Jensen); EstimateApplicationTrace is the distribution-weighted variant.
func EstimateApplication(m perfmodel.Machine, app Application) AppReport {
	perStep := m.TimePerStep(app.N, app.MeanBlock)
	return appReport(m, app, perStep)
}

// EstimateApplicationTrace predicts the application cost with the
// per-step time weighted over a block-size distribution (a synthetic
// trace at the application's N), which captures the fixed per-block
// overheads that many small blocks incur.
func EstimateApplicationTrace(m perfmodel.Machine, app Application, tr *sched.Trace) AppReport {
	rep := Simulate(m, tr)
	return appReport(m, app, rep.TimePerStep())
}

func appReport(m perfmodel.Machine, app Application, perStep float64) AppReport {
	wall := float64(app.TotalSteps)*perStep + app.FileIO
	flops := float64(app.TotalSteps) * float64(app.N-1) * units.FlopsPerInteraction
	return AppReport{
		App: app, Mach: m, Wall: wall, Flops: flops,
		Tflops: flops / wall / 1e12,
	}
}
