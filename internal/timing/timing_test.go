package timing

import (
	"math"
	"strings"
	"testing"

	"grape6/internal/hermite"
	"grape6/internal/perfmodel"
	"grape6/internal/sched"
	"grape6/internal/simnet"
	"grape6/internal/units"
)

// syntheticTrace builds a uniform trace by hand (no integration needed).
func syntheticTrace(n, blocks, size int, duration float64) *sched.Trace {
	tr := &sched.Trace{N: n, Kind: units.SoftConstant, Eps: 1.0 / 64, Duration: duration}
	for i := 0; i < blocks; i++ {
		tr.Blocks = append(tr.Blocks, hermite.BlockStat{
			Time: duration * float64(i+1) / float64(blocks), Size: size,
		})
	}
	return tr
}

func TestSimulateAccounting(t *testing.T) {
	m := perfmodel.SingleNode(simnet.NS83820, perfmodel.Athlon)
	tr := syntheticTrace(10000, 100, 200, 1.0)
	rep := Simulate(m, tr)
	if rep.Blocks != 100 || rep.Steps != 20000 {
		t.Errorf("counters: %d blocks, %d steps", rep.Blocks, rep.Steps)
	}
	// The report totals must equal 100× the single-block cost.
	c := m.BlockTime(10000, 200)
	if math.Abs(rep.Wall()-100*c.Total()) > 1e-12*rep.Wall() {
		t.Errorf("wall = %v, want %v", rep.Wall(), 100*c.Total())
	}
	if rep.TimePerStep() <= 0 || rep.StepsPerSecond() <= 0 {
		t.Error("degenerate rates")
	}
}

func TestReportSpeedConsistency(t *testing.T) {
	m := perfmodel.SingleNode(simnet.NS83820, perfmodel.Athlon)
	tr := syntheticTrace(50000, 50, 1000, 0.5)
	rep := Simulate(m, tr)
	// S = 57·N·steps/s by definition.
	want := 57.0 * 50000 * rep.StepsPerSecond()
	if math.Abs(rep.SpeedFlops()-want) > 1e-6*want {
		t.Errorf("speed = %v, want %v", rep.SpeedFlops(), want)
	}
	if rep.Efficiency() <= 0 || rep.Efficiency() >= 1 {
		t.Errorf("efficiency = %v", rep.Efficiency())
	}
}

func TestEmptyTrace(t *testing.T) {
	m := perfmodel.SingleNode(simnet.NS83820, perfmodel.Athlon)
	rep := Simulate(m, &sched.Trace{N: 100, Duration: 1})
	if rep.Wall() != 0 || rep.StepsPerSecond() != 0 || rep.TimePerStep() != 0 {
		t.Error("empty trace should produce zero report")
	}
}

func TestDominantComponentShifts(t *testing.T) {
	// Small N on 16 hosts: sync dominates. Large N: GRAPE dominates.
	m := perfmodel.MultiCluster(4, simnet.NS83820, perfmodel.Athlon)
	small := Simulate(m, syntheticTrace(2000, 100, 40, 1))
	if got := small.DominantComponent(); got != "sync" {
		t.Errorf("small-N bottleneck = %s, want sync", got)
	}
	big := Simulate(m, syntheticTrace(1_800_000, 10, 36000, 0.01))
	if got := big.DominantComponent(); got != "grape" {
		t.Errorf("large-N bottleneck = %s, want grape", got)
	}
}

func TestReportString(t *testing.T) {
	m := perfmodel.SingleNode(simnet.NS83820, perfmodel.Athlon)
	rep := Simulate(m, syntheticTrace(10000, 10, 100, 1))
	s := rep.String()
	if !strings.Contains(s, "N=10000") || !strings.Contains(s, "bottleneck=") {
		t.Errorf("String = %q", s)
	}
}

func TestKuiperBeltEstimate(t *testing.T) {
	// Section 5: 1.8M particles, 1.911e10 steps, 16.30 hours, 33.4 Tflops
	// on the tuned machine. The model should reproduce the right order:
	// hours in [8, 35], Tflops in [20, 63].
	m := perfmodel.MultiCluster(4, simnet.Intel82540EM, perfmodel.P4)
	rep := EstimateApplication(m, KuiperBelt)
	if rep.Hours() < 8 || rep.Hours() > 35 {
		t.Errorf("Kuiper-belt hours = %v, paper: 16.30", rep.Hours())
	}
	if rep.Tflops < 20 || rep.Tflops > 63 {
		t.Errorf("Kuiper-belt Tflops = %v, paper: 33.4", rep.Tflops)
	}
	// Total flops must match the paper's accounting: 1.961e18.
	if math.Abs(rep.Flops-1.961e18)/1.961e18 > 0.01 {
		t.Errorf("total flops = %v, paper: 1.961e18", rep.Flops)
	}
}

func TestBHBinaryEstimate(t *testing.T) {
	// Section 5: 2M particles, 4.143e10 steps, 37.19 hours, 35.3 Tflops.
	m := perfmodel.MultiCluster(4, simnet.Intel82540EM, perfmodel.P4)
	rep := EstimateApplication(m, BHBinary)
	if rep.Hours() < 20 || rep.Hours() > 75 {
		t.Errorf("BH-binary hours = %v, paper: 37.19", rep.Hours())
	}
	if rep.Tflops < 20 || rep.Tflops > 63 {
		t.Errorf("BH-binary Tflops = %v, paper: 35.3", rep.Tflops)
	}
	// Paper total: 4.723e18 flops.
	if math.Abs(rep.Flops-4.723e18)/4.723e18 > 0.01 {
		t.Errorf("total flops = %v, paper: 4.723e18", rep.Flops)
	}
}

func TestBHBinarySlowerThanKuiper(t *testing.T) {
	m := perfmodel.MultiCluster(4, simnet.Intel82540EM, perfmodel.P4)
	k := EstimateApplication(m, KuiperBelt)
	b := EstimateApplication(m, BHBinary)
	if b.Wall <= k.Wall {
		t.Error("BH binary (2.2x steps) should take longer than Kuiper belt")
	}
}

func TestUntunedMachineSlower(t *testing.T) {
	tuned := perfmodel.MultiCluster(4, simnet.Intel82540EM, perfmodel.P4)
	old := perfmodel.MultiCluster(4, simnet.NS83820, perfmodel.Athlon)
	rt := EstimateApplication(tuned, KuiperBelt)
	ro := EstimateApplication(old, KuiperBelt)
	if ro.Tflops >= rt.Tflops {
		t.Errorf("untuned machine not slower: %v vs %v", ro.Tflops, rt.Tflops)
	}
}

func TestPaperParticleStepsPerSecond(t *testing.T) {
	// Section 5: "the speed achieved with GRAPE-6 is around 3.3×10^5
	// particle steps per second." Our model: steps/s = 1/TimePerStep.
	m := perfmodel.MultiCluster(4, simnet.Intel82540EM, perfmodel.P4)
	perStep := m.TimePerStep(1_800_000, 36000)
	stepsPerSec := 1 / perStep
	if stepsPerSec < 1.5e5 || stepsPerSec > 8e5 {
		t.Errorf("steps/s = %v, paper: ~3.3e5", stepsPerSec)
	}
}
