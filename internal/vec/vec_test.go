package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAddSub(t *testing.T) {
	a := New(1, 2, 3)
	b := New(4, -5, 6)
	if got := a.Add(b); got != New(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != New(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
}

func TestNegScale(t *testing.T) {
	a := New(1, -2, 3)
	if got := a.Neg(); got != New(-1, 2, -3) {
		t.Errorf("Neg = %v", got)
	}
	if got := a.Scale(2); got != New(2, -4, 6) {
		t.Errorf("Scale = %v", got)
	}
}

func TestAddScaled(t *testing.T) {
	a := New(1, 1, 1)
	b := New(2, 3, 4)
	if got, want := a.AddScaled(0.5, b), New(2, 2.5, 3); got != want {
		t.Errorf("AddScaled = %v, want %v", got, want)
	}
}

func TestDotCross(t *testing.T) {
	ex := New(1, 0, 0)
	ey := New(0, 1, 0)
	ez := New(0, 0, 1)
	if got := ex.Cross(ey); got != ez {
		t.Errorf("ex×ey = %v, want ez", got)
	}
	if got := ey.Cross(ez); got != ex {
		t.Errorf("ey×ez = %v, want ex", got)
	}
	if got := ex.Dot(ey); got != 0 {
		t.Errorf("ex·ey = %v", got)
	}
}

func TestNorm(t *testing.T) {
	a := New(3, 4, 0)
	if got := a.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := a.Norm2(); got != 25 {
		t.Errorf("Norm2 = %v", got)
	}
}

func TestDist(t *testing.T) {
	a := New(1, 2, 3)
	b := New(4, 6, 3)
	if got := a.Dist(b); got != 5 {
		t.Errorf("Dist = %v", got)
	}
	if got := a.Dist2(b); got != 25 {
		t.Errorf("Dist2 = %v", got)
	}
}

func TestUnit(t *testing.T) {
	a := New(0, 0, 7)
	if got := a.Unit(); got != New(0, 0, 1) {
		t.Errorf("Unit = %v", got)
	}
	if got := Zero.Unit(); got != Zero {
		t.Errorf("Unit(0) = %v", got)
	}
}

func TestMaxAbs(t *testing.T) {
	if got := New(-5, 2, 3).MaxAbs(); got != 5 {
		t.Errorf("MaxAbs = %v", got)
	}
	if got := New(1, -9, 3).MaxAbs(); got != 9 {
		t.Errorf("MaxAbs = %v", got)
	}
	if got := New(1, 2, -10).MaxAbs(); got != 10 {
		t.Errorf("MaxAbs = %v", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !New(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if New(math.NaN(), 0, 0).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if New(0, math.Inf(1), 0).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestSumMean(t *testing.T) {
	vs := []V3{New(1, 0, 0), New(0, 2, 0), New(0, 0, 3)}
	if got := Sum(vs...); got != New(1, 2, 3) {
		t.Errorf("Sum = %v", got)
	}
	if got := Mean(vs); got != New(1.0/3, 2.0/3, 1) {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != Zero {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestString(t *testing.T) {
	if got := New(1, 2.5, -3).String(); got != "(1, 2.5, -3)" {
		t.Errorf("String = %q", got)
	}
}

// Property: addition commutes and Sub is its inverse.
func TestPropAddCommutes(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := New(ax, ay, az), New(bx, by, bz)
		return a.Add(b) == b.Add(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSubInverse(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := New(ax, ay, az), New(bx, by, bz)
		got := a.Add(b).Sub(b)
		// Exact for representable values without rounding interplay is not
		// guaranteed; allow relative tolerance.
		tol := 1e-9 * (1 + a.MaxAbs() + b.MaxAbs())
		return approx(got.X, a.X, tol) && approx(got.Y, a.Y, tol) && approx(got.Z, a.Z, tol)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: cross product is antisymmetric and orthogonal to its operands.
func TestPropCross(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := New(ax, ay, az), New(bx, by, bz)
		if !a.IsFinite() || !b.IsFinite() {
			return true
		}
		c := a.Cross(b)
		anti := c.Add(b.Cross(a))
		scale := a.MaxAbs() * b.MaxAbs()
		if scale == 0 || math.IsInf(scale, 0) {
			return true
		}
		tol := 1e-9 * scale
		return anti.MaxAbs() <= tol &&
			math.Abs(c.Dot(a)) <= tol*(1+a.MaxAbs()) &&
			math.Abs(c.Dot(b)) <= tol*(1+b.MaxAbs())
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: |a| is invariant under component permutation.
func TestPropNormPermutation(t *testing.T) {
	f := func(x, y, z float64) bool {
		if math.IsInf(x, 0) || math.IsInf(y, 0) || math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(z) || math.IsInf(z, 0) {
			return true
		}
		a := New(x, y, z).Norm2()
		b := New(z, x, y).Norm2()
		return a == b || approx(a, b, 1e-9*math.Max(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAddScaled(b *testing.B) {
	v, w := New(1, 2, 3), New(4, 5, 6)
	var s V3
	for i := 0; i < b.N; i++ {
		s = s.AddScaled(1e-9, v).AddScaled(-1e-9, w)
	}
	if !s.IsFinite() {
		b.Fatal("non-finite")
	}
}
