// Package vec provides the small fixed-size vector algebra used throughout
// the GRAPE-6 reproduction: 3-component float64 vectors with value
// semantics. All operations return new values; nothing in this package
// allocates on the heap.
package vec

import (
	"fmt"
	"math"
)

// V3 is a 3-component vector in Cartesian coordinates.
type V3 struct {
	X, Y, Z float64
}

// Zero is the zero vector.
var Zero = V3{}

// New returns the vector (x, y, z).
func New(x, y, z float64) V3 { return V3{x, y, z} }

// Add returns a + b.
func (a V3) Add(b V3) V3 { return V3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a V3) Sub(b V3) V3 { return V3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Neg returns -a.
func (a V3) Neg() V3 { return V3{-a.X, -a.Y, -a.Z} }

// Scale returns s*a.
func (a V3) Scale(s float64) V3 { return V3{s * a.X, s * a.Y, s * a.Z} }

// AddScaled returns a + s*b. This is the fused form used by predictor and
// corrector polynomial evaluation.
func (a V3) AddScaled(s float64, b V3) V3 {
	return V3{a.X + s*b.X, a.Y + s*b.Y, a.Z + s*b.Z}
}

// Dot returns the scalar product a·b.
func (a V3) Dot(b V3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the vector product a×b.
func (a V3) Cross(b V3) V3 {
	return V3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Norm2 returns |a|².
func (a V3) Norm2() float64 { return a.Dot(a) }

// Norm returns |a|.
func (a V3) Norm() float64 { return math.Sqrt(a.Norm2()) }

// Dist returns |a-b|.
func (a V3) Dist(b V3) float64 { return a.Sub(b).Norm() }

// Dist2 returns |a-b|².
func (a V3) Dist2(b V3) float64 { return a.Sub(b).Norm2() }

// Unit returns a/|a|. The zero vector is returned unchanged.
func (a V3) Unit() V3 {
	n := a.Norm()
	if n == 0 {
		return a
	}
	return a.Scale(1 / n)
}

// MaxAbs returns the largest absolute component, the L∞ norm.
func (a V3) MaxAbs() float64 {
	m := math.Abs(a.X)
	if v := math.Abs(a.Y); v > m {
		m = v
	}
	if v := math.Abs(a.Z); v > m {
		m = v
	}
	return m
}

// IsFinite reports whether all components are finite (no NaN, no Inf).
func (a V3) IsFinite() bool {
	return !math.IsNaN(a.X) && !math.IsInf(a.X, 0) &&
		!math.IsNaN(a.Y) && !math.IsInf(a.Y, 0) &&
		!math.IsNaN(a.Z) && !math.IsInf(a.Z, 0)
}

// String implements fmt.Stringer.
func (a V3) String() string {
	return fmt.Sprintf("(%g, %g, %g)", a.X, a.Y, a.Z)
}

// Sum returns the componentwise sum of vs.
func Sum(vs ...V3) V3 {
	var s V3
	for _, v := range vs {
		s = s.Add(v)
	}
	return s
}

// Mean returns the componentwise arithmetic mean of vs, or the zero vector
// if vs is empty.
func Mean(vs []V3) V3 {
	if len(vs) == 0 {
		return Zero
	}
	return Sum(vs...).Scale(1 / float64(len(vs)))
}
