package chip

import (
	"grape6/internal/gfixed"
	"grape6/internal/vec"
)

// MakeJParticle converts full-precision particle state into the chip
// storage formats: the position is quantized to fixed point and all other
// quantities are rounded to the pipeline float width. Positions outside
// the fixed-point range return gfixed.ErrPosRange.
func MakeJParticle(f gfixed.Format, id int, t0, mass float64, x, v, a, j, s vec.V3) (JParticle, error) {
	var p JParticle
	p.ID = id
	p.T0 = t0
	p.Mass = f.Round(mass)
	xs := [3]float64{x.X, x.Y, x.Z}
	for c := 0; c < 3; c++ {
		q, err := f.ToFixed(xs[c])
		if err != nil {
			return p, err
		}
		p.X[c] = q
	}
	p.V = roundV3(f, v)
	p.A = roundV3(f, a)
	p.J = roundV3(f, j)
	p.S = roundV3(f, s)
	return p, nil
}

func roundV3(f gfixed.Format, v vec.V3) [3]float64 {
	return [3]float64{f.Round(v.X), f.Round(v.Y), f.Round(v.Z)}
}

// PartialValues extracts the accumulated force, jerk and potential of a
// merged partial result as float64 vectors.
func PartialValues(p *Partial) (acc, jerk vec.V3, pot float64) {
	acc = vec.New(p.Acc[0].Value(), p.Acc[1].Value(), p.Acc[2].Value())
	jerk = vec.New(p.Jerk[0].Value(), p.Jerk[1].Value(), p.Jerk[2].Value())
	pot = p.Pot.Value()
	return
}
