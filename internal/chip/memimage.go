package chip

import (
	"fmt"

	"grape6/internal/ecc"
	"grape6/internal/gfixed"
)

// This file models the chip's DRAM path: the j-particle memory travels
// over the "72-bit (with ECC) data width" interface of Section 3.4, i.e.
// every 64-bit word is stored as a Hamming-SECDED codeword. EncodeMemory /
// ScrubMemory give the emulator the same fault model as the hardware:
// single-bit upsets are corrected transparently, double-bit upsets are
// detected and reported.

// WordsPerParticle is the memory footprint of one j-particle in 64-bit
// words: id, t0, mass, 3 fixed-point coordinates and 4×3 floats.
const WordsPerParticle = 18

// serialize packs a JParticle into its memory words. Float state crosses
// the bits boundary through gfixed.FloatBits so the word-level number
// format stays gfixed's contract (enforced by grapelint's gfixedboundary).
func serialize(p JParticle) [WordsPerParticle]uint64 {
	var w [WordsPerParticle]uint64
	w[0] = uint64(int64(p.ID))
	w[1] = gfixed.FloatBits(p.T0)
	w[2] = gfixed.FloatBits(p.Mass)
	for c := 0; c < 3; c++ {
		w[3+c] = uint64(int64(p.X[c]))
		w[6+c] = gfixed.FloatBits(p.V[c])
		w[9+c] = gfixed.FloatBits(p.A[c])
		w[12+c] = gfixed.FloatBits(p.J[c])
		w[15+c] = gfixed.FloatBits(p.S[c])
	}
	return w
}

// deserialize unpacks memory words into a JParticle.
func deserialize(w [WordsPerParticle]uint64) JParticle {
	var p JParticle
	p.ID = int(int64(w[0]))
	p.T0 = gfixed.FloatFromBits(w[1])
	p.Mass = gfixed.FloatFromBits(w[2])
	for c := 0; c < 3; c++ {
		p.X[c] = gfixed.Fixed64(int64(w[3+c]))
		p.V[c] = gfixed.FloatFromBits(w[6+c])
		p.A[c] = gfixed.FloatFromBits(w[9+c])
		p.J[c] = gfixed.FloatFromBits(w[12+c])
		p.S[c] = gfixed.FloatFromBits(w[15+c])
	}
	return p
}

// MemoryImage is the ECC-protected DRAM image of a chip's j-memory.
type MemoryImage struct {
	words []ecc.Codeword
	n     int // particles
}

// EncodeMemory builds the protected image of a particle set.
func EncodeMemory(ps []JParticle) *MemoryImage {
	img := &MemoryImage{n: len(ps), words: make([]ecc.Codeword, 0, len(ps)*WordsPerParticle)}
	for _, p := range ps {
		for _, w := range serialize(p) {
			img.words = append(img.words, ecc.Encode(w))
		}
	}
	return img
}

// Len returns the particle count of the image.
func (img *MemoryImage) Len() int { return img.n }

// Words returns the raw codeword count.
func (img *MemoryImage) Words() int { return len(img.words) }

// FlipBit injects a fault: toggles one bit of one codeword.
func (img *MemoryImage) FlipBit(word int, bit uint) {
	if word < 0 || word >= len(img.words) {
		panic(fmt.Sprintf("chip: memory word %d out of range [0,%d)", word, len(img.words)))
	}
	img.words[word].FlipBit(bit)
}

// ScrubReport summarises a memory scrub pass.
type ScrubReport struct {
	Corrected     int // single-bit upsets repaired
	Uncorrectable int // words with detected multi-bit corruption
}

// Scrub decodes the whole image, correcting single-bit errors in place
// (rewriting the repaired codewords, as a hardware scrubber does) and
// returns the recovered particles plus the fault report. Particles
// containing uncorrectable words are returned as stored (garbage), with
// the report flagging the corruption — the caller decides whether to
// reload from the host copy.
func (img *MemoryImage) Scrub() ([]JParticle, ScrubReport) {
	var rep ScrubReport
	out := make([]JParticle, img.n)
	for i := 0; i < img.n; i++ {
		var w [WordsPerParticle]uint64
		for k := 0; k < WordsPerParticle; k++ {
			idx := i*WordsPerParticle + k
			data, st := ecc.Decode(img.words[idx])
			switch st {
			case ecc.Corrected:
				rep.Corrected++
				img.words[idx] = ecc.Encode(data) // repair in place
			case ecc.Uncorrectable:
				rep.Uncorrectable++
			}
			w[k] = data
		}
		out[i] = deserialize(w)
	}
	return out, rep
}
