package chip

import (
	"math"
	"testing"

	"grape6/internal/gfixed"
	"grape6/internal/vec"
	"grape6/internal/xrand"
)

// loadRandomChip fills a chip with n pseudo-random bound particles and
// returns the chip together with the host-side particle images.
func loadRandomChip(t *testing.T, n int, seed uint64) (*Chip, []JParticle) {
	t.Helper()
	rng := xrand.New(seed)
	ch := New(Default)
	js := make([]JParticle, n)
	for i := 0; i < n; i++ {
		u := func(s float64) float64 { return s * (2*rng.Float64() - 1) }
		js[i] = makeJ(t, i, 0, 1.0/float64(n),
			vec.New(u(1), u(1), u(1)),
			vec.New(u(0.5), u(0.5), u(0.5)),
			vec.New(u(2), u(2), u(2)),
			vec.New(u(4), u(4), u(4)),
			vec.New(u(8), u(8), u(8)))
	}
	if err := ch.LoadJ(js); err != nil {
		t.Fatal(err)
	}
	return ch, js
}

// requireSameCache fails unless both chips hold bit-identical prediction
// caches over all slots.
func requireSameCache(t *testing.T, got, want *Chip, label string) {
	t.Helper()
	if len(got.px[0]) != len(want.px[0]) {
		t.Fatalf("%s: cache length %d vs %d", label, len(got.px[0]), len(want.px[0]))
	}
	for c := 0; c < 3; c++ {
		for s := range got.px[c] {
			if got.px[c][s] != want.px[c][s] {
				t.Fatalf("%s: slot %d position plane %d differs: %v vs %v", label, s, c, got.px[c][s], want.px[c][s])
			}
			if got.pv[c][s] != want.pv[c][s] {
				t.Fatalf("%s: slot %d velocity plane %d differs: %v vs %v", label, s, c, got.pv[c][s], want.pv[c][s])
			}
		}
	}
}

// TestSlotPatchMatchesColdRepredict pins the WriteJ cache-patching
// behaviour: updating a slot while the prediction cache is current must
// leave the cache bit-identical to discarding it and re-predicting the
// whole memory from scratch.
func TestSlotPatchMatchesColdRepredict(t *testing.T) {
	const n = 64
	ch, js := loadRandomChip(t, n, 5)
	tm := math.Ldexp(1, -8)
	ch.Predict(tm)

	// Rewrite a scattering of slots with perturbed particles — the
	// corrector's UpdateJ traffic.
	f := Default.Format
	for _, s := range []int{0, 3, 17, 40, n - 1} {
		p := js[s]
		p.T0 = tm / 2
		for c := 0; c < 3; c++ {
			p.V[c] = f.Round(p.V[c] + math.Ldexp(1, -12))
			p.A[c] = f.Round(p.A[c] - math.Ldexp(1, -10))
		}
		js[s] = p
		if err := ch.WriteJ(s, p); err != nil {
			t.Fatal(err)
		}
	}
	if !ch.PredictedAt(tm) {
		t.Fatal("WriteJ invalidated a patchable prediction cache")
	}

	// Cold reference: fresh chip, updated particle set, full predict.
	cold := New(Default)
	if err := cold.LoadJ(js); err != nil {
		t.Fatal(err)
	}
	cold.Predict(tm)
	requireSameCache(t, ch, cold, "patched vs cold")
}

// TestWriteJStalePredictionInvalidates pins the other half of the WriteJ
// contract: with no current prediction the cache must stay invalid, and a
// later Predict must reflect the write.
func TestWriteJStalePredictionInvalidates(t *testing.T) {
	ch, js := loadRandomChip(t, 8, 9)
	if ch.PredictedAt(0.25) {
		t.Fatal("fresh chip claims a prediction")
	}
	p := js[2]
	p.Mass = p.Mass * 2
	if err := ch.WriteJ(2, p); err != nil {
		t.Fatal(err)
	}
	if ch.PredictedAt(0.25) {
		t.Fatal("WriteJ on a cold cache marked it predicted")
	}
}

// TestPredictRangeStripingBitIdentical verifies the Section 3.4-style
// invariance the parallel predict stage relies on: predicting the memory
// in arbitrary disjoint stripes produces exactly the bits of one full
// Predict pass.
func TestPredictRangeStripingBitIdentical(t *testing.T) {
	const n = 97 // deliberately not a multiple of the stripe sizes
	full, js := loadRandomChip(t, n, 21)
	tm := 3 * math.Ldexp(1, -9)
	full.Predict(tm)

	for _, stripe := range []int{1, 7, 16, 64, n} {
		striped := New(Default)
		if err := striped.LoadJ(js); err != nil {
			t.Fatal(err)
		}
		// Stripe back-to-front so ordering effects would show up too.
		for hi := n; hi > 0; hi -= stripe {
			lo := hi - stripe
			if lo < 0 {
				lo = 0
			}
			striped.PredictRange(tm, lo, hi)
		}
		striped.MarkPredicted(tm)
		if !striped.PredictedAt(tm) {
			t.Fatal("MarkPredicted did not validate the cache")
		}
		requireSameCache(t, striped, full, "striped predict")
	}
}

// TestForceBatchRangeIntoPartition verifies that splitting the j-loop into
// ranges and merging the partials is bit-identical to one full pass —
// the within-chip analogue of the across-chip partition invariance.
func TestForceBatchRangeIntoPartition(t *testing.T) {
	const n = 61
	ch, js := loadRandomChip(t, n, 33)
	tm := math.Ldexp(1, -7)
	eps := 1.0 / 64

	is := make([]IParticle, 5)
	for q := range is {
		x, v := PredictParticle(Default.Format, &js[q*7], tm)
		is[q] = IParticle{X: x, V: v, SelfID: js[q*7].ID, ExpAcc: 4, ExpJerk: 6, ExpPot: 6}
	}

	whole := make([]Partial, len(is))
	ch.ForceBatchInto(whole, tm, is, eps)

	for _, cut := range []int{1, 17, 32, n - 1} {
		a := make([]Partial, len(is))
		b := make([]Partial, len(is))
		ch.ForceBatchRangeInto(a, tm, is, eps, 0, cut)
		ch.ForceBatchRangeInto(b, tm, is, eps, cut, n)
		for q := range is {
			a[q].Merge(&b[q])
			if a[q] != whole[q] {
				t.Fatalf("cut %d: merged partial %d differs from whole-pass partial", cut, q)
			}
		}
	}
}

// TestBatchCyclesModel pins the analytic cycle model against the value the
// batched force path reports, for several batch shapes.
func TestBatchCyclesModel(t *testing.T) {
	ch, js := loadRandomChip(t, 48, 7)
	eps := 1.0 / 64
	for _, ni := range []int{1, 3, 48, 49, 100} {
		is := make([]IParticle, ni)
		for q := range is {
			x, v := PredictParticle(Default.Format, &js[q%48], 0)
			is[q] = IParticle{X: x, V: v, SelfID: -1, ExpAcc: 4, ExpJerk: 6, ExpPot: 6}
		}
		dst := make([]Partial, ni)
		got := ch.ForceBatchInto(dst, 0, is, eps)
		want := ch.Config().BatchCycles(ni, ch.NJ())
		if got != want {
			t.Errorf("ni=%d: ForceBatchInto reported %d cycles, BatchCycles says %d", ni, got, want)
		}
	}
}

// TestPredictDtZeroFastPath pins the dt == 0 shortcut: predicting a
// particle to its own epoch must reproduce the stored position bits and
// the velocity rounded through the pipeline's output stage, exactly as
// the general Horner path does.
func TestPredictDtZeroFastPath(t *testing.T) {
	f := gfixed.Grape6
	j := makeJ(t, 0, 0.125, 0.5,
		vec.New(0.1, -0.2, 0.3), vec.New(-1, 0, 2),
		vec.New(0.5, 0.25, -0.5), vec.New(1, -1, 1), vec.New(2, 2, -2))
	x, v := PredictParticle(f, &j, 0.125)
	if x != j.X {
		t.Errorf("dt=0 predicted position %v, stored %v", x, j.X)
	}
	for c := 0; c < 3; c++ {
		if want := f.Round(j.V[c]); v[c] != want {
			t.Errorf("dt=0 predicted velocity[%d] = %v, want Round(stored) = %v", c, v[c], want)
		}
	}
}
