package chip

import (
	"fmt"
	"math"
	"testing"

	"grape6/internal/xrand"
)

// tiledChip loads js into a fresh chip configured with the given j-tile
// length.
func tiledChip(tb testing.TB, js []JParticle, tileJ int) *Chip {
	tb.Helper()
	cfg := Default
	cfg.TileJ = tileJ
	ch := New(cfg)
	if err := ch.LoadJ(js); err != nil {
		tb.Fatal(err)
	}
	return ch
}

// TestForceTileInvariance is the cache-blocking bit-exactness property:
// the SAME batch evaluated under every j-tile size — degenerate (1),
// prime (7), the hardware i-batch (48), exactly N, larger than N, and a
// handful of random sizes — must produce bit-identical partials, because
// tiling only reorders exact integer accumulations (Section 3.4 partition
// invariance applied within one chip).
func TestForceTileInvariance(t *testing.T) {
	const n, ni = 1024, 48
	js, is := benchParticles(t, n, ni)
	eps := 1.0 / 64

	want := make([]Partial, ni)
	tiledChip(t, js, n).ForceBatchInto(want, 0, is, eps)

	tiles := []int{1, 7, 48, 511, n, 3 * n}
	rng := xrand.New(99)
	for trial := 0; trial < 6; trial++ {
		tiles = append(tiles, 1+int(rng.Uint64()%uint64(n+64)))
	}
	for _, tile := range tiles {
		got := make([]Partial, ni)
		tiledChip(t, js, tile).ForceBatchInto(got, 0, is, eps)
		for q := range got {
			if got[q] != want[q] {
				t.Fatalf("tile %d: partial %d differs from single-tile reference", tile, q)
			}
		}
	}
}

// TestForceRandomPartitionInvariance streams the j-range as a random
// partition of stripes through ForceBatchRangeInto and merges the
// per-stripe partials: the merged result must match the whole-memory pass
// bit for bit, whatever the cut points — the property that makes both
// j-striping across cores and cache tiling numerically free.
func TestForceRandomPartitionInvariance(t *testing.T) {
	const n, ni = 512, 16
	js, is := benchParticles(t, n, ni)
	eps := 1.0 / 64
	ch := tiledChip(t, js, 0) // default tile

	want := make([]Partial, ni)
	ch.ForceBatchInto(want, 0, is, eps)

	rng := xrand.New(4242)
	stripe := make([]Partial, ni)
	for trial := 0; trial < 16; trial++ {
		got := make([]Partial, ni)
		for q := range got {
			got[q].Init(ch.Config().Format, is[q].ExpAcc, is[q].ExpJerk, is[q].ExpPot)
		}
		for lo := 0; lo < n; {
			hi := lo + 1 + int(rng.Uint64()%uint64(n/4))
			if hi > n {
				hi = n
			}
			ch.ForceBatchRangeInto(stripe, 0, is, eps, lo, hi)
			for q := range got {
				got[q].Merge(&stripe[q])
			}
			lo = hi
		}
		for q := range got {
			if got[q] != want[q] {
				t.Fatalf("trial %d: merged random-partition partial %d differs from whole pass", trial, q)
			}
		}
	}
}

// TestForceBatchRangeIntoReversedRange pins the reversed-bounds contract:
// lo > hi clamps to an empty range — initialised partials, no pairwise
// work, a cycle count for zero j-particles — never a panic or a negative
// loop bound.
func TestForceBatchRangeIntoReversedRange(t *testing.T) {
	js, is := benchParticles(t, 64, 4)
	ch := tiledChip(t, js, 0)
	dst := make([]Partial, len(is))
	// Dirty the slab first so "initialised empty" is observable.
	ch.ForceBatchInto(dst, 0, is, 1.0/64)

	cycles := ch.ForceBatchRangeInto(dst, 0, is, 1.0/64, 50, 10)
	if want := ch.Config().BatchCycles(len(is), 0); cycles != want {
		t.Errorf("reversed range cycles %d, want empty-range %d", cycles, want)
	}
	for q := range dst {
		if dst[q].Acc[0].Sum != 0 || dst[q].Pot.Sum != 0 {
			t.Errorf("partial %d accumulated pairs over a reversed range", q)
		}
		if dst[q].NN != -1 || !math.IsInf(dst[q].NND2, 1) {
			t.Errorf("partial %d: NN state %d/%v, want virgin -1/+Inf", q, dst[q].NN, dst[q].NND2)
		}
	}
}

// BenchmarkForceBatch48x64k is BenchmarkForceBatch48 at full memory depth:
// 48 i-particles against a 65536-deep j-memory, the shape where the j-hot
// set (4 MB) no longer fits in cache and tiling pays.
func BenchmarkForceBatch48x64k(b *testing.B) {
	ch, is := benchChip(b, 65536, 48)
	dst := make([]Partial, len(is))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.ForceBatchInto(dst, 0, is, 1.0/64)
	}
}

// BenchmarkForceTiled sweeps the j-tile length over a full-depth memory:
// 48 (the i-batch), 512, the P4 cache-model derivation (4000), 8192, and
// untiled (65536). Results must be bit-identical across the sweep (see
// TestForceTileInvariance); only the wall time may move.
func BenchmarkForceTiled(b *testing.B) {
	js, is := benchParticles(b, 65536, 48)
	for _, tile := range []int{48, 512, 4000, 8192, 65536} {
		b.Run(fmt.Sprintf("tile%d", tile), func(b *testing.B) {
			ch := tiledChip(b, js, tile)
			dst := make([]Partial, len(is))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ch.ForceBatchInto(dst, 0, is, 1.0/64)
			}
		})
	}
}
