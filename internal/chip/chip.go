// Package chip emulates the GRAPE-6 processor chip (Section 2.1 of the
// paper): six force-calculation pipelines with 8-way virtual multiple
// pipelining (VMP), an on-chip predictor pipeline, and a local j-particle
// memory with a point-to-point interface.
//
// The emulation is functional and cycle-accounting rather than gate-level:
// it reproduces the chip's arithmetic (fixed-point positions,
// short-mantissa pipeline operations, block-floating-point accumulation)
// so that results carry hardware-faithful rounding and the
// partition-invariance property, and it reports the number of clock cycles
// a batch would take so that the timing layer can reproduce the paper's
// performance curves.
package chip

import (
	"fmt"
	"math"

	"grape6/internal/gfixed"
)

// Config describes one processor chip.
type Config struct {
	ClockHz       float64       // pipeline clock (paper: 90 MHz)
	Pipelines     int           // force pipelines per chip (paper: 6)
	VMP           int           // virtual multiple pipelining degree (paper: 8)
	Format        gfixed.Format // arithmetic word lengths
	MemCapacity   int           // j-particle memory capacity
	PipelineDepth int           // pipeline latency in cycles

	// TileJ is the j-tile length of the emulation's cache blocking: the
	// force pass streams the j-memory in tiles of this many slots,
	// evaluating the whole i-batch against each tile before advancing, so
	// a tile is read from DRAM once per batch instead of once per
	// i-particle. 0 selects the package default; board.New derives a
	// value from the host cache model (perfmodel.HostProfile) instead.
	// Purely a host-performance knob: block-floating-point accumulation
	// is exact, so every tile size produces bit-identical results.
	TileJ int
}

// Default is the production GRAPE-6 chip configuration.
var Default = Config{
	ClockHz:       90e6,
	Pipelines:     6,
	VMP:           8,
	Format:        gfixed.Grape6,
	MemCapacity:   65536,
	PipelineDepth: 30,
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.ClockHz <= 0 {
		return fmt.Errorf("chip: non-positive clock %v", c.ClockHz)
	}
	if c.Pipelines <= 0 || c.VMP <= 0 {
		return fmt.Errorf("chip: pipelines=%d vmp=%d must be positive", c.Pipelines, c.VMP)
	}
	if c.MemCapacity <= 0 {
		return fmt.Errorf("chip: memory capacity %d must be positive", c.MemCapacity)
	}
	if c.PipelineDepth < 0 {
		return fmt.Errorf("chip: negative pipeline depth %d", c.PipelineDepth)
	}
	if c.TileJ < 0 {
		return fmt.Errorf("chip: negative j-tile length %d", c.TileJ)
	}
	return c.Format.Validate()
}

// HotJBytes is the per-particle footprint of the structure-of-arrays hot
// set the force loop streams: three fixed-point position planes, three
// velocity planes, the mass plane and the id plane, 8 bytes each. The
// full JParticle record (WordsPerParticle words) is NOT touched by the
// inner loop; tile sizing uses this number.
const HotJBytes = 8 * 8

// defaultTileJ is the fallback j-tile length for a standalone chip with
// TileJ left zero: the hot set of one tile (HotJBytes per slot) fills
// half of a 512 KB cache — the paper's tuned-frontend cache size
// (perfmodel.P4) — leaving the other half for the i-batch, the partial
// slab and the stack. Boards derive the same number through
// perfmodel.HostProfile.TileParticles at construction.
const defaultTileJ = 512 * 1024 / (2 * HotJBytes)

// TileLen returns the j-tile length cache blocking will use: TileJ when
// set, else the package default.
func (c Config) TileLen() int {
	if c.TileJ > 0 {
		return c.TileJ
	}
	return defaultTileJ
}

// IBatch returns the number of i-particles served in parallel by one pass
// of the pipelines: Pipelines × VMP (48 for the production chip).
func (c Config) IBatch() int { return c.Pipelines * c.VMP }

// PeakFlops returns the chip's peak speed under the paper's 57-flops
// convention: 57 × Pipelines × ClockHz (30.78 Gflops for the production
// chip, quoted as 30.8 in the paper).
func (c Config) PeakFlops() float64 {
	return 57 * float64(c.Pipelines) * c.ClockHz
}

// JParticle is a j-particle as stored in chip memory: position in fixed
// point, everything else in the pipeline float format, plus the particle's
// own time for the predictor.
type JParticle struct {
	ID   int // global particle id (reported for nearest neighbours)
	T0   float64
	Mass float64
	X    [3]gfixed.Fixed64
	V    [3]float64
	A    [3]float64
	J    [3]float64
	S    [3]float64 // second force derivative, eq. (6)'s a⁽²⁾ term
}

// IParticle is an i-particle as broadcast to the pipelines: predicted
// position in fixed point, predicted velocity in pipeline floats, and the
// block exponents chosen by the host for the three result groups. SelfID
// is the particle's global id, used by the nearest-neighbour unit to
// exclude the self-pair.
type IParticle struct {
	X       [3]gfixed.Fixed64
	V       [3]float64
	SelfID  int
	ExpAcc  int
	ExpJerk int
	ExpPot  int
}

// Partial is the block-floating-point partial result for one i-particle,
// as produced by one chip and merged exactly by the FPGA reduction trees.
// The accumulators are embedded by value — like the hardware's registers —
// so a []Partial slab is a single flat allocation that callers can reuse
// across force evaluations (see ForceBatchInto).
type Partial struct {
	Acc  [3]gfixed.Accum
	Jerk [3]gfixed.Accum
	Pot  gfixed.Accum
	NN   int     // global id of nearest neighbour seen so far (-1 if none)
	NND2 float64 // softened squared distance to it
}

// Init resets a partial result in place: zeroed accumulators with the
// given block exponents, no nearest neighbour. Reusing a slab of partials
// via Init is the allocation-free path.
//
//grape:noalloc
func (p *Partial) Init(f gfixed.Format, expAcc, expJerk, expPot int) {
	for c := 0; c < 3; c++ {
		p.Acc[c].Init(f, expAcc)
		p.Jerk[c].Init(f, expJerk)
	}
	p.Pot.Init(f, expPot)
	p.NN = -1
	p.NND2 = math.Inf(1)
}

// NewPartial allocates a zeroed partial result with the given exponents.
func NewPartial(f gfixed.Format, expAcc, expJerk, expPot int) *Partial {
	p := new(Partial)
	p.Init(f, expAcc, expJerk, expPot)
	return p
}

// Merge folds another chip's partial result into p (exact integer adds;
// this is the FPGA adder of Section 3.4). Nearest-neighbour candidates are
// compared by distance with ties broken toward the smaller id, which keeps
// the merge deterministic regardless of tree shape.
//
//grape:noalloc
func (p *Partial) Merge(q *Partial) {
	for c := 0; c < 3; c++ {
		p.Acc[c].Merge(&q.Acc[c])
		p.Jerk[c].Merge(&q.Jerk[c])
	}
	p.Pot.Merge(&q.Pot)
	if q.NND2 < p.NND2 || (q.NND2 == p.NND2 && q.NN >= 0 && (p.NN < 0 || q.NN < p.NN)) {
		p.NND2 = q.NND2
		p.NN = q.NN
	}
}

// Overflowed reports whether any accumulator overflowed its block format.
func (p *Partial) Overflowed() bool {
	for c := 0; c < 3; c++ {
		if p.Acc[c].Overflow || p.Jerk[c].Overflow {
			return true
		}
	}
	return p.Pot.Overflow
}

// Chip is one emulated processor chip.
//
// The j-memory is held twice: mem is the canonical array-of-structs
// record store (what LoadJ/WriteJ/the ECC memory image operate on), and
// the structure-of-arrays hot set below is what the force pipelines
// actually stream — contiguous component planes, so the inner loop never
// strides over full JParticle records. mass and id mirror the memory
// contents; px and pv hold the prediction cache, refreshed by Predict.
type Chip struct {
	cfg Config
	mem []JParticle

	// SoA hot set: per-component planes indexed by memory slot.
	mass []float64
	id   []int

	// predicted state, refreshed by Predict
	predT  float64
	predOK bool
	px     [3][]gfixed.Fixed64
	pv     [3][]float64
}

// New returns an empty chip. It panics on invalid configuration, mirroring
// the hardware's "does not exist" failure mode for impossible designs.
func New(cfg Config) *Chip {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Chip{cfg: cfg}
}

// Config returns the chip's configuration.
func (ch *Chip) Config() Config { return ch.cfg }

// NJ returns the number of stored j-particles.
func (ch *Chip) NJ() int { return len(ch.mem) }

// LoadJ replaces the chip memory contents. It returns an error when the
// particle count exceeds the memory capacity.
func (ch *Chip) LoadJ(ps []JParticle) error {
	if len(ps) > ch.cfg.MemCapacity {
		return fmt.Errorf("chip: %d j-particles exceed memory capacity %d", len(ps), ch.cfg.MemCapacity)
	}
	ch.mem = append(ch.mem[:0], ps...)
	ch.growPlanes()
	for k := range ch.mem {
		ch.mass[k] = ch.mem[k].Mass
		ch.id[k] = ch.mem[k].ID
	}
	ch.predOK = false
	return nil
}

// LoadJRange streams ps into memory slots [lo, lo+len(ps)), leaving other
// slots untouched and extending the stored set as needed. lo must lie
// within the contiguous occupied range (no holes). This is the write half
// of the paged j-memory path: j-sets larger than the chip memory live
// host-side and page through here chunk by chunk, with block-floating-
// point partial sums merging exactly across pages (§3.4 partition
// invariance). The prediction cache is invalidated; the force pass
// re-predicts the page lazily.
func (ch *Chip) LoadJRange(lo int, ps []JParticle) error {
	if lo < 0 || lo > len(ch.mem) {
		return fmt.Errorf("chip: LoadJRange offset %d outside contiguous range [0,%d]", lo, len(ch.mem))
	}
	end := lo + len(ps)
	if end > ch.cfg.MemCapacity {
		return fmt.Errorf("chip: %d j-particles exceed memory capacity %d", end, ch.cfg.MemCapacity)
	}
	oldCap := cap(ch.mass)
	if end > len(ch.mem) {
		if end > cap(ch.mem) {
			grown := make([]JParticle, end)
			copy(grown, ch.mem)
			ch.mem = grown
		} else {
			ch.mem = ch.mem[:end]
		}
	}
	copy(ch.mem[lo:end], ps)
	ch.growPlanes()
	// A plane reallocation drops the mirrored mass/id of untouched slots;
	// refill everything from mem in that case, just the range otherwise.
	start, stop := lo, end
	if cap(ch.mass) != oldCap {
		start, stop = 0, len(ch.mem)
	}
	for k := start; k < stop; k++ {
		ch.mass[k] = ch.mem[k].Mass
		ch.id[k] = ch.mem[k].ID
	}
	ch.predOK = false
	return nil
}

// TruncateJ shrinks the stored j-set to its first n slots, the paging
// path's way of trimming a chip to a final short page without a full
// reload.
func (ch *Chip) TruncateJ(n int) error {
	if n < 0 || n > len(ch.mem) {
		return fmt.Errorf("chip: truncate to %d outside [0,%d]", n, len(ch.mem))
	}
	if n == len(ch.mem) {
		return nil
	}
	oldCap := cap(ch.mass)
	ch.mem = ch.mem[:n]
	ch.growPlanes()
	if cap(ch.mass) != oldCap {
		for k := range ch.mem {
			ch.mass[k] = ch.mem[k].Mass
			ch.id[k] = ch.mem[k].ID
		}
	}
	ch.predOK = false
	return nil
}

// WriteJ updates one memory slot (the host's j-particle update path after
// a block is corrected). When the prediction cache is current, only the
// written slot's cached prediction is re-evaluated — PredictParticle is
// deterministic per (particle, t), so patching one slot at the cached time
// is bit-identical to invalidating and cold re-predicting the whole
// memory, at 1/NJ of the cost.
func (ch *Chip) WriteJ(slot int, p JParticle) error {
	if slot < 0 || slot >= len(ch.mem) {
		return fmt.Errorf("chip: slot %d out of range [0,%d)", slot, len(ch.mem))
	}
	ch.mem[slot] = p
	ch.mass[slot] = p.Mass
	ch.id[slot] = p.ID
	if ch.predOK {
		x, v := PredictParticle(ch.cfg.Format, &p, ch.predT)
		for c := 0; c < 3; c++ {
			ch.px[c][slot] = x[c]
			ch.pv[c][slot] = v[c]
		}
	}
	return nil
}

func (ch *Chip) growPlanes() {
	n := len(ch.mem)
	// Reallocate when the planes are too small, and also when the j-set
	// shrank to under a quarter of the backing arrays — otherwise one
	// large load would pin the largest-ever allocation for the chip's
	// lifetime. The >64 floor keeps tiny test loads from thrashing.
	if cap(ch.mass) < n || (cap(ch.mass) > 4*n && cap(ch.mass) > 64) {
		for c := 0; c < 3; c++ {
			ch.px[c] = make([]gfixed.Fixed64, n)
			ch.pv[c] = make([]float64, n)
		}
		ch.mass = make([]float64, n)
		ch.id = make([]int, n)
	}
	for c := 0; c < 3; c++ {
		ch.px[c] = ch.px[c][:n]
		ch.pv[c] = ch.pv[c][:n]
	}
	ch.mass = ch.mass[:n]
	ch.id = ch.id[:n]
}

// PredictParticle evaluates the predictor polynomials, eqs. (6)-(7), for a
// single stored particle in the pipeline's rounded arithmetic, returning
// the fixed-point position and float velocity at time t. It is exported so
// that the host backend can predict i-particles through the IDENTICAL
// datapath: a particle predicted by the host then compared against its own
// memory image predicted by the chip yields an exactly zero coordinate
// difference, making the self-interaction contribute nothing to the
// acceleration and jerk (and exactly -m/ε to the potential).
func PredictParticle(f gfixed.Format, j *JParticle, t float64) (x [3]gfixed.Fixed64, v [3]float64) {
	return predictParticle(f, f.Rounder(), j, t)
}

// predictParticle is PredictParticle with the mantissa rounder hoisted by
// the caller — the predictor's pipeline stages are all mantissa roundings,
// so batch callers (PredictRange) pay the mask setup once per stripe
// instead of once per operation. Rounder.Round is bit-identical to
// Format.Round (gfixed's differential tests), so results are unchanged.
//
//grape:noalloc
func predictParticle(f gfixed.Format, r gfixed.Rounder, j *JParticle, t float64) (x [3]gfixed.Fixed64, v [3]float64) {
	dt := r.Round(t - j.T0)
	if dt == 0 {
		// A particle updated at exactly time t predicts to its stored
		// state: every polynomial term carries a factor dt. The stored
		// velocity is re-rounded for callers that bypassed MakeJParticle
		// (rounding is idempotent, so this matches the polynomial path).
		for c := 0; c < 3; c++ {
			v[c] = r.Round(j.V[c])
		}
		return j.X, v
	}
	for c := 0; c < 3; c++ {
		// Horner evaluation of the displacement polynomial
		// dt·(v + dt/2·(a + dt/3·(j + dt/4·s))), rounded per stage.
		poly := r.Round(j.J[c] + r.Round(dt/4*j.S[c]))
		poly = r.Round(j.A[c] + r.Round(dt/3*poly))
		poly = r.Round(j.V[c] + r.Round(dt/2*poly))
		disp := r.Round(dt * poly)
		dq, err := f.ToFixed(disp)
		if err != nil {
			// Out-of-range prediction: clamp to the format's edge; the
			// force result will be garbage for this pair, as on the real
			// chip when a particle escapes the coordinate range.
			if disp > 0 {
				dq = Fixed64Max
			} else {
				dq = -Fixed64Max
			}
		}
		x[c] = j.X[c] + dq

		// Velocity predictor, eq. (7) truncated at snap.
		vp := r.Round(j.S[c]*dt/3 + j.J[c])
		vp = r.Round(j.A[c] + r.Round(dt/2*vp))
		v[c] = r.Round(j.V[c] + r.Round(dt*vp))
	}
	return x, v
}

// PredictRange runs the predictor pipeline over the memory slots [lo, hi)
// at time t, writing the predictions into the chip's cache WITHOUT
// validating it. It is the striping primitive for a pool-wide parallel
// predict stage: concurrent calls on disjoint ranges are race-free (each
// touches only its own cache slots), and once stripes covering the whole
// memory have completed, the coordinator calls MarkPredicted(t). Results
// are bit-identical to a serial Predict(t) because each slot's prediction
// depends only on (particle, t). Out-of-range bounds are clamped.
//
//grape:noalloc
func (ch *Chip) PredictRange(t float64, lo, hi int) {
	if lo < 0 {
		lo = 0
	}
	if hi > len(ch.mem) {
		hi = len(ch.mem)
	}
	f := ch.cfg.Format
	r := f.Rounder()
	px0, px1, px2 := ch.px[0], ch.px[1], ch.px[2]
	pv0, pv1, pv2 := ch.pv[0], ch.pv[1], ch.pv[2]
	for k := lo; k < hi; k++ {
		x, v := predictParticle(f, r, &ch.mem[k], t)
		px0[k], px1[k], px2[k] = x[0], x[1], x[2]
		pv0[k], pv1[k], pv2[k] = v[0], v[1], v[2]
	}
}

// MarkPredicted declares the prediction cache valid for time t. It must
// only be called after PredictRange calls at t have covered every stored
// slot since the last memory write; the board's striped predict stage
// does exactly that before marking.
func (ch *Chip) MarkPredicted(t float64) {
	ch.predT = t
	ch.predOK = true
}

// PredictedAt reports whether the prediction cache currently holds every
// stored particle predicted to time t.
func (ch *Chip) PredictedAt(t float64) bool {
	return ch.predOK && ch.predT == t
}

// Predict runs the predictor pipeline: every stored j-particle is advanced
// to time t via PredictParticle and cached for the force pipelines.
func (ch *Chip) Predict(t float64) {
	if ch.PredictedAt(t) {
		return
	}
	ch.PredictRange(t, 0, len(ch.mem))
	ch.MarkPredicted(t)
}

// Fixed64Max is the largest fixed-point coordinate value.
const Fixed64Max = gfixed.Fixed64(math.MaxInt64)

// BatchCycles returns the number of clock cycles a batch of ni i-particles
// against nj j-particles occupies the chip: the i-particles are served in
// passes of Pipelines×VMP; each pass streams the whole j-memory at VMP
// cycles per j-particle (each j-particle is applied to the VMP virtual
// pipelines in turn) plus the pipeline drain latency. The count depends
// only on the workload shape, so the board can account cycles analytically
// no matter how the emulation of the batch is striped across host cores.
func (c Config) BatchCycles(ni, nj int) int64 {
	passes := (ni + c.IBatch() - 1) / c.IBatch()
	return int64(passes) * (int64(c.VMP)*int64(nj) + int64(c.PipelineDepth))
}

// ForceBatchInto is the allocation-free force path: it evaluates the batch
// into the caller-owned slab dst (len(dst) must be ≥ len(is); dst[i] is
// re-initialised with the i-particle's exponents) and returns the number
// of clock cycles the batch occupies the chip. Steady-state callers reuse
// the same slab across evaluations, so the hot path performs no heap
// allocation at all — as on the real chip, whose accumulators are
// registers.
//
// Cycle model: see Config.BatchCycles.
//
//grape:noalloc
func (ch *Chip) ForceBatchInto(dst []Partial, t float64, is []IParticle, eps float64) int64 {
	return ch.ForceBatchRangeInto(dst, t, is, eps, 0, len(ch.mem))
}

// ForceBatchRangeInto evaluates the batch against only the memory slots
// [lo, hi), the j-striping primitive for spreading one chip's force work
// across host cores: block-floating-point accumulation is exact integer
// addition, so per-stripe partials Merge into results bit-identical to a
// whole-memory stream (the Section 3.4 partition-invariance property,
// applied within a chip instead of across chips). Out-of-range and
// reversed bounds are clamped to an empty range, never a panic.
//
// The range is streamed in j-tiles of Config.TileLen slots with the
// loops interchanged: every i-particle is evaluated against one tile
// before the next tile is touched, so a tile's SoA planes are pulled
// into the host cache once per batch instead of once per i-particle —
// the broadcast-i / stream-j layout of the real chip, where j-particles
// stream from local memory through all pipelines at once. The same
// partition invariance that makes striping exact makes the tiled
// partial sums bit-identical to the whole-memory stream.
//
// Prediction of a missing time runs lazily over the WHOLE memory, which
// is only safe single-threaded: concurrent range calls on one chip
// require the prediction cache to already hold time t (PredictedAt), as
// arranged by the board's predict stage. The returned cycle count covers
// just this range; callers striping a chip account whole-chip cycles via
// Config.BatchCycles.
//
//grape:noalloc
func (ch *Chip) ForceBatchRangeInto(dst []Partial, t float64, is []IParticle, eps float64, lo, hi int) int64 {
	if len(dst) < len(is) {
		slabPanic(len(dst), len(is))
	}
	if lo < 0 {
		lo = 0
	}
	if hi > len(ch.mem) {
		hi = len(ch.mem)
	}
	if hi < lo {
		hi = lo
	}
	ch.Predict(t)
	f := ch.cfg.Format
	e2 := f.Round(eps * eps)
	// Format constants hoisted out of the pairwise loop: the mantissa
	// rounder's masks and the fixed-point scale factor (exactly 2^-PosFrac;
	// the bit-level layout stays gfixed's business).
	r := f.Rounder()
	invPos := f.PosResolution()

	for i := range is {
		dst[i].Init(f, is[i].ExpAcc, is[i].ExpJerk, is[i].ExpPot)
	}
	tile := ch.cfg.TileLen()
	for tlo := lo; tlo < hi; tlo += tile {
		thi := tlo + tile
		if thi > hi {
			thi = hi
		}
		for i := range is {
			ch.forceTile(&is[i], &dst[i], e2, r, invPos, tlo, thi)
		}
	}

	return ch.cfg.BatchCycles(len(is), hi-lo)
}

// slabPanic reports an undersized partial slab. The formatting machinery
// lives here, off the noalloc force path, so the annotated kernels carry
// no interface boxing on their cold error branch.
func slabPanic(got, want int) {
	//grapelint:ignore noallocdeep cold panic path: runs once, when a caller hands the kernel an undersized slab, and the program dies
	panic(fmt.Sprintf("chip: partial slab of %d for %d i-particles", got, want))
}

// forceTile streams the j-tile [lo, hi) against one i-particle. r and
// invPos are the caller-hoisted mantissa rounder and fixed-point scale
// (invariant across the whole batch; recomputing them per pair would
// dominate the pipeline arithmetic). Only the SoA hot-set planes are
// read — HotJBytes per slot, never the full JParticle record — so the
// tile's working set is what Config.TileLen sized against the cache.
//
//grape:noalloc
func (ch *Chip) forceTile(ip *IParticle, p *Partial, e2 float64, r gfixed.Rounder, invPos float64, lo, hi int) {
	px0 := ch.px[0][lo:hi]
	n := len(px0)
	// Reslice every plane to the same length so the compiler can prove
	// the indexed loads below in bounds once, outside the loop.
	px1, px2 := ch.px[1][lo:][:n], ch.px[2][lo:][:n]
	pv0, pv1, pv2 := ch.pv[0][lo:][:n], ch.pv[1][lo:][:n], ch.pv[2][lo:][:n]
	mass, id := ch.mass[lo:][:n], ch.id[lo:][:n]
	ix, iy, iz := ip.X[0], ip.X[1], ip.X[2]
	ivx, ivy, ivz := ip.V[0], ip.V[1], ip.V[2]
	for k := range px0 {
		// Stage 1: coordinate difference, exact in fixed point, then
		// converted to the pipeline float format.
		dx := r.Round(float64(px0[k]-ix) * invPos)
		dy := r.Round(float64(px1[k]-iy) * invPos)
		dz := r.Round(float64(px2[k]-iz) * invPos)
		dvx := r.Round(pv0[k] - ivx)
		dvy := r.Round(pv1[k] - ivy)
		dvz := r.Round(pv2[k] - ivz)

		// Stage 2: squared distance with softening.
		r2 := r.Round(dx*dx + dy*dy + dz*dz + e2)
		if r2 <= 0 {
			// Self-pair with zero softening: masked, contributes nothing.
			continue
		}

		// Stage 3: inverse square root and force factor.
		rinv := r.Round(1 / math.Sqrt(r2))
		rinv2 := r.Round(rinv * rinv)
		mrinv := r.Round(mass[k] * rinv)
		mrinv3 := r.Round(mrinv * rinv2)

		// Stage 4: (v·r)/(r²+ε²).
		rv := r.Round((dx*dvx + dy*dvy + dz*dvz) * rinv2)
		rv3 := r.Round(3 * rv)

		// Stage 5: accumulate in block floating point.
		p.Acc[0].Add(r.Round(mrinv3 * dx))
		p.Acc[1].Add(r.Round(mrinv3 * dy))
		p.Acc[2].Add(r.Round(mrinv3 * dz))
		p.Jerk[0].Add(r.Round(mrinv3 * r.Round(dvx-rv3*dx)))
		p.Jerk[1].Add(r.Round(mrinv3 * r.Round(dvy-rv3*dy)))
		p.Jerk[2].Add(r.Round(mrinv3 * r.Round(dvz-rv3*dz)))
		p.Pot.Add(-mrinv)

		// Nearest-neighbour unit, excluding the self-pair by id.
		if id[k] != ip.SelfID && (r2 < p.NND2 || (r2 == p.NND2 && (p.NN < 0 || id[k] < p.NN))) {
			p.NND2 = r2
			p.NN = id[k]
		}
	}
}
