package chip

import (
	"testing"

	"grape6/internal/vec"
	"grape6/internal/xrand"
)

// streamJSet builds n well-ranged j-particles for paging tests.
func streamJSet(t *testing.T, n int, seed uint64) []JParticle {
	t.Helper()
	rng := xrand.New(seed)
	ps := make([]JParticle, n)
	for i := range ps {
		x := vec.New(rng.Uniform(-1, 1), rng.Uniform(-1, 1), rng.Uniform(-1, 1))
		v := vec.New(rng.Uniform(-0.1, 0.1), rng.Uniform(-0.1, 0.1), rng.Uniform(-0.1, 0.1))
		ps[i] = makeJ(t, i, 0, 1/float64(n), x, v, vec.Zero, vec.Zero, vec.Zero)
	}
	return ps
}

// samePartials compares two force evaluations bit for bit.
func samePartials(t *testing.T, label string, a, b *Chip, is []IParticle) {
	t.Helper()
	pa := make([]Partial, len(is))
	pb := make([]Partial, len(is))
	a.ForceBatchInto(pa, 0.001953125, is, 1.0/64)
	b.ForceBatchInto(pb, 0.001953125, is, 1.0/64)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("%s: partial %d differs between load paths", label, i)
		}
	}
}

func TestLoadJRangeMatchesLoadJ(t *testing.T) {
	ps := streamJSet(t, 40, 71)
	is := []IParticle{
		makeI(t, 1000, vec.New(0.25, 0, 0), vec.Zero, 4, 4, 4),
		makeI(t, 1001, vec.New(-0.5, 0.125, 0), vec.Zero, 4, 4, 4),
	}
	whole := New(Default)
	if err := whole.LoadJ(ps); err != nil {
		t.Fatal(err)
	}
	chunked := New(Default)
	for _, cut := range [][2]int{{0, 15}, {15, 30}, {30, 40}} {
		if err := chunked.LoadJRange(cut[0], ps[cut[0]:cut[1]]); err != nil {
			t.Fatal(err)
		}
	}
	if chunked.NJ() != whole.NJ() {
		t.Fatalf("NJ = %d, want %d", chunked.NJ(), whole.NJ())
	}
	samePartials(t, "chunked", whole, chunked, is)

	// Overwriting a middle range is equivalent to splicing the slice.
	repl := streamJSet(t, 8, 72)
	spliced := append(append(append([]JParticle{}, ps[:5]...), repl...), ps[13:]...)
	if err := whole.LoadJ(spliced); err != nil {
		t.Fatal(err)
	}
	if err := chunked.LoadJRange(5, repl); err != nil {
		t.Fatal(err)
	}
	samePartials(t, "spliced", whole, chunked, is)
}

func TestLoadJRangeGrowthRefillsPlanes(t *testing.T) {
	// Force a plane reallocation mid-stream: a small resident set, then a
	// ranged write large enough to outgrow the backing arrays. The mass
	// and id mirrors of the untouched low slots must survive.
	ps := streamJSet(t, 300, 73)
	is := []IParticle{makeI(t, 1000, vec.New(0.0625, 0, 0), vec.Zero, 4, 4, 4)}
	whole := New(Default)
	if err := whole.LoadJ(ps); err != nil {
		t.Fatal(err)
	}
	grown := New(Default)
	if err := grown.LoadJRange(0, ps[:16]); err != nil {
		t.Fatal(err)
	}
	if err := grown.LoadJRange(16, ps[16:]); err != nil {
		t.Fatal(err)
	}
	samePartials(t, "grown", whole, grown, is)
}

func TestTruncateJ(t *testing.T) {
	ps := streamJSet(t, 300, 74)
	is := []IParticle{makeI(t, 1000, vec.New(0.125, 0.0625, 0), vec.Zero, 4, 4, 4)}

	short := New(Default)
	if err := short.LoadJ(ps[:10]); err != nil {
		t.Fatal(err)
	}
	// 300 -> 10 crosses the shrink-hysteresis threshold, so this also
	// exercises the realloc-refill path.
	trunc := New(Default)
	if err := trunc.LoadJ(ps); err != nil {
		t.Fatal(err)
	}
	if err := trunc.TruncateJ(10); err != nil {
		t.Fatal(err)
	}
	if trunc.NJ() != 10 {
		t.Fatalf("NJ after truncate = %d, want 10", trunc.NJ())
	}
	samePartials(t, "truncated", short, trunc, is)
}

func TestStreamRangeErrors(t *testing.T) {
	ch := New(Default)
	ps := streamJSet(t, 8, 75)
	if err := ch.LoadJRange(1, ps); err == nil {
		t.Fatal("expected error for offset beyond contiguous range")
	}
	if err := ch.LoadJRange(-1, ps); err == nil {
		t.Fatal("expected error for negative offset")
	}
	if err := ch.LoadJRange(0, make([]JParticle, Default.MemCapacity+1)); err == nil {
		t.Fatal("expected error for capacity overflow")
	}
	if err := ch.LoadJRange(0, ps); err != nil {
		t.Fatal(err)
	}
	if err := ch.TruncateJ(9); err == nil {
		t.Fatal("expected error truncating beyond stored count")
	}
	if err := ch.TruncateJ(-1); err == nil {
		t.Fatal("expected error truncating to negative count")
	}
	if err := ch.TruncateJ(8); err != nil {
		t.Fatal(err)
	}
}
