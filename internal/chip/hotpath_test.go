package chip

import (
	"testing"

	"grape6/internal/gfixed"
	"grape6/internal/model"
	"grape6/internal/vec"
	"grape6/internal/xrand"
)

// benchParticles builds a seeded Plummer model of n j-particles and ni
// prepared i-particles (predicted to t=0), without loading any chip — so
// tests comparing chips under different configurations share one workload.
func benchParticles(tb testing.TB, n, ni int) ([]JParticle, []IParticle) {
	tb.Helper()
	rng := xrand.New(1)
	sys := model.Plummer(n, rng)
	f := gfixed.Grape6
	js := make([]JParticle, sys.N)
	for i := 0; i < sys.N; i++ {
		p, err := MakeJParticle(f, i, 0, sys.Mass[i], sys.Pos[i], sys.Vel[i], vec.Zero, vec.Zero, vec.Zero)
		if err != nil {
			tb.Fatal(err)
		}
		js[i] = p
	}
	is := make([]IParticle, ni)
	for k := range is {
		x, v := PredictParticle(f, &js[k%n], 0)
		is[k] = IParticle{X: x, V: v, SelfID: k % n, ExpAcc: 4, ExpJerk: 6, ExpPot: 6}
	}
	return js, is
}

// benchChip loads a Plummer model of n j-particles into a default chip and
// returns it together with ni prepared i-particles.
func benchChip(tb testing.TB, n, ni int) (*Chip, []IParticle) {
	tb.Helper()
	js, is := benchParticles(tb, n, ni)
	ch := New(Default)
	if err := ch.LoadJ(js); err != nil {
		tb.Fatal(err)
	}
	return ch, is
}

// BenchmarkForceOne measures one i-particle streamed against a 1024-deep
// j-memory through the reusable-slab path: the per-pair pipeline cost.
func BenchmarkForceOne(b *testing.B) {
	ch, is := benchChip(b, 1024, 1)
	dst := make([]Partial, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.ForceBatchInto(dst, 0, is, 1.0/64)
	}
}

// BenchmarkForceBatch48 measures a full hardware pass (48 i-particles, one
// per virtual pipeline) against a 1024-deep j-memory. Steady state must be
// allocation-free: the partial slab is caller-owned and reused.
func BenchmarkForceBatch48(b *testing.B) {
	ch, is := benchChip(b, 1024, 48)
	dst := make([]Partial, len(is))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.ForceBatchInto(dst, 0, is, 1.0/64)
	}
}

func TestForceBatchIntoMatchesForceBatch(t *testing.T) {
	ch, is := benchChip(t, 256, 48)
	want, wantCycles := forceBatch(ch, 0, is, 1.0/64)
	dst := make([]Partial, len(is))
	gotCycles := ch.ForceBatchInto(dst, 0, is, 1.0/64)
	if gotCycles != wantCycles {
		t.Errorf("cycles %d != %d", gotCycles, wantCycles)
	}
	for i := range dst {
		for c := 0; c < 3; c++ {
			if dst[i].Acc[c].Sum != want[i].Acc[c].Sum || dst[i].Jerk[c].Sum != want[i].Jerk[c].Sum {
				t.Fatalf("i=%d component %d differs between Into and allocating path", i, c)
			}
		}
		if dst[i].Pot.Sum != want[i].Pot.Sum || dst[i].NN != want[i].NN || dst[i].NND2 != want[i].NND2 {
			t.Fatalf("i=%d pot/NN differ between Into and allocating path", i)
		}
	}

	// Slab reuse: a second evaluation into the same dirty slab must give
	// the same bits (Init fully resets each partial).
	ch.ForceBatchInto(dst, 0, is, 1.0/64)
	for i := range dst {
		if dst[i].Acc[0].Sum != want[i].Acc[0].Sum {
			t.Fatalf("i=%d: slab reuse changed result bits", i)
		}
	}
}

func TestForceBatchIntoShortSlabPanics(t *testing.T) {
	ch, is := benchChip(t, 16, 2)
	defer func() {
		if recover() == nil {
			t.Error("ForceBatchInto accepted a too-short slab")
		}
	}()
	ch.ForceBatchInto(make([]Partial, 1), 0, is, 0.1)
}

func TestGrowPlanesShrink(t *testing.T) {
	ch := New(Default)
	if err := ch.LoadJ(make([]JParticle, 10000)); err != nil {
		t.Fatal(err)
	}
	bigCap := cap(ch.px[0])
	if bigCap < 10000 {
		t.Fatalf("cap %d after loading 10000", bigCap)
	}
	// A drastically smaller j-set must release the large backing arrays.
	if err := ch.LoadJ(make([]JParticle, 100)); err != nil {
		t.Fatal(err)
	}
	if cap(ch.px[0]) > 4*100 || cap(ch.mass) > 4*100 {
		t.Errorf("SoA planes retained caps %d/%d for a 100-particle j-set", cap(ch.px[0]), cap(ch.mass))
	}
	if len(ch.px[0]) != 100 || len(ch.pv[0]) != 100 || len(ch.mass) != 100 || len(ch.id) != 100 {
		t.Errorf("plane lengths %d/%d/%d/%d, want 100", len(ch.px[0]), len(ch.pv[0]), len(ch.mass), len(ch.id))
	}
	// Small fluctuations must NOT thrash: 100 → 60 keeps the allocation.
	if err := ch.LoadJ(make([]JParticle, 60)); err != nil {
		t.Fatal(err)
	}
	if cap(ch.px[0]) < 100 {
		t.Errorf("SoA planes reallocated on a mild shrink (cap %d)", cap(ch.px[0]))
	}
	// And prediction still works on the shrunk set.
	ch.Predict(0.5)
	if len(ch.px[0]) != 60 {
		t.Errorf("predicted %d particles, want 60", len(ch.px[0]))
	}
}
