package chip

import (
	"math"
	"testing"

	"grape6/internal/direct"
	"grape6/internal/gfixed"
	"grape6/internal/model"
	"grape6/internal/vec"
	"grape6/internal/xrand"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := Default.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{ClockHz: 0, Pipelines: 6, VMP: 8, Format: gfixed.Grape6, MemCapacity: 16, PipelineDepth: 1},
		{ClockHz: 90e6, Pipelines: 0, VMP: 8, Format: gfixed.Grape6, MemCapacity: 16, PipelineDepth: 1},
		{ClockHz: 90e6, Pipelines: 6, VMP: 0, Format: gfixed.Grape6, MemCapacity: 16, PipelineDepth: 1},
		{ClockHz: 90e6, Pipelines: 6, VMP: 8, Format: gfixed.Grape6, MemCapacity: 0, PipelineDepth: 1},
		{ClockHz: 90e6, Pipelines: 6, VMP: 8, Format: gfixed.Grape6, MemCapacity: 16, PipelineDepth: -1},
		{ClockHz: 90e6, Pipelines: 6, VMP: 8, Format: gfixed.Format{}, MemCapacity: 16, PipelineDepth: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: accepted invalid config", i)
		}
	}
}

func TestPeakFlopsMatchesPaper(t *testing.T) {
	// Section 1: "The GRAPE-6 chip integrates 6 pipelines operating at
	// 90 MHz, offering the speed of 30.8 Gflops."
	got := Default.PeakFlops() / 1e9
	if math.Abs(got-30.78) > 0.01 {
		t.Errorf("chip peak = %v Gflops, paper says 30.8", got)
	}
}

func TestIBatch(t *testing.T) {
	// Section 3.4: "A GRAPE-6 chip integrates six 8-way VMP pipelines.
	// Therefore it calculates the forces on 48 particles in parallel."
	if got := Default.IBatch(); got != 48 {
		t.Errorf("IBatch = %d, want 48", got)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted invalid config")
		}
	}()
	New(Config{})
}

func TestLoadJCapacity(t *testing.T) {
	cfg := Default
	cfg.MemCapacity = 2
	ch := New(cfg)
	if err := ch.LoadJ(make([]JParticle, 3)); err == nil {
		t.Error("LoadJ accepted over-capacity load")
	}
	if err := ch.LoadJ(make([]JParticle, 2)); err != nil {
		t.Errorf("LoadJ rejected in-capacity load: %v", err)
	}
	if ch.NJ() != 2 {
		t.Errorf("NJ = %d", ch.NJ())
	}
}

func TestWriteJBounds(t *testing.T) {
	ch := New(Default)
	if err := ch.LoadJ(make([]JParticle, 4)); err != nil {
		t.Fatal(err)
	}
	if err := ch.WriteJ(4, JParticle{}); err == nil {
		t.Error("WriteJ accepted out-of-range slot")
	}
	if err := ch.WriteJ(-1, JParticle{}); err == nil {
		t.Error("WriteJ accepted negative slot")
	}
	if err := ch.WriteJ(3, JParticle{Mass: 1}); err != nil {
		t.Errorf("WriteJ rejected valid slot: %v", err)
	}
}

// forceBatch is the tests' allocating convenience wrapper over
// ForceBatchInto (the retired Chip.ForceBatch shape): fresh slab, pointer
// views into it.
func forceBatch(ch *Chip, t float64, is []IParticle, eps float64) ([]*Partial, int64) {
	slab := make([]Partial, len(is))
	cycles := ch.ForceBatchInto(slab, t, is, eps)
	out := make([]*Partial, len(is))
	for i := range slab {
		out[i] = &slab[i]
	}
	return out, cycles
}

// makeJ builds a chip particle from float64 state, failing the test on
// range errors.
func makeJ(t *testing.T, id int, t0, m float64, x, v, a, j, s vec.V3) JParticle {
	t.Helper()
	p, err := MakeJParticle(gfixed.Grape6, id, t0, m, x, v, a, j, s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func makeI(t *testing.T, id int, x, v vec.V3, expAcc, expJerk, expPot int) IParticle {
	t.Helper()
	f := gfixed.Grape6
	var ip IParticle
	ip.SelfID = id
	xs := [3]float64{x.X, x.Y, x.Z}
	for c := 0; c < 3; c++ {
		q, err := f.ToFixed(xs[c])
		if err != nil {
			t.Fatal(err)
		}
		ip.X[c] = q
	}
	ip.V = roundV3(f, v)
	ip.ExpAcc, ip.ExpJerk, ip.ExpPot = expAcc, expJerk, expPot
	return ip
}

func TestForceMatchesDirectSingle(t *testing.T) {
	// One source of mass 1 at distance 2: a = 1/4, pot = -1/2.
	ch := New(Default)
	err := ch.LoadJ([]JParticle{makeJ(t, 1, 0, 1, vec.New(2, 0, 0), vec.Zero, vec.Zero, vec.Zero, vec.Zero)})
	if err != nil {
		t.Fatal(err)
	}
	is := []IParticle{makeI(t, 0, vec.Zero, vec.Zero, 4, 4, 4)}
	ps, cycles := forceBatch(ch, 0, is, 0)
	acc, _, pot := PartialValues(ps[0])
	if math.Abs(acc.X-0.25) > 1e-6 {
		t.Errorf("acc = %v", acc)
	}
	if math.Abs(pot+0.5) > 1e-6 {
		t.Errorf("pot = %v", pot)
	}
	if cycles <= 0 {
		t.Errorf("cycles = %d", cycles)
	}
	if ps[0].NN != 1 {
		t.Errorf("NN = %d", ps[0].NN)
	}
}

func TestForceAccuracyVsReference(t *testing.T) {
	// Chip arithmetic (24-bit mantissa) must agree with the float64
	// reference to ~1e-5 relative on a realistic configuration.
	rng := xrand.New(3)
	sys := model.Plummer(256, rng)
	eps := 1.0 / 64

	ch := New(Default)
	js := make([]JParticle, sys.N)
	for i := 0; i < sys.N; i++ {
		js[i] = makeJ(t, i, 0, sys.Mass[i], sys.Pos[i], sys.Vel[i], vec.Zero, vec.Zero, vec.Zero)
	}
	if err := ch.LoadJ(js); err != nil {
		t.Fatal(err)
	}

	ref := direct.JSet{Mass: sys.Mass, Pos: sys.Pos, Vel: sys.Vel}
	var maxRelA, maxRelP float64
	for i := 0; i < 32; i++ {
		ip := makeI(t, i, sys.Pos[i], sys.Vel[i], 4, 6, 6)
		ps, _ := forceBatch(ch, 0, []IParticle{ip}, eps)
		acc, _, pot := PartialValues(ps[0])
		want := direct.EvalSkip(sys.Pos[i], sys.Vel[i], ref, eps, i)
		// Chip includes self-interaction: pot has an extra -m/eps.
		pot += sys.Mass[i] / eps
		relA := acc.Dist(want.Acc) / want.Acc.Norm()
		relP := math.Abs(pot-want.Pot) / math.Abs(want.Pot)
		if relA > maxRelA {
			maxRelA = relA
		}
		if relP > maxRelP {
			maxRelP = relP
		}
	}
	if maxRelA > 3e-5 {
		t.Errorf("max relative acceleration error %v too large", maxRelA)
	}
	if maxRelP > 3e-5 {
		t.Errorf("max relative potential error %v too large", maxRelP)
	}
}

func TestSelfInteractionExactlyZero(t *testing.T) {
	// When the host predicts the i-particle through PredictParticle, the
	// self-pair's coordinate difference is exactly zero: the acceleration
	// contribution vanishes and the potential contribution is exactly
	// -round(m·round(1/ε)).
	f := gfixed.Grape6
	j := makeJ(t, 0, 0, 0.25,
		vec.New(0.1, -0.2, 0.3), vec.New(0.4, 0.5, -0.6),
		vec.New(0.01, 0.02, 0.03), vec.New(0.001, 0.002, 0.003), vec.New(1e-4, 2e-4, 3e-4))
	ch := New(Default)
	if err := ch.LoadJ([]JParticle{j}); err != nil {
		t.Fatal(err)
	}

	tNow := 0.0078125
	x, v := PredictParticle(f, &j, tNow)
	ip := IParticle{X: x, V: v, SelfID: 0, ExpAcc: 4, ExpJerk: 4, ExpPot: 4}
	ps, _ := forceBatch(ch, tNow, []IParticle{ip}, 1.0/64)
	acc, jerk, pot := PartialValues(ps[0])
	if acc != vec.Zero || jerk != vec.Zero {
		t.Errorf("self-pair force not exactly zero: a=%v j=%v", acc, jerk)
	}
	wantPot := -f.Round(f.Round(0.25) * f.Round(1/math.Sqrt(f.Round(1.0/64*(1.0/64)))))
	if math.Abs(pot-wantPot) > math.Ldexp(1, ps[0].Pot.Exp-int(f.AccumFrac)) {
		t.Errorf("self potential = %v, want ≈ %v", pot, wantPot)
	}
	if ps[0].NN != -1 {
		t.Errorf("NN should exclude self, got %d", ps[0].NN)
	}
}

func TestPartitionInvarianceAcrossChips(t *testing.T) {
	// Section 3.4's headline property: the summed force is bit-identical
	// whether the j-set lives on one chip or is split across many.
	rng := xrand.New(5)
	sys := model.Plummer(128, rng)
	eps := 1.0 / 64
	mkJS := func() []JParticle {
		js := make([]JParticle, sys.N)
		for i := 0; i < sys.N; i++ {
			js[i] = makeJ(t, i, 0, sys.Mass[i], sys.Pos[i], sys.Vel[i], vec.Zero, vec.Zero, vec.Zero)
		}
		return js
	}
	ip := makeI(t, 0, sys.Pos[0], sys.Vel[0], 4, 6, 6)

	single := New(Default)
	if err := single.LoadJ(mkJS()); err != nil {
		t.Fatal(err)
	}
	ps, _ := forceBatch(single, 0, []IParticle{ip}, eps)
	ref := ps[0]

	for _, parts := range []int{2, 4, 32} {
		chips := make([]*Chip, parts)
		buckets := make([][]JParticle, parts)
		for i, j := range mkJS() {
			buckets[i%parts] = append(buckets[i%parts], j)
		}
		merged := NewPartial(gfixed.Grape6, 4, 6, 6)
		for c := 0; c < parts; c++ {
			chips[c] = New(Default)
			if err := chips[c].LoadJ(buckets[c]); err != nil {
				t.Fatal(err)
			}
			pp, _ := forceBatch(chips[c], 0, []IParticle{ip}, eps)
			merged.Merge(pp[0])
		}
		for c := 0; c < 3; c++ {
			if merged.Acc[c].Sum != ref.Acc[c].Sum {
				t.Errorf("%d-way split: acc[%d] bits differ", parts, c)
			}
			if merged.Jerk[c].Sum != ref.Jerk[c].Sum {
				t.Errorf("%d-way split: jerk[%d] bits differ", parts, c)
			}
		}
		if merged.Pot.Sum != ref.Pot.Sum {
			t.Errorf("%d-way split: pot bits differ", parts)
		}
		if merged.NN != ref.NN {
			t.Errorf("%d-way split: NN %d != %d", parts, merged.NN, ref.NN)
		}
	}
}

func TestOverflowSignalsRetry(t *testing.T) {
	// A block exponent far too small must set the overflow flag — the
	// hardware's request for the host to retry with a better guess
	// (Section 3.4: "we sometimes need to repeat the force calculation").
	ch := New(Default)
	err := ch.LoadJ([]JParticle{makeJ(t, 1, 0, 1e6, vec.New(1e-3, 0, 0), vec.Zero, vec.Zero, vec.Zero, vec.Zero)})
	if err != nil {
		t.Fatal(err)
	}
	ip := makeI(t, 0, vec.Zero, vec.Zero, -40, -40, -40)
	ps, _ := forceBatch(ch, 0, []IParticle{ip}, 0)
	if !ps[0].Overflowed() {
		t.Error("huge force with tiny exponent did not overflow")
	}
}

func TestCycleAccounting(t *testing.T) {
	ch := New(Default)
	if err := ch.LoadJ(make([]JParticle, 100)); err != nil {
		t.Fatal(err)
	}
	// 1 i-particle: one pass → 8×100 + depth cycles.
	_, cyc1 := forceBatch(ch, 0, make([]IParticle, 1), 0.1)
	want1 := int64(8*100 + Default.PipelineDepth)
	if cyc1 != want1 {
		t.Errorf("1 i: cycles = %d, want %d", cyc1, want1)
	}
	// 48 i-particles: still one pass.
	_, cyc48 := forceBatch(ch, 0, make([]IParticle, 48), 0.1)
	if cyc48 != want1 {
		t.Errorf("48 i: cycles = %d, want %d", cyc48, want1)
	}
	// 49 i-particles: two passes.
	_, cyc49 := forceBatch(ch, 0, make([]IParticle, 49), 0.1)
	if cyc49 != 2*want1 {
		t.Errorf("49 i: cycles = %d, want %d", cyc49, 2*want1)
	}
}

func TestPredictorMovesParticles(t *testing.T) {
	// A particle with pure velocity moves linearly under prediction.
	f := gfixed.Grape6
	j := makeJ(t, 0, 0, 1, vec.New(1, 0, 0), vec.New(0.5, 0, 0), vec.Zero, vec.Zero, vec.Zero)
	x, v := PredictParticle(f, &j, 2.0)
	got := f.FromFixed(x[0])
	if math.Abs(got-2.0) > 1e-6 {
		t.Errorf("predicted x = %v, want 2", got)
	}
	if math.Abs(v[0]-0.5) > 1e-7 {
		t.Errorf("predicted v = %v", v[0])
	}
}

func TestPredictorAccuracyVsFloat64(t *testing.T) {
	// Chip predictor vs full-precision polynomial: error bounded by the
	// pipeline mantissa width on a representative state.
	f := gfixed.Grape6
	j := makeJ(t, 0, 0, 1,
		vec.New(0.3, -0.4, 0.5), vec.New(-0.2, 0.6, 0.1),
		vec.New(1.0, -2.0, 0.5), vec.New(3.0, 1.0, -2.0), vec.New(-5.0, 2.0, 8.0))
	dt := 1.0 / 256
	x, v := PredictParticle(f, &j, dt)

	// Full precision.
	wantX := 0.3 + dt*(-0.2+dt/2*(1.0+dt/3*(3.0+dt/4*(-5.0))))
	wantV := -0.2 + dt*(1.0+dt/2*(3.0+dt/3*(-5.0)))
	if math.Abs(f.FromFixed(x[0])-wantX) > 1e-7 {
		t.Errorf("predicted x = %v, want %v", f.FromFixed(x[0]), wantX)
	}
	if math.Abs(v[0]-wantV) > 1e-7 {
		t.Errorf("predicted v = %v, want %v", v[0], wantV)
	}
}

func TestPredictCache(t *testing.T) {
	ch := New(Default)
	j := makeJ(t, 0, 0, 1, vec.New(1, 0, 0), vec.New(1, 0, 0), vec.Zero, vec.Zero, vec.Zero)
	if err := ch.LoadJ([]JParticle{j}); err != nil {
		t.Fatal(err)
	}
	ch.Predict(1.0)
	x1 := ch.px[0][0]
	ch.Predict(1.0) // cached, same result
	if ch.px[0][0] != x1 {
		t.Error("cached prediction changed")
	}
	// Writing invalidates the cache.
	j2 := makeJ(t, 0, 0, 1, vec.New(5, 0, 0), vec.Zero, vec.Zero, vec.Zero, vec.Zero)
	if err := ch.WriteJ(0, j2); err != nil {
		t.Fatal(err)
	}
	ch.Predict(1.0)
	if ch.px[0][0] == x1 {
		t.Error("prediction not refreshed after WriteJ")
	}
}

func TestMakeJParticleRangeError(t *testing.T) {
	_, err := MakeJParticle(gfixed.Grape6, 0, 0, 1, vec.New(1e30, 0, 0), vec.Zero, vec.Zero, vec.Zero, vec.Zero)
	if err == nil {
		t.Error("accepted out-of-range position")
	}
}

func TestNearestNeighbour(t *testing.T) {
	ch := New(Default)
	js := []JParticle{
		makeJ(t, 10, 0, 1, vec.New(3, 0, 0), vec.Zero, vec.Zero, vec.Zero, vec.Zero),
		makeJ(t, 20, 0, 1, vec.New(1, 0, 0), vec.Zero, vec.Zero, vec.Zero, vec.Zero),
		makeJ(t, 30, 0, 1, vec.New(2, 0, 0), vec.Zero, vec.Zero, vec.Zero, vec.Zero),
	}
	if err := ch.LoadJ(js); err != nil {
		t.Fatal(err)
	}
	ip := makeI(t, 99, vec.Zero, vec.Zero, 4, 4, 4)
	ps, _ := forceBatch(ch, 0, []IParticle{ip}, 0.1)
	if ps[0].NN != 20 {
		t.Errorf("NN = %d, want 20", ps[0].NN)
	}
}

func BenchmarkForceBatch48x1024(b *testing.B) {
	rng := xrand.New(1)
	sys := model.Plummer(1024, rng)
	ch := New(Default)
	js := make([]JParticle, sys.N)
	for i := 0; i < sys.N; i++ {
		p, err := MakeJParticle(gfixed.Grape6, i, 0, sys.Mass[i], sys.Pos[i], sys.Vel[i], vec.Zero, vec.Zero, vec.Zero)
		if err != nil {
			b.Fatal(err)
		}
		js[i] = p
	}
	if err := ch.LoadJ(js); err != nil {
		b.Fatal(err)
	}
	is := make([]IParticle, 48)
	f := gfixed.Grape6
	for k := range is {
		var ip IParticle
		for c, x := range [3]float64{sys.Pos[k].X, sys.Pos[k].Y, sys.Pos[k].Z} {
			q, _ := f.ToFixed(x)
			ip.X[c] = q
		}
		ip.SelfID = k
		ip.ExpAcc, ip.ExpJerk, ip.ExpPot = 4, 6, 6
		is[k] = ip
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		forceBatch(ch, 0, is, 1.0/64)
	}
}
