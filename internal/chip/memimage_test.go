package chip

import (
	"testing"

	"grape6/internal/gfixed"
	"grape6/internal/model"
	"grape6/internal/vec"
	"grape6/internal/xrand"
)

func sampleParticles(t testing.TB, n int) []JParticle {
	t.Helper()
	sys := model.Plummer(n, xrand.New(3))
	ps := make([]JParticle, n)
	for i := 0; i < n; i++ {
		p, err := MakeJParticle(gfixed.Grape6, i, float64(i)/64, sys.Mass[i],
			sys.Pos[i], sys.Vel[i], vec.New(1, -2, 3), vec.New(0.1, 0.2, -0.3), vec.Zero)
		if err != nil {
			t.Fatal(err)
		}
		ps[i] = p
	}
	return ps
}

func TestMemoryRoundTrip(t *testing.T) {
	ps := sampleParticles(t, 16)
	img := EncodeMemory(ps)
	if img.Len() != 16 || img.Words() != 16*WordsPerParticle {
		t.Fatalf("image shape: %d particles, %d words", img.Len(), img.Words())
	}
	got, rep := img.Scrub()
	if rep.Corrected != 0 || rep.Uncorrectable != 0 {
		t.Errorf("clean image reported faults: %+v", rep)
	}
	for i := range ps {
		if got[i] != ps[i] {
			t.Fatalf("particle %d not restored exactly:\n%+v\n%+v", i, ps[i], got[i])
		}
	}
}

func TestSingleBitUpsetsRepaired(t *testing.T) {
	ps := sampleParticles(t, 8)
	img := EncodeMemory(ps)
	// Inject upsets across several words and positions.
	rng := xrand.New(7)
	flips := 0
	for w := 0; w < img.Words(); w += 17 {
		img.FlipBit(w, uint(rng.Intn(72)))
		flips++
	}
	got, rep := img.Scrub()
	if rep.Corrected != flips {
		t.Errorf("corrected %d of %d injected upsets", rep.Corrected, flips)
	}
	if rep.Uncorrectable != 0 {
		t.Errorf("spurious uncorrectable: %+v", rep)
	}
	for i := range ps {
		if got[i] != ps[i] {
			t.Fatalf("particle %d corrupted after scrub", i)
		}
	}
	// Second scrub must be clean: repairs were written back.
	_, rep2 := img.Scrub()
	if rep2.Corrected != 0 || rep2.Uncorrectable != 0 {
		t.Errorf("repairs not persisted: %+v", rep2)
	}
}

func TestDoubleBitUpsetDetected(t *testing.T) {
	ps := sampleParticles(t, 4)
	img := EncodeMemory(ps)
	img.FlipBit(5, 3)
	img.FlipBit(5, 40)
	_, rep := img.Scrub()
	if rep.Uncorrectable != 1 {
		t.Errorf("double-bit upset not detected: %+v", rep)
	}
}

func TestFlipBitBounds(t *testing.T) {
	img := EncodeMemory(sampleParticles(t, 2))
	defer func() {
		if recover() == nil {
			t.Error("out-of-range word did not panic")
		}
	}()
	img.FlipBit(img.Words(), 0)
}

func TestSerializeRoundTrip(t *testing.T) {
	ps := sampleParticles(t, 3)
	for _, p := range ps {
		if got := deserialize(serialize(p)); got != p {
			t.Fatalf("serialize round trip failed: %+v vs %+v", got, p)
		}
	}
	// Negative coordinates and ids survive.
	p := ps[0]
	p.ID = -5
	p.X[1] = -1 << 50
	if got := deserialize(serialize(p)); got != p {
		t.Fatal("negative values corrupted")
	}
}
