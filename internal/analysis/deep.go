package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"strings"
)

// The interprocedural analyzers: each picks a set of root nodes from
// the call graph, walks the transitive closure of calls (breadth-first,
// so reported chains are shortest), and reports the reachable effect
// sites its contract forbids. Chains are printed hop by hop with the
// call site of every hop, so a finding is actionable without re-running
// the analysis by hand.

// A ModulePass carries one (analyzer, whole module) run.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package
	Graph    *CallGraph
	Fset     *token.FileSet
	findings *[]Finding
}

// Reportf records a finding at pos; root is the chain's root function
// (its position is attached so package-scoped runs can match either
// end of a cross-package chain).
func (mp *ModulePass) Reportf(root *Node, pos token.Pos, format string, args ...any) {
	*mp.findings = append(*mp.findings, Finding{
		Pos:      mp.Fset.Position(pos),
		Root:     mp.Fset.Position(root.Obj.Pos()),
		Analyzer: mp.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// step records how a node was first reached during a BFS.
type step struct {
	from *Node
	edge Edge
}

// reachFrom walks the closure of root over edges accepted by follow and
// returns the visit order plus the incoming step per node. The root
// itself is first, with no step.
func reachFrom(root *Node, follow func(Edge) bool) ([]*Node, map[*Node]step) {
	via := make(map[*Node]step)
	seen := map[*Node]bool{root: true}
	order := []*Node{root}
	for q := 0; q < len(order); q++ {
		n := order[q]
		for _, e := range n.Edges {
			if e.To == nil || seen[e.To] || !follow(e) {
				continue
			}
			seen[e.To] = true
			via[e.To] = step{from: n, edge: e}
			order = append(order, e.To)
		}
	}
	return order, via
}

// chainString renders the hop-by-hop path root → ... → target, with the
// call site of every hop: "a.f → b.g (f.go:12) → c.h (g.go:40)".
func chainString(fset *token.FileSet, via map[*Node]step, root, target *Node) string {
	var hops []step
	for n := target; n != root; {
		s, ok := via[n]
		if !ok {
			break
		}
		hops = append(hops, s)
		n = s.from
	}
	var sb strings.Builder
	sb.WriteString(root.Name())
	for i := len(hops) - 1; i >= 0; i-- {
		s := hops[i]
		p := fset.Position(s.edge.Pos)
		fmt.Fprintf(&sb, " -> %s (%s:%d", s.edge.To.Name(), filepath.Base(p.Filename), p.Line)
		if s.edge.Kind != EdgeStatic && s.edge.Kind != EdgeMethod {
			fmt.Fprintf(&sb, ", %s", s.edge.Kind)
		}
		sb.WriteString(")")
	}
	return sb.String()
}

// NoAllocDeep extends the noalloc contract transitively: an allocation
// site inside an unannotated function is a finding when any
// //grape:noalloc kernel can reach it through the call graph. Sites in
// annotated functions are the intraprocedural noalloc analyzer's job
// and are not re-reported. Calls the graph cannot resolve (function
// values with several bindings, func-typed fields) are findings too:
// the contract cannot be verified past them.
var NoAllocDeep = &Analyzer{
	Name:      "noallocdeep",
	Doc:       "forbid allocations reachable from //grape:noalloc kernels through unannotated callees",
	RunModule: runNoAllocDeep,
}

func runNoAllocDeep(mp *ModulePass) {
	reported := map[effectKey]bool{}
	for _, root := range mp.Graph.Roots(func(n *Node) bool { return n.Noalloc }) {
		order, via := reachFrom(root, func(Edge) bool { return true })
		for _, n := range order {
			if !n.Noalloc {
				for _, eff := range n.Allocs {
					k := effectKey{eff.Pos, eff.Desc}
					if reported[k] {
						continue
					}
					reported[k] = true
					mp.Reportf(root, eff.Pos, "%s in %s, reachable from //grape:noalloc kernel %s via %s",
						eff.Desc, n.Name(), root.Name(), chainString(mp.Fset, via, root, n))
				}
			}
			for _, dyn := range n.Dynamics {
				k := effectKey{dyn.Pos, dyn.Reason}
				if reported[k] {
					continue
				}
				reported[k] = true
				mp.Reportf(root, dyn.Pos, "unresolvable call (%s) in %s, reachable from //grape:noalloc kernel %s via %s: the noalloc contract cannot be verified past this call",
					dyn.Reason, n.Name(), root.Name(), chainString(mp.Fset, via, root, n))
			}
		}
	}
}

type effectKey struct {
	pos  token.Pos
	desc string
}

// HotBlock is the ROADMAP's chanopt-style analyzer: a channel op costs
// ~40x an uncontended atomic, and a lock or wait can stall the whole
// pipeline, so none of them may be reachable from a //grape:noalloc
// kernel or a //grape:hotpath root (the board pool's force/predict
// dispatch stages). go-statement edges and ops inside `go func(){...}()`
// literals are not traversed: a spawned goroutine's blocking does not
// stall its spawner (the spawn itself is the noalloc analyzer's
// finding).
var HotBlock = &Analyzer{
	Name:      "hotblock",
	Doc:       "forbid channel/lock/wait/sleep ops reachable from noalloc kernels and hot-path roots",
	RunModule: runHotBlock,
}

func runHotBlock(mp *ModulePass) {
	reported := map[effectKey]bool{}
	for _, root := range mp.Graph.Roots(func(n *Node) bool { return n.Noalloc || n.Hotpath }) {
		order, via := reachFrom(root, func(e Edge) bool {
			return e.Kind != EdgeGo && !e.InGo
		})
		rootKind := "//grape:hotpath root"
		if root.Noalloc {
			rootKind = "//grape:noalloc kernel"
		}
		for _, n := range order {
			for _, eff := range n.Blocking {
				if eff.InGo {
					continue
				}
				k := effectKey{eff.Pos, eff.Desc}
				if reported[k] {
					continue
				}
				reported[k] = true
				if n == root {
					mp.Reportf(root, eff.Pos, "%s on the hot path in %s (%s)",
						eff.Desc, n.Name(), rootKind)
					continue
				}
				mp.Reportf(root, eff.Pos, "%s in %s, reachable from %s %s via %s",
					eff.Desc, n.Name(), rootKind, root.Name(), chainString(mp.Fset, via, root, n))
			}
		}
	}
}

// PurityDeep extends the deterministic contract across package
// boundaries: math/rand, time.Now, and order-sensitive map-range
// accumulation are findings in any function a bit-exact package
// (gfixed/chip/board/gbackend) can reach, wherever that function
// lives. Sites inside the bit-exact packages themselves are the
// intraprocedural deterministic analyzer's job.
var PurityDeep = &Analyzer{
	Name:      "puritydeep",
	Doc:       "forbid nondeterminism reachable from the bit-exact packages",
	RunModule: runPurityDeep,
}

func runPurityDeep(mp *ModulePass) {
	reported := map[effectKey]bool{}
	for _, root := range mp.Graph.Roots(func(n *Node) bool { return isBitExactPath(n.Pkg.Path) }) {
		order, via := reachFrom(root, func(Edge) bool { return true })
		for _, n := range order {
			if isBitExactPath(n.Pkg.Path) {
				continue // intraprocedural deterministic covers these
			}
			for _, eff := range n.Purity {
				k := effectKey{eff.Pos, eff.Desc}
				if reported[k] {
					continue
				}
				reported[k] = true
				mp.Reportf(root, eff.Pos, "%s in %s, reachable from bit-exact package function %s via %s",
					eff.Desc, n.Name(), root.Name(), chainString(mp.Fset, via, root, n))
			}
		}
	}
}
