package analysis

// NoDeprecated flags every internal use of a symbol whose declaration
// carries the standard "// Deprecated:" marker. The repo's policy is
// that deprecated shims exist only for one release while callers
// migrate; this analyzer keeps new code off them so they can actually
// be deleted (the ForceBatch/Forces wrappers were retired this way).
var NoDeprecated = &Analyzer{
	Name: "nodeprecated",
	Doc:  "forbid internal calls to // Deprecated: symbols",
	Run:  runNoDeprecated,
}

func runNoDeprecated(p *Pass) {
	for id, obj := range p.Info.Uses {
		if p.Deprecated[obj] {
			p.Reportf(id.Pos(), "use of deprecated symbol %s", obj.Name())
		}
	}
}
