package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// An Effect is one local "effectful" operation inside a declared
// function: an allocation site, a blocking synchronization op, or a
// source of run-to-run nondeterminism. The interprocedural analyzers
// compute, per root annotation, the transitive closure of these over
// the call graph.
type Effect struct {
	Pos  token.Pos
	Desc string
	InGo bool // inside an immediate `go func(){...}()` literal
}

// collectEffects fills a node's local effect lists. Nested function
// literals are attributed to the declaring function; ops inside
// literals launched directly by a go statement are tagged InGo (they
// run on the spawned goroutine and do not stall the caller).
func collectEffects(n *Node) {
	info, tpkg, fd := n.Pkg.Info, n.Pkg.Types, n.Decl
	inGo := goLitRanges(fd.Body)
	forEachAlloc(info, tpkg, fd, func(pos token.Pos, desc string) {
		n.Allocs = append(n.Allocs, Effect{Pos: pos, Desc: desc, InGo: inGo.contains(pos)})
	})
	forEachBlocking(info, fd, func(pos token.Pos, desc string) {
		n.Blocking = append(n.Blocking, Effect{Pos: pos, Desc: desc, InGo: inGo.contains(pos)})
	})
	forEachPurity(info, fd, func(pos token.Pos, desc string) {
		n.Purity = append(n.Purity, Effect{Pos: pos, Desc: desc, InGo: inGo.contains(pos)})
	})
}

// forEachBlocking emits every operation that can block or serialize the
// calling goroutine: channel send/receive/select/range, mutex and
// rwmutex locks, WaitGroup.Wait, Cond.Wait, and time.Sleep. A channel
// op costs ~40x an uncontended atomic even when the channel is just a
// pipe, which is why the hotblock analyzer audits these on the force
// and predict paths (ROADMAP item 3).
func forEachBlocking(info *types.Info, fd *ast.FuncDecl, emit func(pos token.Pos, desc string)) {
	ast.Inspect(fd.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.SendStmt:
			emit(x.Pos(), "channel send")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				emit(x.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			emit(x.Pos(), "select")
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					emit(x.Pos(), "range over channel")
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if isPkgIdent(info, sel.X, "time") && sel.Sel.Name == "Sleep" {
					emit(x.Pos(), "time.Sleep")
					return true
				}
				if desc := blockingSyncMethod(info, sel); desc != "" {
					emit(x.Pos(), desc)
				}
			}
		}
		return true
	})
}

// blockingSyncMethod recognizes the blocking methods of the sync
// package: Mutex/RWMutex Lock (and RLock), WaitGroup.Wait, Cond.Wait.
// Unlock/RUnlock/Done/Signal never block and are not flagged.
func blockingSyncMethod(info *types.Info, sel *ast.SelectorExpr) string {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return ""
	}
	t := s.Recv()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return ""
	}
	switch tn, m := named.Obj().Name(), sel.Sel.Name; {
	case tn == "Mutex" && m == "Lock":
		return "sync.Mutex.Lock"
	case tn == "RWMutex" && (m == "Lock" || m == "RLock"):
		return "sync.RWMutex." + m
	case tn == "WaitGroup" && m == "Wait":
		return "sync.WaitGroup.Wait"
	case tn == "Cond" && m == "Wait":
		return "sync.Cond.Wait"
	}
	return ""
}

// forEachPurity emits every source of run-to-run nondeterminism the
// bit-exact contract forbids: math/rand use, time.Now, and float or
// bit-exact-accumulator updates inside range over a map.
func forEachPurity(info *types.Info, fd *ast.FuncDecl, emit func(pos token.Pos, desc string)) {
	ast.Inspect(fd.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.SelectorExpr:
			if isPkgIdent(info, x.X, "math/rand") || isPkgIdent(info, x.X, "math/rand/v2") {
				emit(x.Pos(), "math/rand."+x.Sel.Name+" (global seed state)")
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok &&
				isPkgIdent(info, sel.X, "time") && sel.Sel.Name == "Now" {
				emit(x.Pos(), "time.Now (wall-clock dependence)")
			}
		case *ast.RangeStmt:
			forEachMapRangeAccum(info, x, emit)
		}
		return true
	})
}
