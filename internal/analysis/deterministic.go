package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// bitExactSuffixes are the packages whose outputs are locked by golden
// hashes (board/golden_test.go): any run-to-run nondeterminism there is a bug
// even if every test still passes on one machine.
var bitExactSuffixes = []string{
	"internal/gfixed",
	"internal/chip",
	"internal/board",
	"internal/gbackend",
}

func isBitExactPath(path string) bool {
	for _, s := range bitExactSuffixes {
		if pathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// Deterministic forbids the three classic sources of run-to-run drift
// in the bit-exact packages: math/rand (global seed state — use
// internal/xrand's explicit streams), time.Now, and floating-point /
// accumulator updates inside `range` over a map (iteration order is
// randomized, and block-float accumulation is order-sensitive by
// design — that is what partition invariance is about). The
// cross-package closure of the same contract is the puritydeep
// analyzer's job.
var Deterministic = &Analyzer{
	Name: "deterministic",
	Doc:  "forbid nondeterministic constructs in bit-exact packages",
	Run:  runDeterministic,
}

func runDeterministic(p *Pass) {
	if !isBitExactPath(p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "import of %s in bit-exact package: use internal/xrand for seeded, reproducible streams", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok &&
					isPkgIdent(p.Info, sel.X, "time") && sel.Sel.Name == "Now" {
					p.Reportf(n.Pos(), "time.Now in bit-exact package: results must not depend on wall-clock time")
				}
			case *ast.RangeStmt:
				forEachMapRangeAccum(p.Info, n, func(pos token.Pos, desc string) {
					p.Reportf(pos, "%s", desc)
				})
			}
			return true
		})
	}
}

// forEachMapRangeAccum emits order-sensitive accumulation into state
// declared outside a range-over-map body. Shared between the
// intraprocedural deterministic analyzer and puritydeep.
func forEachMapRangeAccum(info *types.Info, rs *ast.RangeStmt, emit func(pos token.Pos, desc string)) {
	if rs.X == nil {
		return
	}
	tv, ok := info.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ASSIGN, token.DEFINE:
				for i := range n.Lhs {
					if i < len(n.Rhs) && selfReferential(n.Lhs[i], n.Rhs[i]) &&
						isFloatExpr(info, n.Lhs[i]) && declaredOutside(info, n.Lhs[i], rs) {
						emit(n.Pos(), "float accumulation over map iteration order (assignment to "+types.ExprString(n.Lhs[i])+")")
					}
				}
			default: // +=, -=, *=, ...
				for _, lhs := range n.Lhs {
					if isFloatExpr(info, lhs) && declaredOutside(info, lhs, rs) {
						emit(n.Pos(), "float accumulation over map iteration order ("+types.ExprString(lhs)+" "+n.Tok.String()+")")
					}
				}
			}
		case *ast.CallExpr:
			// Accum.Add / Partial.Merge-style accumulation: a method named
			// Add/Merge on a receiver declared in a bit-exact package.
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Add" && sel.Sel.Name != "Merge") {
				return true
			}
			s := info.Selections[sel]
			if s == nil || s.Kind() != types.MethodVal {
				return true
			}
			if recvFromBitExact(s.Recv()) && declaredOutside(info, sel.X, rs) {
				emit(n.Pos(), "accumulator "+types.ExprString(sel.X)+"."+sel.Sel.Name+" inside range over map: iteration order changes the rounding sequence")
			}
		}
		return true
	})
}

// selfReferential reports whether rhs mentions lhs textually — the
// `sum = sum + x` accumulation shape.
func selfReferential(lhs, rhs ast.Expr) bool {
	want := types.ExprString(lhs)
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && types.ExprString(e) == want {
			found = true
		}
		return !found
	})
	return found
}

func isFloatExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// declaredOutside reports whether the base variable of e is declared
// outside the range statement (so a per-iteration update accumulates
// across iterations).
func declaredOutside(info *types.Info, e ast.Expr, rs *ast.RangeStmt) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			v, ok := obj.(*types.Var)
			if !ok {
				return false
			}
			return v.Pos() < rs.Pos() || v.Pos() > rs.End()
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

func recvFromBitExact(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return isBitExactPath(n.Obj().Pkg().Path())
}
