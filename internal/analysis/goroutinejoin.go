package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// joinSuffixes are the packages where an unjoined goroutine can race
// with force evaluation or checkpointing: the board emulator's worker
// pool, the backend glue, and the integrator's predictor pipeline.
var joinSuffixes = []string{
	"internal/board",
	"internal/gbackend",
	"internal/hermite",
}

// GoroutineJoin requires every function containing a `go` statement in
// the concurrency-bearing packages to also contain a visible join
// mechanism: a sync.WaitGroup Add/Done/Wait, or channel traffic (make
// of a channel, send, receive, close, or range over one). Goroutines
// whose lifetime is managed by a field joined elsewhere carry a
// //grapelint:ignore goroutinejoin directive naming that field.
var GoroutineJoin = &Analyzer{
	Name: "goroutinejoin",
	Doc:  "require a join mechanism alongside go statements",
	Run:  runGoroutineJoin,
}

func runGoroutineJoin(p *Pass) {
	applies := false
	for _, s := range joinSuffixes {
		if pathHasSuffix(p.Pkg.Path, s) {
			applies = true
			break
		}
	}
	if !applies {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var gos []*ast.GoStmt
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					gos = append(gos, g)
				}
				return true
			})
			if len(gos) == 0 || hasJoinMechanism(p, fd.Body) {
				continue
			}
			for _, g := range gos {
				p.Reportf(g.Pos(), "go statement in %s without a join mechanism (WaitGroup or channel) in the same function", fd.Name.Name)
			}
		}
	}
}

func hasJoinMechanism(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			switch builtinName(p.Info, n.Fun) {
			case "close":
				found = true
			case "make":
				if tv, ok := p.Info.Types[n]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						found = true
					}
				}
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && isWaitGroupMethod(p, sel) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isWaitGroupMethod(p *Pass, sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "Add", "Done", "Wait":
	default:
		return false
	}
	s := p.Info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return false
	}
	t := s.Recv()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "WaitGroup"
}
