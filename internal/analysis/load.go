// Package analysis is grapelint's engine: a stdlib-only loader that
// type-checks the whole module plus a small analyzer framework with
// repo-specific checks (noalloc, deterministic, nodeprecated,
// gfixedboundary, goroutinejoin). See DESIGN.md §7 "Static guarantees".
//
// The loader deliberately avoids golang.org/x/tools: the repo has no
// module dependencies and the analyzers only need go/parser + go/types.
// Stdlib packages are imported with the "source" importer (compiled from
// GOROOT source), module-local packages by recursing into their
// directories with memoization.
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked module package: everything an analyzer
// needs to inspect it.
type Package struct {
	Path  string // import path, e.g. "grape6/internal/chip"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files only
	Types *types.Package
	Info  *types.Info
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// loader implements types.Importer for a single module: module-local
// import paths are parsed and checked recursively, everything else is
// delegated to the compiler's source importer.
type loader struct {
	fset *token.FileSet
	mod  string // module path from go.mod
	root string // module root directory
	std  types.Importer
	pkgs map[string]*Package // memoized by import path
	busy map[string]bool     // import-cycle guard
}

func newLoader(root, mod string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset: fset,
		mod:  mod,
		root: root,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*Package),
		busy: make(map[string]bool),
	}
}

func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.mod || strings.HasPrefix(path, l.mod+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one module-local package, memoized.
func (l *loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.mod)))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// LoadModule type-checks every package of the module rooted at root and
// returns them sorted by import path.
func LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := newLoader(root, mod)

	var paths []string
	err = filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(p))
		if err != nil {
			return err
		}
		ip := l.mod
		if rel != "." {
			ip = l.mod + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, ip)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	paths = dedup(paths)

	var out []*Package
	for _, ip := range paths {
		p, err := l.load(ip)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func dedup(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || sorted[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}
