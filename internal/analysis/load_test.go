package analysis

import "testing"

// TestLoadModuleTypeChecksCleanly is the machinery smoke test: the
// loader must type-check the entire module, including this package.
// It deliberately does NOT assert zero analyzer findings — repo-wide
// enforcement is cmd/grapelint's job (verify.sh tier 3), so a seeded
// violation fails the gauntlet there rather than tier 1.
func TestLoadModuleTypeChecksCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type check skipped in -short mode")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Errorf("loaded %d packages, expected the whole module", len(pkgs))
	}
	seen := make(map[string]bool)
	for _, p := range pkgs {
		seen[p.Path] = true
	}
	for _, want := range []string{
		"grape6",
		"grape6/internal/gfixed",
		"grape6/internal/chip",
		"grape6/internal/board",
		"grape6/cmd/grapelint",
	} {
		if !seen[want] {
			t.Errorf("module load missed %s", want)
		}
	}
}
