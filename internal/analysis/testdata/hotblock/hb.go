// Fixture for hotblock: a channel send two calls below a noalloc
// kernel, a lock directly in a hotpath root, and the go-statement
// exemptions (a spawned goroutine's blocking does not stall the
// spawner).
package hotblock

import "sync"

//grape:noalloc
func kernel(c chan int) { relay1(c) }

func relay1(c chan int) { relay2(c) }

func relay2(c chan int) {
	c <- 1 // want "channel send in hotblock.relay2, reachable from //grape:noalloc kernel hotblock.kernel via hotblock.kernel -> hotblock.relay1 (hb.go:10) -> hotblock.relay2 (hb.go:12)"
}

var mu sync.Mutex

//grape:hotpath
func dispatch() {
	mu.Lock() // want "sync.Mutex.Lock on the hot path in hotblock.dispatch (//grape:hotpath root)"
	mu.Unlock()
}

// A go-statement edge is not traversed: pump's send runs on the spawned
// goroutine and does not stall dispatchSpawn. No findings here.
//
//grape:hotpath
func dispatchSpawn(c chan int) {
	go pump(c)
}

func pump(c chan int) {
	c <- 2
}

// Ops inside an immediate `go func(){...}()` literal are the spawned
// goroutine's, not the spawner's. No findings here either.
//
//grape:hotpath
func dispatchLit(c chan int) {
	go func() {
		c <- 3
	}()
}
