// Fixture for puritydeep, type-checked under the fake bit-exact path
// "grape6/internal/chip": calling into the impure helper package is
// clean intraprocedurally but must be flagged by the cross-package
// closure.
package chiplike

import "fixture/impure"

// Predict is a bit-exact-package function reaching nondeterminism one
// package over.
func Predict(x float64) float64 {
	return x + impure.Jitter()
}
