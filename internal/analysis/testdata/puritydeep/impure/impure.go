// The helper package a bit-exact fixture package reaches across a
// package boundary: its nondeterminism is invisible to the
// intraprocedural deterministic analyzer (wrong package path) and is
// exactly what puritydeep exists to catch.
package impure

import (
	"math/rand"
	"time"
)

// Jitter mixes the two classic nondeterminism sources.
func Jitter() float64 {
	return rand.Float64() * float64(time.Now().UnixNano())
}
