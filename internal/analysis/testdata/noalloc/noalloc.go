// Fixture for the noalloc analyzer: one annotated function per
// violation class, plus clean cases exercising the allowed idioms.
package noallocsrc

type point struct{ x, y float64 }

var sink any

func consume(v any) { sink = v }

// fill uses the two allowed append idioms: growing the destination in
// place and refilling a resliced buffer.
//
//grape:noalloc
func fill(buf, xs []float64) []float64 {
	buf = append(buf, xs...)
	buf = append(buf[:0], xs...)
	return buf
}

// accumulate is clean: pointer args, arithmetic, and constant panics
// never allocate.
//
//grape:noalloc
func accumulate(dst *point, xs []point) {
	for i := range xs {
		dst.x += xs[i].x
	}
	if len(xs) == 0 {
		panic("noallocsrc: empty input")
	}
}

//grape:noalloc
func alloc(n int, xs []float64) {
	buf := make([]float64, n) // want "make allocates"
	q := new(point)           // want "new allocates"
	grown := append(xs, 1)    // want "append to non-reused slice"
	lit := []float64{1, 2}    // want "slice literal allocates"
	table := map[int]int{}    // want "map literal allocates"
	escaped := &point{x: 1}   // want "pointer to composite literal"
	consume(n)                // want "interface boxing of int"
	f := func() float64 { return xs[0] } // want "closure captures xs"
	_, _, _, _, _, _, _ = buf, q, grown, lit, table, escaped, f
}

//grape:noalloc
func concat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

// planes is a structure-of-arrays hot set in the shape of the chip's
// prediction cache: component slices that only an unannotated cold path
// may reallocate.
type planes struct {
	x [3][]float64
	m []float64
}

// stream is the SoA tile-kernel pattern: every plane resliced to a common
// tile length, reads through the locals — pure slice arithmetic on
// pre-sized backing arrays, no allocation.
//
//grape:noalloc
func stream(p *planes, dst *point, lo, hi int) {
	x0 := p.x[0][lo:hi]
	n := len(x0)
	x1, x2 := p.x[1][lo:][:n], p.x[2][lo:][:n]
	m := p.m[lo:][:n]
	for k := range x0 {
		dst.x += m[k] * (x0[k] + x1[k] + x2[k])
	}
}

// growInline is the violation the SoA pattern must avoid: reallocating a
// plane inside an annotated kernel instead of the cold load path.
//
//grape:noalloc
func (p *planes) growInline(n int) {
	p.m = make([]float64, n) // want "make allocates"
}

// free is unannotated: the same constructs are fine here.
func free(n int) []float64 {
	return append(make([]float64, 0, n), 1)
}
