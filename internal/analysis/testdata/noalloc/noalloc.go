// Fixture for the noalloc analyzer: one annotated function per
// violation class, plus clean cases exercising the allowed idioms.
package noallocsrc

type point struct{ x, y float64 }

var sink any

func consume(v any) { sink = v }

// fill uses the two allowed append idioms: growing the destination in
// place and refilling a resliced buffer.
//
//grape:noalloc
func fill(buf, xs []float64) []float64 {
	buf = append(buf, xs...)
	buf = append(buf[:0], xs...)
	return buf
}

// accumulate is clean: pointer args, arithmetic, and constant panics
// never allocate.
//
//grape:noalloc
func accumulate(dst *point, xs []point) {
	for i := range xs {
		dst.x += xs[i].x
	}
	if len(xs) == 0 {
		panic("noallocsrc: empty input")
	}
}

//grape:noalloc
func alloc(n int, xs []float64) {
	buf := make([]float64, n) // want "make allocates"
	q := new(point)           // want "new allocates"
	grown := append(xs, 1)    // want "append to non-reused slice"
	lit := []float64{1, 2}    // want "slice literal allocates"
	table := map[int]int{}    // want "map literal allocates"
	escaped := &point{x: 1}   // want "pointer to composite literal"
	consume(n)                // want "interface boxing of int"
	f := func() float64 { return xs[0] } // want "closure captures xs"
	_, _, _, _, _, _, _ = buf, q, grown, lit, table, escaped, f
}

//grape:noalloc
func concat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

// free is unannotated: the same constructs are fine here.
func free(n int) []float64 {
	return append(make([]float64, 0, n), 1)
}
