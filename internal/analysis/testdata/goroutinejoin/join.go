// Fixture for the goroutinejoin analyzer. Type-checked under the fake
// path "grape6/internal/board" so the concurrency scoping applies.
package board

import "sync"

type worker struct{ jobs chan int }

func (w *worker) run() {
	for range w.jobs {
	}
}

// pool is clean: the workers' channel is made in the same function, so
// the join mechanism is visible.
func pool(n int) []*worker {
	ws := make([]*worker, n)
	ch := make(chan int)
	for i := range ws {
		w := &worker{jobs: ch}
		ws[i] = w
		go w.run()
	}
	return ws
}

// fanOut is clean: WaitGroup join in the same function.
func fanOut(xs []float64, f func(int)) {
	var wg sync.WaitGroup
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f(i)
		}(i)
	}
	wg.Wait()
}

func fireAndForget(f func()) {
	go f() // want "go statement in fireAndForget without a join mechanism"
}
