// Fixture proving the gfixedboundary exemption: under the import path
// "grape6/internal/gfixed" the raw conversions and format-field shifts
// are the whole point and produce no findings.
package gfixed

import "math"

// FloatBits is the sanctioned boundary crossing.
func FloatBits(x float64) uint64 { return math.Float64bits(x) }

// FloatFromBits is its inverse.
func FloatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// Format carries the fixed-point scale.
type Format struct{ PosFrac uint }

// PosResolution is exactly 2^-PosFrac.
func (f Format) PosResolution() float64 { return 1 / float64(uint64(1)<<f.PosFrac) }
