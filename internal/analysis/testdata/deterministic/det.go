// Fixture for the deterministic analyzer. Type-checked under the fake
// import path "grape6/internal/chip" so the bit-exact scoping applies.
package chip

import (
	"math/rand" // want "import of math/rand"
	"time"
)

// Accum stands in for the gfixed block-float accumulator: its Add is
// order-sensitive.
type Accum struct{ sum float64 }

func (a *Accum) Add(x float64) { a.sum += x }

func Jitter() float64 { return rand.Float64() }

func Stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in bit-exact package"
}

func SumMap(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "float accumulation over map iteration order"
	}
	return total
}

func SumMapExplicit(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total = total + v // want "float accumulation over map iteration order"
	}
	return total
}

func SumAccum(m map[int]float64) float64 {
	var a Accum
	for _, v := range m {
		a.Add(v) // want "iteration order changes the rounding sequence"
	}
	return a.sum
}

// SumSlice is clean: slice iteration order is fixed.
func SumSlice(xs []float64) float64 {
	var total float64
	for _, v := range xs {
		total += v
	}
	return total
}

// CountMap is clean: integer counting is order-independent.
func CountMap(m map[int]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// MaxKey is clean: per-iteration locals do not accumulate.
func MaxKey(m map[int]float64) int {
	best := 0
	for k := range m {
		if k > best {
			best = k
		}
	}
	return best
}
