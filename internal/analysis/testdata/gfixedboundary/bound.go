// Fixture for the gfixedboundary analyzer. Type-checked under the fake
// path "grape6/internal/hermite" — i.e. outside internal/gfixed.
package hermite

import "math"

// Format mirrors the gfixed.Format knobs.
type Format struct {
	PosFrac   uint
	AccumFrac uint
	MantBits  uint
}

func RawBits(x float64) uint64 {
	return math.Float64bits(x) // want "math.Float64bits outside internal/gfixed"
}

func FromRaw(b uint64) float64 {
	return math.Float64frombits(b) // want "math.Float64frombits outside internal/gfixed"
}

func Scale(f Format) float64 {
	return 1 / float64(uint64(1)<<f.PosFrac) // want "manual shift by PosFrac"
}

func MantMask(f Format) uint64 {
	return ^uint64(0) >> (64 - f.MantBits) // want "manual shift by MantBits"
}

// Half is clean: shifts by plain integers are unrestricted.
func Half(x uint64) uint64 { return x >> 1 }

// Mag is clean: the rest of package math is unrestricted.
func Mag(x float64) float64 { return math.Abs(x) }
