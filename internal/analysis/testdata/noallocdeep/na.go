// Fixture for noallocdeep: an allocation two calls below a
// //grape:noalloc kernel is reported with the full hop-by-hop call
// chain; an unresolvable call under a kernel is reported too.
package noallocdeep

//grape:noalloc
func kernel(n int) int { return level1(n) }

func level1(n int) int { return len(level2(n)) }

func level2(n int) []int {
	return make([]int, n) // want "make allocates in noallocdeep.level2, reachable from //grape:noalloc kernel noallocdeep.kernel via noallocdeep.kernel -> noallocdeep.level1 (na.go:7) -> noallocdeep.level2 (na.go:9)"
}

type hooks struct{ fn func() }

//grape:noalloc
func kernelDyn(h *hooks) {
	h.fn() // want "unresolvable call (call through func-valued field fn) in noallocdeep.kernelDyn"
}
