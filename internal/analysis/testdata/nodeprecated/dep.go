// Fixture for the nodeprecated analyzer.
package dep

// OldForces is the legacy allocating entry point.
//
// Deprecated: use NewForces instead.
func OldForces() int { return 1 }

// NewForces is the replacement.
func NewForces() int { return 2 }

// Deprecated: legacy tuning constant, superseded by Depth.
const LegacyDepth = 6

// Depth is the current pipeline depth.
const Depth = 9

func caller() int {
	n := OldForces() // want "use of deprecated symbol OldForces"
	n += LegacyDepth // want "use of deprecated symbol LegacyDepth"
	return n + NewForces() + Depth
}
