// Fixture for //grapelint:ignore handling. Type-checked under the fake
// path "grape6/internal/gbackend" so gfixedboundary applies.
package gbackend

import "math"

// checksum is suppressed by a directive on the line above.
func checksum(x float64) uint64 {
	//grapelint:ignore gfixedboundary ECC checksum hashes the raw IEEE bits
	return math.Float64bits(x)
}

// checksum2 is suppressed by a same-line directive.
func checksum2(x float64) uint64 {
	return math.Float64bits(x) //grapelint:ignore gfixedboundary raw bits feed the CRC
}

// wrongName shows a directive naming a different analyzer does not
// suppress — and, since it then suppresses nothing, the audit flags it
// as stale.
func wrongName(x float64) uint64 {
	//grapelint:ignore noalloc directive names the wrong analyzer // want "unused suppression: no noalloc finding"
	return math.Float64bits(x) // want "math.Float64bits"
}

// multiline shows a directive above a multi-line statement covers
// findings on the continuation lines too (the finding below sits one
// line past the directive's line-above window and is matched through
// the enclosing statement's extent).
func multiline(a, b float64) uint64 {
	//grapelint:ignore gfixedboundary the ECC word folds both raw IEEE encodings
	return math.Float64bits(a) ^
		math.Float64bits(b)
}

// malformed shows a directive without analyzer and reason is itself a
// finding, and suppresses nothing.
func malformed(x float64) uint64 {
	_ = x /* want "malformed ignore directive" */ //grapelint:ignore
	return math.Float64bits(x) // want "math.Float64bits"
}
