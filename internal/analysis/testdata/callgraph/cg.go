// Fixture for the call-graph builder: one function per edge-resolution
// rule. The test asserts the exact edges and dynamic sites, so this file
// is structure, not findings — it carries no want comments.
package callgraph

type T struct{ n int }

func (t *T) M() { t.n++ }

type I interface{ M() }

func leaf() {}

// static call → EdgeStatic to leaf.
func static() { leaf() }

// concrete method call → EdgeMethod to (*T).M.
func method(t *T) { t.M() }

// interface dispatch → conservative EdgeInterface to every module
// implementation (here: (*T).M), with the reason recorded.
func iface(i I) { i.M() }

// func value bound once to a declared function → EdgeFuncValue.
func funcval() {
	f := leaf
	f()
}

// method value bound once → EdgeFuncValue to (*T).M.
func methodval(t *T) {
	f := t.M
	f()
}

// a called func literal is attributed to the encloser: no edge, no
// dynamic site, and the closure's effects count as closure()'s own.
func closure() []int {
	var out []int
	f := func() { out = make([]int, 4) }
	f()
	return out
}

// go statement → EdgeGo.
func spawn() { go leaf() }

// defer statement → EdgeDefer.
func deferred() { defer leaf() }

// call of an indexed func value → DynamicSite (unresolvable).
func dyn(fs []func()) { fs[0]() }

// a declared function passed as a value → EdgeRef (whoever receives it
// may call it).
func reffer(run func(func())) { run(leaf) }
