package analysis

import (
	"go/ast"
	"go/parser"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// edgeTo returns the edges of node `from` that land on node name `to`.
func edgesTo(g *CallGraph, from, to string) []Edge {
	n := g.Lookup(from)
	if n == nil {
		return nil
	}
	var out []Edge
	for _, e := range n.Edges {
		if e.To.Name() == to {
			out = append(out, e)
		}
	}
	return out
}

func TestCallGraphEdgeKinds(t *testing.T) {
	pkg := loadFixture(t, "callgraph", "fixture/callgraph")
	g := BuildCallGraph([]*Package{pkg})

	assertKind := func(from, to string, kind EdgeKind) {
		t.Helper()
		es := edgesTo(g, from, to)
		if len(es) == 0 {
			t.Errorf("no edge %s -> %s", from, to)
			return
		}
		found := false
		for _, e := range es {
			if e.Kind == kind {
				found = true
				if kind == EdgeInterface && e.Reason == "" {
					t.Errorf("%s -> %s: interface edge without a reason", from, to)
				}
			}
		}
		if !found {
			t.Errorf("edge %s -> %s: kinds %v, want %v", from, to, es, kind)
		}
	}

	assertKind("callgraph.static", "callgraph.leaf", EdgeStatic)
	assertKind("callgraph.method", "callgraph.(*T).M", EdgeMethod)
	assertKind("callgraph.iface", "callgraph.(*T).M", EdgeInterface)
	assertKind("callgraph.funcval", "callgraph.leaf", EdgeFuncValue)
	assertKind("callgraph.methodval", "callgraph.(*T).M", EdgeFuncValue)
	assertKind("callgraph.spawn", "callgraph.leaf", EdgeGo)
	assertKind("callgraph.deferred", "callgraph.leaf", EdgeDefer)
	assertKind("callgraph.reffer", "callgraph.leaf", EdgeRef)

	// A called func literal is attributed to its encloser: no edges, no
	// dynamic sites, and the literal's allocation counts as closure()'s.
	cl := g.Lookup("callgraph.closure")
	if cl == nil {
		t.Fatal("closure node missing")
	}
	if len(cl.Edges) != 0 || len(cl.Dynamics) != 0 {
		t.Errorf("closure: %d edges, %d dynamics; want 0, 0", len(cl.Edges), len(cl.Dynamics))
	}
	foundAlloc := false
	for _, eff := range cl.Allocs {
		if strings.Contains(eff.Desc, "make allocates") {
			foundAlloc = true
		}
	}
	if !foundAlloc {
		t.Errorf("closure: literal's make not attributed to encloser (allocs: %v)", cl.Allocs)
	}

	// An indexed func value cannot resolve: a dynamic site with a reason.
	dyn := g.Lookup("callgraph.dyn")
	if dyn == nil || len(dyn.Dynamics) != 1 ||
		!strings.Contains(dyn.Dynamics[0].Reason, "indexed func value") {
		t.Errorf("dyn: dynamics %+v, want one indexed-func-value site", dyn.Dynamics)
	}

	// A parameter func value has zero local bindings: dynamic.
	ref := g.Lookup("callgraph.reffer")
	if ref == nil || len(ref.Dynamics) != 1 ||
		!strings.Contains(ref.Dynamics[0].Reason, "0 local bindings") {
		t.Errorf("reffer: dynamics %+v, want one unbound-func-value site", ref.Dynamics)
	}
}

// TestModuleGraphInvariants builds the graph over the real module and
// asserts the two structural properties the interprocedural analyzers
// rely on: the SCC condensation is acyclic (Tarjan emits components in
// reverse topological order, so every cross-component edge must point
// to an earlier component), and every //grape:noalloc function in the
// tree appears as a graph root with Noalloc set.
func TestModuleGraphInvariants(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCallGraph(pkgs)
	if len(g.All()) == 0 {
		t.Fatal("empty module graph")
	}

	sccOf := make(map[*Node]int, len(g.All()))
	for i, scc := range g.Condense() {
		if len(scc) == 0 {
			t.Fatal("empty SCC")
		}
		for _, n := range scc {
			sccOf[n] = i
		}
	}
	for _, n := range g.All() {
		if _, ok := sccOf[n]; !ok {
			t.Fatalf("node %s missing from condensation", n.Name())
		}
		for _, e := range n.Edges {
			if sccOf[e.To] > sccOf[n] {
				t.Errorf("condensation cycle: edge %s -> %s goes to a later SCC", n.Name(), e.To.Name())
			}
		}
	}

	roots := g.Roots(func(n *Node) bool { return n.Noalloc })
	isRoot := make(map[*Node]bool, len(roots))
	for _, n := range roots {
		isRoot[n] = true
	}
	annotated := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasDirective(fd.Doc, noallocDirective) {
					continue
				}
				annotated++
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				n := g.Nodes[fn]
				if n == nil || !isRoot[n] {
					t.Errorf("noalloc kernel %s.%s is not a graph root", pkg.Path, fd.Name.Name)
				}
			}
		}
	}
	if annotated == 0 {
		t.Fatal("no //grape:noalloc kernels found in the module")
	}
	if annotated != len(roots) {
		t.Errorf("%d annotated kernels, %d noalloc roots", annotated, len(roots))
	}
}

func TestNoAllocDeepFixture(t *testing.T) {
	checkFixture(t, "noallocdeep", "fixture/noallocdeep")
}

func TestHotBlockFixture(t *testing.T) {
	checkFixture(t, "hotblock", "fixture/hotblock")
}

// depImporter resolves one in-fixture dependency by package path and
// falls back to the shared source importer for the standard library.
type depImporter struct {
	deps map[string]*types.Package
}

func (im depImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.deps[path]; ok {
		return p, nil
	}
	return fixImp.Import(path)
}

// loadFixtureDeps is loadFixture with extra fixture packages visible as
// imports — the cross-package puritydeep fixture needs a real package
// boundary between the bit-exact root and the impure callee.
func loadFixtureDeps(t *testing.T, dir, path string, deps ...*Package) *Package {
	t.Helper()
	full := filepath.Join("testdata", dir)
	entries, err := os.ReadDir(full)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fixFset, filepath.Join(full, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	im := depImporter{deps: make(map[string]*types.Package)}
	for _, d := range deps {
		im.deps[d.Path] = d.Types
	}
	conf := types.Config{Importer: im}
	tpkg, err := conf.Check(path, fixFset, files, info)
	if err != nil {
		t.Fatalf("fixture %s does not type-check: %v", dir, err)
	}
	return &Package{Path: path, Dir: full, Fset: fixFset, Files: files, Types: tpkg, Info: info}
}

func TestPurityDeepCrossPackage(t *testing.T) {
	impure := loadFixture(t, "puritydeep/impure", "fixture/impure")
	chiplike := loadFixtureDeps(t, "puritydeep", "grape6/internal/chip", impure)

	findings := Run([]*Package{chiplike, impure}, All())
	var purity []Finding
	for _, f := range findings {
		if f.Analyzer == "puritydeep" {
			purity = append(purity, f)
		} else {
			t.Errorf("unexpected %s finding: %s", f.Analyzer, f)
		}
	}
	wantSubstrings := []string{
		"math/rand.Float64 (global seed state) in impure.Jitter, reachable from bit-exact package function chip.Predict via chip.Predict -> impure.Jitter",
		"time.Now (wall-clock dependence) in impure.Jitter, reachable from bit-exact package function chip.Predict",
	}
	for _, want := range wantSubstrings {
		found := false
		for _, f := range purity {
			if strings.Contains(f.Message, want) {
				found = true
				// Root must point at the bit-exact fixture file so
				// package-filtered CLI runs can match the chain's root.
				if !strings.Contains(f.Root.Filename, "chiplike.go") {
					t.Errorf("finding root %q, want chiplike.go", f.Root.Filename)
				}
			}
		}
		if !found {
			t.Errorf("no puritydeep finding containing %q; got %v", want, purity)
		}
	}
	if len(purity) != 2 {
		t.Errorf("got %d puritydeep findings, want 2: %v", len(purity), purity)
	}
}
