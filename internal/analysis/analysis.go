package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Finding is one analyzer diagnostic. Interprocedural findings also
// carry the position of the chain's root function, so package-scoped
// runs can match either end of a cross-package chain.
type Finding struct {
	Pos      token.Position
	Root     token.Position // zero for intraprocedural findings
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// An Analyzer is one named check: Run inspects a single package,
// RunModule the whole module at once (over the call graph). Exactly one
// of the two is set.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// A Pass carries one (analyzer, package) run. Analyzers report through
// Reportf; suppression via //grapelint:ignore happens in the driver.
type Pass struct {
	Analyzer   *Analyzer
	Pkg        *Package
	Fset       *token.FileSet
	Info       *types.Info
	Deprecated map[types.Object]bool // module-wide // Deprecated: symbols
	findings   *[]Finding
}

func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns every analyzer in the suite, in reporting order: the five
// intraprocedural checks, then the three interprocedural closures over
// the module call graph.
func All() []*Analyzer {
	return []*Analyzer{
		NoAlloc, Deterministic, NoDeprecated, GfixedBoundary, GoroutineJoin,
		NoAllocDeep, HotBlock, PurityDeep,
	}
}

const (
	noallocDirective = "//grape:noalloc"
	hotpathDirective = "//grape:hotpath"
	ignoreDirective  = "//grapelint:ignore"
)

// ignoreEntry is one parsed //grapelint:ignore <analyzer> <reason>.
type ignoreEntry struct {
	analyzer string
	file     string
	line     int  // line the directive appears on
	pos      token.Position
	used     bool // suppressed at least one finding (audit)
}

// lineRange is the line extent of one statement.
type lineRange struct{ start, end int }

// suppressions is the module-wide //grapelint:ignore index: parsed
// directives, malformed-directive findings, and per-file statement
// extents so a directive on the line above a multi-line statement
// covers findings anywhere inside it.
type suppressions struct {
	entries map[string][]*ignoreEntry // file → directives
	stmts   map[string][]lineRange    // file → statement line extents
	bad     []Finding
}

func newSuppressions(pkgs []*Package) *suppressions {
	s := &suppressions{
		entries: make(map[string][]*ignoreEntry),
		stmts:   make(map[string][]lineRange),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, ignoreDirective)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						s.bad = append(s.bad, Finding{
							Pos:      pos,
							Analyzer: "grapelint",
							Message:  "malformed ignore directive: want //grapelint:ignore <analyzer> <reason>",
						})
						continue
					}
					s.entries[pos.Filename] = append(s.entries[pos.Filename], &ignoreEntry{
						analyzer: fields[0],
						file:     pos.Filename,
						line:     pos.Line,
						pos:      pos,
					})
				}
			}
			fname := pkg.Fset.Position(f.Pos()).Filename
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(ast.Stmt)
				if !ok {
					return true
				}
				switch st.(type) {
				case *ast.BlockStmt:
					return true // too broad to anchor a directive to
				}
				s.stmts[fname] = append(s.stmts[fname], lineRange{
					start: pkg.Fset.Position(st.Pos()).Line,
					end:   pkg.Fset.Position(st.End()).Line,
				})
				return true
			})
		}
	}
	return s
}

// stmtStart returns the starting line of the innermost non-block
// statement spanning the given line, or 0 if none does.
func (s *suppressions) stmtStart(file string, line int) int {
	best := lineRange{}
	for _, r := range s.stmts[file] {
		if r.start > line || r.end < line {
			continue
		}
		if best.start == 0 || r.start > best.start ||
			(r.start == best.start && r.end < best.end) {
			best = r
		}
	}
	return best.start
}

// match reports whether a finding is covered by an ignore directive on
// the same line, the line directly above it, or the line directly above
// the innermost statement containing it (so a directive above a
// multi-line expression suppresses findings on its continuation lines).
func (s *suppressions) match(f Finding) bool {
	entries := s.entries[f.Pos.Filename]
	if len(entries) == 0 {
		return false
	}
	stmtStart := s.stmtStart(f.Pos.Filename, f.Pos.Line)
	for _, e := range entries {
		if e.analyzer != f.Analyzer && e.analyzer != "all" {
			continue
		}
		if e.line == f.Pos.Line || e.line == f.Pos.Line-1 ||
			(stmtStart > 0 && e.line == stmtStart-1) {
			e.used = true
			return true
		}
	}
	return false
}

// audit turns every directive that suppressed nothing into a finding:
// stale suppressions hide future regressions and must be deleted (or
// re-justified) when the code they excused goes away.
func (s *suppressions) audit() []Finding {
	var files []string
	for f := range s.entries {
		files = append(files, f)
	}
	sort.Strings(files)
	var out []Finding
	for _, f := range files {
		for _, e := range s.entries[f] {
			if !e.used {
				out = append(out, Finding{
					Pos:      e.pos,
					Analyzer: "suppression",
					Message: fmt.Sprintf("unused suppression: no %s finding on this line or the statement below", e.analyzer),
				})
			}
		}
	}
	return out
}

// hasDirective reports whether the doc comment contains the given
// standalone directive line.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// isDeprecatedDoc reports whether a doc comment carries the standard
// "Deprecated:" marker.
func isDeprecatedDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimPrefix(text, "/*")
		if strings.HasPrefix(strings.TrimSpace(text), "Deprecated:") {
			return true
		}
	}
	return false
}

// deprecatedIndex collects every object in the module whose declaration
// is marked "Deprecated:". Uses of these objects are flagged by the
// nodeprecated analyzer in whichever package they occur.
func deprecatedIndex(pkgs []*Package) map[types.Object]bool {
	dep := make(map[types.Object]bool)
	mark := func(pkg *Package, id *ast.Ident) {
		if obj := pkg.Info.Defs[id]; obj != nil {
			dep[obj] = true
		}
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if isDeprecatedDoc(d.Doc) {
						mark(pkg, d.Name)
					}
				case *ast.GenDecl:
					whole := isDeprecatedDoc(d.Doc)
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if whole || isDeprecatedDoc(s.Doc) {
								mark(pkg, s.Name)
							}
						case *ast.ValueSpec:
							if whole || isDeprecatedDoc(s.Doc) {
								for _, n := range s.Names {
									mark(pkg, n)
								}
							}
						}
					}
				}
			}
		}
	}
	return dep
}

// Run executes the analyzers over the packages — intraprocedural passes
// per package, interprocedural passes once over the whole set via the
// call graph — applies ignore directives, audits unused ones, and
// returns the surviving findings sorted by position. For the
// interprocedural analyzers the package set should be the whole module:
// reachability through an omitted package is invisible.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	dep := deprecatedIndex(pkgs)
	sup := newSuppressions(pkgs)
	var raw []Finding
	for _, pkg := range pkgs {
		for _, az := range analyzers {
			if az.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:   az,
				Pkg:        pkg,
				Fset:       pkg.Fset,
				Info:       pkg.Info,
				Deprecated: dep,
				findings:   &raw,
			}
			az.Run(pass)
		}
	}

	var graph *CallGraph
	for _, az := range analyzers {
		if az.RunModule == nil {
			continue
		}
		if graph == nil {
			graph = BuildCallGraph(pkgs)
		}
		mp := &ModulePass{
			Analyzer: az,
			Pkgs:     pkgs,
			Graph:    graph,
			Fset:     graph.Fset,
			findings: &raw,
		}
		az.RunModule(mp)
	}

	out := append([]Finding{}, sup.bad...)
	for _, f := range raw {
		if !sup.match(f) {
			out = append(out, f)
		}
	}
	out = append(out, sup.audit()...)
	sortFindings(out)
	return out
}

// sortFindings orders findings by (file, line, column, analyzer,
// message) — a deterministic order so CI output and -json payloads can
// be diffed across runs.
func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// pathHasSuffix reports whether the import path is exactly suffix or
// ends in "/"+suffix — used for path-scoped analyzers so fixtures under
// fake paths like "grape6/internal/chip" behave like the real package.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// isPkgIdent reports whether expr is an identifier naming an import of
// the given package path (e.g. the "math" in math.Float64bits).
func isPkgIdent(info *types.Info, expr ast.Expr, path string) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == path
}

// builtinName returns the name of the builtin that fun resolves to, or
// "" if fun is not a builtin.
func builtinName(info *types.Info, fun ast.Expr) string {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
