package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Finding is one analyzer diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// An Analyzer is one named check over a single package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// A Pass carries one (analyzer, package) run. Analyzers report through
// Reportf; suppression via //grapelint:ignore happens in the driver.
type Pass struct {
	Analyzer   *Analyzer
	Pkg        *Package
	Fset       *token.FileSet
	Info       *types.Info
	Deprecated map[types.Object]bool // module-wide // Deprecated: symbols
	findings   *[]Finding
}

func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns every analyzer in the suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		NoAlloc, Deterministic, NoDeprecated, GfixedBoundary, GoroutineJoin,
	}
}

const (
	noallocDirective = "//grape:noalloc"
	ignoreDirective  = "//grapelint:ignore"
)

// ignoreEntry is one parsed //grapelint:ignore <analyzer> <reason>.
type ignoreEntry struct {
	analyzer string
	line     int // line the directive appears on
}

// ignoreIndex maps file name → suppressions, and collects malformed
// directives as findings of the pseudo-analyzer "grapelint".
func ignoreIndex(pkg *Package) (map[string][]ignoreEntry, []Finding) {
	idx := make(map[string][]ignoreEntry)
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignoreDirective)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Pos:      pos,
						Analyzer: "grapelint",
						Message:  "malformed ignore directive: want //grapelint:ignore <analyzer> <reason>",
					})
					continue
				}
				idx[pos.Filename] = append(idx[pos.Filename], ignoreEntry{
					analyzer: fields[0],
					line:     pos.Line,
				})
			}
		}
	}
	return idx, bad
}

// suppressed reports whether a finding is covered by an ignore directive
// on the same line or the line directly above it.
func suppressed(f Finding, idx map[string][]ignoreEntry) bool {
	for _, e := range idx[f.Pos.Filename] {
		if e.analyzer != f.Analyzer && e.analyzer != "all" {
			continue
		}
		if e.line == f.Pos.Line || e.line == f.Pos.Line-1 {
			return true
		}
	}
	return false
}

// hasDirective reports whether the doc comment contains the given
// standalone directive line.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// isDeprecatedDoc reports whether a doc comment carries the standard
// "Deprecated:" marker.
func isDeprecatedDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimPrefix(text, "/*")
		if strings.HasPrefix(strings.TrimSpace(text), "Deprecated:") {
			return true
		}
	}
	return false
}

// deprecatedIndex collects every object in the module whose declaration
// is marked "Deprecated:". Uses of these objects are flagged by the
// nodeprecated analyzer in whichever package they occur.
func deprecatedIndex(pkgs []*Package) map[types.Object]bool {
	dep := make(map[types.Object]bool)
	mark := func(pkg *Package, id *ast.Ident) {
		if obj := pkg.Info.Defs[id]; obj != nil {
			dep[obj] = true
		}
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if isDeprecatedDoc(d.Doc) {
						mark(pkg, d.Name)
					}
				case *ast.GenDecl:
					whole := isDeprecatedDoc(d.Doc)
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if whole || isDeprecatedDoc(s.Doc) {
								mark(pkg, s.Name)
							}
						case *ast.ValueSpec:
							if whole || isDeprecatedDoc(s.Doc) {
								for _, n := range s.Names {
									mark(pkg, n)
								}
							}
						}
					}
				}
			}
		}
	}
	return dep
}

// Run executes the analyzers over the packages, applies ignore
// directives, and returns the surviving findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	dep := deprecatedIndex(pkgs)
	var out []Finding
	for _, pkg := range pkgs {
		idx, bad := ignoreIndex(pkg)
		out = append(out, bad...)
		var raw []Finding
		for _, az := range analyzers {
			pass := &Pass{
				Analyzer:   az,
				Pkg:        pkg,
				Fset:       pkg.Fset,
				Info:       pkg.Info,
				Deprecated: dep,
				findings:   &raw,
			}
			az.Run(pass)
		}
		for _, f := range raw {
			if !suppressed(f, idx) {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// pathHasSuffix reports whether the import path is exactly suffix or
// ends in "/"+suffix — used for path-scoped analyzers so fixtures under
// fake paths like "grape6/internal/chip" behave like the real package.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// isPkgIdent reports whether expr is an identifier naming an import of
// the given package path (e.g. the "math" in math.Float64bits).
func isPkgIdent(info *types.Info, expr ast.Expr, path string) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == path
}

// builtinName returns the name of the builtin that fun resolves to, or
// "" if fun is not a builtin.
func builtinName(info *types.Info, fun ast.Expr) string {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
