package analysis

import (
	"go/ast"
	"go/token"
)

// formatFields are the gfixed.Format knobs that define the number
// formats. A shift by one of these outside gfixed is a hand-rolled
// fixed-point or mantissa conversion that belongs behind a Format or
// Rounder helper.
var formatFields = map[string]bool{
	"PosFrac":   true,
	"AccumFrac": true,
	"MantBits":  true,
}

// GfixedBoundary keeps every bit-level number-format decision inside
// internal/gfixed: outside it, raw math.Float64bits/Float64frombits
// and manual shifts by Format fields are forbidden — use
// gfixed.FloatBits/FloatFromBits and the Format/Rounder helpers.
var GfixedBoundary = &Analyzer{
	Name: "gfixedboundary",
	Doc:  "forbid raw float<->bits conversions outside internal/gfixed",
	Run:  runGfixedBoundary,
}

func runGfixedBoundary(p *Pass) {
	if pathHasSuffix(p.Pkg.Path, "internal/gfixed") {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if isPkgIdent(p.Info, n.X, "math") &&
					(n.Sel.Name == "Float64bits" || n.Sel.Name == "Float64frombits") {
					p.Reportf(n.Pos(), "math.%s outside internal/gfixed: use gfixed.FloatBits/FloatFromBits so number-format decisions stay in one place", n.Sel.Name)
				}
			case *ast.BinaryExpr:
				if n.Op == token.SHL || n.Op == token.SHR {
					if field := formatFieldRef(n.Y); field != "" {
						p.Reportf(n.Pos(), "manual shift by %s outside internal/gfixed: use the Format/Rounder helpers (PosResolution, Round, ...)", field)
					}
				}
			}
			return true
		})
	}
}

// formatFieldRef returns the name of a Format field referenced inside a
// shift-count expression, or "".
func formatFieldRef(e ast.Expr) string {
	var found string
	ast.Inspect(e, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok && formatFields[sel.Sel.Name] {
			found = sel.Sel.Name
		}
		return true
	})
	return found
}
