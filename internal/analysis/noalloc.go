package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc enforces the //grape:noalloc contract: annotated functions
// (force kernels, predictor, accumulator primitives, board pool stages)
// must not contain constructs that allocate on the steady-state path.
// The check is intraprocedural and syntactic over typed ASTs; escape
// analysis is deliberately not modeled — a construct the compiler might
// prove non-escaping is still flagged, because the hot path should not
// depend on optimizer behavior. The transitive closure through
// unannotated callees is the noallocdeep analyzer's job.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "forbid allocating constructs in //grape:noalloc functions",
	Run:  runNoAlloc,
}

func runNoAlloc(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, noallocDirective) {
				continue
			}
			name := fd.Name.Name
			forEachAlloc(p.Info, p.Pkg.Types, fd, func(pos token.Pos, desc string) {
				p.Reportf(pos, "%s in noalloc function %s", desc, name)
			})
		}
	}
}

// forEachAlloc walks one declared function (nested literals included)
// and emits a (position, description) pair for every construct that
// allocates on the steady-state path. It is shared between the
// intraprocedural noalloc analyzer and the interprocedural closure
// (noallocdeep), which differ only in where they point the walker.
func forEachAlloc(info *types.Info, tpkg *types.Package, fd *ast.FuncDecl, emit func(pos token.Pos, desc string)) {
	// First pass: append calls of the reuse form x = append(x, ...) grow
	// a caller-owned buffer and are allowed (amortized, steady-state
	// alloc-free once warm).
	reused := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Rhs {
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if ok && builtinName(info, call.Fun) == "append" && len(call.Args) > 0 &&
				types.ExprString(as.Lhs[i]) == types.ExprString(call.Args[0]) {
				reused[call] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			emitAllocCall(info, tpkg, n, reused, emit)
		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Map:
				emit(n.Pos(), "map literal allocates")
			case *types.Slice:
				emit(n.Pos(), "slice literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					emit(n.Pos(), "pointer to composite literal escapes")
				}
			}
		case *ast.FuncLit:
			if capt := capturedVar(info, fd, n); capt != "" {
				emit(n.Pos(), "closure captures "+capt+" by reference")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				tv := info.Types[n]
				if tv.Value == nil && isStringType(tv.Type) {
					emit(n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.GoStmt:
			emit(n.Pos(), "go statement allocates a goroutine")
		}
		return true
	})
}

func emitAllocCall(info *types.Info, tpkg *types.Package, call *ast.CallExpr, reused map[*ast.CallExpr]bool, emit func(token.Pos, string)) {
	switch bn := builtinName(info, call.Fun); bn {
	case "make", "new":
		emit(call.Pos(), bn+" allocates")
		return
	case "append":
		if reused[call] {
			return
		}
		if len(call.Args) > 0 {
			// append(buf[:0], ...) refills a reused buffer in place.
			if _, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr); ok {
				return
			}
		}
		emit(call.Pos(), "append to non-reused slice allocates")
		return
	case "panic":
		// panic is a cold path but its argument still boxes eagerly.
		if len(call.Args) == 1 {
			emitBoxing(info, tpkg, call.Args[0], emit)
		}
		return
	case "":
		// not a builtin; fall through
	default:
		return // len, cap, copy, min, max, ... are alloc-free
	}

	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		emitAllocConversion(info, call, tv.Type, emit)
		return
	}
	if desc := allocatingStdlibCall(info, call); desc != "" {
		emit(call.Pos(), desc)
		// Its arguments may box as well; fall through to the check below.
	}
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // foo(xs...) passes the slice itself
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) {
			emitBoxing(info, tpkg, arg, emit)
		}
	}
}

// allocatingStdlibCall recognizes calls into standard-library functions
// that are known to allocate (the interprocedural walk cannot see their
// bodies). The list is deliberately short and certain: formatting,
// error construction, and the reflect-based sort entry points.
func allocatingStdlibCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "fmt":
		return "fmt." + fn.Name() + " allocates"
	case "errors":
		if fn.Name() == "New" || fn.Name() == "Join" {
			return "errors." + fn.Name() + " allocates"
		}
	case "sort":
		switch fn.Name() {
		case "Slice", "SliceStable", "Sort", "Stable":
			return "sort." + fn.Name() + " allocates (interface conversion)"
		}
	}
	return ""
}

func emitAllocConversion(info *types.Info, call *ast.CallExpr, target types.Type, emit func(token.Pos, string)) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	if types.IsInterface(target) {
		emitBoxing(info, nil, arg, emit)
		return
	}
	at := info.Types[arg].Type
	if at == nil {
		return
	}
	if isStringType(target) && isByteOrRuneSlice(at) ||
		isByteOrRuneSlice(target) && isStringType(at) && info.Types[arg].Value == nil {
		emit(call.Pos(), "string conversion allocates")
	}
}

// emitBoxing flags arg if storing it in an interface allocates:
// constants, nil, interfaces, and pointer-shaped values are exempt.
func emitBoxing(info *types.Info, tpkg *types.Package, arg ast.Expr, emit func(token.Pos, string)) {
	tv := info.Types[arg]
	if tv.Value != nil || tv.IsNil() || tv.Type == nil {
		return
	}
	if types.IsInterface(tv.Type) || isPointerShaped(tv.Type) {
		return
	}
	qual := types.Qualifier(nil)
	if tpkg != nil {
		qual = types.RelativeTo(tpkg)
	}
	emit(arg.Pos(), "interface boxing of "+types.TypeString(tv.Type, qual)+" allocates")
}

// capturedVar returns the name of a variable the func literal captures
// from the enclosing function, or "" if it captures nothing (a
// capture-free literal compiles to a static func value — no alloc).
func capturedVar(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	var name string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		if pos >= lit.Pos() && pos <= lit.End() {
			return true // declared inside the literal
		}
		if pos >= fd.Pos() && pos <= fd.End() {
			name = id.Name
		}
		return true
	})
	return name
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isPointerShaped reports whether values of t fit in a pointer word and
// therefore do not allocate when stored in an interface.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}
