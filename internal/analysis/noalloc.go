package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc enforces the //grape:noalloc contract: annotated functions
// (force kernels, predictor, accumulator primitives, board pool stages)
// must not contain constructs that allocate on the steady-state path.
// The check is intraprocedural and syntactic over typed ASTs; escape
// analysis is deliberately not modeled — a construct the compiler might
// prove non-escaping is still flagged, because the hot path should not
// depend on optimizer behavior.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "forbid allocating constructs in //grape:noalloc functions",
	Run:  runNoAlloc,
}

func runNoAlloc(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, noallocDirective) {
				continue
			}
			checkNoAlloc(p, fd)
		}
	}
}

func checkNoAlloc(p *Pass, fd *ast.FuncDecl) {
	// First pass: append calls of the reuse form x = append(x, ...) grow
	// a caller-owned buffer and are allowed (amortized, steady-state
	// alloc-free once warm).
	reused := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Rhs {
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if ok && builtinName(p.Info, call.Fun) == "append" && len(call.Args) > 0 &&
				types.ExprString(as.Lhs[i]) == types.ExprString(call.Args[0]) {
				reused[call] = true
			}
		}
		return true
	})

	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkNoAllocCall(p, name, n, reused)
		case *ast.CompositeLit:
			switch p.Info.Types[n].Type.Underlying().(type) {
			case *types.Map:
				p.Reportf(n.Pos(), "map literal allocates in noalloc function %s", name)
			case *types.Slice:
				p.Reportf(n.Pos(), "slice literal allocates in noalloc function %s", name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					p.Reportf(n.Pos(), "pointer to composite literal escapes in noalloc function %s", name)
				}
			}
		case *ast.FuncLit:
			if capt := capturedVar(p, fd, n); capt != "" {
				p.Reportf(n.Pos(), "closure captures %s by reference in noalloc function %s", capt, name)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				tv := p.Info.Types[n]
				if tv.Value == nil && isStringType(tv.Type) {
					p.Reportf(n.Pos(), "string concatenation allocates in noalloc function %s", name)
				}
			}
		case *ast.GoStmt:
			p.Reportf(n.Pos(), "go statement allocates a goroutine in noalloc function %s", name)
		}
		return true
	})
}

func checkNoAllocCall(p *Pass, name string, call *ast.CallExpr, reused map[*ast.CallExpr]bool) {
	switch bn := builtinName(p.Info, call.Fun); bn {
	case "make", "new":
		p.Reportf(call.Pos(), "%s allocates in noalloc function %s", bn, name)
		return
	case "append":
		if reused[call] {
			return
		}
		if len(call.Args) > 0 {
			// append(buf[:0], ...) refills a reused buffer in place.
			if _, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr); ok {
				return
			}
		}
		p.Reportf(call.Pos(), "append to non-reused slice allocates in noalloc function %s", name)
		return
	case "panic":
		// panic is a cold path but its argument still boxes eagerly.
		if len(call.Args) == 1 {
			checkBoxing(p, name, call.Args[0])
		}
		return
	case "":
		// not a builtin; fall through
	default:
		return // len, cap, copy, min, max, ... are alloc-free
	}

	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		checkNoAllocConversion(p, name, call, tv.Type)
		return
	}
	sig, ok := p.Info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // foo(xs...) passes the slice itself
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) {
			checkBoxing(p, name, arg)
		}
	}
}

func checkNoAllocConversion(p *Pass, name string, call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	if types.IsInterface(target) {
		checkBoxing(p, name, arg)
		return
	}
	at := p.Info.Types[arg].Type
	if at == nil {
		return
	}
	if isStringType(target) && isByteOrRuneSlice(at) ||
		isByteOrRuneSlice(target) && isStringType(at) && p.Info.Types[arg].Value == nil {
		p.Reportf(call.Pos(), "string conversion allocates in noalloc function %s", name)
	}
}

// checkBoxing flags arg if storing it in an interface allocates:
// constants, nil, interfaces, and pointer-shaped values are exempt.
func checkBoxing(p *Pass, name string, arg ast.Expr) {
	tv := p.Info.Types[arg]
	if tv.Value != nil || tv.IsNil() || tv.Type == nil {
		return
	}
	if types.IsInterface(tv.Type) || isPointerShaped(tv.Type) {
		return
	}
	p.Reportf(arg.Pos(), "interface boxing of %s allocates in noalloc function %s",
		types.TypeString(tv.Type, types.RelativeTo(p.Pkg.Types)), name)
}

// capturedVar returns the name of a variable the func literal captures
// from the enclosing function, or "" if it captures nothing (a
// capture-free literal compiles to a static func value — no alloc).
func capturedVar(p *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	var name string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		if pos >= lit.Pos() && pos <= lit.End() {
			return true // declared inside the literal
		}
		if pos >= fd.Pos() && pos <= fd.End() {
			name = id.Name
		}
		return true
	})
	return name
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isPointerShaped reports whether values of t fit in a pointer word and
// therefore do not allocate when stored in an interface.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}
