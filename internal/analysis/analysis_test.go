package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Shared across fixtures so the source importer compiles each stdlib
// package (math, sync, time, math/rand) only once.
var (
	fixFset = token.NewFileSet()
	fixImp  = importer.ForCompiler(fixFset, "source", nil)
)

// loadFixture type-checks testdata/<dir> under the given fake import
// path; path-scoped analyzers key off the path, which is why fixtures
// can impersonate packages like grape6/internal/chip.
func loadFixture(t *testing.T, dir, path string) *Package {
	t.Helper()
	full := filepath.Join("testdata", dir)
	entries, err := os.ReadDir(full)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fixFset, filepath.Join(full, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: fixImp}
	tpkg, err := conf.Check(path, fixFset, files, info)
	if err != nil {
		t.Fatalf("fixture %s does not type-check: %v", dir, err)
	}
	return &Package{Path: path, Dir: full, Fset: fixFset, Files: files, Types: tpkg, Info: info}
}

var wantRe = regexp.MustCompile(`want "([^"]+)"`)

// checkFixture runs the full suite over one fixture package and
// compares the findings against its `want "substring"` comments,
// position by position.
func checkFixture(t *testing.T, dir, path string) {
	t.Helper()
	pkg := loadFixture(t, dir, path)
	findings := Run([]*Package{pkg}, All())

	type slot struct {
		substr string
		hit    bool
	}
	wants := make(map[string][]*slot) // "file:line" → expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pos := fixFset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					wants[key] = append(wants[key], &slot{substr: m[1]})
				}
			}
		}
	}

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, s := range wants[key] {
			if !s.hit && strings.Contains(f.Message, s.substr) {
				s.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for key, slots := range wants {
		for _, s := range slots {
			if !s.hit {
				t.Errorf("%s: expected finding containing %q, got none", key, s.substr)
			}
		}
	}
}

func TestNoAllocFixture(t *testing.T) {
	checkFixture(t, "noalloc", "fixture/noalloc")
}

func TestDeterministicFixture(t *testing.T) {
	checkFixture(t, "deterministic", "grape6/internal/chip")
}

func TestNoDeprecatedFixture(t *testing.T) {
	checkFixture(t, "nodeprecated", "fixture/nodeprecated")
}

func TestGfixedBoundaryFixture(t *testing.T) {
	checkFixture(t, "gfixedboundary", "grape6/internal/hermite")
}

func TestGfixedInsideIsExempt(t *testing.T) {
	checkFixture(t, "gfixedclean", "grape6/internal/gfixed")
}

func TestGoroutineJoinFixture(t *testing.T) {
	checkFixture(t, "goroutinejoin", "grape6/internal/board")
}

func TestIgnoreDirectives(t *testing.T) {
	checkFixture(t, "ignore", "grape6/internal/gbackend")
}
