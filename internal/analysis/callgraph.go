package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds grapelint's module-wide static call graph: the
// substrate of the interprocedural analyzers (noallocdeep, hotblock,
// puritydeep). Resolution rules, in decreasing exactness:
//
//   - static calls to declared functions and methods on concrete
//     receivers resolve exactly (generics to their origin declaration);
//   - interface method calls resolve conservatively to every module
//     type whose method set implements the interface (edge kind
//     EdgeInterface, with the per-site reason recorded) — external
//     implementations are invisible, which is the one direction the
//     graph can under-approximate;
//   - calls through function values resolve when the value has exactly
//     one function assigned in the same function body (EdgeFuncValue);
//     otherwise the site is recorded as a DynamicSite with a reason;
//   - a module function referenced but not called (passed as a value,
//     assigned to a field) gets an EdgeRef from the referencing
//     function — whoever receives the value may call it, so effects
//     behind it are conservatively reachable from the referencer;
//   - go/defer statements contribute edges of kind EdgeGo/EdgeDefer;
//     analyzers decide per contract whether to traverse them (a
//     goroutine's blocking op does not stall its spawner).
//
// Function literals are attributed to their enclosing declared
// function: their calls and effects count as the encloser's, except
// that effects inside the immediate `go func(){...}()` idiom carry
// InGo so blocking analyzers can skip them.

// EdgeKind classifies how a call edge was resolved.
type EdgeKind uint8

const (
	EdgeStatic    EdgeKind = iota // direct call of a declared function
	EdgeMethod                    // method call on a concrete receiver
	EdgeInterface                 // interface dispatch (conservative)
	EdgeFuncValue                 // call through a locally-bound function value
	EdgeRef                       // function referenced as a value (conservative)
	EdgeGo                        // go statement
	EdgeDefer                     // defer statement
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeMethod:
		return "method"
	case EdgeInterface:
		return "interface"
	case EdgeFuncValue:
		return "funcvalue"
	case EdgeRef:
		return "ref"
	case EdgeGo:
		return "go"
	case EdgeDefer:
		return "defer"
	}
	return "?"
}

// Edge is one resolved call (or reference) from a Node.
type Edge struct {
	To     *Node
	Pos    token.Pos // call/reference site
	Kind   EdgeKind
	Reason string // why a conservative edge exists ("" for exact kinds)
	InGo   bool   // site lies inside an immediate `go func(){...}()` literal
}

// DynamicSite is a call the graph could not resolve to any declaration.
type DynamicSite struct {
	Pos    token.Pos
	Reason string
	InGo   bool // inside an immediate `go func(){...}()` literal
}

// Node is one declared module function or method.
type Node struct {
	Obj     *types.Func
	Decl    *ast.FuncDecl
	Pkg     *Package
	Noalloc bool // carries //grape:noalloc
	Hotpath bool // carries //grape:hotpath

	Edges    []Edge
	Dynamics []DynamicSite

	// Local effect sites, collected once at build time (effects.go).
	Allocs   []Effect
	Blocking []Effect
	Purity   []Effect
}

// Name returns a short human name: pkg.Func or pkg.(Recv).Method.
func (n *Node) Name() string {
	pkg := n.Pkg.Path
	if i := strings.LastIndex(pkg, "/"); i >= 0 {
		pkg = pkg[i+1:]
	}
	if recv := n.Obj.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		star := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			star = "*"
		}
		tn := t.String()
		if named, ok := t.(*types.Named); ok {
			tn = named.Obj().Name()
		}
		return fmt.Sprintf("%s.(%s%s).%s", pkg, star, tn, n.Obj.Name())
	}
	return pkg + "." + n.Obj.Name()
}

// CallGraph is the module-wide static call graph.
type CallGraph struct {
	Nodes map[*types.Func]*Node
	Fset  *token.FileSet
	list  []*Node // deterministic order (by declaration position)
}

// All returns every node, ordered by declaration position.
func (g *CallGraph) All() []*Node { return g.list }

// Lookup finds a node by its short Name (tests and tooling).
func (g *CallGraph) Lookup(name string) *Node {
	for _, n := range g.list {
		if n.Name() == name {
			return n
		}
	}
	return nil
}

// Roots returns the nodes selected by keep, in declaration order.
func (g *CallGraph) Roots(keep func(*Node) bool) []*Node {
	var out []*Node
	for _, n := range g.list {
		if keep(n) {
			out = append(out, n)
		}
	}
	return out
}

// BuildCallGraph constructs the graph over the given packages. The
// packages must share one FileSet (LoadModule and the fixture loaders
// guarantee this).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Nodes: make(map[*types.Func]*Node)}
	if len(pkgs) > 0 {
		g.Fset = pkgs[0].Fset
	}
	b := &graphBuilder{g: g, pkgs: pkgs}
	b.collectNodes()
	b.collectNamedTypes()
	for _, n := range g.list {
		b.resolveBody(n)
		collectEffects(n)
	}
	return g
}

type graphBuilder struct {
	g     *CallGraph
	pkgs  []*Package
	named []types.Type // all module named types (for interface dispatch)
}

func (b *graphBuilder) collectNodes() {
	for _, pkg := range b.pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				b.g.Nodes[obj] = &Node{
					Obj:     obj,
					Decl:    fd,
					Pkg:     pkg,
					Noalloc: hasDirective(fd.Doc, noallocDirective),
					Hotpath: hasDirective(fd.Doc, hotpathDirective),
				}
			}
		}
	}
	for _, n := range b.g.Nodes {
		b.g.list = append(b.g.list, n)
	}
	sort.Slice(b.g.list, func(i, j int) bool {
		return b.g.list[i].Obj.Pos() < b.g.list[j].Obj.Pos()
	})
}

func (b *graphBuilder) collectNamedTypes() {
	for _, pkg := range b.pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				continue
			}
			b.named = append(b.named, named)
		}
	}
}

// node returns the module node for fn (via its generic origin), or nil
// for external or bodyless functions.
func (b *graphBuilder) node(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return b.g.Nodes[fn.Origin()]
}

// resolveBody walks one declared function, attributing nested literals
// to it, and appends edges and dynamic sites.
func (b *graphBuilder) resolveBody(n *Node) {
	info := n.Pkg.Info
	inGo := goLitRanges(n.Decl.Body)

	// Tag the call expressions that are go/defer targets, and the idents
	// that appear in call-function position (so the reference pass can
	// skip them).
	kindOf := map[*ast.CallExpr]EdgeKind{}
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			kindOf[x.Call] = EdgeGo
		case *ast.DeferStmt:
			kindOf[x.Call] = EdgeDefer
		}
		return true
	})

	funIdents := map[*ast.Ident]bool{}
	before := len(n.Edges)
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id := calleeIdent(call.Fun); id != nil {
			funIdents[id] = true
		}
		kind, tagged := kindOf[call]
		if !tagged {
			kind = EdgeStatic
		}
		b.resolveCall(n, call, kind)
		return true
	})

	// Reference pass: module functions used as values.
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok || funIdents[id] {
			return true
		}
		fn, ok := info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		if target := b.node(fn); target != nil {
			n.Edges = append(n.Edges, Edge{
				To: target, Pos: id.Pos(), Kind: EdgeRef,
				Reason: "function value may be called by its receiver",
			})
		}
		return true
	})

	// Tag everything that sits inside an immediate `go func(){...}()`
	// literal: its ops run on the spawned goroutine, not the caller's.
	for i := before; i < len(n.Edges); i++ {
		if n.Edges[i].Kind != EdgeGo && inGo.contains(n.Edges[i].Pos) {
			n.Edges[i].InGo = true
		}
	}
	for i := range n.Dynamics {
		if inGo.contains(n.Dynamics[i].Pos) {
			n.Dynamics[i].InGo = true
		}
	}
}

// posRanges is a set of [lo, hi] position intervals.
type posRanges [][2]token.Pos

func (r posRanges) contains(p token.Pos) bool {
	for _, iv := range r {
		if p >= iv[0] && p <= iv[1] {
			return true
		}
	}
	return false
}

// goLitRanges returns the extents of every function literal launched
// directly by a go statement: `go func(){ ... }()`.
func goLitRanges(body *ast.BlockStmt) posRanges {
	var out posRanges
	ast.Inspect(body, func(x ast.Node) bool {
		g, ok := x.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
			out = append(out, [2]token.Pos{lit.Pos(), lit.End()})
		}
		return true
	})
	return out
}

// calleeIdent returns the identifier naming the callee of fun, peeling
// parens and generic instantiation; nil if fun is not an identifier or
// selector call.
func calleeIdent(fun ast.Expr) *ast.Ident {
	switch f := ast.Unparen(fun).(type) {
	case *ast.Ident:
		return f
	case *ast.SelectorExpr:
		return f.Sel
	case *ast.IndexExpr:
		return calleeIdent(f.X)
	case *ast.IndexListExpr:
		return calleeIdent(f.X)
	}
	return nil
}

func (b *graphBuilder) resolveCall(n *Node, call *ast.CallExpr, kind EdgeKind) {
	info := n.Pkg.Info
	fun := ast.Unparen(call.Fun)

	// Peel generic instantiation: f[T](...) calls f. An index whose base
	// is not of function type is a container of func values — dynamic.
	for {
		switch f := fun.(type) {
		case *ast.IndexExpr:
			if tv, ok := info.Types[f.X]; !ok || tv.Type == nil {
				return
			} else if _, isFunc := tv.Type.(*types.Signature); !isFunc {
				n.Dynamics = append(n.Dynamics, DynamicSite{
					Pos: call.Pos(), Reason: "call of an indexed func value", InGo: kind == EdgeGo,
				})
				return
			}
			fun = ast.Unparen(f.X)
			continue
		case *ast.IndexListExpr:
			fun = ast.Unparen(f.X)
			continue
		}
		break
	}

	switch f := fun.(type) {
	case *ast.FuncLit:
		return // body attributed to the encloser

	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Func:
			if target := b.node(obj); target != nil {
				n.Edges = append(n.Edges, Edge{To: target, Pos: call.Pos(), Kind: kind})
			}
			return
		case *types.Builtin:
			return
		case *types.TypeName:
			return // conversion
		case *types.Var:
			b.resolveFuncValue(n, call, f, obj, kind)
			return
		case nil:
			if tv, ok := info.Types[f]; ok && tv.IsType() {
				return // conversion to a type expression
			}
		}
		n.Dynamics = append(n.Dynamics, DynamicSite{
			Pos: call.Pos(), Reason: "call through unresolved identifier", InGo: kind == EdgeGo,
		})

	case *ast.SelectorExpr:
		if sel := info.Selections[f]; sel != nil {
			switch sel.Kind() {
			case types.MethodVal:
				b.resolveMethodCall(n, call, f, sel, kind)
			case types.FieldVal:
				n.Dynamics = append(n.Dynamics, DynamicSite{
					Pos:    call.Pos(),
					Reason: fmt.Sprintf("call through func-valued field %s", f.Sel.Name),
					InGo:   kind == EdgeGo,
				})
			case types.MethodExpr:
				if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
					if target := b.node(fn); target != nil {
						n.Edges = append(n.Edges, Edge{To: target, Pos: call.Pos(), Kind: kind})
					}
				}
			}
			return
		}
		// Qualified reference: pkg.F(...) or pkg.Var(...).
		switch obj := info.Uses[f.Sel].(type) {
		case *types.Func:
			if target := b.node(obj); target != nil {
				n.Edges = append(n.Edges, Edge{To: target, Pos: call.Pos(), Kind: kind})
			}
			// External (stdlib) calls carry no edge; the effect
			// classifiers recognize the effectful ones by name.
			return
		case *types.TypeName:
			return // conversion
		case *types.Var:
			n.Dynamics = append(n.Dynamics, DynamicSite{
				Pos:    call.Pos(),
				Reason: fmt.Sprintf("call through package-level func value %s", f.Sel.Name),
				InGo:   kind == EdgeGo,
			})
			return
		}
		if tv, ok := info.Types[f]; ok && tv.IsType() {
			return // conversion to a qualified type
		}
		n.Dynamics = append(n.Dynamics, DynamicSite{
			Pos: call.Pos(), Reason: "call through unresolved selector", InGo: kind == EdgeGo,
		})

	default:
		// Conversion like (func())(x), or a call of a call's result.
		if tv, ok := info.Types[fun]; ok && tv.IsType() {
			return
		}
		n.Dynamics = append(n.Dynamics, DynamicSite{
			Pos: call.Pos(), Reason: "call of a non-identifier expression", InGo: kind == EdgeGo,
		})
	}
}

// resolveMethodCall handles x.M(...) where the selection is a method
// value: exact for concrete receivers, conservative fan-out over module
// implementations for interface receivers.
func (b *graphBuilder) resolveMethodCall(n *Node, call *ast.CallExpr, selExpr *ast.SelectorExpr, sel *types.Selection, kind EdgeKind) {
	mobj, ok := sel.Obj().(*types.Func)
	if !ok {
		return
	}
	recv := sel.Recv()
	if !types.IsInterface(recv) {
		if target := b.node(mobj); target != nil {
			k := kind
			if k == EdgeStatic {
				k = EdgeMethod
			}
			n.Edges = append(n.Edges, Edge{To: target, Pos: call.Pos(), Kind: k})
		}
		return
	}

	iface, _ := recv.Underlying().(*types.Interface)
	if iface == nil {
		return
	}
	reason := fmt.Sprintf("interface dispatch %s.%s: conservative edge to every module implementation",
		types.TypeString(recv, types.RelativeTo(n.Pkg.Types)), mobj.Name())
	for _, t := range b.named {
		pt := types.NewPointer(t)
		if !types.Implements(t, iface) && !types.Implements(pt, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(pt, true, mobj.Pkg(), mobj.Name())
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if target := b.node(fn); target != nil {
			n.Edges = append(n.Edges, Edge{
				To: target, Pos: call.Pos(), Kind: EdgeInterface, Reason: reason,
			})
		}
	}
}

// resolveFuncValue handles f(...) where f is a variable: if exactly one
// function is bound to f inside the enclosing body, the call resolves
// to it; a func-literal binding needs no edge (the literal's body is
// attributed to the encloser); anything else is a dynamic site.
func (b *graphBuilder) resolveFuncValue(n *Node, call *ast.CallExpr, id *ast.Ident, v *types.Var, kind EdgeKind) {
	info := n.Pkg.Info
	var bound []ast.Expr
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				li, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || i >= len(x.Rhs) {
					continue
				}
				obj := info.Uses[li]
				if obj == nil {
					obj = info.Defs[li]
				}
				if obj == v {
					bound = append(bound, ast.Unparen(x.Rhs[i]))
				}
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				if info.Defs[name] == v && i < len(x.Values) {
					bound = append(bound, ast.Unparen(x.Values[i]))
				}
			}
		}
		return true
	})
	if len(bound) == 1 {
		switch rhs := bound[0].(type) {
		case *ast.FuncLit:
			return // attributed to the encloser
		case *ast.Ident:
			if fn, ok := info.Uses[rhs].(*types.Func); ok {
				if target := b.node(fn); target != nil {
					n.Edges = append(n.Edges, Edge{
						To: target, Pos: call.Pos(), Kind: EdgeFuncValue,
						Reason: fmt.Sprintf("func value %s bound once in this body", id.Name),
					})
					return
				}
			}
		case *ast.SelectorExpr:
			if fn, ok := info.Uses[rhs.Sel].(*types.Func); ok {
				if target := b.node(fn); target != nil {
					n.Edges = append(n.Edges, Edge{
						To: target, Pos: call.Pos(), Kind: EdgeFuncValue,
						Reason: fmt.Sprintf("func value %s bound once in this body", id.Name),
					})
					return
				}
			}
		}
	}
	n.Dynamics = append(n.Dynamics, DynamicSite{
		Pos:    call.Pos(),
		Reason: fmt.Sprintf("call through func value %s (%d local bindings)", id.Name, len(bound)),
		InGo:   kind == EdgeGo,
	})
}

// Condense computes the strongly connected components of the graph in
// a deterministic order (Tarjan over position-sorted nodes) and returns
// them in reverse topological order of the condensation. The
// condensation of any graph is acyclic; the whole-module test asserts
// that by topologically ordering it.
func (g *CallGraph) Condense() [][]*Node {
	index := make(map[*Node]int, len(g.list))
	low := make(map[*Node]int, len(g.list))
	onStack := make(map[*Node]bool, len(g.list))
	var stack []*Node
	var sccs [][]*Node
	next := 0

	var strongconnect func(n *Node)
	strongconnect = func(n *Node) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, e := range n.Edges {
			w := e.To
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[n] {
					low[n] = low[w]
				}
			} else if onStack[w] && index[w] < low[n] {
				low[n] = index[w]
			}
		}
		if low[n] == index[n] {
			var scc []*Node
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == n {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, n := range g.list {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return sccs
}
