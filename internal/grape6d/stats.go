package grape6d

import "time"

// fillHist accumulates the batch-fill distribution: for every coalesced
// dispatch, the fraction of dispatched pipeline-load capacity that
// carried real i-particles (a 10-particle dispatch on the 48-slot
// pipeline load fills 10/48 ≈ 0.21; two coalesced 30-particle requests
// fill 60/96 = 0.625). Eight equal-width buckets over [0, 1], with
// exactly-full dispatches landing in the top bucket.
type fillHist struct {
	buckets    [8]int64
	dispatches int64
	sumFill    float64
}

func (h *fillHist) add(ni, loads, ibatch int) {
	if loads <= 0 || ibatch <= 0 {
		return
	}
	fill := float64(ni) / float64(loads*ibatch)
	idx := int(fill * float64(len(h.buckets)))
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx]++
	h.dispatches++
	h.sumFill += fill
}

// FillStats is the batch-fill histogram snapshot.
type FillStats struct {
	// Buckets[k] counts dispatches with fill in [k/8, (k+1)/8).
	Buckets    [8]int64
	Dispatches int64
	// MeanFill is the average fill fraction across dispatches (1.0 =
	// every dispatched pipeline load was completely packed).
	MeanFill float64
}

// ArrayStats describes one fleet slot.
type ArrayStats struct {
	Slot     int
	Resident string // name of the tenant whose j-image is loaded ("" none)
	Swaps    int64  // tenant j-image swap-ins
	Loads    int64  // pipeline loads dispatched
	Busy     time.Duration
}

// SessionStats describes one session.
type SessionStats struct {
	ID       int
	Name     string
	Requests int64 // force requests submitted
	Batches  int64 // hardware dispatches they were served in
	Cycles   int64 // model cycles charged (solo-identical accounting)
	// ChipSeconds is Cycles converted through the cycle model — the
	// quantity quotas are debited in.
	ChipSeconds float64
	QueueDepth  int // requests currently queued
	QueuedI     int // i-particles currently queued
	Throttled   int64
}

// Stats is a scheduler-wide snapshot.
type Stats struct {
	Uptime   time.Duration
	Arrays   []ArrayStats
	Sessions []SessionStats
	Fill     FillStats
}

// Stats snapshots the scheduler's counters.
func (d *Scheduler) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.now()
	st := Stats{
		Uptime: now.Sub(d.start),
		Fill: FillStats{
			Buckets:    d.fill.buckets,
			Dispatches: d.fill.dispatches,
		},
	}
	if d.fill.dispatches > 0 {
		st.Fill.MeanFill = d.fill.sumFill / float64(d.fill.dispatches)
	}
	for _, sl := range d.slots {
		as := ArrayStats{
			Slot:  sl.idx,
			Swaps: sl.swaps,
			Loads: sl.loads,
			Busy:  time.Duration(sl.busyNanos),
		}
		if sl.resident != nil {
			as.Resident = sl.resident.name
		}
		st.Arrays = append(st.Arrays, as)
	}
	for _, s := range d.sessions {
		st.Sessions = append(st.Sessions, SessionStats{
			ID:          s.id,
			Name:        s.name,
			Requests:    s.reqs,
			Batches:     s.batches,
			Cycles:      s.cycles,
			ChipSeconds: d.slots[0].arr.TimeFor(s.cycles),
			QueueDepth:  len(s.queue),
			QueuedI:     s.queuedNi,
			Throttled:   s.throttled,
		})
	}
	return st
}
