package grape6d

import "time"

// Quota is a per-session chip-time budget: a token bucket holding
// seconds of model chip time (board.Array.TimeFor over the cycle
// model). Dispatch requires a positive balance and debits the actual
// occupancy of each evaluation, so one evaluation may overdraw the
// bucket — the session then waits until the refill rate covers the
// deficit. The zero Quota is unlimited.
//
// Quotas gate only WHEN a session's work reaches the silicon, never
// what it computes: a throttled session's trajectory is bit-identical,
// just later.
type Quota struct {
	// ChipSecondsPerSecond is the sustained refill rate: seconds of
	// chip time granted per wall second. 1.0 means "one full array,
	// continuously"; 0 means unlimited.
	ChipSecondsPerSecond float64

	// Burst is the bucket capacity in chip-seconds (how far ahead of
	// the sustained rate a session may run). Zero defaults to one
	// second's worth of refill, with a small floor so a single
	// evaluation can always start.
	Burst float64
}

// Unlimited reports whether the quota never throttles.
func (q Quota) Unlimited() bool { return q.ChipSecondsPerSecond <= 0 }

// bucket is the live token-bucket state of one session.
type bucket struct {
	q      Quota
	tokens float64
	last   time.Time
}

func (b *bucket) init(q Quota, now time.Time) {
	if q.Burst <= 0 {
		q.Burst = q.ChipSecondsPerSecond
		if q.Burst < 1e-6 {
			q.Burst = 1e-6
		}
	}
	b.q = q
	b.tokens = q.Burst
	b.last = now
}

// refill accrues tokens up to the burst capacity.
func (b *bucket) refill(now time.Time) {
	if b.q.Unlimited() {
		return
	}
	dt := now.Sub(b.last).Seconds()
	if dt <= 0 {
		return
	}
	b.last = now
	b.tokens += dt * b.q.ChipSecondsPerSecond
	if b.tokens > b.q.Burst {
		b.tokens = b.q.Burst
	}
}

// allow reports whether a dispatch may start now.
func (b *bucket) allow(now time.Time) bool {
	if b.q.Unlimited() {
		return true
	}
	b.refill(now)
	return b.tokens > 0
}

// charge debits chip-seconds (possibly overdrawing).
func (b *bucket) charge(chipSeconds float64) {
	if b.q.Unlimited() {
		return
	}
	b.tokens -= chipSeconds
}

// nextOK returns the earliest time a dispatch may start again.
func (b *bucket) nextOK(now time.Time) time.Time {
	if b.q.Unlimited() {
		return now
	}
	b.refill(now)
	if b.tokens > 0 {
		return now
	}
	wait := -b.tokens / b.q.ChipSecondsPerSecond
	return now.Add(time.Duration(wait * float64(time.Second)))
}
