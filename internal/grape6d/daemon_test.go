package grape6d

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"grape6/internal/board"
	"grape6/internal/core"
	"grape6/internal/model"
	"grape6/internal/nbody"
	"grape6/internal/xrand"
)

// startDaemon brings up a server on a loopback listener and returns a
// connected client. Cleanup closes both.
func startDaemon(t *testing.T, hw board.Config, fleet int, maxWait time.Duration) *Client {
	t.Helper()
	sv := NewServer(NewScheduler(Config{
		Fleet: fleet, HW: hw, MaxWait: maxWait,
	}))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go sv.Serve(ln)
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		ln.Close()
		sv.Close()
	})
	return cl
}

// TestDaemonRoundTrip drives the full session lifecycle over the wire —
// attach, step, snapshot, restore, step, detach — with a second tenant
// contending for the same array throughout, and pins both trajectories
// bit-identical to dedicated runs (core.NewSimulator / core.Restore on
// a private array of the same shape).
func TestDaemonRoundTrip(t *testing.T) {
	hw := smallHW()
	const eps = 1.0 / 64
	cl := startDaemon(t, hw, 1, 200*time.Microsecond)

	if _, err := cl.Attach(AttachArgs{Name: "a", N: 96, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Attach(AttachArgs{Name: "b", N: 64, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Attach(AttachArgs{Name: "a", N: 8, Seed: 1}); err == nil {
		t.Fatalf("duplicate attach succeeded")
	}

	const blocks = 12
	for k := 0; k < blocks/2; k++ {
		if _, err := cl.Step("a", 2); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Step("b", 2); err != nil {
			t.Fatal(err)
		}
	}

	snap, err := cl.Snapshot("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Restore("a2", snap.Data, Quota{}); err != nil {
		t.Fatal(err)
	}
	const extra = 6
	if _, err := cl.Step("a2", extra); err != nil {
		t.Fatal(err)
	}
	if err := cl.Detach("b"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Detach("b"); err == nil {
		t.Fatalf("double detach succeeded")
	}
	if _, err := cl.Step("a", 1); err != nil {
		t.Fatal(err)
	}

	// Dedicated-run references.
	solo, err := core.NewSimulator(model.Plummer(96, xrand.New(5)), core.Config{
		Backend: core.Grape, Eps: eps, HW: &hw,
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < blocks+1; k++ {
		solo.Step()
	}
	wantA := SystemHash(solo.Synchronized())
	gotA, err := cl.Hash("a")
	if err != nil {
		t.Fatal(err)
	}
	if gotA.Hash != wantA {
		t.Errorf("session a hash %#016x, dedicated run %#016x", gotA.Hash, wantA)
	}

	soloRestored, err := core.Restore(bytes.NewReader(snap.Data), core.Config{
		Backend: core.Grape, HW: &hw,
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < extra; k++ {
		soloRestored.Step()
	}
	wantA2 := SystemHash(soloRestored.Synchronized())
	gotA2, err := cl.Hash("a2")
	if err != nil {
		t.Fatal(err)
	}
	if gotA2.Hash != wantA2 {
		t.Errorf("restored session hash %#016x, dedicated restore %#016x", gotA2.Hash, wantA2)
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sessions) != 2 {
		t.Errorf("stats report %d sessions after detach, want 2", len(st.Sessions))
	}
	if st.Arrays[0].Swaps < 2 {
		t.Errorf("swaps = %d on the contended array, want ≥ 2", st.Arrays[0].Swaps)
	}
}

// TestServerConcurrentAttach pins the start path's locking: the name is
// reserved under sv.mu but the integrator (with its O(N²) initial force
// evaluation) is built outside it, so concurrent attaches of different
// names proceed in parallel while two racing attaches of the same name
// still yield exactly one session. A detached name is attachable again.
func TestServerConcurrentAttach(t *testing.T) {
	sv := NewServer(NewScheduler(Config{HW: smallHW()}))
	defer sv.Close()

	newSys := func(seed uint64) *nbody.System { return model.Plummer(48, xrand.New(seed)) }
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for k := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := "dup"
			if k%2 == 1 {
				name = fmt.Sprintf("solo%d", k)
			}
			_, errs[k] = sv.start(name, newSys(uint64(k+1)), 1.0/64, uint64(k+1), Quota{})
		}()
	}
	wg.Wait()

	dupOK := 0
	for k, err := range errs {
		if k%2 == 1 {
			if err != nil {
				t.Errorf("concurrent attach of distinct name %d failed: %v", k, err)
			}
			continue
		}
		if err == nil {
			dupOK++
		}
	}
	if dupOK != 1 {
		t.Errorf("%d of 2 same-name attaches succeeded, want exactly 1", dupOK)
	}
	if _, err := sv.get("dup"); err != nil {
		t.Fatalf("winning session not installed: %v", err)
	}
	if _, err := sv.start("dup", newSys(9), 1.0/64, 9, Quota{}); err == nil {
		t.Fatal("duplicate attach succeeded after the race settled")
	}

	r := &RPC{sv: sv}
	if err := r.Detach(&DetachArgs{Name: "dup"}, &DetachReply{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sv.start("dup", newSys(9), 1.0/64, 9, Quota{}); err != nil {
		t.Fatalf("reattach after detach failed: %v", err)
	}
}

// TestDaemonRejectsBadInput pins the failure paths reachable over the
// wire: unknown session names, zero-N attaches and corrupt snapshot
// streams must come back as errors, not crash the daemon.
func TestDaemonRejectsBadInput(t *testing.T) {
	cl := startDaemon(t, smallHW(), 1, 0)

	if _, err := cl.Step("ghost", 1); err == nil {
		t.Errorf("Step on unknown session succeeded")
	}
	if _, err := cl.Snapshot("ghost"); err == nil {
		t.Errorf("Snapshot on unknown session succeeded")
	}
	if _, err := cl.Hash("ghost"); err == nil {
		t.Errorf("Hash on unknown session succeeded")
	}
	if _, err := cl.Attach(AttachArgs{Name: "z", N: 0}); err == nil {
		t.Errorf("Attach with N=0 succeeded")
	}
	if _, err := cl.Restore("r", []byte("not a snapshot"), Quota{}); err == nil {
		t.Errorf("Restore of garbage stream succeeded")
	}

	// The daemon must still be serving after all of that.
	if _, err := cl.Attach(AttachArgs{Name: "ok", N: 32, Seed: 3}); err != nil {
		t.Fatalf("daemon wedged after bad input: %v", err)
	}
	if _, err := cl.Step("ok", 1); err != nil {
		t.Fatal(err)
	}
}
