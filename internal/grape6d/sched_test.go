package grape6d

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"grape6/internal/board"
	"grape6/internal/chip"
	"grape6/internal/gbackend"
	"grape6/internal/hermite"
	"grape6/internal/model"
	"grape6/internal/nbody"
	"grape6/internal/xrand"
)

// TestCoalescingBitIdentical submits several small same-(t, eps)
// requests inside one coalescing window and checks that the single
// packed dispatch returns, request by request, exactly the bits and
// cycle counts of separate evaluations on a dedicated array.
func TestCoalescingBitIdentical(t *testing.T) {
	hw := smallHW()
	js, is := plummerSet(t, hw, 512, 42)
	eps := 1.0 / 64
	tm := 0.015625

	// Under-filled splits: 5+7+11+13 = 36 i-particles < one 48-slot
	// pipeline load, so nothing dispatches before the window closes and
	// all four requests coalesce into one evaluation.
	splits := []struct{ lo, n int }{{0, 5}, {5, 7}, {12, 11}, {23, 13}}

	arr := board.New(hw)
	defer arr.Close()
	if err := arr.LoadJ(js); err != nil {
		t.Fatal(err)
	}
	type ref struct {
		dst    []chip.Partial
		cycles int64
	}
	refs := make([]ref, len(splits))
	for k, sp := range splits {
		refs[k].dst = make([]chip.Partial, sp.n)
		refs[k].cycles = arr.ForcesInto(refs[k].dst, tm, is[sp.lo:sp.lo+sp.n], eps)
	}

	d := NewScheduler(Config{HW: hw, MaxWait: 40 * time.Millisecond})
	defer d.Close()
	s, err := d.Attach("burst", Quota{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Detach()
	if err := s.LoadJ(js); err != nil {
		t.Fatal(err)
	}

	dsts := make([][]chip.Partial, len(splits))
	tks := make([]Ticket, len(splits))
	for k, sp := range splits {
		dsts[k] = make([]chip.Partial, sp.n)
		tks[k] = s.Submit(dsts[k], tm, is[sp.lo:sp.lo+sp.n], eps)
	}
	for k := range tks {
		cycles := tks[k].Wait()
		if cycles != refs[k].cycles {
			t.Errorf("request %d charged %d cycles, dedicated array reports %d", k, cycles, refs[k].cycles)
		}
		for q := range dsts[k] {
			if dsts[k][q] != refs[k].dst[q] {
				t.Fatalf("request %d partial %d differs from dedicated evaluation", k, q)
			}
		}
	}

	st := d.Stats()
	ss := st.Sessions[0]
	if ss.Requests != int64(len(splits)) {
		t.Errorf("session shows %d requests, want %d", ss.Requests, len(splits))
	}
	if ss.Batches != 1 {
		t.Errorf("4 held requests dispatched in %d batches, want 1 coalesced dispatch", ss.Batches)
	}
	if st.Fill.Dispatches != 1 {
		t.Fatalf("fill histogram recorded %d dispatches, want 1", st.Fill.Dispatches)
	}
	if want := 36.0 / 48.0; st.Fill.MeanFill != want {
		t.Errorf("mean batch fill %.4f, want %.4f (36 i-particles on one pipeline load)", st.Fill.MeanFill, want)
	}
}

// TestCoalescingFullBatchFlushesEarly pins the other edge of the window:
// once queued work reaches a full pipeline load it dispatches without
// waiting out MaxWait.
func TestCoalescingFullBatchFlushesEarly(t *testing.T) {
	hw := smallHW()
	js, is := plummerSet(t, hw, 512, 42)
	d := NewScheduler(Config{HW: hw, MaxWait: time.Hour})
	defer d.Close()
	s, err := d.Attach("full", Quota{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Detach()
	if err := s.LoadJ(js); err != nil {
		t.Fatal(err)
	}
	dst := make([]chip.Partial, d.HW().Chip.IBatch())
	done := make(chan int64)
	go func() { done <- s.ForcesInto(dst, 0.015625, is[:d.HW().Chip.IBatch()], 1.0/64) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("a full pipeline load sat out a one-hour coalescing window instead of flushing immediately")
	}
}

// TestCoalescingMaxWaitFlush pins the window itself: an under-filled
// batch must dispatch once MaxWait expires even though no more work
// arrives — and not meaningfully earlier.
func TestCoalescingMaxWaitFlush(t *testing.T) {
	hw := smallHW()
	js, is := plummerSet(t, hw, 512, 42)
	const wait = 30 * time.Millisecond
	d := NewScheduler(Config{HW: hw, MaxWait: wait})
	defer d.Close()
	s, err := d.Attach("lone", Quota{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Detach()
	if err := s.LoadJ(js); err != nil {
		t.Fatal(err)
	}
	dst := make([]chip.Partial, 4)
	start := time.Now()
	s.ForcesInto(dst, 0.015625, is[:4], 1.0/64)
	if elapsed := time.Since(start); elapsed < wait/2 {
		t.Errorf("under-filled request completed after %v, want the %v coalescing window to hold it", elapsed, wait)
	}
	if st := d.Stats(); st.Fill.Dispatches != 1 || st.Fill.Buckets[0] != 1 {
		t.Errorf("fill histogram %+v, want one dispatch in the lowest bucket (4/48 fill)", st.Fill)
	}
}

// manualClock is a lockable test clock for deterministic quota tests.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d *Scheduler, by time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(by)
	c.mu.Unlock()
	d.Kick()
}

// TestQuotaThrottle pins admission control with a manual clock: a
// session that has overdrawn its chip-second bucket stops dispatching
// until the refill covers the debt, while an unlimited session keeps
// being served with bounded latency the whole time.
func TestQuotaThrottle(t *testing.T) {
	hw := smallHW()
	js, is := plummerSet(t, hw, 256, 3)
	clock := &manualClock{now: time.Unix(1000, 0)}
	d := NewScheduler(Config{HW: hw, Now: clock.Now})
	defer d.Close()

	// A near-empty bucket with a slow refill: the first dispatch is
	// admitted (positive balance) and overdraws; everything after waits
	// on the refill rate.
	greedy, err := d.Attach("greedy", Quota{ChipSecondsPerSecond: 1e-3, Burst: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	defer greedy.Detach()
	polite, err := d.Attach("polite", Quota{})
	if err != nil {
		t.Fatal(err)
	}
	defer polite.Detach()
	if err := greedy.LoadJ(js); err != nil {
		t.Fatal(err)
	}
	if err := polite.LoadJ(js); err != nil {
		t.Fatal(err)
	}

	dst := make([]chip.Partial, 16)
	if cycles := greedy.ForcesInto(dst, 0.015625, is[:16], 1.0/64); cycles <= 0 {
		t.Fatal("first dispatch inside the burst did not run")
	}

	// The bucket is now overdrawn; with the clock frozen this request
	// must not dispatch.
	blocked := make([]chip.Partial, 16)
	tk := greedy.Submit(blocked, 0.03125, is[:16], 1.0/64)
	throttledDone := make(chan int64, 1)
	go func() { throttledDone <- tk.Wait() }()

	// The unlimited tenant keeps flowing with bounded latency while the
	// greedy one is parked.
	pd := make([]chip.Partial, 16)
	for k := 0; k < 5; k++ {
		pdone := make(chan struct{})
		go func() {
			polite.ForcesInto(pd, 0.0625, is[:16], 1.0/64)
			close(pdone)
		}()
		select {
		case <-pdone:
		case <-time.After(10 * time.Second):
			t.Fatal("unlimited session starved behind a throttled tenant")
		}
	}
	select {
	case <-throttledDone:
		t.Fatal("overdrawn session dispatched with the clock frozen")
	case <-time.After(20 * time.Millisecond):
	}
	st := d.Stats()
	var g SessionStats
	for _, ss := range st.Sessions {
		if ss.Name == "greedy" {
			g = ss
		}
	}
	if g.Throttled < 1 {
		t.Errorf("greedy session shows %d throttle episodes, want ≥ 1", g.Throttled)
	}
	if g.QueueDepth != 1 {
		t.Errorf("greedy queue depth %d, want the blocked request still queued", g.QueueDepth)
	}

	// Refill far past the debt: the parked request must now dispatch.
	clock.Advance(d, time.Hour)
	select {
	case cycles := <-throttledDone:
		if cycles <= 0 {
			t.Error("throttled request completed with no cycles charged")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("refilled session never dispatched after the clock advanced")
	}
}

// runHermite integrates a seeded Plummer system to the given time on
// the provided backend and returns the final system plus hardware
// cycles consumed.
func runHermite(t testing.TB, be *gbackend.Backend, n int, seed uint64, until float64) (*nbody.System, int64) {
	t.Helper()
	sys := model.Plummer(n, xrand.New(seed))
	it, err := hermite.New(sys, be, hermite.DefaultParams(1.0/64))
	if err != nil {
		t.Fatal(err)
	}
	it.Run(until)
	return sys, be.HWCycles
}

func sameSystem(a, b *nbody.System) bool {
	if a.N != b.N {
		return false
	}
	for i := 0; i < a.N; i++ {
		if a.Pos[i] != b.Pos[i] || a.Vel[i] != b.Vel[i] || a.Acc[i] != b.Acc[i] ||
			a.Jerk[i] != b.Jerk[i] || a.Snap[i] != b.Snap[i] || a.Crack[i] != b.Crack[i] ||
			a.Pot[i] != b.Pot[i] || a.Time[i] != b.Time[i] || a.Step[i] != b.Step[i] {
			return false
		}
	}
	return true
}

// TestSessionEndToEndVsSolo is the tentpole invariant end to end: two
// Hermite integrations sharing a single-array fleet concurrently — with
// all the swaps, coalescing windows and deferred updates that implies —
// must each produce bit-identical trajectories AND identical hardware
// cycle accounting to the same runs executed alone on dedicated arrays.
func TestSessionEndToEndVsSolo(t *testing.T) {
	hw := smallHW()
	const until = 1.0 / 16

	soloA := gbackend.New(board.New(hw))
	sysA, cycA := runHermite(t, soloA, 192, 13, until)
	soloA.Close()
	soloB := gbackend.New(board.New(hw))
	sysB, cycB := runHermite(t, soloB, 96, 21, until)
	soloB.Close()

	d := NewScheduler(Config{Fleet: 1, HW: hw})
	defer d.Close()
	type result struct {
		sys    *nbody.System
		cycles int64
	}
	var wg sync.WaitGroup
	results := make([]result, 2)
	runs := []struct {
		name string
		n    int
		seed uint64
	}{{"tenantA", 192, 13}, {"tenantB", 96, 21}}
	for k, r := range runs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := d.Attach(r.name, Quota{})
			if err != nil {
				t.Error(err)
				return
			}
			be := gbackend.NewBorrowed(s)
			defer be.Close()
			sys, cyc := runHermite(t, be, r.n, r.seed, until)
			results[k] = result{sys, cyc}
		}()
	}
	wg.Wait()

	if !sameSystem(sysA, results[0].sys) {
		t.Error("tenant A trajectory differs from its dedicated-array run: multi-tenancy changed result bits")
	}
	if !sameSystem(sysB, results[1].sys) {
		t.Error("tenant B trajectory differs from its dedicated-array run: multi-tenancy changed result bits")
	}
	if results[0].cycles != cycA {
		t.Errorf("tenant A charged %d cycles, dedicated run consumed %d", results[0].cycles, cycA)
	}
	if results[1].cycles != cycB {
		t.Errorf("tenant B charged %d cycles, dedicated run consumed %d", results[1].cycles, cycB)
	}
}

// TestOverlapThroughput checks that two tenants on a two-array fleet
// actually overlap: aggregate wall time for the pair must beat running
// the same work serialized through one session. Meaningless on a single
// CPU, where the emulated silicon and the host share one core.
func TestOverlapThroughput(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skip("overlap needs ≥ 2 CPUs: emulated boards burn host CPU, so one core serializes everything")
	}
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	hw := smallHW()
	js, is := plummerSet(t, hw, 512, 42)
	const evals = 24
	work := func(s *Session, dst []chip.Partial, rounds int) {
		for k := 0; k < rounds; k++ {
			s.ForcesInto(dst, 0.015625, is[:48], 1.0/64)
		}
	}

	d := NewScheduler(Config{Fleet: 2, HW: hw})
	defer d.Close()
	one, err := d.Attach("serial", Quota{})
	if err != nil {
		t.Fatal(err)
	}
	defer one.Detach()
	if err := one.LoadJ(js); err != nil {
		t.Fatal(err)
	}
	dst := make([]chip.Partial, 48)
	work(one, dst, 2) // warm the slot
	start := time.Now()
	work(one, dst, 2*evals)
	serial := time.Since(start)

	a, err := d.Attach("parA", Quota{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Detach()
	b, err := d.Attach("parB", Quota{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Detach()
	if err := a.LoadJ(js); err != nil {
		t.Fatal(err)
	}
	if err := b.LoadJ(js); err != nil {
		t.Fatal(err)
	}
	da := make([]chip.Partial, 48)
	db := make([]chip.Partial, 48)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); work(a, da, 1) }()
	go func() { defer wg.Done(); work(b, db, 1) }()
	wg.Wait() // warm both slots
	start = time.Now()
	wg.Add(2)
	go func() { defer wg.Done(); work(a, da, evals) }()
	go func() { defer wg.Done(); work(b, db, evals) }()
	wg.Wait()
	overlapped := time.Since(start)

	speedup := float64(serial) / float64(overlapped)
	t.Logf("serialized %v, overlapped %v: %.2fx", serial, overlapped, speedup)
	if speedup < 1.2 {
		t.Errorf("two tenants on two arrays ran %.2fx the serialized rate, want ≥ 1.2x overlap", speedup)
	}
}

// TestMultiSlotResidencyStaysFresh pins the generation tracking behind
// multi-slot residency: concurrent dispatches can leave one session's
// j-image resident on several slots at once, and a later LoadJ or
// UpdateJ write-through must stale-out every copy it did not refresh —
// a single per-session dirty flag cannot say which slot went stale, so
// the second slot would silently evaluate against the old image.
func TestMultiSlotResidencyStaysFresh(t *testing.T) {
	hw := smallHW()
	js1, is := plummerSet(t, hw, 128, 1)
	js2, _ := plummerSet(t, hw, 128, 2)
	eps := 1.0 / 64
	const tm = 0.015625

	d := NewScheduler(Config{Fleet: 2, HW: hw})
	defer d.Close()
	s, err := d.Attach("roamer", Quota{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Detach()

	// evalOn pins the next dispatch to slot k by marking the other slot
	// busy — exactly the state a client-side fast path puts it in — and
	// releases the pin after the evaluation completes.
	evalOn := func(k int) []chip.Partial {
		d.mu.Lock()
		for d.slots[0].busy || d.slots[1].busy || s.serving {
			d.cond.Wait()
		}
		other := d.slots[1-k]
		other.busy = true
		d.mu.Unlock()
		dst := make([]chip.Partial, 8)
		s.ForcesInto(dst, tm, is[:8], eps)
		d.mu.Lock()
		other.busy = false
		landed := d.slots[k].resident == s
		d.cond.Broadcast()
		d.mu.Unlock()
		if !landed {
			t.Fatalf("pinned dispatch did not land on slot %d", k)
		}
		return dst
	}

	if err := s.LoadJ(js1); err != nil {
		t.Fatal(err)
	}
	// Establish residency on both slots under the first image.
	evalOn(0)
	evalOn(1)

	// Replace the whole image: every resident copy is now stale, and a
	// dispatch on either slot must swap the new image in.
	if err := s.LoadJ(js2); err != nil {
		t.Fatal(err)
	}
	arr := board.New(hw)
	defer arr.Close()
	if err := arr.LoadJ(js2); err != nil {
		t.Fatal(err)
	}
	want := make([]chip.Partial, 8)
	arr.ForcesInto(want, tm, is[:8], eps)
	for k := 0; k < 2; k++ {
		got := evalOn(k)
		for q := range want {
			if got[q] != want[q] {
				t.Fatalf("slot %d evaluated against a stale j-image after LoadJ (partial %d differs)", k, q)
			}
		}
	}

	// Write-through: the patch lands on one fresh idle slot and stamps it
	// with the new generation; the other slot's copy is now one generation
	// behind and must reload wholesale at its next dispatch.
	if err := s.UpdateJ(js1[0]); err != nil {
		t.Fatal(err)
	}
	if err := arr.UpdateJ(js1[0]); err != nil {
		t.Fatal(err)
	}
	arr.ForcesInto(want, tm, is[:8], eps)
	for k := 0; k < 2; k++ {
		got := evalOn(k)
		for q := range want {
			if got[q] != want[q] {
				t.Fatalf("slot %d evaluated against a stale j-image after an UpdateJ write-through elsewhere (partial %d differs)", k, q)
			}
		}
	}
}

// TestCloseDrainsQueuedRequests pins Close's drain contract: requests
// parked behind a still-open coalescing window or an overdrawn quota
// bucket at the time of Close must still complete with correct bits
// (the drain bypasses both gates — they only decide when work runs,
// never what it computes), and Detach after Close must return instead
// of waiting forever on a queue no dispatcher will ever serve.
func TestCloseDrainsQueuedRequests(t *testing.T) {
	hw := smallHW()
	js, is := plummerSet(t, hw, 128, 7)
	eps := 1.0 / 64
	const tm = 0.015625
	clock := &manualClock{now: time.Unix(1000, 0)}
	d := NewScheduler(Config{HW: hw, MaxWait: time.Hour, Now: clock.Now})

	held, err := d.Attach("held", Quota{})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := d.Attach("greedy", Quota{ChipSecondsPerSecond: 1e-3, Burst: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if err := held.LoadJ(js); err != nil {
		t.Fatal(err)
	}
	if err := greedy.LoadJ(js); err != nil {
		t.Fatal(err)
	}

	// Overdraw greedy's bucket with a full pipeline load (a full batch
	// dispatches without waiting out the one-hour window).
	ib := d.HW().Chip.IBatch()
	full := make([]chip.Partial, ib)
	if cycles := greedy.ForcesInto(full, tm, is[:ib], eps); cycles <= 0 {
		t.Fatal("burst dispatch inside the quota did not run")
	}

	// With the clock frozen, neither of these can dispatch: one sits in
	// the coalescing window, one behind the overdrawn bucket.
	heldDst := make([]chip.Partial, 4)
	heldTk := held.Submit(heldDst, tm, is[:4], eps)
	gDst := make([]chip.Partial, 4)
	gTk := greedy.Submit(gDst, tm, is[:4], eps)

	done := make(chan struct{})
	go func() {
		heldTk.Wait()
		gTk.Wait()
		close(done)
	}()
	d.Close()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close returned with queued requests still incomplete")
	}

	arr := board.New(hw)
	defer arr.Close()
	if err := arr.LoadJ(js); err != nil {
		t.Fatal(err)
	}
	want := make([]chip.Partial, 4)
	arr.ForcesInto(want, tm, is[:4], eps)
	for q := range want {
		if heldDst[q] != want[q] {
			t.Errorf("window-held request drained with wrong bits (partial %d)", q)
		}
		if gDst[q] != want[q] {
			t.Errorf("throttled request drained with wrong bits (partial %d)", q)
		}
	}

	detached := make(chan struct{})
	go func() {
		held.Detach()
		greedy.Detach()
		close(detached)
	}()
	select {
	case <-detached:
	case <-time.After(10 * time.Second):
		t.Fatal("Detach after Close deadlocked")
	}
}

// TestSessionIDsNeverReused pins id allocation: detaching the
// highest-id session must not hand its id to the next Attach — a stale
// client holding the old id would conflate two different sessions.
func TestSessionIDsNeverReused(t *testing.T) {
	d := NewScheduler(Config{HW: smallHW()})
	defer d.Close()
	a, err := d.Attach("a", Quota{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Detach()
	b, err := d.Attach("b", Quota{})
	if err != nil {
		t.Fatal(err)
	}
	bid := b.ID()
	b.Detach()
	c, err := d.Attach("c", Quota{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Detach()
	if c.ID() == bid {
		t.Fatalf("session id %d reused after its holder detached", bid)
	}
	if c.ID() <= a.ID() {
		t.Errorf("session ids not monotonic: a=%d, later c=%d", a.ID(), c.ID())
	}
}

// TestDetachLeavesFleetRunning pins session lifecycle: detaching one
// tenant must not disturb another's ability to keep dispatching.
func TestDetachLeavesFleetRunning(t *testing.T) {
	hw := smallHW()
	js, is := plummerSet(t, hw, 128, 9)
	d := NewScheduler(Config{HW: hw})
	defer d.Close()
	a, err := d.Attach("early", Quota{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Attach("late", Quota{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Detach()
	if err := a.LoadJ(js); err != nil {
		t.Fatal(err)
	}
	if err := b.LoadJ(js); err != nil {
		t.Fatal(err)
	}
	dst := make([]chip.Partial, 8)
	a.ForcesInto(dst, 0.25, is[:8], 0.5)
	a.Detach()
	a.Detach() // idempotent
	if err := a.LoadJ(js); err == nil {
		t.Error("LoadJ on a detached session succeeded")
	}
	var ref [8]chip.Partial
	b.ForcesInto(ref[:], 0.25, is[:8], 0.5)
	if st := d.Stats(); len(st.Sessions) != 1 || st.Sessions[0].Name != "late" {
		t.Errorf("sessions after detach: %+v, want only the surviving tenant", st.Sessions)
	}
}

// TestWriteThroughDispatchExclusion hammers the interleaving where one
// tenant's UpdateJ write-through (client goroutine operating the slot's
// array unlocked, sl.busy set) overlaps another tenant's force
// submissions on a Fleet=1 scheduler: the crew must treat the busy slot
// as non-dispatchable instead of stomping it with a concurrent
// LoadJ/ForcesInto. Regression for a race the detector caught in the
// end-to-end test; run under tier 2 this pins the exclusion.
func TestWriteThroughDispatchExclusion(t *testing.T) {
	hw := smallHW()
	d := NewScheduler(Config{Fleet: 1, HW: hw})
	defer d.Close()

	writer, err := d.Attach("writer", Quota{})
	if err != nil {
		t.Fatal(err)
	}
	rival, err := d.Attach("rival", Quota{})
	if err != nil {
		t.Fatal(err)
	}

	wjs, wis := plummerSet(t, hw, 32, 3)
	rjs, ris := plummerSet(t, hw, 24, 4)
	if err := writer.LoadJ(wjs); err != nil {
		t.Fatal(err)
	}
	if err := rival.LoadJ(rjs); err != nil {
		t.Fatal(err)
	}

	var wdst, rdst [8]chip.Partial
	// Make writer resident with a first evaluation, then interleave:
	// writer alternates write-throughs with evaluations (each evaluation
	// re-establishes residency) while rival's evaluations evict it.
	writer.ForcesInto(wdst[:], 0, wis[:8], 1.0/64)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := 0; k < 200; k++ {
			rival.ForcesInto(rdst[:], 0, ris[:8], 1.0/64)
		}
	}()
	for k := 0; k < 200; k++ {
		p := wjs[k%len(wjs)]
		if err := writer.UpdateJ(p); err != nil {
			t.Fatal(err)
		}
		if k%8 == 0 {
			writer.BeginPredict(0)
			writer.ForcesInto(wdst[:], 0, wis[:8], 1.0/64)
		}
	}
	<-done

	// The rewrites were identity patches, so writer's forces must still
	// match a dedicated array evaluating the untouched j-set.
	arr := board.New(hw)
	defer arr.Close()
	if err := arr.LoadJ(wjs); err != nil {
		t.Fatal(err)
	}
	var want [8]chip.Partial
	arr.ForcesInto(want[:], 0, wis[:8], 1.0/64)
	writer.ForcesInto(wdst[:], 0, wis[:8], 1.0/64)
	for i := range want {
		if want[i] != wdst[i] {
			t.Fatalf("particle %d diverged under write-through/dispatch contention", i)
		}
	}
}
