package grape6d

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"net"
	"net/rpc"
	"sync"

	"grape6/internal/gbackend"
	"grape6/internal/gfixed"
	"grape6/internal/hermite"
	"grape6/internal/model"
	"grape6/internal/nbody"
	"grape6/internal/snapshot"
	"grape6/internal/xrand"
)

// Server is the grape6d daemon: named Hermite integrations, each a
// tenant of one shared Scheduler, driven remotely over net/rpc. It is
// the service shape of the real GRAPE-6 installation — one machine,
// many users' host programs — with the scheduler keeping the pipelines
// full across them.
type Server struct {
	sched *Scheduler

	mu   sync.Mutex
	sims map[string]*sim
}

// sim is one hosted integration: a scheduler lease, the GRAPE library
// layer over it, and the integrator state. Its own lock serializes
// RPCs against the same session; different sessions proceed in
// parallel (that is the point of the daemon).
type sim struct {
	mu    sync.Mutex
	lease *Session
	be    *gbackend.Backend
	it    *hermite.Integrator
	sys   *nbody.System
	eps   float64
	seed  uint64
}

// NewServer wraps a scheduler in the RPC service. The server takes
// ownership: Close shuts the scheduler down.
func NewServer(sched *Scheduler) *Server {
	return &Server{sched: sched, sims: make(map[string]*sim)}
}

// Close detaches every hosted session and closes the scheduler.
func (sv *Server) Close() {
	sv.mu.Lock()
	sims := make([]*sim, 0, len(sv.sims))
	for _, sm := range sv.sims {
		if sm == nil {
			continue // name reserved by an in-flight start; it rolls back
		}
		sims = append(sims, sm)
	}
	sv.sims = make(map[string]*sim)
	sv.mu.Unlock()
	for _, sm := range sims {
		sm.lease.Detach()
	}
	sv.sched.Close()
}

// Serve accepts RPC connections on ln until it is closed.
func (sv *Server) Serve(ln net.Listener) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("grape6d", &RPC{sv: sv}); err != nil {
		return err
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go srv.ServeConn(conn)
	}
}

func (sv *Server) get(name string) (*sim, error) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	sm, ok := sv.sims[name]
	if !ok || sm == nil { // nil: name reserved, session still being built
		return nil, fmt.Errorf("grape6d: no session %q", name)
	}
	return sm, nil
}

// start builds a hosted integration from an initial system and
// registers it under name. Only the name reservation and the final
// install hold sv.mu: building the integrator runs the full O(N²)
// initial force evaluation, and holding the server lock across it
// would stall every other tenant's RPCs for the duration.
func (sv *Server) start(name string, sys *nbody.System, eps float64, seed uint64, q Quota) (*sim, error) {
	sv.mu.Lock()
	if _, dup := sv.sims[name]; dup {
		sv.mu.Unlock()
		return nil, fmt.Errorf("grape6d: session %q already attached", name)
	}
	sv.sims[name] = nil // reserve the name; built below, outside the lock
	sv.mu.Unlock()
	unreserve := func() {
		sv.mu.Lock()
		if sm, ok := sv.sims[name]; ok && sm == nil {
			delete(sv.sims, name)
		}
		sv.mu.Unlock()
	}

	lease, err := sv.sched.Attach(name, q)
	if err != nil {
		unreserve()
		return nil, err
	}
	be := gbackend.NewBorrowed(lease)
	it, err := hermite.New(sys, be, hermite.DefaultParams(eps))
	if err != nil {
		lease.Detach()
		unreserve()
		return nil, err
	}
	sm := &sim{lease: lease, be: be, it: it, sys: sys, eps: eps, seed: seed}
	sv.mu.Lock()
	if _, still := sv.sims[name]; !still {
		// Server.Close swept the map while we were building: roll back.
		sv.mu.Unlock()
		lease.Detach()
		return nil, fmt.Errorf("grape6d: server closed")
	}
	sv.sims[name] = sm
	sv.mu.Unlock()
	return sm, nil
}

// RPC is the wire-facing method set (net/rpc requires the two-argument
// pointer shape). All state lives on the Server.
type RPC struct{ sv *Server }

// AttachArgs creates a session over a seeded Plummer model — the
// standard workload of the paper's measurements.
type AttachArgs struct {
	Name  string
	N     int
	Seed  uint64
	Eps   float64 // zero: 1/64, the suite's default softening
	Quota Quota
}

// AttachReply reports the created session.
type AttachReply struct {
	N  int
	ID int
}

// Attach implements the session-create RPC.
func (r *RPC) Attach(args *AttachArgs, reply *AttachReply) error {
	if args.N <= 0 {
		return fmt.Errorf("grape6d: attach with N=%d", args.N)
	}
	eps := args.Eps
	if eps == 0 {
		eps = 1.0 / 64
	}
	sys := model.Plummer(args.N, xrand.New(args.Seed))
	sm, err := r.sv.start(args.Name, sys, eps, args.Seed, args.Quota)
	if err != nil {
		return err
	}
	reply.N = sys.N
	reply.ID = sm.lease.ID()
	return nil
}

// StepArgs advances a session by whole block steps.
type StepArgs struct {
	Name   string
	Blocks int
}

// StepReply reports integration progress.
type StepReply struct {
	T        float64
	Steps    int64
	Blocks   int64
	HWCycles int64
}

// Step implements the advance RPC.
func (r *RPC) Step(args *StepArgs, reply *StepReply) error {
	sm, err := r.sv.get(args.Name)
	if err != nil {
		return err
	}
	sm.mu.Lock()
	defer sm.mu.Unlock()
	for k := 0; k < args.Blocks; k++ {
		sm.it.Step()
	}
	reply.T = sm.it.T
	reply.Steps = sm.it.Steps
	reply.Blocks = sm.it.Blocks
	reply.HWCycles = sm.be.HWCycles
	return nil
}

// SnapshotArgs names the session to checkpoint.
type SnapshotArgs struct{ Name string }

// SnapshotReply carries the serialized snapshot stream (magic, version,
// header, particle records, CRC-32 trailer — internal/snapshot format).
type SnapshotReply struct {
	Data []byte
	T    float64
}

// Snapshot implements the checkpoint RPC: the session's state is
// synchronized to its current time and serialized, exactly like a
// dedicated run's core.Simulator.Checkpoint.
func (r *RPC) Snapshot(args *SnapshotArgs, reply *SnapshotReply) error {
	sm, err := r.sv.get(args.Name)
	if err != nil {
		return err
	}
	sm.mu.Lock()
	defer sm.mu.Unlock()
	snap := sm.it.Synchronize(sm.it.T)
	h := snapshot.Header{
		N:    int64(snap.N),
		Time: sm.it.T,
		Eps:  sm.eps,
		Step: sm.it.Steps,
	}
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, h, snap); err != nil {
		return err
	}
	reply.Data = buf.Bytes()
	reply.T = sm.it.T
	return nil
}

// RestoreArgs creates a session from a snapshot stream.
type RestoreArgs struct {
	Name  string
	Data  []byte
	Quota Quota
}

// RestoreReply reports the restored session.
type RestoreReply struct {
	N int
	T float64
}

// Restore implements the checkpoint-restore RPC: the restart
// re-initialises forces and timesteps at the checkpoint time, the same
// cold-restart semantics as core.Restore — so a restored daemon session
// and a restored dedicated run are bit-identical from the first block.
func (r *RPC) Restore(args *RestoreArgs, reply *RestoreReply) error {
	h, sys, err := snapshot.Read(bytes.NewReader(args.Data))
	if err != nil {
		return err
	}
	sm, err := r.sv.start(args.Name, sys, h.Eps, 0, args.Quota)
	if err != nil {
		return err
	}
	sm.mu.Lock()
	sm.it.Steps = h.Step
	sm.mu.Unlock()
	reply.N = sys.N
	reply.T = h.Time
	return nil
}

// DetachArgs names the session to remove.
type DetachArgs struct{ Name string }

// DetachReply is empty.
type DetachReply struct{}

// Detach implements the session-remove RPC. The fleet keeps serving
// the remaining tenants.
func (r *RPC) Detach(args *DetachArgs, reply *DetachReply) error {
	sv := r.sv
	sv.mu.Lock()
	sm, ok := sv.sims[args.Name]
	if sm == nil { // absent, or reserved by an in-flight start
		ok = false
	} else {
		delete(sv.sims, args.Name)
	}
	sv.mu.Unlock()
	if !ok {
		return fmt.Errorf("grape6d: no session %q", args.Name)
	}
	sm.mu.Lock()
	defer sm.mu.Unlock()
	sm.lease.Detach()
	return nil
}

// StatsArgs is empty (scheduler-wide snapshot).
type StatsArgs struct{}

// Stats implements the statistics RPC: per-session cycles and queue
// depths, batch-fill histogram and board occupancy.
func (r *RPC) Stats(args *StatsArgs, reply *Stats) error {
	*reply = r.sv.sched.Stats()
	return nil
}

// HashArgs names the session whose state to fingerprint.
type HashArgs struct{ Name string }

// HashReply carries the state fingerprint and the time it was taken at.
type HashReply struct {
	Hash uint64
	T    float64
}

// Hash implements the determinism probe: an FNV-1a fingerprint over the
// session's synchronized state bits. A dedicated run of the same
// workload to the same time must produce the same value — the smoke
// harness and CI pin the scheduler's bit-exactness contract with it.
func (r *RPC) Hash(args *HashArgs, reply *HashReply) error {
	sm, err := r.sv.get(args.Name)
	if err != nil {
		return err
	}
	sm.mu.Lock()
	defer sm.mu.Unlock()
	reply.Hash = SystemHash(sm.it.Synchronize(sm.it.T))
	reply.T = sm.it.T
	return nil
}

// SystemHash fingerprints every particle's full dynamical state bits.
func SystemHash(sys *nbody.System) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wf := func(f float64) { w(gfixed.FloatBits(f)) }
	wv := func(v [3]float64) { wf(v[0]); wf(v[1]); wf(v[2]) }
	for i := 0; i < sys.N; i++ {
		w(uint64(sys.ID[i]))
		wf(sys.Mass[i])
		wv([3]float64{sys.Pos[i].X, sys.Pos[i].Y, sys.Pos[i].Z})
		wv([3]float64{sys.Vel[i].X, sys.Vel[i].Y, sys.Vel[i].Z})
		wv([3]float64{sys.Acc[i].X, sys.Acc[i].Y, sys.Acc[i].Z})
		wv([3]float64{sys.Jerk[i].X, sys.Jerk[i].Y, sys.Jerk[i].Z})
		wf(sys.Pot[i])
		wf(sys.Time[i])
		wf(sys.Step[i])
	}
	return h.Sum64()
}
