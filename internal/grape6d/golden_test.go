package grape6d

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"testing"

	"grape6/internal/board"
	"grape6/internal/chip"
	"grape6/internal/model"
	"grape6/internal/vec"
	"grape6/internal/xrand"
)

// The golden hashes from board/golden_test.go, duplicated deliberately:
// a scheduler lease must reproduce the dedicated array's bits exactly,
// so the scheduler suite pins against the same constants rather than
// sharing them (a change to either copy is a loud diff).
const (
	seedKernelHash = 0x0f9ec51439e83dd1
	multiStepHash  = 0x12ad9bc6633aaa87
)

// smallHW is the 8-chip functional-test fleet array, matching
// board_test.go's smallConfig.
func smallHW() board.Config {
	c := board.Default
	c.ChipsPerModule = 2
	c.ModulesPerBoard = 2
	c.Boards = 2
	return c
}

// plummerSet builds the standard seeded workload in hardware format
// without touching an array: the j-image to hand a session's LoadJ and
// the time-0 i-particles, identical to board_test.go's loadPlummer.
func plummerSet(t testing.TB, hw board.Config, n int, seed uint64) ([]chip.JParticle, []chip.IParticle) {
	t.Helper()
	f := hw.Chip.Format
	sys := model.Plummer(n, xrand.New(seed))
	js := make([]chip.JParticle, n)
	is := make([]chip.IParticle, n)
	for i := 0; i < n; i++ {
		p, err := chip.MakeJParticle(f, i, 0, sys.Mass[i], sys.Pos[i], sys.Vel[i], vec.Zero, vec.Zero, vec.Zero)
		if err != nil {
			t.Fatal(err)
		}
		js[i] = p
		x, v := chip.PredictParticle(f, &p, 0)
		is[i] = chip.IParticle{X: x, V: v, SelfID: i, ExpAcc: 4, ExpJerk: 6, ExpPot: 6}
	}
	return js, is
}

// partialHasher streams merged partials into the golden FNV-1a hash:
// all seven accumulator sums plus the nearest-neighbour id, in order.
type partialHasher struct {
	h   interface{ Sum64() uint64 }
	w   func(v int64)
	buf [8]byte
}

func newPartialHasher() *partialHasher {
	h := fnv.New64a()
	ph := &partialHasher{h: h}
	ph.w = func(v int64) {
		binary.LittleEndian.PutUint64(ph.buf[:], uint64(v))
		h.Write(ph.buf[:])
	}
	return ph
}

func (ph *partialHasher) add(ps []chip.Partial) {
	for q := range ps {
		p := &ps[q]
		for c := 0; c < 3; c++ {
			ph.w(p.Acc[c].Sum)
			ph.w(p.Jerk[c].Sum)
		}
		ph.w(p.Pot.Sum)
		ph.w(int64(p.NN))
	}
}

// TestLeaseGoldenSeedKernel runs the seed-kernel golden workload through
// a scheduler lease with another tenant resident first, so the golden
// evaluation rides a j-image swap-in — and must still reproduce the
// dedicated array's bits and cycle count exactly.
func TestLeaseGoldenSeedKernel(t *testing.T) {
	hw := smallHW()
	d := NewScheduler(Config{HW: hw})
	defer d.Close()

	noise, err := d.Attach("noise", Quota{})
	if err != nil {
		t.Fatal(err)
	}
	defer noise.Detach()
	golden, err := d.Attach("golden", Quota{})
	if err != nil {
		t.Fatal(err)
	}
	defer golden.Detach()

	njs, nis := plummerSet(t, hw, 64, 5)
	if err := noise.LoadJ(njs); err != nil {
		t.Fatal(err)
	}
	gjs, gis := plummerSet(t, hw, 512, 42)
	if err := golden.LoadJ(gjs); err != nil {
		t.Fatal(err)
	}

	// Make the noise tenant resident so the golden dispatch must swap.
	nd := make([]chip.Partial, 8)
	noise.ForcesInto(nd, 0.25, nis[:8], 0.5)

	dst := make([]chip.Partial, 96)
	cycles := golden.ForcesInto(dst, 0.015625, gis[:96], 1.0/64)

	ph := newPartialHasher()
	ph.add(dst)
	if got := ph.h.Sum64(); got != seedKernelHash {
		t.Errorf("leased seed-kernel hash %#016x, want %#016x: the scheduler path changed result bits", got, seedKernelHash)
	}

	// Solo-identical cycle accounting: the lease must charge exactly what
	// a dedicated attachment reports for the same request.
	arr := board.New(hw)
	defer arr.Close()
	if err := arr.LoadJ(gjs); err != nil {
		t.Fatal(err)
	}
	ref := make([]chip.Partial, 96)
	want := arr.ForcesInto(ref, 0.015625, gis[:96], 1.0/64)
	if cycles != want {
		t.Errorf("leased request charged %d cycles, dedicated array reports %d", cycles, want)
	}

	st := d.Stats()
	for _, as := range st.Arrays {
		if as.Swaps < 2 {
			t.Errorf("slot %d saw %d swaps, want ≥ 2 (noise in, golden in)", as.Slot, as.Swaps)
		}
	}
}

// TestLeaseGoldenMultiStep replicates the 24-block individual-timestep
// golden workload through a lease, with a second tenant evaluating
// between every block on the same single-array fleet — every golden
// block therefore rides a swap-out/swap-in and its corrector writes take
// the deferred dirty-image path. The hash must still match the serial
// pre-optimization capture bit for bit.
func TestLeaseGoldenMultiStep(t *testing.T) {
	hw := smallHW()
	d := NewScheduler(Config{Fleet: 1, HW: hw})
	defer d.Close()

	noise, err := d.Attach("noise", Quota{})
	if err != nil {
		t.Fatal(err)
	}
	defer noise.Detach()
	golden, err := d.Attach("golden", Quota{})
	if err != nil {
		t.Fatal(err)
	}
	defer golden.Detach()

	njs, nis := plummerSet(t, hw, 64, 5)
	if err := noise.LoadJ(njs); err != nil {
		t.Fatal(err)
	}
	js, _ := plummerSet(t, hw, 2048, 77)
	if err := golden.LoadJ(js); err != nil {
		t.Fatal(err)
	}
	f := hw.Chip.Format

	ph := newPartialHasher()
	const nb = 4
	dst := make([]chip.Partial, nb)
	is := make([]chip.IParticle, nb)
	nd := make([]chip.Partial, 8)
	eps := 1.0 / 64
	for step := 0; step < 24; step++ {
		tm := float64(step+1) * math.Ldexp(1, -9)
		lo := (step * nb) % len(js)
		for q := 0; q < nb; q++ {
			j := &js[lo+q]
			x, v := chip.PredictParticle(f, j, tm)
			is[q] = chip.IParticle{X: x, V: v, SelfID: j.ID, ExpAcc: 4, ExpJerk: 6, ExpPot: 6}
		}
		golden.ForcesInto(dst, tm, is, eps)
		ph.add(dst)
		// Corrector stand-in, as in the board golden suite: rewrite the
		// block's memory images with T0 = tm and perturbed acceleration.
		for q := 0; q < nb; q++ {
			j := js[lo+q]
			j.T0 = tm
			x, v := chip.PredictParticle(f, &js[lo+q], tm)
			j.X = x
			j.V = v
			for c := 0; c < 3; c++ {
				j.A[c] = f.Round(j.A[c] + math.Ldexp(float64(step+1), -20))
			}
			js[lo+q] = j
			if err := golden.UpdateJ(j); err != nil {
				t.Fatal(err)
			}
		}
		// Evict the golden tenant: the other session computes a block on
		// the same array, forcing a full j-image reload next golden block.
		noise.ForcesInto(nd, 0.25, nis[:8], 0.5)
	}
	if got := ph.h.Sum64(); got != multiStepHash {
		t.Errorf("leased multi-step hash %#016x, want %#016x: swap-in or deferred-update path changed result bits", got, multiStepHash)
	}

	st := d.Stats()
	if st.Arrays[0].Swaps < 24 {
		t.Errorf("fleet saw %d swaps across the interleaved run, want ≥ 24", st.Arrays[0].Swaps)
	}
}
