// Package grape6d is the multi-tenant GRAPE service scheduler: many
// concurrent simulation sessions multiplexed over one shared fleet of
// emulated board.Array attachments, the way the real GRAPE-6 facility
// queued many users' host programs onto one machine (the system paper,
// astro-ph/0310702, describes exactly this time-sharing — the sustained
// Tflops of the SC'03 paper depend on the silicon never idling while any
// one host is in its O(N) corrector phase).
//
// Three mechanisms keep the pipelines full:
//
//   - Intra-session batch coalescing: a session's small force requests
//     (block timesteps routinely emit 4-16-particle blocks against the
//     48 i-particle pipeline load) are queued, optionally held for a
//     configurable MaxWait window, and packed into full pipeline batches
//     before one hardware dispatch. Each i-particle's result depends only
//     on (i-particle, j-set, t, eps) — per-i accumulators are
//     independent — so packing requests with equal (t, eps) into one
//     evaluation is bit-identical to dispatching them separately.
//
//   - Cross-session phase overlap: while one session is in its host
//     phase (corrector, block scheduling), another session's force
//     evaluation occupies the fleet. Sessions keep a host-side j-image;
//     an array slot swaps a tenant in by reloading that image (the
//     board's LoadJ restages without allocating, and j-sets larger than
//     the chips page through the PR 7 LoadJRange streaming path). The
//     swap changes which silicon computes, never what is computed:
//     chip.WriteJ slot patching is pinned bit-identical to a cold
//     re-predict, so a session that bounced between slots produces the
//     same trajectory as one that owned an array outright.
//
//   - Admission control and per-session chip-time quotas: dispatch
//     charges each session the model chip-seconds of its evaluations
//     (board.Array.TimeFor over the cycle model), debited from a token
//     bucket, so a greedy tenant is throttled instead of starving the
//     rest. Cycle accounting is solo-identical: a coalesced sub-request
//     is charged board.Array.BatchCyclesFor of its own i-count — exactly
//     what a dedicated attachment would have reported.
//
// The non-negotiable invariant: every session's trajectory is
// bit-identical to the same run executed alone on a dedicated array.
// Coalescing and overlap share silicon occupancy, never arithmetic; the
// golden-hash suite pins this through the scheduler path.
//
// A Session implements gbackend.Array, so the host-side GRAPE library
// (gbackend.NewBorrowed) and the Hermite integrator run unchanged on a
// shared fleet — gbackend is a client of the scheduler instead of the
// owner of the boards.
package grape6d

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"grape6/internal/board"
	"grape6/internal/chip"
)

// Config parameterises a Scheduler.
type Config struct {
	// Fleet is the number of board.Array attachments in the shared
	// fleet (default 1). Each is one independently schedulable unit of
	// silicon: a disjoint chip partition in the real machine's terms.
	Fleet int

	// HW is the per-array hardware configuration (zero value:
	// board.Default, the production 4-board attachment).
	HW board.Config

	// MaxWait is the coalescing window: an under-filled pipeline batch
	// (fewer queued i-particles than one 48-slot pipeline load) is held
	// up to this long for more of the session's requests to arrive.
	// Zero dispatches immediately — the right default for synchronous
	// clients, which never have a second request in flight.
	MaxWait time.Duration

	// Now is the clock used for quota accounting and the coalescing
	// window (nil: time.Now). Tests inject a manual clock to make
	// throttling deterministic; after moving a manual clock, call Kick.
	Now func() time.Time
}

// Scheduler multiplexes sessions over the fleet. One dispatcher
// goroutine per array slot picks a runnable session (resident tenant
// first — affinity avoids swaps — then round-robin over the rest),
// swaps its j-image in if needed, and drains its request queue in
// coalesced pipeline batches until the queue empties, the tenant runs
// out of quota, or other tenants are waiting for silicon.
type Scheduler struct {
	hw      board.Config
	ibatch  int // i-particles per pipeline load (chip.Config.IBatch: 48)
	maxWait time.Duration
	now     func() time.Time

	mu       sync.Mutex
	cond     *sync.Cond // dispatchers park here; submits and releases broadcast
	slots    []*slot
	sessions []*Session
	rr       int // round-robin pick cursor
	nextID   int // next session id; monotonic, never reused
	closed   bool
	start    time.Time

	wake   *time.Timer // earliest pending quota-refill / window wake
	wakeAt time.Time

	crews sync.WaitGroup

	fill fillHist
}

// slot is one array of the fleet plus its dispatcher's reusable state.
type slot struct {
	idx      int
	arr      *board.Array
	resident *Session // tenant whose j-image the array holds (nil: none)
	gen      uint64   // generation of the resident image this slot holds
	busy     bool     // a goroutine is operating the array right now
	streak   int      // consecutive affinity serves of the resident

	swaps     int64
	busyNanos int64
	loads     int64 // pipeline loads dispatched through this slot

	// dispatcher-owned scratch, reused across batches (grow-only).
	batchReqs []*forceReq
	batchIs   []chip.IParticle
	batchDst  []chip.Partial
}

// NewScheduler builds the fleet and starts one dispatcher per slot.
func NewScheduler(cfg Config) *Scheduler {
	if cfg.Fleet <= 0 {
		cfg.Fleet = 1
	}
	hw := cfg.HW
	if hw == (board.Config{}) {
		hw = board.Default
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	d := &Scheduler{
		hw:      hw,
		maxWait: cfg.MaxWait,
		now:     now,
		start:   now(),
	}
	d.cond = sync.NewCond(&d.mu)
	d.wake = time.AfterFunc(time.Hour, d.kickLocked)
	d.wake.Stop()
	for i := 0; i < cfg.Fleet; i++ {
		sl := &slot{idx: i, arr: board.New(hw)}
		d.slots = append(d.slots, sl)
	}
	d.ibatch = d.slots[0].arr.Config().Chip.IBatch()
	d.crews.Add(len(d.slots))
	for _, sl := range d.slots {
		go d.crew(sl)
	}
	return d
}

// kickLocked is the wake timer's callback: re-examine schedulability.
func (d *Scheduler) kickLocked() {
	d.mu.Lock()
	d.wakeAt = time.Time{}
	d.cond.Broadcast()
	d.mu.Unlock()
}

// Kick forces the dispatchers to re-examine schedulability. Tests with a
// manual Config.Now clock call it after advancing the clock (the real
// wake timer runs on wall time and cannot see a manual clock move).
func (d *Scheduler) Kick() {
	d.mu.Lock()
	d.cond.Broadcast()
	d.mu.Unlock()
}

// wakeAtLocked arms the shared wake timer for time t, with now the
// caller's clock reading (callers hold mu; the noalloc dispatch path
// cannot read the injectable clock field itself).
//
//grape:noalloc
func (d *Scheduler) wakeAtLocked(now, t time.Time) {
	if !d.wakeAt.IsZero() && !t.Before(d.wakeAt) {
		return
	}
	d.wakeAt = t
	delay := t.Sub(now)
	if delay < 0 {
		delay = 0
	}
	d.wake.Reset(delay)
}

// HW returns the fleet's resolved per-array hardware configuration.
func (d *Scheduler) HW() board.Config { return d.slots[0].arr.Config() }

// TimeFor converts model cycles to seconds of hardware time on one
// fleet array.
func (d *Scheduler) TimeFor(cycles int64) float64 { return d.slots[0].arr.TimeFor(cycles) }

// Attach admits a new session under the given quota (zero Quota:
// unlimited). It fails once the scheduler is closed.
func (d *Scheduler) Attach(name string, q Quota) (*Session, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, fmt.Errorf("grape6d: scheduler closed")
	}
	s := &Session{
		sched: d,
		name:  name,
		quota: q,
		gen:   1, // slot.gen zero-value 0 never matches a fresh session
	}
	s.bucket.init(q, d.now())
	// Session ids come off a monotonic counter, so an id is never reused
	// within one scheduler — a stale client holding a detached session's
	// id can never conflate it with a later tenant.
	s.id = d.nextID
	d.nextID++
	d.sessions = append(d.sessions, s)
	return s, nil
}

// Close drains outstanding requests — everything queued at the time of
// the call is dispatched, bypassing quota throttles and coalescing
// windows, so every Ticket.Wait returns — then stops the dispatchers
// and closes the fleet. Detach remains callable afterwards; requests
// submitted after Close are rejected with a panic.
func (d *Scheduler) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
	d.crews.Wait()
	d.wake.Stop()
	for _, sl := range d.slots {
		sl.arr.Close()
	}
}

// Fleet returns the number of array slots.
func (d *Scheduler) Fleet() int { return len(d.slots) }

// gomaxprocs reports whether more than one OS thread can run — with one,
// cross-session overlap degenerates to interleaving (documented in
// DESIGN.md; the real machine's host CPUs are separate silicon from the
// pipelines, the emulation's are not).
func gomaxprocs() int { return runtime.GOMAXPROCS(0) }
