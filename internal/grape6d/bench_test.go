package grape6d

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"grape6/internal/chip"
)

// BenchmarkSchedulerDispatch measures the steady-state cost of pushing
// one small force request through the scheduler — submit, pick, serve,
// complete — on a resident session with no swap. The CI allocation
// guard pins it at 0 allocs/op: the coalescing fast path must stay
// allocation-free once the free lists and slabs have grown.
func BenchmarkSchedulerDispatch(b *testing.B) {
	hw := smallHW()
	js, is := plummerSet(b, hw, 512, 42)
	d := NewScheduler(Config{HW: hw})
	defer d.Close()
	s, err := d.Attach("bench", Quota{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Detach()
	if err := s.LoadJ(js); err != nil {
		b.Fatal(err)
	}
	dst := make([]chip.Partial, 4)
	for k := 0; k < 16; k++ { // grow free lists and slabs to steady state
		s.ForcesInto(dst, 0.015625, is[:4], 1.0/64)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ForcesInto(dst, 0.015625, is[:4], 1.0/64)
	}
}

// BenchmarkTenancySweep is the multi-tenant throughput sweep: 1, 2, 4
// and 8 sessions sharing a two-array fleet, each session repeatedly
// assembling a small-block step as six 8-particle requests submitted
// together (so the coalescing window can pack them into one pipeline
// load). Reported per configuration: aggregate particle-steps/s across
// all sessions, the mean batch-fill ratio, and the fleet's idle
// fraction — the three numbers the multi-tenant scheduler exists to
// move.
func BenchmarkTenancySweep(b *testing.B) {
	hw := smallHW()
	js, is := plummerSet(b, hw, 512, 42)
	const reqSize = 8
	const reqsPerBlock = 6
	for _, nsess := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("sessions=%d", nsess), func(b *testing.B) {
			d := NewScheduler(Config{Fleet: 2, HW: hw, MaxWait: time.Millisecond})
			defer d.Close()
			sessions := make([]*Session, nsess)
			for k := range sessions {
				s, err := d.Attach(fmt.Sprintf("t%d", k), Quota{})
				if err != nil {
					b.Fatal(err)
				}
				defer s.Detach()
				if err := s.LoadJ(js); err != nil {
					b.Fatal(err)
				}
				sessions[k] = s
			}
			blockStep := func(s *Session, dst []chip.Partial, tks []Ticket) {
				for r := 0; r < reqsPerBlock; r++ {
					lo := r * reqSize
					tks[r] = s.Submit(dst[lo:lo+reqSize], 0.015625, is[lo:lo+reqSize], 1.0/64)
				}
				for r := range tks {
					tks[r].Wait()
				}
			}
			run := func(blocks int) {
				var wg sync.WaitGroup
				for _, s := range sessions {
					wg.Add(1)
					go func() {
						defer wg.Done()
						dst := make([]chip.Partial, reqSize*reqsPerBlock)
						tks := make([]Ticket, reqsPerBlock)
						for k := 0; k < blocks; k++ {
							blockStep(s, dst, tks)
						}
					}()
				}
				wg.Wait()
			}
			run(2) // warm slots, free lists, slabs
			before := d.Stats()
			busyBefore := fleetBusy(before)
			b.ResetTimer()
			start := time.Now()
			run(b.N)
			elapsed := time.Since(start)
			b.StopTimer()
			after := d.Stats()

			psteps := float64(nsess*b.N*reqSize*reqsPerBlock) / elapsed.Seconds()
			b.ReportMetric(psteps, "psteps/s")
			if dd := after.Fill.Dispatches - before.Fill.Dispatches; dd > 0 {
				sumAfter := after.Fill.MeanFill * float64(after.Fill.Dispatches)
				sumBefore := before.Fill.MeanFill * float64(before.Fill.Dispatches)
				b.ReportMetric((sumAfter-sumBefore)/float64(dd), "fill")
			}
			busy := fleetBusy(after) - busyBefore
			wall := time.Duration(d.Fleet()) * elapsed
			idle := 1 - float64(busy)/float64(wall)
			if idle < 0 {
				idle = 0
			}
			b.ReportMetric(idle, "idle")
		})
	}
}

func fleetBusy(st Stats) time.Duration {
	var busy time.Duration
	for _, as := range st.Arrays {
		busy += as.Busy
	}
	return busy
}
