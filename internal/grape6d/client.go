package grape6d

import "net/rpc"

// Client is the thin host-side API of the grape6d daemon: session
// lifecycle (attach, step, detach), snapshot save/restore and the
// statistics endpoint, over net/rpc.
type Client struct {
	c *rpc.Client
}

// Dial connects to a daemon at addr (host:port).
func Dial(addr string) (*Client, error) {
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// Close closes the connection (server-side sessions keep running;
// detach them explicitly).
func (cl *Client) Close() error { return cl.c.Close() }

// Attach creates a session integrating a seeded Plummer model.
func (cl *Client) Attach(args AttachArgs) (AttachReply, error) {
	var reply AttachReply
	err := cl.c.Call("grape6d.Attach", &args, &reply)
	return reply, err
}

// Step advances a session by whole block steps.
func (cl *Client) Step(name string, blocks int) (StepReply, error) {
	var reply StepReply
	err := cl.c.Call("grape6d.Step", &StepArgs{Name: name, Blocks: blocks}, &reply)
	return reply, err
}

// Snapshot checkpoints a session into the internal/snapshot format.
func (cl *Client) Snapshot(name string) (SnapshotReply, error) {
	var reply SnapshotReply
	err := cl.c.Call("grape6d.Snapshot", &SnapshotArgs{Name: name}, &reply)
	return reply, err
}

// Restore creates a session from a snapshot stream.
func (cl *Client) Restore(name string, data []byte, q Quota) (RestoreReply, error) {
	var reply RestoreReply
	err := cl.c.Call("grape6d.Restore", &RestoreArgs{Name: name, Data: data, Quota: q}, &reply)
	return reply, err
}

// Detach removes a session; the fleet keeps serving other tenants.
func (cl *Client) Detach(name string) error {
	var reply DetachReply
	return cl.c.Call("grape6d.Detach", &DetachArgs{Name: name}, &reply)
}

// Stats snapshots the daemon's scheduler statistics.
func (cl *Client) Stats() (Stats, error) {
	var reply Stats
	err := cl.c.Call("grape6d.Stats", &StatsArgs{}, &reply)
	return reply, err
}

// Hash fingerprints a session's synchronized state bits.
func (cl *Client) Hash(name string) (HashReply, error) {
	var reply HashReply
	err := cl.c.Call("grape6d.Hash", &HashArgs{Name: name}, &reply)
	return reply, err
}
