package grape6d

import (
	"fmt"
	"time"

	"grape6/internal/board"
	"grape6/internal/chip"
)

// Session is one tenant of the scheduler. It implements gbackend.Array,
// so a host program built on gbackend (and the Hermite integrator above
// it) runs unchanged over the shared fleet: gbackend.NewBorrowed(sess)
// is a drop-in for gbackend.New(board.New(cfg)), bit for bit.
//
// A session keeps the canonical host-side copy of its j-set in hardware
// format (the j-image). The fleet holds at most Fleet tenants' images in
// silicon at once; a dispatch for a non-resident tenant first swaps its
// image in via the array's allocation-free LoadJ (paging through the
// streaming path when the set exceeds chip memory). Swapping changes
// which silicon computes, never what is computed.
type Session struct {
	sched *Scheduler
	name  string
	id    int
	quota Quota

	// All mutable state below is guarded by sched.mu.
	bucket   bucket
	detached bool
	serving  bool // a dispatcher is operating the fleet for this session
	yield    bool // host phase announced; residency affinity suspended

	// Canonical j-image and its id → slot index. gen counts image
	// generations: it starts at 1 and advances on every change that is
	// not written through to silicon. A slot's copy is current only when
	// slot.gen matches — a session can be resident on several slots at
	// once (concurrent dispatches land wherever silicon is free), and a
	// single staleness flag cannot say *which* copies went stale.
	jimg []chip.JParticle
	byID map[int]int
	gen  uint64

	// Pending force requests (FIFO), their total i-count, and the
	// coalescing-window deadline armed when the queue went non-empty.
	queue    []*forceReq
	queuedNi int
	deadline time.Time

	// Free-listed request objects: steady-state submits allocate nothing.
	free []*forceReq

	// Deferred predictor start (served at the next swap-in/dispatch).
	predictT   float64
	hasPredict bool

	// Statistics (see SessionStats).
	reqs       int64
	batches    int64
	cycles     int64
	throttled  int64 // distinct quota-throttle episodes
	inThrottle bool  // currently in one (edge detector for the counter)
}

// forceReq is one queued force evaluation. The dispatcher fills dst and
// sends the charged cycle count on done (capacity 1, reused across the
// free list, so completion never blocks the dispatch loop).
type forceReq struct {
	dst  []chip.Partial
	is   []chip.IParticle
	t    float64
	eps  float64
	done chan int64
}

// Ticket is a handle on a submitted request. It is a value, not an
// allocation; Wait blocks until the dispatcher has filled the request's
// destination slab and returns the hardware cycles charged.
type Ticket struct {
	s *Session
	r *forceReq
}

// Wait blocks until the request completes and returns the model cycles
// charged — exactly what a dedicated array would have reported for this
// request alone (solo-identical accounting via BatchCyclesFor).
func (tk Ticket) Wait() int64 {
	cycles := <-tk.r.done
	s := tk.s
	d := s.sched
	d.mu.Lock()
	tk.r.dst, tk.r.is = nil, nil
	s.free = append(s.free, tk.r)
	d.mu.Unlock()
	return cycles
}

// Name returns the session's attach name.
func (s *Session) Name() string { return s.name }

// ID returns the session's dense scheduler-unique id.
func (s *Session) ID() int { return s.id }

// LoadJ implements gbackend.Array: it installs ps as the session's
// j-image. The silicon copies are refreshed lazily at the next dispatch
// on each slot (the generation bump marks every resident copy stale).
func (s *Session) LoadJ(ps []chip.JParticle) error {
	d := s.sched
	d.mu.Lock()
	defer d.mu.Unlock()
	// A dispatch in flight reads jimg unlocked during its swap-in; wait it
	// out before mutating the image underneath it.
	for s.serving {
		d.cond.Wait()
	}
	if s.detached {
		return fmt.Errorf("grape6d: session %q detached", s.name)
	}
	if cap(s.jimg) < len(ps) {
		s.jimg = make([]chip.JParticle, len(ps))
	}
	s.jimg = s.jimg[:len(ps)]
	copy(s.jimg, ps)
	if s.byID == nil {
		s.byID = make(map[int]int, len(ps))
	} else {
		clear(s.byID)
	}
	for i, p := range ps {
		if _, dup := s.byID[p.ID]; dup {
			return fmt.Errorf("grape6d: duplicate particle id %d", p.ID)
		}
		s.byID[p.ID] = i
	}
	s.gen++
	return nil
}

// UpdateJ implements gbackend.Array: it rewrites one particle of the
// j-image. If a slot holds the current generation of the image and is
// idle, the write goes through to that silicon immediately (chip.WriteJ
// slot patching is pinned bit-identical to a cold reload) and the slot
// is stamped with the new generation; every other resident copy is now
// one generation behind and the next dispatch there reloads the image
// wholesale — same bits either way.
func (s *Session) UpdateJ(p chip.JParticle) error {
	d := s.sched
	d.mu.Lock()
	// A dispatch in flight reads jimg unlocked during its swap-in; wait it
	// out before mutating the image underneath it.
	for s.serving {
		d.cond.Wait()
	}
	if s.detached {
		d.mu.Unlock()
		return fmt.Errorf("grape6d: session %q detached", s.name)
	}
	k, ok := s.byID[p.ID]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("grape6d: particle %d not loaded", p.ID)
	}
	s.jimg[k] = p
	sl := s.freshIdleSlotLocked()
	s.gen++
	if sl == nil {
		d.mu.Unlock()
		return nil
	}
	sl.gen = s.gen
	sl.busy = true
	d.mu.Unlock()
	err := sl.arr.UpdateJ(p)
	d.mu.Lock()
	sl.busy = false
	if err != nil {
		// The silicon copy is in an unknown state; force a full reload.
		sl.resident, sl.gen = nil, 0
	}
	d.cond.Broadcast()
	d.mu.Unlock()
	return err
}

// freshIdleSlotLocked returns a slot holding the current generation of
// this session's j-image that no goroutine is currently operating, or
// nil. Only such a slot may take a write-through or an immediate
// predictor start — a stale resident copy reloads at dispatch instead.
func (s *Session) freshIdleSlotLocked() *slot {
	for _, sl := range s.sched.slots {
		if sl.resident == s && sl.gen == s.gen && !sl.busy {
			return sl
		}
	}
	return nil
}

// Submit enqueues a force evaluation and returns immediately. Requests
// with equal (t, eps) that are queued together are coalesced into one
// hardware dispatch — bit-identical to dispatching them separately,
// because each i-particle's accumulators are independent. dst and is
// must stay untouched until Wait returns.
func (s *Session) Submit(dst []chip.Partial, t float64, is []chip.IParticle, eps float64) Ticket {
	d := s.sched
	d.mu.Lock()
	if s.detached || d.closed {
		d.mu.Unlock()
		panic(fmt.Sprintf("grape6d: submit on detached session %q", s.name))
	}
	r := s.getReqLocked()
	r.dst, r.is, r.t, r.eps = dst, is, t, eps
	if len(s.queue) == 0 && d.maxWait > 0 {
		now := d.now()
		s.deadline = now.Add(d.maxWait)
		d.wakeAtLocked(now, s.deadline)
	}
	s.queue = append(s.queue, r)
	s.queuedNi += len(is)
	s.reqs++
	d.cond.Broadcast()
	d.mu.Unlock()
	return Ticket{s: s, r: r}
}

func (s *Session) getReqLocked() *forceReq {
	if n := len(s.free); n > 0 {
		r := s.free[n-1]
		s.free = s.free[:n-1]
		return r
	}
	return &forceReq{done: make(chan int64, 1)}
}

// ForcesInto implements gbackend.Array: the synchronous force path,
// Submit followed by Wait. Concurrent callers on different sessions are
// coalesced across the fleet; concurrent callers on one session (e.g.
// the retry rounds of several host threads) coalesce with each other.
func (s *Session) ForcesInto(dst []chip.Partial, t float64, is []chip.IParticle, eps float64) int64 {
	return s.Submit(dst, t, is, eps).Wait()
}

// BeginPredict implements gbackend.Array. If a slot holds the current
// image generation and is idle, the hardware predictor starts there
// immediately (the §6 host/GRAPE overlap); otherwise the start is
// deferred to the next dispatch, where the fused predict+force path
// covers it. Either way the result bits are identical — prediction
// timing never changes values.
func (s *Session) BeginPredict(t float64) {
	d := s.sched
	d.mu.Lock()
	if s.detached {
		d.mu.Unlock()
		return
	}
	if sl := s.freshIdleSlotLocked(); sl != nil {
		sl.busy = true
		d.mu.Unlock()
		sl.arr.BeginPredict(t)
		d.mu.Lock()
		sl.busy = false
		s.hasPredict = false
		d.cond.Broadcast()
		d.mu.Unlock()
		return
	}
	s.predictT, s.hasPredict = t, true
	d.mu.Unlock()
}

// NJ implements gbackend.Array.
func (s *Session) NJ() int {
	s.sched.mu.Lock()
	defer s.sched.mu.Unlock()
	return len(s.jimg)
}

// Config implements gbackend.Array: the fleet's per-array hardware
// configuration.
func (s *Session) Config() board.Config { return s.sched.HW() }

// Yield announces that the session is entering a host phase (corrector,
// block scheduling): its residency affinity is suspended so another
// tenant's evaluation can occupy the silicon meanwhile. Purely a
// scheduling hint — it never changes any session's results.
func (s *Session) Yield() {
	d := s.sched
	d.mu.Lock()
	s.yield = true
	d.cond.Broadcast()
	d.mu.Unlock()
}

// Detach removes the session from the scheduler after its queue drains.
// The fleet keeps running for other tenants. Detach is idempotent.
func (s *Session) Detach() {
	d := s.sched
	d.mu.Lock()
	for len(s.queue) > 0 || s.serving {
		d.cond.Wait()
	}
	if s.detached {
		d.mu.Unlock()
		return
	}
	s.detached = true
	for i, t := range d.sessions {
		if t == s {
			d.sessions = append(d.sessions[:i], d.sessions[i+1:]...)
			break
		}
	}
	for _, sl := range d.slots {
		if sl.resident == s {
			sl.resident, sl.gen = nil, 0
		}
	}
	d.cond.Broadcast()
	d.mu.Unlock()
}

// Close implements gbackend.Array as an alias for Detach, so a borrowed
// gbackend.Backend over a session lease tears down cleanly.
func (s *Session) Close() { s.Detach() }
