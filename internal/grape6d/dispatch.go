package grape6d

import (
	"fmt"
	"time"

	"grape6/internal/chip"
)

// affinityStreak bounds consecutive affinity serves of the resident
// tenant while other tenants have dispatchable work: the resident drains
// its queue without swap churn, but cannot monopolize a slot when the
// rest of the machine is waiting.
const affinityStreak = 4

// crew is one slot's dispatcher goroutine: park until a session has
// dispatchable work, serve one coalesced batch, repeat. All scheduling
// state is examined under d.mu; the hardware section of serve runs
// unlocked so crews on different slots overlap — one session's force
// evaluation occupies this slot's silicon while another session is in
// its host phase (or on another slot).
//
//grape:hotpath
func (d *Scheduler) crew(sl *slot) {
	defer d.crews.Done()
	//grapelint:ignore hotblock one-time acquisition at crew startup; the loop then holds the lock except through cond.Wait parks and serve's unlocked hardware section
	d.mu.Lock()
	for {
		if d.closed && !d.pendingLocked() {
			// Close drains: crews keep serving until every session's queue
			// is empty (readyLocked bypasses quotas and coalescing windows
			// once closed), so no Ticket.Wait is left hanging.
			d.mu.Unlock()
			return
		}
		s := d.pick(sl, d.now())
		if s == nil {
			//grapelint:ignore hotblock the dispatcher's park: taken only when no session has dispatchable work (empty queues, quota debt, or a coalescing window still open)
			d.cond.Wait()
			continue
		}
		d.serve(sl, s)
	}
}

// pick chooses the next session this slot should serve, or nil if none
// is dispatchable now (after arming the wake timer for the earliest
// quota refill or coalescing-window expiry). Resident tenant first —
// affinity avoids j-image swaps — then round-robin over the rest.
// Callers hold d.mu.
//
//grape:noalloc
func (d *Scheduler) pick(sl *slot, now time.Time) *Session {
	if sl.busy {
		// A client-side fast path (UpdateJ write-through or immediate
		// BeginPredict) is operating this slot's array unlocked; it
		// broadcasts when done. Dispatching now would run two operations
		// on the same silicon concurrently.
		return nil
	}
	var wake time.Time
	if r := sl.resident; r != nil && !r.serving && !r.yield && sl.streak < affinityStreak {
		ok, w := r.readyLocked(now)
		if ok {
			sl.streak++
			return r
		}
		wake = mergeWake(wake, w)
	}
	n := len(d.sessions)
	for k := 0; k < n; k++ {
		s := d.sessions[(d.rr+k)%n]
		if s.serving {
			continue
		}
		ok, w := s.readyLocked(now)
		if ok {
			d.rr = (d.rr + k + 1) % n
			sl.streak = 0
			return s
		}
		wake = mergeWake(wake, w)
	}
	if !wake.IsZero() {
		d.wakeAtLocked(now, wake)
	}
	return nil
}

// pendingLocked reports whether any session still has queued requests
// (in-flight batches are excluded: the crew serving one completes it
// before re-checking). Callers hold d.mu.
//
//grape:noalloc
func (d *Scheduler) pendingLocked() bool {
	for _, s := range d.sessions {
		if len(s.queue) > 0 {
			return true
		}
	}
	return false
}

// mergeWake folds candidate re-examination time t into the running
// earliest wake (zero times mean "no wake needed").
//
//grape:noalloc
func mergeWake(wake, t time.Time) time.Time {
	if !t.IsZero() && (wake.IsZero() || t.Before(wake)) {
		return t
	}
	return wake
}

// readyLocked reports whether the session has work that may dispatch
// now; when it does not but will, the second result is the earliest
// time to re-examine (quota refill or coalescing-window expiry).
//
//grape:noalloc
func (s *Session) readyLocked(now time.Time) (bool, time.Time) {
	if len(s.queue) == 0 {
		return false, time.Time{}
	}
	if s.sched.closed {
		// Drain mode: Close dispatches everything still queued right away,
		// bypassing quota throttling and coalescing windows (both gate only
		// when work runs, never what it computes).
		return true, time.Time{}
	}
	if !s.bucket.allow(now) {
		if !s.inThrottle {
			s.inThrottle = true
			s.throttled++
		}
		return false, s.bucket.nextOK(now)
	}
	s.inThrottle = false
	d := s.sched
	// A full pipeline load dispatches immediately; an under-filled batch
	// is held for the coalescing window.
	if s.queuedNi >= d.ibatch || d.maxWait == 0 || !now.Before(s.deadline) {
		return true, time.Time{}
	}
	return false, s.deadline
}

// serve dispatches one coalesced batch for s on sl. Called with d.mu
// held; the hardware section (j-image swap, predictor start, force
// evaluation) runs unlocked, guarded by sl.busy and s.serving so no
// other goroutine touches the slot's array or the session's queue head
// meanwhile. Returns with d.mu held.
//
// Bit-exactness: the batch is the head run of queued requests sharing
// (t, eps). Each i-particle's Partial depends only on (i-particle,
// j-set, t, eps) — per-i accumulators are independent — so one packed
// evaluation writes exactly the bits per request that len(reqs)
// separate dispatches on a dedicated array would have written. Cycle
// accounting is solo-identical the same way: each request is charged
// BatchCyclesFor of its own i-count, what a dedicated attachment's
// ForcesInto would have returned.
//
//grape:hotpath
func (d *Scheduler) serve(sl *slot, s *Session) {
	start := d.now()
	t, eps, ni := d.coalesceLocked(sl, s, start)
	reqs := sl.batchReqs
	loads := (ni + d.ibatch - 1) / d.ibatch

	// The slot's copy is current only if it holds this session's image at
	// its current generation — a session resident on several slots can
	// have fresh and stale copies at once, and LoadJ/UpdateJ bump the
	// generation rather than chase every copy.
	gen := s.gen
	swap := sl.resident != s || sl.gen != gen
	predict, pt := s.hasPredict, s.predictT
	s.hasPredict = false
	s.serving = true
	sl.busy = true
	sl.resident = s
	sl.gen = gen
	d.mu.Unlock()

	if swap {
		if err := sl.arr.LoadJ(s.jimg); err != nil {
			// Loads can only fail on malformed images, a client bug
			// caught at LoadJ staging time; reaching here is internal.
			panic(fmt.Sprintf("grape6d: swap-in for session %q: %v", s.name, err))
		}
	}
	if predict {
		sl.arr.BeginPredict(pt)
	}

	var charged int64
	if len(reqs) == 1 {
		// Single-request fast path: dispatch straight from the caller's
		// slabs, no pack/scatter copies.
		r := reqs[0]
		charged = sl.arr.ForcesInto(r.dst[:len(r.is)], t, r.is, eps)
		//grapelint:ignore hotblock completion handoff on a caller-owned buffered channel (cap 1, one waiter): the send never blocks the dispatch loop
		r.done <- charged
	} else {
		is := sl.batchIs[:0]
		for _, r := range reqs {
			// Grow-only pack slab: reallocates only when a coalesced batch
			// outgrows the high-water mark, never in steady state
			// (BenchmarkSchedulerDispatch locks 0 allocs/op).
			is = append(is, r.is...)
		}
		sl.batchIs = is
		if cap(sl.batchDst) < len(is) {
			sl.batchDst = make([]chip.Partial, len(is))
		}
		dst := sl.batchDst[:len(is)]
		sl.arr.ForcesInto(dst, t, is, eps)
		off := 0
		for _, r := range reqs {
			n := len(r.is)
			copy(r.dst[:n], dst[off:off+n])
			off += n
			solo := sl.arr.BatchCyclesFor(n)
			charged += solo
			//grapelint:ignore hotblock completion handoff on a caller-owned buffered channel (cap 1, one waiter): the send never blocks the dispatch loop
			r.done <- solo
		}
	}

	elapsed := d.now().Sub(start)
	//grapelint:ignore hotblock reacquire after the unlocked hardware section; the slot's crew is the only goroutine that reaches here for this slot
	d.mu.Lock()
	s.bucket.charge(sl.arr.TimeFor(charged))
	s.cycles += charged
	s.batches++
	sl.busyNanos += elapsed.Nanoseconds()
	if swap {
		sl.swaps++
	}
	sl.loads += int64(loads)
	d.fill.add(ni, loads, d.ibatch)
	s.serving = false
	s.yield = false
	sl.busy = false
	d.cond.Broadcast()
}

// coalesceLocked pops the head run of s's queue sharing the head
// request's (t, eps) into sl.batchReqs and returns the shared
// evaluation time, softening, and total i-count. Requests at a
// different time or softening stay queued for the next dispatch —
// merging across (t, eps) would change arithmetic, and the invariant is
// that coalescing shares silicon occupancy, never arithmetic. Callers
// hold d.mu.
//
//grape:noalloc
func (d *Scheduler) coalesceLocked(sl *slot, s *Session, now time.Time) (t, eps float64, ni int) {
	head := s.queue[0]
	t, eps = head.t, head.eps
	reqs := sl.batchReqs[:0]
	k := 0
	for ; k < len(s.queue); k++ {
		r := s.queue[k]
		if r.t != t || r.eps != eps {
			break
		}
		// Grow-only batch list: reallocates only when a coalesced batch
		// holds more requests than ever before, never in steady state.
		reqs = append(reqs, r)
		ni += len(r.is)
	}
	sl.batchReqs = reqs
	rest := copy(s.queue, s.queue[k:])
	for i := rest; i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = s.queue[:rest]
	s.queuedNi -= ni
	if rest > 0 && d.maxWait > 0 {
		// The survivors (different t or eps) open a fresh window.
		s.deadline = now.Add(d.maxWait)
		d.wakeAtLocked(now, s.deadline)
	}
	return t, eps, ni
}
