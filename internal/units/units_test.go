package units

import (
	"math"
	"testing"
)

func TestSofteningCoincidesAt256(t *testing.T) {
	// Section 4: "for N = 256, all three choices of the softening give the
	// same value."
	want := 1.0 / 64.0
	for _, k := range []SofteningKind{SoftConstant, SoftNDependent, SoftOverN} {
		got := Softening(k, 256)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("Softening(%v, 256) = %v, want %v", k, got, want)
		}
	}
}

func TestSofteningConstant(t *testing.T) {
	for _, n := range []int{16, 1024, 1 << 20} {
		if got := Softening(SoftConstant, n); got != 1.0/64.0 {
			t.Errorf("constant softening at N=%d: %v", n, got)
		}
	}
}

func TestSofteningScaling(t *testing.T) {
	// ε = 1/[8(2N)^{1/3}] halves when N grows by 8.
	a := Softening(SoftNDependent, 1000)
	b := Softening(SoftNDependent, 8000)
	if math.Abs(a/b-2) > 1e-12 {
		t.Errorf("N-dependent softening ratio = %v, want 2", a/b)
	}
	// ε = 4/N is inversely proportional to N.
	c := Softening(SoftOverN, 1000)
	d := Softening(SoftOverN, 4000)
	if math.Abs(c/d-4) > 1e-12 {
		t.Errorf("4/N softening ratio = %v, want 4", c/d)
	}
}

func TestSofteningMonotone(t *testing.T) {
	prev := math.Inf(1)
	for _, n := range []int{256, 1024, 4096, 16384, 65536} {
		e := Softening(SoftOverN, n)
		if e >= prev {
			t.Errorf("4/N softening not decreasing at N=%d", n)
		}
		prev = e
	}
}

func TestSpeedEquation(t *testing.T) {
	// Eq. (9): S = 57 N n_steps.
	if got := Speed(1000, 100); got != 57*1000*100 {
		t.Errorf("Speed = %v", got)
	}
}

func TestSpeedPaperHeadline(t *testing.T) {
	// Section 5: "the speed achieved with GRAPE-6 is around 3.3e5 particle
	// steps per second" with ~1.8-2M particles gives ~33-35 Tflops.
	s := Speed(1800000, 3.3e5/1.0) // steps/s already includes all particles
	// The paper's accounting: total steps × N × 57 / time. 3.3e5 steps/s
	// of individual particle steps, each costing N interactions:
	flops := 57.0 * 1.8e6 * 3.3e5
	if Tflops(flops) < 30 || Tflops(flops) > 40 {
		t.Errorf("headline Tflops = %v, want within [30,40]", Tflops(flops))
	}
	_ = s
}

func TestRelaxationTimeGrowsLinearly(t *testing.T) {
	// t_rh ∝ N/log N: doubling N must grow t_rh by less than 2x but more
	// than 1.5x for large N.
	a := RelaxationTime(100000)
	b := RelaxationTime(200000)
	ratio := b / a
	if ratio <= 1.5 || ratio >= 2.0 {
		t.Errorf("relaxation time ratio = %v, want in (1.5, 2)", ratio)
	}
}

func TestRelaxationTimeSmallN(t *testing.T) {
	if RelaxationTime(1) != 0 {
		t.Error("relaxation time for N=1 should be 0")
	}
	if RelaxationTime(2) <= 0 {
		t.Error("relaxation time for N=2 should be positive")
	}
}

func TestConversions(t *testing.T) {
	if Gflops(2.5e9) != 2.5 {
		t.Error("Gflops conversion")
	}
	if Tflops(63.04e12) != 63.04 {
		t.Error("Tflops conversion")
	}
}

func TestSofteningKindString(t *testing.T) {
	if SoftConstant.String() != "eps=1/64" {
		t.Errorf("String = %q", SoftConstant.String())
	}
	if SofteningKind(99).String() != "eps=?" {
		t.Errorf("unknown kind String = %q", SofteningKind(99).String())
	}
	if SoftNDependent.String() == SoftOverN.String() {
		t.Error("distinct kinds share a string")
	}
}

func TestCrossingTime(t *testing.T) {
	if math.Abs(CrossingTime-2.8284271247461903) > 1e-15 {
		t.Errorf("crossing time = %v", CrossingTime)
	}
}
