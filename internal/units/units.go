// Package units implements the standardised N-body ("Heggie") unit system
// used by the paper's benchmarks and the conversions to physical units
// needed by the application examples (Kuiper-belt disk, star clusters).
//
// In Heggie units (Heggie & Mathieu 1986) the gravitational constant G = 1,
// the total mass M = 1, and the total energy of the system E = -1/4. For a
// system in virial equilibrium this implies kinetic energy T = 1/4,
// potential energy W = -1/2, virial radius R_v = 1 and crossing time
// t_cr = 2√2.
package units

import "math"

// G is the gravitational constant in Heggie units.
const G = 1.0

// TotalMass is the system mass in Heggie units.
const TotalMass = 1.0

// TotalEnergy is the standard total energy in Heggie units.
const TotalEnergy = -0.25

// VirialRadius is the virial radius implied by E = -1/4 and M = 1.
const VirialRadius = 1.0

// CrossingTime is the standard crossing time 2√2 in Heggie units.
var CrossingTime = 2 * math.Sqrt2

// RelaxationTime returns the half-mass two-body relaxation time of an
// N-body system in Heggie units, using the standard Spitzer coefficient
// with Coulomb logarithm ln(γN), γ = 0.11. This is the timescale that makes
// collisional simulations expensive (cost ∝ N/log N per relaxation time;
// see the paper's introduction).
func RelaxationTime(n int) float64 {
	if n < 2 {
		return 0
	}
	nf := float64(n)
	lnLambda := math.Log(0.11 * nf)
	if lnLambda < 1 {
		lnLambda = 1
	}
	// t_rh = 0.138 N / ln(0.11 N) × (r_h³/(G M))^{1/2}, r_h ≈ 0.78 R_v.
	rh := 0.78 * VirialRadius
	return 0.138 * nf / lnLambda * math.Sqrt(rh*rh*rh/(G*TotalMass))
}

// Softening choices evaluated in the paper's Section 4.
type SofteningKind int

const (
	// SoftConstant is ε = 1/64.
	SoftConstant SofteningKind = iota
	// SoftNDependent is ε = 1/[8(2N)^{1/3}].
	SoftNDependent
	// SoftOverN is ε = 4/N.
	SoftOverN
)

// String returns the paper's notation for the softening choice.
func (k SofteningKind) String() string {
	switch k {
	case SoftConstant:
		return "eps=1/64"
	case SoftNDependent:
		return "eps=1/[8(2N)^1/3]"
	case SoftOverN:
		return "eps=4/N"
	default:
		return "eps=?"
	}
}

// Softening returns the softening length ε for the given choice and N.
// All three choices coincide (ε = 1/64) at N = 256, as noted in Section 4.
func Softening(k SofteningKind, n int) float64 {
	switch k {
	case SoftConstant:
		return 1.0 / 64.0
	case SoftNDependent:
		return 1.0 / (8.0 * math.Cbrt(2.0*float64(n)))
	case SoftOverN:
		return 4.0 / float64(n)
	default:
		return 1.0 / 64.0
	}
}

// FlopsPerInteraction is the paper's accounting convention: 38 operations
// for the pairwise force and potential (following Warren et al.) plus 19
// for the time derivative, 57 in total (Section 4, eq. 9).
const FlopsPerInteraction = 57

// Speed returns the calculation speed S = 57·N·n_steps of eq. (9) in flops
// per second, given the particle count and the average number of individual
// steps performed per second.
func Speed(n int, stepsPerSecond float64) float64 {
	return FlopsPerInteraction * float64(n) * stepsPerSecond
}

// Gflops and Tflops convert a flops value for reporting.
func Gflops(flops float64) float64 { return flops / 1e9 }

// Tflops converts a flops value to Tflops.
func Tflops(flops float64) float64 { return flops / 1e12 }
