// Package ecc implements the Hamming SECDED (single-error-correct,
// double-error-detect) code behind GRAPE-6's memory interface: the paper
// specifies "a 72-bit (with ECC) data width for transfer between memory
// and the processor chip" (Section 3.4) — 64 data bits protected by 7
// Hamming parity bits plus one overall parity bit.
//
// The codeword layout is the classic extended Hamming arrangement: bit
// position 0 carries the overall parity, positions 2^k (k = 0..6) carry
// the Hamming parities, and the 64 data bits fill the remaining positions
// 3,5,6,7,9,...,71.
package ecc

import "fmt"

// Codeword is a 72-bit ECC word: positions 0..63 in Lo, 64..71 in Hi.
type Codeword struct {
	Lo uint64
	Hi uint8
}

// bit returns position p of the codeword.
func (c Codeword) bit(p uint) uint64 {
	if p < 64 {
		return (c.Lo >> p) & 1
	}
	return uint64(c.Hi>>(p-64)) & 1
}

// setBit sets position p to v (0 or 1).
func (c *Codeword) setBit(p uint, v uint64) {
	if p < 64 {
		c.Lo = c.Lo&^(1<<p) | (v&1)<<p
	} else {
		c.Hi = c.Hi&^(1<<(p-64)) | uint8(v&1)<<(p-64)
	}
}

// FlipBit toggles position p — the fault-injection hook used by the
// memory-scrub tests.
func (c *Codeword) FlipBit(p uint) {
	if p >= 72 {
		panic(fmt.Sprintf("ecc: bit position %d out of range [0,72)", p))
	}
	c.setBit(p, c.bit(p)^1)
}

// dataPositions lists the codeword positions holding data bits, in order:
// every position in [1, 72) that is not a power of two.
var dataPositions = func() [64]uint {
	var out [64]uint
	k := 0
	for p := uint(1); p < 72; p++ {
		if p&(p-1) == 0 {
			continue // parity position
		}
		out[k] = p
		k++
	}
	if k != 64 {
		panic("ecc: layout error")
	}
	return out
}()

// Encode produces the SECDED codeword for 64 data bits.
func Encode(data uint64) Codeword {
	var c Codeword
	for i, p := range dataPositions {
		c.setBit(p, data>>uint(i))
	}
	// Hamming parities: parity at 2^k covers positions with bit k set.
	for k := uint(0); k < 7; k++ {
		var par uint64
		for p := uint(1); p < 72; p++ {
			if p&(1<<k) != 0 && p&(p-1) != 0 {
				par ^= c.bit(p)
			}
		}
		c.setBit(1<<k, par)
	}
	// Overall parity over all 72 bits (even parity).
	var all uint64
	for p := uint(1); p < 72; p++ {
		all ^= c.bit(p)
	}
	c.setBit(0, all)
	return c
}

// Status classifies a decode.
type Status int

const (
	// OK: no error detected.
	OK Status = iota
	// Corrected: a single-bit error was corrected.
	Corrected
	// Uncorrectable: a double-bit (or worse) error was detected.
	Uncorrectable
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Uncorrectable:
		return "uncorrectable"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Decode extracts the data bits, correcting a single-bit error and
// detecting double-bit errors.
func Decode(c Codeword) (data uint64, status Status) {
	// Syndrome: XOR of the positions whose bits are set, over the Hamming
	// region (positions 1..71 including the parity bits themselves).
	var syndrome uint
	for p := uint(1); p < 72; p++ {
		if c.bit(p) == 1 {
			syndrome ^= p
		}
	}
	var overall uint64
	for p := uint(0); p < 72; p++ {
		overall ^= c.bit(p)
	}

	switch {
	case syndrome == 0 && overall == 0:
		status = OK
	case syndrome != 0 && overall == 1:
		if syndrome >= 72 {
			return extract(c), Uncorrectable
		}
		c.FlipBit(syndrome)
		status = Corrected
	case syndrome == 0 && overall == 1:
		// The overall parity bit itself flipped.
		c.setBit(0, c.bit(0)^1)
		status = Corrected
	default: // syndrome != 0, overall == 0: two errors
		return extract(c), Uncorrectable
	}
	return extract(c), status
}

func extract(c Codeword) uint64 {
	var data uint64
	for i, p := range dataPositions {
		data |= c.bit(p) << uint(i)
	}
	return data
}
