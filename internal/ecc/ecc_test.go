package ecc

import (
	"testing"
	"testing/quick"

	"grape6/internal/xrand"
)

func TestRoundTrip(t *testing.T) {
	for _, d := range []uint64{0, 1, 0xffffffffffffffff, 0xdeadbeefcafebabe, 1 << 63} {
		c := Encode(d)
		got, st := Decode(c)
		if st != OK || got != d {
			t.Errorf("round trip %#x: got %#x status %v", d, got, st)
		}
	}
}

func TestPropRoundTrip(t *testing.T) {
	f := func(d uint64) bool {
		got, st := Decode(Encode(d))
		return st == OK && got == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAllSingleBitErrorsCorrected(t *testing.T) {
	// The SECDED guarantee: every one of the 72 single-bit flips must be
	// corrected back to the original data, exhaustively.
	for _, d := range []uint64{0, 0xdeadbeefcafebabe, ^uint64(0)} {
		for p := uint(0); p < 72; p++ {
			c := Encode(d)
			c.FlipBit(p)
			got, st := Decode(c)
			if st != Corrected {
				t.Fatalf("data %#x flip bit %d: status %v, want Corrected", d, p, st)
			}
			if got != d {
				t.Fatalf("data %#x flip bit %d: got %#x", d, p, got)
			}
		}
	}
}

func TestAllDoubleBitErrorsDetected(t *testing.T) {
	// Every pair of flips must be flagged uncorrectable (never silently
	// mis-corrected). Exhaustive over the 72×71/2 pairs for one pattern.
	d := uint64(0x0123456789abcdef)
	for p := uint(0); p < 72; p++ {
		for q := p + 1; q < 72; q++ {
			c := Encode(d)
			c.FlipBit(p)
			c.FlipBit(q)
			_, st := Decode(c)
			if st != Uncorrectable {
				t.Fatalf("flips (%d,%d): status %v, want Uncorrectable", p, q, st)
			}
		}
	}
}

func TestPropSingleBitRandom(t *testing.T) {
	rng := xrand.New(5)
	f := func(d uint64) bool {
		p := uint(rng.Intn(72))
		c := Encode(d)
		c.FlipBit(p)
		got, st := Decode(c)
		return st == Corrected && got == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFlipBitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FlipBit(72) did not panic")
		}
	}()
	c := Encode(0)
	c.FlipBit(72)
}

func TestStatusString(t *testing.T) {
	if OK.String() != "ok" || Corrected.String() != "corrected" || Uncorrectable.String() != "uncorrectable" {
		t.Error("status strings")
	}
	if Status(9).String() == "" {
		t.Error("unknown status should format")
	}
}

func TestCodewordDistinctFromData(t *testing.T) {
	// Parity must actually occupy bits: the codeword is not just the data.
	d := uint64(0xffff)
	c := Encode(d)
	if c.Lo == d && c.Hi == 0 {
		t.Error("codeword identical to data — no parity present")
	}
}

func BenchmarkEncode(b *testing.B) {
	var s Codeword
	for i := 0; i < b.N; i++ {
		s = Encode(uint64(i) * 0x9e3779b97f4a7c15)
	}
	_ = s
}

func BenchmarkDecode(b *testing.B) {
	c := Encode(0xdeadbeefcafebabe)
	for i := 0; i < b.N; i++ {
		Decode(c)
	}
}
