// Package nbody defines the particle-system representation shared by the
// integrator, the GRAPE emulator and the parallel algorithms.
//
// Storage is struct-of-arrays: the Hermite scheme and the emulated hardware
// both stream over per-quantity arrays (positions, velocities, forces,
// derivatives), and SoA keeps those streams dense. Each particle carries
// the full Hermite state: position, velocity, acceleration, jerk, and the
// snap/crackle estimates produced by the corrector, plus its individual
// time and timestep.
package nbody

import (
	"fmt"
	"math"

	"grape6/internal/vec"
)

// System holds N particles in struct-of-arrays layout.
type System struct {
	N int

	Mass []float64
	Pos  []vec.V3
	Vel  []vec.V3

	// Hermite state: force and derivatives at each particle's own time.
	Acc   []vec.V3 // acceleration a
	Jerk  []vec.V3 // da/dt
	Snap  []vec.V3 // d²a/dt², reconstructed by the corrector
	Crack []vec.V3 // d³a/dt³, reconstructed by the corrector
	Pot   []float64

	// Individual-timestep bookkeeping.
	Time []float64 // time at which each particle's state is valid
	Step []float64 // current individual timestep (power of two)

	// ID is a stable particle identity, preserved across redistribution in
	// the parallel algorithms.
	ID []int
}

// New allocates a zeroed system of n particles with IDs 0..n-1.
func New(n int) *System {
	s := &System{
		N:     n,
		Mass:  make([]float64, n),
		Pos:   make([]vec.V3, n),
		Vel:   make([]vec.V3, n),
		Acc:   make([]vec.V3, n),
		Jerk:  make([]vec.V3, n),
		Snap:  make([]vec.V3, n),
		Crack: make([]vec.V3, n),
		Pot:   make([]float64, n),
		Time:  make([]float64, n),
		Step:  make([]float64, n),
		ID:    make([]int, n),
	}
	for i := range s.ID {
		s.ID[i] = i
	}
	return s
}

// Clone returns a deep copy of the system.
func (s *System) Clone() *System {
	c := New(s.N)
	copy(c.Mass, s.Mass)
	copy(c.Pos, s.Pos)
	copy(c.Vel, s.Vel)
	copy(c.Acc, s.Acc)
	copy(c.Jerk, s.Jerk)
	copy(c.Snap, s.Snap)
	copy(c.Crack, s.Crack)
	copy(c.Pot, s.Pot)
	copy(c.Time, s.Time)
	copy(c.Step, s.Step)
	copy(c.ID, s.ID)
	return c
}

// Subset returns a new system containing the particles at the given
// indices, in order. Particle IDs are preserved.
func (s *System) Subset(idx []int) *System {
	c := New(len(idx))
	for k, i := range idx {
		c.Mass[k] = s.Mass[i]
		c.Pos[k] = s.Pos[i]
		c.Vel[k] = s.Vel[i]
		c.Acc[k] = s.Acc[i]
		c.Jerk[k] = s.Jerk[i]
		c.Snap[k] = s.Snap[i]
		c.Crack[k] = s.Crack[i]
		c.Pot[k] = s.Pot[i]
		c.Time[k] = s.Time[i]
		c.Step[k] = s.Step[i]
		c.ID[k] = s.ID[i]
	}
	return c
}

// TotalMass returns the sum of particle masses.
func (s *System) TotalMass() float64 {
	var m float64
	for _, mi := range s.Mass {
		m += mi
	}
	return m
}

// CenterOfMass returns the mass-weighted mean position.
func (s *System) CenterOfMass() vec.V3 {
	var com vec.V3
	var m float64
	for i := 0; i < s.N; i++ {
		com = com.AddScaled(s.Mass[i], s.Pos[i])
		m += s.Mass[i]
	}
	if m == 0 {
		return vec.Zero
	}
	return com.Scale(1 / m)
}

// CenterOfMassVelocity returns the mass-weighted mean velocity.
func (s *System) CenterOfMassVelocity() vec.V3 {
	var cov vec.V3
	var m float64
	for i := 0; i < s.N; i++ {
		cov = cov.AddScaled(s.Mass[i], s.Vel[i])
		m += s.Mass[i]
	}
	if m == 0 {
		return vec.Zero
	}
	return cov.Scale(1 / m)
}

// CenterOnOrigin translates positions and velocities so that the centre of
// mass is at rest at the origin.
func (s *System) CenterOnOrigin() {
	com := s.CenterOfMass()
	cov := s.CenterOfMassVelocity()
	for i := 0; i < s.N; i++ {
		s.Pos[i] = s.Pos[i].Sub(com)
		s.Vel[i] = s.Vel[i].Sub(cov)
	}
}

// KineticEnergy returns Σ ½ m v².
func (s *System) KineticEnergy() float64 {
	var t float64
	for i := 0; i < s.N; i++ {
		t += 0.5 * s.Mass[i] * s.Vel[i].Norm2()
	}
	return t
}

// PotentialEnergy returns the exact softened potential energy
// -Σ_{i<j} m_i m_j / sqrt(r_ij² + ε²), computed by direct summation in
// O(N²). Use only for diagnostics and small N.
func (s *System) PotentialEnergy(eps float64) float64 {
	var w float64
	e2 := eps * eps
	for i := 0; i < s.N; i++ {
		for j := i + 1; j < s.N; j++ {
			r2 := s.Pos[i].Dist2(s.Pos[j]) + e2
			w -= s.Mass[i] * s.Mass[j] / math.Sqrt(r2)
		}
	}
	return w
}

// PotentialEnergyFromPot returns ½ Σ m_i φ_i using the stored per-particle
// potentials (as produced by a GRAPE force evaluation).
func (s *System) PotentialEnergyFromPot() float64 {
	var w float64
	for i := 0; i < s.N; i++ {
		w += 0.5 * s.Mass[i] * s.Pot[i]
	}
	return w
}

// TotalEnergy returns kinetic plus exact potential energy.
func (s *System) TotalEnergy(eps float64) float64 {
	return s.KineticEnergy() + s.PotentialEnergy(eps)
}

// AngularMomentum returns Σ m r×v.
func (s *System) AngularMomentum() vec.V3 {
	var l vec.V3
	for i := 0; i < s.N; i++ {
		l = l.Add(s.Pos[i].Cross(s.Vel[i]).Scale(s.Mass[i]))
	}
	return l
}

// VirialRatio returns |2T/W| for the current state with softening eps.
func (s *System) VirialRatio(eps float64) float64 {
	w := s.PotentialEnergy(eps)
	if w == 0 {
		return math.Inf(1)
	}
	return math.Abs(2 * s.KineticEnergy() / w)
}

// Validate checks structural invariants: array lengths, finite values and
// positive masses. It returns a descriptive error for the first violation.
func (s *System) Validate() error {
	arrays := []struct {
		name string
		n    int
	}{
		{"Mass", len(s.Mass)}, {"Pos", len(s.Pos)}, {"Vel", len(s.Vel)},
		{"Acc", len(s.Acc)}, {"Jerk", len(s.Jerk)}, {"Snap", len(s.Snap)},
		{"Crack", len(s.Crack)}, {"Pot", len(s.Pot)}, {"Time", len(s.Time)},
		{"Step", len(s.Step)}, {"ID", len(s.ID)},
	}
	for _, a := range arrays {
		if a.n != s.N {
			return fmt.Errorf("nbody: len(%s)=%d, want N=%d", a.name, a.n, s.N)
		}
	}
	for i := 0; i < s.N; i++ {
		if s.Mass[i] < 0 || math.IsNaN(s.Mass[i]) || math.IsInf(s.Mass[i], 0) {
			return fmt.Errorf("nbody: particle %d has invalid mass %v", i, s.Mass[i])
		}
		if !s.Pos[i].IsFinite() {
			return fmt.Errorf("nbody: particle %d has non-finite position %v", i, s.Pos[i])
		}
		if !s.Vel[i].IsFinite() {
			return fmt.Errorf("nbody: particle %d has non-finite velocity %v", i, s.Vel[i])
		}
	}
	return nil
}

// MinTime returns the smallest individual particle time, i.e. the time of
// the next block to integrate.
func (s *System) MinTime() float64 {
	if s.N == 0 {
		return 0
	}
	m := math.Inf(1)
	for i := 0; i < s.N; i++ {
		if t := s.Time[i] + s.Step[i]; t < m {
			m = t
		}
	}
	return m
}
