package nbody

import (
	"math"
	"testing"

	"grape6/internal/xrand"
)

// scanNext is the retired O(N) selection the scheduler must reproduce
// bit-for-bit: System.MinTime plus the exact-equality membership scan.
func scanNext(sys *System) (float64, []int) {
	t := sys.MinTime()
	var block []int
	for i := 0; i < sys.N; i++ {
		if sys.Time[i]+sys.Step[i] == t {
			block = append(block, i)
		}
	}
	return t, block
}

// distinctExps counts the distinct step exponents present — the
// occupancy the scheduler must report.
func distinctExps(sys *System) int {
	seen := map[int]bool{}
	for i := 0; i < sys.N; i++ {
		_, e := math.Frexp(sys.Step[i])
		seen[e] = true
	}
	return len(seen)
}

// stepSystem builds a system with commensurate power-of-two steps in
// [2^minExp, 2^maxExp] and Time 0 (every time is a multiple of every
// step, as after integrator startup).
func stepSystem(n int, minExp, maxExp int, rng *xrand.Source) *System {
	sys := New(n)
	for i := 0; i < n; i++ {
		e := minExp + rng.Intn(maxExp-minExp+1)
		sys.Step[i] = math.Ldexp(1, e)
	}
	return sys
}

// advance plays one block through both the scheduler and the reference
// scan, failing on any divergence, and applies a random commensurate
// step update (shrink ×1/2, grow ×2 when allowed, or keep) to each
// fired particle — the same moves hermite.NextStep can make.
func advance(t *testing.T, sys *System, s *BlockSched, rng *xrand.Source, block []int) []int {
	t.Helper()
	wantT, wantBlock := scanNext(sys)
	if got := s.NextTime(); got != wantT {
		t.Fatalf("NextTime = %v, want %v", got, wantT)
	}
	block = s.AppendBlock(sys, wantT, block[:0])
	if len(block) != len(wantBlock) {
		t.Fatalf("block size %d, want %d at t=%v", len(block), len(wantBlock), wantT)
	}
	for k := range block {
		if block[k] != wantBlock[k] {
			t.Fatalf("block[%d] = %d, want %d at t=%v", k, block[k], wantBlock[k], wantT)
		}
	}
	for _, i := range block {
		sys.Time[i] = wantT
		dt := sys.Step[i]
		switch rng.Intn(4) {
		case 0:
			dt /= 2
		case 1:
			// grow only onto a commensurate boundary, like NextStep
			if wantT == math.Trunc(wantT/(2*dt))*(2*dt) {
				dt *= 2
			}
		}
		sys.Step[i] = dt
		s.Rebin(sys, i)
	}
	return block
}

func TestBlockSchedMatchesScan(t *testing.T) {
	rng := xrand.New(41)
	sys := stepSystem(500, -12, -4, rng)
	s := NewBlockSched(sys)
	var block []int
	for step := 0; step < 2000; step++ {
		block = advance(t, sys, s, rng, block)
		if step%97 == 0 {
			if got, want := s.Bins(), distinctExps(sys); got != want {
				t.Fatalf("step %d: Bins() = %d, want %d", step, got, want)
			}
		}
	}
}

func TestBlockSchedRebuild(t *testing.T) {
	rng := xrand.New(7)
	sys := stepSystem(200, -10, -6, rng)
	s := NewBlockSched(sys)
	var block []int
	for step := 0; step < 100; step++ {
		block = advance(t, sys, s, rng, block)
	}
	// Wholesale rewrite: new steps, new times, then Rebuild.
	for i := 0; i < sys.N; i++ {
		e := -9 + rng.Intn(4)
		sys.Step[i] = math.Ldexp(1, e)
		sys.Time[i] = math.Trunc(sys.Time[i]/sys.Step[i]) * sys.Step[i]
	}
	s.Rebuild(sys)
	for step := 0; step < 100; step++ {
		block = advance(t, sys, s, rng, block)
	}
}

func TestBlockSchedBinGrowth(t *testing.T) {
	// Start with one narrow bin and force growth in both directions via
	// Rebin: large steps above, tiny steps below the initial exponent.
	sys := New(8)
	for i := range sys.Step {
		sys.Step[i] = math.Ldexp(1, -8)
	}
	s := NewBlockSched(sys)
	if s.Bins() != 1 {
		t.Fatalf("Bins() = %d, want 1", s.Bins())
	}
	rng := xrand.New(3)
	var block []int
	exps := []int{-40, 10, -8, -20, 2, -8, -33, -1}
	t0 := s.NextTime()
	block = s.AppendBlock(sys, t0, block[:0])
	if len(block) != sys.N {
		t.Fatalf("first block size %d, want %d", len(block), sys.N)
	}
	for k, i := range block {
		sys.Time[i] = t0
		sys.Step[i] = math.Ldexp(1, exps[k])
		// keep Time commensurate with the new step
		sys.Time[i] = math.Trunc(sys.Time[i]/sys.Step[i]) * sys.Step[i]
		s.Rebin(sys, i)
	}
	if got, want := s.Bins(), distinctExps(sys); got != want {
		t.Fatalf("Bins() = %d, want %d", got, want)
	}
	total := 0
	s.EachBin(func(exp, count int) {
		total += count
		found := false
		for i := 0; i < sys.N; i++ {
			if _, e := math.Frexp(sys.Step[i]); e-1 == exp {
				found = true
			}
		}
		if !found {
			t.Fatalf("EachBin reported exponent %d not present in system", exp)
		}
	})
	if total != sys.N {
		t.Fatalf("EachBin counts sum to %d, want %d", total, sys.N)
	}
	for step := 0; step < 200; step++ {
		block = advance(t, sys, s, rng, block)
	}
}

func TestBlockSchedRejectsBadStep(t *testing.T) {
	for _, bad := range []float64{0, -0.25, 0.3, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("step %v: expected panic", bad)
				}
			}()
			sys := New(1)
			sys.Step[0] = bad
			NewBlockSched(sys)
		}()
	}
}

func TestBlockSchedSteadyStateAllocs(t *testing.T) {
	rng := xrand.New(11)
	sys := stepSystem(256, -10, -5, rng)
	s := NewBlockSched(sys)
	block := make([]int, 0, sys.N)
	// Warm until the bin table and member slices reach steady state.
	for step := 0; step < 500; step++ {
		tn := s.NextTime()
		block = s.AppendBlock(sys, tn, block[:0])
		for _, i := range block {
			sys.Time[i] = tn
			s.Rebin(sys, i)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		tn := s.NextTime()
		block = s.AppendBlock(sys, tn, block[:0])
		for _, i := range block {
			sys.Time[i] = tn
			s.Rebin(sys, i)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state block step allocates %.1f times, want 0", allocs)
	}
}
