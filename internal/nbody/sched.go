package nbody

import (
	"fmt"
	"math"
	"slices"
)

// BlockSched is a bucketed power-of-two block-timestep scheduler.
//
// The Hermite scheme constrains every individual timestep to a power of
// two and every particle time to a multiple of its step ("block steps",
// Makino & Aarseth 1992). That makes the step exponent a natural bucket
// key: all particles sharing step 2^e also share their next due time,
// because due = Time + 2^e is the unique multiple of 2^e in the window
// (t_cur, t_cur + 2^e]. A bin therefore carries a single due time, and
// picking the next block is a min over ~30 occupied bins instead of the
// O(N) scan System.MinTime performs — per block step the scheduler does
// O(active block) work plus O(bins), and re-binning a corrected particle
// is O(1).
//
// Correctness does not lean on the shared-due invariant: AppendBlock
// re-checks the exact due-time equality per member and recomputes the
// residual bin due, so a bin whose members have drifted apart (e.g. a
// system initialised at non-commensurate times) still schedules
// correctly, merely degrading that bin to O(members).
type BlockSched struct {
	base int        // step exponent of bins[0]
	bins []schedBin // bins[e-base] holds the particles with step 2^e

	occupied int // number of non-empty bins

	binOf []int16 // particle -> step exponent, schedNone when absent
	pos   []int32 // particle -> index in its bin's members slice
}

type schedBin struct {
	members []int32
	due     float64 // min over members of Time+Step; +Inf when empty
}

// schedNone marks a particle not currently held by any bin.
const schedNone = int16(math.MinInt16)

// NewBlockSched builds a scheduler over the system's current Time/Step
// arrays. Every particle must already carry a positive power-of-two step
// (integrators assign startup steps before constructing the scheduler).
func NewBlockSched(sys *System) *BlockSched {
	s := &BlockSched{}
	s.Rebuild(sys)
	return s
}

// Rebuild discards all bin state and re-inserts every particle, an O(N)
// reset for wholesale Time/Step rewrites (snapshot restore, tests).
func (s *BlockSched) Rebuild(sys *System) {
	if cap(s.binOf) < sys.N {
		s.binOf = make([]int16, sys.N)
		s.pos = make([]int32, sys.N)
	}
	s.binOf = s.binOf[:sys.N]
	s.pos = s.pos[:sys.N]
	for e := range s.bins {
		s.bins[e].members = s.bins[e].members[:0]
		s.bins[e].due = math.Inf(1)
	}
	s.occupied = 0
	for i := range s.binOf {
		s.binOf[i] = schedNone
	}
	for i := 0; i < sys.N; i++ {
		s.insert(sys, i)
	}
}

// stepExp returns e for step = 2^e, panicking on anything the block
// scheme cannot represent (zero, negative, non-power-of-two, inf, NaN).
func stepExp(step float64) int {
	f, e := math.Frexp(step)
	if f != 0.5 {
		//grapelint:ignore noallocdeep cold panic path: a malformed timestep is an integrator bug and the run dies here
		panic(fmt.Sprintf("nbody: timestep %v is not a positive power of two", step))
	}
	return e - 1
}

// NextTime returns the earliest due time over all bins — bit-identical
// to System.MinTime, in O(bins) instead of O(N).
//
//grape:noalloc
func (s *BlockSched) NextTime() float64 {
	next := math.Inf(1)
	for e := range s.bins {
		if d := s.bins[e].due; d < next {
			next = d
		}
	}
	return next
}

// AppendBlock appends to dst the particles due exactly at t, in
// ascending index order — the same membership and order the retired
// O(N) scan produced. Bins whose due time fires are swept once;
// members that do not match the exact equality test stay put and the
// bin's residual due is recomputed from them. The caller must follow
// up with Rebin for every returned particle once its Time and Step
// are updated (the fired bins' due times assume those members leave).
//
//grape:noalloc
func (s *BlockSched) AppendBlock(sys *System, t float64, dst []int) []int {
	for e := range s.bins {
		b := &s.bins[e]
		if b.due != t {
			continue
		}
		rest := math.Inf(1)
		for _, m := range b.members {
			i := int(m)
			if d := sys.Time[i] + sys.Step[i]; d == t {
				dst = append(dst, i)
			} else if d < rest {
				rest = d
			}
		}
		b.due = rest
	}
	slices.Sort(dst)
	return dst
}

// Rebin moves particle i to the bin matching its current step and
// folds its new due time in. Call it once per particle returned by the
// last AppendBlock, after the corrector writes Time[i] and Step[i];
// each call is O(1).
//
//grape:noalloc
func (s *BlockSched) Rebin(sys *System, i int) {
	s.remove(i)
	s.insert(sys, i)
}

// Bins returns the number of occupied timestep bins — the block
// hierarchy depth the paper's Figure 9 histograms correspond to.
func (s *BlockSched) Bins() int { return s.occupied }

// EachBin calls f(exp, count) for every occupied bin in increasing
// step-exponent order.
func (s *BlockSched) EachBin(f func(exp, count int)) {
	for e := range s.bins {
		if n := len(s.bins[e].members); n > 0 {
			f(s.base+e, n)
		}
	}
}

//grape:noalloc
func (s *BlockSched) insert(sys *System, i int) {
	e := stepExp(sys.Step[i])
	due := sys.Time[i] + sys.Step[i]
	b := s.binFor(e)
	if len(b.members) == 0 {
		s.occupied++
		b.due = due
	} else if due < b.due {
		b.due = due
	}
	s.pos[i] = int32(len(b.members))
	b.members = append(b.members, int32(i))
	s.binOf[i] = int16(e)
}

//grape:noalloc
func (s *BlockSched) remove(i int) {
	e := int(s.binOf[i])
	if e == int(schedNone) {
		panic("nbody: Rebin of unscheduled particle")
	}
	b := &s.bins[e-s.base]
	last := len(b.members) - 1
	p := s.pos[i]
	m := b.members[last]
	b.members[p] = m
	s.pos[m] = p
	b.members = b.members[:last]
	s.binOf[i] = schedNone
	if last == 0 {
		s.occupied--
		b.due = math.Inf(1)
	}
}

// binFor returns the bin for step exponent e, growing the bin table in
// either direction as needed. Growth doubles, so re-basing stays
// amortized O(1) even as steps shrink over a run.
func (s *BlockSched) binFor(e int) *schedBin {
	if len(s.bins) == 0 {
		s.base = e
		s.bins = append(s.bins, schedBin{due: math.Inf(1)})
	}
	if e < s.base {
		grow := s.base - e
		if grow < len(s.bins) {
			grow = len(s.bins)
		}
		old := len(s.bins)
		//grapelint:ignore noallocdeep grow-only bin table: extends only when a particle reaches a new smallest power-of-two step, never in steady state
		s.bins = append(s.bins, make([]schedBin, grow)...)
		copy(s.bins[grow:], s.bins[:old])
		for k := 0; k < grow; k++ {
			s.bins[k] = schedBin{due: math.Inf(1)}
		}
		s.base -= grow
	}
	for e >= s.base+len(s.bins) {
		s.bins = append(s.bins, schedBin{due: math.Inf(1)})
	}
	return &s.bins[e-s.base]
}
