package nbody

import (
	"math"
	"testing"
	"testing/quick"

	"grape6/internal/vec"
)

// twoBody returns a simple equal-mass two-body system separated by d along
// x, each with mass m, at rest.
func twoBody(m, d float64) *System {
	s := New(2)
	s.Mass[0], s.Mass[1] = m, m
	s.Pos[0] = vec.New(-d/2, 0, 0)
	s.Pos[1] = vec.New(d/2, 0, 0)
	return s
}

func TestNewIDs(t *testing.T) {
	s := New(5)
	for i, id := range s.ID {
		if id != i {
			t.Errorf("ID[%d] = %d", i, id)
		}
	}
	if err := s.Validate(); err != nil {
		t.Errorf("fresh system invalid: %v", err)
	}
}

func TestCloneIndependent(t *testing.T) {
	s := twoBody(1, 2)
	c := s.Clone()
	c.Pos[0] = vec.New(99, 0, 0)
	c.Mass[1] = 42
	if s.Pos[0].X == 99 || s.Mass[1] == 42 {
		t.Error("Clone shares storage with original")
	}
}

func TestSubset(t *testing.T) {
	s := New(4)
	for i := range s.Mass {
		s.Mass[i] = float64(i + 1)
		s.Pos[i] = vec.New(float64(i), 0, 0)
	}
	sub := s.Subset([]int{3, 1})
	if sub.N != 2 {
		t.Fatalf("Subset N = %d", sub.N)
	}
	if sub.ID[0] != 3 || sub.ID[1] != 1 {
		t.Errorf("Subset IDs = %v", sub.ID)
	}
	if sub.Mass[0] != 4 || sub.Mass[1] != 2 {
		t.Errorf("Subset masses = %v", sub.Mass)
	}
}

func TestTotalMass(t *testing.T) {
	s := twoBody(0.5, 1)
	if got := s.TotalMass(); got != 1 {
		t.Errorf("TotalMass = %v", got)
	}
}

func TestCenterOfMass(t *testing.T) {
	s := New(2)
	s.Mass[0], s.Mass[1] = 1, 3
	s.Pos[0] = vec.New(0, 0, 0)
	s.Pos[1] = vec.New(4, 0, 0)
	if got := s.CenterOfMass(); got != vec.New(3, 0, 0) {
		t.Errorf("CenterOfMass = %v", got)
	}
}

func TestCenterOnOrigin(t *testing.T) {
	s := New(3)
	for i := range s.Mass {
		s.Mass[i] = 1
		s.Pos[i] = vec.New(float64(i)+1, 2, 3)
		s.Vel[i] = vec.New(0, float64(i), 0)
	}
	s.CenterOnOrigin()
	if com := s.CenterOfMass(); com.MaxAbs() > 1e-14 {
		t.Errorf("COM after centering = %v", com)
	}
	if cov := s.CenterOfMassVelocity(); cov.MaxAbs() > 1e-14 {
		t.Errorf("COM velocity after centering = %v", cov)
	}
}

func TestKineticEnergy(t *testing.T) {
	s := New(1)
	s.Mass[0] = 2
	s.Vel[0] = vec.New(3, 0, 0)
	if got := s.KineticEnergy(); got != 9 {
		t.Errorf("KineticEnergy = %v", got)
	}
}

func TestPotentialEnergyTwoBody(t *testing.T) {
	s := twoBody(1, 2)
	// W = -m1 m2 / r = -1/2 without softening.
	if got := s.PotentialEnergy(0); math.Abs(got+0.5) > 1e-15 {
		t.Errorf("PotentialEnergy = %v, want -0.5", got)
	}
	// With softening ε = 2: W = -1/sqrt(4+4).
	want := -1 / math.Sqrt(8)
	if got := s.PotentialEnergy(2); math.Abs(got-want) > 1e-15 {
		t.Errorf("softened PotentialEnergy = %v, want %v", got, want)
	}
}

func TestPotentialEnergyFromPotMatchesDirect(t *testing.T) {
	s := New(3)
	pos := []vec.V3{vec.New(0, 0, 0), vec.New(1, 0, 0), vec.New(0, 2, 0)}
	for i := range pos {
		s.Mass[i] = float64(i + 1)
		s.Pos[i] = pos[i]
	}
	eps := 0.1
	// Fill per-particle potentials by direct summation.
	for i := 0; i < 3; i++ {
		var p float64
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			p -= s.Mass[j] / math.Sqrt(s.Pos[i].Dist2(s.Pos[j])+eps*eps)
		}
		s.Pot[i] = p
	}
	a := s.PotentialEnergyFromPot()
	b := s.PotentialEnergy(eps)
	if math.Abs(a-b) > 1e-14 {
		t.Errorf("PotentialEnergyFromPot = %v, direct = %v", a, b)
	}
}

func TestAngularMomentum(t *testing.T) {
	s := New(1)
	s.Mass[0] = 2
	s.Pos[0] = vec.New(1, 0, 0)
	s.Vel[0] = vec.New(0, 3, 0)
	if got := s.AngularMomentum(); got != vec.New(0, 0, 6) {
		t.Errorf("AngularMomentum = %v", got)
	}
}

func TestVirialRatioCircular(t *testing.T) {
	// Two bodies in a circular orbit: exactly virialised, |2T/W| = 1.
	s := twoBody(0.5, 1)
	// v_circ for reduced problem: each orbits COM at r=0.5 with
	// v² = G m_other · ... — easier: total T = 1/2 |W| for circular orbit.
	w := s.PotentialEnergy(0)
	vtot := math.Sqrt(-w / 1.0) // T = Σ ½ m v² with both speeds equal v/√2 each... set directly:
	// Set speeds so that T = -W/2.
	speed := math.Sqrt(-w / 2 / (0.5 * 0.5 * 2)) // T = 2 × ½ m v² = m v² = 0.5 v²
	s.Vel[0] = vec.New(0, speed, 0)
	s.Vel[1] = vec.New(0, -speed, 0)
	if got := s.VirialRatio(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("VirialRatio = %v, want 1", got)
	}
	_ = vtot
}

func TestValidateCatchesBadMass(t *testing.T) {
	s := New(2)
	s.Mass[1] = -1
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted negative mass")
	}
	s.Mass[1] = math.NaN()
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted NaN mass")
	}
}

func TestValidateCatchesBadPosition(t *testing.T) {
	s := New(2)
	s.Pos[0] = vec.New(math.Inf(1), 0, 0)
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted infinite position")
	}
}

func TestValidateCatchesLengthMismatch(t *testing.T) {
	s := New(2)
	s.Pot = s.Pot[:1]
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted length mismatch")
	}
}

func TestMinTime(t *testing.T) {
	s := New(3)
	s.Time = []float64{0, 0.5, 0.25}
	s.Step = []float64{1, 0.125, 0.25}
	// next times: 1, 0.625, 0.5 → min 0.5
	if got := s.MinTime(); got != 0.5 {
		t.Errorf("MinTime = %v", got)
	}
	if got := New(0).MinTime(); got != 0 {
		t.Errorf("MinTime(empty) = %v", got)
	}
}

// Property: Subset of all indices preserves everything.
func TestPropSubsetIdentity(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed)%16 + 2
		s := New(n)
		for i := 0; i < n; i++ {
			s.Mass[i] = float64(i + 1)
			s.Pos[i] = vec.New(float64(i), float64(i*i), -float64(i))
			s.Time[i] = float64(i) / 8
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sub := s.Subset(idx)
		for i := 0; i < n; i++ {
			if sub.Mass[i] != s.Mass[i] || sub.Pos[i] != s.Pos[i] || sub.Time[i] != s.Time[i] || sub.ID[i] != s.ID[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: kinetic energy is invariant under centering only when the COM
// velocity is already zero; and centering always zeroes the COM.
func TestPropCenteringZeroesCOM(t *testing.T) {
	f := func(seed int64) bool {
		n := 5
		s := New(n)
		x := uint64(seed)
		next := func() float64 {
			x = x*6364136223846793005 + 1442695040888963407
			return float64(int64(x>>12))/float64(1<<51) - 1
		}
		for i := 0; i < n; i++ {
			s.Mass[i] = math.Abs(next()) + 0.1
			s.Pos[i] = vec.New(next(), next(), next())
			s.Vel[i] = vec.New(next(), next(), next())
		}
		s.CenterOnOrigin()
		return s.CenterOfMass().MaxAbs() < 1e-12 && s.CenterOfMassVelocity().MaxAbs() < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
