package sched

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"grape6/internal/hermite"
	"grape6/internal/units"
)

// Trace persistence: measured block traces are the calibration artefacts
// of the reproduction (DESIGN.md §3); saving them lets the expensive
// functional runs be done once and replayed by the timing simulator.

// traceMagic identifies a trace stream ("G6TR").
const traceMagic = 0x47365452

// traceVersion is the current format version.
const traceVersion = 1

// Write serialises the trace with a CRC-32 trailer.
func (t *Trace) Write(w io.Writer) error {
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)

	hdr := []interface{}{
		uint32(traceMagic), uint32(traceVersion),
		int64(t.N), int64(t.Kind), t.Eps, t.Duration, int64(len(t.Blocks)),
	}
	for _, v := range hdr {
		if err := binary.Write(mw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, b := range t.Blocks {
		if err := binary.Write(mw, binary.LittleEndian, b.Time); err != nil {
			return err
		}
		if err := binary.Write(mw, binary.LittleEndian, int64(b.Size)); err != nil {
			return err
		}
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// ReadTrace deserialises a trace, verifying magic, version and checksum.
func ReadTrace(r io.Reader) (*Trace, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)

	var magic, version uint32
	if err := binary.Read(tr, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("sched: reading magic: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("sched: bad trace magic %#x", magic)
	}
	if err := binary.Read(tr, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != traceVersion {
		return nil, fmt.Errorf("sched: unsupported trace version %d", version)
	}
	var n, kind, blocks int64
	out := &Trace{}
	if err := binary.Read(tr, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(tr, binary.LittleEndian, &kind); err != nil {
		return nil, err
	}
	if err := binary.Read(tr, binary.LittleEndian, &out.Eps); err != nil {
		return nil, err
	}
	if err := binary.Read(tr, binary.LittleEndian, &out.Duration); err != nil {
		return nil, err
	}
	if err := binary.Read(tr, binary.LittleEndian, &blocks); err != nil {
		return nil, err
	}
	if n < 0 || blocks < 0 || blocks > 1<<32 {
		return nil, fmt.Errorf("sched: implausible trace header N=%d blocks=%d", n, blocks)
	}
	out.N = int(n)
	out.Kind = units.SofteningKind(kind)
	out.Blocks = make([]hermite.BlockStat, blocks)
	for i := range out.Blocks {
		if err := binary.Read(tr, binary.LittleEndian, &out.Blocks[i].Time); err != nil {
			return nil, fmt.Errorf("sched: block %d: %w", i, err)
		}
		var sz int64
		if err := binary.Read(tr, binary.LittleEndian, &sz); err != nil {
			return nil, fmt.Errorf("sched: block %d: %w", i, err)
		}
		out.Blocks[i].Size = int(sz)
	}
	want := crc.Sum32()
	var got uint32
	if err := binary.Read(r, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("sched: reading checksum: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("sched: trace checksum mismatch")
	}
	return out, nil
}
