package sched

import (
	"bytes"
	"testing"

	"grape6/internal/hermite"
	"grape6/internal/units"
)

func sampleTrace() *Trace {
	return &Trace{
		N: 1024, Kind: units.SoftOverN, Eps: 4.0 / 1024, Duration: 0.5,
		Blocks: []hermite.BlockStat{
			{Time: 0.125, Size: 10},
			{Time: 0.25, Size: 200},
			{Time: 0.375, Size: 3},
			{Time: 0.5, Size: 1024},
		},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != tr.N || got.Kind != tr.Kind || got.Eps != tr.Eps || got.Duration != tr.Duration {
		t.Errorf("header mismatch: %+v vs %+v", got, tr)
	}
	if len(got.Blocks) != len(tr.Blocks) {
		t.Fatalf("block count %d", len(got.Blocks))
	}
	for i := range tr.Blocks {
		if got.Blocks[i] != tr.Blocks[i] {
			t.Errorf("block %d: %+v vs %+v", i, got.Blocks[i], tr.Blocks[i])
		}
	}
	// Derived statistics survive.
	if got.TotalSteps() != tr.TotalSteps() || got.MeanBlockSize() != tr.MeanBlockSize() {
		t.Error("derived statistics differ")
	}
}

func TestTraceEmptyRoundTrip(t *testing.T) {
	tr := &Trace{N: 10, Duration: 1}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Blocks) != 0 {
		t.Errorf("blocks = %d", len(got.Blocks))
	}
}

func TestTraceCorruptionDetected(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0x01
	if _, err := ReadTrace(bytes.NewReader(data)); err == nil {
		t.Error("corruption not detected")
	}
}

func TestTraceBadMagic(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Error("accepted garbage")
	}
}

func TestTraceTruncation(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadTrace(bytes.NewReader(data[:len(data)-6])); err == nil {
		t.Error("truncation not detected")
	}
}

func TestMeasuredTraceRoundTrip(t *testing.T) {
	// A real measured trace survives the round trip and still feeds the
	// workload fit.
	tr, err := Record(96, units.SoftConstant, 0.125, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.StepsPerUnitTime() != tr.StepsPerUnitTime() {
		t.Error("rates differ after round trip")
	}
	tr2, err := Record(192, units.SoftConstant, 0.125, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromTraces(units.SoftConstant, []*Trace{got, tr2}); err != nil {
		t.Errorf("restored trace unusable for fitting: %v", err)
	}
}
