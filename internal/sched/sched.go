// Package sched supplies the workload statistics that drive the paper's
// performance figures: the number of individual steps and block steps per
// unit of simulated time as a function of N and softening.
//
// For laptop-feasible N these statistics are MEASURED by running the real
// Hermite integrator on a Plummer model (the paper's benchmark workload);
// for paper-scale N (10^5-2×10^6, where a functional O(N²) run is out of
// reach without the actual hardware) they are extrapolated with power-law
// fits to the measured points. This measured-then-extrapolated split is
// the substitution documented in DESIGN.md: the paper's own analysis
// (Section 4.2) rests on the same scaling facts — the number of particles
// per block grows roughly linearly with N while the number of blocks per
// unit time grows slowly.
package sched

import (
	"fmt"
	"math"

	"grape6/internal/hermite"
	"grape6/internal/model"
	"grape6/internal/units"
	"grape6/internal/xrand"
)

// Trace records the block structure of an integration.
type Trace struct {
	N        int
	Kind     units.SofteningKind
	Eps      float64
	Duration float64 // simulated time units covered
	Blocks   []hermite.BlockStat
}

// TotalSteps returns the number of individual particle steps in the trace.
func (t *Trace) TotalSteps() int64 {
	var s int64
	for _, b := range t.Blocks {
		s += int64(b.Size)
	}
	return s
}

// MeanBlockSize returns the average number of particles per block.
func (t *Trace) MeanBlockSize() float64 {
	if len(t.Blocks) == 0 {
		return 0
	}
	return float64(t.TotalSteps()) / float64(len(t.Blocks))
}

// BlocksPerUnitTime returns the block-step rate.
func (t *Trace) BlocksPerUnitTime() float64 {
	if t.Duration <= 0 {
		return 0
	}
	return float64(len(t.Blocks)) / t.Duration
}

// StepsPerUnitTime returns the individual-step rate.
func (t *Trace) StepsPerUnitTime() float64 {
	if t.Duration <= 0 {
		return 0
	}
	return float64(t.TotalSteps()) / t.Duration
}

// Record integrates an N-particle Plummer model for the given duration
// with the reference backend and returns its block trace.
func Record(n int, kind units.SofteningKind, duration float64, seed uint64) (*Trace, error) {
	sys := model.Plummer(n, xrand.New(seed))
	eps := units.Softening(kind, n)
	it, err := hermite.New(sys, hermite.NewDirectBackend(), hermite.DefaultParams(eps))
	if err != nil {
		return nil, err
	}
	tr := &Trace{N: n, Kind: kind, Eps: eps, Duration: duration}
	it.Trace = func(b hermite.BlockStat) { tr.Blocks = append(tr.Blocks, b) }
	it.Run(duration)
	return tr, nil
}

// Workload is a power-law model of the block statistics, fitted to
// measured traces:
//
//	steps/unit-time  ≈ exp(stepsA) · N^stepsB,
//	blocks/unit-time ≈ exp(blocksA) · N^blocksB.
type Workload struct {
	Kind     units.SofteningKind
	Measured []*Trace

	StepsA, StepsB   float64
	BlocksA, BlocksB float64
}

// FitWorkload measures traces at the given particle counts (each over
// `duration` time units) and fits the power laws. At least two distinct N
// are required.
func FitWorkload(kind units.SofteningKind, ns []int, duration float64, seed uint64) (*Workload, error) {
	if len(ns) < 2 {
		return nil, fmt.Errorf("sched: need ≥2 particle counts, got %d", len(ns))
	}
	w := &Workload{Kind: kind}
	for i, n := range ns {
		tr, err := Record(n, kind, duration, seed+uint64(i))
		if err != nil {
			return nil, err
		}
		if len(tr.Blocks) == 0 {
			return nil, fmt.Errorf("sched: empty trace at N=%d", n)
		}
		w.Measured = append(w.Measured, tr)
	}
	if err := w.fit(); err != nil {
		return nil, err
	}
	return w, nil
}

// FromTraces builds a workload from pre-recorded traces (used by tests and
// by callers that already have traces in hand).
func FromTraces(kind units.SofteningKind, traces []*Trace) (*Workload, error) {
	if len(traces) < 2 {
		return nil, fmt.Errorf("sched: need ≥2 traces, got %d", len(traces))
	}
	w := &Workload{Kind: kind, Measured: traces}
	if err := w.fit(); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *Workload) fit() error {
	xs := make([]float64, len(w.Measured))
	ys := make([]float64, len(w.Measured))
	zs := make([]float64, len(w.Measured))
	for i, tr := range w.Measured {
		if tr.StepsPerUnitTime() <= 0 || tr.BlocksPerUnitTime() <= 0 {
			return fmt.Errorf("sched: degenerate trace at N=%d", tr.N)
		}
		xs[i] = math.Log(float64(tr.N))
		ys[i] = math.Log(tr.StepsPerUnitTime())
		zs[i] = math.Log(tr.BlocksPerUnitTime())
	}
	var err error
	w.StepsA, w.StepsB, err = linfit(xs, ys)
	if err != nil {
		return err
	}
	w.BlocksA, w.BlocksB, err = linfit(xs, zs)
	return err
}

// linfit is an ordinary least-squares fit y = a + b·x.
func linfit(xs, ys []float64) (a, b float64, err error) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("sched: singular fit (all N equal?)")
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	return a, b, nil
}

// StepsPerUnitTime predicts the individual-step rate at particle count n.
func (w *Workload) StepsPerUnitTime(n int) float64 {
	return math.Exp(w.StepsA) * math.Pow(float64(n), w.StepsB)
}

// BlocksPerUnitTime predicts the block rate at particle count n.
func (w *Workload) BlocksPerUnitTime(n int) float64 {
	return math.Exp(w.BlocksA) * math.Pow(float64(n), w.BlocksB)
}

// MeanBlockSize predicts the mean particles per block at count n, clamped
// to [1, n].
func (w *Workload) MeanBlockSize(n int) float64 {
	b := w.BlocksPerUnitTime(n)
	if b <= 0 {
		return 1
	}
	s := w.StepsPerUnitTime(n) / b
	if s < 1 {
		return 1
	}
	if s > float64(n) {
		return float64(n)
	}
	return s
}

// Synthetic generates a block trace for particle count n covering the
// given duration: the block count follows BlocksPerUnitTime, and the block
// sizes are drawn from the empirical size distribution of the largest
// measured trace, rescaled so their mean matches MeanBlockSize(n). This
// preserves the strong size skew of real block schedules (many tiny
// blocks, a few system-wide ones) that a constant-size model would miss.
func (w *Workload) Synthetic(n int, duration float64, rng *xrand.Source) *Trace {
	ref := w.Measured[0]
	for _, tr := range w.Measured[1:] {
		if tr.N > ref.N {
			ref = tr
		}
	}
	nBlocks := int(math.Round(w.BlocksPerUnitTime(n) * duration))
	if nBlocks < 1 {
		nBlocks = 1
	}
	scale := w.MeanBlockSize(n) / ref.MeanBlockSize()

	tr := &Trace{N: n, Kind: w.Kind, Eps: units.Softening(w.Kind, n), Duration: duration}
	tr.Blocks = make([]hermite.BlockStat, nBlocks)
	dt := duration / float64(nBlocks)
	for i := 0; i < nBlocks; i++ {
		s := ref.Blocks[rng.Intn(len(ref.Blocks))].Size
		size := int(math.Round(float64(s) * scale))
		if size < 1 {
			size = 1
		}
		if size > n {
			size = n
		}
		tr.Blocks[i] = hermite.BlockStat{Time: float64(i+1) * dt, Size: size}
	}
	return tr
}

// DefaultNs are the particle counts used for workload measurement: small
// enough to integrate functionally in seconds, spread over a decade for a
// stable fit.
var DefaultNs = []int{256, 512, 1024, 2048}
