package sched

import (
	"math"
	"testing"

	"grape6/internal/hermite"
	"grape6/internal/units"
	"grape6/internal/xrand"
)

func TestRecordBasics(t *testing.T) {
	tr, err := Record(128, units.SoftConstant, 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N != 128 || tr.Eps != 1.0/64 {
		t.Errorf("trace meta: %+v", tr)
	}
	if len(tr.Blocks) == 0 {
		t.Fatal("empty trace")
	}
	if tr.TotalSteps() < int64(tr.N) {
		t.Errorf("total steps %d < N", tr.TotalSteps())
	}
	if tr.MeanBlockSize() < 1 || tr.MeanBlockSize() > float64(tr.N) {
		t.Errorf("mean block size %v out of range", tr.MeanBlockSize())
	}
	if tr.BlocksPerUnitTime() <= 0 || tr.StepsPerUnitTime() <= 0 {
		t.Error("non-positive rates")
	}
}

func TestEmptyTraceRates(t *testing.T) {
	tr := &Trace{N: 10}
	if tr.MeanBlockSize() != 0 || tr.BlocksPerUnitTime() != 0 || tr.StepsPerUnitTime() != 0 {
		t.Error("empty trace should have zero rates")
	}
}

func TestLinfit(t *testing.T) {
	// Exact line y = 2 + 3x.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{2, 5, 8, 11}
	a, b, err := linfit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-2) > 1e-12 || math.Abs(b-3) > 1e-12 {
		t.Errorf("fit = (%v, %v), want (2, 3)", a, b)
	}
	// Singular when all x equal.
	if _, _, err := linfit([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("accepted singular fit")
	}
}

func TestFitWorkloadRejectsTooFew(t *testing.T) {
	if _, err := FitWorkload(units.SoftConstant, []int{128}, 0.1, 1); err == nil {
		t.Error("accepted single-point fit")
	}
	if _, err := FromTraces(units.SoftConstant, nil); err == nil {
		t.Error("accepted empty trace list")
	}
}

// measuredWorkload is shared by the scaling tests (measuring is the
// expensive part).
var measuredWorkload *Workload

func workload(t *testing.T) *Workload {
	t.Helper()
	if measuredWorkload == nil {
		w, err := FitWorkload(units.SoftConstant, []int{128, 256, 512}, 0.25, 7)
		if err != nil {
			t.Fatal(err)
		}
		measuredWorkload = w
	}
	return measuredWorkload
}

func TestWorkloadScalings(t *testing.T) {
	w := workload(t)
	// Steps per unit time grows superlinearly-ish with N (more particles,
	// each stepping at a similar or faster rate): exponent in (0.8, 2).
	if w.StepsB < 0.8 || w.StepsB > 2.0 {
		t.Errorf("steps exponent = %v, implausible", w.StepsB)
	}
	// Blocks per unit time grows much more slowly than steps.
	if w.BlocksB >= w.StepsB {
		t.Errorf("blocks exponent %v ≥ steps exponent %v", w.BlocksB, w.StepsB)
	}
	// Mean block size grows with N (the paper: "the number of particles
	// integrated in one blockstep is roughly proportional to N").
	if w.MeanBlockSize(512) <= w.MeanBlockSize(128) {
		t.Error("mean block size not growing with N")
	}
}

func TestWorkloadInterpolatesMeasurement(t *testing.T) {
	w := workload(t)
	// The fit should reproduce each measured point within a factor ~1.5.
	for _, tr := range w.Measured {
		pred := w.StepsPerUnitTime(tr.N)
		meas := tr.StepsPerUnitTime()
		if r := pred / meas; r < 0.6 || r > 1.7 {
			t.Errorf("N=%d: predicted steps rate %v vs measured %v", tr.N, pred, meas)
		}
	}
}

func TestMeanBlockSizeClamped(t *testing.T) {
	w := workload(t)
	if s := w.MeanBlockSize(2); s > 2 {
		t.Errorf("mean block size %v exceeds N=2", s)
	}
	if s := w.MeanBlockSize(1_000_000); s < 1 {
		t.Errorf("mean block size %v below 1", s)
	}
}

func TestSyntheticTraceProperties(t *testing.T) {
	w := workload(t)
	n := 100000
	tr := w.Synthetic(n, 0.5, xrand.New(3))
	if tr.N != n || tr.Duration != 0.5 {
		t.Errorf("synthetic meta %+v", tr)
	}
	if len(tr.Blocks) < 10 {
		t.Fatalf("only %d synthetic blocks", len(tr.Blocks))
	}
	// Sizes within [1, N]; times increasing.
	prev := 0.0
	for _, b := range tr.Blocks {
		if b.Size < 1 || b.Size > n {
			t.Fatalf("block size %d out of range", b.Size)
		}
		if b.Time <= prev {
			t.Fatalf("non-increasing block times")
		}
		prev = b.Time
	}
	// Mean size within a factor 2 of the model's prediction (sampling).
	if r := tr.MeanBlockSize() / w.MeanBlockSize(n); r < 0.5 || r > 2 {
		t.Errorf("synthetic mean block size off by %v", r)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	w := workload(t)
	a := w.Synthetic(10000, 0.25, xrand.New(9))
	b := w.Synthetic(10000, 0.25, xrand.New(9))
	if len(a.Blocks) != len(b.Blocks) {
		t.Fatal("different lengths")
	}
	for i := range a.Blocks {
		if a.Blocks[i] != b.Blocks[i] {
			t.Fatal("non-deterministic synthetic trace")
		}
	}
}

func TestSofteningAffectsWorkload(t *testing.T) {
	// ε = 4/N (harder encounters at this N) must produce more steps per
	// particle than the constant softening at equal N.
	trC, err := Record(256, units.SoftConstant, 0.25, 11)
	if err != nil {
		t.Fatal(err)
	}
	trN, err := Record(256, units.SoftOverN, 0.25, 11)
	if err != nil {
		t.Fatal(err)
	}
	// At N=256 both softenings are equal (1/64), so rates should be close.
	r := trN.StepsPerUnitTime() / trC.StepsPerUnitTime()
	if r < 0.8 || r > 1.25 {
		t.Errorf("N=256 rates should match across equal softenings, ratio %v", r)
	}
	// At N=1024, ε = 4/N is 4x smaller than at 256 → more steps/particle.
	trC2, err := Record(1024, units.SoftConstant, 0.125, 12)
	if err != nil {
		t.Fatal(err)
	}
	trN2, err := Record(1024, units.SoftOverN, 0.125, 12)
	if err != nil {
		t.Fatal(err)
	}
	perPartC := trC2.StepsPerUnitTime() / 1024
	perPartN := trN2.StepsPerUnitTime() / 1024
	if perPartN <= perPartC {
		t.Errorf("smaller softening should cost more steps/particle: %v vs %v", perPartN, perPartC)
	}
}

func TestTraceConsistencyWithIntegrator(t *testing.T) {
	tr, err := Record(64, units.SoftConstant, 0.25, 5)
	if err != nil {
		t.Fatal(err)
	}
	var stats []hermite.BlockStat = tr.Blocks
	for i := 1; i < len(stats); i++ {
		if stats[i].Time <= stats[i-1].Time {
			t.Fatal("trace times not increasing")
		}
	}
	if stats[len(stats)-1].Time > 0.25 {
		t.Error("trace extends beyond requested duration")
	}
}
