package kepler

import (
	"math"
	"testing"
	"testing/quick"

	"grape6/internal/hermite"
	"grape6/internal/model"
	"grape6/internal/vec"
)

func TestValidate(t *testing.T) {
	good := Elements{Mu: 1, A: 1, Ecc: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Elements{
		{Mu: 0, A: 1}, {Mu: 1, A: 0}, {Mu: 1, A: 1, Ecc: 1}, {Mu: 1, A: 1, Ecc: -0.1},
	}
	for i, el := range bad {
		if err := el.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPeriodKeplerThirdLaw(t *testing.T) {
	el := Elements{Mu: 1, A: 1}
	if math.Abs(el.Period()-2*math.Pi) > 1e-14 {
		t.Errorf("period = %v", el.Period())
	}
	el4 := Elements{Mu: 1, A: 4}
	if r := el4.Period() / el.Period(); math.Abs(r-8) > 1e-12 {
		t.Errorf("T(4a)/T(a) = %v, want 8", r)
	}
}

func TestSolveKeplerExactness(t *testing.T) {
	// E - e sin E must reproduce M for a grid of (M, e).
	for _, e := range []float64{0, 0.1, 0.5, 0.9, 0.99} {
		for k := 0; k < 32; k++ {
			m := 2 * math.Pi * float64(k) / 32
			E := SolveKepler(m, e)
			back := E - e*math.Sin(E)
			diff := math.Mod(back-m+3*math.Pi, 2*math.Pi) - math.Pi
			if math.Abs(diff) > 1e-12 {
				t.Fatalf("e=%v M=%v: residual %v", e, m, diff)
			}
		}
	}
}

func TestPropSolveKepler(t *testing.T) {
	f := func(mRaw, eRaw float64) bool {
		m := math.Mod(math.Abs(mRaw), 2*math.Pi)
		e := math.Mod(math.Abs(eRaw), 0.999)
		if math.IsNaN(m) || math.IsNaN(e) {
			return true
		}
		E := SolveKepler(m, e)
		back := E - e*math.Sin(E)
		diff := math.Mod(back-m+3*math.Pi, 2*math.Pi) - math.Pi
		return math.Abs(diff) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestStateAtConservesEnergy(t *testing.T) {
	el := Elements{Mu: 1, A: 1.3, Ecc: 0.6, Omega: 0.7}
	want := -el.Mu / (2 * el.A)
	for k := 0; k < 20; k++ {
		tt := el.Period() * float64(k) / 20
		pos, vel := el.StateAt(tt)
		got := vel.Norm2()/2 - el.Mu/pos.Norm()
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("t=%v: energy %v, want %v", tt, got, want)
		}
	}
}

func TestStateAtPericentreApocentre(t *testing.T) {
	el := Elements{Mu: 1, A: 2, Ecc: 0.5}
	pos, _ := el.StateAt(0) // at tau: pericentre
	if math.Abs(pos.Norm()-el.A*(1-el.Ecc)) > 1e-12 {
		t.Errorf("pericentre r = %v", pos.Norm())
	}
	pos, _ = el.StateAt(el.Period() / 2)
	if math.Abs(pos.Norm()-el.A*(1+el.Ecc)) > 1e-10 {
		t.Errorf("apocentre r = %v", pos.Norm())
	}
}

func TestFromStateRoundTrip(t *testing.T) {
	orig := Elements{Mu: 2, A: 1.5, Ecc: 0.4, Omega: 1.1, Tau: 0.3}
	for _, tt := range []float64{0.0, 0.9, 2.7} {
		pos, vel := orig.StateAt(tt)
		got, err := FromState(orig.Mu, pos, vel, tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.A-orig.A) > 1e-10 || math.Abs(got.Ecc-orig.Ecc) > 1e-10 {
			t.Fatalf("t=%v: recovered a=%v e=%v", tt, got.A, got.Ecc)
		}
		// The recovered elements must predict the same state.
		p2, v2 := got.StateAt(tt)
		if p2.Dist(pos) > 1e-8 || v2.Dist(vel) > 1e-8 {
			t.Fatalf("t=%v: state mismatch %v vs %v", tt, p2, pos)
		}
	}
}

func TestFromStateRejects(t *testing.T) {
	if _, err := FromState(0, vec.New(1, 0, 0), vec.New(0, 1, 0), 0); err == nil {
		t.Error("accepted mu=0")
	}
	if _, err := FromState(1, vec.New(1, 0, 0.5), vec.New(0, 1, 0), 0); err == nil {
		t.Error("accepted non-planar state")
	}
	// Unbound: v ≫ escape speed.
	if _, err := FromState(1, vec.New(1, 0, 0), vec.New(0, 5, 0), 0); err == nil {
		t.Error("accepted unbound orbit")
	}
}

// TestHermiteTracksKepler is the integrator-vs-analytic validation: a
// Hermite run of an eccentric binary must follow the exact Kepler
// trajectory over several orbits.
func TestHermiteTracksKepler(t *testing.T) {
	m1, m2, a, ecc := 0.6, 0.4, 1.0, 0.5
	sys := model.TwoBodyEccentric(m1, m2, a, ecc)
	mu := m1 + m2

	// Elements of the initial relative orbit (starts at apocentre).
	rel := sys.Pos[1].Sub(sys.Pos[0])
	relv := sys.Vel[1].Sub(sys.Vel[0])
	el, err := FromState(mu, rel, relv, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(el.A-a) > 1e-12 || math.Abs(el.Ecc-ecc) > 1e-12 {
		t.Fatalf("initial elements a=%v e=%v", el.A, el.Ecc)
	}

	p := hermite.DefaultParams(0)
	p.Eta = 0.01
	p.EtaS = 0.005
	it, err := hermite.New(sys, hermite.NewDirectBackend(), p)
	if err != nil {
		t.Fatal(err)
	}

	for _, frac := range []float64{0.25, 0.5, 1.0, 2.0} {
		tt := frac * el.Period()
		it.Run(tt)
		snap := it.Synchronize(tt)
		gotRel := snap.Pos[1].Sub(snap.Pos[0])
		wantRel, _ := el.StateAt(tt)
		if d := gotRel.Dist(wantRel); d > 2e-4*a {
			t.Errorf("t=%.2fT: Hermite deviates from Kepler by %v", frac, d)
		}
	}
}

func BenchmarkSolveKepler(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		s += SolveKepler(float64(i)*0.001, 0.7)
	}
	_ = s
}
