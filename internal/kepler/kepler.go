// Package kepler solves the two-body problem analytically: Kepler's
// equation, orbital elements and time evolution. It supplies the exact
// reference trajectories against which the Hermite integrator is
// validated (a collisional N-body code lives or dies by how it handles
// tight two-body motion, which is why the paper's machine computes exact
// pairwise forces in the first place).
package kepler

import (
	"fmt"
	"math"

	"grape6/internal/vec"
)

// Elements describes a bound planar orbit of the relative two-body
// problem with gravitational parameter Mu = G(m1+m2).
type Elements struct {
	Mu    float64 // G(m1+m2)
	A     float64 // semi-major axis
	Ecc   float64 // eccentricity, in [0,1)
	Tau   float64 // time of pericentre passage
	Omega float64 // argument of pericentre in the orbital plane (radians)
}

// Validate reports element errors.
func (el Elements) Validate() error {
	if el.Mu <= 0 {
		return fmt.Errorf("kepler: non-positive mu %v", el.Mu)
	}
	if el.A <= 0 {
		return fmt.Errorf("kepler: non-positive semi-major axis %v", el.A)
	}
	if el.Ecc < 0 || el.Ecc >= 1 {
		return fmt.Errorf("kepler: eccentricity %v outside [0,1)", el.Ecc)
	}
	return nil
}

// Period returns the orbital period 2π√(a³/μ).
func (el Elements) Period() float64 {
	return 2 * math.Pi * math.Sqrt(el.A*el.A*el.A/el.Mu)
}

// MeanMotion returns n = √(μ/a³).
func (el Elements) MeanMotion() float64 {
	return math.Sqrt(el.Mu / (el.A * el.A * el.A))
}

// SolveKepler solves M = E - e sin E for the eccentric anomaly E by
// Newton iteration with a bisection fallback; accurate to ~1e-14 for all
// e in [0, 1).
func SolveKepler(meanAnomaly, e float64) float64 {
	m := math.Mod(meanAnomaly, 2*math.Pi)
	if m < 0 {
		m += 2 * math.Pi
	}
	// Starter: E ≈ M + e sin M works well below e≈0.8; for high e near
	// M≈0 use the cubic starter.
	E := m + e*math.Sin(m)
	if e > 0.8 {
		E = math.Pi
	}
	for iter := 0; iter < 50; iter++ {
		f := E - e*math.Sin(E) - m
		fp := 1 - e*math.Cos(E)
		dE := f / fp
		E -= dE
		if math.Abs(dE) < 1e-15 {
			break
		}
	}
	return E
}

// StateAt returns the relative position and velocity at time t, in the
// orbital plane (z = 0).
func (el Elements) StateAt(t float64) (pos, vel vec.V3) {
	n := el.MeanMotion()
	M := n * (t - el.Tau)
	E := SolveKepler(M, el.Ecc)

	cosE, sinE := math.Cos(E), math.Sin(E)
	b := el.A * math.Sqrt(1-el.Ecc*el.Ecc)

	// Perifocal coordinates.
	x := el.A * (cosE - el.Ecc)
	y := b * sinE
	r := el.A * (1 - el.Ecc*cosE)
	Edot := n * el.A / r
	vx := -el.A * sinE * Edot
	vy := b * cosE * Edot

	// Rotate by the argument of pericentre.
	c, s := math.Cos(el.Omega), math.Sin(el.Omega)
	pos = vec.New(c*x-s*y, s*x+c*y, 0)
	vel = vec.New(c*vx-s*vy, s*vx+c*vy, 0)
	return pos, vel
}

// FromState recovers orbital elements from a relative state (planar
// orbits only: the z components must vanish). Returns an error for
// unbound or degenerate states.
func FromState(mu float64, pos, vel vec.V3, t float64) (Elements, error) {
	if mu <= 0 {
		return Elements{}, fmt.Errorf("kepler: non-positive mu")
	}
	if math.Abs(pos.Z) > 1e-12 || math.Abs(vel.Z) > 1e-12 {
		return Elements{}, fmt.Errorf("kepler: non-planar state")
	}
	r := pos.Norm()
	v2 := vel.Norm2()
	if r == 0 {
		return Elements{}, fmt.Errorf("kepler: degenerate state r=0")
	}
	energy := v2/2 - mu/r
	if energy >= 0 {
		return Elements{}, fmt.Errorf("kepler: unbound orbit (E=%v)", energy)
	}
	a := -mu / (2 * energy)

	// Eccentricity vector e = (v×h)/μ - r̂.
	h := pos.Cross(vel)
	evec := vel.Cross(h).Scale(1 / mu).Sub(pos.Unit())
	e := evec.Norm()
	if e >= 1 {
		return Elements{}, fmt.Errorf("kepler: eccentricity %v ≥ 1", e)
	}

	el := Elements{Mu: mu, A: a, Ecc: e}
	if e > 1e-12 {
		el.Omega = math.Atan2(evec.Y, evec.X)
	}

	// Eccentric anomaly from r and the radial-velocity sign.
	cosE := (1 - r/a) / math.Max(e, 1e-300)
	if e <= 1e-12 {
		// Circular orbit: measure the phase directly from position.
		theta := math.Atan2(pos.Y, pos.X)
		el.Tau = t - theta/el.MeanMotion()
		return el, nil
	}
	cosE = math.Max(-1, math.Min(1, cosE))
	E := math.Acos(cosE)
	if pos.Dot(vel) < 0 {
		E = 2*math.Pi - E
	}
	M := E - e*math.Sin(E)
	el.Tau = t - M/el.MeanMotion()
	return el, nil
}
