package perfmodel

import (
	"math"
	"testing"

	"grape6/internal/simnet"
)

func TestMachinePeaks(t *testing.T) {
	// Full production machine: 4 clusters × 4 hosts × 4 boards × 32 chips
	// = 2048 chips, 63.04 Tflops (Section 1).
	full := MultiCluster(4, simnet.NS83820, Athlon)
	if got := full.TotalChips(); got != 2048 {
		t.Errorf("total chips = %d, want 2048", got)
	}
	if got := full.PeakFlops() / 1e12; math.Abs(got-63.04) > 0.05 {
		t.Errorf("peak = %v Tflops, want 63.04", got)
	}
	// Single node: 128 chips ≈ 3.94 Tflops.
	one := SingleNode(simnet.NS83820, Athlon)
	if got := one.PeakFlops() / 1e12; math.Abs(got-3.94) > 0.01 {
		t.Errorf("single-node peak = %v Tflops", got)
	}
}

func TestValidate(t *testing.T) {
	m := SingleNode(simnet.NS83820, Athlon)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	m.Clusters = 0
	if err := m.Validate(); err == nil {
		t.Error("accepted zero clusters")
	}
	m = SingleNode(simnet.NIC{RTT: -1, Bandwidth: 0}, Athlon)
	if err := m.Validate(); err == nil {
		t.Error("accepted invalid NIC")
	}
	m = SingleNode(simnet.NS83820, Athlon)
	m.HW.ClockHz = 0
	if err := m.Validate(); err == nil {
		t.Error("accepted zero clock")
	}
	m = SingleNode(simnet.NS83820, Athlon)
	m.Link.Bandwidth = 0
	if err := m.Validate(); err == nil {
		t.Error("accepted zero link bandwidth")
	}
}

func TestCacheModelShape(t *testing.T) {
	// Host time per step grows monotonically with N and saturates below
	// StepTime+MemTime — the Figure 14 behaviour.
	h := Athlon
	prev := 0.0
	for _, n := range []int{100, 1000, 10000, 100000, 1000000} {
		got := h.PerStep(n)
		if got < prev {
			t.Errorf("PerStep not monotone at N=%d", n)
		}
		if got > h.PerStepConstant() {
			t.Errorf("PerStep exceeds asymptote at N=%d", n)
		}
		prev = got
	}
	// Small N fits in cache: no memory penalty.
	if got := h.PerStep(1000); got != h.StepTime {
		t.Errorf("cache-resident PerStep = %v, want %v", got, h.StepTime)
	}
	// Large N approaches the constant model.
	if got := h.PerStep(10_000_000); got < 0.9*h.PerStepConstant() {
		t.Errorf("large-N PerStep = %v, asymptote %v", got, h.PerStepConstant())
	}
}

func TestMissFractionBounds(t *testing.T) {
	for _, n := range []int{0, 1, 100, 10000, 1 << 30} {
		f := Athlon.MissFraction(n)
		if f < 0 || f > 1 {
			t.Errorf("miss fraction %v at N=%d", f, n)
		}
	}
}

func TestP4FasterThanAthlon(t *testing.T) {
	for _, n := range []int{1000, 100000, 1000000} {
		if P4.PerStep(n) >= Athlon.PerStep(n) {
			t.Errorf("P4 not faster at N=%d", n)
		}
	}
}

func TestBlockCostComponentsPositive(t *testing.T) {
	m := SingleNode(simnet.NS83820, Athlon)
	c := m.BlockTime(100000, 1000)
	if c.Host <= 0 || c.Comm <= 0 || c.Grape <= 0 {
		t.Errorf("non-positive components: %+v", c)
	}
	if c.Sync != 0 {
		t.Errorf("single host should have zero sync, got %v", c.Sync)
	}
	if math.Abs(c.Total()-(c.Host+c.Comm+c.Grape+c.Sync)) > 1e-18 {
		t.Error("Total mismatch")
	}
}

func TestSyncAppearsWithMultipleHosts(t *testing.T) {
	m2 := MultiNode(2, simnet.NS83820, Athlon)
	c := m2.BlockTime(10000, 100)
	if c.Sync <= 0 {
		t.Error("2-host system has no sync cost")
	}
	// 4 hosts: two butterfly rounds, double the sync.
	m4 := MultiNode(4, simnet.NS83820, Athlon)
	c4 := m4.BlockTime(10000, 100)
	if math.Abs(c4.Sync/c.Sync-2) > 0.01 {
		t.Errorf("sync(4)/sync(2) = %v, want 2", c4.Sync/c.Sync)
	}
}

func TestMultiClusterExchangeCost(t *testing.T) {
	// Multi-cluster systems pay the copy-algorithm particle exchange on
	// top of the barrier (Section 4.3).
	m1 := MultiNode(4, simnet.NS83820, Athlon)
	m4 := MultiCluster(4, simnet.NS83820, Athlon)
	nb := 1000
	s1 := m1.BlockTime(100000, nb).Sync
	s4 := m4.BlockTime(100000, nb).Sync
	if s4 <= s1 {
		t.Errorf("multi-cluster sync %v not larger than single-cluster %v", s4, s1)
	}
}

func TestTimePerStepSmallNScalesAsOneOverN(t *testing.T) {
	// Section 4.4: "calculation time per particle increases for smaller N,
	// roughly in proportion to 1/N" when latency-dominated. With block
	// size ∝ N, halving N should roughly double the 16-host per-step time
	// in the small-N regime.
	m := MultiCluster(4, simnet.NS83820, Athlon)
	frac := 0.02
	t1 := m.TimePerStep(2000, frac*2000)
	t2 := m.TimePerStep(4000, frac*4000)
	ratio := t1 / t2
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("time-per-step ratio = %v, want ≈2 (1/N scaling)", ratio)
	}
}

func TestLargeNGrapeDominated(t *testing.T) {
	// For large N the GRAPE component must dominate the block cost.
	m := SingleNode(simnet.NS83820, Athlon)
	c := m.BlockTime(1_000_000, 20_000)
	if c.Grape < c.Host+c.Comm+c.Sync {
		t.Errorf("GRAPE does not dominate at large N: %+v", c)
	}
}

func TestSingleNodeSpeedPlausible(t *testing.T) {
	// Figure 13: the 1-host 4-board system reaches ≳1 Tflops at N = 2×10^5
	// (with blocks of ~2% of N) and much less at N = 10^3.
	m := SingleNode(simnet.NS83820, Athlon)
	sBig := m.Speed(200000, 0.02*200000) / 1e12
	if sBig < 1.0 || sBig > 3.94 {
		t.Errorf("speed at 2e5 = %v Tflops, want in [1, peak]", sBig)
	}
	sSmall := m.Speed(1000, 0.02*1000) / 1e9
	if sSmall > 100 {
		t.Errorf("speed at N=1e3 = %v Gflops, implausibly high", sSmall)
	}
	if sSmall <= 0 {
		t.Error("zero speed at small N")
	}
}

func TestMultiNodeCrossover(t *testing.T) {
	// Figure 15: the 2-host system overtakes the 1-host system at a finite
	// crossover N (≈3×10^3 in the paper for constant softening): slower
	// below, faster above.
	m1 := SingleNode(simnet.NS83820, Athlon)
	m2 := MultiNode(2, simnet.NS83820, Athlon)
	frac := 0.02
	small := 500
	if m2.Speed(small, frac*float64(small)) >= m1.Speed(small, frac*float64(small)) {
		t.Errorf("2-host faster than 1-host already at N=%d", small)
	}
	big := 100000
	if m2.Speed(big, frac*float64(big)) <= m1.Speed(big, frac*float64(big)) {
		t.Errorf("2-host not faster than 1-host at N=%d", big)
	}
}

func TestMultiClusterCrossoverIsHigher(t *testing.T) {
	// Figure 17: the multi-cluster crossover (vs the 4-host system) sits
	// at much larger N (~10^5) than the single-cluster one.
	m4 := MultiNode(4, simnet.NS83820, Athlon)
	m16 := MultiCluster(4, simnet.NS83820, Athlon)
	frac := 0.02
	// At N = 2×10^4 the 16-host machine should still lose...
	n := 20000
	if m16.Speed(n, frac*float64(n)) >= m4.Speed(n, frac*float64(n)) {
		t.Errorf("16-host already faster at N=%d", n)
	}
	// ...and win by N = 10^6.
	n = 1_000_000
	if m16.Speed(n, frac*float64(n)) <= m4.Speed(n, frac*float64(n)) {
		t.Errorf("16-host not faster at N=%d", n)
	}
}

func TestNICTuningImprovement(t *testing.T) {
	// Figure 19: Intel 82540EM + P4 improves the 16-host speed by 50-100%
	// over NS83820 + Athlon in the communication-dominated regime.
	old := MultiCluster(4, simnet.NS83820, Athlon)
	tuned := MultiCluster(4, simnet.Intel82540EM, P4)
	frac := 0.02
	n := 100000
	ratio := tuned.Speed(n, frac*float64(n)) / old.Speed(n, frac*float64(n))
	if ratio < 1.3 || ratio > 2.5 {
		t.Errorf("tuning speedup at N=1e5 = %v, want ~1.5-2", ratio)
	}
	// Improvement shrinks at large N where GRAPE dominates.
	nBig := 1_800_000
	ratioBig := tuned.Speed(nBig, frac*float64(nBig)) / old.Speed(nBig, frac*float64(nBig))
	if ratioBig >= ratio {
		t.Errorf("improvement did not shrink with N: %v vs %v", ratioBig, ratio)
	}
}

func TestPaperScaleTflops(t *testing.T) {
	// The tuned full machine at N = 1.8M reached 36.0 Tflops (Section
	// 4.4); the model should land in the right decade and below peak.
	m := MultiCluster(4, simnet.Intel82540EM, P4)
	s := m.Speed(1_800_000, 0.02*1_800_000) / 1e12
	if s < 20 || s > 63 {
		t.Errorf("model speed at 1.8M = %v Tflops, paper: 36.0", s)
	}
}

func TestEfficiencyBounds(t *testing.T) {
	m := SingleNode(simnet.NS83820, Athlon)
	for _, n := range []int{1000, 100000, 1000000} {
		e := m.Efficiency(n, 0.02*float64(n))
		if e <= 0 || e >= 1 {
			t.Errorf("efficiency %v at N=%d out of (0,1)", e, n)
		}
	}
}

func TestBlockTimeDegenerateInputs(t *testing.T) {
	m := SingleNode(simnet.NS83820, Athlon)
	if c := m.BlockTime(0, 10); c.Total() != 0 {
		t.Error("N=0 should cost nothing")
	}
	if c := m.BlockTime(10, 0); c.Total() != 0 {
		t.Error("nb=0 should cost nothing")
	}
	// TimePerStep clamps nbMean below 1.
	if ts := m.TimePerStep(100, 0.1); ts <= 0 {
		t.Error("TimePerStep with tiny block should still be positive")
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{10, 3, 4}, {9, 3, 3}, {1, 48, 1}, {0, 5, 0}, {5, 0, 0},
	}
	for _, c := range cases {
		if got := ceilDiv(c.a, c.b); got != c.want {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestGrape4MachinePeak(t *testing.T) {
	// Section 3: GRAPE-6 is "the direct successor of the 1-Tflops
	// GRAPE-4".
	m := Grape4Machine()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	peak := m.PeakFlops() / 1e12
	if peak < 0.9 || peak > 1.2 {
		t.Errorf("GRAPE-4 peak = %v Tflops, want ≈1.05", peak)
	}
	// Machine-wide i-parallelism ≈ the paper's "400".
	if got := m.HW.IBatch(); got != 384 {
		t.Errorf("GRAPE-4 i-parallelism = %d, want 384", got)
	}
}

func TestGrape6FasterThanGrape4AtScale(t *testing.T) {
	// Two orders of magnitude at large N (Section 3.1: "a single GRAPE-6
	// chip offers the speed two orders of magnitude higher").
	g4 := Grape4Machine()
	g6 := MultiCluster(4, simnet.Intel82540EM, P4)
	n := 1_000_000
	nb := 0.02 * float64(n)
	ratio := g6.Speed(n, nb) / g4.Speed(n, nb)
	if ratio < 20 || ratio > 100 {
		t.Errorf("G6/G4 speed ratio at 1e6 = %v, want tens", ratio)
	}
}

func TestGrape4ParallelismPenaltyAtSmallBlocks(t *testing.T) {
	// The Section 3.4 design argument: with blocks much smaller than the
	// i-parallelism, the wide design wastes pipeline slots. Measure the
	// slot utilization nb/(passes×IBatch) directly for a 50-particle block.
	util := func(hw GrapeHW, nb int) float64 {
		passes := (nb + hw.IBatch() - 1) / hw.IBatch()
		return float64(nb) / float64(passes*hw.IBatch())
	}
	u4 := util(Grape4HW, 50)     // 50/384 ≈ 13%
	u6 := util(ProductionHW, 50) // one chip-row: 50/96 ≈ 52%
	if u4 >= u6 {
		t.Errorf("GRAPE-4 slot utilization %v not below GRAPE-6 %v", u4, u6)
	}
	if u4 > 0.2 {
		t.Errorf("GRAPE-4 utilization at nb=50 = %v, want ≈0.13", u4)
	}
	// The GRAPE-6 pipelines lose nothing once blocks reach the batch size.
	if got := util(ProductionHW, 480); got != 1.0 {
		t.Errorf("GRAPE-6 utilization at nb=480 = %v", got)
	}
}
