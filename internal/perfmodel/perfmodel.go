// Package perfmodel implements the performance models of Section 4 of the
// paper: the decomposition of the time per particle step into host,
// communication, GRAPE and synchronization components (eq. 10 and its
// multi-node extensions), the cache-aware host-time model of Figure 14,
// and the machine configurations (1 host … 4 clusters × 4 hosts) whose
// curves Figures 13-19 plot.
//
// The model is analytic: given a machine configuration, the particle count
// N and a block-step workload (mean block size, steps per second), it
// predicts the wall-clock cost per block and the sustained speed under the
// paper's 57-flops accounting. The trace-driven simulator in
// internal/timing evaluates the same model block by block.
package perfmodel

import (
	"fmt"
	"math"

	"grape6/internal/simnet"
	"grape6/internal/units"
)

// HostProfile models the frontend's per-particle integration cost with the
// cache effect of Figure 14: the cost per step is StepTime plus MemTime
// weighted by the cache-miss fraction of the particle working set.
type HostProfile struct {
	Name             string
	StepTime         float64 // seconds per particle step, cache-hot
	MemTime          float64 // additional seconds per step at 100% miss
	CacheBytes       float64 // effective cache size
	BytesPerParticle float64 // working-set bytes per particle
}

// The two host generations of the tuning study (Section 4.4).
var (
	// Athlon is the original frontend: AMD Athlon XP 1800+ (Section 2.2).
	// The asymptotic ~5 µs/step is calibrated against Figure 13's
	// single-node speed at N = 2×10^5 (~1.3 Tflops of a 3.94 peak implies
	// ~6 µs of non-GRAPE time per step).
	Athlon = HostProfile{
		Name:             "AthlonXP1800",
		StepTime:         1.6e-6,
		MemTime:          3.6e-6,
		CacheBytes:       256e3,
		BytesPerParticle: 200,
	}
	// P4 is the tuned frontend: Intel P4 2.53 GHz overclocked to 2.85 GHz.
	P4 = HostProfile{
		Name:             "P4-2.85",
		StepTime:         1.0e-6,
		MemTime:          2.2e-6,
		CacheBytes:       512e3,
		BytesPerParticle: 200,
	}
)

// MissFraction returns the cache-miss fraction for an N-particle working
// set: 0 when it fits in cache, approaching 1 when it far exceeds it.
func (h HostProfile) MissFraction(n int) float64 {
	ws := float64(n) * h.BytesPerParticle
	if ws <= 0 {
		return 0
	}
	excess := ws - h.CacheBytes
	if excess <= 0 {
		return 0
	}
	return excess / (excess + h.CacheBytes)
}

// TileParticles returns the j-tile length for cache-blocked streaming on
// this host: the largest particle count whose streamed working set
// (bytesPerParticle per particle) fills half the effective cache, the
// other half being left for the resident i-block, partial results and
// the stack. This inverts the Figure 14 cache model — MissFraction says
// a working set under CacheBytes re-reads for free, so a force pass that
// walks the j-memory in tiles of this size pays the DRAM transfer once
// per tile per batch instead of once per tile per i-particle. The result
// is floored at one hardware i-batch (48) so pathological cache sizes
// still amortize the per-tile loop overhead.
func (h HostProfile) TileParticles(bytesPerParticle int) int {
	const floor = 48 // one i-batch of the production chip
	if bytesPerParticle <= 0 {
		return floor
	}
	t := int(h.CacheBytes) / (2 * bytesPerParticle)
	if t < floor {
		t = floor
	}
	return t
}

// PerStep returns the host time per particle step at particle count N —
// the Figure 14 dotted-curve model. The dashed-curve (constant) variant is
// PerStepConstant.
func (h HostProfile) PerStep(n int) float64 {
	return h.StepTime + h.MemTime*h.MissFraction(n)
}

// PerStepConstant is the Figure 14 dashed-curve model: a constant host
// time, the large-N asymptote.
func (h HostProfile) PerStepConstant() float64 {
	return h.StepTime + h.MemTime
}

// Link models the host↔GRAPE interface (PCI on the production hosts).
type Link struct {
	DMASetup    float64 // fixed cost to start a DMA transaction, seconds
	Bandwidth   float64 // bytes per second
	IBytes      int     // bytes sent per i-particle (position, velocity, ...)
	ResultBytes int     // bytes returned per force result
	JBytes      int     // bytes per j-particle memory update
}

// PCI is the production 32-bit/33 MHz PCI interface.
var PCI = Link{
	DMASetup:    25e-6,
	Bandwidth:   133e6,
	IBytes:      72,
	ResultBytes: 56,
	JBytes:      72,
}

// GrapeHW carries the hardware constants that set the force-calculation
// time (the chip and board parameters of Sections 2-3).
type GrapeHW struct {
	ClockHz       float64
	Pipelines     int
	VMP           int
	ChipsPerBoard int
	PipelineDepth int
}

// ProductionHW is the GRAPE-6 processor chip and board.
var ProductionHW = GrapeHW{
	ClockHz:       90e6,
	Pipelines:     6,
	VMP:           8,
	ChipsPerBoard: 32,
	PipelineDepth: 30,
}

// Grape4HW abstracts the predecessor machine (Section 3) into the same
// cost model: the full 1-Tflops GRAPE-4 is represented as 9 board-level
// units sharing the j-particles (j split 9 ways), with a machine-wide
// i-parallelism of 384 — the "400" the paper quotes — at a 32 MHz clock
// streaming one j-particle per 6 cycles. Peak: 384/6 × 32 MHz × 57 ≈
// 1.05 Tflops, the paper's "1-Tflops GRAPE-4".
var Grape4HW = GrapeHW{
	ClockHz:       32e6,
	Pipelines:     64, // 4 clusters × 16 chip-groups sharing each j-stream
	VMP:           6,  // cycles per streamed j-particle
	ChipsPerBoard: 1,
	PipelineDepth: 50,
}

// Grape4Machine is the whole predecessor system: one mid-90s host on a
// shared I/O bus driving 9 j-partitions (Section 3.2: "4 clusters are
// connected to a single host, sharing one I/O bus").
func Grape4Machine() Machine {
	return Machine{
		Name:       "GRAPE-4 (1 host, full machine)",
		Clusters:   1,
		HostsPerCl: 1,
		// Nine j-partitions ("boards" in the abstract model).
		BoardsPerHost: 9,
		HW:            Grape4HW,
		Link:          Link{DMASetup: 40e-6, Bandwidth: 30e6, IBytes: 107 / 8 * 8, ResultBytes: 56, JBytes: 72},
		NIC:           simnet.NIC{Name: "single-host", RTT: 1e-6, Bandwidth: 1e9},
		Host: HostProfile{
			Name: "mid-90s RISC host", StepTime: 4e-6, MemTime: 8e-6,
			CacheBytes: 1e6, BytesPerParticle: 200,
		},
	}
}

// IBatch is the number of i-particles served per pass (48 in production).
func (g GrapeHW) IBatch() int { return g.Pipelines * g.VMP }

// Machine is a full system configuration: clusters of hosts, each host
// with its GRAPE boards, host network and frontend profile.
type Machine struct {
	Name          string
	Clusters      int
	HostsPerCl    int
	BoardsPerHost int
	HW            GrapeHW
	Link          Link
	NIC           simnet.NIC
	Host          HostProfile
}

// Validate reports configuration errors.
func (m Machine) Validate() error {
	if m.Clusters <= 0 || m.HostsPerCl <= 0 || m.BoardsPerHost <= 0 {
		return fmt.Errorf("perfmodel: non-positive machine shape %d/%d/%d",
			m.Clusters, m.HostsPerCl, m.BoardsPerHost)
	}
	if m.HW.ClockHz <= 0 || m.HW.Pipelines <= 0 || m.HW.VMP <= 0 || m.HW.ChipsPerBoard <= 0 {
		return fmt.Errorf("perfmodel: invalid hardware constants %+v", m.HW)
	}
	if m.Link.Bandwidth <= 0 {
		return fmt.Errorf("perfmodel: invalid link %+v", m.Link)
	}
	return m.NIC.Validate()
}

// Hosts returns the total number of host computers.
func (m Machine) Hosts() int { return m.Clusters * m.HostsPerCl }

// TotalChips returns the number of pipeline chips in the machine.
func (m Machine) TotalChips() int {
	return m.Hosts() * m.BoardsPerHost * m.HW.ChipsPerBoard
}

// PeakFlops returns the machine's peak under the 57-flops convention.
func (m Machine) PeakFlops() float64 {
	return float64(m.TotalChips()) * 57 * float64(m.HW.Pipelines) * m.HW.ClockHz
}

// Standard configurations of the paper's benchmark section. The 1-, 2- and
// 4-host systems are single-cluster (Figure 15); 8 and 16 hosts span 2 and
// 4 clusters (Figure 17).
func SingleNode(nic simnet.NIC, host HostProfile) Machine {
	return Machine{Name: "1-host 4-board", Clusters: 1, HostsPerCl: 1,
		BoardsPerHost: 4, HW: ProductionHW, Link: PCI, NIC: nic, Host: host}
}

func MultiNode(hosts int, nic simnet.NIC, host HostProfile) Machine {
	return Machine{Name: fmt.Sprintf("%d-host single-cluster", hosts),
		Clusters: 1, HostsPerCl: hosts,
		BoardsPerHost: 4, HW: ProductionHW, Link: PCI, NIC: nic, Host: host}
}

func MultiCluster(clusters int, nic simnet.NIC, host HostProfile) Machine {
	return Machine{Name: fmt.Sprintf("%d-cluster (%d hosts)", clusters, clusters*4),
		Clusters: clusters, HostsPerCl: 4,
		BoardsPerHost: 4, HW: ProductionHW, Link: PCI, NIC: nic, Host: host}
}

// ShardedFleet builds the full-machine emulation topology (Figure 19): a
// fleet of boards × chipsPerBoard production pipeline chips shared evenly
// over ranks simulated hosts in the given number of clusters. The paper's
// flagship configuration is 64 boards × 32 chips = 2048 chips in 4 host
// clusters; emulating it with more hosts than the real machine keeps the
// per-rank chip count integral while preserving the total silicon, so
// the cost model sees the same aggregate pipeline throughput.
//
// The shard is expressed as one board of totalChips/ranks chips per host
// (the cost model only consumes chips-per-host = BoardsPerHost ×
// ChipsPerBoard, so the board/chip split within a host is immaterial).
func ShardedFleet(clusters, ranks, boards, chipsPerBoard int, nic simnet.NIC, host HostProfile) (Machine, error) {
	if clusters <= 0 || ranks <= 0 || ranks%clusters != 0 {
		return Machine{}, fmt.Errorf("perfmodel: %d ranks not divisible into %d clusters", ranks, clusters)
	}
	totalChips := boards * chipsPerBoard
	if totalChips <= 0 || totalChips%ranks != 0 {
		return Machine{}, fmt.Errorf("perfmodel: %d×%d chip fleet not divisible over %d ranks",
			boards, chipsPerBoard, ranks)
	}
	hw := ProductionHW
	hw.ChipsPerBoard = totalChips / ranks
	return Machine{
		Name: fmt.Sprintf("full-machine %d×%d chips over %d clusters × %d hosts",
			boards, chipsPerBoard, clusters, ranks/clusters),
		Clusters:      clusters,
		HostsPerCl:    ranks / clusters,
		BoardsPerHost: 1,
		HW:            hw,
		Link:          PCI,
		NIC:           nic,
		Host:          host,
	}, nil
}

// BlockCost is the wall-clock decomposition of one block step, the
// multi-node generalization of eq. (10).
type BlockCost struct {
	Host  float64 // frontend integration work for its share of the block
	Comm  float64 // host↔GRAPE DMA and transfer
	Grape float64 // pipeline force-calculation time
	Sync  float64 // host-host synchronization and (multi-cluster) exchange
}

// Total returns the block's wall-clock time.
func (b BlockCost) Total() float64 { return b.Host + b.Comm + b.Grape + b.Sync }

// BlockTime predicts the cost of one block step with nb particles in a
// system of N particles.
//
// Work distribution (Sections 3.2, 4.2, 4.3): within a cluster the 2D
// board network lets each host integrate nb/hosts particles while its
// boards hold N/hosts j-particles each (single-cluster systems, h = total
// hosts) — for multi-cluster systems each cluster holds a full copy and
// integrates nb/clusters, so each host integrates nb/(hosts) and its
// boards hold N/HostsPerCl j-particles. After the block, single-cluster
// systems synchronize with a butterfly barrier; multi-cluster systems also
// exchange the updated particles between clusters over the host network,
// with the cluster's HostsPerCl hosts sharing the transfer (Section 2:
// "the bandwidth is increased by a factor of four").
func (m Machine) BlockTime(n, nb int) BlockCost {
	if nb <= 0 || n <= 0 {
		return BlockCost{}
	}
	hosts := m.Hosts()
	nbLocal := ceilDiv(nb, hosts)

	// j-particles per chip: in the 2D board grid, the boards of one host's
	// row hold the column subsets — collectively the full system — so each
	// host's chipsPerHost chips share all N particles. (The replication
	// across rows/clusters is what buys the parallelism; Section 3.2.)
	chipsPerHost := m.BoardsPerHost * m.HW.ChipsPerBoard
	jPerChip := ceilDiv(n, chipsPerHost)

	var c BlockCost
	c.Host = float64(nbLocal) * m.Host.PerStep(n)

	// Host↔GRAPE: one DMA round trip per block plus per-particle traffic
	// (send i-particles, fetch results, write back updated j-particles).
	bytes := nbLocal * (m.Link.IBytes + m.Link.ResultBytes + m.Link.JBytes)
	c.Comm = m.Link.DMASetup + float64(bytes)/m.Link.Bandwidth

	// GRAPE pipelines.
	passes := ceilDiv(nbLocal, m.HW.IBatch())
	cycles := float64(passes) * (float64(m.HW.VMP)*float64(jPerChip) + float64(m.HW.PipelineDepth))
	c.Grape = cycles / m.HW.ClockHz

	// Synchronization: two butterfly barriers per block step — one to
	// agree on the next block time, one to complete the update exchange
	// before the next force evaluation (the co-simulation in
	// internal/parallel performs exactly these two rounds).
	if hosts > 1 {
		c.Sync = 2 * m.barrierTime(hosts, 8)
	}
	if m.Clusters > 1 {
		// Copy-algorithm exchange: every cluster must receive the
		// particles updated on the other clusters; each cluster's hosts
		// share the outgoing transfer.
		perCluster := ceilDiv(nb, m.Clusters)
		outBytes := float64(perCluster*m.Link.JBytes) * float64(m.Clusters-1)
		c.Sync += outBytes/(m.NIC.Bandwidth*float64(m.HostsPerCl)) + m.NIC.RTT/2
	}
	return c
}

// barrierTime is the butterfly barrier cost among h hosts.
func (m Machine) barrierTime(h, bytes int) float64 {
	rounds := 0
	for bit := 1; bit < h; bit <<= 1 {
		rounds++
	}
	return float64(rounds) * m.NIC.OneWay(bytes)
}

// TimePerStep returns the predicted wall-clock time per individual
// particle step for blocks of mean size nbMean — the quantity plotted in
// Figures 14, 16 and 18.
func (m Machine) TimePerStep(n int, nbMean float64) float64 {
	if nbMean < 1 {
		nbMean = 1
	}
	c := m.BlockTime(n, int(math.Round(nbMean)))
	return c.Total() / nbMean
}

// Speed returns the predicted sustained calculation speed (flops/s) under
// eq. (9): S = 57·N·n_steps with n_steps = 1/TimePerStep.
func (m Machine) Speed(n int, nbMean float64) float64 {
	t := m.TimePerStep(n, nbMean)
	if t <= 0 {
		return 0
	}
	return units.Speed(n, 1/t)
}

// Efficiency returns Speed/PeakFlops.
func (m Machine) Efficiency(n int, nbMean float64) float64 {
	return m.Speed(n, nbMean) / m.PeakFlops()
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// The granular per-host cost pieces below are used by the message-level
// co-simulation (internal/parallel), which charges each simulated host for
// its own compute while the network costs emerge from simnet traffic.

// GrapeTimeHost returns the force-pipeline time for ni i-particles against
// njStored j-particles spread over ONE host's attached chips.
func (m Machine) GrapeTimeHost(ni, njStored int) float64 {
	if ni <= 0 || njStored <= 0 {
		return 0
	}
	chipsPerHost := m.BoardsPerHost * m.HW.ChipsPerBoard
	jPerChip := ceilDiv(njStored, chipsPerHost)
	passes := ceilDiv(ni, m.HW.IBatch())
	cycles := float64(passes) * (float64(m.HW.VMP)*float64(jPerChip) + float64(m.HW.PipelineDepth))
	return cycles / m.HW.ClockHz
}

// HostWork returns the frontend time to integrate nSteps particle steps at
// system size N (cache model included).
func (m Machine) HostWork(nSteps, n int) float64 {
	if nSteps <= 0 {
		return 0
	}
	return float64(nSteps) * m.Host.PerStep(n)
}

// LinkTime returns the host↔GRAPE transfer cost for a block of ni
// i-particles (one DMA setup plus per-particle traffic).
func (m Machine) LinkTime(ni int) float64 {
	if ni <= 0 {
		return 0
	}
	bytes := ni * (m.Link.IBytes + m.Link.ResultBytes + m.Link.JBytes)
	return m.Link.DMASetup + float64(bytes)/m.Link.Bandwidth
}
