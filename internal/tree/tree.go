// Package tree implements the Barnes & Hut (1986) octree force algorithm
// with monopole and optional quadrupole moments, plus a shared-timestep
// leapfrog integrator. It is the comparison baseline of Section 5 of the
// paper, which weighs GRAPE-6 against treecodes on general-purpose
// machines (Gadget on the T3E, Warren et al. on ASCI Red): the treecode
// trades per-interaction cost O(N log N) against lower force accuracy and
// — without individual timesteps — a ~100× larger step count for
// collisional problems.
package tree

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"grape6/internal/vec"
)

// Config controls tree construction and force evaluation.
type Config struct {
	Theta      float64 // opening angle (0 = exact direct summation)
	Eps        float64 // Plummer softening
	LeafCap    int     // max particles per leaf cell
	Quadrupole bool    // include quadrupole terms in cell expansions
}

// DefaultConfig matches the typical production setting of the codes the
// paper cites.
func DefaultConfig(eps float64) Config {
	return Config{Theta: 0.6, Eps: eps, LeafCap: 8, Quadrupole: false}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Theta < 0 || c.Theta > 2 {
		return fmt.Errorf("tree: opening angle %v out of [0,2]", c.Theta)
	}
	if c.Eps < 0 {
		return fmt.Errorf("tree: negative softening %v", c.Eps)
	}
	if c.LeafCap < 1 {
		return fmt.Errorf("tree: leaf capacity %d < 1", c.LeafCap)
	}
	return nil
}

// node is one octree cell.
type node struct {
	center   vec.V3  // geometric cell centre
	half     float64 // half-width of the cube
	com      vec.V3  // centre of mass
	mass     float64
	quad     [6]float64 // traceless quadrupole: xx yy zz xy xz yz
	first, n int        // particle index range (leaves)
	children [8]int32   // node indices, -1 when absent
	leaf     bool
}

// Tree is an immutable octree over a particle snapshot.
type Tree struct {
	cfg   Config
	nodes []node
	// Particles in tree order.
	pos  []vec.V3
	mass []float64
	perm []int // tree order → original index
}

// Build constructs the octree over the given snapshot.
func Build(pos []vec.V3, mass []float64, cfg Config) (*Tree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(pos) != len(mass) {
		return nil, fmt.Errorf("tree: %d positions vs %d masses", len(pos), len(mass))
	}
	t := &Tree{cfg: cfg}
	n := len(pos)
	t.pos = append([]vec.V3(nil), pos...)
	t.mass = append([]float64(nil), mass...)
	t.perm = make([]int, n)
	for i := range t.perm {
		t.perm[i] = i
	}
	if n == 0 {
		return t, nil
	}

	// Bounding cube.
	lo, hi := pos[0], pos[0]
	for _, p := range pos[1:] {
		lo = vec.New(math.Min(lo.X, p.X), math.Min(lo.Y, p.Y), math.Min(lo.Z, p.Z))
		hi = vec.New(math.Max(hi.X, p.X), math.Max(hi.Y, p.Y), math.Max(hi.Z, p.Z))
	}
	c := lo.Add(hi).Scale(0.5)
	half := math.Max(hi.X-lo.X, math.Max(hi.Y-lo.Y, hi.Z-lo.Z))/2 + 1e-12

	t.build(c, half, 0, n, 0)
	return t, nil
}

// build recursively constructs the subtree over t.pos[first:first+n] and
// returns the node index.
func (t *Tree) build(center vec.V3, half float64, first, n, depth int) int32 {
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{center: center, half: half, first: first, n: n})
	for k := range t.nodes[idx].children {
		t.nodes[idx].children[k] = -1
	}

	if n <= t.cfg.LeafCap || depth > 64 {
		t.nodes[idx].leaf = true
	} else {
		// Partition the range into octants in place.
		buckets := make([][]int, 8)
		bpos := make([][]vec.V3, 8)
		bmass := make([][]float64, 8)
		for i := first; i < first+n; i++ {
			o := octant(t.pos[i], center)
			buckets[o] = append(buckets[o], t.perm[i])
			bpos[o] = append(bpos[o], t.pos[i])
			bmass[o] = append(bmass[o], t.mass[i])
		}
		at := first
		starts := [8]int{}
		for o := 0; o < 8; o++ {
			starts[o] = at
			copy(t.perm[at:], buckets[o])
			copy(t.pos[at:], bpos[o])
			copy(t.mass[at:], bmass[o])
			at += len(buckets[o])
		}
		for o := 0; o < 8; o++ {
			cnt := len(buckets[o])
			if cnt == 0 {
				continue
			}
			ch := t.build(childCenter(center, half, o), half/2, starts[o], cnt, depth+1)
			t.nodes[idx].children[o] = ch
		}
	}

	// Moments (bottom-up: children already built).
	nd := &t.nodes[idx]
	var m float64
	var com vec.V3
	for i := first; i < first+n; i++ {
		m += t.mass[i]
		com = com.AddScaled(t.mass[i], t.pos[i])
	}
	if m > 0 {
		com = com.Scale(1 / m)
	}
	nd.mass = m
	nd.com = com
	if t.cfg.Quadrupole {
		var q [6]float64
		for i := first; i < first+n; i++ {
			d := t.pos[i].Sub(com)
			r2 := d.Norm2()
			w := t.mass[i]
			q[0] += w * (3*d.X*d.X - r2)
			q[1] += w * (3*d.Y*d.Y - r2)
			q[2] += w * (3*d.Z*d.Z - r2)
			q[3] += w * 3 * d.X * d.Y
			q[4] += w * 3 * d.X * d.Z
			q[5] += w * 3 * d.Y * d.Z
		}
		nd.quad = q
	}
	return idx
}

func octant(p, c vec.V3) int {
	o := 0
	if p.X >= c.X {
		o |= 1
	}
	if p.Y >= c.Y {
		o |= 2
	}
	if p.Z >= c.Z {
		o |= 4
	}
	return o
}

func childCenter(c vec.V3, half float64, o int) vec.V3 {
	q := half / 2
	dx, dy, dz := -q, -q, -q
	if o&1 != 0 {
		dx = q
	}
	if o&2 != 0 {
		dy = q
	}
	if o&4 != 0 {
		dz = q
	}
	return vec.New(c.X+dx, c.Y+dy, c.Z+dz)
}

// NodeCount returns the number of tree cells.
func (t *Tree) NodeCount() int { return len(t.nodes) }

// Force is a tree force evaluation result.
type Force struct {
	Acc vec.V3
	Pot float64
	// Interactions counts cell and particle terms evaluated — the
	// treecode's cost measure (∝ log N per particle).
	Interactions int
}

// Accel evaluates the force at point p (excluding any particle closer than
// 1e-14, which removes the self-term when p is a particle position).
func (t *Tree) Accel(p vec.V3) Force {
	var f Force
	if len(t.nodes) == 0 {
		return f
	}
	t.walk(0, p, &f)
	return f
}

func (t *Tree) walk(ni int32, p vec.V3, f *Force) {
	nd := &t.nodes[ni]
	if nd.mass == 0 {
		return
	}
	d := nd.com.Sub(p)
	r2 := d.Norm2()

	// Barnes-Hut criterion: open if cellsize/distance > θ.
	size := 2 * nd.half
	open := nd.leaf || size*size > t.cfg.Theta*t.cfg.Theta*r2

	if !open {
		t.cellForce(nd, p, d, r2, f)
		return
	}
	if nd.leaf {
		e2 := t.cfg.Eps * t.cfg.Eps
		for i := nd.first; i < nd.first+nd.n; i++ {
			dd := t.pos[i].Sub(p)
			rr := dd.Norm2() + e2
			if rr <= 1e-28 {
				continue // self term
			}
			rinv := 1 / math.Sqrt(rr)
			mr3 := t.mass[i] * rinv * rinv * rinv
			f.Acc = f.Acc.AddScaled(mr3, dd)
			f.Pot -= t.mass[i] * rinv
			f.Interactions++
		}
		return
	}
	for _, ch := range nd.children {
		if ch >= 0 {
			t.walk(ch, p, f)
		}
	}
}

// cellForce applies the multipole expansion of a well-separated cell.
func (t *Tree) cellForce(nd *node, p, d vec.V3, r2 float64, f *Force) {
	e2 := t.cfg.Eps * t.cfg.Eps
	r2 += e2
	rinv := 1 / math.Sqrt(r2)
	rinv2 := rinv * rinv
	mr3 := nd.mass * rinv * rinv2
	f.Acc = f.Acc.AddScaled(mr3, d)
	f.Pot -= nd.mass * rinv
	f.Interactions++

	if t.cfg.Quadrupole {
		// x here points from the field point to the cell: the expansion
		// uses the vector from the cell to the point, so flip the sign.
		x := d.Neg()
		q := nd.quad
		qx := vec.New(
			q[0]*x.X+q[3]*x.Y+q[4]*x.Z,
			q[3]*x.X+q[1]*x.Y+q[5]*x.Z,
			q[4]*x.X+q[5]*x.Y+q[2]*x.Z,
		)
		xqx := x.Dot(qx)
		r5inv := rinv2 * rinv2 * rinv
		// φ_quad = -(x·Q·x)/(2 r^5); a_quad = -∇φ_quad
		//        = (Qx)/r^5 - (5/2)(x·Q·x) x/r^7.
		f.Pot -= xqx * r5inv / 2
		aq := qx.Scale(r5inv).Sub(x.Scale(2.5 * xqx * r5inv * rinv2))
		f.Acc = f.Acc.Add(aq)
		f.Interactions++
	}
}

// AccelAll evaluates forces at every position in ps, fanning out over the
// host's cores.
func (t *Tree) AccelAll(ps []vec.V3) []Force {
	out := make([]Force, len(ps))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(ps) {
		workers = len(ps)
	}
	if workers <= 1 {
		for i, p := range ps {
			out[i] = t.Accel(p)
		}
		return out
	}
	var wg sync.WaitGroup
	chunk := (len(ps) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(ps) {
			hi = len(ps)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = t.Accel(ps[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
