package tree

import (
	"math"
	"testing"

	"grape6/internal/model"
	"grape6/internal/vec"
	"grape6/internal/xrand"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(0.01).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Theta: -0.1, LeafCap: 8},
		{Theta: 2.5, LeafCap: 8},
		{Theta: 0.5, Eps: -1, LeafCap: 8},
		{Theta: 0.5, LeafCap: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestBuildEmptyAndSingle(t *testing.T) {
	tr, err := Build(nil, nil, DefaultConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	f := tr.Accel(vec.Zero)
	if f.Acc != vec.Zero || f.Pot != 0 {
		t.Error("empty tree produced force")
	}
	tr, err = Build([]vec.V3{vec.New(1, 0, 0)}, []float64{2}, DefaultConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	f = tr.Accel(vec.Zero)
	if math.Abs(f.Acc.X-2) > 1e-12 {
		t.Errorf("single particle acc = %v", f.Acc)
	}
}

func TestBuildRejectsMismatch(t *testing.T) {
	if _, err := Build(make([]vec.V3, 3), make([]float64, 2), DefaultConfig(0)); err == nil {
		t.Error("accepted mismatched lengths")
	}
}

func TestThetaZeroIsExact(t *testing.T) {
	// θ=0 forces every cell open: tree equals direct summation exactly
	// (modulo summation order).
	sys := model.Plummer(200, xrand.New(1))
	cfg := DefaultConfig(0.01)
	cfg.Theta = 0
	tr, err := Build(sys.Pos, sys.Mass, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2 := cfg.Eps * cfg.Eps
	for i := 0; i < 20; i++ {
		f := tr.Accel(sys.Pos[i])
		var exact vec.V3
		for j := 0; j < sys.N; j++ {
			if j == i {
				continue
			}
			d := sys.Pos[j].Sub(sys.Pos[i])
			r2 := d.Norm2() + e2
			rinv := 1 / math.Sqrt(r2)
			exact = exact.AddScaled(sys.Mass[j]*rinv*rinv*rinv, d)
		}
		if f.Acc.Sub(exact).Norm() > 1e-12*exact.Norm() {
			t.Fatalf("θ=0 tree force differs from direct at %d: %v vs %v", i, f.Acc, exact)
		}
	}
}

func TestForceErrorDecreasesWithTheta(t *testing.T) {
	sys := model.Plummer(500, xrand.New(2))
	errAt := func(theta float64) float64 {
		cfg := DefaultConfig(0.01)
		cfg.Theta = theta
		rms, err := ForceError(sys, cfg, 50)
		if err != nil {
			t.Fatal(err)
		}
		return rms
	}
	coarse := errAt(1.0)
	fine := errAt(0.4)
	if fine >= coarse {
		t.Errorf("error did not decrease with θ: %v vs %v", fine, coarse)
	}
	if coarse > 0.2 {
		t.Errorf("θ=1 error implausibly large: %v", coarse)
	}
	if fine <= 0 {
		t.Error("θ=0.4 error should be positive")
	}
}

func TestQuadrupoleImproves(t *testing.T) {
	sys := model.Plummer(500, xrand.New(3))
	cfg := DefaultConfig(0.01)
	cfg.Theta = 0.8
	mono, err := ForceError(sys, cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Quadrupole = true
	quad, err := ForceError(sys, cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	if quad >= mono {
		t.Errorf("quadrupole did not improve accuracy: %v vs %v", quad, mono)
	}
}

func TestQuadrupoleFarField(t *testing.T) {
	// A dumbbell seen from afar: quadrupole must capture the leading
	// correction. Two unit masses at ±0.5 on x; field point at (10,0,0).
	pos := []vec.V3{vec.New(0.5, 0, 0), vec.New(-0.5, 0, 0)}
	mass := []float64{1, 1}
	// Force a single cell: huge leaf... use LeafCap 1 and theta small so
	// the cell is NOT opened? Instead evaluate via a one-node tree: use
	// LeafCap 2 and theta large so the root is used as a cell.
	cfg := Config{Theta: 1.9, Eps: 0, LeafCap: 1, Quadrupole: true}
	tr, err := Build(pos, mass, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := vec.New(10, 0, 0)
	f := tr.Accel(p)
	// Exact: a = -[1/(9.5)² + 1/(10.5)²] toward +x... sources at x<p, so
	// acceleration points in -x: a_x = -(1/90.25 + 1/110.25).
	exact := -(1/(9.5*9.5) + 1/(10.5*10.5))
	mono := -2.0 / 100.0
	gotErr := math.Abs(f.Acc.X - exact)
	monoErr := math.Abs(mono - exact)
	if gotErr >= monoErr/3 {
		t.Errorf("quadrupole error %v not ≪ monopole error %v (got %v, exact %v)",
			gotErr, monoErr, f.Acc.X, exact)
	}
}

func TestInteractionsScaleLogarithmically(t *testing.T) {
	// Cost per particle ∝ log N: quadrupling N should much less than
	// quadruple the per-particle interaction count.
	count := func(n int) float64 {
		sys := model.Plummer(n, xrand.New(4))
		tr, err := Build(sys.Pos, sys.Mass, DefaultConfig(0.01))
		if err != nil {
			t.Fatal(err)
		}
		var total int
		for i := 0; i < 50; i++ {
			total += tr.Accel(sys.Pos[i*n/50]).Interactions
		}
		return float64(total) / 50
	}
	c1 := count(1000)
	c4 := count(4000)
	if ratio := c4 / c1; ratio > 2.5 {
		t.Errorf("interaction growth ratio %v too steep for O(log N)", ratio)
	}
	if c4 <= c1 {
		t.Error("interaction count should still grow with N")
	}
}

func TestAccelAllMatchesSerial(t *testing.T) {
	sys := model.Plummer(300, xrand.New(5))
	tr, err := Build(sys.Pos, sys.Mass, DefaultConfig(0.01))
	if err != nil {
		t.Fatal(err)
	}
	all := tr.AccelAll(sys.Pos)
	for i := 0; i < sys.N; i += 17 {
		one := tr.Accel(sys.Pos[i])
		if all[i].Acc != one.Acc || all[i].Pot != one.Pot {
			t.Fatalf("AccelAll[%d] differs from Accel", i)
		}
	}
}

func TestMomentumConservationThetaZero(t *testing.T) {
	sys := model.Plummer(100, xrand.New(6))
	cfg := DefaultConfig(0.01)
	cfg.Theta = 0
	tr, err := Build(sys.Pos, sys.Mass, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sum vec.V3
	for i := 0; i < sys.N; i++ {
		f := tr.Accel(sys.Pos[i])
		sum = sum.AddScaled(sys.Mass[i], f.Acc)
	}
	if sum.MaxAbs() > 1e-11 {
		t.Errorf("Σ m a = %v with exact opening", sum)
	}
}

func TestTreeOrderPreservesMass(t *testing.T) {
	sys := model.Plummer(128, xrand.New(7))
	tr, err := Build(sys.Pos, sys.Mass, DefaultConfig(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NodeCount() == 0 {
		t.Fatal("no nodes")
	}
	// Root mass equals total mass.
	if math.Abs(tr.nodes[0].mass-1) > 1e-12 {
		t.Errorf("root mass = %v", tr.nodes[0].mass)
	}
	// perm is a permutation.
	seen := make([]bool, sys.N)
	for _, p := range tr.perm {
		if seen[p] {
			t.Fatal("perm not a permutation")
		}
		seen[p] = true
	}
}

func TestLeapfrogEnergyConservation(t *testing.T) {
	sys := model.Plummer(256, xrand.New(8))
	cfg := DefaultConfig(1.0 / 64)
	cfg.Theta = 0.5
	it, err := NewIntegrator(sys, cfg, 1.0/256)
	if err != nil {
		t.Fatal(err)
	}
	e0 := it.Energy()
	if err := it.Run(0.5); err != nil {
		t.Fatal(err)
	}
	e1 := it.Energy()
	if rel := math.Abs((e1 - e0) / e0); rel > 5e-3 {
		t.Errorf("leapfrog energy error = %v", rel)
	}
	if it.Steps != int64(sys.N)*128 {
		t.Errorf("steps = %d, want %d", it.Steps, int64(sys.N)*128)
	}
	if it.Interactions == 0 {
		t.Error("no interactions counted")
	}
}

func TestLeapfrogSecondOrder(t *testing.T) {
	// Halving dt should reduce the energy error by ≈4 (2nd order). Use
	// θ=0 to avoid tree-error contamination.
	errAt := func(dt float64) float64 {
		sys := model.Plummer(64, xrand.New(9))
		cfg := DefaultConfig(1.0 / 16)
		cfg.Theta = 0
		it, err := NewIntegrator(sys, cfg, dt)
		if err != nil {
			t.Fatal(err)
		}
		e0 := it.Energy()
		if err := it.Run(0.25); err != nil {
			t.Fatal(err)
		}
		return math.Abs((it.Energy() - e0) / e0)
	}
	coarse := errAt(1.0 / 64)
	fine := errAt(1.0 / 128)
	ratio := coarse / fine
	if ratio < 2.5 || ratio > 6.5 {
		t.Errorf("convergence ratio = %v, want ≈4", ratio)
	}
}

func TestIntegratorRejectsBadInput(t *testing.T) {
	sys := model.Plummer(16, xrand.New(10))
	if _, err := NewIntegrator(sys, DefaultConfig(0.01), 0); err == nil {
		t.Error("accepted zero timestep")
	}
	bad := DefaultConfig(0.01)
	bad.Theta = -1
	if _, err := NewIntegrator(sys, bad, 0.01); err == nil {
		t.Error("accepted bad config")
	}
}

func TestStepRatio(t *testing.T) {
	// Uniform steps: ratio 1.
	if r := StepRatio([]float64{0.1, 0.1, 0.1}); math.Abs(r-1) > 1e-12 {
		t.Errorf("uniform ratio = %v", r)
	}
	// One particle 100x smaller: harmonic mean pulled down but still well
	// above min → ratio > 1.
	steps := make([]float64, 100)
	for i := range steps {
		steps[i] = 0.1
	}
	steps[0] = 0.001
	r := StepRatio(steps)
	if r < 10 || r > 101 {
		t.Errorf("skewed ratio = %v", r)
	}
	if StepRatio(nil) != 1 {
		t.Error("empty ratio should be 1")
	}
}

func TestStepRatioPaperClaim(t *testing.T) {
	// Section 5: "the ratio between the smallest timestep and (harmonic)
	// mean timestep is larger than 100" for the production runs. Verify
	// the claim's mechanism on a Plummer model with a hard centre: measure
	// the individual-step distribution from a Hermite run and check the
	// ratio is ≫1 (the small-N stand-in for the paper's 100).
	sys := model.Plummer(256, xrand.New(11))
	// Crude step proxy: Aarseth-like dt ∝ (r²+ε²)^{3/4} spread. Use the
	// actual spread of |a| as a proxy via softened nearest distances.
	steps := make([]float64, sys.N)
	for i := range steps {
		// local density proxy: distance to origin shapes the orbital time
		r := sys.Pos[i].Norm()
		steps[i] = math.Pow(r*r+1.0/4096, 0.75)
	}
	if r := StepRatio(steps); r < 3 {
		t.Errorf("step ratio = %v, want ≫1", r)
	}
}

func BenchmarkTreeBuild4096(b *testing.B) {
	sys := model.Plummer(4096, xrand.New(1))
	cfg := DefaultConfig(0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(sys.Pos, sys.Mass, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeForce4096(b *testing.B) {
	sys := model.Plummer(4096, xrand.New(1))
	tr, err := Build(sys.Pos, sys.Mass, DefaultConfig(0.01))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Accel(sys.Pos[i%4096])
	}
}
