package tree

import (
	"fmt"
	"math"

	"grape6/internal/nbody"
	"grape6/internal/vec"
)

// Integrator is a shared-timestep kick-drift-kick leapfrog driven by tree
// forces — the integration scheme of the treecodes the paper compares
// against (Warren et al.'s ASCI-Red run used shared timesteps; Section 5
// argues this costs a factor ≳100 in step count for collisional problems
// because the ratio between the smallest and the harmonic-mean timestep
// exceeds 100).
type Integrator struct {
	Sys *nbody.System
	Cfg Config
	DT  float64

	T            float64
	Steps        int64 // particle steps (N per shared step)
	Interactions int64 // tree interaction terms evaluated

	acc []vec.V3
}

// NewIntegrator prepares a leapfrog run with the given shared timestep.
func NewIntegrator(sys *nbody.System, cfg Config, dt float64) (*Integrator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dt <= 0 {
		return nil, fmt.Errorf("tree: non-positive timestep %v", dt)
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	it := &Integrator{Sys: sys, Cfg: cfg, DT: dt, acc: make([]vec.V3, sys.N)}
	if err := it.refreshForces(); err != nil {
		return nil, err
	}
	return it, nil
}

func (it *Integrator) refreshForces() error {
	t, err := Build(it.Sys.Pos, it.Sys.Mass, it.Cfg)
	if err != nil {
		return err
	}
	fs := t.AccelAll(it.Sys.Pos)
	for i := range fs {
		it.acc[i] = fs[i].Acc
		it.Sys.Pot[i] = fs[i].Pot
		it.Interactions += int64(fs[i].Interactions)
	}
	return nil
}

// Step advances the system by one shared leapfrog step (KDK).
func (it *Integrator) Step() error {
	sys := it.Sys
	h := it.DT / 2
	for i := 0; i < sys.N; i++ {
		sys.Vel[i] = sys.Vel[i].AddScaled(h, it.acc[i])
		sys.Pos[i] = sys.Pos[i].AddScaled(it.DT, sys.Vel[i])
	}
	if err := it.refreshForces(); err != nil {
		return err
	}
	for i := 0; i < sys.N; i++ {
		sys.Vel[i] = sys.Vel[i].AddScaled(h, it.acc[i])
		sys.Time[i] += it.DT
	}
	it.T += it.DT
	it.Steps += int64(sys.N)
	return nil
}

// Run advances until time t (inclusive of the last full step below t).
func (it *Integrator) Run(t float64) error {
	for it.T+it.DT <= t+1e-12 {
		if err := it.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Energy returns kinetic plus (tree-approximated) potential energy.
func (it *Integrator) Energy() float64 {
	e := it.Sys.KineticEnergy()
	for i := 0; i < it.Sys.N; i++ {
		e += 0.5 * it.Sys.Mass[i] * it.Sys.Pot[i]
	}
	return e
}

// ForceError measures the RMS relative force error of the tree against
// direct summation over a sample of nSample particles — the accuracy axis
// of the paper's treecode comparison.
func ForceError(sys *nbody.System, cfg Config, nSample int) (rms float64, err error) {
	t, err := Build(sys.Pos, sys.Mass, cfg)
	if err != nil {
		return 0, err
	}
	if nSample > sys.N {
		nSample = sys.N
	}
	stride := sys.N / nSample
	if stride < 1 {
		stride = 1
	}
	var sum float64
	var count int
	e2 := cfg.Eps * cfg.Eps
	for i := 0; i < sys.N; i += stride {
		ft := t.Accel(sys.Pos[i])
		// Direct reference.
		var exact vec.V3
		for j := 0; j < sys.N; j++ {
			if j == i {
				continue
			}
			d := sys.Pos[j].Sub(sys.Pos[i])
			r2 := d.Norm2() + e2
			rinv := 1 / math.Sqrt(r2)
			exact = exact.AddScaled(sys.Mass[j]*rinv*rinv*rinv, d)
		}
		if n := exact.Norm(); n > 0 {
			rel := ft.Acc.Sub(exact).Norm() / n
			sum += rel * rel
			count++
		}
	}
	if count == 0 {
		return 0, nil
	}
	return math.Sqrt(sum / float64(count)), nil
}

// StepRatio estimates the cost ratio between shared and individual
// timesteps for a system: the ratio of the harmonic-mean individual
// timestep to the smallest individual timestep, which is the factor by
// which a shared-timestep code must over-step the easy particles. The
// paper states this exceeds 100 for its production runs.
func StepRatio(steps []float64) float64 {
	if len(steps) == 0 {
		return 1
	}
	minStep := steps[0]
	var invSum float64
	for _, s := range steps {
		if s <= 0 {
			continue
		}
		if s < minStep {
			minStep = s
		}
		invSum += 1 / s
	}
	if invSum == 0 || minStep <= 0 {
		return 1
	}
	harmonic := float64(len(steps)) / invSum
	return harmonic / minStep
}
