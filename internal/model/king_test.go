package model

import (
	"math"
	"testing"

	"grape6/internal/xrand"
)

func TestNewKingRange(t *testing.T) {
	if _, err := NewKing(0.1); err == nil {
		t.Error("accepted W0=0.1")
	}
	if _, err := NewKing(20); err == nil {
		t.Error("accepted W0=20")
	}
	for _, w0 := range []float64{1, 3, 6, 9} {
		if _, err := NewKing(w0); err != nil {
			t.Errorf("W0=%v: %v", w0, err)
		}
	}
}

func TestKingRhoShape(t *testing.T) {
	if kingRho(0) != 0 || kingRho(-1) != 0 {
		t.Error("density must vanish at and below w=0")
	}
	// Monotone increasing in w.
	prev := 0.0
	for _, w := range []float64{0.5, 1, 2, 4, 8} {
		r := kingRho(w)
		if r <= prev {
			t.Errorf("kingRho not increasing at w=%v", w)
		}
		prev = r
	}
}

func TestConcentrationGrowsWithW0(t *testing.T) {
	// Deeper potentials make more concentrated clusters; c(W0) is the
	// classic monotone King (1966) sequence: c≈0.67 at W0=3, c≈1.25 at
	// W0=6, c≈2.1 at W0=9.
	prev := 0.0
	for _, w0 := range []float64{1, 3, 6, 9} {
		k, err := NewKing(w0)
		if err != nil {
			t.Fatal(err)
		}
		c := k.Concentration()
		if c <= prev {
			t.Errorf("concentration not increasing at W0=%v: %v", w0, c)
		}
		prev = c
	}
	// Spot-check against the King (1966) sequence.
	k6, _ := NewKing(6)
	if c := k6.Concentration(); math.Abs(c-1.25) > 0.15 {
		t.Errorf("c(W0=6) = %v, King sequence ≈1.25", c)
	}
	k3, _ := NewKing(3)
	if c := k3.Concentration(); math.Abs(c-0.67) > 0.12 {
		t.Errorf("c(W0=3) = %v, King sequence ≈0.67", c)
	}
}

func TestKingSampleHeggieUnits(t *testing.T) {
	sys, err := King(2000, 6, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.TotalMass(); math.Abs(got-1) > 1e-12 {
		t.Errorf("mass = %v", got)
	}
	// E = -1/4 by construction of the rescaling.
	if got := sys.TotalEnergy(0); math.Abs(got+0.25) > 1e-10 {
		t.Errorf("energy = %v, want -0.25", got)
	}
	if com := sys.CenterOfMass(); com.MaxAbs() > 0.01 {
		t.Errorf("COM = %v", com)
	}
}

func TestKingNearVirial(t *testing.T) {
	sys, err := King(4000, 5, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	q := sys.VirialRatio(0)
	if q < 0.85 || q > 1.15 {
		t.Errorf("virial ratio = %v, want ≈1", q)
	}
}

func TestKingTidalTruncation(t *testing.T) {
	k, err := NewKing(4)
	if err != nil {
		t.Fatal(err)
	}
	sys := k.Sample(3000, xrand.New(3))
	// After rescaling the cutoff persists: the radius distribution must
	// have a hard edge — max radius within a factor ~1.3 of the 99th
	// percentile (no isothermal tail).
	radii := make([]float64, sys.N)
	for i := range radii {
		radii[i] = sys.Pos[i].Norm()
	}
	max, p99 := 0.0, 0.0
	sorted := append([]float64(nil), radii...)
	quickSortFloat(sorted)
	max = sorted[len(sorted)-1]
	p99 = sorted[len(sorted)*99/100]
	if max > 1.5*p99 {
		t.Errorf("no tidal edge: max radius %v vs p99 %v", max, p99)
	}
}

func quickSortFloat(xs []float64) {
	if len(xs) < 2 {
		return
	}
	p := xs[len(xs)/2]
	i, j := 0, len(xs)-1
	for i <= j {
		for xs[i] < p {
			i++
		}
		for xs[j] > p {
			j--
		}
		if i <= j {
			xs[i], xs[j] = xs[j], xs[i]
			i++
			j--
		}
	}
	quickSortFloat(xs[:j+1])
	quickSortFloat(xs[i:])
}

func TestKingMoreConcentratedThanLowW0(t *testing.T) {
	// Half-mass radius over 90%-mass radius shrinks with W0.
	ratioFor := func(w0 float64) float64 {
		sys, err := King(3000, w0, xrand.New(4))
		if err != nil {
			t.Fatal(err)
		}
		radii := make([]float64, sys.N)
		for i := range radii {
			radii[i] = sys.Pos[i].Norm()
		}
		quickSortFloat(radii)
		return radii[sys.N/2] / radii[sys.N*9/10]
	}
	if r1, r9 := ratioFor(1), ratioFor(9); r9 >= r1 {
		t.Errorf("W0=9 not more concentrated: %v vs %v", r9, r1)
	}
}

func TestKingDeterministic(t *testing.T) {
	a, err := King(200, 6, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := King(200, 6, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.N; i++ {
		if a.Pos[i] != b.Pos[i] || a.Vel[i] != b.Vel[i] {
			t.Fatalf("non-deterministic sampling at %d", i)
		}
	}
}

func BenchmarkKingSample(b *testing.B) {
	k, err := NewKing(6)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Sample(500, rng)
	}
}
