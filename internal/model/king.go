package model

import (
	"fmt"
	"math"

	"grape6/internal/nbody"
	"grape6/internal/units"
	"grape6/internal/xrand"
)

// King models are the standard initial conditions for globular-cluster
// simulations — the collisional systems GRAPE was built for. A King (1966)
// model is a lowered isothermal sphere parameterised by the central
// dimensionless potential W0: small W0 gives nearly homogeneous clusters,
// large W0 strongly concentrated ones (observed clusters span W0 ≈ 3-12).
//
// The implementation solves the dimensionless Poisson equation for w(x) =
// ψ/σ², builds density and enclosed-mass tables, samples positions from
// the cumulative mass and velocities from the King distribution function
// f(E) ∝ e^{(ψ-v²/2)/σ²} - 1, and rescales the realization to Heggie
// units (M = 1, E = -1/4).
type KingModel struct {
	W0 float64

	// Radial tables in model units (King radius r0 = 1, σ = 1, G = 1).
	x    []float64 // radius grid
	w    []float64 // dimensionless potential
	menc []float64 // enclosed mass
	rt   float64   // tidal radius
}

// kingRho is the dimensionless King density ρ̂(w) for w > 0:
// e^w erf(√w) - √(4w/π) (1 + 2w/3).
func kingRho(w float64) float64 {
	if w <= 0 {
		return 0
	}
	sq := math.Sqrt(w)
	return math.Exp(w)*math.Erf(sq) - math.Sqrt(4*w/math.Pi)*(1+2*w/3)
}

// NewKing solves the King structure equations for the given W0.
func NewKing(w0 float64) (*KingModel, error) {
	if w0 < 0.3 || w0 > 14 {
		return nil, fmt.Errorf("model: King W0=%v outside supported range [0.3, 14]", w0)
	}
	k := &KingModel{W0: w0}

	rho0 := kingRho(w0)
	// Poisson: w'' + (2/x) w' = -9 ρ̂(w)/ρ̂(W0); RK4 on (w, u=w').
	deriv := func(x, w, u float64) (dw, du float64) {
		dw = u
		du = -9 * kingRho(w) / rho0
		if x > 0 {
			du -= 2 / x * u
		}
		return
	}

	const dx = 1e-3
	x, w, u := 1e-6, w0, 0.0
	var mass float64
	k.append(x, w, mass)
	for w > 0 && x < 1e4 {
		// Classic RK4 step.
		k1w, k1u := deriv(x, w, u)
		k2w, k2u := deriv(x+dx/2, w+dx/2*k1w, u+dx/2*k1u)
		k3w, k3u := deriv(x+dx/2, w+dx/2*k2w, u+dx/2*k2u)
		k4w, k4u := deriv(x+dx, w+dx*k3w, u+dx*k3u)
		wNew := w + dx/6*(k1w+2*k2w+2*k3w+k4w)
		uNew := u + dx/6*(k1u+2*k2u+2*k3u+k4u)
		xNew := x + dx

		// Accumulate the mass integral 4π x² ρ dx (model units where the
		// Poisson constant 9 absorbs 4πG/σ²; only relative masses matter
		// for sampling, so the prefactor is irrelevant).
		mass += x * x * kingRho(w) * dx

		if wNew <= 0 {
			// Interpolate the tidal radius.
			frac := w / (w - wNew)
			k.rt = x + frac*dx
			k.append(k.rt, 0, mass)
			break
		}
		x, w, u = xNew, wNew, uNew
		k.append(x, w, mass)
	}
	if k.rt == 0 {
		return nil, fmt.Errorf("model: King W0=%v did not truncate within x=1e4", w0)
	}
	return k, nil
}

func (k *KingModel) append(x, w, m float64) {
	k.x = append(k.x, x)
	k.w = append(k.w, w)
	k.menc = append(k.menc, m)
}

// TidalRadius returns the truncation radius in model units (r0 = 1).
func (k *KingModel) TidalRadius() float64 { return k.rt }

// Concentration returns c = log10(rt/r0).
func (k *KingModel) Concentration() float64 { return math.Log10(k.rt) }

// lookup returns the table index bracketing radius x.
func (k *KingModel) lookup(x float64) int {
	lo, hi := 0, len(k.x)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if k.x[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 {
		lo--
	}
	return lo
}

// potentialAt interpolates w at radius x.
func (k *KingModel) potentialAt(x float64) float64 {
	if x >= k.rt {
		return 0
	}
	i := k.lookup(x)
	if i >= len(k.x)-1 {
		return k.w[len(k.w)-1]
	}
	f := (x - k.x[i]) / (k.x[i+1] - k.x[i])
	return k.w[i] + f*(k.w[i+1]-k.w[i])
}

// radiusForMass inverts the cumulative mass profile.
func (k *KingModel) radiusForMass(frac float64) float64 {
	target := frac * k.menc[len(k.menc)-1]
	lo, hi := 0, len(k.menc)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if k.menc[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return k.x[0]
	}
	f := (target - k.menc[lo-1]) / math.Max(k.menc[lo]-k.menc[lo-1], 1e-300)
	return k.x[lo-1] + f*(k.x[lo]-k.x[lo-1])
}

// sampleSpeed draws a speed from f(v) ∝ v² (e^{w - v²/2} - 1), v < √(2w).
func (k *KingModel) sampleSpeed(w float64, rng *xrand.Source) float64 {
	vmax := math.Sqrt(2 * w)
	// Envelope: scan for the density maximum.
	g := func(v float64) float64 {
		return v * v * (math.Exp(w-v*v/2) - 1)
	}
	var gmax float64
	for i := 1; i < 64; i++ {
		if v := g(vmax * float64(i) / 64); v > gmax {
			gmax = v
		}
	}
	gmax *= 1.05
	for {
		v := rng.Float64() * vmax
		if rng.Float64()*gmax < g(v) {
			return v
		}
	}
}

// Sample draws an n-body realization in Heggie units (M = 1, E = -1/4),
// centred with zero net momentum.
func (k *KingModel) Sample(n int, rng *xrand.Source) *nbody.System {
	sys := nbody.New(n)
	for i := 0; i < n; i++ {
		sys.Mass[i] = 1.0 / float64(n)
		r := k.radiusForMass(rng.Float64())
		w := k.potentialAt(r)
		x, y, z := rng.OnSphere()
		sys.Pos[i].X, sys.Pos[i].Y, sys.Pos[i].Z = x*r, y*r, z*r
		v := k.sampleSpeed(w, rng)
		vx, vy, vz := rng.OnSphere()
		sys.Vel[i].X, sys.Vel[i].Y, sys.Vel[i].Z = vx*v, vy*v, vz*v
	}
	sys.CenterOnOrigin()

	// Rescale to Heggie units AND exact virial equilibrium: velocities by
	// α so that T' = 1/4 and positions by β so that W' = -1/2 (hence
	// E = -1/4, |2T/W| = 1). The uniform velocity scaling also absorbs
	// the King model's mass normalization (the dimensionless Poisson
	// solution fixes GM/(σ²r₀), not M = 1), exactly as standard
	// initial-condition generators do.
	ke := sys.KineticEnergy()
	pe := sys.PotentialEnergy(0)
	if pe >= 0 || ke <= 0 {
		return sys // degenerate tiny sample; leave unscaled
	}
	alpha := math.Sqrt(0.25 / ke)
	beta := pe / -0.5
	for i := 0; i < n; i++ {
		sys.Pos[i] = sys.Pos[i].Scale(beta)
		sys.Vel[i] = sys.Vel[i].Scale(alpha)
	}
	return sys
}

// King samples an n-particle King model with central potential w0 in
// Heggie units — the convenience wrapper mirroring Plummer.
func King(n int, w0 float64, rng *xrand.Source) (*nbody.System, error) {
	k, err := NewKing(w0)
	if err != nil {
		return nil, err
	}
	sys := k.Sample(n, rng)
	_ = units.TotalMass // Heggie-units contract documented in package units
	return sys, nil
}
