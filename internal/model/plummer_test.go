package model

import (
	"math"
	"testing"

	"grape6/internal/units"
	"grape6/internal/xrand"
)

func TestPlummerBasicInvariants(t *testing.T) {
	s := Plummer(1000, xrand.New(1))
	if s.N != 1000 {
		t.Fatalf("N = %d", s.N)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid system: %v", err)
	}
	if got := s.TotalMass(); math.Abs(got-1) > 1e-12 {
		t.Errorf("total mass = %v", got)
	}
	if com := s.CenterOfMass(); com.MaxAbs() > 1e-12 {
		t.Errorf("COM = %v", com)
	}
	if cov := s.CenterOfMassVelocity(); cov.MaxAbs() > 1e-12 {
		t.Errorf("COM velocity = %v", cov)
	}
}

func TestPlummerVirial(t *testing.T) {
	// A sampled Plummer model should be close to virial equilibrium:
	// |2T/W| ≈ 1 within sampling noise.
	s := Plummer(4000, xrand.New(2))
	q := s.VirialRatio(0)
	if q < 0.9 || q > 1.1 {
		t.Errorf("virial ratio = %v, want ≈1", q)
	}
}

func TestPlummerEnergy(t *testing.T) {
	// In Heggie units the total energy should be ≈ -1/4.
	s := Plummer(4000, xrand.New(3))
	e := s.TotalEnergy(0)
	if math.Abs(e-units.TotalEnergy) > 0.04 {
		t.Errorf("total energy = %v, want ≈ %v", e, units.TotalEnergy)
	}
}

func TestPlummerDeterministic(t *testing.T) {
	a := Plummer(100, xrand.New(7))
	b := Plummer(100, xrand.New(7))
	for i := 0; i < 100; i++ {
		if a.Pos[i] != b.Pos[i] || a.Vel[i] != b.Vel[i] {
			t.Fatalf("particle %d differs between equal-seed samples", i)
		}
	}
}

func TestPlummerHalfMassRadius(t *testing.T) {
	// Plummer half-mass radius is ≈1.3a with a = 3π/16 ≈ 0.589,
	// i.e. ≈0.77 in Heggie units.
	s := Plummer(8000, xrand.New(5))
	radii := make([]float64, s.N)
	for i := range radii {
		radii[i] = s.Pos[i].Norm()
	}
	// Median radius.
	med := quickSelectMedian(radii)
	if med < 0.6 || med > 0.95 {
		t.Errorf("half-mass radius = %v, want ≈0.77", med)
	}
}

func quickSelectMedian(xs []float64) float64 {
	c := append([]float64(nil), xs...)
	k := len(c) / 2
	lo, hi := 0, len(c)-1
	for lo < hi {
		p := c[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for c[i] < p {
				i++
			}
			for c[j] > p {
				j--
			}
			if i <= j {
				c[i], c[j] = c[j], c[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return c[k]
}

func TestPlummerTruncation(t *testing.T) {
	s := Plummer(5000, xrand.New(11))
	a := 3 * math.Pi / 16
	for i := 0; i < s.N; i++ {
		if r := s.Pos[i].Norm(); r > 10*a*1.5 {
			t.Errorf("particle %d at radius %v beyond truncation", i, r)
		}
	}
}

func TestPlummerWithBlackHoles(t *testing.T) {
	s := PlummerWithBlackHoles(1000, 0.005, 0.3, xrand.New(1))
	if s.N != 1002 {
		t.Fatalf("N = %d", s.N)
	}
	// Black holes are the last two particles and are much heavier.
	if s.Mass[1000] != 0.005 || s.Mass[1001] != 0.005 {
		t.Errorf("BH masses = %v, %v", s.Mass[1000], s.Mass[1001])
	}
	// At the paper's N = 2M a 0.5% black hole is 10^4 field masses; at this
	// test's N it is 5x. Just require it to dominate a field particle.
	fieldMass := s.Mass[0]
	if s.Mass[1000] <= 2*fieldMass {
		t.Error("BH not heavier than field particles")
	}
	if com := s.CenterOfMass(); com.MaxAbs() > 1e-12 {
		t.Errorf("COM = %v", com)
	}
}

func TestDiskBasic(t *testing.T) {
	cfg := DefaultKuiperDisk(500)
	s := Disk(cfg, xrand.New(1))
	if s.N != 501 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Mass[0] != 1.0 {
		t.Errorf("central mass = %v", s.Mass[0])
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid disk: %v", err)
	}
}

func TestDiskAnnulus(t *testing.T) {
	cfg := DefaultKuiperDisk(2000)
	s := Disk(cfg, xrand.New(2))
	for i := 1; i < s.N; i++ {
		r := math.Hypot(s.Pos[i].X, s.Pos[i].Y)
		if r < cfg.RInner-1e-9 || r > cfg.ROuter+1e-9 {
			t.Fatalf("planetesimal %d at cylindrical radius %v outside [%v,%v]",
				i, r, cfg.RInner, cfg.ROuter)
		}
	}
}

func TestDiskNearKeplerian(t *testing.T) {
	cfg := DefaultKuiperDisk(1000)
	s := Disk(cfg, xrand.New(3))
	for i := 1; i < s.N; i++ {
		r := s.Pos[i].Norm()
		vk := math.Sqrt(cfg.MCentral / r)
		v := s.Vel[i].Norm()
		if math.Abs(v-vk)/vk > 0.1 {
			t.Fatalf("planetesimal %d speed %v deviates >10%% from Keplerian %v", i, v, vk)
		}
	}
}

func TestDiskThin(t *testing.T) {
	cfg := DefaultKuiperDisk(1000)
	s := Disk(cfg, xrand.New(4))
	for i := 1; i < s.N; i++ {
		if math.Abs(s.Pos[i].Z) > 0.2 {
			t.Fatalf("planetesimal %d height %v too large for thin disk", i, s.Pos[i].Z)
		}
	}
}

func TestColdSphere(t *testing.T) {
	s := ColdSphere(1000, 2.0, xrand.New(1))
	if got := s.TotalMass(); math.Abs(got-1) > 1e-12 {
		t.Errorf("total mass = %v", got)
	}
	if ke := s.KineticEnergy(); ke != 0 {
		t.Errorf("cold sphere has kinetic energy %v", ke)
	}
	for i := 0; i < s.N; i++ {
		// Centering shifts slightly; allow small slack beyond radius.
		if r := s.Pos[i].Norm(); r > 2.2 {
			t.Fatalf("particle %d outside sphere: r=%v", i, r)
		}
	}
}

func TestTwoBodyCircularEnergy(t *testing.T) {
	s := TwoBodyCircular(0.5, 0.5, 1.0)
	// E = -G m1 m2 / (2a) with a = d for circular orbit.
	want := -0.5 * 0.5 / 2.0
	if got := s.TotalEnergy(0); math.Abs(got-want) > 1e-14 {
		t.Errorf("two-body energy = %v, want %v", got, want)
	}
	if com := s.CenterOfMass(); com.MaxAbs() > 1e-15 {
		t.Errorf("COM = %v", com)
	}
	if cov := s.CenterOfMassVelocity(); cov.MaxAbs() > 1e-15 {
		t.Errorf("COM velocity = %v", cov)
	}
}

func TestTwoBodyEccentricApocentre(t *testing.T) {
	a, e := 1.0, 0.5
	s := TwoBodyEccentric(0.5, 0.5, a, e)
	sep := s.Pos[0].Dist(s.Pos[1])
	if math.Abs(sep-a*(1+e)) > 1e-14 {
		t.Errorf("apocentre separation = %v, want %v", sep, a*(1+e))
	}
	// Energy must equal -G m1 m2/(2a) regardless of eccentricity.
	want := -0.5 * 0.5 / (2 * a)
	if got := s.TotalEnergy(0); math.Abs(got-want) > 1e-14 {
		t.Errorf("energy = %v, want %v", got, want)
	}
}

func TestOrbitalPeriod(t *testing.T) {
	// Unit mass, unit semi-major axis: T = 2π.
	if got := OrbitalPeriod(1, 1); math.Abs(got-2*math.Pi) > 1e-14 {
		t.Errorf("period = %v", got)
	}
	// Kepler's third law: T² ∝ a³.
	r := OrbitalPeriod(1, 4) / OrbitalPeriod(1, 1)
	if math.Abs(r-8) > 1e-12 {
		t.Errorf("period ratio = %v, want 8", r)
	}
}

func BenchmarkPlummer(b *testing.B) {
	rng := xrand.New(1)
	for i := 0; i < b.N; i++ {
		Plummer(1000, rng)
	}
}
