// Package model generates the initial conditions used by the paper's
// benchmarks and applications: the equal-mass Plummer model (Section 4),
// the Plummer model with embedded "black hole" particles (Section 5's
// binary-black-hole run), and a planetesimal disk standing in for the
// early-Kuiper-belt setup of Makino et al. (2003) (Section 5's first
// application).
package model

import (
	"math"

	"grape6/internal/nbody"
	"grape6/internal/units"
	"grape6/internal/vec"
	"grape6/internal/xrand"
)

// Plummer samples an equal-mass Plummer sphere in Heggie units (G = 1,
// M = 1, E = -1/4), using the classic Aarseth, Hénon & Wielen (1974)
// rejection method for the velocity distribution. The result is centred on
// the origin with zero net momentum.
func Plummer(n int, rng *xrand.Source) *nbody.System {
	s := nbody.New(n)
	m := units.TotalMass / float64(n)

	// Structural length scale a such that the total energy of the model is
	// -1/4 in virial units: a = 3π/16.
	const scale = 3 * math.Pi / 16

	for i := 0; i < n; i++ {
		s.Mass[i] = m

		// Radius from the cumulative mass profile M(r) = r³/(1+r²)^{3/2}
		// (Plummer units), inverted: r = (u^{-2/3} - 1)^{-1/2}.
		var r float64
		for {
			u := rng.Float64()
			if u == 0 {
				continue
			}
			r = 1 / math.Sqrt(math.Pow(u, -2.0/3.0)-1)
			// Truncate the model at 10 structural radii to avoid rare
			// extreme outliers that dominate the timestep distribution.
			if r < 10 {
				break
			}
		}
		x, y, z := rng.OnSphere()
		s.Pos[i] = vec.New(x*r, y*r, z*r)

		// Speed from the isotropic distribution function: sample
		// q = v/v_esc with density g(q) ∝ q²(1-q²)^{7/2} by rejection.
		var q float64
		for {
			q = rng.Float64()
			g := rng.Float64() * 0.1
			if g < q*q*math.Pow(1-q*q, 3.5) {
				break
			}
		}
		vesc := math.Sqrt2 * math.Pow(1+r*r, -0.25)
		v := q * vesc
		vx, vy, vz := rng.OnSphere()
		s.Vel[i] = vec.New(vx*v, vy*v, vz*v)
	}

	// Convert from Plummer natural units to Heggie units.
	for i := 0; i < n; i++ {
		s.Pos[i] = s.Pos[i].Scale(scale)
		s.Vel[i] = s.Vel[i].Scale(1 / math.Sqrt(scale))
	}

	s.CenterOnOrigin()
	return s
}

// PlummerWithBlackHoles builds the Section 5 binary-black-hole initial
// model: a standard Plummer sphere of n field particles plus two massive
// point-mass particles ("black holes"), each carrying bhMassFraction of the
// total system mass (the paper used 0.5%). The black holes are placed
// symmetrically at radius bhRadius on the x axis with tangential velocities
// approximating circular orbits in the Plummer potential.
func PlummerWithBlackHoles(n int, bhMassFraction, bhRadius float64, rng *xrand.Source) *nbody.System {
	field := Plummer(n, rng)
	s := nbody.New(n + 2)
	// Field particles keep unit total mass; the black holes are added on
	// top, as in the paper ("mass 0.5% of the total mass of the system").
	copy(s.Mass, field.Mass)
	copy(s.Pos, field.Pos)
	copy(s.Vel, field.Vel)

	mbh := bhMassFraction * units.TotalMass
	// Enclosed Plummer mass at r (structural radius a = 3π/16).
	a := 3 * math.Pi / 16
	r := bhRadius
	menc := units.TotalMass * r * r * r / math.Pow(r*r+a*a, 1.5)
	vcirc := math.Sqrt(menc / r)

	s.Mass[n] = mbh
	s.Pos[n] = vec.New(r, 0, 0)
	s.Vel[n] = vec.New(0, vcirc, 0)

	s.Mass[n+1] = mbh
	s.Pos[n+1] = vec.New(-r, 0, 0)
	s.Vel[n+1] = vec.New(0, -vcirc, 0)

	s.CenterOnOrigin()
	return s
}

// DiskConfig parameterises the planetesimal-disk generator.
type DiskConfig struct {
	N        int     // number of planetesimals
	RInner   float64 // inner edge of the annulus
	ROuter   float64 // outer edge of the annulus
	MCentral float64 // mass of the central star (G = 1)
	MDisk    float64 // total disk mass
	Ecc      float64 // RMS eccentricity excitation
	Inc      float64 // RMS inclination (radians)
}

// DefaultKuiperDisk returns the configuration used for the Kuiper-belt
// style application run: a thin annulus of equal-mass planetesimals around
// a dominant central mass, surface density Σ ∝ r^{-3/2}.
func DefaultKuiperDisk(n int) DiskConfig {
	return DiskConfig{
		N:        n,
		RInner:   1.0,
		ROuter:   1.5,
		MCentral: 1.0,
		MDisk:    1e-4,
		Ecc:      0.01,
		Inc:      0.005,
	}
}

// Disk samples a planetesimal disk: a central star (particle 0) plus N
// equal-mass planetesimals on near-circular, near-planar Keplerian orbits,
// radial distribution following Σ ∝ r^{-3/2} (so cumulative mass ∝ r^{1/2}).
func Disk(cfg DiskConfig, rng *xrand.Source) *nbody.System {
	s := nbody.New(cfg.N + 1)
	s.Mass[0] = cfg.MCentral
	s.Pos[0] = vec.Zero
	s.Vel[0] = vec.Zero

	mp := cfg.MDisk / float64(cfg.N)
	sqIn := math.Sqrt(cfg.RInner)
	sqOut := math.Sqrt(cfg.ROuter)
	for i := 1; i <= cfg.N; i++ {
		s.Mass[i] = mp

		// Σ ∝ r^{-3/2} ⇒ P(<r) ∝ √r - √R_in.
		u := rng.Float64()
		r := sq(sqIn + u*(sqOut-sqIn))
		phi := rng.Uniform(0, 2*math.Pi)

		// Rayleigh-distributed eccentricity and inclination excitations.
		e := cfg.Ecc * math.Sqrt(rng.Exp())
		inc := cfg.Inc * math.Sqrt(rng.Exp())

		vk := math.Sqrt(cfg.MCentral / r)
		cosp, sinp := math.Cos(phi), math.Sin(phi)

		// Position in the plane plus a small vertical excursion.
		zphase := rng.Uniform(0, 2*math.Pi)
		s.Pos[i] = vec.New(r*cosp, r*sinp, r*inc*math.Sin(zphase))

		// Circular velocity with small radial/vertical perturbations that
		// mimic eccentricity e and inclination inc.
		vr := e * vk * math.Cos(zphase+phi)
		vz := inc * vk * math.Cos(zphase)
		s.Vel[i] = vec.New(
			-vk*sinp+vr*cosp,
			vk*cosp+vr*sinp,
			vz,
		)
	}
	return s
}

func sq(x float64) float64 { return x * x }

// ColdSphere returns n equal-mass particles uniformly filling a sphere of
// the given radius, at rest. Used for collapse tests and failure-injection
// scenarios (it develops very small timesteps at collapse).
func ColdSphere(n int, radius float64, rng *xrand.Source) *nbody.System {
	s := nbody.New(n)
	m := units.TotalMass / float64(n)
	for i := 0; i < n; i++ {
		s.Mass[i] = m
		// Uniform in volume: r ∝ u^{1/3}.
		r := radius * math.Cbrt(rng.Float64())
		x, y, z := rng.OnSphere()
		s.Pos[i] = vec.New(x*r, y*r, z*r)
	}
	s.CenterOnOrigin()
	return s
}

// TwoBodyCircular returns two bodies of mass m1 and m2 on a circular orbit
// of separation d about their barycentre, in the xy plane. It is the
// primary integrator-validation workload: energy, angular momentum and the
// orbital period 2π√(d³/(G(m1+m2))) are known exactly.
func TwoBodyCircular(m1, m2, d float64) *nbody.System {
	s := nbody.New(2)
	mtot := m1 + m2
	s.Mass[0], s.Mass[1] = m1, m2
	// Barycentric positions.
	s.Pos[0] = vec.New(-d*m2/mtot, 0, 0)
	s.Pos[1] = vec.New(d*m1/mtot, 0, 0)
	// Relative circular speed v = sqrt(G mtot / d), split by mass ratio.
	v := math.Sqrt(units.G * mtot / d)
	s.Vel[0] = vec.New(0, -v*m2/mtot, 0)
	s.Vel[1] = vec.New(0, v*m1/mtot, 0)
	return s
}

// TwoBodyEccentric returns two bodies at apocentre of an orbit with
// semi-major axis a and eccentricity e.
func TwoBodyEccentric(m1, m2, a, e float64) *nbody.System {
	s := nbody.New(2)
	mtot := m1 + m2
	ra := a * (1 + e) // apocentre separation
	s.Mass[0], s.Mass[1] = m1, m2
	s.Pos[0] = vec.New(-ra*m2/mtot, 0, 0)
	s.Pos[1] = vec.New(ra*m1/mtot, 0, 0)
	// Vis-viva at apocentre: v² = G mtot (2/ra - 1/a).
	v := math.Sqrt(units.G * mtot * (2/ra - 1/a))
	s.Vel[0] = vec.New(0, -v*m2/mtot, 0)
	s.Vel[1] = vec.New(0, v*m1/mtot, 0)
	return s
}

// OrbitalPeriod returns the Kepler period for total mass mtot and
// semi-major axis a (G = 1).
func OrbitalPeriod(mtot, a float64) float64 {
	return 2 * math.Pi * math.Sqrt(a*a*a/(units.G*mtot))
}
