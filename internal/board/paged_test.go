package board

import (
	"testing"

	"grape6/internal/chip"
)

// pagedConfig is smallConfig squeezed to a tiny per-chip memory so the
// golden workloads overflow the fleet and exercise the streaming path.
func pagedConfig(memCapacity int) Config {
	c := smallConfig()
	c.Chip.MemCapacity = memCapacity
	return c
}

func TestGoldenBitIdentityPaged(t *testing.T) {
	// 512 particles on 8 chips of 16 slots: 128 chip-resident slots, so
	// the golden workload streams in 4 pages — and must still reproduce
	// the seed kernel hash bit for bit (§3.4 partition invariance, now
	// applied across pages in time rather than chips in space).
	got := goldenWorkloadHash(t, pagedConfig(16), func(a *Array, is []chip.IParticle) []*chip.Partial {
		if !a.paged {
			t.Fatal("workload did not engage paged mode")
		}
		out, _ := forces(a, 0.015625, is, 1.0/64)
		return out
	})
	if got != seedKernelHash {
		t.Errorf("paged hash %#016x differs from seed kernel %#016x", got, seedKernelHash)
	}
}

func TestGoldenBitIdentityPagedPool(t *testing.T) {
	forceParallel(t)
	got := goldenWorkloadHash(t, pagedConfig(16), func(a *Array, is []chip.IParticle) []*chip.Partial {
		out, _ := forces(a, 0.015625, is, 1.0/64)
		return out
	})
	if got != seedKernelHash {
		t.Errorf("paged pool hash %#016x differs from seed kernel %#016x", got, seedKernelHash)
	}
}

func TestGoldenMultiStepPaged(t *testing.T) {
	// The 24-block UpdateJ workload in paged mode: corrector writes land
	// in the host mirror and stream out with the next page pass. The
	// prefetch variant checks BeginPredict degrades to a no-op without
	// touching result bits.
	for _, prefetch := range []bool{false, true} {
		a := New(pagedConfig(64)) // 512 resident slots for 2048 particles
		if got := multiStepWorkloadHash(t, a, prefetch); got != multiStepHash {
			t.Errorf("paged multi-step hash (prefetch=%v) %#016x, want %#016x",
				prefetch, got, multiStepHash)
		}
		a.Close()
	}
}

func TestPagedMatchesResidentAcrossCapacities(t *testing.T) {
	// Any per-chip memory capacity must yield the same bits as the fully
	// resident evaluation, including capacities that leave ragged final
	// pages and sub-tile chunks.
	resident := New(smallConfig())
	defer resident.Close()
	_, is := loadPlummer(t, resident, 300, 9)
	want, _ := forces(resident, 0.03125, is[:17], 1.0/64)

	for _, capacity := range []int{5, 16, 37} {
		a := New(pagedConfig(capacity))
		js, _ := loadPlummer(t, a, 300, 9)
		if !a.paged {
			t.Fatalf("capacity %d: expected paged mode for 300 particles", capacity)
		}
		got, _ := forces(a, 0.03125, is[:17], 1.0/64)
		for i := range want {
			if *got[i] != *want[i] {
				t.Fatalf("capacity %d: partial %d differs from resident evaluation", capacity, i)
			}
		}
		// A paged update must be visible in the next evaluation exactly
		// like a resident one.
		j := js[123]
		j.A[0] = a.Config().Chip.Format.Round(j.A[0] + 0.001953125)
		if err := a.UpdateJ(j); err != nil {
			t.Fatal(err)
		}
		if err := resident.UpdateJ(j); err != nil {
			t.Fatal(err)
		}
		want2, _ := forces(resident, 0.03125, is[:5], 1.0/64)
		got2, _ := forces(a, 0.03125, is[:5], 1.0/64)
		for i := range want2 {
			if *got2[i] != *want2[i] {
				t.Fatalf("capacity %d: post-update partial %d differs", capacity, i)
			}
		}
		// Restore for the next capacity round.
		if err := resident.UpdateJ(js[123]); err != nil {
			t.Fatal(err)
		}
		a.Close()
	}
}

func TestPagedRejectsUnknownUpdate(t *testing.T) {
	a := New(pagedConfig(8))
	defer a.Close()
	loadPlummer(t, a, 200, 3)
	var p chip.JParticle
	p.ID = 4096
	if err := a.UpdateJ(p); err == nil {
		t.Fatal("expected error updating a particle that was never loaded")
	}
}

func TestPagedSteadyStateAllocs(t *testing.T) {
	// After one warm evaluation has sized the page scratch and the chip
	// planes, streamed force passes must allocate nothing: the balanced
	// page lengths keep every chip's chunk within one particle across
	// pages, below the plane shrink hysteresis.
	a := New(pagedConfig(16))
	defer a.Close()
	_, is := loadPlummer(t, a, 512, 42)
	dst := make([]chip.Partial, 24)
	a.ForcesInto(dst, 0.015625, is[:24], 1.0/64)
	allocs := testing.AllocsPerRun(10, func() {
		a.ForcesInto(dst, 0.015625, is[:24], 1.0/64)
	})
	if allocs != 0 {
		t.Fatalf("paged ForcesInto allocates %.1f times/op in steady state, want 0", allocs)
	}
}

func TestResidentExactCapacityStaysResident(t *testing.T) {
	// len(ps) == fleet capacity is the boundary: still resident.
	a := New(pagedConfig(16))
	defer a.Close()
	loadPlummer(t, a, 128, 6)
	if a.paged {
		t.Fatal("128 particles in 8×16 slots should stay resident")
	}
	for _, ch := range a.chips {
		if ch.NJ() != 16 {
			t.Fatalf("chip holds %d, want 16", ch.NJ())
		}
	}
}
