package board

import (
	"testing"

	"grape6/internal/chip"
)

// TestBatchCyclesForMatchesForcesInto pins the analytic per-batch cycle
// accounting against what the evaluation paths actually report, in
// resident serial, resident pooled, and paged mode — the grape6d
// scheduler leans on this equality to charge coalesced sub-requests
// exactly what a dedicated attachment would have charged.
func TestBatchCyclesForMatchesForcesInto(t *testing.T) {
	check := func(name string, a *Array, is []chip.IParticle, sizes []int) {
		t.Helper()
		dst := make([]chip.Partial, len(is))
		for _, n := range sizes {
			want := a.ForcesInto(dst[:n], 0.015625, is[:n], 1.0/64)
			got := a.BatchCyclesFor(n)
			if got != want {
				t.Errorf("%s: BatchCyclesFor(%d) = %d, ForcesInto reported %d", name, n, got, want)
			}
		}
	}

	a := New(smallConfig())
	defer a.Close()
	_, is := loadPlummer(t, a, 512, 42)
	check("resident serial", a, is, []int{1, 4, 48, 96})

	forceParallel(t)
	b := New(smallConfig())
	defer b.Close()
	_, is2 := loadPlummer(t, b, 2048, 7)
	check("resident pooled", b, is2, []int{48, 96, 200})

	// Paged: shrink per-chip memory so a 512-particle set streams in pages.
	cfg := smallConfig()
	cfg.Chip.MemCapacity = 24
	p := New(cfg)
	defer p.Close()
	_, is3 := loadPlummer(t, p, 512, 11)
	if !p.paged {
		t.Fatal("array did not switch to paged mode")
	}
	check("paged", p, is3, []int{1, 8, 48, 96})
}

// TestLoadJSwapSteadyStateAllocs pins the j-swap path the multi-tenant
// scheduler drives on every tenant switch: reloading j-sets of the same
// footprint must allocate nothing once the staging has grown.
func TestLoadJSwapSteadyStateAllocs(t *testing.T) {
	a := New(smallConfig())
	defer a.Close()
	jsA, _ := loadPlummer(t, a, 300, 1)
	jsB := make([]chip.JParticle, 300)
	copy(jsB, jsA)
	for i := range jsB {
		jsB[i].ID = i // same footprint, different image
	}
	// Warm both directions so slabs and index tables reach steady state.
	for i := 0; i < 3; i++ {
		if err := a.LoadJ(jsB); err != nil {
			t.Fatal(err)
		}
		if err := a.LoadJ(jsA); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := a.LoadJ(jsB); err != nil {
			t.Fatal(err)
		}
		if err := a.LoadJ(jsA); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state j-swap allocates %.1f objects per swap pair, want 0", allocs)
	}
}
