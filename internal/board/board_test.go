package board

import (
	"math"
	"testing"

	"grape6/internal/chip"
	"grape6/internal/gfixed"
	"grape6/internal/model"
	"grape6/internal/vec"
	"grape6/internal/xrand"
)

func TestDefaultValid(t *testing.T) {
	if err := Default.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	c := Default
	c.ChipsPerModule = 0
	if err := c.Validate(); err == nil {
		t.Error("accepted zero chips per module")
	}
	c = Default
	c.ReduceCyclesPerStage = -1
	if err := c.Validate(); err == nil {
		t.Error("accepted negative reduction latency")
	}
	c = Default
	c.Chip.ClockHz = 0
	if err := c.Validate(); err == nil {
		t.Error("accepted invalid chip config")
	}
}

func TestPackagingCounts(t *testing.T) {
	// Section 2: 8 modules × 4 chips = 32 chips per board.
	if got := Default.ChipsPerBoard(); got != 32 {
		t.Errorf("chips per board = %d, want 32", got)
	}
	if got := Default.TotalChips(); got != 128 {
		t.Errorf("total chips (4 boards) = %d, want 128", got)
	}
}

func TestBoardPeakMatchesPaper(t *testing.T) {
	// One board: 32 chips × 30.78 Gflops = 985 Gflops. Full machine:
	// 64 boards = 2048 chips → 63.04 Tflops (abstract).
	one := Default
	one.Boards = 1
	if got := one.PeakFlops() / 1e9; math.Abs(got-985.0) > 1.0 {
		t.Errorf("board peak = %v Gflops", got)
	}
	full := Default
	full.Boards = 64
	if got := full.PeakFlops() / 1e12; math.Abs(got-63.04) > 0.05 {
		t.Errorf("full machine peak = %v Tflops, paper says 63.04", got)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted invalid config")
		}
	}()
	New(Config{})
}

// forces is the tests' allocating convenience wrapper over ForcesInto
// (the retired Array.Forces shape): fresh slab, pointer views into it.
func forces(a *Array, t float64, is []chip.IParticle, eps float64) ([]*chip.Partial, int64) {
	slab := make([]chip.Partial, len(is))
	cycles := a.ForcesInto(slab, t, is, eps)
	out := make([]*chip.Partial, len(is))
	for i := range slab {
		out[i] = &slab[i]
	}
	return out, cycles
}

// chipForceBatch is the same convenience shape over chip.ForceBatchInto.
func chipForceBatch(ch *chip.Chip, t float64, is []chip.IParticle, eps float64) ([]*chip.Partial, int64) {
	slab := make([]chip.Partial, len(is))
	cycles := ch.ForceBatchInto(slab, t, is, eps)
	out := make([]*chip.Partial, len(is))
	for i := range slab {
		out[i] = &slab[i]
	}
	return out, cycles
}

// smallConfig keeps emulation cheap for functional tests.
func smallConfig() Config {
	c := Default
	c.ChipsPerModule = 2
	c.ModulesPerBoard = 2
	c.Boards = 2 // 8 chips total
	return c
}

func loadPlummer(t testing.TB, a *Array, n int, seed uint64) ([]chip.JParticle, []chip.IParticle) {
	t.Helper()
	sys := model.Plummer(n, xrand.New(seed))
	js := make([]chip.JParticle, n)
	is := make([]chip.IParticle, n)
	f := a.Config().Chip.Format
	for i := 0; i < n; i++ {
		p, err := chip.MakeJParticle(f, i, 0, sys.Mass[i], sys.Pos[i], sys.Vel[i], vec.Zero, vec.Zero, vec.Zero)
		if err != nil {
			t.Fatal(err)
		}
		js[i] = p
		x, v := chip.PredictParticle(f, &p, 0)
		is[i] = chip.IParticle{X: x, V: v, SelfID: i, ExpAcc: 4, ExpJerk: 6, ExpPot: 6}
	}
	if err := a.LoadJ(js); err != nil {
		t.Fatal(err)
	}
	return js, is
}

func TestLoadDistribution(t *testing.T) {
	a := New(smallConfig())
	loadPlummer(t, a, 100, 1)
	if a.NJ() != 100 {
		t.Errorf("NJ = %d", a.NJ())
	}
	// 100 particles over 8 chips: 4 chips hold 13, 4 hold 12.
	for c, ch := range a.chips {
		if ch.NJ() < 12 || ch.NJ() > 13 {
			t.Errorf("chip %d holds %d particles, want 12-13", c, ch.NJ())
		}
	}
}

func TestArrayMatchesSingleChip(t *testing.T) {
	// The board hierarchy must produce bit-identical results to one big
	// chip holding the whole j-set.
	n := 96
	eps := 1.0 / 64

	a := New(smallConfig())
	js, is := loadPlummer(t, a, n, 2)
	got, _ := forces(a, 0, is[:8], eps)

	cfg := smallConfig().Chip
	single := chip.New(cfg)
	if err := single.LoadJ(js); err != nil {
		t.Fatal(err)
	}
	want, _ := chipForceBatch(single, 0, is[:8], eps)

	for i := range got {
		for c := 0; c < 3; c++ {
			if got[i].Acc[c].Sum != want[i].Acc[c].Sum {
				t.Fatalf("i=%d acc[%d]: %d != %d", i, c, got[i].Acc[c].Sum, want[i].Acc[c].Sum)
			}
			if got[i].Jerk[c].Sum != want[i].Jerk[c].Sum {
				t.Fatalf("i=%d jerk[%d] differs", i, c)
			}
		}
		if got[i].Pot.Sum != want[i].Pot.Sum {
			t.Fatalf("i=%d pot differs", i)
		}
		if got[i].NN != want[i].NN {
			t.Fatalf("i=%d NN %d != %d", i, got[i].NN, want[i].NN)
		}
	}
}

func TestDifferentBoardCountsBitIdentical(t *testing.T) {
	// Section 3.4: "it is quite useful to be able to obtain exactly the
	// same results on machines with different sizes."
	n := 64
	eps := 1.0 / 64

	c1 := smallConfig()
	c1.Boards = 1
	a1 := New(c1)
	_, is := loadPlummer(t, a1, n, 3)
	r1, _ := forces(a1, 0, is[:4], eps)

	c4 := smallConfig()
	c4.Boards = 4
	a4 := New(c4)
	loadPlummer(t, a4, n, 3)
	r4, _ := forces(a4, 0, is[:4], eps)

	for i := range r1 {
		if r1[i].Acc[0].Sum != r4[i].Acc[0].Sum || r1[i].Pot.Sum != r4[i].Pot.Sum {
			t.Fatalf("i=%d: results differ between 1-board and 4-board machines", i)
		}
	}
}

func TestUpdateJ(t *testing.T) {
	a := New(smallConfig())
	loadPlummer(t, a, 32, 4)
	f := a.Config().Chip.Format
	p, err := chip.MakeJParticle(f, 7, 0.5, 2.0, vec.New(9, 9, 9), vec.Zero, vec.Zero, vec.Zero, vec.Zero)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.UpdateJ(p); err != nil {
		t.Fatal(err)
	}
	// Unknown id errors.
	p.ID = 999
	if err := a.UpdateJ(p); err == nil {
		t.Error("UpdateJ accepted unknown particle")
	}
}

func TestUpdateJChangesForce(t *testing.T) {
	a := New(smallConfig())
	js, is := loadPlummer(t, a, 16, 5)
	before, _ := forces(a, 0, is[:1], 1.0/64)
	accBefore := before[0].Acc[0].Sum

	// Move particle 3 far away; the force must change.
	f := a.Config().Chip.Format
	moved, err := chip.MakeJParticle(f, 3, 0, js[3].Mass, vec.New(100, 100, 100), vec.Zero, vec.Zero, vec.Zero, vec.Zero)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.UpdateJ(moved); err != nil {
		t.Fatal(err)
	}
	after, _ := forces(a, 0, is[:1], 1.0/64)
	if after[0].Acc[0].Sum == accBefore {
		t.Error("force unchanged after moving a j-particle")
	}
}

func TestCycleModel(t *testing.T) {
	cfg := smallConfig()
	a := New(cfg)
	loadPlummer(t, a, 80, 6) // 10 per chip
	_, cycles := forces(a, 0, make([]chip.IParticle, 1), 0.1)
	// One pass: 8 × 10 + depth, plus reduction stages:
	// log2(2)+log2(2)+log2(2) = 3 stages.
	want := int64(8*10+cfg.Chip.PipelineDepth) + 3*int64(cfg.ReduceCyclesPerStage)
	if cycles != want {
		t.Errorf("cycles = %d, want %d", cycles, want)
	}
}

func TestTimeFor(t *testing.T) {
	a := New(smallConfig())
	if got := a.TimeFor(90e6); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("TimeFor(90e6 cycles @ 90MHz) = %v s", got)
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {32, 5},
	}
	for _, c := range cases {
		if got := log2ceil(c.in); got != c.want {
			t.Errorf("log2ceil(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestForcesParallelPathMatchesSerial(t *testing.T) {
	// Large-enough workload takes the goroutine fan-out path; results must
	// be identical to the small-workload serial path.
	cfg := smallConfig()
	a := New(cfg)
	_, is := loadPlummer(t, a, 512, 7)
	eps := 1.0 / 64
	// Serial (1 i-particle → below threshold).
	serial, _ := forces(a, 0, is[:1], eps)
	// Parallel (many i-particles → above threshold).
	parallel, _ := forces(a, 0, is[:64], eps)
	if serial[0].Acc[0].Sum != parallel[0].Acc[0].Sum {
		t.Error("parallel chip fan-out changed result bits")
	}
}

func TestExponentsPreserved(t *testing.T) {
	a := New(smallConfig())
	_, is := loadPlummer(t, a, 16, 8)
	is[0].ExpAcc, is[0].ExpJerk, is[0].ExpPot = 10, 11, 12
	out, _ := forces(a, 0, is[:1], 1.0/64)
	if out[0].Acc[0].Exp != 10 || out[0].Jerk[0].Exp != 11 || out[0].Pot.Exp != 12 {
		t.Errorf("exponents not preserved: %d %d %d",
			out[0].Acc[0].Exp, out[0].Jerk[0].Exp, out[0].Pot.Exp)
	}
	_ = gfixed.Grape6
}

func BenchmarkArrayForces128(b *testing.B) {
	cfg := smallConfig()
	a := New(cfg)
	_, is := loadPlummer(b, a, 1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		forces(a, 0, is[:48], 1.0/64)
	}
}
