// Package board emulates the GRAPE-6 packaging hierarchy above the chip
// (Sections 2 and 3.3-3.4 of the paper): the processor module (4 chips
// plus a block-floating-point summation FPGA), the processor board (8
// modules behind one broadcast network and one reduction network), and the
// multi-board attachment of up to 4 boards to a single host through a
// network board.
//
// All j-particles attached to one host are distributed across the chips'
// local memories; every pipeline calculates forces on the same i-particle
// set, and the partial forces are summed exactly by the FPGA reduction
// trees — so the merged result is bit-identical to a single-chip
// evaluation of the same j-set (the Section 3.4 property).
package board

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"grape6/internal/chip"
	"grape6/internal/perfmodel"
)

// Config describes the packaging of one host's GRAPE-6 attachment.
type Config struct {
	Chip            chip.Config
	ChipsPerModule  int // paper: 4
	ModulesPerBoard int // paper: 8
	Boards          int // boards attached to this host (paper benchmarks: 4)

	// ReduceCyclesPerStage is the pipeline latency added per level of the
	// reduction tree (module, board, network board).
	ReduceCyclesPerStage int
}

// Default is a single host's production attachment: 4 boards of 32 chips.
var Default = Config{
	Chip:                 chip.Default,
	ChipsPerModule:       4,
	ModulesPerBoard:      8,
	Boards:               4,
	ReduceCyclesPerStage: 4,
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.ChipsPerModule <= 0 || c.ModulesPerBoard <= 0 || c.Boards <= 0 {
		return fmt.Errorf("board: non-positive packaging counts %d/%d/%d",
			c.ChipsPerModule, c.ModulesPerBoard, c.Boards)
	}
	if c.ReduceCyclesPerStage < 0 {
		return fmt.Errorf("board: negative reduction latency %d", c.ReduceCyclesPerStage)
	}
	return c.Chip.Validate()
}

// ChipsPerBoard returns the number of chips on one board (32 in
// production).
func (c Config) ChipsPerBoard() int { return c.ChipsPerModule * c.ModulesPerBoard }

// TotalChips returns the number of chips across all attached boards.
func (c Config) TotalChips() int { return c.ChipsPerBoard() * c.Boards }

// PeakFlops returns the attachment's peak speed under the 57-flops
// convention. One production board is 985.0 Gflops; the paper's
// 64-board machine totals 63.04 Tflops.
func (c Config) PeakFlops() float64 {
	return float64(c.TotalChips()) * c.Chip.PeakFlops()
}

// idIndex maps particle ids to load positions: a dense []int32 table
// when the id space is compact (the common 0..N-1 case, one O(1) array
// read per lookup on the hot update path), a map fallback otherwise.
type idIndex struct {
	dense []int32 // id → position, -1 for absent; empty when using the map
	m     map[int]int
}

// rebuild re-indexes the load positions of ps.
func (x *idIndex) rebuild(ps []chip.JParticle) {
	maxID := -1
	compact := true
	for i := range ps {
		id := ps[i].ID
		if id < 0 {
			compact = false
			break
		}
		if id > maxID {
			maxID = id
		}
	}
	if compact && maxID < 2*len(ps)+64 {
		if cap(x.dense) < maxID+1 {
			x.dense = make([]int32, maxID+1)
		}
		x.dense = x.dense[:maxID+1]
		for k := range x.dense {
			x.dense[k] = -1
		}
		for i := range ps {
			x.dense[ps[i].ID] = int32(i)
		}
		x.m = nil
		return
	}
	x.dense = x.dense[:0]
	if x.m == nil {
		x.m = make(map[int]int, len(ps))
	} else {
		clear(x.m)
	}
	for i := range ps {
		x.m[ps[i].ID] = i
	}
}

// get returns the load position of id.
//
//grape:noalloc
func (x *idIndex) get(id int) (int, bool) {
	if d := x.dense; len(d) > 0 {
		if id < 0 || id >= len(d) {
			return 0, false
		}
		if v := d[id]; v >= 0 {
			return int(v), true
		}
		return 0, false
	}
	v, ok := x.m[id]
	return v, ok
}

// Array is the emulated multi-board attachment of one host.
//
// Force evaluation above a small-workload threshold runs on a persistent
// worker pool: GOMAXPROCS goroutines are spawned once (lazily, on first
// use), each with reusable partial slabs, and they stay parked on a job
// channel between calls — the emulation counterpart of the real chips
// running continuously. Work is striped dynamically: each job carries a
// list of (chip, j-range) spans that workers claim with an atomic cursor,
// so every core participates even when the configuration has fewer chips
// than the host has cores. Two job kinds run on the pool:
//
//   - a PREDICT stage (the chip predictor pipelines, which on the real
//     machine run concurrently with the force pipelines): BeginPredict
//     kicks it asynchronously so it overlaps host-side work, and any
//     subsequent memory operation joins it;
//   - the FORCE stage, whose per-span partials are pre-merged per worker
//     and reduced exactly afterwards (integer accumulator adds, so span
//     striping cannot change a result bit — the Section 3.4
//     partition-invariance property applied within chips).
//
// Close releases the pool (joining any in-flight predict); a closed Array
// may keep being used (the pool respawns lazily).
//
// An Array serves one host: like the real hardware's memory bus, force
// evaluations on the same Array must not run concurrently with each other
// or with loads/updates (the worker slabs and scratch are reused between
// calls). BeginPredict is the one sanctioned overlap: between the kick
// and the implicit join the caller may do anything that does not touch
// this Array's memory. Distinct Arrays are fully independent.
type Array struct {
	cfg   Config
	chips []*chip.Chip
	loc   idIndex // particle id → load position
	nj    int

	// Paged j-memory (j-sets exceeding the chips' combined capacity):
	// the full set lives host-side in jhost and force evaluations stream
	// it through the chips page by page. In paged mode a particle's load
	// position is its jhost slot; in resident mode position i maps to
	// chip i%nc, slot i/nc (the round-robin distribution).
	paged       bool
	jhost       []chip.JParticle
	pageScratch []chip.Partial // per-page partials merged into dst

	// loadBuckets is the per-chip staging of LoadJ, reused across calls
	// so that swapping j-sets (the grape6d scheduler re-loads a session's
	// j-image every time it swaps a tenant in) allocates nothing in
	// steady state.
	loadBuckets [][]chip.JParticle

	mu      sync.Mutex                     // serializes pool spawn and Close (slow paths)
	workers atomic.Pointer[[]*forceWorker] // force paths read it lock-free
	scratch []chip.Partial                 // serial-path per-chip scratch, reused across calls

	fc          forceCall   // striped force-stage state, reused across calls
	pc          predictCall // striped predict-stage state, reused across calls
	predPending bool        // a BeginPredict is in flight (join before use)
}

// serialWorkMax is the pairwise-interaction count below which the force
// evaluation stays on the caller's goroutine: the pool handoff costs more
// than the work.
const serialWorkMax = 4096

// asyncPredictMin is the j-memory size below which BeginPredict does not
// bother the pool (the chips' lazy predict in the force pass is cheaper
// than a stage handoff).
const asyncPredictMin = 256

// span is one claimable unit of pool work: slots [lo, hi) of one chip.
type span struct {
	chip   int
	lo, hi int
}

// minStripe floors the span length so the atomic claim overhead stays
// negligible against the per-slot work.
const minStripe = 64

// HostCache is the cache model used to derive the default j-tile length
// of the chips' cache-blocked force streaming (chip.Config.TileJ left
// zero): the paper's tuned frontend, perfmodel.P4. It stands in for the
// emulation host — override chip.Config.TileJ to tune for a specific
// machine. Tile size only affects host wall-clock, never result bits.
var HostCache = perfmodel.P4

// stripeLen returns the span length for striping `total` j-slots across
// the pool: about four claims per worker for dynamic load balance. When
// the span would exceed one j-tile it is rounded down to a whole number
// of tiles, so the atomic span claiming composes with the chips' cache
// blocking — every claimed span then streams complete tiles, and a tile
// is never split between two workers' claims. Sub-tile spans (small
// memories, many cores) are left alone; blocking degenerates gracefully
// there because a span shorter than a tile is itself a single tile.
func stripeLen(total, tile int) int {
	l := total / (4 * runtime.GOMAXPROCS(0))
	if l < minStripe {
		l = minStripe
	}
	if tile > 0 && l > tile {
		l -= l % tile
	}
	return l
}

// appendSpans appends spans covering [0, nj) of chip ci in stripes of l.
func appendSpans(units []span, ci, nj, l int) []span {
	for lo := 0; lo < nj; lo += l {
		hi := lo + l
		if hi > nj {
			hi = nj
		}
		units = append(units, span{chip: ci, lo: lo, hi: hi})
	}
	return units
}

// New builds the attachment. It panics on invalid configuration.
//
// When cfg.Chip.TileJ is zero the j-tile length of the chips' cache
// blocking is derived here from the HostCache profile's CacheBytes (the
// Fig. 14 cache model) and the SoA hot-set footprint chip.HotJBytes;
// Config() reports the resolved value.
func New(cfg Config) *Array {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Chip.TileJ == 0 {
		cfg.Chip.TileJ = HostCache.TileParticles(chip.HotJBytes)
	}
	a := &Array{cfg: cfg}
	a.chips = make([]*chip.Chip, cfg.TotalChips())
	for i := range a.chips {
		a.chips[i] = chip.New(cfg.Chip)
	}
	return a
}

// Config returns the attachment's configuration.
func (a *Array) Config() Config { return a.cfg }

// NJ returns the number of loaded j-particles.
func (a *Array) NJ() int { return a.nj }

// LoadJ installs a j-set. When it fits the chips' combined memory the
// particles are distributed across the local memories in round-robin
// order (so each chip holds ≈ N/TotalChips particles, the GRAPE-6
// local-memory design of Section 3.4); a larger set switches the Array
// to paged mode, where the set lives host-side and force evaluations
// stream it through the chips page by page (bit-identical results by
// the Section 3.4 partition invariance).
func (a *Array) LoadJ(ps []chip.JParticle) error {
	a.joinPredict()
	nc := len(a.chips)
	if len(ps) > nc*a.cfg.Chip.MemCapacity {
		return a.loadPaged(ps)
	}
	a.paged = false
	a.jhost = a.jhost[:0]
	if len(a.loadBuckets) != nc {
		a.loadBuckets = make([][]chip.JParticle, nc)
	}
	buckets := a.loadBuckets
	for i := range buckets {
		buckets[i] = buckets[i][:0]
	}
	for i, p := range ps {
		buckets[i%nc] = append(buckets[i%nc], p)
	}
	for c, b := range buckets {
		if err := a.chips[c].LoadJ(b); err != nil {
			return fmt.Errorf("board: chip %d: %w", c, err)
		}
	}
	a.loc.rebuild(ps)
	a.nj = len(ps)
	return nil
}

// loadPaged keeps the whole j-set in host memory (the frontend's RAM,
// which on the real machine also holds the canonical particle data) and
// empties the chips; forcesPaged streams pages on demand.
func (a *Array) loadPaged(ps []chip.JParticle) error {
	a.paged = true
	a.jhost = append(a.jhost[:0], ps...)
	a.loc.rebuild(ps)
	a.nj = len(ps)
	for c, ch := range a.chips {
		if err := ch.TruncateJ(0); err != nil {
			return fmt.Errorf("board: chip %d: %w", c, err)
		}
	}
	return nil
}

// UpdateJ rewrites the memory image of an already-loaded particle. In
// resident mode, when the owning chip's prediction cache is current,
// only that particle's cached prediction is re-evaluated (see
// chip.WriteJ), so a block update costs O(block) predictor evaluations
// instead of O(N_j) at the next same-time force pass. In paged mode the
// update is a single host-side slot write — the next force pass streams
// the new state with everything else.
func (a *Array) UpdateJ(p chip.JParticle) error {
	pos, ok := a.loc.get(p.ID)
	if !ok {
		return fmt.Errorf("board: particle %d not loaded", p.ID)
	}
	a.joinPredict()
	if a.paged {
		a.jhost[pos] = p
		return nil
	}
	nc := len(a.chips)
	return a.chips[pos%nc].WriteJ(pos/nc, p)
}

// jobKind tags the stage a poolJob runs.
type jobKind uint8

const (
	jobForce jobKind = iota
	jobPredict
	jobFused // predict, spin-barrier, force — one handoff for both stages
)

// poolJob is one stage broadcast to every pool worker. The call state is
// shared: workers claim spans from it with an atomic cursor and signal
// the stage's WaitGroup when the span list is drained.
type poolJob struct {
	kind    jobKind
	force   *forceCall
	predict *predictCall
}

// forceCall is the shared state of one striped force evaluation.
type forceCall struct {
	t     float64
	is    []chip.IParticle
	eps   float64
	chips []*chip.Chip
	units []span
	next  int64 // atomic span-claim cursor
	wg    sync.WaitGroup
}

// predictCall is the shared state of one striped predict stage: spans
// cover every chip whose prediction cache does not already hold time t.
// The wg WaitGroup joins the standalone (async-prefetch) stage. The
// fused predict+force job instead meets at the in-pool barrier: left
// counts the workers still predicting (its last decrementer marks the
// caches valid) and barrier parks the rest until it has — so the
// synchronous path pays one channel handoff per worker for both stages.
type predictCall struct {
	t       float64
	chips   []*chip.Chip
	units   []span
	next    int64
	wg      sync.WaitGroup
	left    atomic.Int32   // fused barrier: workers still predicting
	barrier sync.WaitGroup // fused barrier: drops to zero once caches are marked
}

// forceWorker is one persistent pool goroutine with reusable result
// slabs. Between calls it is parked on the jobs channel; within a force
// job it pre-merges the partials of every span it claims (exact integer
// adds, so the pre-merge is bit-identical to any other merge order — the
// Section 3.4 property) and leaves the merged slab for the caller to
// reduce after the join.
type forceWorker struct {
	jobs    chan poolJob
	merged  []chip.Partial // this worker's pre-merged partials, one per i
	scratch []chip.Partial // per-span result buffer
	claimed int            // spans claimed in the last force job
}

func (w *forceWorker) run() {
	for job := range w.jobs {
		switch job.kind {
		case jobForce:
			w.doForce(job.force)
			job.force.wg.Done()
		case jobPredict:
			w.doPredict(job.predict)
			job.predict.wg.Done()
		case jobFused:
			w.doFused(job.predict, job.force)
			job.force.wg.Done()
		}
	}
}

// doForce is the worker half of the striped force stage. It must stay
// allocation-free in steady state: the merged/scratch slabs only grow, and
// everything else is span claiming and exact merges.
//
//grape:noalloc
func (w *forceWorker) doForce(c *forceCall) {
	n := len(c.is)
	w.merged = growPartials(w.merged, n)
	w.scratch = growPartials(w.scratch, n)
	w.claimed = 0
	for {
		u := int(atomic.AddInt64(&c.next, 1)) - 1
		if u >= len(c.units) {
			return
		}
		s := c.units[u]
		dst := w.merged[:n]
		if w.claimed > 0 {
			dst = w.scratch[:n]
		}
		// The predict stage has already filled every chip's cache for c.t
		// (ForcesInto guarantees it), so concurrent range calls on one
		// chip are pure reads of the memory and the cache.
		c.chips[s.chip].ForceBatchRangeInto(dst, c.t, c.is, c.eps, s.lo, s.hi)
		if w.claimed > 0 {
			for i := 0; i < n; i++ {
				w.merged[i].Merge(&w.scratch[i])
			}
		}
		w.claimed++
	}
}

// doPredict is the worker half of the striped predict stage; like doForce
// it runs between every block step and must not allocate.
//
//grape:noalloc
func (w *forceWorker) doPredict(c *predictCall) {
	for {
		u := int(atomic.AddInt64(&c.next, 1)) - 1
		if u >= len(c.units) {
			return
		}
		s := c.units[u]
		c.chips[s.chip].PredictRange(c.t, s.lo, s.hi)
	}
}

// doFused runs both pool stages on one handoff: predict, an internal
// barrier, then force. The last worker out of the predict half (left
// hits zero; the atomic gives it happens-before over every striped
// cache write) marks all caches valid and opens the barrier; the rest
// park on the barrier WaitGroup — parking, not spinning, because the
// pool is routinely oversubscribed on small hosts and measured spin
// barriers lost 4x there. The caller still pays only one channel send
// per worker per evaluation for both stages.
//
//grape:noalloc
func (w *forceWorker) doFused(pc *predictCall, fc *forceCall) {
	w.doPredict(pc)
	if pc.left.Add(-1) == 0 {
		for _, ch := range pc.chips {
			ch.MarkPredicted(pc.t)
		}
		pc.barrier.Done()
	} else {
		//grapelint:ignore hotblock fused-stage barrier: parks only until the last predicting worker marks the caches; measured faster than spinning on oversubscribed hosts (BENCH_pr8.json)
		pc.barrier.Wait()
	}
	w.doForce(fc)
}

// growPartials returns s with length ≥ n, reallocating only on growth.
func growPartials(s []chip.Partial, n int) []chip.Partial {
	if cap(s) < n {
		//grapelint:ignore noallocdeep grow-only slab: reallocates only when the batch outgrows the high-water mark, never in steady state (alloc_test.go locks 0 allocs/op)
		return make([]chip.Partial, n)
	}
	return s[:n]
}

// pool returns the persistent workers, spawning them on first use: one
// per GOMAXPROCS, independent of the chip count, since work is striped by
// (chip, j-range) spans rather than whole chips. The steady-state path
// is a single lock-free atomic load; the mutex only serializes the
// first spawn (and respawn after Close) against concurrent Closes.
//
//grape:hotpath
func (a *Array) pool() []*forceWorker {
	if ws := a.workers.Load(); ws != nil {
		return *ws
	}
	//grapelint:ignore hotblock spawn-once slow path: taken on the first evaluation after New or Close; every later call returns on the atomic load above
	a.mu.Lock()
	defer a.mu.Unlock()
	if ws := a.workers.Load(); ws != nil {
		return *ws
	}
	ws := make([]*forceWorker, runtime.GOMAXPROCS(0))
	for wi := range ws {
		w := &forceWorker{jobs: make(chan poolJob)}
		ws[wi] = w
		go w.run()
	}
	a.workers.Store(&ws)
	return ws
}

// Close shuts down the worker pool, joining any in-flight predict stage
// first. It is safe to call multiple times and on an Array whose pool
// never started; the Array remains usable (a later Forces call lazily
// respawns the pool).
func (a *Array) Close() {
	a.joinPredict()
	a.mu.Lock()
	defer a.mu.Unlock()
	if ws := a.workers.Load(); ws != nil {
		for _, w := range *ws {
			close(w.jobs)
		}
		a.workers.Store(nil)
	}
}

// BeginPredict starts the pool-wide predict stage for time t — every
// chip's j-memory striped across all workers, the emulation counterpart
// of the on-chip predictor pipelines running concurrently with host work
// — and returns immediately. The next ForcesInto at t finds the caches
// hot; any other memory operation (load, update, close, a force pass at a
// different time) joins the stage first, so overlap is never observable
// in results. Callers use it to hide prediction behind host-side work:
// the backend kicks it before staging i-particles, and the integrator
// prefetches the next block's time while correcting the current block.
//
// On a single-core host (or a tiny j-memory) it is a no-op; the chips
// predict lazily in the force pass instead.
//
//grape:hotpath
func (a *Array) BeginPredict(t float64) {
	if a.predPending {
		if a.pc.t == t {
			return // already in flight for this time
		}
		a.joinPredict()
	}
	// In paged mode the chips hold whatever page streamed last; each page
	// predicts lazily inside the force pass, so there is nothing to
	// prefetch.
	if a.paged || runtime.GOMAXPROCS(0) <= 1 || a.nj < asyncPredictMin {
		return
	}
	a.startPredict(t, a.nj)
}

// startPredict stripes prediction at time t across the pool without
// waiting; nj is the currently chip-resident particle count (the loaded
// set, or one page of it). Any previous stage must have been joined.
// Only the async prefetch (BeginPredict) dispatches through here; the
// synchronous force path fuses prediction into its own broadcast.
//
//grape:hotpath
func (a *Array) startPredict(t float64, nj int) {
	pc := &a.pc
	pc.units = pc.units[:0]
	// Predict spans use the same tile-aligned striping as the force
	// stage: alignment is irrelevant for the predictor itself but keeps
	// one span geometry across both stages.
	l := stripeLen(nj, a.cfg.Chip.TileLen())
	for ci, ch := range a.chips {
		if !ch.PredictedAt(t) {
			pc.units = appendSpans(pc.units, ci, ch.NJ(), l)
		}
	}
	if len(pc.units) == 0 {
		// Every chip is already at t (an empty memory trivially so).
		for _, ch := range a.chips {
			ch.MarkPredicted(t)
		}
		return
	}
	pc.t = t
	pc.chips = a.chips
	pc.next = 0
	workers := a.pool()
	pc.wg.Add(len(workers))
	for _, w := range workers {
		//grapelint:ignore hotblock async prefetch dispatch: these sends overlap host-side work by design (the jobs park until joinPredict)
		w.jobs <- poolJob{kind: jobPredict, predict: pc}
	}
	a.predPending = true
}

// joinPredict waits for an in-flight predict stage and validates the
// chips' caches. The join happens-before the cache marking, so the
// striped writes are visible to whoever runs the force pass next.
//
//grape:hotpath
func (a *Array) joinPredict() {
	if !a.predPending {
		return
	}
	//grapelint:ignore hotblock the sanctioned join of the async prefetch; the fast path (no prefetch in flight) returns on the flag check above
	a.pc.wg.Wait()
	a.predPending = false
	for _, ch := range a.chips {
		ch.MarkPredicted(a.pc.t)
	}
}

// ForcesInto is the allocation-free force path: the merged results are
// written into the caller-owned slab dst (len(dst) must be ≥ len(is)).
// Steady-state callers reuse the slab, so a force evaluation allocates
// nothing on either the caller's or the workers' side.
//
// Cycle model: all chips run in lockstep on the same i-set, so the force
// time is the maximum chip time (the chips' memory loads differ by at most
// one particle); the reduction trees add one pipeline stage per level:
// ceil(log2 chips/module) within the module, ceil(log2 modules) on the
// board, and ceil(log2 boards) on the network board. The cycle count is
// computed analytically from the workload shape (chip.Config.BatchCycles),
// so it is independent of how the emulation stripes the work across host
// cores.
//
//grape:hotpath
func (a *Array) ForcesInto(dst []chip.Partial, t float64, is []chip.IParticle, eps float64) int64 {
	if len(dst) < len(is) {
		panic(fmt.Sprintf("board: partial slab of %d for %d i-particles", len(dst), len(is)))
	}
	a.joinPredict()
	if a.paged {
		return a.forcesPaged(dst, t, is, eps)
	}
	return a.forcesResident(dst, t, is, eps, a.nj) + a.reductionCycles()
}

// forcesResident evaluates the batch against the chip-resident j-set of
// nj particles (the whole loaded set, or one streamed page) and returns
// the lockstep chip cycles WITHOUT the reduction-tree latency — the
// caller adds reductionCycles once per evaluation, since the paged path
// merges page partials host-side and pays the trees once.
//
//grape:hotpath
func (a *Array) forcesResident(dst []chip.Partial, t float64, is []chip.IParticle, eps float64, nj int) int64 {
	nc := len(a.chips)
	n := len(is)
	var maxCycles int64

	if runtime.GOMAXPROCS(0) <= 1 || n*nj < serialWorkMax {
		// Small workload: the goroutine handoff costs more than the work.
		a.scratch = growPartials(a.scratch, n)
		for c := 0; c < nc; c++ {
			d := dst[:n]
			if c > 0 {
				d = a.scratch[:n]
			}
			cy := a.chips[c].ForceBatchInto(d, t, is, eps)
			if cy > maxCycles {
				maxCycles = cy
			}
			if c > 0 {
				for i := 0; i < n; i++ {
					dst[i].Merge(&a.scratch[i])
				}
			}
		}
		return maxCycles
	}

	// Predict stage: if the prefetch did not already run (or ran for a
	// different time), the spans ride the force broadcast as a fused job —
	// the workers predict, meet at an internal spin barrier, and roll
	// straight into the force spans, so the synchronous path pays one
	// channel handoff per worker per evaluation instead of two plus a
	// WaitGroup join (ROADMAP item 3, measured in BENCH_pr8.json).
	pc := &a.pc
	pc.units = pc.units[:0]
	// Tile-aligned spans: each claim is a whole number of j-tiles, so the
	// chips' cache blocking and the pool's dynamic striping compose. The
	// predict stage shares the geometry so one span list layout serves
	// both halves of the fused job.
	l := stripeLen(nj, a.cfg.Chip.TileLen())
	for ci, ch := range a.chips {
		if !ch.PredictedAt(t) {
			pc.units = appendSpans(pc.units, ci, ch.NJ(), l)
		}
	}
	needPredict := len(pc.units) > 0
	if needPredict {
		pc.t, pc.chips, pc.next = t, a.chips, 0
	} else {
		// Every cache already holds t (an empty memory trivially so).
		for _, ch := range a.chips {
			ch.MarkPredicted(t)
		}
	}

	// Force stage: stripe (chip, j-range) spans across the pool.
	fc := &a.fc
	fc.t, fc.is, fc.eps, fc.chips = t, is, eps, a.chips
	fc.units = fc.units[:0]
	for ci, ch := range a.chips {
		fc.units = appendSpans(fc.units, ci, ch.NJ(), l)
	}
	fc.next = 0
	workers := a.pool()
	fc.wg.Add(len(workers))
	if needPredict {
		pc.left.Store(int32(len(workers)))
		pc.barrier.Add(1)
		for _, w := range workers {
			//grapelint:ignore hotblock one parking handoff per worker per evaluation: the fused job replaces the former predict broadcast + join + force broadcast (BENCH_pr8.json)
			w.jobs <- poolJob{kind: jobFused, predict: pc, force: fc}
		}
	} else {
		for _, w := range workers {
			//grapelint:ignore hotblock one parking handoff per worker per evaluation: prediction was prefetched, only the force stage dispatches (BENCH_pr8.json)
			w.jobs <- poolJob{kind: jobForce, force: fc}
		}
	}
	//grapelint:ignore hotblock the single sanctioned join per evaluation: the caller must not touch dst or the slabs while workers run
	fc.wg.Wait()
	fc.is = nil // do not retain the caller's batch across calls

	// Reduction: exact merges, span distribution and order irrelevant by
	// construction. Workers that claimed no span contribute nothing.
	first := true
	for _, w := range workers {
		if w.claimed == 0 {
			continue
		}
		if first {
			copy(dst[:n], w.merged[:n])
			first = false
			continue
		}
		for i := 0; i < n; i++ {
			dst[i].Merge(&w.merged[i])
		}
	}
	if first {
		// Empty j-memory: initialise the slab exactly as a chip would.
		f := a.cfg.Chip.Format
		for i := 0; i < n; i++ {
			dst[i].Init(f, is[i].ExpAcc, is[i].ExpJerk, is[i].ExpPot)
		}
	}

	for _, ch := range a.chips {
		if cy := a.cfg.Chip.BatchCycles(n, ch.NJ()); cy > maxCycles {
			maxCycles = cy
		}
	}
	return maxCycles
}

// chipPageLen returns the per-chip page length of the streaming path:
// the largest whole number of j-tiles fitting the chip memory, so
// paging composes with the cache blocking (a memory smaller than one
// tile pages at full capacity).
func (a *Array) chipPageLen() int {
	tile := a.cfg.Chip.TileLen()
	capacity := a.cfg.Chip.MemCapacity
	if tile <= 0 || tile >= capacity {
		return capacity
	}
	return capacity - capacity%tile
}

// forcesPaged evaluates the batch against the host-resident j-set by
// streaming it through the chips page by page. Pages are balanced —
// npages = ceil(total/fleetPage), page p covers [p·total/npages,
// (p+1)·total/npages) and each chip takes an equally balanced chunk —
// so chunk sizes differ by at most one across the whole run, the chip
// planes keep one steady footprint (no shrink-hysteresis thrash), and
// the streaming steady state allocates nothing. Per-page partials merge
// into dst by exact integer accumulator adds, so the result is
// bit-identical to a hypothetical unbounded-memory resident evaluation
// (the Section 3.4 partition invariance), and the reduction-tree
// latency is paid once, as the hardware would.
//
//grape:hotpath
func (a *Array) forcesPaged(dst []chip.Partial, t float64, is []chip.IParticle, eps float64) int64 {
	n := len(is)
	nc := len(a.chips)
	total := len(a.jhost)
	fleetPage := nc * a.chipPageLen()
	npages := (total + fleetPage - 1) / fleetPage
	var cycles int64
	for p := 0; p < npages; p++ {
		page := a.jhost[p*total/npages : (p+1)*total/npages]
		m := len(page)
		for c := 0; c < nc; c++ {
			chunk := page[c*m/nc : (c+1)*m/nc]
			if err := a.chips[c].LoadJRange(0, chunk); err != nil {
				panic(fmt.Sprintf("board: page %d chip %d: %v", p, c, err))
			}
			if err := a.chips[c].TruncateJ(len(chunk)); err != nil {
				panic(fmt.Sprintf("board: page %d chip %d: %v", p, c, err))
			}
		}
		d := dst[:n]
		if p > 0 {
			a.pageScratch = growPartials(a.pageScratch, n)
			d = a.pageScratch[:n]
		}
		cycles += a.forcesResident(d, t, is, eps, m)
		if p > 0 {
			for i := 0; i < n; i++ {
				dst[i].Merge(&a.pageScratch[i])
			}
		}
	}
	return cycles + a.reductionCycles()
}

// BatchCyclesFor returns the hardware cycles a ForcesInto of ni
// i-particles against the currently loaded j-set would report, without
// evaluating anything. It mirrors the evaluation paths exactly — the
// lockstep maximum over per-chip BatchCycles plus the reduction-tree
// latency in resident mode, the per-page sum of chunk maxima plus one
// reduction in paged mode — so a multi-tenant scheduler can charge each
// coalesced sub-request the cycles a dedicated attachment would have
// charged it: occupancy is shared, accounting is not.
func (a *Array) BatchCyclesFor(ni int) int64 {
	if a.paged {
		nc := len(a.chips)
		total := len(a.jhost)
		fleetPage := nc * a.chipPageLen()
		npages := (total + fleetPage - 1) / fleetPage
		var cycles int64
		for p := 0; p < npages; p++ {
			m := (p+1)*total/npages - p*total/npages
			var maxCycles int64
			for c := 0; c < nc; c++ {
				chunk := (c+1)*m/nc - c*m/nc
				if cy := a.cfg.Chip.BatchCycles(ni, chunk); cy > maxCycles {
					maxCycles = cy
				}
			}
			cycles += maxCycles
		}
		return cycles + a.reductionCycles()
	}
	var maxCycles int64
	for _, ch := range a.chips {
		if cy := a.cfg.Chip.BatchCycles(ni, ch.NJ()); cy > maxCycles {
			maxCycles = cy
		}
	}
	return maxCycles + a.reductionCycles()
}

// reductionCycles returns the pipeline latency of the three-level
// reduction tree.
func (a *Array) reductionCycles() int64 {
	stages := log2ceil(a.cfg.ChipsPerModule) + log2ceil(a.cfg.ModulesPerBoard) + log2ceil(a.cfg.Boards)
	return int64(stages) * int64(a.cfg.ReduceCyclesPerStage)
}

func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// TimeFor converts a cycle count to seconds of hardware time.
func (a *Array) TimeFor(cycles int64) float64 {
	return float64(cycles) / a.cfg.Chip.ClockHz
}
