// Package board emulates the GRAPE-6 packaging hierarchy above the chip
// (Sections 2 and 3.3-3.4 of the paper): the processor module (4 chips
// plus a block-floating-point summation FPGA), the processor board (8
// modules behind one broadcast network and one reduction network), and the
// multi-board attachment of up to 4 boards to a single host through a
// network board.
//
// All j-particles attached to one host are distributed across the chips'
// local memories; every pipeline calculates forces on the same i-particle
// set, and the partial forces are summed exactly by the FPGA reduction
// trees — so the merged result is bit-identical to a single-chip
// evaluation of the same j-set (the Section 3.4 property).
package board

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"grape6/internal/chip"
)

// Config describes the packaging of one host's GRAPE-6 attachment.
type Config struct {
	Chip            chip.Config
	ChipsPerModule  int // paper: 4
	ModulesPerBoard int // paper: 8
	Boards          int // boards attached to this host (paper benchmarks: 4)

	// ReduceCyclesPerStage is the pipeline latency added per level of the
	// reduction tree (module, board, network board).
	ReduceCyclesPerStage int
}

// Default is a single host's production attachment: 4 boards of 32 chips.
var Default = Config{
	Chip:                 chip.Default,
	ChipsPerModule:       4,
	ModulesPerBoard:      8,
	Boards:               4,
	ReduceCyclesPerStage: 4,
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.ChipsPerModule <= 0 || c.ModulesPerBoard <= 0 || c.Boards <= 0 {
		return fmt.Errorf("board: non-positive packaging counts %d/%d/%d",
			c.ChipsPerModule, c.ModulesPerBoard, c.Boards)
	}
	if c.ReduceCyclesPerStage < 0 {
		return fmt.Errorf("board: negative reduction latency %d", c.ReduceCyclesPerStage)
	}
	return c.Chip.Validate()
}

// ChipsPerBoard returns the number of chips on one board (32 in
// production).
func (c Config) ChipsPerBoard() int { return c.ChipsPerModule * c.ModulesPerBoard }

// TotalChips returns the number of chips across all attached boards.
func (c Config) TotalChips() int { return c.ChipsPerBoard() * c.Boards }

// PeakFlops returns the attachment's peak speed under the 57-flops
// convention. One production board is 985.0 Gflops; the paper's
// 64-board machine totals 63.04 Tflops.
func (c Config) PeakFlops() float64 {
	return float64(c.TotalChips()) * c.Chip.PeakFlops()
}

// jloc locates a particle's memory image.
type jloc struct {
	chip int // flat chip index across all boards
	slot int
}

// Array is the emulated multi-board attachment of one host.
type Array struct {
	cfg   Config
	chips []*chip.Chip
	loc   map[int]jloc // particle id → memory location
	nj    int
}

// New builds the attachment. It panics on invalid configuration.
func New(cfg Config) *Array {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	a := &Array{cfg: cfg, loc: make(map[int]jloc)}
	a.chips = make([]*chip.Chip, cfg.TotalChips())
	for i := range a.chips {
		a.chips[i] = chip.New(cfg.Chip)
	}
	return a
}

// Config returns the attachment's configuration.
func (a *Array) Config() Config { return a.cfg }

// NJ returns the number of loaded j-particles.
func (a *Array) NJ() int { return a.nj }

// LoadJ distributes the particles across the chips' local memories in
// round-robin order (so each chip holds ≈ N/TotalChips particles, the
// GRAPE-6 local-memory design of Section 3.4) and records their locations
// for later updates.
func (a *Array) LoadJ(ps []chip.JParticle) error {
	nc := len(a.chips)
	buckets := make([][]chip.JParticle, nc)
	per := (len(ps) + nc - 1) / nc
	for i := range buckets {
		buckets[i] = make([]chip.JParticle, 0, per)
	}
	clear(a.loc)
	for i, p := range ps {
		c := i % nc
		a.loc[p.ID] = jloc{chip: c, slot: len(buckets[c])}
		buckets[c] = append(buckets[c], p)
	}
	for c, b := range buckets {
		if err := a.chips[c].LoadJ(b); err != nil {
			return fmt.Errorf("board: chip %d: %w", c, err)
		}
	}
	a.nj = len(ps)
	return nil
}

// UpdateJ rewrites the memory image of an already-loaded particle.
func (a *Array) UpdateJ(p chip.JParticle) error {
	l, ok := a.loc[p.ID]
	if !ok {
		return fmt.Errorf("board: particle %d not loaded", p.ID)
	}
	return a.chips[l.chip].WriteJ(l.slot, p)
}

// Forces evaluates forces on the i-particles from all loaded j-particles
// predicted to time t. It returns the merged partial results (one per
// i-particle, bit-identical to a single-chip evaluation) and the number of
// hardware clock cycles the attachment is busy.
//
// Cycle model: all chips run in lockstep on the same i-set, so the force
// time is the maximum chip time (the chips' memory loads differ by at most
// one particle); the reduction trees add one pipeline stage per level:
// ceil(log2 chips/module) within the module, ceil(log2 modules) on the
// board, and ceil(log2 boards) on the network board.
func (a *Array) Forces(t float64, is []chip.IParticle, eps float64) ([]*chip.Partial, int64) {
	nc := len(a.chips)
	partials := make([][]*chip.Partial, nc)
	cycles := make([]int64, nc)

	workers := runtime.GOMAXPROCS(0)
	if workers > nc {
		workers = nc
	}
	if workers <= 1 || len(is)*a.nj < 4096 {
		for c := 0; c < nc; c++ {
			partials[c], cycles[c] = a.chips[c].ForceBatch(t, is, eps)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for c := range next {
					partials[c], cycles[c] = a.chips[c].ForceBatch(t, is, eps)
				}
			}()
		}
		for c := 0; c < nc; c++ {
			next <- c
		}
		close(next)
		wg.Wait()
	}

	// Reduction: exact merges, tree order irrelevant by construction.
	out := partials[0]
	for c := 1; c < nc; c++ {
		for i := range out {
			out[i].Merge(partials[c][i])
		}
	}

	var maxCycles int64
	for _, cy := range cycles {
		if cy > maxCycles {
			maxCycles = cy
		}
	}
	maxCycles += a.reductionCycles()
	return out, maxCycles
}

// reductionCycles returns the pipeline latency of the three-level
// reduction tree.
func (a *Array) reductionCycles() int64 {
	stages := log2ceil(a.cfg.ChipsPerModule) + log2ceil(a.cfg.ModulesPerBoard) + log2ceil(a.cfg.Boards)
	return int64(stages) * int64(a.cfg.ReduceCyclesPerStage)
}

func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// TimeFor converts a cycle count to seconds of hardware time.
func (a *Array) TimeFor(cycles int64) float64 {
	return float64(cycles) / a.cfg.Chip.ClockHz
}
