// Package board emulates the GRAPE-6 packaging hierarchy above the chip
// (Sections 2 and 3.3-3.4 of the paper): the processor module (4 chips
// plus a block-floating-point summation FPGA), the processor board (8
// modules behind one broadcast network and one reduction network), and the
// multi-board attachment of up to 4 boards to a single host through a
// network board.
//
// All j-particles attached to one host are distributed across the chips'
// local memories; every pipeline calculates forces on the same i-particle
// set, and the partial forces are summed exactly by the FPGA reduction
// trees — so the merged result is bit-identical to a single-chip
// evaluation of the same j-set (the Section 3.4 property).
package board

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"grape6/internal/chip"
)

// Config describes the packaging of one host's GRAPE-6 attachment.
type Config struct {
	Chip            chip.Config
	ChipsPerModule  int // paper: 4
	ModulesPerBoard int // paper: 8
	Boards          int // boards attached to this host (paper benchmarks: 4)

	// ReduceCyclesPerStage is the pipeline latency added per level of the
	// reduction tree (module, board, network board).
	ReduceCyclesPerStage int
}

// Default is a single host's production attachment: 4 boards of 32 chips.
var Default = Config{
	Chip:                 chip.Default,
	ChipsPerModule:       4,
	ModulesPerBoard:      8,
	Boards:               4,
	ReduceCyclesPerStage: 4,
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.ChipsPerModule <= 0 || c.ModulesPerBoard <= 0 || c.Boards <= 0 {
		return fmt.Errorf("board: non-positive packaging counts %d/%d/%d",
			c.ChipsPerModule, c.ModulesPerBoard, c.Boards)
	}
	if c.ReduceCyclesPerStage < 0 {
		return fmt.Errorf("board: negative reduction latency %d", c.ReduceCyclesPerStage)
	}
	return c.Chip.Validate()
}

// ChipsPerBoard returns the number of chips on one board (32 in
// production).
func (c Config) ChipsPerBoard() int { return c.ChipsPerModule * c.ModulesPerBoard }

// TotalChips returns the number of chips across all attached boards.
func (c Config) TotalChips() int { return c.ChipsPerBoard() * c.Boards }

// PeakFlops returns the attachment's peak speed under the 57-flops
// convention. One production board is 985.0 Gflops; the paper's
// 64-board machine totals 63.04 Tflops.
func (c Config) PeakFlops() float64 {
	return float64(c.TotalChips()) * c.Chip.PeakFlops()
}

// jloc locates a particle's memory image.
type jloc struct {
	chip int // flat chip index across all boards
	slot int
}

// Array is the emulated multi-board attachment of one host.
//
// Force evaluation above a small-workload threshold runs on a persistent
// worker pool: the goroutines are spawned once (lazily, on first use),
// each owns a static share of the chips plus reusable partial slabs, and
// they stay parked on a job channel between calls — the emulation
// counterpart of the real chips running continuously. Close releases the
// pool; a closed Array may keep being used (the pool respawns lazily).
//
// An Array serves one host: like the real hardware's memory bus, force
// evaluations on the same Array must not run concurrently with each other
// or with loads/updates (the worker slabs and scratch are reused between
// calls). Distinct Arrays are fully independent.
type Array struct {
	cfg   Config
	chips []*chip.Chip
	loc   map[int]jloc // particle id → memory location
	nj    int

	mu      sync.Mutex // guards pool creation and Close
	workers []*forceWorker
	scratch []chip.Partial // serial-path per-chip scratch, reused across calls
}

// New builds the attachment. It panics on invalid configuration.
func New(cfg Config) *Array {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	a := &Array{cfg: cfg, loc: make(map[int]jloc)}
	a.chips = make([]*chip.Chip, cfg.TotalChips())
	for i := range a.chips {
		a.chips[i] = chip.New(cfg.Chip)
	}
	return a
}

// Config returns the attachment's configuration.
func (a *Array) Config() Config { return a.cfg }

// NJ returns the number of loaded j-particles.
func (a *Array) NJ() int { return a.nj }

// LoadJ distributes the particles across the chips' local memories in
// round-robin order (so each chip holds ≈ N/TotalChips particles, the
// GRAPE-6 local-memory design of Section 3.4) and records their locations
// for later updates.
func (a *Array) LoadJ(ps []chip.JParticle) error {
	nc := len(a.chips)
	buckets := make([][]chip.JParticle, nc)
	per := (len(ps) + nc - 1) / nc
	for i := range buckets {
		buckets[i] = make([]chip.JParticle, 0, per)
	}
	clear(a.loc)
	for i, p := range ps {
		c := i % nc
		a.loc[p.ID] = jloc{chip: c, slot: len(buckets[c])}
		buckets[c] = append(buckets[c], p)
	}
	for c, b := range buckets {
		if err := a.chips[c].LoadJ(b); err != nil {
			return fmt.Errorf("board: chip %d: %w", c, err)
		}
	}
	a.nj = len(ps)
	return nil
}

// UpdateJ rewrites the memory image of an already-loaded particle.
func (a *Array) UpdateJ(p chip.JParticle) error {
	l, ok := a.loc[p.ID]
	if !ok {
		return fmt.Errorf("board: particle %d not loaded", p.ID)
	}
	return a.chips[l.chip].WriteJ(l.slot, p)
}

// forceJob is one force evaluation broadcast to every pool worker.
type forceJob struct {
	t   float64
	is  []chip.IParticle
	eps float64
	wg  *sync.WaitGroup
}

// forceWorker owns a static share of the chips and reusable result slabs.
// Between calls it is parked on the jobs channel; within a call it
// pre-merges its chips' partials locally (exact integer adds, so the
// pre-merge is bit-identical to any other merge order — the Section 3.4
// property) and leaves the merged slab plus its worst chip cycle count for
// the caller to collect after wg.Wait.
type forceWorker struct {
	chips   []*chip.Chip
	jobs    chan forceJob
	merged  []chip.Partial // this worker's pre-merged partials, one per i
	scratch []chip.Partial // per-chip result buffer
	cycles  int64          // max chip cycles of the last job
}

func (w *forceWorker) run() {
	for job := range w.jobs {
		w.do(job)
		job.wg.Done()
	}
}

func (w *forceWorker) do(job forceJob) {
	n := len(job.is)
	w.merged = growPartials(w.merged, n)
	w.scratch = growPartials(w.scratch, n)
	w.cycles = 0
	for ci, ch := range w.chips {
		dst := w.merged[:n]
		if ci > 0 {
			dst = w.scratch[:n]
		}
		cy := ch.ForceBatchInto(dst, job.t, job.is, job.eps)
		if cy > w.cycles {
			w.cycles = cy
		}
		if ci > 0 {
			for i := 0; i < n; i++ {
				w.merged[i].Merge(&w.scratch[i])
			}
		}
	}
}

// growPartials returns s with length ≥ n, reallocating only on growth.
func growPartials(s []chip.Partial, n int) []chip.Partial {
	if cap(s) < n {
		return make([]chip.Partial, n)
	}
	return s[:n]
}

// pool returns the persistent workers, spawning them on first use. The
// chips are split into contiguous shares, one per worker, up to
// GOMAXPROCS workers.
func (a *Array) pool() []*forceWorker {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.workers == nil {
		nc := len(a.chips)
		nw := runtime.GOMAXPROCS(0)
		if nw > nc {
			nw = nc
		}
		a.workers = make([]*forceWorker, nw)
		for wi := range a.workers {
			lo, hi := wi*nc/nw, (wi+1)*nc/nw
			w := &forceWorker{chips: a.chips[lo:hi], jobs: make(chan forceJob)}
			a.workers[wi] = w
			go w.run()
		}
	}
	return a.workers
}

// Close shuts down the worker pool. It is safe to call multiple times and
// on an Array whose pool never started; the Array remains usable (a later
// Forces call lazily respawns the pool).
func (a *Array) Close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, w := range a.workers {
		close(w.jobs)
	}
	a.workers = nil
}

// Forces evaluates forces on the i-particles from all loaded j-particles
// predicted to time t. It returns the merged partial results (one per
// i-particle, bit-identical to a single-chip evaluation) and the number of
// hardware clock cycles the attachment is busy.
//
// This is the allocating convenience wrapper over ForcesInto: it builds
// one flat slab of partials and returns pointers into it.
func (a *Array) Forces(t float64, is []chip.IParticle, eps float64) ([]*chip.Partial, int64) {
	slab := make([]chip.Partial, len(is))
	cycles := a.ForcesInto(slab, t, is, eps)
	out := make([]*chip.Partial, len(is))
	for i := range slab {
		out[i] = &slab[i]
	}
	return out, cycles
}

// ForcesInto is the allocation-free force path: the merged results are
// written into the caller-owned slab dst (len(dst) must be ≥ len(is)).
// Steady-state callers reuse the slab, so a force evaluation allocates
// nothing on either the caller's or the workers' side.
//
// Cycle model: all chips run in lockstep on the same i-set, so the force
// time is the maximum chip time (the chips' memory loads differ by at most
// one particle); the reduction trees add one pipeline stage per level:
// ceil(log2 chips/module) within the module, ceil(log2 modules) on the
// board, and ceil(log2 boards) on the network board.
func (a *Array) ForcesInto(dst []chip.Partial, t float64, is []chip.IParticle, eps float64) int64 {
	if len(dst) < len(is) {
		panic(fmt.Sprintf("board: partial slab of %d for %d i-particles", len(dst), len(is)))
	}
	nc := len(a.chips)
	n := len(is)
	var maxCycles int64

	if runtime.GOMAXPROCS(0) <= 1 || n*a.nj < 4096 {
		// Small workload: the goroutine handoff costs more than the work.
		a.scratch = growPartials(a.scratch, n)
		for c := 0; c < nc; c++ {
			d := dst[:n]
			if c > 0 {
				d = a.scratch[:n]
			}
			cy := a.chips[c].ForceBatchInto(d, t, is, eps)
			if cy > maxCycles {
				maxCycles = cy
			}
			if c > 0 {
				for i := 0; i < n; i++ {
					dst[i].Merge(&a.scratch[i])
				}
			}
		}
		return maxCycles + a.reductionCycles()
	}

	workers := a.pool()
	var wg sync.WaitGroup
	wg.Add(len(workers))
	job := forceJob{t: t, is: is, eps: eps, wg: &wg}
	for _, w := range workers {
		w.jobs <- job
	}
	wg.Wait()

	// Reduction: exact merges, tree order irrelevant by construction.
	copy(dst[:n], workers[0].merged[:n])
	for _, w := range workers {
		if w.cycles > maxCycles {
			maxCycles = w.cycles
		}
	}
	for _, w := range workers[1:] {
		for i := 0; i < n; i++ {
			dst[i].Merge(&w.merged[i])
		}
	}
	return maxCycles + a.reductionCycles()
}

// reductionCycles returns the pipeline latency of the three-level
// reduction tree.
func (a *Array) reductionCycles() int64 {
	stages := log2ceil(a.cfg.ChipsPerModule) + log2ceil(a.cfg.ModulesPerBoard) + log2ceil(a.cfg.Boards)
	return int64(stages) * int64(a.cfg.ReduceCyclesPerStage)
}

func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// TimeFor converts a cycle count to seconds of hardware time.
func (a *Array) TimeFor(cycles int64) float64 {
	return float64(cycles) / a.cfg.Chip.ClockHz
}
