package board

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"testing"

	"grape6/internal/chip"
)

// seedKernelHash is the FNV-1a hash of the merged partials of the fixed
// workload below, captured from the pre-optimization (seed) force kernel.
// It pins the bit-exact output of the whole pipeline — fixed-point
// differences, mantissa rounding, block-floating-point accumulation and
// the reduction tree — so any "optimization" that changes a single result
// bit fails here.
const seedKernelHash = 0x0f9ec51439e83dd1

// goldenWorkloadHash evaluates the fixed seeded workload on an array built
// from cfg and hashes every merged partial: all seven accumulator sums plus
// the nearest-neighbour id per i-particle.
func goldenWorkloadHash(t *testing.T, cfg Config, forces func(a *Array, is []chip.IParticle) []*chip.Partial) uint64 {
	t.Helper()
	a := New(cfg)
	defer a.Close()
	_, is := loadPlummer(t, a, 512, 42)
	out := forces(a, is[:96])

	h := fnv.New64a()
	var buf [8]byte
	w := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	for _, p := range out {
		for c := 0; c < 3; c++ {
			w(p.Acc[c].Sum)
			w(p.Jerk[c].Sum)
		}
		w(p.Pot.Sum)
		w(int64(p.NN))
	}
	return h.Sum64()
}

func TestGoldenBitIdentityVsSeedKernel(t *testing.T) {
	got := goldenWorkloadHash(t, smallConfig(), func(a *Array, is []chip.IParticle) []*chip.Partial {
		out, _ := forces(a, 0.015625, is, 1.0/64)
		return out
	})
	if got != seedKernelHash {
		t.Errorf("merged partials hash %#016x differs from seed kernel %#016x:"+
			" the optimized force path changed result bits", got, seedKernelHash)
	}
}

func TestGoldenBitIdentityWorkerPool(t *testing.T) {
	// The parallel path — workers pre-merging their chips' partials locally
	// before the cross-worker merge — must also match the seed kernel bit
	// for bit (Section 3.4: integer accumulator adds are exact, so merge
	// order is irrelevant). Force GOMAXPROCS > 1 so the pool actually runs
	// even on single-CPU hosts.
	forceParallel(t)
	got := goldenWorkloadHash(t, smallConfig(), func(a *Array, is []chip.IParticle) []*chip.Partial {
		out, _ := forces(a, 0.015625, is, 1.0/64)
		if ws := a.workers.Load(); ws == nil || len(*ws) == 0 {
			t.Fatal("worker pool did not engage for the golden workload")
		}
		return out
	})
	if got != seedKernelHash {
		t.Errorf("worker-pool hash %#016x differs from seed kernel %#016x", got, seedKernelHash)
	}
}

func TestGoldenBitIdentityTileSweep(t *testing.T) {
	// Cache blocking must be invisible in the result bits: the golden
	// workload hashed under degenerate, prime, hardware-batch, mid-size and
	// auto-derived j-tile lengths must reproduce the seed kernel hash
	// exactly. 0 exercises board.New's cache-model derivation path.
	for _, tile := range []int{1, 7, 48, 512, 0} {
		cfg := smallConfig()
		cfg.Chip.TileJ = tile
		got := goldenWorkloadHash(t, cfg, func(a *Array, is []chip.IParticle) []*chip.Partial {
			out, _ := forces(a, 0.015625, is, 1.0/64)
			return out
		})
		if got != seedKernelHash {
			t.Errorf("tile %d: hash %#016x differs from seed kernel %#016x", tile, got, seedKernelHash)
		}
	}
}

// multiStepHash is the FNV-1a hash of a 24-block individual-timestep
// workload: every block advances the time (so the same-t predict memo
// never hits), evaluates forces on a 4-particle block and writes the
// corrected block back through UpdateJ — exercising predict prefetch,
// striped prediction and slot-level cache patching together. Captured
// from the serial pre-optimization path.
const multiStepHash = 0x12ad9bc6633aaa87

// multiStepWorkloadHash runs the workload on a; prefetch, when true,
// kicks BeginPredict for the next block time right after the corrector
// writes — the integrator's host/GRAPE overlap pattern.
func multiStepWorkloadHash(t *testing.T, a *Array, prefetch bool) uint64 {
	t.Helper()
	js, _ := loadPlummer(t, a, 2048, 77)
	f := a.Config().Chip.Format

	h := fnv.New64a()
	var buf [8]byte
	w := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}

	const nb = 4
	dst := make([]chip.Partial, nb)
	is := make([]chip.IParticle, nb)
	eps := 1.0 / 64
	for step := 0; step < 24; step++ {
		tm := float64(step+1) * math.Ldexp(1, -9)
		lo := (step * nb) % len(js)
		for q := 0; q < nb; q++ {
			j := &js[lo+q]
			x, v := chip.PredictParticle(f, j, tm)
			is[q] = chip.IParticle{X: x, V: v, SelfID: j.ID, ExpAcc: 4, ExpJerk: 6, ExpPot: 6}
		}
		a.ForcesInto(dst, tm, is, eps)
		for q := 0; q < nb; q++ {
			p := &dst[q]
			for c := 0; c < 3; c++ {
				w(p.Acc[c].Sum)
				w(p.Jerk[c].Sum)
			}
			w(p.Pot.Sum)
			w(int64(p.NN))
		}
		// Corrector stand-in: rewrite the block particles' memory images
		// with T0 = tm and deterministically perturbed state — slot-patch
		// traffic against the still-current prediction cache.
		for q := 0; q < nb; q++ {
			j := js[lo+q]
			j.T0 = tm
			x, v := chip.PredictParticle(f, &js[lo+q], tm)
			j.X = x
			j.V = v
			for c := 0; c < 3; c++ {
				j.A[c] = f.Round(j.A[c] + math.Ldexp(float64(step+1), -20))
			}
			js[lo+q] = j
			if err := a.UpdateJ(j); err != nil {
				t.Fatal(err)
			}
		}
		if prefetch {
			a.BeginPredict(float64(step+2) * math.Ldexp(1, -9))
		}
	}
	return h.Sum64()
}

func TestGoldenMultiStepSerial(t *testing.T) {
	a := New(smallConfig())
	defer a.Close()
	if got := multiStepWorkloadHash(t, a, false); got != multiStepHash {
		t.Errorf("serial multi-step hash %#016x, want %#016x", got, multiStepHash)
	}
}

func TestGoldenMultiStepParallel(t *testing.T) {
	forceParallel(t)
	a := New(smallConfig())
	defer a.Close()
	if got := multiStepWorkloadHash(t, a, false); got != multiStepHash {
		t.Errorf("parallel multi-step hash %#016x, want %#016x", got, multiStepHash)
	}
}

func TestGoldenMultiStepParallelPrefetch(t *testing.T) {
	// Async BeginPredict between blocks — the overlapped predictor must
	// not change a bit either.
	forceParallel(t)
	a := New(smallConfig())
	defer a.Close()
	if got := multiStepWorkloadHash(t, a, true); got != multiStepHash {
		t.Errorf("prefetch multi-step hash %#016x, want %#016x", got, multiStepHash)
	}
}

func TestGoldenMultiStepTiled(t *testing.T) {
	// The full individual-timestep loop — predict, force, slot-patch — at a
	// deliberately awkward prime tile length must still match the serial
	// pre-optimization hash.
	cfg := smallConfig()
	cfg.Chip.TileJ = 31
	a := New(cfg)
	defer a.Close()
	if got := multiStepWorkloadHash(t, a, false); got != multiStepHash {
		t.Errorf("tiled multi-step hash %#016x, want %#016x", got, multiStepHash)
	}
}

func TestGoldenBitIdentityForcesInto(t *testing.T) {
	// The reuse path through a dirty, caller-owned slab must produce the
	// same bits as the seed kernel too.
	got := goldenWorkloadHash(t, smallConfig(), func(a *Array, is []chip.IParticle) []*chip.Partial {
		slab := make([]chip.Partial, len(is))
		a.ForcesInto(slab, 0.25, is, 0.5) // dirty the slab with another workload
		a.ForcesInto(slab, 0.015625, is, 1.0/64)
		out := make([]*chip.Partial, len(is))
		for i := range slab {
			out[i] = &slab[i]
		}
		return out
	})
	if got != seedKernelHash {
		t.Errorf("ForcesInto hash %#016x differs from seed kernel %#016x", got, seedKernelHash)
	}
}
