package board

import (
	"runtime"
	"testing"

	"grape6/internal/chip"
)

// forceParallel raises GOMAXPROCS so ForcesInto takes the worker-pool path
// even on single-CPU hosts (where it would otherwise stay serial).
func forceParallel(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

func TestWorkerPoolPersistsAcrossCalls(t *testing.T) {
	forceParallel(t)
	a := New(smallConfig())
	defer a.Close()
	_, is := loadPlummer(t, a, 512, 7)

	// First large call spawns the pool.
	r1, _ := forces(a, 0, is[:64], 1.0/64)
	wp := a.workers.Load()
	if wp == nil || len(*wp) == 0 {
		t.Fatal("no worker pool after a large Forces call")
	}
	workers := *wp

	// Further calls — larger, smaller, and tiny (serial path) — reuse it.
	forces(a, 0, is[:128], 1.0/64)
	forces(a, 0, is[:16], 1.0/64)
	r2, _ := forces(a, 0, is[:64], 1.0/64)
	now := *a.workers.Load()
	if len(now) != len(workers) {
		t.Errorf("pool respawned: %d workers, then %d", len(workers), len(now))
	}
	for w := range workers {
		if now[w] != workers[w] {
			t.Errorf("worker %d replaced between calls", w)
		}
	}
	for i := range r1 {
		if r1[i].Acc[0].Sum != r2[i].Acc[0].Sum || r1[i].Pot.Sum != r2[i].Pot.Sum {
			t.Fatalf("i=%d: repeated evaluation changed bits", i)
		}
	}
}

func TestCloseIsIdempotentAndRespawns(t *testing.T) {
	forceParallel(t)
	a := New(smallConfig())
	_, is := loadPlummer(t, a, 512, 9)

	before, _ := forces(a, 0, is[:64], 1.0/64)
	a.Close()
	a.Close() // double close must not panic
	if a.workers.Load() != nil {
		t.Fatal("workers not cleared by Close")
	}

	// A closed Array keeps working: the pool respawns lazily.
	after, _ := forces(a, 0, is[:64], 1.0/64)
	for i := range before {
		if before[i].Acc[0].Sum != after[i].Acc[0].Sum {
			t.Fatalf("i=%d: results differ after Close/respawn", i)
		}
	}
	a.Close()

	// Close on an Array whose pool never started is a no-op.
	New(smallConfig()).Close()
}

func TestForcesIntoShortSlabPanics(t *testing.T) {
	a := New(smallConfig())
	defer a.Close()
	_, is := loadPlummer(t, a, 16, 10)
	defer func() {
		if recover() == nil {
			t.Error("ForcesInto accepted a too-short slab")
		}
	}()
	a.ForcesInto(make([]chip.Partial, 1), 0, is[:2], 0.1)
}

// BenchmarkArrayForces measures a 48-particle evaluation on an 8-chip
// attachment through the persistent pool and reusable slab. Steady state
// must be allocation-free.
func BenchmarkArrayForces(b *testing.B) {
	a := New(smallConfig())
	defer a.Close()
	_, is := loadPlummer(b, a, 1024, 1)
	dst := make([]chip.Partial, 48)
	a.ForcesInto(dst, 0, is[:48], 1.0/64) // warm up pool and worker slabs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ForcesInto(dst, 0, is[:48], 1.0/64)
	}
}

// BenchmarkArrayDispatch isolates the pool's per-evaluation
// synchronization cost: a small i-batch against a modest j-set, with the
// evaluation time advancing every iteration so the predict stage can
// never be skipped — the per-block-step pattern of the integrator. The
// work per span is tiny, so the ns/op is dominated by the dispatch
// machinery this benchmark tracks: with the fused predict+force job it
// is one channel handoff per worker plus one WaitGroup join, where the
// split stages paid two handoffs and two joins. Steady state must stay
// allocation-free.
func BenchmarkArrayDispatch(b *testing.B) {
	old := runtime.GOMAXPROCS(4) // engage the pool even on small hosts
	defer runtime.GOMAXPROCS(old)
	a := New(smallConfig())
	defer a.Close()
	_, is := loadPlummer(b, a, 2048, 1)
	dst := make([]chip.Partial, 4)
	a.ForcesInto(dst, 0, is[:4], 1.0/64) // warm up pool and worker slabs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := float64(i+1) * 0x1p-20
		a.ForcesInto(dst, t, is[:4], 1.0/64)
	}
}

// BenchmarkArrayForces64k is the array path at full memory pressure: 65536
// j-particles striped over the 8 emulated chips (8192 per chip), where the
// per-worker j-hot set exceeds the host cache and the tile-aligned spans
// matter.
func BenchmarkArrayForces64k(b *testing.B) {
	a := New(smallConfig())
	defer a.Close()
	_, is := loadPlummer(b, a, 65536, 1)
	dst := make([]chip.Partial, 48)
	a.ForcesInto(dst, 0, is[:48], 1.0/64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ForcesInto(dst, 0, is[:48], 1.0/64)
	}
}
