// Package ahmadcohen implements the Ahmad-Cohen (1973) neighbour scheme on
// top of the 4th-order Hermite integrator — the algorithm of Makino &
// Aarseth (1992), the paper's reference [10], and the workhorse of the
// NBODY-family codes that ran on GRAPE hardware.
//
// The total force on a particle is split into an irregular part from the
// ~n_nb nearest neighbours, re-evaluated on every (short) irregular step,
// and a regular part from the rest of the system, re-evaluated only on
// (longer) regular steps and extrapolated linearly in between. For
// centrally concentrated systems this cuts the pairwise work per unit time
// by a large factor while keeping the Hermite accuracy — the software-side
// counterpart of the hardware acceleration the paper describes.
package ahmadcohen

import (
	"fmt"
	"math"

	"grape6/internal/direct"
	"grape6/internal/hermite"
	"grape6/internal/nbody"
	"grape6/internal/vec"
)

// Params configures the scheme.
type Params struct {
	hermite.Params

	// TargetNeighbours is the desired neighbour count (clamped to N-1).
	TargetNeighbours int

	// RegFactor is the ratio cap between regular and irregular steps: the
	// regular step is at most RegFactor times the irregular step (and at
	// least equal to it). Power of two.
	RegFactor float64

	// InitialRadius is the starting neighbour-sphere radius; zero derives
	// it from the target count and a homogeneous-density estimate.
	InitialRadius float64
}

// DefaultParams mirrors hermite.DefaultParams with NBODY-style neighbour
// settings.
func DefaultParams(eps float64) Params {
	return Params{
		Params:           hermite.DefaultParams(eps),
		TargetNeighbours: 32,
		RegFactor:        8,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if err := p.Params.Validate(); err != nil {
		return err
	}
	if p.TargetNeighbours < 1 {
		return fmt.Errorf("ahmadcohen: target neighbours %d < 1", p.TargetNeighbours)
	}
	if p.RegFactor < 1 {
		return fmt.Errorf("ahmadcohen: regular factor %v < 1", p.RegFactor)
	}
	f, _ := math.Frexp(p.RegFactor)
	if f != 0.5 {
		return fmt.Errorf("ahmadcohen: regular factor %v not a power of two", p.RegFactor)
	}
	return nil
}

// pstate is the per-particle Ahmad-Cohen state beyond the nbody fields.
type pstate struct {
	nb    []int   // neighbour list (indices)
	rnb2  float64 // squared neighbour-sphere radius
	aIrr  vec.V3  // irregular force at Time
	jIrr  vec.V3
	aReg  vec.V3 // regular force at tReg
	jReg  vec.V3
	tReg  float64
	dtReg float64
	sIrr  vec.V3 // snap/crackle of the irregular+extrapolated force
	cIrr  vec.V3
}

// Integrator advances a system with the neighbour scheme.
type Integrator struct {
	Sys *nbody.System
	P   Params
	T   float64

	// Counters: the scheme's point is the PairOps saving.
	IrrSteps int64
	RegSteps int64
	Blocks   int64
	PairOps  int64 // pairwise force evaluations actually performed

	ps []pstate

	// sched buckets particles by step exponent so block selection is
	// O(active block) instead of an O(N) scan (shared with hermite).
	sched *nbody.BlockSched
	block []int

	// Prediction scratch. px/pv hold per-particle predicted states; pt is
	// the block time each entry was predicted at (NaN = never). Blocks
	// with only irregular steps predict just the block and its neighbour
	// lists lazily through pt; a block containing any regular step
	// refreshes the whole system (full-j force and neighbour rebuild read
	// every entry), so the O(N) predictor pass amortizes over the
	// ~RegFactor irregular steps between regular ones.
	px, pv []vec.V3
	pt     []float64

	// eagerPredict restores the retired predict-everything-per-block
	// behaviour; the lazy path is tested bit-identical against it.
	eagerPredict bool
}

// New initialises the scheme: full forces, neighbour lists and startup
// steps at the common initial time.
func New(sys *nbody.System, p Params) (*Integrator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if sys.N < 2 {
		return nil, fmt.Errorf("ahmadcohen: need at least 2 particles")
	}
	t0 := sys.Time[0]
	for _, t := range sys.Time {
		if t != t0 {
			return nil, fmt.Errorf("ahmadcohen: unsynchronised initial times")
		}
	}
	it := &Integrator{Sys: sys, P: p, T: t0}
	it.ps = make([]pstate, sys.N)
	it.px = make([]vec.V3, sys.N)
	it.pv = make([]vec.V3, sys.N)
	it.pt = make([]float64, sys.N)
	for i := range it.pt {
		it.pt[i] = math.NaN()
	}

	nnb := p.TargetNeighbours
	if nnb > sys.N-1 {
		nnb = sys.N - 1
	}

	// Initial neighbour radius from a homogeneous estimate around the
	// half-mass scale, refined per particle right below.
	r0 := p.InitialRadius
	if r0 <= 0 {
		r0 = 1.5 * math.Cbrt(float64(nnb)/float64(sys.N))
	}

	js := direct.JSet{Mass: sys.Mass, Pos: sys.Pos, Vel: sys.Vel}
	for i := 0; i < sys.N; i++ {
		st := &it.ps[i]
		st.rnb2 = r0 * r0
		st.nb = neighboursWithin(sys, i, st.rnb2, st.nb)
		// Refine the radius toward the target count.
		for adjust := 0; adjust < 8 && (len(st.nb) < nnb/2 || len(st.nb) > nnb*2); adjust++ {
			st.rnb2 *= math.Pow(float64(nnb+1)/float64(len(st.nb)+1), 2.0/3.0)
			st.nb = neighboursWithin(sys, i, st.rnb2, st.nb)
		}

		total := direct.EvalSkip(sys.Pos[i], sys.Vel[i], js, p.Eps, i)
		aIrr, jIrr := it.irregularForce(i, sys.Pos, sys.Vel)
		it.PairOps += int64(sys.N - 1 + len(st.nb))

		st.aIrr, st.jIrr = aIrr, jIrr
		st.aReg = total.Acc.Sub(aIrr)
		st.jReg = total.Jerk.Sub(jIrr)
		st.tReg = t0

		sys.Acc[i] = total.Acc
		sys.Jerk[i] = total.Jerk
		sys.Pot[i] = total.Pot
		sys.Snap[i] = vec.Zero
		sys.Crack[i] = vec.Zero
		sys.Time[i] = t0
		sys.Step[i] = hermite.QuantizeInitial(
			hermite.InitialStep(total.Acc, total.Jerk, p.EtaS), p.MinStep, p.MaxStep)
		st.dtReg = sys.Step[i] * p.RegFactor
		if st.dtReg > p.MaxStep {
			st.dtReg = p.MaxStep
		}
	}
	it.sched = nbody.NewBlockSched(sys)
	return it, nil
}

// neighboursWithin refills nb with the indices within the squared radius
// of i, reusing nb's backing array. Each particle threads its persistent
// list through, so steady-state rebuilds allocate only when a list grows
// past its historical maximum.
//
//grape:noalloc
func neighboursWithin(sys *nbody.System, i int, r2 float64, nb []int) []int {
	nb = nb[:0]
	for j := 0; j < sys.N; j++ {
		if j == i {
			continue
		}
		if sys.Pos[i].Dist2(sys.Pos[j]) < r2 {
			nb = append(nb, j)
		}
	}
	return nb
}

// irregularForce sums the neighbour contributions using the given
// (predicted) positions and velocities.
func (it *Integrator) irregularForce(i int, xs, vs []vec.V3) (a, j vec.V3) {
	sys := it.Sys
	e2 := it.P.Eps * it.P.Eps
	var ax, ay, az, jx, jy, jz float64
	xi, vi := xs[i], vs[i]
	for _, k := range it.ps[i].nb {
		dx := xs[k].X - xi.X
		dy := xs[k].Y - xi.Y
		dz := xs[k].Z - xi.Z
		dvx := vs[k].X - vi.X
		dvy := vs[k].Y - vi.Y
		dvz := vs[k].Z - vi.Z
		r2 := dx*dx + dy*dy + dz*dz + e2
		if r2 == 0 {
			continue
		}
		rinv := 1 / math.Sqrt(r2)
		rinv2 := rinv * rinv
		mr3 := sys.Mass[k] * rinv * rinv2
		rv := (dx*dvx + dy*dvy + dz*dvz) * rinv2
		ax += mr3 * dx
		ay += mr3 * dy
		az += mr3 * dz
		jx += mr3 * (dvx - 3*rv*dx)
		jy += mr3 * (dvy - 3*rv*dy)
		jz += mr3 * (dvz - 3*rv*dz)
	}
	return vec.V3{X: ax, Y: ay, Z: az}, vec.V3{X: jx, Y: jy, Z: jz}
}

// NextBlockTime returns the time of the next irregular block.
func (it *Integrator) NextBlockTime() float64 { return it.sched.NextTime() }

// predictTo stages particle i's predicted state at block time t, skipping
// entries already stamped for t.
//
//grape:noalloc
func (it *Integrator) predictTo(i int, t float64) {
	if it.pt[i] == t {
		return
	}
	sys := it.Sys
	dt := t - sys.Time[i]
	it.px[i], it.pv[i] = hermite.Predict(sys.Pos[i], sys.Vel[i], sys.Acc[i], sys.Jerk[i], sys.Snap[i], dt)
	it.pt[i] = t
}

// predictAll stages the whole system at t — required before any regular
// step (full-j force and neighbour rebuild reach every particle).
func (it *Integrator) predictAll(t float64) {
	sys := it.Sys
	for i := 0; i < sys.N; i++ {
		dt := t - sys.Time[i]
		it.px[i], it.pv[i] = hermite.Predict(sys.Pos[i], sys.Vel[i], sys.Acc[i], sys.Jerk[i], sys.Snap[i], dt)
		it.pt[i] = t
	}
}

// Step advances one irregular block step (performing regular steps for the
// particles whose regular time is due).
func (it *Integrator) Step() hermite.BlockStat {
	sys := it.Sys
	t := it.sched.NextTime()
	it.block = it.sched.AppendBlock(sys, t, it.block[:0])

	// Stage predictions before any corrector write. A block containing a
	// regular step needs the full system; a pure-irregular block touches
	// only its members and their neighbour lists, which is where the
	// Ahmad-Cohen amortization comes from.
	anyRegular := false
	for _, i := range it.block {
		if st := &it.ps[i]; t >= st.tReg+st.dtReg {
			anyRegular = true
			break
		}
	}
	if anyRegular || it.eagerPredict {
		it.predictAll(t)
	} else {
		for _, i := range it.block {
			it.predictTo(i, t)
			for _, k := range it.ps[i].nb {
				it.predictTo(k, t)
			}
		}
	}

	for _, i := range it.block {
		st := &it.ps[i]
		dt := t - sys.Time[i]

		// New irregular force at the predicted state.
		aIrr1, jIrr1 := it.irregularForce(i, it.px, it.pv)
		it.PairOps += int64(len(st.nb))

		regular := t >= st.tReg+st.dtReg

		var aReg1, jReg1 vec.V3
		var pot1 float64
		if regular {
			// Full force; rebuild the neighbour list at the new radius.
			js := direct.JSet{Mass: sys.Mass, Pos: it.px, Vel: it.pv}
			total := direct.EvalSkip(it.px[i], it.pv[i], js, it.P.Eps, i)
			it.PairOps += int64(sys.N - 1)
			pot1 = total.Pot

			// Adjust the neighbour sphere toward the target count.
			target := it.P.TargetNeighbours
			if target > sys.N-1 {
				target = sys.N - 1
			}
			st.rnb2 *= math.Pow(float64(target+1)/float64(len(st.nb)+1), 2.0/3.0)
			st.nb = predictedNeighboursWithin(it.px, i, st.rnb2, sys.N, st.nb)
			aIrr1, jIrr1 = it.irregularForce(i, it.px, it.pv)
			it.PairOps += int64(len(st.nb))

			aReg1 = total.Acc.Sub(aIrr1)
			jReg1 = total.Jerk.Sub(jIrr1)
		} else {
			// Extrapolate the regular force linearly to t.
			dtR := t - st.tReg
			aReg1 = st.aReg.AddScaled(dtR, st.jReg)
			jReg1 = st.jReg
			pot1 = sys.Pot[i] // potential refreshed on regular steps only
		}

		// Combined Hermite correction.
		a0, j0 := sys.Acc[i], sys.Jerk[i]
		a1 := aIrr1.Add(aReg1)
		j1 := jIrr1.Add(jReg1)
		x1, v1, snap1, crackle := hermite.Correct(sys.Pos[i], sys.Vel[i], a0, j0, a1, j1, dt)

		sys.Pos[i], sys.Vel[i] = x1, v1
		sys.Acc[i], sys.Jerk[i] = a1, j1
		sys.Snap[i], sys.Crack[i] = snap1, crackle
		sys.Pot[i] = pot1
		sys.Time[i] = t
		st.aIrr, st.jIrr = aIrr1, jIrr1

		desired := hermite.AarsethStep(a1, j1, snap1, crackle, it.P.Eta)
		sys.Step[i] = hermite.NextStep(sys.Step[i], desired, t, it.P.MinStep, it.P.MaxStep)
		it.sched.Rebin(sys, i)

		if regular {
			st.aReg, st.jReg = aReg1, jReg1
			st.tReg = t
			st.dtReg = sys.Step[i] * it.P.RegFactor
			if st.dtReg > it.P.MaxStep {
				st.dtReg = it.P.MaxStep
			}
			it.RegSteps++
		}
		it.IrrSteps++
	}

	it.T = t
	it.Blocks++
	return hermite.BlockStat{Time: t, Size: len(it.block), Bins: it.sched.Bins()}
}

// predictedNeighboursWithin is neighboursWithin on the prediction
// buffers, with the same scratch-reuse contract.
//
//grape:noalloc
func predictedNeighboursWithin(px []vec.V3, i int, r2 float64, n int, nb []int) []int {
	nb = nb[:0]
	for j := 0; j < n; j++ {
		if j == i {
			continue
		}
		if px[i].Dist2(px[j]) < r2 {
			nb = append(nb, j)
		}
	}
	return nb
}

// Run advances until the next block would exceed `until`.
func (it *Integrator) Run(until float64) {
	for it.NextBlockTime() <= until {
		it.Step()
	}
}

// Synchronize predicts every particle to time t into a snapshot copy.
func (it *Integrator) Synchronize(t float64) *nbody.System {
	snap := it.Sys.Clone()
	for i := 0; i < snap.N; i++ {
		dt := t - snap.Time[i]
		snap.Pos[i], snap.Vel[i] = hermite.Predict(snap.Pos[i], snap.Vel[i], snap.Acc[i], snap.Jerk[i], snap.Snap[i], dt)
		snap.Time[i] = t
	}
	return snap
}

// Energy returns the synchronized total energy (exact potential).
func (it *Integrator) Energy() float64 {
	return it.Synchronize(it.T).TotalEnergy(it.P.Eps)
}

// MeanNeighbours returns the current average neighbour count.
func (it *Integrator) MeanNeighbours() float64 {
	var sum int
	for i := range it.ps {
		sum += len(it.ps[i].nb)
	}
	return float64(sum) / float64(len(it.ps))
}
