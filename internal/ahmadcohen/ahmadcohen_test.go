package ahmadcohen

import (
	"math"
	"testing"

	"grape6/internal/hermite"
	"grape6/internal/model"
	"grape6/internal/nbody"
	"grape6/internal/xrand"
)

func TestParamsValidation(t *testing.T) {
	p := DefaultParams(0.01)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.TargetNeighbours = 0
	if err := p.Validate(); err == nil {
		t.Error("accepted zero neighbours")
	}
	p = DefaultParams(0.01)
	p.RegFactor = 3
	if err := p.Validate(); err == nil {
		t.Error("accepted non-power-of-two regular factor")
	}
	p = DefaultParams(0.01)
	p.RegFactor = 0.5
	if err := p.Validate(); err == nil {
		t.Error("accepted regular factor < 1")
	}
	p = DefaultParams(0.01)
	p.Eta = -1
	if err := p.Validate(); err == nil {
		t.Error("accepted bad hermite params")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nbody.New(1), DefaultParams(0.01)); err == nil {
		t.Error("accepted single particle")
	}
	sys := model.Plummer(8, xrand.New(1))
	sys.Time[3] = 0.5
	if _, err := New(sys, DefaultParams(0.01)); err == nil {
		t.Error("accepted unsynchronised system")
	}
}

func TestInitialForceSplit(t *testing.T) {
	// aIrr + aReg must equal the total direct force at init.
	sys := model.Plummer(64, xrand.New(2))
	it, err := New(sys, DefaultParams(1.0/64))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sys.N; i++ {
		sum := it.ps[i].aIrr.Add(it.ps[i].aReg)
		if d := sum.Dist(sys.Acc[i]); d > 1e-13*(1+sys.Acc[i].Norm()) {
			t.Fatalf("particle %d: force split inconsistent by %v", i, d)
		}
	}
}

func TestNeighbourCountsNearTarget(t *testing.T) {
	sys := model.Plummer(256, xrand.New(3))
	p := DefaultParams(1.0 / 64)
	p.TargetNeighbours = 20
	it, err := New(sys, p)
	if err != nil {
		t.Fatal(err)
	}
	mean := it.MeanNeighbours()
	if mean < 5 || mean > 80 {
		t.Errorf("mean neighbours = %v, target 20", mean)
	}
}

func TestEnergyConservation(t *testing.T) {
	sys := model.Plummer(128, xrand.New(4))
	it, err := New(sys, DefaultParams(1.0/64))
	if err != nil {
		t.Fatal(err)
	}
	e0 := it.Energy()
	it.Run(0.5)
	e1 := it.Energy()
	if rel := math.Abs((e1 - e0) / e0); rel > 5e-4 {
		t.Errorf("AC-scheme energy error = %v", rel)
	}
	if it.IrrSteps == 0 || it.RegSteps == 0 {
		t.Errorf("steps: irr=%d reg=%d", it.IrrSteps, it.RegSteps)
	}
}

func TestRegularStepsAreRarer(t *testing.T) {
	sys := model.Plummer(128, xrand.New(5))
	it, err := New(sys, DefaultParams(1.0/64))
	if err != nil {
		t.Fatal(err)
	}
	it.Run(0.25)
	if it.RegSteps*2 >= it.IrrSteps {
		t.Errorf("regular steps (%d) not much rarer than irregular (%d)", it.RegSteps, it.IrrSteps)
	}
}

func TestPairOpsSavings(t *testing.T) {
	// The scheme's point: fewer pairwise evaluations than plain Hermite
	// for the same integration interval.
	n := 256
	until := 0.25
	eps := 1.0 / 64

	acSys := model.Plummer(n, xrand.New(6))
	ac, err := New(acSys, DefaultParams(eps))
	if err != nil {
		t.Fatal(err)
	}
	ac.Run(until)

	plainSys := model.Plummer(n, xrand.New(6))
	plain, err := hermite.New(plainSys, hermite.NewDirectBackend(), hermite.DefaultParams(eps))
	if err != nil {
		t.Fatal(err)
	}
	plain.Run(until)

	if ac.PairOps >= plain.Interactions {
		t.Errorf("AC pair ops %d not below plain Hermite %d", ac.PairOps, plain.Interactions)
	}
	saving := float64(plain.Interactions) / float64(ac.PairOps)
	t.Logf("pairwise-work saving factor at N=%d: %.2f", n, saving)
	if saving < 1.3 {
		t.Errorf("saving factor only %.2f, expected >1.3", saving)
	}
}

func TestTrajectoriesCloseToPlainHermite(t *testing.T) {
	n := 96
	until := 0.125
	eps := 1.0 / 64

	acSys := model.Plummer(n, xrand.New(7))
	ac, err := New(acSys, DefaultParams(eps))
	if err != nil {
		t.Fatal(err)
	}
	ac.Run(until)
	acSnap := ac.Synchronize(until)

	plainSys := model.Plummer(n, xrand.New(7))
	plain, err := hermite.New(plainSys, hermite.NewDirectBackend(), hermite.DefaultParams(eps))
	if err != nil {
		t.Fatal(err)
	}
	plain.Run(until)
	plainSnap := plain.Synchronize(until)

	var maxDev float64
	for i := 0; i < n; i++ {
		if d := acSnap.Pos[i].Dist(plainSnap.Pos[i]); d > maxDev {
			maxDev = d
		}
	}
	if maxDev > 5e-3 {
		t.Errorf("AC trajectories deviate from plain Hermite by %v", maxDev)
	}
}

func TestBlocksAndTimes(t *testing.T) {
	sys := model.Plummer(64, xrand.New(8))
	it, err := New(sys, DefaultParams(1.0/64))
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for k := 0; k < 100; k++ {
		st := it.Step()
		if st.Size < 1 {
			t.Fatalf("empty block at step %d", k)
		}
		if st.Time <= prev {
			t.Fatalf("non-increasing block times")
		}
		prev = st.Time
	}
	if it.Blocks != 100 {
		t.Errorf("blocks = %d", it.Blocks)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *nbody.System {
		sys := model.Plummer(64, xrand.New(9))
		it, err := New(sys, DefaultParams(1.0/64))
		if err != nil {
			t.Fatal(err)
		}
		it.Run(0.125)
		return sys
	}
	a, b := run(), run()
	for i := 0; i < a.N; i++ {
		if a.Pos[i] != b.Pos[i] {
			t.Fatalf("non-deterministic AC integration at %d", i)
		}
	}
}

func BenchmarkACStep256(b *testing.B) {
	sys := model.Plummer(256, xrand.New(1))
	it, err := New(sys, DefaultParams(1.0/64))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.Step()
	}
}
