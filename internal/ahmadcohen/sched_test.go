package ahmadcohen

import (
	"testing"

	"grape6/internal/model"
	"grape6/internal/xrand"
)

// TestLazyPredictionMatchesEager: the lazy prediction staging (block +
// neighbour lists only on pure-irregular blocks) must be bit-identical
// to the retired predict-everything-per-block behaviour — it predicts
// the same particles from the same states with the same polynomial, so
// every float must agree to the last bit.
func TestLazyPredictionMatchesEager(t *testing.T) {
	run := func(eager bool) *Integrator {
		sys := model.Plummer(192, xrand.New(31))
		it, err := New(sys, DefaultParams(1.0/32))
		if err != nil {
			t.Fatal(err)
		}
		it.eagerPredict = eager
		for b := 0; b < 300; b++ {
			it.Step()
		}
		return it
	}
	lazy := run(false)
	eager := run(true)

	if lazy.T != eager.T || lazy.Blocks != eager.Blocks {
		t.Fatalf("block sequence diverged: T=%v/%v blocks=%d/%d",
			lazy.T, eager.T, lazy.Blocks, eager.Blocks)
	}
	if lazy.IrrSteps != eager.IrrSteps || lazy.RegSteps != eager.RegSteps || lazy.PairOps != eager.PairOps {
		t.Fatalf("work counters diverged: irr=%d/%d reg=%d/%d pairs=%d/%d",
			lazy.IrrSteps, eager.IrrSteps, lazy.RegSteps, eager.RegSteps,
			lazy.PairOps, eager.PairOps)
	}
	ls, es := lazy.Sys, eager.Sys
	for i := 0; i < ls.N; i++ {
		if ls.Pos[i] != es.Pos[i] || ls.Vel[i] != es.Vel[i] ||
			ls.Acc[i] != es.Acc[i] || ls.Jerk[i] != es.Jerk[i] ||
			ls.Time[i] != es.Time[i] || ls.Step[i] != es.Step[i] {
			t.Fatalf("particle %d state differs between lazy and eager prediction", i)
		}
	}
	for i := range lazy.ps {
		if len(lazy.ps[i].nb) != len(eager.ps[i].nb) || lazy.ps[i].rnb2 != eager.ps[i].rnb2 {
			t.Fatalf("particle %d neighbour state differs between lazy and eager", i)
		}
	}
}

// TestSchedulerMatchesScanAC checks the bucketed scheduler against the
// retired O(N) scan on the Ahmad-Cohen block sequence.
func TestSchedulerMatchesScanAC(t *testing.T) {
	sys := model.Plummer(128, xrand.New(37))
	it, err := New(sys, DefaultParams(1.0/32))
	if err != nil {
		t.Fatal(err)
	}
	var wantBlock []int
	for b := 0; b < 300; b++ {
		wantT := sys.MinTime()
		wantBlock = wantBlock[:0]
		for i := 0; i < sys.N; i++ {
			if sys.Time[i]+sys.Step[i] == wantT {
				wantBlock = append(wantBlock, i)
			}
		}
		if got := it.NextBlockTime(); got != wantT {
			t.Fatalf("block %d: NextBlockTime = %v, want %v", b, got, wantT)
		}
		stat := it.Step()
		if stat.Time != wantT || stat.Size != len(wantBlock) {
			t.Fatalf("block %d: got (t=%v, n=%d), want (t=%v, n=%d)",
				b, stat.Time, stat.Size, wantT, len(wantBlock))
		}
		for k := range wantBlock {
			if it.block[k] != wantBlock[k] {
				t.Fatalf("block %d: member[%d] = %d, want %d", b, k, it.block[k], wantBlock[k])
			}
		}
		if stat.Bins < 1 {
			t.Fatalf("block %d: Bins = %d, want >= 1", b, stat.Bins)
		}
	}
}

// TestStepSteadyStateAllocs: once neighbour lists, the block scratch and
// the scheduler bins have reached their working sizes, irregular block
// steps must not allocate (the neighboursWithin scratch reuse this PR's
// satellite task pins down).
func TestStepSteadyStateAllocs(t *testing.T) {
	sys := model.Plummer(256, xrand.New(5))
	it, err := New(sys, DefaultParams(1.0/32))
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 400; b++ {
		it.Step()
	}
	allocs := testing.AllocsPerRun(100, func() { it.Step() })
	if allocs > 0.05 {
		t.Fatalf("steady-state AC block step allocates %.2f times/op, want 0", allocs)
	}
}
