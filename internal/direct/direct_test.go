package direct

import (
	"math"
	"runtime"
	"testing"

	"grape6/internal/model"
	"grape6/internal/vec"
	"grape6/internal/xrand"
)

func jsetFrom(mass []float64, pos, vel []vec.V3) JSet {
	return JSet{Mass: mass, Pos: pos, Vel: vel}
}

func TestEvalSingleSource(t *testing.T) {
	// Unit mass at distance 2 along x, no softening:
	// a = m/r² = 1/4 toward the source; pot = -1/2.
	js := jsetFrom([]float64{1}, []vec.V3{vec.New(2, 0, 0)}, []vec.V3{vec.Zero})
	f := Eval(vec.Zero, vec.Zero, js, 0)
	if math.Abs(f.Acc.X-0.25) > 1e-15 || f.Acc.Y != 0 || f.Acc.Z != 0 {
		t.Errorf("acc = %v", f.Acc)
	}
	if math.Abs(f.Pot+0.5) > 1e-15 {
		t.Errorf("pot = %v", f.Pot)
	}
	if f.NN != 0 {
		t.Errorf("NN = %d", f.NN)
	}
}

func TestEvalSoftening(t *testing.T) {
	// With eps² = 3 and r² = 1: a = m / (1+3)^{3/2} = 1/8.
	js := jsetFrom([]float64{1}, []vec.V3{vec.New(1, 0, 0)}, []vec.V3{vec.Zero})
	f := Eval(vec.Zero, vec.Zero, js, math.Sqrt(3))
	if math.Abs(f.Acc.X-0.125) > 1e-15 {
		t.Errorf("softened acc = %v", f.Acc.X)
	}
	if math.Abs(f.Pot+0.5) > 1e-15 { // pot = -1/sqrt(4) = -1/2
		t.Errorf("softened pot = %v", f.Pot)
	}
}

func TestEvalJerkRadial(t *testing.T) {
	// Source at (1,0,0) moving with v=(1,0,0) relative (receding radially):
	// rv = (v·r)/r² = 1. jerk = m/r³ (v - 3 rv r) = (1 - 3·1·1, 0, 0) = (-2,0,0).
	js := jsetFrom([]float64{1}, []vec.V3{vec.New(1, 0, 0)}, []vec.V3{vec.New(1, 0, 0)})
	f := Eval(vec.Zero, vec.Zero, js, 0)
	if math.Abs(f.Jerk.X+2) > 1e-14 || math.Abs(f.Jerk.Y) > 1e-14 {
		t.Errorf("jerk = %v, want (-2,0,0)", f.Jerk)
	}
}

func TestEvalJerkTangential(t *testing.T) {
	// Source at (1,0,0) with relative velocity (0,1,0): rv = 0, so
	// jerk = m/r³ v = (0,1,0).
	js := jsetFrom([]float64{1}, []vec.V3{vec.New(1, 0, 0)}, []vec.V3{vec.New(0, 1, 0)})
	f := Eval(vec.Zero, vec.Zero, js, 0)
	if f.Jerk.Dist(vec.New(0, 1, 0)) > 1e-14 {
		t.Errorf("jerk = %v, want (0,1,0)", f.Jerk)
	}
}

func TestJerkIsDerivativeOfAcc(t *testing.T) {
	// Numerical check: jerk ≈ da/dt along the actual relative motion.
	xi := vec.New(0.1, -0.2, 0.3)
	vi := vec.New(0.05, 0.1, -0.02)
	js := jsetFrom(
		[]float64{2, 3},
		[]vec.V3{vec.New(1, 0.5, -0.2), vec.New(-0.7, 0.9, 1.1)},
		[]vec.V3{vec.New(-0.1, 0.2, 0.3), vec.New(0.4, -0.5, 0.6)},
	)
	eps := 0.05
	f0 := Eval(xi, vi, js, eps)

	dt := 1e-6
	// Advance everything by dt along straight lines.
	js2 := jsetFrom(
		js.Mass,
		[]vec.V3{js.Pos[0].AddScaled(dt, js.Vel[0]), js.Pos[1].AddScaled(dt, js.Vel[1])},
		js.Vel,
	)
	f1 := Eval(xi.AddScaled(dt, vi), vi, js2, eps)

	num := f1.Acc.Sub(f0.Acc).Scale(1 / dt)
	if num.Dist(f0.Jerk) > 1e-4*(1+f0.Jerk.Norm()) {
		t.Errorf("numerical da/dt = %v, analytic jerk = %v", num, f0.Jerk)
	}
}

func TestEvalSkipExcludesSelf(t *testing.T) {
	pos := []vec.V3{vec.New(0, 0, 0), vec.New(1, 0, 0)}
	vel := []vec.V3{vec.Zero, vec.Zero}
	js := jsetFrom([]float64{1, 1}, pos, vel)
	f := EvalSkip(pos[0], vel[0], js, 0, 0)
	// Only particle 1 contributes.
	if math.Abs(f.Acc.X-1) > 1e-15 {
		t.Errorf("acc with self skipped = %v", f.Acc)
	}
	if f.NN != 1 {
		t.Errorf("NN = %d", f.NN)
	}
}

func TestEvalZeroSofteningSelfPairSkipped(t *testing.T) {
	// A coincident particle with eps=0 must not produce NaN.
	pos := []vec.V3{vec.Zero, vec.New(1, 0, 0)}
	vel := []vec.V3{vec.Zero, vec.Zero}
	js := jsetFrom([]float64{1, 1}, pos, vel)
	f := Eval(vec.Zero, vec.Zero, js, 0)
	if !f.Acc.IsFinite() || math.IsNaN(f.Pot) {
		t.Errorf("coincident pair produced non-finite force: %+v", f)
	}
	if math.Abs(f.Acc.X-1) > 1e-15 {
		t.Errorf("acc = %v", f.Acc)
	}
}

func TestNewtonThirdLaw(t *testing.T) {
	// Momentum conservation: Σ m_i a_i = 0 for a self-contained system.
	rng := xrand.New(4)
	s := model.Plummer(200, rng)
	js := jsetFrom(s.Mass, s.Pos, s.Vel)
	var sum vec.V3
	for i := 0; i < s.N; i++ {
		f := EvalSkip(s.Pos[i], s.Vel[i], js, 0.01, i)
		sum = sum.AddScaled(s.Mass[i], f.Acc)
	}
	if sum.MaxAbs() > 1e-12 {
		t.Errorf("Σ m a = %v, want 0", sum)
	}
}

func TestJerkMomentumConservation(t *testing.T) {
	rng := xrand.New(5)
	s := model.Plummer(100, rng)
	js := jsetFrom(s.Mass, s.Pos, s.Vel)
	var sum vec.V3
	for i := 0; i < s.N; i++ {
		f := EvalSkip(s.Pos[i], s.Vel[i], js, 0.01, i)
		sum = sum.AddScaled(s.Mass[i], f.Jerk)
	}
	if sum.MaxAbs() > 1e-12 {
		t.Errorf("Σ m jerk = %v, want 0", sum)
	}
}

func TestEvalAllMatchesEvalSkip(t *testing.T) {
	rng := xrand.New(6)
	s := model.Plummer(64, rng)
	js := jsetFrom(s.Mass, s.Pos, s.Vel)
	all := EvalAll(s.Pos, s.Vel, js, 0.02, true)
	for i := 0; i < s.N; i++ {
		one := EvalSkip(s.Pos[i], s.Vel[i], js, 0.02, i)
		if all[i].Acc != one.Acc || all[i].Jerk != one.Jerk || all[i].Pot != one.Pot {
			t.Fatalf("EvalAll[%d] differs from EvalSkip", i)
		}
	}
}

func TestEvalAllParallelMatchesSerial(t *testing.T) {
	rng := xrand.New(7)
	s := model.Plummer(300, rng)
	js := jsetFrom(s.Mass, s.Pos, s.Vel)
	serial := EvalAll(s.Pos, s.Vel, js, 0.02, true)
	par := EvalAllParallel(s.Pos, s.Vel, js, 0.02, true)
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("parallel force %d differs: %+v vs %+v", i, serial[i], par[i])
		}
	}
}

func TestEvalAllParallelSmallInputs(t *testing.T) {
	// Degenerate sizes must not panic or drop particles.
	for _, n := range []int{0, 1, 2, 3} {
		xs := make([]vec.V3, n)
		vs := make([]vec.V3, n)
		ms := make([]float64, n)
		for i := range xs {
			xs[i] = vec.New(float64(i), 0, 0)
			ms[i] = 1
		}
		out := EvalAllParallel(xs, vs, jsetFrom(ms, xs, vs), 0.1, true)
		if len(out) != n {
			t.Fatalf("n=%d: got %d results", n, len(out))
		}
	}
}

func TestNearestNeighbour(t *testing.T) {
	js := jsetFrom(
		[]float64{1, 1, 1},
		[]vec.V3{vec.New(5, 0, 0), vec.New(1, 0, 0), vec.New(3, 0, 0)},
		make([]vec.V3, 3),
	)
	f := Eval(vec.Zero, vec.Zero, js, 0)
	if f.NN != 1 {
		t.Errorf("NN = %d, want 1", f.NN)
	}
	if math.Abs(f.NND2-1) > 1e-15 {
		t.Errorf("NND2 = %v, want 1", f.NND2)
	}
}

func TestInteractions(t *testing.T) {
	if got := Interactions(1000, 2000); got != 2_000_000 {
		t.Errorf("Interactions = %d", got)
	}
	// Must not overflow for paper-scale N.
	if got := Interactions(2_000_000, 2_000_000); got != 4_000_000_000_000 {
		t.Errorf("paper-scale Interactions = %d", got)
	}
}

func TestPotentialEnergyConsistency(t *testing.T) {
	rng := xrand.New(8)
	s := model.Plummer(128, rng)
	js := jsetFrom(s.Mass, s.Pos, s.Vel)
	eps := 0.02
	var w float64
	for i := 0; i < s.N; i++ {
		f := EvalSkip(s.Pos[i], s.Vel[i], js, eps, i)
		w += 0.5 * s.Mass[i] * f.Pot
	}
	direct := s.PotentialEnergy(eps)
	if math.Abs(w-direct) > 1e-12*math.Abs(direct) {
		t.Errorf("Σ½mφ = %v, pairwise = %v", w, direct)
	}
}

func BenchmarkEval1024(b *testing.B) {
	rng := xrand.New(1)
	s := model.Plummer(1024, rng)
	js := jsetFrom(s.Mass, s.Pos, s.Vel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvalSkip(s.Pos[i%s.N], s.Vel[i%s.N], js, 0.01, i%s.N)
	}
}

func BenchmarkEvalAllParallel4096(b *testing.B) {
	rng := xrand.New(1)
	s := model.Plummer(4096, rng)
	js := jsetFrom(s.Mass, s.Pos, s.Vel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvalAllParallel(s.Pos[:256], s.Vel[:256], js, 0.01, false)
	}
}

func TestJSetLen(t *testing.T) {
	js := jsetFrom(make([]float64, 7), make([]vec.V3, 7), make([]vec.V3, 7))
	if js.Len() != 7 {
		t.Errorf("Len = %d", js.Len())
	}
}

func TestEvalAllParallelLargeUsesWorkers(t *testing.T) {
	// A workload large enough to take the multi-goroutine path; results
	// must match the serial evaluation bit for bit (same per-i arithmetic).
	rng := xrand.New(21)
	s := model.Plummer(700, rng)
	js := jsetFrom(s.Mass, s.Pos, s.Vel)
	par := EvalAllParallel(s.Pos, s.Vel, js, 0.01, true)
	ser := EvalAll(s.Pos, s.Vel, js, 0.01, true)
	for i := range par {
		if par[i] != ser[i] {
			t.Fatalf("parallel[%d] differs from serial", i)
		}
	}
}

func TestEvalAllParallelSingleWorkerPath(t *testing.T) {
	// With GOMAXPROCS forced to 1 the copy-through branch runs.
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	rng := xrand.New(22)
	s := model.Plummer(64, rng)
	js := jsetFrom(s.Mass, s.Pos, s.Vel)
	par := EvalAllParallel(s.Pos, s.Vel, js, 0.01, true)
	ser := EvalAll(s.Pos, s.Vel, js, 0.01, true)
	for i := range par {
		if par[i] != ser[i] {
			t.Fatalf("single-worker path differs at %d", i)
		}
	}
}
