// Package direct implements the float64 reference force kernels: the exact
// (to double precision) evaluation of the gravitational acceleration, its
// time derivative (jerk) and the potential, eqs. (1)-(3) of the paper.
//
// These kernels are the ground truth against which the GRAPE-6 chip
// emulator is validated, and they double as the "software GRAPE" backend
// that lets every higher layer run without the hardware emulation.
package direct

import (
	"math"
	"runtime"
	"sync"

	"grape6/internal/vec"
)

// Force is the result of evaluating eqs. (1)-(3) for one i-particle.
type Force struct {
	Acc  vec.V3  // eq. (1)
	Jerk vec.V3  // eq. (2)
	Pot  float64 // eq. (3)
	NN   int     // index of the nearest neighbour among the j-set, -1 if none
	NND2 float64 // squared distance (softened) to that neighbour
}

// JSet is the source-particle view consumed by the kernels: masses,
// positions and velocities of the particles exerting force. Slices must
// have equal length.
type JSet struct {
	Mass []float64
	Pos  []vec.V3
	Vel  []vec.V3
}

// Len returns the number of source particles.
func (j JSet) Len() int { return len(j.Mass) }

// Eval computes the force on a particle at position xi with velocity vi
// from all particles in js, with Plummer softening eps. A source particle
// exactly coincident with (xi, vi distance 0 after softening... ) is skipped
// only when the softened distance is zero, which can happen only for
// eps == 0 and an exact self-pair; callers integrating a particle against a
// j-set that contains it should use EvalSkip.
func Eval(xi, vi vec.V3, js JSet, eps float64) Force {
	return EvalSkip(xi, vi, js, eps, -1)
}

// EvalSkip is Eval but ignores the source particle at index skip (pass -1
// to keep all). This is how self-interaction is excluded when the j-set
// contains the i-particle itself.
func EvalSkip(xi, vi vec.V3, js JSet, eps float64, skip int) Force {
	e2 := eps * eps
	var ax, ay, az float64
	var jx, jy, jz float64
	var pot float64
	nn := -1
	nnd2 := math.Inf(1)

	for j := 0; j < len(js.Mass); j++ {
		if j == skip {
			continue
		}
		dx := js.Pos[j].X - xi.X
		dy := js.Pos[j].Y - xi.Y
		dz := js.Pos[j].Z - xi.Z
		dvx := js.Vel[j].X - vi.X
		dvy := js.Vel[j].Y - vi.Y
		dvz := js.Vel[j].Z - vi.Z

		r2 := dx*dx + dy*dy + dz*dz + e2
		if r2 == 0 {
			continue // exact self-pair with zero softening
		}
		rinv := 1 / math.Sqrt(r2)
		rinv2 := rinv * rinv
		mrinv3 := js.Mass[j] * rinv * rinv2

		// rv = (v_ij · r_ij) / (r_ij² + ε²)
		rv := (dx*dvx + dy*dvy + dz*dvz) * rinv2

		ax += mrinv3 * dx
		ay += mrinv3 * dy
		az += mrinv3 * dz

		jx += mrinv3 * (dvx - 3*rv*dx)
		jy += mrinv3 * (dvy - 3*rv*dy)
		jz += mrinv3 * (dvz - 3*rv*dz)

		pot -= js.Mass[j] * rinv

		if r2 < nnd2 {
			nnd2 = r2
			nn = j
		}
	}
	return Force{
		Acc:  vec.V3{X: ax, Y: ay, Z: az},
		Jerk: vec.V3{X: jx, Y: jy, Z: jz},
		Pot:  pot,
		NN:   nn,
		NND2: nnd2,
	}
}

// EvalAll computes forces on every particle in (xi, vi) from js, excluding
// self-pairs by identity of index only when selfSet is true and the two
// sets are the same length (i.e. the i-set IS the j-set in the same order).
func EvalAll(xs, vs []vec.V3, js JSet, eps float64, selfSet bool) []Force {
	return EvalAllInto(make([]Force, len(xs)), xs, vs, js, eps, selfSet)
}

// EvalAllInto is EvalAll writing into the caller-owned dst (len(dst) must
// be ≥ len(xs)); it returns the filled prefix. Reusing dst across calls
// makes the reference backend allocation-free in steady state.
func EvalAllInto(dst []Force, xs, vs []vec.V3, js JSet, eps float64, selfSet bool) []Force {
	out := dst[:len(xs)]
	for i := range xs {
		skip := -1
		if selfSet {
			skip = i
		}
		out[i] = EvalSkip(xs[i], vs[i], js, eps, skip)
	}
	return out
}

// EvalAllParallel is EvalAll fanned out over GOMAXPROCS goroutines. The
// i-loop is embarrassingly parallel; each worker owns a contiguous range.
func EvalAllParallel(xs, vs []vec.V3, js JSet, eps float64, selfSet bool) []Force {
	return EvalAllParallelInto(make([]Force, len(xs)), xs, vs, js, eps, selfSet)
}

// EvalAllParallelInto is EvalAllParallel writing into the caller-owned dst
// (len(dst) must be ≥ len(xs)); it returns the filled prefix.
func EvalAllParallelInto(dst []Force, xs, vs []vec.V3, js JSet, eps float64, selfSet bool) []Force {
	out := dst[:len(xs)]
	ParallelFor(len(xs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			skip := -1
			if selfSet {
				skip = i
			}
			out[i] = EvalSkip(xs[i], vs[i], js, eps, skip)
		}
	})
	return out
}

// ParallelFor splits [0, n) into at most GOMAXPROCS contiguous chunks of at
// least minChunk elements each and runs fn on them concurrently, returning
// when all chunks are done. With one chunk (or GOMAXPROCS == 1) fn runs on
// the calling goroutine — no goroutines are spawned. fn must be safe to run
// concurrently on disjoint ranges.
func ParallelFor(n, minChunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minChunk < 1 {
		minChunk = 1
	}
	workers := runtime.GOMAXPROCS(0)
	if max := (n + minChunk - 1) / minChunk; workers > max {
		workers = max
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Interactions returns the number of pairwise interactions for ni
// i-particles against nj j-particles (the paper's flop accounting counts
// each as 57 operations).
func Interactions(ni, nj int) int64 {
	return int64(ni) * int64(nj)
}
