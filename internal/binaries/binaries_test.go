package binaries

import (
	"math"
	"testing"

	"grape6/internal/hermite"
	"grape6/internal/model"
	"grape6/internal/nbody"
	"grape6/internal/vec"
	"grape6/internal/xrand"
)

// plummerWithBinary embeds a tight equal-mass pair in a Plummer field.
func plummerWithBinary(n int, a float64, seed uint64) (*nbody.System, int, int) {
	field := model.Plummer(n, xrand.New(seed))
	sys := nbody.New(n + 2)
	copy(sys.Mass, field.Mass)
	copy(sys.Pos, field.Pos)
	copy(sys.Vel, field.Vel)
	// Pair of mass 0.02 each on a circular orbit at the origin.
	m := 0.02
	// Relative circular speed √(μ/a) with μ = 2m, split evenly.
	v := math.Sqrt(2*m/a) / 2
	sys.Mass[n], sys.Mass[n+1] = m, m
	sys.Pos[n] = vec.New(a/2, 0, 0)
	sys.Pos[n+1] = vec.New(-a/2, 0, 0)
	sys.Vel[n] = vec.New(0, v, 0)
	sys.Vel[n+1] = vec.New(0, -v, 0)
	return sys, n, n + 1
}

func TestTrackBoundPair(t *testing.T) {
	sys, i, j := plummerWithBinary(100, 0.01, 1)
	b, bound := Track(sys, i, j)
	if !bound {
		t.Fatal("constructed binary not bound")
	}
	if math.Abs(b.SemiMajor-0.01) > 2e-3 {
		t.Errorf("semi-major = %v, want ≈0.01", b.SemiMajor)
	}
	if b.Ecc > 0.2 {
		t.Errorf("eccentricity = %v for circular construction", b.Ecc)
	}
	if !b.Hard() {
		t.Errorf("tight massive pair not classified hard: hardness=%v", b.Hardness)
	}
}

func TestTrackUnboundPair(t *testing.T) {
	sys := nbody.New(2)
	sys.Mass[0], sys.Mass[1] = 0.5, 0.5
	sys.Pos[1] = vec.New(1, 0, 0)
	sys.Vel[1] = vec.New(5, 0, 0) // well above escape speed
	if _, bound := Track(sys, 0, 1); bound {
		t.Error("unbound pair reported bound")
	}
}

func TestDetectFindsEmbeddedBinary(t *testing.T) {
	sys, i, j := plummerWithBinary(200, 0.005, 2)
	bs := Detect(sys, 0.05)
	found := false
	for _, b := range bs {
		if b.I == i && b.J == j {
			found = true
			if !b.Hard() {
				t.Error("embedded binary not hard")
			}
		}
	}
	if !found {
		t.Fatalf("embedded binary not detected; %d pairs found", len(bs))
	}
	// Hardest first.
	for k := 1; k < len(bs); k++ {
		if bs[k].Ebind > bs[k-1].Ebind {
			t.Error("binaries not sorted by binding energy")
		}
	}
}

func TestDetectRespectsAMax(t *testing.T) {
	sys, _, _ := plummerWithBinary(100, 0.02, 3)
	for _, b := range Detect(sys, 0.001) {
		if b.SemiMajor > 0.001 {
			t.Errorf("pair with a=%v exceeds aMax", b.SemiMajor)
		}
	}
}

func TestDetectSmallSystems(t *testing.T) {
	if Detect(nbody.New(0), 1) != nil {
		t.Error("empty system returned pairs")
	}
	if Detect(nbody.New(1), 1) != nil {
		t.Error("single particle returned pairs")
	}
}

func TestElementsMatchesKnownOrbit(t *testing.T) {
	sys := model.TwoBodyEccentric(0.5, 0.5, 1.0, 0.3)
	el, err := Elements(sys, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(el.A-1.0) > 1e-12 || math.Abs(el.Ecc-0.3) > 1e-12 {
		t.Errorf("elements a=%v e=%v", el.A, el.Ecc)
	}
}

func TestHardBinarySurvivesIntegration(t *testing.T) {
	// Heggie's law, functionally: a hard binary integrated within its
	// cluster stays bound and does not soften appreciably over a short
	// run. This is exactly the paper's BH-binary phenomenology.
	sys, i, j := plummerWithBinary(64, 0.02, 4)
	b0, bound := Track(sys, i, j)
	if !bound {
		t.Fatal("initial pair unbound")
	}
	p := hermite.DefaultParams(1e-4)
	it, err := hermite.New(sys, hermite.NewDirectBackend(), p)
	if err != nil {
		t.Fatal(err)
	}
	it.Run(0.0625)
	snap := it.Synchronize(it.T)
	b1, bound := Track(snap, i, j)
	if !bound {
		t.Fatal("binary disrupted during integration")
	}
	if b1.Ebind < 0.5*b0.Ebind {
		t.Errorf("hard binary softened from %v to %v", b0.Ebind, b1.Ebind)
	}
}

func TestFieldPlummerHasFewHardBinaries(t *testing.T) {
	// A freshly sampled Plummer model contains no deliberately planted
	// binaries; any detected chance pairs should be overwhelmingly soft.
	sys := model.Plummer(500, xrand.New(5))
	bs := Detect(sys, 0.5)
	hard := 0
	for _, b := range bs {
		if b.Hard() {
			hard++
		}
	}
	if hard > 3 {
		t.Errorf("%d hard binaries in a fresh Plummer sample (chance pairs should be soft)", hard)
	}
}
