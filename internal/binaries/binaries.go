// Package binaries detects and classifies bound pairs in an N-body system
// — the on-the-fly analysis behind the paper's second application (the
// black-hole binary run of Section 5): as the two massive particles sink
// and bind, production codes track the pair's orbital elements and
// hardness every few blocks.
//
// A pair is "hard" when its binding energy exceeds the mean kinetic energy
// of the field stars (Heggie's law: hard binaries harden, soft binaries
// soften), which is the quantity that decides whether the binary keeps
// shrinking — the physics question the paper's 2M-particle run addressed.
package binaries

import (
	"math"
	"sort"

	"grape6/internal/kepler"
	"grape6/internal/nbody"
)

// Binary is a detected bound pair.
type Binary struct {
	I, J      int     // particle indices (I < J)
	SemiMajor float64 // semi-major axis of the relative orbit
	Ecc       float64 // eccentricity
	Ebind     float64 // binding energy: -E_orb = G m_i m_j / (2a) > 0
	Hardness  float64 // Ebind / <m v²/2> of the field
}

// Hard reports whether the pair is hard (hardness > 1).
func (b Binary) Hard() bool { return b.Hardness > 1 }

// meanKinetic returns the mean kinetic energy per particle.
func meanKinetic(sys *nbody.System) float64 {
	if sys.N == 0 {
		return 0
	}
	return sys.KineticEnergy() / float64(sys.N)
}

// pairOrbit computes the two-body orbital energy and, when bound, the
// elements of the relative orbit.
func pairOrbit(sys *nbody.System, i, j int) (eOrb, a, ecc float64, bound bool) {
	mi, mj := sys.Mass[i], sys.Mass[j]
	mu := mi + mj
	rel := sys.Pos[j].Sub(sys.Pos[i])
	vel := sys.Vel[j].Sub(sys.Vel[i])
	r := rel.Norm()
	if r == 0 {
		return 0, 0, 0, false
	}
	// Specific orbital energy of the relative problem.
	eSpec := vel.Norm2()/2 - mu/r
	if eSpec >= 0 {
		return eSpec, 0, 0, false
	}
	a = -mu / (2 * eSpec)
	// Eccentricity from angular momentum: e² = 1 + 2 e_spec h²/μ².
	h := rel.Cross(vel).Norm()
	e2 := 1 + 2*eSpec*h*h/(mu*mu)
	if e2 < 0 {
		e2 = 0
	}
	ecc = math.Sqrt(e2)
	// Binding energy of the pair (not specific): G mi mj / 2a.
	eOrb = mi * mj / (2 * a)
	return eOrb, a, ecc, true
}

// Detect finds bound pairs whose semi-major axis is below aMax, using a
// mutual-nearest-neighbour candidate search (O(N²) distance scan — the
// production codes use the GRAPE's hardware nearest-neighbour output for
// this; see chip.Partial.NN). Pairs are returned sorted by binding energy,
// hardest first.
func Detect(sys *nbody.System, aMax float64) []Binary {
	n := sys.N
	if n < 2 {
		return nil
	}
	// Nearest neighbour of each particle.
	nn := make([]int, n)
	for i := 0; i < n; i++ {
		best, bestD2 := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if d2 := sys.Pos[i].Dist2(sys.Pos[j]); d2 < bestD2 {
				best, bestD2 = j, d2
			}
		}
		nn[i] = best
	}

	ekin := meanKinetic(sys)
	var out []Binary
	for i := 0; i < n; i++ {
		j := nn[i]
		if j <= i || nn[j] != i {
			continue // not mutual, or already handled
		}
		eb, a, ecc, bound := pairOrbit(sys, i, j)
		if !bound || a > aMax {
			continue
		}
		b := Binary{I: i, J: j, SemiMajor: a, Ecc: ecc, Ebind: eb}
		if ekin > 0 {
			b.Hardness = eb / ekin
		}
		out = append(out, b)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Ebind > out[b].Ebind })
	return out
}

// Track computes the orbital elements of one specific pair (e.g. the two
// black holes of the Section 5 run) regardless of neighbour structure.
// The bool reports whether the pair is currently bound.
func Track(sys *nbody.System, i, j int) (Binary, bool) {
	eb, a, ecc, bound := pairOrbit(sys, i, j)
	if !bound {
		return Binary{I: min(i, j), J: max(i, j)}, false
	}
	b := Binary{I: min(i, j), J: max(i, j), SemiMajor: a, Ecc: ecc, Ebind: eb}
	if ekin := meanKinetic(sys); ekin > 0 {
		b.Hardness = eb / ekin
	}
	return b, true
}

// Elements returns the full Kepler elements of a bound, planar pair (for
// pairs orbiting in the xy plane, e.g. the constructed test binaries).
func Elements(sys *nbody.System, i, j int, t float64) (kepler.Elements, error) {
	mu := sys.Mass[i] + sys.Mass[j]
	rel := sys.Pos[j].Sub(sys.Pos[i])
	vel := sys.Vel[j].Sub(sys.Vel[i])
	return kepler.FromState(mu, rel, vel, t)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
