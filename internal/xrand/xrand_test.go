package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical draws from different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child stream must differ from parent's continued stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical draws from split streams", same)
	}
}

func TestSplitDeterminism(t *testing.T) {
	a := New(7).Split()
	b := New(7).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("split is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ≈0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(9)
	counts := make([]int, 7)
	const n = 70000
	for i := 0; i < n; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/7.0) > 5*math.Sqrt(n/7.0) {
			t.Errorf("bucket %d count %d deviates too far from %v", i, c, n/7.0)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestOnSphereUnit(t *testing.T) {
	r := New(17)
	for i := 0; i < 1000; i++ {
		x, y, z := r.OnSphere()
		n := x*x + y*y + z*z
		if math.Abs(n-1) > 1e-12 {
			t.Fatalf("|v|² = %v", n)
		}
	}
}

func TestOnSphereIsotropy(t *testing.T) {
	r := New(19)
	const n = 50000
	var sx, sy, sz float64
	for i := 0; i < n; i++ {
		x, y, z := r.OnSphere()
		sx += x
		sy += y
		sz += z
	}
	for _, s := range []float64{sx, sy, sz} {
		if math.Abs(s)/n > 0.01 {
			t.Errorf("mean component %v too far from 0", s/n)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(23)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Exp()
		if x < 0 {
			t.Fatalf("negative exponential deviate %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v", mean)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(29)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("shuffle duplicated %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var s uint64
	for i := 0; i < b.N; i++ {
		s ^= r.Uint64()
	}
	_ = s
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var s float64
	for i := 0; i < b.N; i++ {
		s += r.Norm()
	}
	_ = s
}
