// Package xrand provides a small, deterministic, splittable pseudo-random
// number generator used by every stochastic component of the reproduction
// (initial-condition sampling, synthetic traces, property tests).
//
// Reproducibility across runs and across machine partitionings is a design
// requirement inherited from the paper: GRAPE-6's block-floating-point
// summation makes results independent of machine size, and our experiment
// harness needs the same property for its random inputs. The generator is
// SplitMix64 feeding xoshiro256**, with an explicit Split operation that
// derives statistically independent child streams, so that parallel workers
// draw from disjoint streams regardless of scheduling order.
package xrand

import "math"

// Source is a deterministic random stream. It is NOT safe for concurrent
// use; use Split to give each goroutine its own stream.
type Source struct {
	s [4]uint64
}

// splitmix64 advances the seed state and returns the next output. It is
// used for seeding xoshiro and for deriving split streams.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given 64-bit seed.
func New(seed uint64) *Source {
	var s Source
	x := seed
	for i := range s.s {
		s.s[i] = splitmix64(&x)
	}
	// xoshiro must not be seeded with all zeros; splitmix64 outputs make
	// this astronomically unlikely but guard anyway.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 1
	}
	return &s
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Split returns a new Source whose stream is statistically independent of
// the receiver's subsequent output. The receiver advances by one draw.
func (r *Source) Split() *Source {
	seed := r.Uint64()
	return New(seed ^ 0xa3ec647659359acd)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high bits → [0,1) with full double precision.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and fast.
	un := uint64(n)
	threshold := (-un) % un
	for {
		hi, lo := mul64(r.Uint64(), un)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Norm returns a standard normal deviate via the Marsaglia polar method.
func (r *Source) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomizes the order of n elements using the given swap function.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// OnSphere returns a uniformly distributed unit vector direction as
// (x, y, z) components.
func (r *Source) OnSphere() (x, y, z float64) {
	z = r.Uniform(-1, 1)
	phi := r.Uniform(0, 2*math.Pi)
	s := math.Sqrt(1 - z*z)
	return s * math.Cos(phi), s * math.Sin(phi), z
}

// Exp returns an exponentially distributed deviate with mean 1.
func (r *Source) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}
