package des

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(2.0, func() { order = append(order, 2) })
	e.At(1.0, func() { order = append(order, 1) })
	e.At(3.0, func() { order = append(order, 3) })
	e.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 3.0 {
		t.Errorf("final time = %v", e.Now())
	}
}

func TestTieBreakByCreation(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1.0, func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of creation order: %v", order)
		}
	}
}

func TestAfterFromCallback(t *testing.T) {
	e := New()
	var times []float64
	e.At(1.0, func() {
		e.After(0.5, func() { times = append(times, e.Now()) })
	})
	e.RunAll()
	if len(times) != 1 || times[0] != 1.5 {
		t.Errorf("times = %v", times)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	e := New()
	var at float64 = -1
	e.At(2.0, func() {
		e.At(1.0, func() { at = e.Now() }) // in the past → clamped to 2.0
	})
	e.RunAll()
	if at != 2.0 {
		t.Errorf("past event ran at %v", at)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	e := New()
	var ran []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		e.At(at, func() { ran = append(ran, at) })
	}
	e.Run(2.5)
	if len(ran) != 2 {
		t.Errorf("ran %v, want events at 1 and 2 only", ran)
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d", e.Pending())
	}
	e.RunAll()
	if len(ran) != 4 {
		t.Errorf("after RunAll ran %v", ran)
	}
}

func TestProcessSleep(t *testing.T) {
	e := New()
	var trace []float64
	e.Spawn("p", func(p *Proc) {
		trace = append(trace, p.Now())
		p.Sleep(1.5)
		trace = append(trace, p.Now())
		p.Sleep(0.5)
		trace = append(trace, p.Now())
	})
	e.RunAll()
	want := []float64{0, 1.5, 2.0}
	if len(trace) != 3 {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Errorf("trace[%d] = %v, want %v", i, trace[i], want[i])
		}
	}
	if e.Live() != 0 {
		t.Errorf("live processes = %d", e.Live())
	}
}

func TestTwoProcessesInterleave(t *testing.T) {
	e := New()
	var trace []string
	e.Spawn("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(1)
		trace = append(trace, "a1")
		p.Sleep(2) // wakes at 3
		trace = append(trace, "a3")
	})
	e.Spawn("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(2)
		trace = append(trace, "b2")
	})
	e.RunAll()
	want := []string{"a0", "b0", "a1", "b2", "a3"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Errorf("trace = %v, want %v", trace, want)
			break
		}
	}
}

func TestParkWake(t *testing.T) {
	e := New()
	var got float64 = -1
	var w *Waiter
	e.Spawn("sleeper", func(p *Proc) {
		w = p.NewWaiter()
		w.Park()
		got = p.Now()
	})
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(1)
		w.Wake(2.5)
	})
	e.RunAll()
	if got != 2.5 {
		t.Errorf("woke at %v, want 2.5", got)
	}
	if e.Live() != 0 {
		t.Errorf("live = %d", e.Live())
	}
}

func TestWakeInPastClamps(t *testing.T) {
	e := New()
	var got float64 = -1
	var w *Waiter
	e.Spawn("sleeper", func(p *Proc) {
		w = p.NewWaiter()
		w.Park()
		got = p.Now()
	})
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(3)
		w.Wake(1.0) // in the past
	})
	e.RunAll()
	if got != 3.0 {
		t.Errorf("woke at %v, want 3.0 (clamped)", got)
	}
}

func TestWakeUnparkedIsNoop(t *testing.T) {
	e := New()
	e.Spawn("p", func(p *Proc) {
		w := p.NewWaiter()
		w.Wake(5) // not parked: no-op
		p.Sleep(1)
	})
	e.RunAll()
	if e.Now() != 1.0 {
		t.Errorf("final time = %v", e.Now())
	}
}

func TestDeadlockDetectable(t *testing.T) {
	e := New()
	e.Spawn("stuck", func(p *Proc) {
		w := p.NewWaiter()
		w.Park() // never woken
	})
	e.RunAll()
	if e.Live() != 1 {
		t.Errorf("live = %d, want 1 (deadlocked process)", e.Live())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		e := New()
		var trace []float64
		for i := 0; i < 5; i++ {
			e.Spawn("p", func(p *Proc) {
				for k := 0; k < 3; k++ {
					p.Sleep(0.5)
					trace = append(trace, p.Now())
				}
			})
		}
		e.RunAll()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different trace lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
}

func TestManyProcesses(t *testing.T) {
	e := New()
	count := 0
	for i := 0; i < 500; i++ {
		e.Spawn("w", func(p *Proc) {
			p.Sleep(float64(i%7) * 0.1)
			count++
		})
	}
	e.RunAll()
	if count != 500 {
		t.Errorf("count = %d", count)
	}
	if e.Live() != 0 {
		t.Errorf("live = %d", e.Live())
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := New()
	var child float64 = -1
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(1)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(0.5)
			child = c.Now()
		})
		p.Sleep(5)
	})
	e.RunAll()
	if child != 1.5 {
		t.Errorf("child finished at %v, want 1.5", child)
	}
}

func BenchmarkSleepCycle(b *testing.B) {
	e := New()
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	e.RunAll()
}

// Property: for any random schedule of events, execution order is sorted
// by (time, insertion sequence).
func TestPropEventOrder(t *testing.T) {
	f := func(seed uint32) bool {
		x := uint64(seed) | 1
		next := func() float64 {
			x = x*6364136223846793005 + 1442695040888963407
			return float64(x>>40) / float64(1<<24)
		}
		e := New()
		type rec struct {
			at  float64
			seq int
		}
		var fired []rec
		for i := 0; i < 50; i++ {
			at := next()
			i := i
			e.At(at, func() { fired = append(fired, rec{at, i}) })
		}
		e.RunAll()
		for k := 1; k < len(fired); k++ {
			if fired[k].at < fired[k-1].at {
				return false
			}
			if fired[k].at == fired[k-1].at && fired[k].seq < fired[k-1].seq {
				return false
			}
		}
		return len(fired) == 50
	}
	if err := quickCheck50(f); err != nil {
		t.Error(err)
	}
}

func quickCheck50(f func(uint32) bool) error {
	for i := uint32(1); i <= 50; i++ {
		if !f(i * 2654435761) {
			return errAt(i)
		}
	}
	return nil
}

type errAt uint32

func (e errAt) Error() string { return "property failed" }

type spanRec struct {
	tags       []int
	froms, tos []float64
}

func (s *spanRec) Span(tag int, from, to float64) {
	s.tags = append(s.tags, tag)
	s.froms = append(s.froms, from)
	s.tos = append(s.tos, to)
}

func TestSleepAsReportsSpans(t *testing.T) {
	e := New()
	rec := &spanRec{}
	e.Spawn("p", func(p *Proc) {
		p.Observe(rec)
		p.SleepAs(3, 1.5)
		p.Sleep(0.5) // untagged: no span
		p.SleepAs(1, 2.0)
	})
	e.RunAll()
	if len(rec.tags) != 2 {
		t.Fatalf("%d spans, want 2", len(rec.tags))
	}
	if rec.tags[0] != 3 || rec.froms[0] != 0 || rec.tos[0] != 1.5 {
		t.Errorf("span 0 = tag %d [%v,%v]", rec.tags[0], rec.froms[0], rec.tos[0])
	}
	if rec.tags[1] != 1 || rec.froms[1] != 2.0 || rec.tos[1] != 4.0 {
		t.Errorf("span 1 = tag %d [%v,%v]", rec.tags[1], rec.froms[1], rec.tos[1])
	}
	if e.Now() != 4.0 {
		t.Errorf("end time = %v", e.Now())
	}
}

func TestSleepAsWithoutObserver(t *testing.T) {
	e := New()
	var woke float64
	e.Spawn("p", func(p *Proc) {
		p.SleepAs(2, 1.25) // no observer attached: plain sleep
		woke = p.Now()
	})
	e.RunAll()
	if woke != 1.25 {
		t.Errorf("woke at %v, want 1.25", woke)
	}
}
