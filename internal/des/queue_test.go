package des

import (
	"container/heap"
	"math"
	"math/rand"
	"testing"
)

// refEvent / refQueue is the retired container/heap event queue, kept as
// the reference implementation: a pointer-event binary heap ordered by
// (at, seq) exactly as the engine's first version was. The differential
// test below checks that the production queue (4-ary value heap + ready
// ring) pops in exactly the same order over randomized workloads.
type refEvent struct {
	at  float64
	seq uint64
	id  int
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x interface{}) { *q = append(*q, x.(*refEvent)) }
func (q *refQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// TestDifferentialQueueOrder drives the engine and the container/heap
// reference through identical randomized workloads — bursts of At at
// mixed offsets (including zero — the ready-ring path) scheduled from
// inside callbacks, exactly how the simulation layers use the queue — and
// requires the pop order to match event for event.
func TestDifferentialQueueOrder(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))

		// Pre-generate the workload: each fired event schedules a few
		// follow-ups at deterministic offsets (0 → same-tick ready ring,
		// tiny → heap near the top, large → deep heap).
		type spec struct {
			fanout  int
			offsets [4]float64
		}
		specs := make([]spec, 400)
		for i := range specs {
			s := &specs[i]
			s.fanout = rng.Intn(4)
			for k := 0; k < s.fanout; k++ {
				switch rng.Intn(3) {
				case 0:
					s.offsets[k] = 0
				case 1:
					s.offsets[k] = rng.Float64() * 1e-6
				default:
					s.offsets[k] = rng.Float64()
				}
			}
		}

		// Run the engine: event i records its pop position.
		eng := New()
		var gotOrder []int
		var spawn func(id int)
		nextID := 0
		spawn = func(id int) {
			gotOrder = append(gotOrder, id)
			if id >= len(specs) {
				return
			}
			sp := specs[id]
			for k := 0; k < sp.fanout; k++ {
				cid := nextID
				nextID++
				eng.At(eng.Now()+sp.offsets[k], func() { spawn(cid) })
			}
		}
		// Seed events; ids 0..9 are the seeds, children number upward.
		nextID = 10
		for i := 0; i < 10; i++ {
			id := i
			eng.At(float64(i%3)*0.25, func() { spawn(id) })
		}
		eng.RunAll()

		// Replay on the reference queue with the same spec table.
		ref := &refQueue{}
		var wantOrder []int
		var seq uint64
		now := 0.0
		nextID = 10
		push := func(at float64, id int) {
			seq++
			heap.Push(ref, &refEvent{at: at, seq: seq, id: id})
		}
		for i := 0; i < 10; i++ {
			push(float64(i%3)*0.25, i)
		}
		for ref.Len() > 0 {
			ev := heap.Pop(ref).(*refEvent)
			now = ev.at
			wantOrder = append(wantOrder, ev.id)
			if ev.id >= len(specs) {
				continue
			}
			sp := specs[ev.id]
			for k := 0; k < sp.fanout; k++ {
				push(now+sp.offsets[k], nextID)
				nextID++
			}
		}

		if len(gotOrder) != len(wantOrder) {
			t.Fatalf("trial %d: engine fired %d events, reference %d", trial, len(gotOrder), len(wantOrder))
		}
		for i := range gotOrder {
			if gotOrder[i] != wantOrder[i] {
				t.Fatalf("trial %d: pop %d: engine fired event %d, reference %d", trial, i, gotOrder[i], wantOrder[i])
			}
		}
	}
}

// Non-finite times used to pass the `< 0` / `< now` guards silently and
// corrupt heap ordering. They must panic with a clear message now.
func TestNonFiniteTimesPanic(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic on non-finite time", name)
			}
		}()
		fn()
	}
	nan := math.NaN()
	inf := math.Inf(1)

	eng := New()
	mustPanic("At(NaN)", func() { eng.At(nan, func() {}) })
	mustPanic("At(+Inf)", func() { eng.At(inf, func() {}) })
	mustPanic("After(NaN)", func() { eng.After(nan, func() {}) })
	mustPanic("After(-Inf)", func() { eng.After(math.Inf(-1), func() {}) })
	mustPanic("AtHandler(NaN)", func() {
		h := eng.RegisterHandler(func(uint64) {})
		eng.AtHandler(nan, h, 0)
	})

	eng2 := New()
	eng2.Spawn("p", func(p *Proc) {
		mustPanic("Sleep(NaN)", func() { p.Sleep(nan) })
		mustPanic("Sleep(+Inf)", func() { p.Sleep(inf) })
		w := p.NewWaiter()
		eng2.After(0.5, func() { mustPanic("Wake(NaN)", func() { w.Wake(nan) }); w.Wake(1) })
		w.Park()
	})
	eng2.RunAll()
	if eng2.Live() != 0 {
		t.Fatal("process deadlocked")
	}
}

// Re-entrant Run/RunAll — from a process or from an event callback — used
// to deadlock on the scheduler handoff. It must panic descriptively.
func TestReentrantRunPanics(t *testing.T) {
	check := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic on re-entrant run", name)
			}
		}()
		fn()
	}

	eng := New()
	eng.Spawn("p", func(p *Proc) {
		check("RunAll from process", func() { eng.RunAll() })
		check("Run from process", func() { eng.Run(1) })
	})
	eng.RunAll()

	eng2 := New()
	eng2.At(0, func() {
		check("RunAll from callback", func() { eng2.RunAll() })
	})
	eng2.RunAll()
}

// RegisterHandler/AtHandler is the hot-path scheduling API used by
// simnet: events carry (handler id, arg) instead of a closure.
func TestHandlerEvents(t *testing.T) {
	eng := New()
	var got []uint64
	h := eng.RegisterHandler(func(arg uint64) { got = append(got, arg) })
	eng.AtHandler(2.0, h, 2)
	eng.AtHandler(1.0, h, 1)
	eng.AtHandler(1.0, h, 11) // same tick: creation order
	end := eng.RunAll()
	if end != 2.0 {
		t.Fatalf("end %g, want 2", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 11 || got[2] != 2 {
		t.Fatalf("handler args %v, want [1 11 2]", got)
	}
}

// BenchmarkEngineEventsPerSec measures raw queue throughput on the
// handler path: a self-sustaining population of 256 in-flight events,
// each firing rescheduling the next. After warmup (which grows the queue
// slabs) the steady-state loop performs zero allocations — the property
// the CI allocs/op guard pins.
func BenchmarkEngineEventsPerSec(b *testing.B) {
	eng := New()
	const inflight = 256
	fired, target := 0, 0
	rng := uint64(1)
	var h HandlerID
	h = eng.RegisterHandler(func(arg uint64) {
		fired++
		if fired < target {
			rng = rng*6364136223846793005 + 1442695040888963407
			eng.AtHandler(eng.Now()+1e-9+float64(rng>>40)*1e-15, h, arg)
		}
	})
	seed := func() {
		for i := 0; i < inflight; i++ {
			eng.AtHandler(eng.Now()+float64(i+1)*1e-9, h, uint64(i))
		}
	}
	// Warmup: grow heap/ready slabs so the timed section is steady-state.
	target = 4 * inflight
	fired = 0
	seed()
	eng.RunAll()

	b.ReportAllocs()
	b.ResetTimer()
	target = b.N
	fired = 0
	seed()
	eng.RunAll()
	b.StopTimer()
	if fired < b.N {
		// target smaller than the seeded population: everything fired.
		fired = b.N
	}
	b.ReportMetric(float64(fired)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkSleepProcCycle measures the full process path: Sleep → value
// event → single-channel handoff and back.
func BenchmarkSleepProcCycle(b *testing.B) {
	eng := New()
	n := b.N
	eng.Spawn("worker", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(1e-9)
		}
	})
	// Let the spawn callback run first so the timed loop is pure cycles.
	eng.Run(0)
	b.ReportAllocs()
	b.ResetTimer()
	eng.RunAll()
	b.StopTimer()
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "events/s")
}
