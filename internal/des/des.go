// Package des is a deterministic discrete-event simulation kernel with
// goroutine-based processes. It provides the virtual time base on which
// the network simulator (internal/simnet) and the parallel N-body
// algorithms (internal/parallel) run: simulated hosts are ordinary Go
// functions that Sleep in virtual time and exchange messages, while the
// kernel guarantees that exactly one process executes at a time and that
// events fire in (time, creation-order) sequence — so every simulation is
// reproducible bit for bit.
//
// The kernel is built for scale (full-machine co-simulations run hundreds
// of ranks and tens of millions of events): events are plain pointer-free
// values in an indexed 4-ary heap, same-tick events bypass the heap
// through a FIFO ready ring, callback storage is slab-reused, and the
// steady-state event loop — Sleep, Park/Wake, handler events — performs
// no allocation at all.
package des

import (
	"fmt"
	"math"
)

// Event kinds. A scheduled event is one of:
//
//   - evResume: hand the virtual CPU to process procs[arg] (Sleep wake-ups
//     and Waiter.Wake — the vast majority of events in a co-simulation);
//   - evFunc: run the callback stored in the fns slab at index arg
//     (Engine.At / Engine.After);
//   - evHandler: call registered handler hid with arg (the allocation-free
//     path used by hot-loop schedulers such as simnet message delivery).
const (
	evResume uint8 = iota
	evFunc
	evHandler
)

// event is a scheduled wake-up: a plain value with no pointers, ordered by
// (at, seq). Keeping the event pointer-free means the queue arrays are
// never scanned by the garbage collector, and value storage removes the
// per-event allocation of the earlier *event + closure representation.
type event struct {
	at   float64
	seq  uint64 // tie-breaker: creation order
	arg  uint64 // proc index, fn-slab index, or handler argument
	kind uint8
	hid  uint8 // handler id for evHandler
}

// before reports whether a fires before b: (time, creation-order).
func (a event) before(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// HandlerID names a handler registered with RegisterHandler.
type HandlerID uint8

// Engine owns the virtual clock and the event queue.
type Engine struct {
	now float64
	seq uint64

	// heap is a 4-ary min-heap on (at, seq) holding strictly-future
	// events. 4-ary beats binary here: sift paths are half as long and the
	// four-child comparison runs over one cache line of 32-byte events.
	heap []event

	// ready is a FIFO ring of events due exactly at the current virtual
	// time. Scheduling at t <= now appends here in O(1) — the batched
	// same-tick fan-out path (process start broadcasts, zero-delay chains,
	// Wake(now) message deliveries) — and the scheduler spins this ring
	// dry before consulting the heap. FIFO order is (time, seq) order
	// because every entry carries the same time and seq is the append
	// order; the pop rule still compares against the heap top so older
	// heap events at the same tick keep their place.
	ready []event
	rhead int

	// fns is the callback slab for At/After events; slots are recycled
	// through fnFree so a steady-state callback loop stops growing it.
	fns    []func()
	fnFree []int32

	handlers []func(arg uint64)

	// procs indexes every spawned process; evResume events carry the
	// index, not the pointer, keeping events pointer-free.
	procs []*Proc

	active  *Proc // the currently executing process, nil in the scheduler
	nproc   int
	running bool // inside Run/RunAll (re-entrance guard)
}

// New returns an engine at virtual time 0.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// checkFinite rejects NaN and ±Inf scheduling times: NaN silently fails
// every ordering comparison (it would corrupt heap ordering and make the
// event unreachable), and an infinite time can never fire.
func checkFinite(t float64, what string) {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		//grapelint:ignore noallocdeep cold panic path: a non-finite time is a caller bug and the simulation dies here
		panic(fmt.Sprintf("des: non-finite %s %v", what, t))
	}
}

// checkSleep rejects negative and non-finite sleep durations. Kept out
// of Sleep itself so the panic's boxing stays off the noalloc hot path.
func checkSleep(d float64) {
	if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
		//grapelint:ignore noallocdeep cold panic path: an invalid duration is a caller bug and the simulation dies here
		panic(fmt.Sprintf("des: invalid sleep %v", d))
	}
}

// schedule enqueues an event at t (already clamped to >= now): same-tick
// events go to the ready ring in O(1), future events into the heap.
//
//grape:noalloc
func (e *Engine) schedule(t float64, kind, hid uint8, arg uint64) {
	e.seq++
	ev := event{at: t, seq: e.seq, arg: arg, kind: kind, hid: hid}
	if t <= e.now {
		ev.at = e.now
		e.ready = append(e.ready, ev)
		return
	}
	e.heap = append(e.heap, ev)
	e.siftUp(len(e.heap) - 1)
}

// siftUp restores the heap property after appending at index i.
//
//grape:noalloc
func (e *Engine) siftUp(i int) {
	ev := e.heap[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !ev.before(e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		i = p
	}
	e.heap[i] = ev
}

// popHeap removes and returns the minimum heap event.
//
//grape:noalloc
func (e *Engine) popHeap() event {
	top := e.heap[0]
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		// Sift the displaced last element down from the root.
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for k := c + 1; k < end; k++ {
				if e.heap[k].before(e.heap[m]) {
					m = k
				}
			}
			if !e.heap[m].before(last) {
				break
			}
			e.heap[i] = e.heap[m]
			i = m
		}
		e.heap[i] = last
	}
	return top
}

// next pops the earliest pending event with at <= limit, honouring the
// global (time, seq) order across the ready ring and the heap.
//
//grape:noalloc
func (e *Engine) next(limit float64) (event, bool) {
	if e.rhead < len(e.ready) {
		r := e.ready[e.rhead]
		if len(e.heap) == 0 || r.before(e.heap[0]) {
			if r.at > limit {
				return event{}, false
			}
			e.rhead++
			if e.rhead == len(e.ready) {
				e.ready = e.ready[:0]
				e.rhead = 0
			}
			return r, true
		}
	}
	if len(e.heap) == 0 || e.heap[0].at > limit {
		return event{}, false
	}
	return e.popHeap(), true
}

// dispatch executes one popped event in scheduler context.
func (e *Engine) dispatch(ev event) {
	switch ev.kind {
	case evResume:
		e.handoff(e.procs[ev.arg])
	case evFunc:
		fn := e.fns[ev.arg]
		e.fns[ev.arg] = nil
		e.fnFree = append(e.fnFree, int32(ev.arg))
		fn()
	default: // evHandler
		e.handlers[ev.hid](ev.arg)
	}
}

// At schedules fn to run at absolute virtual time t (clamped to now).
// Callbacks run in the scheduler context and must not block. t must be
// finite. The callback is held in a recycled slab slot, so a steady
// schedule/fire loop does not grow the engine — though fn itself is
// usually a fresh closure; hot paths that must not allocate should use
// RegisterHandler/AtHandler instead.
func (e *Engine) At(t float64, fn func()) {
	checkFinite(t, "event time")
	if t < e.now {
		t = e.now
	}
	var idx int32
	if n := len(e.fnFree) - 1; n >= 0 {
		idx = e.fnFree[n]
		e.fnFree = e.fnFree[:n]
		e.fns[idx] = fn
	} else {
		idx = int32(len(e.fns))
		e.fns = append(e.fns, fn)
	}
	e.schedule(t, evFunc, 0, uint64(idx))
}

// After schedules fn to run after a finite virtual delay d ≥ 0.
func (e *Engine) After(d float64, fn func()) {
	if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
		panic(fmt.Sprintf("des: invalid delay %v", d))
	}
	e.At(e.now+d, fn)
}

// RegisterHandler registers a reusable event handler and returns its id.
// A handler is the allocation-free alternative to At for hot-path callers
// that keep their own state slabs: scheduling with AtHandler stores only
// (id, arg) in the event, no closure. Handlers cannot be unregistered;
// an engine supports at most 256.
func (e *Engine) RegisterHandler(fn func(arg uint64)) HandlerID {
	if len(e.handlers) >= 256 {
		panic("des: handler table full")
	}
	e.handlers = append(e.handlers, fn)
	return HandlerID(len(e.handlers) - 1)
}

// AtHandler schedules handler h to run with arg at absolute virtual time
// t (clamped to now, must be finite). It performs no allocation beyond
// amortized queue growth.
//
//grape:noalloc
func (e *Engine) AtHandler(t float64, h HandlerID, arg uint64) {
	checkFinite(t, "event time")
	if t < e.now {
		t = e.now
	}
	e.schedule(t, evHandler, uint8(h), arg)
}

// SpanObserver receives attributed virtual-time spans from SleepAs. The
// tag space is owned by the caller (internal/vtrace uses its Phase
// constants); [from, to] are absolute virtual times.
type SpanObserver interface {
	Span(tag int, from, to float64)
}

// Proc is a simulated process: a goroutine that runs only when the engine
// hands it the virtual CPU.
type Proc struct {
	eng  *Engine
	name string
	idx  int32
	done bool
	obs  SpanObserver

	// ch is the single bidirectional handoff channel: the scheduler sends
	// one token to resume the process and then blocks receiving on the
	// same channel; the process sends the token back when it yields.
	// Strict alternation (exactly one process runs at a time) makes the
	// single unbuffered channel safe, and halves the channels of the old
	// resume+sched pair.
	ch chan struct{}
}

// Observe attaches a span observer to the process (nil detaches). With no
// observer, SleepAs is exactly Sleep — the zero-overhead fast path.
func (p *Proc) Observe(o SpanObserver) { p.obs = o }

// Name returns the process name (for diagnostics).
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.eng.now }

// Spawn creates a process executing fn, scheduled to start at the current
// virtual time. fn runs in its own goroutine but never concurrently with
// other processes or the scheduler.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, idx: int32(len(e.procs)), ch: make(chan struct{})}
	e.procs = append(e.procs, p)
	e.nproc++
	e.After(0, func() {
		go func() {
			<-p.ch // wait for the scheduler to hand over
			fn(p)
			p.done = true
			e.nproc--
			e.active = nil
			p.ch <- struct{}{} // return control
		}()
		e.handoff(p)
	})
	return p
}

// handoff transfers the virtual CPU to p and waits for it to yield. Must
// be called from scheduler context.
//
//grape:noalloc
func (e *Engine) handoff(p *Proc) {
	e.active = p
	//grapelint:ignore hotblock coroutine transfer IS the scheduler: exactly one send+receive pair per process activation, with the peer always parked on the other end
	p.ch <- struct{}{}
	//grapelint:ignore hotblock coroutine transfer IS the scheduler: exactly one send+receive pair per process activation, with the peer always parked on the other end
	<-p.ch
}

// yield returns control from the active process to the scheduler and
// blocks until resumed.
//
//grape:noalloc
func (p *Proc) yield() {
	p.eng.active = nil
	//grapelint:ignore hotblock coroutine transfer IS the scheduler: exactly one send+receive pair per process suspension, with the scheduler always parked on the other end
	p.ch <- struct{}{}
	//grapelint:ignore hotblock coroutine transfer IS the scheduler: exactly one send+receive pair per process suspension, with the scheduler always parked on the other end
	<-p.ch
}

// Sleep suspends the process for a finite virtual duration d ≥ 0. The
// wake-up is a value event carrying the process index — no allocation.
//
//grape:noalloc
func (p *Proc) Sleep(d float64) {
	checkSleep(d)
	e := p.eng
	e.schedule(e.now+d, evResume, 0, uint64(p.idx))
	p.yield()
}

// SleepAs suspends like Sleep and attributes the elapsed interval to tag
// on the attached observer — the hook the co-simulation's phase
// accounting (internal/vtrace) rides on. Without an observer it is
// exactly Sleep.
func (p *Proc) SleepAs(tag int, d float64) {
	if p.obs == nil {
		p.Sleep(d)
		return
	}
	from := p.eng.now
	p.Sleep(d)
	p.obs.Span(tag, from, p.eng.now)
}

// Waiter suspends the process until Wake is called with it.
type Waiter struct {
	p       *Proc
	waiting bool
}

// NewWaiter returns a parking spot for p. Waiters are reusable across
// Park/Wake cycles; hot paths should allocate one per process and reuse
// it rather than calling NewWaiter per wait.
func (p *Proc) NewWaiter() *Waiter { return &Waiter{p: p} }

// Park blocks the process until Wake. Calling Park while already parked is
// a programming error.
func (w *Waiter) Park() {
	if w.waiting {
		panic("des: double park")
	}
	w.waiting = true
	w.p.yield()
}

// Wake schedules the parked process to resume at finite virtual time t
// (or now, if t is in the past). It is a no-op if the process is not
// parked — the caller is responsible for pairing Park/Wake correctly.
// Must be called from scheduler context (event callbacks) or from another
// process.
//
//grape:noalloc
func (w *Waiter) Wake(t float64) {
	if !w.waiting {
		return
	}
	checkFinite(t, "wake time")
	w.waiting = false
	e := w.p.eng
	if t < e.now {
		t = e.now
	}
	e.schedule(t, evResume, 0, uint64(w.p.idx))
}

// enterRun guards Run/RunAll against re-entrant calls: invoking the
// scheduler from process context (or from an event callback) would block
// on the handoff channel of the very process that is waiting for the
// scheduler — a guaranteed deadlock with the old engine, now a
// descriptive panic.
func (e *Engine) enterRun(what string) {
	if e.active != nil {
		panic(fmt.Sprintf("des: Engine.%s called from process %q: the scheduler is already running (re-entrant run would deadlock)", what, e.active.name))
	}
	if e.running {
		panic(fmt.Sprintf("des: Engine.%s called re-entrantly from an event callback", what))
	}
	e.running = true
}

// Run processes events until the queue is empty or the virtual clock
// exceeds until. It returns the final virtual time.
func (e *Engine) Run(until float64) float64 {
	e.enterRun("Run")
	defer func() { e.running = false }()
	for {
		ev, ok := e.next(until)
		if !ok {
			break
		}
		e.now = ev.at
		e.dispatch(ev)
	}
	return e.now
}

// RunAll processes events until the queue is empty.
func (e *Engine) RunAll() float64 {
	e.enterRun("RunAll")
	defer func() { e.running = false }()
	for {
		ev, ok := e.next(math.Inf(1))
		if !ok {
			break
		}
		e.now = ev.at
		e.dispatch(ev)
	}
	return e.now
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.heap) + len(e.ready) - e.rhead }

// Live returns the number of live (spawned, not finished) processes. A
// non-zero value after RunAll indicates deadlocked processes.
func (e *Engine) Live() int { return e.nproc }
