// Package des is a deterministic discrete-event simulation kernel with
// goroutine-based processes. It provides the virtual time base on which
// the network simulator (internal/simnet) and the parallel N-body
// algorithms (internal/parallel) run: simulated hosts are ordinary Go
// functions that Sleep in virtual time and exchange messages, while the
// kernel guarantees that exactly one process executes at a time and that
// events fire in (time, creation-order) sequence — so every simulation is
// reproducible bit for bit.
package des

import (
	"container/heap"
	"fmt"
)

// event is a scheduled wake-up.
type event struct {
	at  float64
	seq uint64 // tie-breaker: creation order
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine owns the virtual clock and the event queue.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap

	// procs counts live processes; yield/resume implements the
	// one-runnable-goroutine discipline.
	active *Proc         // the currently executing process, nil in the scheduler
	sched  chan struct{} // signalled when the active process yields
	nproc  int
}

// New returns an engine at virtual time 0.
func New() *Engine {
	return &Engine{sched: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn to run at absolute virtual time t (clamped to now).
// Callbacks run in the scheduler context and must not block.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run after a virtual delay d ≥ 0.
func (e *Engine) After(d float64, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// SpanObserver receives attributed virtual-time spans from SleepAs. The
// tag space is owned by the caller (internal/vtrace uses its Phase
// constants); [from, to] are absolute virtual times.
type SpanObserver interface {
	Span(tag int, from, to float64)
}

// Proc is a simulated process: a goroutine that runs only when the engine
// hands it the virtual CPU.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	done   bool
	obs    SpanObserver
}

// Observe attaches a span observer to the process (nil detaches). With no
// observer, SleepAs is exactly Sleep — the zero-overhead fast path.
func (p *Proc) Observe(o SpanObserver) { p.obs = o }

// Name returns the process name (for diagnostics).
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.eng.now }

// Spawn creates a process executing fn, scheduled to start at the current
// virtual time. fn runs in its own goroutine but never concurrently with
// other processes or the scheduler.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.nproc++
	e.After(0, func() {
		go func() {
			<-p.resume // wait for the scheduler to hand over
			fn(p)
			p.done = true
			e.nproc--
			e.active = nil
			e.sched <- struct{}{} // return control
		}()
		e.handoff(p)
	})
	return p
}

// handoff transfers the virtual CPU to p and waits for it to yield. Must
// be called from scheduler context.
func (e *Engine) handoff(p *Proc) {
	e.active = p
	p.resume <- struct{}{}
	<-e.sched
}

// yield returns control from the active process to the scheduler and
// blocks until resumed.
func (p *Proc) yield() {
	p.eng.active = nil
	p.eng.sched <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for a virtual duration d ≥ 0.
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("des: negative sleep %v", d))
	}
	e := p.eng
	e.At(e.now+d, func() { e.handoff(p) })
	p.yield()
}

// SleepAs suspends like Sleep and attributes the elapsed interval to tag
// on the attached observer — the hook the co-simulation's phase
// accounting (internal/vtrace) rides on. Without an observer it is
// exactly Sleep.
func (p *Proc) SleepAs(tag int, d float64) {
	if p.obs == nil {
		p.Sleep(d)
		return
	}
	from := p.eng.now
	p.Sleep(d)
	p.obs.Span(tag, from, p.eng.now)
}

// Wait suspends the process until wake is called with it.
type Waiter struct {
	p       *Proc
	waiting bool
}

// NewWaiter returns a parking spot for p.
func (p *Proc) NewWaiter() *Waiter { return &Waiter{p: p} }

// Park blocks the process until Wake. Calling Park while already parked is
// a programming error.
func (w *Waiter) Park() {
	if w.waiting {
		panic("des: double park")
	}
	w.waiting = true
	w.p.yield()
}

// Wake schedules the parked process to resume at virtual time t (or now,
// if t is in the past). It is a no-op if the process is not parked — the
// caller is responsible for pairing Park/Wake correctly. Must be called
// from scheduler context (event callbacks) or from another process.
func (w *Waiter) Wake(t float64) {
	if !w.waiting {
		return
	}
	w.waiting = false
	e := w.p.eng
	e.At(t, func() { e.handoff(w.p) })
}

// Run processes events until the queue is empty or the virtual clock
// exceeds until. It returns the final virtual time.
func (e *Engine) Run(until float64) float64 {
	for len(e.events) > 0 {
		ev := e.events[0]
		if ev.at > until {
			break
		}
		heap.Pop(&e.events)
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// RunAll processes events until the queue is empty.
func (e *Engine) RunAll() float64 {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// Live returns the number of live (spawned, not finished) processes. A
// non-zero value after RunAll indicates deadlocked processes.
func (e *Engine) Live() int { return e.nproc }
