// Package diag provides the on-the-fly analysis quantities the frontend
// hosts compute during production runs (the paper's Section 1: "The
// frontend processors perform all other operations, such as ... on-the-fly
// analysis"): conserved-quantity tracking, Lagrangian radii, core
// diagnostics and error norms.
package diag

import (
	"fmt"
	"math"
	"sort"

	"grape6/internal/nbody"
	"grape6/internal/vec"
)

// Energies is a snapshot of the system's mechanical state.
type Energies struct {
	Kinetic   float64
	Potential float64
	Virial    float64 // |2T/W|
}

// Total returns T + W.
func (e Energies) Total() float64 { return e.Kinetic + e.Potential }

// Measure computes the energy decomposition with softening eps (exact
// O(N²) potential; diagnostics only).
func Measure(sys *nbody.System, eps float64) Energies {
	t := sys.KineticEnergy()
	w := sys.PotentialEnergy(eps)
	v := math.Inf(1)
	if w != 0 {
		v = math.Abs(2 * t / w)
	}
	return Energies{Kinetic: t, Potential: w, Virial: v}
}

// Conservation tracks relative drifts of the conserved quantities across a
// run.
type Conservation struct {
	E0 float64
	L0 vec.V3
	P0 vec.V3
}

// NewConservation records the reference state.
func NewConservation(sys *nbody.System, eps float64) *Conservation {
	return &Conservation{
		E0: sys.TotalEnergy(eps),
		L0: sys.AngularMomentum(),
		P0: momentum(sys),
	}
}

func momentum(sys *nbody.System) vec.V3 {
	var p vec.V3
	for i := 0; i < sys.N; i++ {
		p = p.AddScaled(sys.Mass[i], sys.Vel[i])
	}
	return p
}

// Drift reports the relative energy error and the absolute angular
// momentum and momentum drifts against the reference.
func (c *Conservation) Drift(sys *nbody.System, eps float64) (dE, dL, dP float64) {
	e := sys.TotalEnergy(eps)
	if c.E0 != 0 {
		dE = math.Abs((e - c.E0) / c.E0)
	} else {
		dE = math.Abs(e)
	}
	dL = sys.AngularMomentum().Sub(c.L0).Norm()
	dP = momentum(sys).Sub(c.P0).Norm()
	return
}

// LagrangianRadii returns the radii (about the density-weighted centre)
// enclosing the given mass fractions. Fractions must be in (0, 1].
func LagrangianRadii(sys *nbody.System, fractions []float64) ([]float64, error) {
	if sys.N == 0 {
		return nil, fmt.Errorf("diag: empty system")
	}
	for _, f := range fractions {
		if f <= 0 || f > 1 {
			return nil, fmt.Errorf("diag: mass fraction %v out of (0,1]", f)
		}
	}
	c := sys.CenterOfMass()
	type mr struct {
		r float64
		m float64
	}
	rs := make([]mr, sys.N)
	var mTot float64
	for i := 0; i < sys.N; i++ {
		rs[i] = mr{r: sys.Pos[i].Dist(c), m: sys.Mass[i]}
		mTot += sys.Mass[i]
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].r < rs[j].r })

	out := make([]float64, len(fractions))
	for k, f := range fractions {
		target := f * mTot
		var acc float64
		out[k] = rs[len(rs)-1].r
		for _, e := range rs {
			acc += e.m
			if acc >= target {
				out[k] = e.r
				break
			}
		}
	}
	return out, nil
}

// CoreRadius estimates the core radius via the Casertano & Hut (1985)
// density-weighted radius with a k-th nearest neighbour density estimate
// (k = 6). O(N²); diagnostics only.
func CoreRadius(sys *nbody.System) float64 {
	if sys.N < 8 {
		return 0
	}
	const k = 6
	rho := make([]float64, sys.N)
	d2 := make([]float64, sys.N)
	for i := 0; i < sys.N; i++ {
		for j := 0; j < sys.N; j++ {
			d2[j] = sys.Pos[i].Dist2(sys.Pos[j])
		}
		sort.Float64s(d2)
		rk := math.Sqrt(d2[k]) // d2[0] is the self distance 0
		if rk == 0 {
			continue
		}
		rho[i] = sys.Mass[i] * float64(k) / (rk * rk * rk)
	}
	var num, den float64
	c := sys.CenterOfMass()
	for i := 0; i < sys.N; i++ {
		num += rho[i] * sys.Pos[i].Dist(c)
		den += rho[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// RMSRelative returns the root-mean-square relative deviation between two
// vector fields (e.g. emulated vs reference forces).
func RMSRelative(got, want []vec.V3) (float64, error) {
	if len(got) != len(want) {
		return 0, fmt.Errorf("diag: length mismatch %d vs %d", len(got), len(want))
	}
	var sum float64
	var n int
	for i := range got {
		w := want[i].Norm()
		if w == 0 {
			continue
		}
		d := got[i].Sub(want[i]).Norm() / w
		sum += d * d
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return math.Sqrt(sum / float64(n)), nil
}
