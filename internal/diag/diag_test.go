package diag

import (
	"math"
	"testing"

	"grape6/internal/model"
	"grape6/internal/nbody"
	"grape6/internal/vec"
	"grape6/internal/xrand"
)

func TestMeasurePlummer(t *testing.T) {
	sys := model.Plummer(2000, xrand.New(1))
	e := Measure(sys, 0)
	if e.Kinetic <= 0 || e.Potential >= 0 {
		t.Errorf("energies: %+v", e)
	}
	if math.Abs(e.Total()+0.25) > 0.05 {
		t.Errorf("total energy = %v, want ≈ -0.25", e.Total())
	}
	if e.Virial < 0.85 || e.Virial > 1.15 {
		t.Errorf("virial = %v", e.Virial)
	}
}

func TestConservationDriftZero(t *testing.T) {
	sys := model.Plummer(100, xrand.New(2))
	c := NewConservation(sys, 0.01)
	dE, dL, dP := c.Drift(sys, 0.01)
	if dE != 0 || dL != 0 || dP != 0 {
		t.Errorf("self drift = %v %v %v", dE, dL, dP)
	}
}

func TestConservationDetectsChange(t *testing.T) {
	sys := model.Plummer(100, xrand.New(3))
	c := NewConservation(sys, 0.01)
	sys.Vel[0] = sys.Vel[0].Add(vec.New(1, 0, 0))
	dE, dL, dP := c.Drift(sys, 0.01)
	if dE == 0 || dL == 0 || dP == 0 {
		t.Errorf("perturbation not detected: %v %v %v", dE, dL, dP)
	}
}

func TestLagrangianRadiiOrdering(t *testing.T) {
	sys := model.Plummer(4000, xrand.New(4))
	rs, err := LagrangianRadii(sys, []float64{0.1, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !(rs[0] < rs[1] && rs[1] < rs[2]) {
		t.Errorf("radii not ordered: %v", rs)
	}
	// Plummer half-mass radius ≈ 0.77 in Heggie units.
	if rs[1] < 0.6 || rs[1] > 0.95 {
		t.Errorf("half-mass radius = %v", rs[1])
	}
}

func TestLagrangianRadiiValidation(t *testing.T) {
	sys := model.Plummer(16, xrand.New(5))
	if _, err := LagrangianRadii(sys, []float64{0}); err == nil {
		t.Error("accepted zero fraction")
	}
	if _, err := LagrangianRadii(sys, []float64{1.2}); err == nil {
		t.Error("accepted >1 fraction")
	}
	if _, err := LagrangianRadii(nbody.New(0), []float64{0.5}); err == nil {
		t.Error("accepted empty system")
	}
	// Full mass: radius of the outermost particle.
	rs, err := LagrangianRadii(sys, []float64{1.0})
	if err != nil {
		t.Fatal(err)
	}
	var rmax float64
	c := sys.CenterOfMass()
	for i := 0; i < sys.N; i++ {
		if r := sys.Pos[i].Dist(c); r > rmax {
			rmax = r
		}
	}
	if math.Abs(rs[0]-rmax) > 1e-12 {
		t.Errorf("full-mass radius %v != outermost %v", rs[0], rmax)
	}
}

func TestCoreRadiusPlummer(t *testing.T) {
	sys := model.Plummer(1000, xrand.New(6))
	rc := CoreRadius(sys)
	// Plummer core radius ≈ 0.64a ≈ 0.38 in Heggie units; the CH85
	// estimator gives the same order.
	if rc < 0.05 || rc > 1.2 {
		t.Errorf("core radius = %v", rc)
	}
	if CoreRadius(nbody.New(4)) != 0 {
		t.Error("tiny system should return 0")
	}
}

func TestCoreRadiusShrinksForConcentrated(t *testing.T) {
	// A model compressed by 2x must report a smaller core radius.
	sys := model.Plummer(500, xrand.New(7))
	rc1 := CoreRadius(sys)
	for i := 0; i < sys.N; i++ {
		sys.Pos[i] = sys.Pos[i].Scale(0.5)
	}
	rc2 := CoreRadius(sys)
	if rc2 >= rc1 {
		t.Errorf("compressed core radius %v not below %v", rc2, rc1)
	}
}

func TestRMSRelative(t *testing.T) {
	a := []vec.V3{vec.New(1, 0, 0), vec.New(0, 2, 0)}
	b := []vec.V3{vec.New(1, 0, 0), vec.New(0, 2, 0)}
	rms, err := RMSRelative(a, b)
	if err != nil || rms != 0 {
		t.Errorf("identical fields rms = %v err %v", rms, err)
	}
	b[0] = vec.New(1.1, 0, 0) // 10% error on one of two
	rms, err = RMSRelative(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// got[0]=(1,0,0) vs want[0]=(1.1,0,0): relative error 0.1/1.1,
	// averaged over two entries.
	want := (0.1 / 1.1) / math.Sqrt(2)
	if math.Abs(rms-want) > 1e-9 {
		t.Errorf("rms = %v, want %v", rms, want)
	}
	if _, err := RMSRelative(a, b[:1]); err == nil {
		t.Error("accepted length mismatch")
	}
}

func TestRMSRelativeSkipsZeros(t *testing.T) {
	a := []vec.V3{vec.Zero, vec.New(1, 0, 0)}
	b := []vec.V3{vec.Zero, vec.New(1, 0, 0)}
	rms, err := RMSRelative(b, a)
	if err != nil || rms != 0 {
		t.Errorf("rms = %v err = %v", rms, err)
	}
}
