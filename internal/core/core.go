// Package core is the library facade: a Simulator that integrates an
// N-body system with the Hermite individual-block-timestep scheme on
// either the float64 reference backend or the emulated GRAPE-6 hardware,
// with checkpointing and conservation diagnostics. The examples under
// examples/ and the cmd/ binaries are thin clients of this package.
package core

import (
	"fmt"
	"io"

	"grape6/internal/board"
	"grape6/internal/diag"
	"grape6/internal/gbackend"
	"grape6/internal/hermite"
	"grape6/internal/nbody"
	"grape6/internal/snapshot"
	"grape6/internal/units"
)

// BackendKind selects the force engine.
type BackendKind int

const (
	// Direct is the float64 reference ("software GRAPE").
	Direct BackendKind = iota
	// Grape is the emulated GRAPE-6 hardware: fixed-point positions,
	// short-mantissa pipelines, block-floating-point summation.
	Grape
)

// String implements fmt.Stringer.
func (k BackendKind) String() string {
	switch k {
	case Direct:
		return "direct"
	case Grape:
		return "grape"
	default:
		return fmt.Sprintf("BackendKind(%d)", int(k))
	}
}

// Config parameterises a Simulator.
type Config struct {
	Backend BackendKind

	// Eta and EtaS are the Aarseth timestep parameters; zero values take
	// the defaults (0.02 / 0.01).
	Eta  float64
	EtaS float64

	// Eps is the Plummer softening length.
	Eps float64

	// Boards configures the emulated hardware attachment (Grape backend
	// only); zero means the production 4-board single-host attachment.
	// Small functional tests may also shrink ChipsPerModule etc. through
	// HW.
	Boards int

	// HW overrides the full hardware configuration; nil uses the
	// production layout with the Boards count above.
	HW *board.Config
}

// Simulator integrates one system.
type Simulator struct {
	cfg Config
	sys *nbody.System
	it  *hermite.Integrator
	gb  *gbackend.Backend // nil for Direct
}

// NewSimulator prepares an integration of sys (which the simulator owns
// from this point on).
func NewSimulator(sys *nbody.System, cfg Config) (*Simulator, error) {
	p := hermite.DefaultParams(cfg.Eps)
	if cfg.Eta > 0 {
		p.Eta = cfg.Eta
	}
	if cfg.EtaS > 0 {
		p.EtaS = cfg.EtaS
	}

	var b hermite.Backend
	var gb *gbackend.Backend
	switch cfg.Backend {
	case Direct:
		b = hermite.NewDirectBackend()
	case Grape:
		hw := board.Default
		if cfg.Boards > 0 {
			hw.Boards = cfg.Boards
		}
		if cfg.HW != nil {
			hw = *cfg.HW
		}
		gb = gbackend.New(board.New(hw))
		b = gb
	default:
		return nil, fmt.Errorf("core: unknown backend %v", cfg.Backend)
	}

	it, err := hermite.New(sys, b, p)
	if err != nil {
		return nil, err
	}
	return &Simulator{cfg: cfg, sys: sys, it: it, gb: gb}, nil
}

// System returns the simulated system (live view).
func (s *Simulator) System() *nbody.System { return s.sys }

// Time returns the current system time.
func (s *Simulator) Time() float64 { return s.it.T }

// Eps returns the softening length in effect — for a restored run, the
// value recovered from the checkpoint header. Diagnostics (energy,
// virial) must use this, not the Config literal a caller happened to
// pass.
func (s *Simulator) Eps() float64 { return s.cfg.Eps }

// Steps returns the number of individual particle steps taken.
func (s *Simulator) Steps() int64 { return s.it.Steps }

// Blocks returns the number of block steps taken.
func (s *Simulator) Blocks() int64 { return s.it.Blocks }

// Interactions returns the number of pairwise interactions evaluated.
func (s *Simulator) Interactions() int64 { return s.it.Interactions }

// Flops returns the total operation count under the paper's 57-flops
// convention.
func (s *Simulator) Flops() float64 {
	return float64(s.it.Interactions) * units.FlopsPerInteraction
}

// HardwareCycles returns the emulated hardware's busy cycles (zero for the
// Direct backend).
func (s *Simulator) HardwareCycles() int64 {
	if s.gb == nil {
		return 0
	}
	return s.gb.HWCycles
}

// HardwareStats summarises the emulated hardware's protocol events.
type HardwareStats struct {
	Cycles      int64 // pipeline busy cycles
	Retries     int64 // block-exponent overflow retries (Section 3.4)
	RangeClamps int64 // escaper coordinates clamped to the fixed-point range
}

// HardwareStats returns the protocol counters (zeros for Direct).
func (s *Simulator) HardwareStats() HardwareStats {
	if s.gb == nil {
		return HardwareStats{}
	}
	return HardwareStats{
		Cycles:      s.gb.HWCycles,
		Retries:     s.gb.Retries,
		RangeClamps: s.gb.RangeClamps,
	}
}

// OnBlock registers a callback invoked after every block step.
func (s *Simulator) OnBlock(fn func(hermite.BlockStat)) { s.it.Trace = fn }

// Step advances one block step.
func (s *Simulator) Step() hermite.BlockStat { return s.it.Step() }

// Run advances until the next block would exceed t.
func (s *Simulator) Run(t float64) { s.it.Run(t) }

// Energy returns the total energy at the current time (exact potential).
func (s *Simulator) Energy() float64 { return s.it.Energy() }

// Energies returns the synchronized energy decomposition.
func (s *Simulator) Energies() diag.Energies {
	snap := s.it.Synchronize(s.it.T)
	return diag.Measure(snap, s.cfg.Eps)
}

// Synchronized returns a copy of the system with every particle predicted
// to the current system time.
func (s *Simulator) Synchronized() *nbody.System { return s.it.Synchronize(s.it.T) }

// Checkpoint writes a restartable snapshot. The state is synchronized to
// the current system time first (all particles predicted to a common
// time), so that a restart can re-derive forces and timesteps cleanly.
func (s *Simulator) Checkpoint(w io.Writer) error {
	snap := s.it.Synchronize(s.it.T)
	h := snapshot.Header{
		N:    int64(snap.N),
		Time: s.it.T,
		Eps:  s.cfg.Eps,
		Step: s.it.Steps,
	}
	return snapshot.Write(w, h, snap)
}

// Restore reads a checkpoint and constructs a simulator continuing from
// it. The restart re-initialises forces and timesteps at the checkpoint
// time (the integration restarts cold, as a real restart does).
func Restore(r io.Reader, cfg Config) (*Simulator, error) {
	h, sys, err := snapshot.Read(r)
	if err != nil {
		return nil, err
	}
	if cfg.Eps == 0 {
		cfg.Eps = h.Eps
	}
	sim, err := NewSimulator(sys, cfg)
	if err != nil {
		return nil, err
	}
	sim.it.Steps = h.Step
	return sim, nil
}
