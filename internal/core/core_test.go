package core

import (
	"bytes"
	"math"
	"testing"

	"grape6/internal/board"
	"grape6/internal/diag"
	"grape6/internal/hermite"
	"grape6/internal/model"
	"grape6/internal/xrand"
)

func tinyHW() *board.Config {
	hw := board.Default
	hw.ChipsPerModule = 2
	hw.ModulesPerBoard = 2
	hw.Boards = 1
	return &hw
}

func TestBackendKindString(t *testing.T) {
	if Direct.String() != "direct" || Grape.String() != "grape" {
		t.Error("backend names")
	}
	if BackendKind(9).String() == "" {
		t.Error("unknown kind should still format")
	}
}

func TestNewSimulatorRejectsUnknownBackend(t *testing.T) {
	sys := model.Plummer(16, xrand.New(1))
	if _, err := NewSimulator(sys, Config{Backend: BackendKind(7)}); err == nil {
		t.Error("accepted unknown backend")
	}
}

func TestDirectRun(t *testing.T) {
	sys := model.Plummer(64, xrand.New(2))
	sim, err := NewSimulator(sys, Config{Backend: Direct, Eps: 1.0 / 64})
	if err != nil {
		t.Fatal(err)
	}
	e0 := sim.Energy()
	sim.Run(0.25)
	if sim.Time() <= 0 || sim.Steps() == 0 || sim.Blocks() == 0 {
		t.Error("no progress recorded")
	}
	if rel := math.Abs((sim.Energy() - e0) / e0); rel > 1e-4 {
		t.Errorf("energy error %v", rel)
	}
	if sim.Interactions() == 0 || sim.Flops() != 57*float64(sim.Interactions()) {
		t.Error("flop accounting broken")
	}
	if sim.HardwareCycles() != 0 {
		t.Error("direct backend reported hardware cycles")
	}
}

func TestGrapeRun(t *testing.T) {
	sys := model.Plummer(48, xrand.New(3))
	sim, err := NewSimulator(sys, Config{Backend: Grape, Eps: 1.0 / 64, HW: tinyHW()})
	if err != nil {
		t.Fatal(err)
	}
	e0 := sim.Energy()
	sim.Run(0.125)
	if rel := math.Abs((sim.Energy() - e0) / e0); rel > 1e-4 {
		t.Errorf("energy error on hardware %v", rel)
	}
	if sim.HardwareCycles() == 0 {
		t.Error("no hardware cycles recorded")
	}
}

func TestOnBlockCallback(t *testing.T) {
	sys := model.Plummer(32, xrand.New(4))
	sim, err := NewSimulator(sys, Config{Backend: Direct, Eps: 1.0 / 64})
	if err != nil {
		t.Fatal(err)
	}
	var blocks []hermite.BlockStat
	sim.OnBlock(func(b hermite.BlockStat) { blocks = append(blocks, b) })
	sim.Run(0.0625)
	if int64(len(blocks)) != sim.Blocks() {
		t.Errorf("callback count %d != blocks %d", len(blocks), sim.Blocks())
	}
}

func TestEnergiesAndSynchronized(t *testing.T) {
	sys := model.Plummer(64, xrand.New(5))
	sim, err := NewSimulator(sys, Config{Backend: Direct, Eps: 1.0 / 64})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(0.125)
	e := sim.Energies()
	if e.Kinetic <= 0 || e.Potential >= 0 {
		t.Errorf("energies %+v", e)
	}
	snap := sim.Synchronized()
	for i := 0; i < snap.N; i++ {
		if snap.Time[i] != sim.Time() {
			t.Fatalf("particle %d not synchronized", i)
		}
	}
	// Synchronization must not disturb the live system.
	if sys.Time[0] == sim.Time() && sys.Time[1] == sim.Time() && sys.Time[2] == sim.Time() {
		// possible but unlikely for all; check via Step values instead
		_ = snap
	}
}

func TestCheckpointRestore(t *testing.T) {
	sys := model.Plummer(48, xrand.New(6))
	cfg := Config{Backend: Direct, Eps: 1.0 / 64}
	sim, err := NewSimulator(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(0.125)
	tCheck := sim.Time()
	stepsCheck := sim.Steps()
	e1 := sim.Energy()

	var buf bytes.Buffer
	if err := sim.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	sim2, err := Restore(&buf, Config{Backend: Direct})
	if err != nil {
		t.Fatal(err)
	}
	if sim2.Time() != tCheck {
		t.Errorf("restored time %v != %v", sim2.Time(), tCheck)
	}
	if sim2.Steps() != stepsCheck {
		t.Errorf("restored steps %d != %d", sim2.Steps(), stepsCheck)
	}
	// Energy continuity through the restart.
	if rel := math.Abs((sim2.Energy() - e1) / e1); rel > 1e-8 {
		t.Errorf("restart energy jump %v", rel)
	}
	// And it keeps running conservatively.
	sim2.Run(tCheck + 0.0625)
	if rel := math.Abs((sim2.Energy() - e1) / e1); rel > 1e-4 {
		t.Errorf("post-restart energy error %v", rel)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := Restore(bytes.NewReader([]byte("junk")), Config{}); err == nil {
		t.Error("restored from garbage")
	}
}

func TestStepAdvances(t *testing.T) {
	sys := model.Plummer(32, xrand.New(7))
	sim, err := NewSimulator(sys, Config{Backend: Direct, Eps: 1.0 / 64})
	if err != nil {
		t.Fatal(err)
	}
	b := sim.Step()
	if b.Size < 1 {
		t.Errorf("block size %d", b.Size)
	}
	if sim.Blocks() != 1 {
		t.Errorf("blocks = %d", sim.Blocks())
	}
}

func TestHardwareStats(t *testing.T) {
	sys := model.Plummer(32, xrand.New(15))
	sim, err := NewSimulator(sys, Config{Backend: Grape, Eps: 1.0 / 64, HW: tinyHW()})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(0.0625)
	st := sim.HardwareStats()
	if st.Cycles == 0 {
		t.Error("no cycles in stats")
	}
	if st.RangeClamps != 0 {
		t.Errorf("unexpected clamps: %d", st.RangeClamps)
	}
	// Direct backend reports zeros.
	sim2, err := NewSimulator(model.Plummer(8, xrand.New(1)), Config{Backend: Direct, Eps: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if sim2.HardwareStats() != (HardwareStats{}) {
		t.Error("direct backend reported hardware stats")
	}
}

// TestRestoreEpsDiagnostics pins the restore-path softening contract:
// the restored simulator exposes the checkpoint header's eps, and
// conservation diagnostics computed with it match the fresh run's at
// the checkpoint time exactly. The grape6sim CLI once recomputed its
// post-restore diagnostics with a zero local eps — the third check
// shows that mistake is observable (the softened potential differs),
// so any regression fails loudly.
func TestRestoreEpsDiagnostics(t *testing.T) {
	const eps = 1.0 / 64
	sys := model.Plummer(64, xrand.New(9))
	sim, err := NewSimulator(sys, Config{Backend: Direct, Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(0.125)

	var buf bytes.Buffer
	if err := sim.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(&buf, Config{Backend: Direct})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Eps() != eps {
		t.Fatalf("restored eps = %v, want %v", restored.Eps(), eps)
	}

	fresh := diag.Measure(sim.Synchronized(), sim.Eps())
	again := diag.Measure(restored.Synchronized(), restored.Eps())
	if fresh.Total() != again.Total() || fresh.Virial != again.Virial {
		t.Errorf("restored diagnostics diverge: fresh E=%v virial=%v, restored E=%v virial=%v",
			fresh.Total(), fresh.Virial, again.Total(), again.Virial)
	}

	// The pre-fix failure mode: measuring with eps=0 instead of the
	// header value visibly changes the energy.
	bad := diag.Measure(restored.Synchronized(), 0)
	if bad.Total() == again.Total() {
		t.Error("eps=0 diagnostics indistinguishable from the softened ones; regression test has no teeth")
	}
}
