package parallel

import (
	"testing"

	"grape6/internal/simnet"
)

func TestHybridRejectsBadShapes(t *testing.T) {
	sys := plummer(32, 1)
	if _, err := RunHybrid(sys, 0.01, 3, testConfig(12)); err == nil {
		t.Error("accepted 3 clusters")
	}
	if _, err := RunHybrid(plummer(32, 1), 0.01, 2, testConfig(6)); err == nil {
		t.Error("accepted 3 hosts per cluster")
	}
	if _, err := RunHybrid(plummer(32, 1), 0.01, 2, testConfig(7)); err == nil {
		t.Error("accepted non-divisible host count")
	}
}

func TestHybridSingleClusterMatchesGrid(t *testing.T) {
	// With one cluster the hybrid IS the grid algorithm; the partial-sum
	// order is identical, so results must be bit-identical.
	n := 48
	until := 0.0625
	g, err := RunGrid(plummer(n, 41), until, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	h, err := RunHybrid(plummer(n, 41), until, 1, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if g.Sys.Pos[i] != h.Sys.Pos[i] || g.Sys.Vel[i] != h.Sys.Vel[i] {
			t.Fatalf("particle %d differs between grid and 1-cluster hybrid", i)
		}
	}
	if g.Steps != h.Steps {
		t.Errorf("steps differ: %d vs %d", g.Steps, h.Steps)
	}
}

func TestHybridMatchesReference(t *testing.T) {
	// 2 clusters × 4 hosts: trajectories close to the single-host run.
	n := 64
	until := 0.0625
	ref := singleHostReference(t, n, 43, until)
	res, err := RunHybrid(plummer(n, 43), until, 2, testConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDeviation(ref, res.Sys); d > 1e-6 {
		t.Errorf("hybrid deviates from reference by %v", d)
	}
}

func TestHybridClusterCountInvariance(t *testing.T) {
	// Different cluster counts must agree closely (not bit-exact: the
	// cluster hash changes which diagonal sums which partial set, but the
	// partial summation order within a cluster is fixed).
	n := 48
	until := 0.0625
	h1, err := RunHybrid(plummer(n, 45), until, 1, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := RunHybrid(plummer(n, 45), until, 2, testConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDeviation(h1.Sys, h2.Sys); d > 1e-7 {
		t.Errorf("1-cluster vs 2-cluster deviation %v", d)
	}
}

func TestHybridMultiClusterIsSlowerAtSmallN(t *testing.T) {
	// The paper's Figure 17/18 finding at message level: the 8-host
	// 2-cluster machine is SLOWER than the 4-host single cluster at small
	// N because of the inter-cluster update broadcasts.
	n := 64
	until := 0.0625
	h4, err := RunHybrid(plummer(n, 47), until, 1, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	h8, err := RunHybrid(plummer(n, 47), until, 2, testConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if h8.VirtualTime <= h4.VirtualTime {
		t.Errorf("2-cluster (%.4gs) not slower than 1-cluster (%.4gs) at N=%d",
			h8.VirtualTime, h4.VirtualTime, n)
	}
	// And it moves strictly more bytes.
	if h8.Bytes <= h4.Bytes {
		t.Errorf("2-cluster bytes %d not above 1-cluster %d", h8.Bytes, h4.Bytes)
	}
}

func TestHybridTunedNICHelps(t *testing.T) {
	cfgOld := testConfig(8)
	cfgNew := testConfig(8)
	cfgNew.NIC = simnet.Intel82540EM
	ro, err := RunHybrid(plummer(64, 49), 0.03125, 2, cfgOld)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := RunHybrid(plummer(64, 49), 0.03125, 2, cfgNew)
	if err != nil {
		t.Fatal(err)
	}
	if rn.VirtualTime >= ro.VirtualTime {
		t.Errorf("tuned NIC not faster on hybrid: %v vs %v", rn.VirtualTime, ro.VirtualTime)
	}
}

func TestHybridEnergyConservation(t *testing.T) {
	sys := plummer(64, 51)
	e0 := sys.TotalEnergy(1.0 / 64)
	res, err := RunHybrid(sys.Clone(), 0.125, 2, testConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	snap := synchronizeAll(res.Sys)
	e1 := snap.TotalEnergy(1.0 / 64)
	if rel := abs((e1 - e0) / e0); rel > 1e-4 {
		t.Errorf("hybrid energy error = %v", rel)
	}
}

func TestHybridDeterministic(t *testing.T) {
	run := func() *Result {
		r, err := RunHybrid(plummer(48, 53), 0.0625, 2, testConfig(8))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.VirtualTime != b.VirtualTime || a.Messages != b.Messages {
		t.Error("non-deterministic hybrid co-simulation")
	}
	for i := 0; i < a.Sys.N; i++ {
		if a.Sys.Pos[i] != b.Sys.Pos[i] {
			t.Fatalf("non-deterministic particle %d", i)
		}
	}
}
