package parallel

import (
	"fmt"
	"math"

	"grape6/internal/des"
	"grape6/internal/direct"
	"grape6/internal/hermite"
	"grape6/internal/nbody"
	"grape6/internal/simnet"
	"grape6/internal/vec"
	"grape6/internal/vtrace"
)

// pforce is a partial force aligned with the row's block order.
type pforce struct {
	acc, jerk vec.V3
	pot       float64
}

// pforceBytes is the wire size of a partial force entry.
const pforceBytes = 56

// RunGrid executes the two-dimensional algorithm of Makino (2002)
// (Section 3.2): r² hosts form an r×r grid; host (i,j) holds copies of
// particle subsets i and j. Each block step, row i predicts the block
// members of subset i, every host (i,j) computes their partial forces from
// subset j, the partials are summed on the diagonal host (i,i), which
// corrects the particles and broadcasts the updates along its row and
// column. Communication per host is O(N/r) — the square-root scaling that
// motivated both the host grid and the GRAPE hardware network.
//
// cfg.Hosts must be a perfect square r² with power-of-two r².
func RunGrid(sys *nbody.System, until float64, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := int(math.Round(math.Sqrt(float64(cfg.Hosts))))
	if r*r != cfg.Hosts || !isPow2(cfg.Hosts) {
		return nil, fmt.Errorf("parallel: grid needs a power-of-two square host count, got %d", cfg.Hosts)
	}
	if sys.N < r {
		return nil, fmt.Errorf("parallel: %d particles cannot be split over %d subsets", sys.N, r)
	}
	if err := initForces(sys, cfg); err != nil {
		return nil, err
	}

	// Subset s = contiguous slice of ids.
	subsetIdx := func(s int) []int {
		lo := s * sys.N / r
		hi := (s + 1) * sys.N / r
		out := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out
	}

	eng := des.New()
	net := simnet.New(eng, cfg.NIC, cfg.Hosts)
	res := &Result{}
	set := newTraceSet(cfg, net)

	states := make([]*gridState, cfg.Hosts)
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			st := &gridState{}
			st.row = sys.Subset(subsetIdx(i))
			if i == j {
				st.col = st.row
			} else {
				st.col = sys.Subset(subsetIdx(j))
			}
			st.rowIdx = indexByID(st.row)
			st.colIdx = indexByID(st.col)
			st.backend = cfg.backendFor(i*r + j)
			st.backend.Load(st.col)
			states[i*r+j] = st
		}
	}

	for rank := 0; rank < cfg.Hosts; rank++ {
		rank := rank
		eng.Spawn(fmt.Sprintf("grid%d", rank), func(p *des.Proc) {
			rec := attachRecorder(p, set, rank)
			gridHost(p, rank, r, cfg, net, states[rank], until, res, rec)
		})
	}
	eng.RunAll()
	if eng.Live() != 0 {
		return nil, fmt.Errorf("parallel: %d grid hosts deadlocked", eng.Live())
	}

	// Diagonal hosts hold the corrected subsets.
	out := nbody.New(sys.N)
	for i := 0; i < r; i++ {
		part := states[i*r+i].row
		for k := 0; k < part.N; k++ {
			id := part.ID[k]
			out.ID[id] = id
			out.Mass[id] = part.Mass[k]
			out.Pos[id] = part.Pos[k]
			out.Vel[id] = part.Vel[k]
			out.Acc[id] = part.Acc[k]
			out.Jerk[id] = part.Jerk[k]
			out.Snap[id] = part.Snap[k]
			out.Crack[id] = part.Crack[k]
			out.Pot[id] = part.Pot[k]
			out.Time[id] = part.Time[k]
			out.Step[id] = part.Step[k]
		}
	}
	res.Sys = out
	res.VirtualTime = eng.Now()
	res.Messages = net.MessagesSent
	res.Bytes = net.BytesSent
	if err := finishTrace(set, res, eng.Now()); err != nil {
		return nil, err
	}
	return res, nil
}

// gridState is one grid host's storage (shared with the hybrid driver).
type gridState struct {
	row     *nbody.System // copy of subset i
	col     *nbody.System // copy of subset j (same object on the diagonal)
	rowIdx  idIndex
	colIdx  idIndex
	backend hermite.Backend // loaded with the column subset
	fbuf    []direct.Force  // force-result buffer reused across blocks

	// Per-round scratch reused across block steps. Only buffers that are
	// NEVER shipped as message payloads live here — payload slices (ups,
	// partial) must stay freshly allocated, since simnet delivers them by
	// reference at a later virtual time.
	block   []int
	mine    []int // hybrid: this cluster's share of the block
	ids     []int
	xs, vs  []vec.V3
	parts   [][]pforce
	total   []direct.Force
	changed []int
}

// Per-round message tags.
const (
	tagMin     = 2048 // allreduce of the next block time
	tagPartial = 100  // + sender column j: partial forces to the diagonal
	tagRowUpd  = 200  // updates broadcast along the row
	tagColUpd  = 300  // updates broadcast along the column
	tagStride  = 4096
)

func gridHost(p *des.Proc, rank, r int, cfg Config, net *simnet.Network,
	st *gridState, until float64, res *Result, rec *vtrace.Recorder) {

	m := cfg.Machine
	i, j := rank/r, rank%r
	diag := i*r + i
	round := 0
	for {
		t := allreduceMin(p, net, rank, r*r, round*tagStride+tagMin, st.row.MinTime(), rec)
		if t > until {
			break
		}
		st.block = blockAppend(st.block[:0], st.row, t)
		block := st.block // identical across row i

		// Predict the block and compute partial forces from subset j.
		partial := make([]pforce, len(block))
		if len(block) > 0 {
			st.ids, st.xs, st.vs = st.ids[:0], st.xs[:0], st.vs[:0]
			for _, ix := range block {
				st.ids = append(st.ids, st.row.ID[ix])
				dt := t - st.row.Time[ix]
				xp, vp := hermite.Predict(st.row.Pos[ix], st.row.Vel[ix],
					st.row.Acc[ix], st.row.Jerk[ix], st.row.Snap[ix], dt)
				st.xs = append(st.xs, xp)
				st.vs = append(st.vs, vp)
			}
			fs := evalForces(&st.fbuf, st.backend, t, st.ids, st.xs, st.vs, cfg.Params.Eps)
			for k := range block {
				partial[k] = pforce{acc: fs[k].Acc, jerk: fs[k].Jerk, pot: fs[k].Pot}
			}
			p.SleepAs(int(vtrace.Grape), m.GrapeTimeHost(len(block), st.col.N))
			p.SleepAs(int(vtrace.CommSend), m.LinkTime(len(block)))
		}

		var ups []update
		if rank == diag {
			// Gather partials from the row (including our own), sum in
			// fixed column order for determinism.
			if st.parts == nil {
				st.parts = make([][]pforce, r)
			}
			parts := st.parts
			parts[j] = partial
			for jj := 0; jj < r; jj++ {
				if jj == j {
					continue
				}
				msg := net.Recv(p, rank, round*tagStride+tagPartial+jj)
				parts[jj] = msg.Payload.([]pforce)
			}
			st.total = st.total[:0]
			for k := range block {
				var f direct.Force
				f.NN = -1
				for jj := 0; jj < r; jj++ {
					if len(parts[jj]) != len(block) {
						panic("parallel: grid partial length mismatch")
					}
					f.Acc = f.Acc.Add(parts[jj][k].acc)
					f.Jerk = f.Jerk.Add(parts[jj][k].jerk)
					f.Pot += parts[jj][k].pot
				}
				st.total = append(st.total, f)
			}
			total := st.total

			// Correct on the diagonal host.
			ups = make([]update, 0, len(block))
			for k, ix := range block {
				ups = append(ups, correctParticle(st.row, ix, total[k], t, cfg.Params))
			}
			if len(block) > 0 {
				p.SleepAs(int(vtrace.HostWork), m.HostWork(len(block), st.row.N*r))
				st.backend.Update(st.col, block) // col == row on the diagonal
			}

			// Broadcast updates along the row and the column.
			for k := 0; k < r; k++ {
				if k == i {
					continue
				}
				net.Send(rank, i*r+k, round*tagStride+tagRowUpd, len(ups)*updateBytes, ups)
				net.Send(rank, k*r+i, round*tagStride+tagColUpd, len(ups)*updateBytes, ups)
			}
			for jj := range parts {
				parts[jj] = nil // unpin the received partials until next round
			}

			res.Steps += int64(len(block))
			// Diagonal hosts correct disjoint subsets: their sizes sum to
			// the global block.
			res.noteBlock(round, len(block))
			if rank == 0 {
				res.Blocks++
			}
		} else {
			// Send partials to the diagonal of our row.
			net.Send(rank, diag, round*tagStride+tagPartial+j, len(partial)*pforceBytes, partial)

			// Receive subset-i updates from our row's diagonal and apply
			// to the row copy.
			rowMsg := net.Recv(p, rank, round*tagStride+tagRowUpd)
			for _, u := range rowMsg.Payload.([]update) {
				applyUpdate(st.row, st.rowIdx, u)
			}

			// Receive subset-j updates from our column's diagonal and
			// apply to the column copy feeding the force backend.
			colMsg := net.Recv(p, rank, round*tagStride+tagColUpd)
			colUps := colMsg.Payload.([]update)
			changed := st.changed[:0]
			for _, u := range colUps {
				applyUpdate(st.col, st.colIdx, u)
				ci, _ := st.colIdx.slot(u.id)
				changed = append(changed, ci)
			}
			st.changed = changed
			if len(changed) > 0 {
				st.backend.Update(st.col, changed)
			}
			if rank == 0 {
				res.Blocks++
			}
		}
		round++
	}
}
