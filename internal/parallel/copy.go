package parallel

import (
	"fmt"

	"grape6/internal/des"
	"grape6/internal/direct"
	"grape6/internal/hermite"
	"grape6/internal/nbody"
	"grape6/internal/simnet"
	"grape6/internal/vec"
	"grape6/internal/vtrace"
)

// RunCopy executes the "copy" algorithm (Sections 3.2 and 4.3): each host
// holds the complete system, integrates the block particles whose id
// hashes to it, and allgathers the updated particles after every block
// step. The amount of communication per block is independent of the host
// count — which is exactly why its synchronization overhead dominates at
// small N (Figure 18).
//
// The host count must be a power of two (the machine's configurations are
// 1..16).
func RunCopy(sys *nbody.System, until float64, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !isPow2(cfg.Hosts) {
		return nil, fmt.Errorf("parallel: copy algorithm needs a power-of-two host count, got %d", cfg.Hosts)
	}
	if err := initForces(sys, cfg); err != nil {
		return nil, err
	}

	eng := des.New()
	net := simnet.New(eng, cfg.NIC, cfg.Hosts)
	res := &Result{}
	set := newTraceSet(cfg, net)

	// Per-host replicas and backends.
	replicas := make([]*nbody.System, cfg.Hosts)
	backends := make([]hermite.Backend, cfg.Hosts)
	indices := make([]idIndex, cfg.Hosts)
	for h := 0; h < cfg.Hosts; h++ {
		replicas[h] = sys.Clone()
		backends[h] = cfg.backendFor(h)
		backends[h].Load(replicas[h])
		indices[h] = indexByID(replicas[h])
	}

	for h := 0; h < cfg.Hosts; h++ {
		h := h
		eng.Spawn(fmt.Sprintf("host%d", h), func(p *des.Proc) {
			rec := attachRecorder(p, set, h)
			copyHost(p, h, cfg, net, replicas[h], backends[h], indices[h], until, res, rec)
		})
	}
	eng.RunAll()
	if eng.Live() != 0 {
		return nil, fmt.Errorf("parallel: %d hosts deadlocked", eng.Live())
	}

	res.Sys = replicas[0]
	res.VirtualTime = eng.Now()
	res.Messages = net.MessagesSent
	res.Bytes = net.BytesSent
	if err := finishTrace(set, res, eng.Now()); err != nil {
		return nil, err
	}
	return res, nil
}

func copyHost(p *des.Proc, h int, cfg Config, net *simnet.Network,
	S *nbody.System, backend hermite.Backend, idx idIndex,
	until float64, res *Result, rec *vtrace.Recorder) {

	m := cfg.Machine
	round := 0
	var fbuf []direct.Force
	// Per-round scratch reused across the run. ups is reusable too: only
	// private copies of it travel through the network (gatherUpdates ships
	// a fresh copy per exchange round).
	var block, mine, ids, changed []int
	var xp, vp []vec.V3
	var ups []update
	for {
		t := S.MinTime()
		if t > until {
			break
		}
		block = blockAppend(block[:0], S, t)

		// This host's share of the block.
		mine = mine[:0]
		for _, i := range block {
			if S.ID[i]%cfg.Hosts == h {
				mine = append(mine, i)
			}
		}

		ups = ups[:0]
		if len(mine) > 0 {
			ids, xp, vp = ids[:0], xp[:0], vp[:0]
			for _, i := range mine {
				ids = append(ids, S.ID[i])
				dt := t - S.Time[i]
				x1, v1 := hermite.Predict(S.Pos[i], S.Vel[i], S.Acc[i], S.Jerk[i], S.Snap[i], dt)
				xp = append(xp, x1)
				vp = append(vp, v1)
			}
			fs := evalForces(&fbuf, backend, t, ids, xp, vp, cfg.Params.Eps)

			// Charge the modelled compute time, attributed per phase:
			// frontend work, GRAPE pipelines over the full stored system,
			// and the DMA link.
			p.SleepAs(int(vtrace.HostWork), m.HostWork(len(mine), S.N))
			p.SleepAs(int(vtrace.Grape), m.GrapeTimeHost(len(mine), S.N))
			p.SleepAs(int(vtrace.CommSend), m.LinkTime(len(mine)))

			for k, i := range mine {
				ups = append(ups, correctParticle(S, i, fs[k], t, cfg.Params))
			}
		}

		// Exchange updated particles: recursive-doubling allgather, the
		// "butterfly message exchange" of Section 4.4.
		all := gatherUpdates(p, net, h, cfg.Hosts, round*4096, ups)
		sortByID(all)
		for _, u := range all {
			if u.id%cfg.Hosts != h { // own particles already applied
				applyUpdate(S, idx, u)
			}
		}
		// Refresh the backend for every updated particle.
		changed = changed[:0]
		for _, u := range all {
			ci, _ := idx.slot(u.id)
			changed = append(changed, ci)
		}
		backend.Update(S, changed)

		if h == 0 {
			res.Blocks++
			res.Steps += int64(len(block))
			res.noteBlock(round, len(block))
		}
		round++
	}
}
