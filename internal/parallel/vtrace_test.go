package parallel

import (
	"math"
	"reflect"
	"testing"

	"grape6/internal/des"
	"grape6/internal/perfmodel"
	"grape6/internal/simnet"
	"grape6/internal/timing"
	"grape6/internal/vtrace"
)

func recordConfig(hosts int) Config {
	cfg := testConfig(hosts)
	cfg.Record = true
	return cfg
}

// runAlgo dispatches by name so the invariant tests sweep all four
// drivers.
func runAlgo(t *testing.T, algo string, n int, seed uint64, until float64, clusters int, cfg Config) *Result {
	t.Helper()
	sys := plummer(n, seed)
	var res *Result
	var err error
	switch algo {
	case "copy":
		res, err = RunCopy(sys, until, cfg)
	case "ring":
		res, err = RunRing(sys, until, cfg)
	case "grid":
		res, err = RunGrid(sys, until, cfg)
	case "hybrid":
		res, err = RunHybrid(sys, until, clusters, cfg)
	default:
		t.Fatalf("unknown algo %q", algo)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The tentpole invariant: with recording on, every rank's phase spans tile
// [0, VirtualTime] and the phase totals sum to VirtualTime EXACTLY.
func TestBreakdownTilesVirtualTime(t *testing.T) {
	cases := []struct {
		algo            string
		hosts, clusters int
	}{
		{"copy", 1, 1}, {"copy", 4, 1},
		{"ring", 2, 1}, {"ring", 4, 1},
		{"grid", 4, 1},
		{"hybrid", 8, 2},
	}
	for _, tc := range cases {
		res := runAlgo(t, tc.algo, 96, 7, 0.03125, tc.clusters, recordConfig(tc.hosts))
		if res.Breakdown == nil || res.Trace == nil {
			t.Fatalf("%s/%d: Record set but no breakdown/trace", tc.algo, tc.hosts)
		}
		if len(res.Breakdown.Ranks) != tc.hosts {
			t.Fatalf("%s/%d: %d ranks in breakdown", tc.algo, tc.hosts, len(res.Breakdown.Ranks))
		}
		if res.Breakdown.End != res.VirtualTime {
			t.Errorf("%s/%d: breakdown end %v != virtual time %v",
				tc.algo, tc.hosts, res.Breakdown.End, res.VirtualTime)
		}
		for rank, totals := range res.Breakdown.Ranks {
			if got := totals.Sum(); got != res.VirtualTime {
				t.Errorf("%s/%d rank %d: phase sum %v != virtual time %v (diff %g)",
					tc.algo, tc.hosts, rank, got, res.VirtualTime, got-res.VirtualTime)
			}
		}
		// The span chains re-verify on demand.
		if err := res.Trace.Check(res.VirtualTime); err != nil {
			t.Errorf("%s/%d: %v", tc.algo, tc.hosts, err)
		}
		// The observer's traffic matrix must agree with the network's
		// global counters.
		var msgs int64
		for from := 0; from < tc.hosts; from++ {
			for to := 0; to < tc.hosts; to++ {
				msgs += res.Trace.Messages(from, to)
			}
		}
		if msgs != res.Messages {
			t.Errorf("%s/%d: matrix total %d != counter %d", tc.algo, tc.hosts, msgs, res.Messages)
		}
	}
}

// Recording must be observation only: the integration arithmetic and the
// virtual clock are bit-identical with and without it.
func TestRecordingDoesNotPerturbRun(t *testing.T) {
	plain := runAlgo(t, "ring", 64, 5, 0.0625, 1, testConfig(4))
	traced := runAlgo(t, "ring", 64, 5, 0.0625, 1, recordConfig(4))
	if plain.VirtualTime != traced.VirtualTime {
		t.Errorf("virtual time changed: %v vs %v", plain.VirtualTime, traced.VirtualTime)
	}
	if plain.Messages != traced.Messages || plain.Bytes != traced.Bytes {
		t.Error("traffic counters changed under recording")
	}
	for i := 0; i < plain.Sys.N; i++ {
		if plain.Sys.Pos[i] != traced.Sys.Pos[i] || plain.Sys.Vel[i] != traced.Sys.Vel[i] {
			t.Fatalf("particle %d diverged under recording", i)
		}
	}
}

// Two identical recorded runs must agree bit for bit — final systems AND
// the full breakdowns (run under -race in the verify gauntlet).
func TestRecordedRunsDeterministic(t *testing.T) {
	for _, tc := range []struct {
		algo            string
		hosts, clusters int
	}{{"ring", 4, 1}, {"hybrid", 8, 2}} {
		a := runAlgo(t, tc.algo, 64, 13, 0.0625, tc.clusters, recordConfig(tc.hosts))
		b := runAlgo(t, tc.algo, 64, 13, 0.0625, tc.clusters, recordConfig(tc.hosts))
		if a.VirtualTime != b.VirtualTime {
			t.Errorf("%s: virtual times differ", tc.algo)
		}
		for i := 0; i < a.Sys.N; i++ {
			if a.Sys.Pos[i] != b.Sys.Pos[i] || a.Sys.Vel[i] != b.Sys.Vel[i] {
				t.Fatalf("%s: particle %d differs between identical runs", tc.algo, i)
			}
		}
		if !reflect.DeepEqual(a.Breakdown, b.Breakdown) {
			t.Errorf("%s: breakdowns differ between identical runs", tc.algo)
		}
		if !reflect.DeepEqual(a.BlockSizes, b.BlockSizes) {
			t.Errorf("%s: block-size records differ", tc.algo)
		}
	}
}

// With one host the copy driver charges exactly the analytic per-block
// formulas (nbLocal == nb, no network), so replaying the recorded block
// sizes through timing must reproduce the breakdown to FP accumulation
// error.
func TestCrossCheckSingleHostExact(t *testing.T) {
	res := runAlgo(t, "copy", 96, 3, 0.0625, 1, recordConfig(1))
	rep := timing.ReportForBlocks(
		perfmodel.SingleNode(simnet.NS83820, perfmodel.Athlon), 96, res.BlockSizes)
	m := res.Breakdown.Mean()
	check := func(name string, got, want float64) {
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("%s: cosim %v, model %v", name, got, want)
		}
	}
	check("host", m.Host(), rep.Host)
	check("grape", m.Grape(), rep.Grape)
	check("comm", m.Comm(), rep.Comm)
	check("sync", m.Sync(), rep.Sync) // both zero: no network
	// Idle is only the FP reconciliation residue Close folds in to make
	// the sum exact — a lone host is never actually idle.
	if math.Abs(m[vtrace.Idle]) > 1e-12 {
		t.Errorf("single host idle = %v, want ~0", m[vtrace.Idle])
	}
}

// Multi-host, the two decompositions are structurally different models of
// the same block sequence (the analytic side charges ceil(nb/hosts) per
// host, a DMA setup every block, and an 8-byte barrier; the event side
// records actual shares and payloads), so they agree only within bands.
// The bands here are the measured envelopes ±margin, documented in
// DESIGN.md §8; a change that breaks the attribution plumbing moves these
// ratios by far more than the slack.
func TestCrossCheckMultiHostBands(t *testing.T) {
	type band struct{ lo, hi float64 }
	cases := []struct {
		algo                    string
		hosts                   int
		host, grape, comm, sync band
	}{
		// Measured at N=128, t=0.0625, NS83820: 0.90-0.97 / 0.70-0.90 /
		// 0.74-0.92 / 0.61-0.64.
		{"copy", 2, band{0.6, 1.3}, band{0.5, 1.3}, band{0.5, 1.3}, band{0.35, 1.1}},
		{"copy", 4, band{0.6, 1.3}, band{0.5, 1.3}, band{0.5, 1.3}, band{0.35, 1.1}},
		// Measured: 0.90 / 0.86 / 1.03 / 1.18.
		{"grid", 4, band{0.6, 1.3}, band{0.5, 1.4}, band{0.6, 1.6}, band{0.6, 1.9}},
		// The ring circulates every packet through all p hosts: p GRAPE
		// evaluations (against N/p-sized j-sets) and p DMA transfers per
		// particle, where the analytic model charges one — grape and comm
		// land near p× with the per-call overheads. Measured at p=4:
		// 0.90 / 2.9 / 3.1 / 1.6.
		{"ring", 4, band{0.6, 1.3}, band{1.5, 4.5}, band{1.5, 4.5}, band{0.8, 2.6}},
	}
	for _, tc := range cases {
		res := runAlgo(t, tc.algo, 128, 11, 0.0625, 1, recordConfig(tc.hosts))
		rep := timing.ReportForBlocks(
			perfmodel.MultiNode(tc.hosts, simnet.NS83820, perfmodel.Athlon), 128, res.BlockSizes)
		m := res.Breakdown.Mean()
		check := func(name string, got, want float64, b band) {
			if want <= 0 {
				t.Fatalf("%s/%d %s: model component %v not positive", tc.algo, tc.hosts, name, want)
			}
			if r := got / want; r < b.lo || r > b.hi {
				t.Errorf("%s/%d %s: cosim/model = %v outside [%v,%v] (cosim %v, model %v)",
					tc.algo, tc.hosts, name, r, b.lo, b.hi, got, want)
			}
		}
		check("host", m.Host(), rep.Host, tc.host)
		check("grape", m.Grape(), rep.Grape, tc.grape)
		check("comm", m.Comm(), rep.Comm, tc.comm)
		check("sync", m.Sync(), rep.Sync, tc.sync)
	}
}

func TestCheckRingReturn(t *testing.T) {
	S := plummer(8, 1)
	sent := []ipacket{{id: S.ID[2], ownerIx: 2}, {id: S.ID[5], ownerIx: 5}}
	if err := checkRingReturn(S, sent, sent); err != nil {
		t.Errorf("intact return rejected: %v", err)
	}
	if err := checkRingReturn(S, sent, sent[:1]); err == nil {
		t.Error("lost packet accepted")
	}
	// Length-preserving corruption — the case the old length-only check
	// let through: a packet comes home claiming the wrong owner slot.
	swapped := []ipacket{sent[0], {id: S.ID[5], ownerIx: 4}}
	if err := checkRingReturn(S, sent, swapped); err == nil {
		t.Error("id/owner mismatch accepted")
	}
	oob := []ipacket{sent[0], {id: S.ID[5], ownerIx: 99}}
	if err := checkRingReturn(S, sent, oob); err == nil {
		t.Error("out-of-range owner slot accepted")
	}
}

// A corrupted circulation must surface as an ERROR from the ring host
// (the pre-fix code panicked): a rogue peer that drops a packet from the
// circulating list makes ringHost return, not crash.
func TestRingHostSurfacesCirculationError(t *testing.T) {
	cfg := testConfig(2)
	sys := plummer(4, 9)
	if err := initForces(sys, cfg); err != nil {
		t.Fatal(err)
	}
	// Rank 0 runs the real ring host on its half of the system.
	half := make([]int, 0, 2)
	for i := 0; i < 2; i++ {
		half = append(half, i)
	}
	part := sys.Subset(half)
	backend := cfg.backendFor(0)
	backend.Load(part)

	eng := des.New()
	net := simnet.New(eng, cfg.NIC, 2)
	res := &Result{}
	var hostErr error
	eng.Spawn("ring0", func(p *des.Proc) {
		hostErr = ringHost(p, 0, cfg, net, part, backend, 1.0, res, nil)
	})
	// Rank 1 is a rogue: it joins the block-time agreement, then for each
	// circulation stage swallows the incoming packet list and forwards it
	// with the last packet dropped — a corruption the old length-only
	// check would catch, but delivered here to exercise the error path
	// end to end (no panic, error propagates out of the stage loop).
	eng.Spawn("rogue1", func(p *des.Proc) {
		allreduceMin(p, net, 1, 2, 2048, math.Inf(1), nil)
		for stage := 0; stage < 2; stage++ {
			msg := net.Recv(p, 1, stage)
			held := msg.Payload.([]ipacket)
			if len(held) > 0 {
				held = held[:len(held)-1]
			}
			net.Send(1, 0, stage, len(held)*ipacketBytes, held)
		}
	})
	eng.RunAll()
	if eng.Live() != 0 {
		t.Fatalf("%d processes deadlocked", eng.Live())
	}
	if hostErr == nil {
		t.Fatal("corrupted circulation did not surface as an error")
	}
}
