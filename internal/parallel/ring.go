package parallel

import (
	"fmt"
	"math"

	"grape6/internal/des"
	"grape6/internal/direct"
	"grape6/internal/hermite"
	"grape6/internal/nbody"
	"grape6/internal/simnet"
	"grape6/internal/vec"
	"grape6/internal/vtrace"
)

// ipacket is a predicted i-particle circulating around the ring,
// accumulating partial forces host by host.
type ipacket struct {
	id      int
	x, v    vec.V3
	acc     vec.V3
	jerk    vec.V3
	pot     float64
	ownerIx int // slot index on the owning host
}

// ipacketBytes is the wire size of one packet: 13 floats + 2 ints ≈ 120.
const ipacketBytes = 120

// RunRing executes the "ring" algorithm (Section 3.2): each host owns a
// disjoint N/p subset; the block's predicted particles travel around the
// ring, picking up the partial force from each host's local particles, and
// return to their owners after p hops for correction. Host-host and
// host-GRAPE communication per block step is independent of the host
// count — the property that made the simple configuration of Figure 10
// communication-bound.
//
// The host count must be a power of two (the butterfly min-reduction that
// finds the global block time requires it).
func RunRing(sys *nbody.System, until float64, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !isPow2(cfg.Hosts) {
		return nil, fmt.Errorf("parallel: ring algorithm needs a power-of-two host count, got %d", cfg.Hosts)
	}
	if sys.N < cfg.Hosts {
		return nil, fmt.Errorf("parallel: %d particles cannot be split over %d hosts", sys.N, cfg.Hosts)
	}
	if err := initForces(sys, cfg); err != nil {
		return nil, err
	}

	eng := des.New()
	net := simnet.New(eng, cfg.NIC, cfg.Hosts)
	res := &Result{}
	set := newTraceSet(cfg, net)

	// Disjoint contiguous ownership.
	parts := make([]*nbody.System, cfg.Hosts)
	backends := make([]hermite.Backend, cfg.Hosts)
	for h := 0; h < cfg.Hosts; h++ {
		lo := h * sys.N / cfg.Hosts
		hi := (h + 1) * sys.N / cfg.Hosts
		idxs := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			idxs = append(idxs, i)
		}
		parts[h] = sys.Subset(idxs)
		backends[h] = cfg.backendFor(h)
		backends[h].Load(parts[h])
	}

	errs := make([]error, cfg.Hosts)
	done := make([]*nbody.System, cfg.Hosts)
	for h := 0; h < cfg.Hosts; h++ {
		h := h
		eng.Spawn(fmt.Sprintf("ring%d", h), func(p *des.Proc) {
			rec := attachRecorder(p, set, h)
			errs[h] = ringHost(p, h, cfg, net, parts[h], backends[h], until, res, rec)
			done[h] = parts[h]
		})
	}
	eng.RunAll()
	// A host that bailed out with an error stops participating, which
	// deadlocks its neighbours — report the root cause, not the symptom.
	for h, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("parallel: ring host %d: %w", h, err)
		}
	}
	if eng.Live() != 0 {
		return nil, fmt.Errorf("parallel: %d ring hosts deadlocked", eng.Live())
	}

	// Reassemble the global system in id order.
	out := nbody.New(sys.N)
	for _, part := range done {
		for i := 0; i < part.N; i++ {
			id := part.ID[i]
			out.ID[id] = id
			out.Mass[id] = part.Mass[i]
			out.Pos[id] = part.Pos[i]
			out.Vel[id] = part.Vel[i]
			out.Acc[id] = part.Acc[i]
			out.Jerk[id] = part.Jerk[i]
			out.Snap[id] = part.Snap[i]
			out.Crack[id] = part.Crack[i]
			out.Pot[id] = part.Pot[i]
			out.Time[id] = part.Time[i]
			out.Step[id] = part.Step[i]
		}
	}
	res.Sys = out
	res.VirtualTime = eng.Now()
	res.Messages = net.MessagesSent
	res.Bytes = net.BytesSent
	if err := finishTrace(set, res, eng.Now()); err != nil {
		return nil, err
	}
	return res, nil
}

// checkRingReturn verifies that the circulated packet list came home
// intact: the same number of packets AND, for each one, that the id it
// carries matches the owner slot it claims. Comparing lengths alone (the
// pre-fix behaviour) would let a tag or stage-count bug that preserves
// length silently correct the wrong particles with the wrong forces.
func checkRingReturn(S *nbody.System, sent, returned []ipacket) error {
	if len(returned) != len(sent) {
		return fmt.Errorf("ring packets lost: sent %d, received %d after full circulation", len(sent), len(returned))
	}
	for k, pk := range returned {
		if pk.ownerIx < 0 || pk.ownerIx >= S.N {
			return fmt.Errorf("ring packet %d returned with owner slot %d out of range [0,%d)", k, pk.ownerIx, S.N)
		}
		if S.ID[pk.ownerIx] != pk.id {
			return fmt.Errorf("ring packet %d returned with id %d, but owner slot %d holds particle %d",
				k, pk.id, pk.ownerIx, S.ID[pk.ownerIx])
		}
	}
	return nil
}

func ringHost(p *des.Proc, h int, cfg Config, net *simnet.Network,
	S *nbody.System, backend hermite.Backend, until float64, res *Result,
	rec *vtrace.Recorder) error {

	m := cfg.Machine
	next := (h + 1) % cfg.Hosts
	round := 0
	var fbuf []direct.Force
	// Per-stage scratch reused across the whole run; packet lists are
	// message payloads and stay freshly allocated.
	var mine, ids, idxs []int
	var xs, vs []vec.V3
	for {
		local := math.Inf(1)
		if S.N > 0 {
			local = S.MinTime()
		}
		t := allreduceMin(p, net, h, cfg.Hosts, round*4096+2048, local, rec)
		if t > until {
			return nil
		}

		// Build this host's packets.
		mine = blockAppend(mine[:0], S, t)
		packets := make([]ipacket, 0, len(mine))
		for _, i := range mine {
			dt := t - S.Time[i]
			xp, vp := hermite.Predict(S.Pos[i], S.Vel[i], S.Acc[i], S.Jerk[i], S.Snap[i], dt)
			packets = append(packets, ipacket{id: S.ID[i], x: xp, v: vp, ownerIx: i})
		}

		// p stages: compute partial forces on the held packet list from
		// the local subset, then pass it along the ring.
		held := packets
		for stage := 0; stage < cfg.Hosts; stage++ {
			if len(held) > 0 && S.N > 0 {
				ids, xs, vs = ids[:0], xs[:0], vs[:0]
				for _, pk := range held {
					ids = append(ids, pk.id)
					xs = append(xs, pk.x)
					vs = append(vs, pk.v)
				}
				fs := evalForces(&fbuf, backend, t, ids, xs, vs, cfg.Params.Eps)
				for k := range held {
					held[k].acc = held[k].acc.Add(fs[k].Acc)
					held[k].jerk = held[k].jerk.Add(fs[k].Jerk)
					held[k].pot += fs[k].Pot
				}
				p.SleepAs(int(vtrace.Grape), m.GrapeTimeHost(len(held), S.N))
				p.SleepAs(int(vtrace.CommSend), m.LinkTime(len(held)))
			}
			net.Send(h, next, round*4096+stage, len(held)*ipacketBytes, held)
			msg := net.Recv(p, h, round*4096+stage)
			held = msg.Payload.([]ipacket)
		}

		// After p hops the packets are home with complete forces — verify
		// identity, not just count.
		if err := checkRingReturn(S, packets, held); err != nil {
			return err
		}
		for _, pk := range held {
			f := direct.Force{Acc: pk.acc, Jerk: pk.jerk, Pot: pk.pot, NN: -1}
			correctParticle(S, pk.ownerIx, f, t, cfg.Params)
		}
		if len(held) > 0 {
			p.SleepAs(int(vtrace.HostWork), m.HostWork(len(held), S.N*cfg.Hosts))
			idxs = idxs[:0]
			for _, pk := range held {
				idxs = append(idxs, pk.ownerIx)
			}
			backend.Update(S, idxs)
		}

		if h == 0 {
			res.Blocks++
		}
		res.Steps += int64(len(held)) // each host counts its own
		res.noteBlock(round, len(held))
		round++
	}
}
