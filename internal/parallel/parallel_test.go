package parallel

import (
	"math"
	"testing"

	"grape6/internal/hermite"
	"grape6/internal/model"
	"grape6/internal/nbody"
	"grape6/internal/perfmodel"
	"grape6/internal/simnet"
	"grape6/internal/xrand"
)

func testConfig(hosts int) Config {
	return Config{
		Hosts:   hosts,
		NIC:     simnet.NS83820,
		Machine: perfmodel.SingleNode(simnet.NS83820, perfmodel.Athlon),
		Params:  hermite.DefaultParams(1.0 / 64),
	}
}

func plummer(n int, seed uint64) *nbody.System {
	return model.Plummer(n, xrand.New(seed))
}

// singleHostReference integrates with the plain hermite integrator.
func singleHostReference(t *testing.T, n int, seed uint64, until float64) *nbody.System {
	t.Helper()
	sys := plummer(n, seed)
	it, err := hermite.New(sys, hermite.NewDirectBackend(), hermite.DefaultParams(1.0/64))
	if err != nil {
		t.Fatal(err)
	}
	it.Run(until)
	return sys
}

func maxDeviation(a, b *nbody.System) float64 {
	var m float64
	for i := 0; i < a.N; i++ {
		if d := a.Pos[i].Dist(b.Pos[i]); d > m {
			m = d
		}
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	c := testConfig(4)
	c.Hosts = 0
	if err := c.Validate(); err == nil {
		t.Error("accepted zero hosts")
	}
	c = testConfig(4)
	c.Params.Eta = -1
	if err := c.Validate(); err == nil {
		t.Error("accepted bad params")
	}
}

func TestCopyRejectsNonPow2(t *testing.T) {
	if _, err := RunCopy(plummer(32, 1), 0.01, testConfig(3)); err == nil {
		t.Error("copy accepted 3 hosts")
	}
}

func TestRingRejectsNonPow2(t *testing.T) {
	if _, err := RunRing(plummer(32, 1), 0.01, testConfig(3)); err == nil {
		t.Error("ring accepted 3 hosts")
	}
}

func TestGridRejectsNonSquare(t *testing.T) {
	if _, err := RunGrid(plummer(32, 1), 0.01, testConfig(2)); err == nil {
		t.Error("grid accepted 2 hosts")
	}
	if _, err := RunGrid(plummer(32, 1), 0.01, testConfig(8)); err == nil {
		t.Error("grid accepted 8 hosts (not a square)")
	}
}

func TestCopySingleHostMatchesReference(t *testing.T) {
	ref := singleHostReference(t, 48, 7, 0.125)
	res, err := RunCopy(plummer(48, 7), 0.125, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ref.N; i++ {
		if ref.Pos[i] != res.Sys.Pos[i] || ref.Vel[i] != res.Sys.Vel[i] {
			t.Fatalf("particle %d differs from single-host reference", i)
		}
	}
}

func TestCopyHostCountInvariance(t *testing.T) {
	// The copy algorithm computes every correction on exactly one host
	// from a bit-identical replica, so results are independent of the
	// host count — bit for bit.
	r1, err := RunCopy(plummer(48, 9), 0.125, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunCopy(plummer(48, 9), 0.125, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r1.Sys.N; i++ {
		if r1.Sys.Pos[i] != r4.Sys.Pos[i] || r1.Sys.Vel[i] != r4.Sys.Vel[i] {
			t.Fatalf("particle %d differs between 1 and 4 hosts", i)
		}
	}
	if r1.Steps != r4.Steps || r1.Blocks != r4.Blocks {
		t.Errorf("step counts differ: %d/%d vs %d/%d", r1.Steps, r1.Blocks, r4.Steps, r4.Blocks)
	}
}

func TestRingMatchesReferenceClosely(t *testing.T) {
	// Ring accumulates partial forces in a different order than the
	// single host, so agreement is close but not bit-exact.
	ref := singleHostReference(t, 64, 11, 0.0625)
	res, err := RunRing(plummer(64, 11), 0.0625, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDeviation(ref, res.Sys); d > 1e-6 {
		t.Errorf("ring deviates from reference by %v", d)
	}
}

func TestGridMatchesReferenceClosely(t *testing.T) {
	ref := singleHostReference(t, 64, 13, 0.0625)
	res, err := RunGrid(plummer(64, 13), 0.0625, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDeviation(ref, res.Sys); d > 1e-6 {
		t.Errorf("grid deviates from reference by %v", d)
	}
}

func TestGridSingleHost(t *testing.T) {
	ref := singleHostReference(t, 32, 15, 0.0625)
	res, err := RunGrid(plummer(32, 15), 0.0625, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDeviation(ref, res.Sys); d > 1e-12 {
		t.Errorf("1-host grid deviates by %v", d)
	}
}

func TestRingEnergyConservation(t *testing.T) {
	sys := plummer(64, 17)
	e0 := sys.TotalEnergy(1.0 / 64)
	res, err := RunRing(sys.Clone(), 0.25, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	// Synchronize all particles to a common time for the energy check.
	snap := res.Sys.Clone()
	tmax := 0.0
	for i := 0; i < snap.N; i++ {
		if snap.Time[i] > tmax {
			tmax = snap.Time[i]
		}
	}
	for i := 0; i < snap.N; i++ {
		dt := tmax - snap.Time[i]
		snap.Pos[i], snap.Vel[i] = hermite.Predict(snap.Pos[i], snap.Vel[i], snap.Acc[i], snap.Jerk[i], snap.Snap[i], dt)
	}
	e1 := snap.TotalEnergy(1.0 / 64)
	if rel := math.Abs((e1 - e0) / e0); rel > 1e-4 {
		t.Errorf("ring energy error = %v", rel)
	}
}

func TestSmallNParallelIsSlower(t *testing.T) {
	// The paper's core finding (Figures 15-18): at small N, adding hosts
	// makes the run SLOWER because synchronization dominates.
	sys1 := plummer(64, 19)
	r1, err := RunCopy(sys1, 0.0625, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	sys4 := plummer(64, 19)
	r4, err := RunCopy(sys4, 0.0625, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if r4.VirtualTime <= r1.VirtualTime {
		t.Errorf("4 hosts (%.4gs) not slower than 1 host (%.4gs) at N=64",
			r4.VirtualTime, r1.VirtualTime)
	}
}

func TestTunedNICIsFaster(t *testing.T) {
	// Figure 19 at message level: the Intel 82540EM network makes the
	// sync-dominated small-N run faster.
	cfgOld := testConfig(4)
	cfgNew := testConfig(4)
	cfgNew.NIC = simnet.Intel82540EM
	cfgNew.Machine = perfmodel.SingleNode(simnet.Intel82540EM, perfmodel.P4)
	ro, err := RunCopy(plummer(64, 21), 0.0625, cfgOld)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := RunCopy(plummer(64, 21), 0.0625, cfgNew)
	if err != nil {
		t.Fatal(err)
	}
	if rn.VirtualTime >= ro.VirtualTime {
		t.Errorf("tuned NIC not faster: %v vs %v", rn.VirtualTime, ro.VirtualTime)
	}
}

func TestTrafficCountersPopulated(t *testing.T) {
	res, err := RunCopy(plummer(32, 23), 0.0625, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages == 0 || res.Bytes == 0 {
		t.Errorf("no traffic recorded: %d msgs %d bytes", res.Messages, res.Bytes)
	}
	if res.Steps == 0 || res.Blocks == 0 {
		t.Errorf("no work recorded: %d steps %d blocks", res.Steps, res.Blocks)
	}
	if res.StepsPerSecond() <= 0 {
		t.Error("non-positive step rate")
	}
}

func TestRingAndGridStepCountsMatchCopy(t *testing.T) {
	// All three algorithms integrate the same system with (nearly) the
	// same schedule; step counts should agree closely.
	rc, err := RunCopy(plummer(48, 25), 0.0625, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RunRing(plummer(48, 25), 0.0625, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	rg, err := RunGrid(plummer(48, 25), 0.0625, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int64{{rc.Steps, rr.Steps}, {rc.Steps, rg.Steps}} {
		ratio := float64(pair[0]) / float64(pair[1])
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("step counts diverge: %d vs %d", pair[0], pair[1])
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		r, err := RunGrid(plummer(48, 27), 0.0625, testConfig(4))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.VirtualTime != b.VirtualTime || a.Messages != b.Messages {
		t.Error("non-deterministic co-simulation")
	}
	for i := 0; i < a.Sys.N; i++ {
		if a.Sys.Pos[i] != b.Sys.Pos[i] {
			t.Fatalf("non-deterministic particle %d", i)
		}
	}
}

func TestRingRejectsTooFewParticles(t *testing.T) {
	if _, err := RunRing(plummer(2, 1), 0.01, testConfig(4)); err == nil {
		t.Error("ring accepted N < hosts")
	}
}

func TestGridCommunicationScalesBetterThanCopy(t *testing.T) {
	// The grid's point of existence: per-host communication O(N/r) vs the
	// copy algorithm's O(N). With 4 hosts (r=2) the grid should move
	// fewer total bytes over the run.
	rc, err := RunCopy(plummer(128, 29), 0.0625, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	rg, err := RunGrid(plummer(128, 29), 0.0625, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if rg.Bytes >= rc.Bytes {
		t.Errorf("grid bytes %d not below copy bytes %d", rg.Bytes, rc.Bytes)
	}
}
