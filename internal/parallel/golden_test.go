package parallel

import (
	"hash/fnv"
	"math"
	"reflect"
	"testing"

	"grape6/internal/hermite"
	"grape6/internal/model"
	"grape6/internal/nbody"
	"grape6/internal/perfmodel"
	"grape6/internal/simnet"
	"grape6/internal/units"
	"grape6/internal/vtrace"
	"grape6/internal/xrand"
)

// The co-simulation engine rework (value-event DES core, slab mailboxes,
// arena span storage) carries a hard bit-exactness contract: virtual
// times and per-rank phase breakdowns must be IDENTICAL to the
// pointer-heap/map-mailbox engine it replaced. These goldens were
// captured from that engine on the paper sweep (N=128 Plummer, seed 1,
// t=0.03125, NS83820 NIC, Athlon host model) immediately before the
// rework; any drift here means event ordering changed.
type goldenRun struct {
	name     string
	algo     string // ring | hybrid | copy
	hosts    int
	clusters int // hybrid only
	vtBits   uint64
	rankHash uint64 // FNV-64a over per-rank per-phase Float64bits
	steps    int64
	blocks   int64
	msgs     int64
	bytes    int64
}

var goldenRuns = []goldenRun{
	{"ring/2", "ring", 2, 0, 0x3fb2660cf6ac0de1, 0xc8041278c28fb373, 3212, 164, 986, 773520},
	{"ring/4", "ring", 4, 0, 0x3fc0eb2aaefaffa8, 0x6bd98e4165802d7d, 3212, 164, 3944, 1552320},
	{"ring/8", "ring", 8, 0, 0x3fcd817ff4685cc4, 0xedb6fb9951ea5264, 3212, 164, 14456, 3115200},
	{"ring/16", "ring", 16, 0, 0x3fda8ccf7e7ac326, 0xdf69f4a3c27da7cf, 3212, 164, 52544, 6251520},
	{"hybrid/1/4", "hybrid", 4, 1, 0x3fb678ca4596185a, 0x8548ed034b4b7ad2, 3212, 164, 2304, 1321056},
	{"hybrid/2/8", "hybrid", 8, 2, 0x3fbaa0d12add0799, 0xff9ebc35e9b8999d, 3212, 164, 7896, 3038112},
	{"hybrid/4/16", "hybrid", 16, 4, 0x3fbefac46cbfb728, 0x59065cdbff08b188, 3212, 164, 26304, 6482784},
	{"copy/2", "copy", 2, 0, 0x3f9ef0e513fc7a4b, 0x591595432fa3d99f, 3212, 164, 328, 565312},
	{"copy/4", "copy", 4, 0, 0x3fa7e983dececb27, 0xecc4114b1d5aa2e0, 3212, 164, 1312, 1695936},
	{"copy/8", "copy", 8, 0, 0x3fb05f293f1872b0, 0x5dda423aae90fc68, 3212, 164, 3936, 3957184},
	{"copy/16", "copy", 16, 0, 0x3fb4aa76d57a6dc3, 0x87f533f340d857c3, 3212, 164, 10496, 8479680},
}

func goldenConfig(hosts int) Config {
	eps := units.Softening(units.SoftConstant, 128)
	return Config{
		Hosts:   hosts,
		NIC:     simnet.NS83820,
		Machine: perfmodel.SingleNode(simnet.NS83820, perfmodel.Athlon),
		Params:  hermite.DefaultParams(eps),
		Record:  true,
	}
}

func runGolden(t *testing.T, g goldenRun) *Result {
	t.Helper()
	sys := model.Plummer(128, xrand.New(1))
	var (
		res *Result
		err error
	)
	switch g.algo {
	case "ring":
		res, err = RunRing(sys, 0.03125, goldenConfig(g.hosts))
	case "hybrid":
		res, err = RunHybrid(sys, 0.03125, g.clusters, goldenConfig(g.hosts))
	default:
		res, err = RunCopy(sys, 0.03125, goldenConfig(g.hosts))
	}
	if err != nil {
		t.Fatalf("%s: %v", g.name, err)
	}
	return res
}

// breakdownHash folds every rank's per-phase totals into an FNV-64a hash
// of their raw float64 bits (big-endian), matching the capture tooling.
func breakdownHash(b *vtrace.Breakdown) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, rank := range b.Ranks {
		for _, v := range rank {
			bits := math.Float64bits(v)
			for i := 0; i < 8; i++ {
				buf[i] = byte(bits >> (56 - 8*i))
			}
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

func TestGoldenBreakdownsBitExact(t *testing.T) {
	for _, g := range goldenRuns {
		g := g
		t.Run(g.name, func(t *testing.T) {
			res := runGolden(t, g)
			if bits := math.Float64bits(res.VirtualTime); bits != g.vtBits {
				t.Errorf("virtual time %#x (%.9g), want %#x", bits, res.VirtualTime, g.vtBits)
			}
			if res.Steps != g.steps || res.Blocks != g.blocks {
				t.Errorf("steps/blocks %d/%d, want %d/%d", res.Steps, res.Blocks, g.steps, g.blocks)
			}
			if res.Messages != g.msgs || res.Bytes != g.bytes {
				t.Errorf("msgs/bytes %d/%d, want %d/%d", res.Messages, res.Bytes, g.msgs, g.bytes)
			}
			if len(res.Breakdown.Ranks) != g.hosts {
				t.Fatalf("%d rank breakdowns, want %d", len(res.Breakdown.Ranks), g.hosts)
			}
			if h := breakdownHash(res.Breakdown); h != g.rankHash {
				t.Errorf("breakdown hash %#x, want %#x", h, g.rankHash)
			}
		})
	}
}

// Two identical runs must produce DeepEqual breakdowns AND final particle
// states — the engine has no hidden nondeterminism (map iteration,
// goroutine scheduling) anywhere in the hot path.
func TestBreakdownDeterminism(t *testing.T) {
	for _, g := range []goldenRun{goldenRuns[1], goldenRuns[6]} { // ring/4, hybrid/4/16
		g := g
		t.Run(g.name, func(t *testing.T) {
			a, b := runGolden(t, g), runGolden(t, g)
			if !reflect.DeepEqual(a.Breakdown, b.Breakdown) {
				t.Error("breakdowns differ between identical runs")
			}
			if !reflect.DeepEqual(a.BlockSizes, b.BlockSizes) {
				t.Error("block-size histories differ between identical runs")
			}
			if !sysEqual(a.Sys, b.Sys) {
				t.Error("final particle states differ between identical runs")
			}
		})
	}
}

func sysEqual(a, b *nbody.System) bool {
	if a.N != b.N {
		return false
	}
	for i := 0; i < a.N; i++ {
		if a.Pos[i] != b.Pos[i] || a.Vel[i] != b.Vel[i] || a.Time[i] != b.Time[i] || a.Step[i] != b.Step[i] {
			return false
		}
	}
	return true
}
