package parallel

import (
	"testing"

	"grape6/internal/board"
	"grape6/internal/gbackend"
	"grape6/internal/hermite"
	"grape6/internal/model"
	"grape6/internal/nbody"
	"grape6/internal/xrand"
)

// tinyGrape builds a small emulated attachment per host.
func tinyGrape(boards int) func(int) hermite.Backend {
	return func(rank int) hermite.Backend {
		cfg := board.Default
		cfg.ChipsPerModule = 2
		cfg.ModulesPerBoard = 2
		cfg.Boards = boards
		return gbackend.New(board.New(cfg))
	}
}

// TestCopyOnEmulatedHardwareEndToEnd is the full-stack integration test:
// the copy parallel algorithm running over the simulated network with an
// emulated GRAPE-6 attachment on every simulated host. Because both the
// block-floating-point hardware summation AND the copy algorithm's
// correct-once-and-ship structure are exactly reproducible, the final
// trajectories must be BIT-IDENTICAL to a single-host integration on the
// same emulated hardware — the paper's validation property, end to end.
func TestCopyOnEmulatedHardwareEndToEnd(t *testing.T) {
	n := 48
	until := 0.0625

	// Single-host reference on emulated hardware.
	ref := model.Plummer(n, xrand.New(31))
	it, err := hermite.New(ref, tinyGrape(1)(0), hermite.DefaultParams(1.0/64))
	if err != nil {
		t.Fatal(err)
	}
	it.Run(until)

	// 4-host copy algorithm, each host with its own emulated attachment.
	cfg := testConfig(4)
	cfg.NewBackend = tinyGrape(1)
	res, err := RunCopy(model.Plummer(n, xrand.New(31)), until, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n; i++ {
		if ref.Pos[i] != res.Sys.Pos[i] || ref.Vel[i] != res.Sys.Vel[i] {
			t.Fatalf("particle %d differs between 1-host and 4-host emulated runs:\n%v\n%v",
				i, ref.Pos[i], res.Sys.Pos[i])
		}
	}
}

// TestCopyEmulatedDiffersFromFloat64 guards against the emulated path
// silently falling back to float64: the hardware arithmetic must leave its
// (tiny) fingerprint on the trajectories.
func TestCopyEmulatedDiffersFromFloat64(t *testing.T) {
	n := 48
	until := 0.0625

	cfgHW := testConfig(2)
	cfgHW.NewBackend = tinyGrape(1)
	hw, err := RunCopy(model.Plummer(n, xrand.New(33)), until, cfgHW)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := RunCopy(model.Plummer(n, xrand.New(33)), until, testConfig(2))
	if err != nil {
		t.Fatal(err)
	}

	identical := true
	var maxDev float64
	for i := 0; i < n; i++ {
		if hw.Sys.Pos[i] != sw.Sys.Pos[i] {
			identical = false
		}
		if d := hw.Sys.Pos[i].Dist(sw.Sys.Pos[i]); d > maxDev {
			maxDev = d
		}
	}
	if identical {
		t.Error("emulated-hardware run is bit-identical to float64 — emulation not exercised")
	}
	if maxDev > 1e-3 {
		t.Errorf("hardware arithmetic deviates too much from float64: %v", maxDev)
	}
}

// TestCopyEmulatedEnergy checks conservation through the whole stack.
func TestCopyEmulatedEnergy(t *testing.T) {
	n := 48
	sys := model.Plummer(n, xrand.New(35))
	e0 := sys.TotalEnergy(1.0 / 64)
	cfg := testConfig(2)
	cfg.NewBackend = tinyGrape(1)
	res, err := RunCopy(sys.Clone(), 0.125, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := synchronizeAll(res.Sys)
	e1 := snap.TotalEnergy(1.0 / 64)
	if rel := abs((e1 - e0) / e0); rel > 1e-4 {
		t.Errorf("energy error through full stack = %v", rel)
	}
}

func synchronizeAll(sys *nbody.System) *nbody.System {
	snap := sys.Clone()
	tmax := 0.0
	for i := 0; i < snap.N; i++ {
		if snap.Time[i] > tmax {
			tmax = snap.Time[i]
		}
	}
	for i := 0; i < snap.N; i++ {
		dt := tmax - snap.Time[i]
		snap.Pos[i], snap.Vel[i] = hermite.Predict(snap.Pos[i], snap.Vel[i], snap.Acc[i], snap.Jerk[i], snap.Snap[i], dt)
		snap.Time[i] = tmax
	}
	return snap
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
