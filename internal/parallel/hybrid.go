package parallel

import (
	"fmt"
	"math"

	"grape6/internal/des"
	"grape6/internal/direct"
	"grape6/internal/hermite"
	"grape6/internal/nbody"
	"grape6/internal/simnet"
	"grape6/internal/vtrace"
)

// RunHybrid executes the production machine's actual parallel structure
// (Section 4.3): the "copy" algorithm ACROSS clusters — each cluster holds
// a complete copy of the system and integrates the block particles whose
// id hashes to it — combined with the 2D grid algorithm WITHIN each
// cluster, where the cluster's r×r hosts hold row/column subsets and the
// diagonal hosts perform the corrections. After every block step the
// diagonal hosts broadcast their updates to the matching rows and columns
// of ALL clusters, which is the inter-cluster traffic that makes the
// multi-cluster crossover sit at such large N (Figures 17-18).
//
// cfg.Hosts must equal Clusters × r² with both Clusters and r² powers of
// two; pass the total host count and the cluster count.
func RunHybrid(sys *nbody.System, until float64, clusters int, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if clusters <= 0 || !isPow2(clusters) {
		return nil, fmt.Errorf("parallel: hybrid cluster count %d not a positive power of two", clusters)
	}
	if cfg.Hosts%clusters != 0 {
		return nil, fmt.Errorf("parallel: %d hosts not divisible by %d clusters", cfg.Hosts, clusters)
	}
	perCl := cfg.Hosts / clusters
	r := int(math.Round(math.Sqrt(float64(perCl))))
	if r*r != perCl || !isPow2(perCl) {
		return nil, fmt.Errorf("parallel: hybrid needs r² hosts per cluster, got %d", perCl)
	}
	if sys.N < r {
		return nil, fmt.Errorf("parallel: %d particles cannot be split over %d subsets", sys.N, r)
	}
	if err := initForces(sys, cfg); err != nil {
		return nil, err
	}

	subsetIdx := func(s int) []int {
		lo := s * sys.N / r
		hi := (s + 1) * sys.N / r
		out := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out
	}

	eng := des.New()
	net := simnet.New(eng, cfg.NIC, cfg.Hosts)
	res := &Result{}
	set := newTraceSet(cfg, net)

	states := make([]*gridState, cfg.Hosts)
	for k := 0; k < clusters; k++ {
		for i := 0; i < r; i++ {
			for j := 0; j < r; j++ {
				st := &gridState{}
				st.row = sys.Subset(subsetIdx(i))
				if i == j {
					st.col = st.row
				} else {
					st.col = sys.Subset(subsetIdx(j))
				}
				st.rowIdx = indexByID(st.row)
				st.colIdx = indexByID(st.col)
				st.backend = cfg.backendFor(k*perCl + i*r + j)
				st.backend.Load(st.col)
				states[k*perCl+i*r+j] = st
			}
		}
	}

	for rank := 0; rank < cfg.Hosts; rank++ {
		rank := rank
		eng.Spawn(fmt.Sprintf("hyb%d", rank), func(p *des.Proc) {
			rec := attachRecorder(p, set, rank)
			hybridHost(p, rank, clusters, r, cfg, net, states[rank], until, res, rec)
		})
	}
	eng.RunAll()
	if eng.Live() != 0 {
		return nil, fmt.Errorf("parallel: %d hybrid hosts deadlocked", eng.Live())
	}

	// Cluster 0's diagonals hold... every cluster's copy is complete; use
	// cluster 0's row copies (subsets 0..r-1 from its diagonal rows).
	out := nbody.New(sys.N)
	for i := 0; i < r; i++ {
		part := states[i*r+i].row
		for q := 0; q < part.N; q++ {
			id := part.ID[q]
			out.ID[id] = id
			out.Mass[id] = part.Mass[q]
			out.Pos[id] = part.Pos[q]
			out.Vel[id] = part.Vel[q]
			out.Acc[id] = part.Acc[q]
			out.Jerk[id] = part.Jerk[q]
			out.Snap[id] = part.Snap[q]
			out.Crack[id] = part.Crack[q]
			out.Pot[id] = part.Pot[q]
			out.Time[id] = part.Time[q]
			out.Step[id] = part.Step[q]
		}
	}
	res.Sys = out
	res.VirtualTime = eng.Now()
	res.Messages = net.MessagesSent
	res.Bytes = net.BytesSent
	if err := finishTrace(set, res, eng.Now()); err != nil {
		return nil, err
	}
	return res, nil
}

// Hybrid message tags (per round, on top of the grid tags).
const (
	tagHybRowUpd = 400 // + source cluster
	tagHybColUpd = 500 // + source cluster
)

func hybridHost(p *des.Proc, rank, clusters, r int, cfg Config, net *simnet.Network,
	st *gridState, until float64, res *Result, rec *vtrace.Recorder) {

	m := cfg.Machine
	perCl := r * r
	k := rank / perCl
	local := rank % perCl
	i, j := local/r, local%r
	diagRank := k*perCl + i*r + i
	round := 0
	for {
		t := allreduceMin(p, net, rank, cfg.Hosts, round*tagStride+tagMin, st.row.MinTime(), rec)
		if t > until {
			break
		}
		// Full block members of subset i, then this cluster's share.
		st.block = blockAppend(st.block[:0], st.row, t)
		st.mine = st.mine[:0]
		for _, ix := range st.block {
			if st.row.ID[ix]%clusters == k {
				st.mine = append(st.mine, ix)
			}
		}
		block := st.mine

		// Partial forces from subset j for the cluster's share.
		partial := make([]pforce, len(block))
		if len(block) > 0 {
			st.ids, st.xs, st.vs = st.ids[:0], st.xs[:0], st.vs[:0]
			for _, ix := range block {
				st.ids = append(st.ids, st.row.ID[ix])
				dt := t - st.row.Time[ix]
				xp, vp := hermite.Predict(st.row.Pos[ix], st.row.Vel[ix],
					st.row.Acc[ix], st.row.Jerk[ix], st.row.Snap[ix], dt)
				st.xs = append(st.xs, xp)
				st.vs = append(st.vs, vp)
			}
			fs := evalForces(&st.fbuf, st.backend, t, st.ids, st.xs, st.vs, cfg.Params.Eps)
			for q := range block {
				partial[q] = pforce{acc: fs[q].Acc, jerk: fs[q].Jerk, pot: fs[q].Pot}
			}
			p.SleepAs(int(vtrace.Grape), m.GrapeTimeHost(len(block), st.col.N))
			p.SleepAs(int(vtrace.CommSend), m.LinkTime(len(block)))
		}

		if rank == diagRank {
			// Sum partials across the cluster's row.
			if st.parts == nil {
				st.parts = make([][]pforce, r)
			}
			parts := st.parts
			parts[j] = partial
			for jj := 0; jj < r; jj++ {
				if jj == j {
					continue
				}
				msg := net.Recv(p, rank, round*tagStride+tagPartial+jj)
				parts[jj] = msg.Payload.([]pforce)
			}
			ups := make([]update, 0, len(block))
			for q, ix := range block {
				var f direct.Force
				f.NN = -1
				for jj := 0; jj < r; jj++ {
					if len(parts[jj]) != len(block) {
						panic("parallel: hybrid partial length mismatch")
					}
					f.Acc = f.Acc.Add(parts[jj][q].acc)
					f.Jerk = f.Jerk.Add(parts[jj][q].jerk)
					f.Pot += parts[jj][q].pot
				}
				ups = append(ups, correctParticle(st.row, ix, f, t, cfg.Params))
			}
			if len(block) > 0 {
				p.SleepAs(int(vtrace.HostWork), m.HostWork(len(block), st.row.N*r))
				st.backend.Update(st.col, block)
			}

			// Broadcast to row i and column i of EVERY cluster (including
			// the other clusters' diagonals), tagging by source cluster.
			for kk := 0; kk < clusters; kk++ {
				for x := 0; x < r; x++ {
					rowPeer := kk*perCl + i*r + x
					colPeer := kk*perCl + x*r + i
					if rowPeer != rank {
						net.Send(rank, rowPeer, round*tagStride+tagHybRowUpd+k, len(ups)*updateBytes, ups)
					}
					if colPeer != rank && colPeer != rowPeer {
						net.Send(rank, colPeer, round*tagStride+tagHybColUpd+k, len(ups)*updateBytes, ups)
					}
				}
			}

			// Receive the other clusters' updates for subset i (this host
			// is both row-i and column-i; the senders skip duplicate
			// row/col targets, so exactly one message per other diagonal).
			for kk := 0; kk < clusters; kk++ {
				if kk == k {
					continue
				}
				msg := net.Recv(p, rank, round*tagStride+tagHybRowUpd+kk)
				for _, u := range msg.Payload.([]update) {
					applyUpdate(st.row, st.rowIdx, u)
				}
				changed := st.changed[:0]
				for _, u := range msg.Payload.([]update) {
					ri, _ := st.rowIdx.slot(u.id)
					changed = append(changed, ri)
				}
				st.changed = changed
				if len(changed) > 0 {
					st.backend.Update(st.col, changed)
				}
			}
			for jj := range parts {
				parts[jj] = nil // unpin the received partials until next round
			}
			res.Steps += int64(len(block))
			// Every cluster's diagonal hosts correct disjoint shares of
			// disjoint subsets: the global block is their sum.
			res.noteBlock(round, len(block))
			if rank == 0 {
				res.Blocks++
			}
		} else {
			// Ship partials to the cluster's diagonal.
			net.Send(rank, diagRank, round*tagStride+tagPartial+j, len(partial)*pforceBytes, partial)

			// Row updates for subset i from every cluster's diagonal i.
			for kk := 0; kk < clusters; kk++ {
				msg := net.Recv(p, rank, round*tagStride+tagHybRowUpd+kk)
				for _, u := range msg.Payload.([]update) {
					applyUpdate(st.row, st.rowIdx, u)
				}
			}
			// Column updates for subset j from every cluster's diagonal j.
			for kk := 0; kk < clusters; kk++ {
				msg := net.Recv(p, rank, round*tagStride+tagHybColUpd+kk)
				colUps := msg.Payload.([]update)
				changed := st.changed[:0]
				for _, u := range colUps {
					applyUpdate(st.col, st.colIdx, u)
					ci, _ := st.colIdx.slot(u.id)
					changed = append(changed, ci)
				}
				st.changed = changed
				if len(changed) > 0 {
					st.backend.Update(st.col, changed)
				}
			}
			if rank == 0 {
				res.Blocks++
			}
		}
		round++
	}
}
