// Package parallel implements the three particle-distribution strategies
// the paper discusses for parallel individual-timestep N-body integration
// (Sections 3.2 and 4.2-4.3):
//
//   - the "copy" algorithm, where every host holds the complete system and
//     integrates a subset of each block, exchanging updated particles
//     afterwards — the paper's multi-cluster strategy;
//   - the "ring" algorithm, where each host owns a disjoint subset and the
//     current block's particles circulate around a ring accumulating
//     partial forces — the simple distributed-memory baseline;
//   - the two-dimensional grid algorithm of Makino (2002), where an r×r
//     host grid holds row/column copies so that communication per host
//     scales as O(N/r) — the paper's intra-cluster strategy.
//
// All three run as message-level co-simulations: simulated hosts execute
// the REAL integration arithmetic (so final particle states are testable
// against the single-host integrator) while sleeping in virtual time for
// their modelled compute costs, and all host-host traffic goes through the
// simulated network. The virtual clock at completion is the predicted
// wall-clock of the run.
package parallel

import (
	"fmt"
	"sort"

	"grape6/internal/des"
	"grape6/internal/direct"
	"grape6/internal/hermite"
	"grape6/internal/nbody"
	"grape6/internal/perfmodel"
	"grape6/internal/simnet"
	"grape6/internal/vec"
	"grape6/internal/vtrace"
)

// Config parameterises a parallel run.
type Config struct {
	Hosts   int
	NIC     simnet.NIC
	Machine perfmodel.Machine // per-host hardware and frontend model
	Params  hermite.Params

	// NewBackend, when non-nil, builds the force backend for each
	// simulated host (e.g. an emulated GRAPE attachment per host). Nil
	// uses the float64 DirectBackend. Each host gets its own instance.
	//
	// Rank -1 is a sentinel: initForces calls NewBackend(-1) once for a
	// throwaway backend that computes the common initial forces before
	// any per-rank instance exists. Implementations that index per-rank
	// state must treat -1 as "shared setup", not a rank.
	//
	// The gbackend (emulated GRAPE) predicts i-particles from its own
	// j-memory image, so it requires every i-particle to be loaded on the
	// host evaluating it: that holds for the copy algorithm (full replica
	// per host) but NOT for ring/grid, whose i-particles visit hosts that
	// store disjoint subsets — use position-honouring backends there.
	NewBackend func(rank int) hermite.Backend

	// Record enables per-phase virtual-time accounting (internal/vtrace):
	// the run fills Result.Breakdown and Result.Trace, and the span-tiling
	// invariant is checked before the result is returned. When false the
	// drivers take the nil-recorder fast path — no accounting overhead.
	Record bool
}

// backendFor builds the rank's force backend.
func (c Config) backendFor(rank int) hermite.Backend {
	if c.NewBackend != nil {
		return c.NewBackend(rank)
	}
	return hermite.NewDirectBackend()
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Hosts <= 0 {
		return fmt.Errorf("parallel: non-positive host count %d", c.Hosts)
	}
	if err := c.NIC.Validate(); err != nil {
		return err
	}
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	return c.Params.Validate()
}

// Result is the outcome of a parallel run.
type Result struct {
	Sys         *nbody.System // final particle states (gathered)
	VirtualTime float64       // predicted wall-clock, seconds
	Steps       int64         // individual particle steps
	Blocks      int64         // block steps
	Messages    int64         // host-host messages
	Bytes       int64         // host-host traffic

	// BlockSizes[r] is the GLOBAL number of particles integrated in block
	// round r (always recorded; one int per block). It feeds the analytic
	// cross-check: timing.ReportForBlocks replays the same block structure
	// through the perfmodel decomposition.
	BlockSizes []int

	// Breakdown and Trace are populated when Config.Record is set:
	// per-rank phase totals whose sums equal VirtualTime exactly, and the
	// full span set for Chrome trace-event export.
	Breakdown *vtrace.Breakdown
	Trace     *vtrace.Set
}

// noteBlock accumulates n into the global size of block round `round`.
// Simulated processes execute one at a time under the DES discipline, so
// concurrent-looking calls from different host procs never actually race.
func (r *Result) noteBlock(round, n int) {
	for len(r.BlockSizes) <= round {
		r.BlockSizes = append(r.BlockSizes, 0)
	}
	r.BlockSizes[round] += n
}

// StepsPerSecond returns the individual-step rate in virtual time.
func (r *Result) StepsPerSecond() float64 {
	if r.VirtualTime <= 0 {
		return 0
	}
	return float64(r.Steps) / r.VirtualTime
}

// update carries one particle's corrected state between hosts.
type update struct {
	id                               int
	pos, vel, acc, jerk, snap, crack vec.V3
	pot, time, step                  float64
}

// updateBytes is the wire size of one update: 18 coordinates + 3 scalars
// + id ≈ 176 bytes.
const updateBytes = 176

// makeUpdate snapshots particle i of sys.
func makeUpdate(sys *nbody.System, i int) update {
	return update{
		id:  sys.ID[i],
		pos: sys.Pos[i], vel: sys.Vel[i], acc: sys.Acc[i], jerk: sys.Jerk[i],
		snap: sys.Snap[i], crack: sys.Crack[i],
		pot: sys.Pot[i], time: sys.Time[i], step: sys.Step[i],
	}
}

// applyUpdate overwrites particle state; idx maps particle id → slot.
func applyUpdate(sys *nbody.System, idx idIndex, u update) {
	i, ok := idx.slot(u.id)
	if !ok {
		return // this host does not store the particle
	}
	sys.Pos[i], sys.Vel[i] = u.pos, u.vel
	sys.Acc[i], sys.Jerk[i] = u.acc, u.jerk
	sys.Snap[i], sys.Crack[i] = u.snap, u.crack
	sys.Pot[i], sys.Time[i], sys.Step[i] = u.pot, u.time, u.step
}

// idIndex maps particle id → local slot. Every driver carves its subsets
// from contiguous id ranges (and the copy algorithm's replicas have
// id == slot), so the common case is a bounds check plus a subtraction —
// the map lookups used to be a top cost of applying updates at hundreds
// of ranks. A map fallback keeps arbitrary id layouts working.
type idIndex struct {
	lo, hi int // contiguous id range [lo, hi) mapping to slots 0..hi-lo
	m      map[int]int
}

// slot returns the local slot of id; unknown ids return (0, false).
//
//grape:noalloc
func (ix idIndex) slot(id int) (int, bool) {
	if ix.m == nil {
		if id < ix.lo || id >= ix.hi {
			return 0, false
		}
		return id - ix.lo, true
	}
	i, ok := ix.m[id]
	return i, ok
}

// indexByID builds the id → slot index of a system.
func indexByID(sys *nbody.System) idIndex {
	contiguous := sys.N > 0
	for i := 0; i < sys.N; i++ {
		if sys.ID[i] != sys.ID[0]+i {
			contiguous = false
			break
		}
	}
	if contiguous {
		return idIndex{lo: sys.ID[0], hi: sys.ID[0] + sys.N}
	}
	m := make(map[int]int, sys.N)
	for i := 0; i < sys.N; i++ {
		m[sys.ID[i]] = i
	}
	return idIndex{m: m}
}

// initForces performs the shared initialisation: forces, potentials and
// startup timesteps for the whole system at its (common) initial time,
// exactly as hermite.New does — INCLUDING going through the configured
// backend type, so that a run on emulated hardware starts from
// hardware-rounded initial forces and stays bit-comparable with a
// single-host run on the same hardware. Every parallel algorithm starts
// from this common state.
func initForces(sys *nbody.System, cfg Config) error {
	p := cfg.Params
	if err := p.Validate(); err != nil {
		return err
	}
	if err := sys.Validate(); err != nil {
		return err
	}
	if sys.N == 0 {
		return fmt.Errorf("parallel: empty system")
	}
	t0 := sys.Time[0]
	for _, t := range sys.Time {
		if t != t0 {
			return fmt.Errorf("parallel: unsynchronised initial times")
		}
	}
	b := cfg.backendFor(-1)
	b.Load(sys)
	ids := make([]int, sys.N)
	for i := range ids {
		ids[i] = sys.ID[i]
	}
	var fbuf []direct.Force
	fs := evalForces(&fbuf, b, t0, ids, sys.Pos, sys.Vel, p.Eps)
	for i := 0; i < sys.N; i++ {
		sys.Acc[i] = fs[i].Acc
		sys.Jerk[i] = fs[i].Jerk
		sys.Pot[i] = fs[i].Pot
		if p.Eps > 0 {
			sys.Pot[i] += sys.Mass[i] / p.Eps
		}
		sys.Snap[i] = vec.Zero
		sys.Crack[i] = vec.Zero
		sys.Step[i] = hermite.QuantizeInitial(
			hermite.InitialStep(fs[i].Acc, fs[i].Jerk, p.EtaS), p.MinStep, p.MaxStep)
	}
	return nil
}

// evalForces evaluates block forces through b, preferring the
// allocation-free ForcesInto path when the backend provides it. The result
// aliases *buf, which is grown on demand and reused across calls — callers
// must consume it before the next evalForces call on the same buffer.
func evalForces(buf *[]direct.Force, b hermite.Backend, t float64, ids []int, xs, vs []vec.V3, eps float64) []direct.Force {
	fb, ok := b.(hermite.ForcesIntoBackend)
	if !ok {
		return b.Forces(t, ids, xs, vs, eps)
	}
	if cap(*buf) < len(ids) {
		*buf = make([]direct.Force, len(ids))
	}
	return fb.ForcesInto((*buf)[:len(ids)], t, ids, xs, vs, eps)
}

// blockAppend appends the indices of particles whose next time equals t
// to dst — the buffer-reusing form the drivers call once per block round
// (pass buf[:0] to recycle).
func blockAppend(dst []int, sys *nbody.System, t float64) []int {
	for i := 0; i < sys.N; i++ {
		if sys.Time[i]+sys.Step[i] == t {
			dst = append(dst, i)
		}
	}
	return dst
}

// blockAt returns the indices of particles whose next time equals t.
func blockAt(sys *nbody.System, t float64) []int {
	return blockAppend(nil, sys, t)
}

// correctParticle applies the Hermite corrector and timestep update to
// particle i using the freshly evaluated force f at time t, and returns
// the update record. eps handles the self-potential fix.
func correctParticle(sys *nbody.System, i int, f direct.Force, t float64, p hermite.Params) update {
	dt := t - sys.Time[i]
	x1, v1, snap1, crackle := hermite.Correct(sys.Pos[i], sys.Vel[i], sys.Acc[i], sys.Jerk[i], f.Acc, f.Jerk, dt)
	sys.Pos[i], sys.Vel[i] = x1, v1
	sys.Acc[i], sys.Jerk[i] = f.Acc, f.Jerk
	sys.Snap[i], sys.Crack[i] = snap1, crackle
	sys.Pot[i] = f.Pot
	if p.Eps > 0 {
		sys.Pot[i] += sys.Mass[i] / p.Eps
	}
	sys.Time[i] = t
	desired := hermite.AarsethStep(f.Acc, f.Jerk, snap1, crackle, p.Eta)
	sys.Step[i] = hermite.NextStep(sys.Step[i], desired, t, p.MinStep, p.MaxStep)
	return makeUpdate(sys, i)
}

// gatherUpdates performs a recursive-doubling allgather of update lists
// among `size` hosts (power of two): after log2(size) rounds every host
// holds the concatenation of all lists. Tag space: tagBase must be unique
// per call site and block round.
func gatherUpdates(p *des.Proc, net *simnet.Network, rank, size, tagBase int, local []update) []update {
	for bit := 1; bit < size; bit <<= 1 {
		peer := rank ^ bit
		// Ship a private copy: simnet delivers the payload at a LATER
		// virtual time, and the caller keeps appending to (and finally
		// sorts) its own list — sending the live slice would let those
		// mutations corrupt the in-flight message.
		out := make([]update, len(local))
		copy(out, local)
		net.Send(rank, peer, tagBase+bit, len(out)*updateBytes, out)
		msg := net.Recv(p, rank, tagBase+bit)
		local = append(local, msg.Payload.([]update)...)
	}
	return local
}

// allreduceMin returns the minimum of each host's local value via a
// butterfly exchange. Blocked-receive time inside the butterfly is the
// block-time agreement barrier, so it is attributed to the Sync phase on
// rec (nil rec: no accounting).
func allreduceMin(p *des.Proc, net *simnet.Network, rank, size, tagBase int, local float64, rec *vtrace.Recorder) float64 {
	old := rec.SetWait(vtrace.Sync)
	v := net.Butterfly(p, rank, size, tagBase, 8, local, func(a, b interface{}) interface{} {
		if b.(float64) < a.(float64) {
			return b
		}
		return a
	})
	rec.SetWait(old)
	return v.(float64)
}

// newTraceSet builds the accounting set for a run, attaching it to the
// network — or returns nil (and attaches nothing) when recording is off.
func newTraceSet(cfg Config, net *simnet.Network) *vtrace.Set {
	if !cfg.Record {
		return nil
	}
	set := vtrace.NewSet(cfg.Hosts)
	net.Observe(set)
	return set
}

// attachRecorder wires rank h's recorder (if any) into the process so
// SleepAs spans land on it, and returns it for the driver's own calls.
func attachRecorder(p *des.Proc, set *vtrace.Set, h int) *vtrace.Recorder {
	rec := set.Recorder(h)
	if rec != nil {
		p.Observe(rec)
	}
	return rec
}

// finishTrace closes the accounting at the engine end time, enforces the
// span-tiling invariant on every rank, and publishes the breakdown.
func finishTrace(set *vtrace.Set, res *Result, end float64) error {
	if set == nil {
		return nil
	}
	set.Close(end)
	if err := set.Check(end); err != nil {
		return err
	}
	res.Trace = set
	res.Breakdown = set.Breakdown()
	return nil
}

// sortByID orders updates deterministically (hosts may receive them in
// topology-dependent order; applying is overwrite-idempotent, but sorted
// order keeps debugging output stable).
func sortByID(us []update) {
	sort.Slice(us, func(i, j int) bool { return us[i].id < us[j].id })
}

// isPow2 reports whether n is a positive power of two.
func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }
