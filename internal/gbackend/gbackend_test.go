package gbackend

import (
	"math"
	"testing"

	"grape6/internal/board"
	"grape6/internal/hermite"
	"grape6/internal/model"
	"grape6/internal/nbody"
	"grape6/internal/units"
	"grape6/internal/vec"
	"grape6/internal/xrand"
)

// tinyArray is a small hardware configuration for cheap functional tests.
func tinyArray() *board.Array {
	cfg := board.Default
	cfg.ChipsPerModule = 2
	cfg.ModulesPerBoard = 2
	cfg.Boards = 1
	return board.New(cfg)
}

func TestImplementsBackend(t *testing.T) {
	var _ hermite.Backend = New(tinyArray())
}

func TestForcesMatchDirectBackend(t *testing.T) {
	sys := model.Plummer(96, xrand.New(1))
	eps := 1.0 / 64

	gb := New(tinyArray())
	gb.Load(sys)
	db := hermite.NewDirectBackend()
	db.Load(sys)

	ids := make([]int, 16)
	for i := range ids {
		ids[i] = i
	}
	fg := gb.Forces(0, ids, sys.Pos[:16], sys.Vel[:16], eps)
	fd := db.Forces(0, ids, sys.Pos[:16], sys.Vel[:16], eps)

	for i := range ids {
		relA := fg[i].Acc.Dist(fd[i].Acc) / fd[i].Acc.Norm()
		if relA > 1e-4 {
			t.Errorf("i=%d acc relative error %v", i, relA)
		}
		// GRAPE includes self-potential -m/eps; the direct backend with
		// eps>0 includes it too (skip == -1 semantics differ)... both
		// include it, so compare directly.
		relP := math.Abs(fg[i].Pot-fd[i].Pot) / math.Abs(fd[i].Pot)
		if relP > 1e-4 {
			t.Errorf("i=%d pot relative error %v", i, relP)
		}
	}
	if gb.HWCycles <= 0 {
		t.Error("no hardware cycles recorded")
	}
}

func TestOverflowRetryConverges(t *testing.T) {
	// Fresh system: default exponents may be wrong for extreme masses;
	// the retry loop must converge and give correct forces.
	sys := nbody.New(2)
	sys.Mass[0], sys.Mass[1] = 1e9, 1e9
	sys.Pos[0] = vec.New(-0.5, 0, 0)
	sys.Pos[1] = vec.New(0.5, 0, 0)

	gb := New(tinyArray())
	gb.Load(sys)
	fs := gb.Forces(0, []int{0, 1}, sys.Pos, sys.Vel, 0.01)
	// a on 0 from 1: m/(r²+ε²)^{3/2} with r=1, ε=0.01.
	want := 1e9 / math.Pow(1.0001, 1.5)
	if math.Abs(fs[0].Acc.X-want)/want > 1e-5 {
		t.Errorf("acc after retries = %v, want %v", fs[0].Acc, want)
	}
	if gb.Retries == 0 {
		t.Error("expected at least one overflow retry for extreme masses")
	}
}

func TestIntegrationMatchesDirect(t *testing.T) {
	// Full Hermite integration on the emulated hardware must track the
	// float64 reference closely over a short run.
	mk := func() *nbody.System { return model.Plummer(64, xrand.New(9)) }
	eps := 1.0 / 64
	p := hermite.DefaultParams(eps)

	sd := mk()
	itD, err := hermite.New(sd, hermite.NewDirectBackend(), p)
	if err != nil {
		t.Fatal(err)
	}
	itD.Run(0.125)

	sg := mk()
	itG, err := hermite.New(sg, New(tinyArray()), p)
	if err != nil {
		t.Fatal(err)
	}
	itG.Run(0.125)

	var maxDev float64
	for i := 0; i < sd.N; i++ {
		if d := sd.Pos[i].Dist(sg.Pos[i]); d > maxDev {
			maxDev = d
		}
	}
	if maxDev > 1e-3 {
		t.Errorf("max position deviation from reference = %v", maxDev)
	}
}

func TestEnergyConservationOnHardware(t *testing.T) {
	sys := model.Plummer(64, xrand.New(5))
	eps := 1.0 / 64
	it, err := hermite.New(sys, New(tinyArray()), hermite.DefaultParams(eps))
	if err != nil {
		t.Fatal(err)
	}
	e0 := it.Energy()
	it.Run(0.25)
	e1 := it.Energy()
	if rel := math.Abs((e1 - e0) / e0); rel > 1e-4 {
		t.Errorf("energy error on emulated hardware = %v", rel)
	}
}

func TestMachineSizeIndependentTrajectories(t *testing.T) {
	// The paper's validation property, end to end: integrating the same
	// system on hardware of different sizes gives BIT-IDENTICAL
	// trajectories, because block-floating-point summation is exact.
	run := func(boards int) *nbody.System {
		cfg := board.Default
		cfg.ChipsPerModule = 2
		cfg.ModulesPerBoard = 2
		cfg.Boards = boards
		sys := model.Plummer(48, xrand.New(21))
		it, err := hermite.New(sys, New(board.New(cfg)), hermite.DefaultParams(1.0/64))
		if err != nil {
			t.Fatal(err)
		}
		it.Run(0.125)
		return sys
	}
	a := run(1)
	b := run(4)
	for i := 0; i < a.N; i++ {
		if a.Pos[i] != b.Pos[i] || a.Vel[i] != b.Vel[i] {
			t.Fatalf("particle %d differs between 1-board and 4-board machines: %v vs %v",
				i, a.Pos[i], b.Pos[i])
		}
	}
}

func TestRangeClampingSurvivesEscapers(t *testing.T) {
	sys := nbody.New(2)
	sys.Mass[0], sys.Mass[1] = 0.5, 0.5
	sys.Pos[0] = vec.New(1e7, 0, 0) // beyond the 2^19 coordinate range
	sys.Pos[1] = vec.New(0, 0, 0)
	gb := New(tinyArray())
	gb.Load(sys)
	if gb.RangeClamps == 0 {
		t.Error("escaper was not clamped")
	}
	// Forces must still be finite.
	fs := gb.Forces(0, []int{1}, sys.Pos[1:], sys.Vel[1:], 0.01)
	if !fs[0].Acc.IsFinite() {
		t.Errorf("non-finite force near clamped escaper: %v", fs[0].Acc)
	}
}

func TestUnknownIDPanics(t *testing.T) {
	sys := model.Plummer(8, xrand.New(2))
	gb := New(tinyArray())
	gb.Load(sys)
	defer func() {
		if recover() == nil {
			t.Error("unknown id did not panic")
		}
	}()
	gb.Forces(0, []int{999}, sys.Pos[:1], sys.Vel[:1], 0.01)
}

func TestHWCyclesGrowWithWork(t *testing.T) {
	sys := model.Plummer(128, xrand.New(3))
	gb := New(tinyArray())
	gb.Load(sys)
	ids := []int{0}
	gb.Forces(0, ids, sys.Pos[:1], sys.Vel[:1], 0.01)
	c1 := gb.HWCycles
	gb.Forces(0, ids, sys.Pos[:1], sys.Vel[:1], 0.01)
	if gb.HWCycles <= c1 {
		t.Error("cycles did not accumulate")
	}
}

func TestSpeedAccountingPlausible(t *testing.T) {
	// Sanity-check the cycle model: the effective pairwise rate of the
	// tiny 4-chip array on a saturating workload should be within a factor
	// of a few of its nominal 4 chips × 6 pipelines = 24 pairs/cycle.
	sys := model.Plummer(512, xrand.New(4))
	gb := New(tinyArray())
	gb.Load(sys)
	ids := make([]int, 48)
	for i := range ids {
		ids[i] = i
	}
	gb.HWCycles = 0
	gb.Forces(0, ids, sys.Pos[:48], sys.Vel[:48], 1.0/64)
	pairs := float64(48 * 512)
	perCycle := pairs / float64(gb.HWCycles)
	if perCycle < 10 || perCycle > 24 {
		t.Errorf("pairs per cycle = %v, want within (10, 24]", perCycle)
	}
	_ = units.FlopsPerInteraction
}

func TestIntegrationTileInvariant(t *testing.T) {
	// The j-tile length is a pure host-performance knob: a full Hermite
	// integration on the emulated hardware must be bit-identical under any
	// tile size, down to the last position bit — the end-to-end face of
	// the chip-level tile-invariance property.
	eps := 1.0 / 64
	run := func(tileJ int) *nbody.System {
		sys := model.Plummer(64, xrand.New(9))
		cfg := board.Default
		cfg.ChipsPerModule = 2
		cfg.ModulesPerBoard = 2
		cfg.Boards = 1
		cfg.Chip.TileJ = tileJ
		arr := board.New(cfg)
		defer arr.Close()
		it, err := hermite.New(sys, New(arr), hermite.DefaultParams(eps))
		if err != nil {
			t.Fatal(err)
		}
		it.Run(0.0625)
		return sys
	}
	want := run(0) // cache-model default
	got := run(13) // awkward prime tile
	for i := 0; i < want.N; i++ {
		if want.Pos[i] != got.Pos[i] || want.Vel[i] != got.Vel[i] {
			t.Fatalf("particle %d state differs between tile sizes", i)
		}
	}
}
