// Package gbackend adapts the emulated GRAPE-6 hardware (a board.Array) to
// the integrator's Backend interface, playing the role of the host-side
// GRAPE library: it keeps the hardware's j-particle memory in sync with
// the integrator, chooses block-floating-point exponents (from the
// previous step's force, per Section 3.4), retries on overflow, and
// accounts the hardware cycles consumed so the timing layer can convert
// the run into the paper's performance numbers.
package gbackend

import (
	"fmt"

	"grape6/internal/board"
	"grape6/internal/chip"
	"grape6/internal/direct"
	"grape6/internal/gfixed"
	"grape6/internal/nbody"
	"grape6/internal/vec"
)

// headroom is the exponent margin above the expected result magnitude.
const headroom = 6

// maxRetries bounds the overflow-retry loop; exceeding it indicates a
// non-finite force (e.g. an unsoftened collision) rather than a bad guess.
const maxRetries = 12

// Array is the hardware contract the backend drives: the subset of
// *board.Array the GRAPE library layer actually uses. A dedicated
// attachment satisfies it directly; a multi-tenant lease from the
// grape6d scheduler satisfies it by routing force evaluations through
// the shared fleet. The backend cannot tell the difference — by the
// scheduler's bit-exactness contract, a leased array returns the same
// result bits (and the same per-request cycle counts) as a dedicated one.
type Array interface {
	// LoadJ installs a j-set (see board.Array.LoadJ).
	LoadJ(ps []chip.JParticle) error
	// UpdateJ rewrites the memory image of a loaded particle.
	UpdateJ(p chip.JParticle) error
	// ForcesInto evaluates forces on is at time t into dst and returns
	// the hardware cycles consumed.
	ForcesInto(dst []chip.Partial, t float64, is []chip.IParticle, eps float64) int64
	// BeginPredict starts the j-memory predictor for time t in the
	// background (may be a no-op).
	BeginPredict(t float64)
	// NJ returns the number of loaded j-particles.
	NJ() int
	// Config returns the attachment's hardware configuration.
	Config() board.Config
	// Close releases the attachment's resources.
	Close()
}

// Backend drives an Array — a dedicated board.Array or a scheduler
// lease — as the force engine of a Hermite integration.
type Backend struct {
	arr Array
	f   gfixed.Format

	// owned records whether Close tears the array down. New hands the
	// backend a dedicated attachment it owns outright; NewBorrowed
	// attaches to shared hardware (a scheduler lease, or an array another
	// component owns) that Close must leave running — a borrowed fleet
	// has other tenants.
	owned  bool
	closed bool

	// Host-side mirror of the hardware memory image, used to predict
	// i-particles through the chip's exact datapath (so self-pairs cancel
	// bit-exactly) and to rebuild particles on update. The mirror and the
	// per-particle exponent tables persist across Load calls (grow-only),
	// so Update patches only the changed slots and a reload reuses the
	// fixed-point-ready staging wholesale.
	js   []chip.JParticle
	expA []int // per-particle block exponents (previous-step guess)
	expJ []int
	expP []int

	// id → js index. idIdx is the dense fast path used when ids are
	// compact (the 0..N-1 common case: one array read per i-particle on
	// the hot Forces/Update paths); byID is the sparse fallback.
	idIdx []int32
	byID  map[int]int

	// Counters for performance accounting and diagnostics.
	HWCycles    int64 // hardware busy cycles
	Retries     int64 // overflow-retry force evaluations
	RangeClamps int64 // coordinates clamped to the fixed-point range

	// Scratch reused across Forces calls so that a steady-state block step
	// allocates nothing: i-particle staging, retry bookkeeping, and the
	// hardware partial-result slab.
	isBuf    []chip.IParticle
	ksBuf    []int
	batch    []chip.IParticle
	pending  []int
	again    []int
	partials []chip.Partial
}

// New returns a Backend that owns the given hardware attachment: Close
// shuts the array's worker pool down with the backend.
func New(arr *board.Array) *Backend {
	return &Backend{arr: arr, owned: true, f: arr.Config().Chip.Format, byID: make(map[int]int)}
}

// NewBorrowed returns a Backend over hardware it does not own — a
// grape6d scheduler lease, or a dedicated array whose lifecycle someone
// else manages. Close detaches without closing the array, so other
// tenants of a shared fleet are unaffected.
func NewBorrowed(arr Array) *Backend {
	return &Backend{arr: arr, owned: false, f: arr.Config().Chip.Format, byID: make(map[int]int)}
}

// Array exposes the underlying hardware (for inspection in tests and the
// timing layer).
func (b *Backend) Array() Array { return b.arr }

// Owned reports whether Close tears down the underlying array.
func (b *Backend) Owned() bool { return b.owned }

// NJ implements hermite.Backend.
func (b *Backend) NJ() int { return b.arr.NJ() }

// Load implements hermite.Backend.
func (b *Backend) Load(sys *nbody.System) {
	b.js = growSlice(b.js, sys.N)[:sys.N]
	b.expA = growSlice(b.expA, sys.N)[:sys.N]
	b.expJ = growSlice(b.expJ, sys.N)[:sys.N]
	b.expP = growSlice(b.expP, sys.N)[:sys.N]
	b.rebuildIDIndex(sys)
	for i := 0; i < sys.N; i++ {
		b.js[i] = b.makeJ(sys, i)
		b.expA[i], b.expJ[i], b.expP[i] = b.guessExponents(sys, i)
	}
	if err := b.arr.LoadJ(b.js); err != nil {
		// Loads can only fail on capacity, a configuration error.
		panic(fmt.Sprintf("gbackend: %v", err))
	}
}

// rebuildIDIndex installs the dense id table when the id space is
// compact, the map otherwise.
func (b *Backend) rebuildIDIndex(sys *nbody.System) {
	maxID := -1
	compact := true
	for i := 0; i < sys.N; i++ {
		id := sys.ID[i]
		if id < 0 {
			compact = false
			break
		}
		if id > maxID {
			maxID = id
		}
	}
	clear(b.byID)
	if !compact || maxID >= 2*sys.N+64 {
		b.idIdx = b.idIdx[:0]
		for i := 0; i < sys.N; i++ {
			b.byID[sys.ID[i]] = i
		}
		return
	}
	if cap(b.idIdx) < maxID+1 {
		b.idIdx = make([]int32, maxID+1)
	}
	b.idIdx = b.idIdx[:maxID+1]
	for k := range b.idIdx {
		b.idIdx[k] = -1
	}
	for i := 0; i < sys.N; i++ {
		b.idIdx[sys.ID[i]] = int32(i)
	}
}

// slotOf returns the js index of id.
//
//grape:noalloc
func (b *Backend) slotOf(id int) (int, bool) {
	if d := b.idIdx; len(d) > 0 {
		if id < 0 || id >= len(d) {
			return 0, false
		}
		if v := d[id]; v >= 0 {
			return int(v), true
		}
		return 0, false
	}
	v, ok := b.byID[id]
	return v, ok
}

// Update implements hermite.Backend.
func (b *Backend) Update(sys *nbody.System, idx []int) {
	for _, i := range idx {
		j := b.makeJ(sys, i)
		k, ok := b.slotOf(sys.ID[i])
		if !ok {
			panic(fmt.Sprintf("gbackend: update of unknown particle id %d", sys.ID[i]))
		}
		b.js[k] = j
		if err := b.arr.UpdateJ(j); err != nil {
			panic(fmt.Sprintf("gbackend: %v", err))
		}
		b.expA[k], b.expJ[k], b.expP[k] = b.guessExponents(sys, i)
	}
}

// makeJ converts one particle to the hardware format, clamping
// out-of-range coordinates (escapers) to the format's edge.
func (b *Backend) makeJ(sys *nbody.System, i int) chip.JParticle {
	p, err := chip.MakeJParticle(b.f, sys.ID[i], sys.Time[i], sys.Mass[i],
		sys.Pos[i], sys.Vel[i], sys.Acc[i], sys.Jerk[i], sys.Snap[i])
	if err != nil {
		b.RangeClamps++
		clamped := clampV3(sys.Pos[i], b.f.PosRange()*0.999)
		p, err = chip.MakeJParticle(b.f, sys.ID[i], sys.Time[i], sys.Mass[i],
			clamped, sys.Vel[i], sys.Acc[i], sys.Jerk[i], sys.Snap[i])
		if err != nil {
			panic(fmt.Sprintf("gbackend: clamp failed: %v", err))
		}
	}
	return p
}

func clampV3(v vec.V3, lim float64) vec.V3 {
	cl := func(x float64) float64 {
		if x > lim {
			return lim
		}
		if x < -lim {
			return -lim
		}
		return x
	}
	return vec.New(cl(v.X), cl(v.Y), cl(v.Z))
}

// guessExponents derives block exponents from the particle's last known
// force — the "value of the exponent at the previous timestep is almost
// always okay" strategy of Section 3.4.
func (b *Backend) guessExponents(sys *nbody.System, i int) (ea, ej, ep int) {
	ea = gfixed.ExponentFor(sys.Acc[i].MaxAbs(), headroom)
	ej = gfixed.ExponentFor(sys.Jerk[i].MaxAbs(), headroom)
	ep = gfixed.ExponentFor(sys.Pot[i], headroom)
	// Fresh systems have zero forces; start from an O(1) guess.
	if sys.Acc[i] == vec.Zero {
		ea = headroom + 2
	}
	if sys.Jerk[i] == vec.Zero {
		ej = headroom + 4
	}
	if sys.Pot[i] == 0 {
		ep = headroom + 4
	}
	return ea, ej, ep
}

// BeginPredict implements hermite.PredictAheadBackend: it starts the
// hardware predictor pipeline for time t in the background so the
// j-memory prediction runs concurrently with host-side work (the
// paper's §6 host/GRAPE overlap). The next memory operation on the
// array joins it; results are bit-identical to a synchronous predict.
func (b *Backend) BeginPredict(t float64) { b.arr.BeginPredict(t) }

// Yield implements hermite.YieldBackend by forwarding to the array when
// it is a multi-tenant lease (anything exposing a Yield method); a
// dedicated attachment has no other tenants to yield to, so the hint is
// dropped.
func (b *Backend) Yield() {
	if y, ok := b.arr.(interface{ Yield() }); ok {
		y.Yield()
	}
}

// Forces implements hermite.Backend. Allocating wrapper over ForcesInto.
func (b *Backend) Forces(t float64, ids []int, xi, vi []vec.V3, eps float64) []direct.Force {
	return b.ForcesInto(make([]direct.Force, len(ids)), t, ids, xi, vi, eps)
}

// ForcesInto is the reuse-friendly force path: results are written into
// the caller-owned dst (len(dst) must be ≥ len(ids)) and the filled prefix
// is returned. All staging buffers — i-particles, retry bookkeeping and
// the hardware partial slab — live on the Backend, so a steady-state block
// step performs no heap allocation from the integrator down to the chips.
//
// The supplied (xi, vi) host predictions are intentionally ignored: the
// backend predicts i-particles through the chip's own datapath, which both
// matches the hardware behaviour (the same predictor feeds both sides) and
// guarantees that self-pairs cancel exactly.
func (b *Backend) ForcesInto(dst []direct.Force, t float64, ids []int, xi, vi []vec.V3, eps float64) []direct.Force {
	n := len(ids)
	if len(dst) < n {
		panic(fmt.Sprintf("gbackend: force buffer of %d for %d i-particles", len(dst), n))
	}
	out := dst[:n]
	// Kick the hardware predictor for t now so it stripes the j-memory
	// across the worker pool while the host stages i-particles below —
	// the predictor/host overlap of §6. ForcesInto on the array joins it.
	b.arr.BeginPredict(t)
	b.isBuf = growSlice(b.isBuf, n)
	b.ksBuf = growSlice(b.ksBuf, n)
	is, ks := b.isBuf, b.ksBuf
	for q, id := range ids {
		k, ok := b.slotOf(id)
		if !ok {
			panic(fmt.Sprintf("gbackend: unknown particle id %d", id))
		}
		ks[q] = k
		x, v := chip.PredictParticle(b.f, &b.js[k], t)
		is[q] = chip.IParticle{
			X: x, V: v, SelfID: id,
			ExpAcc: b.expA[k], ExpJerk: b.expJ[k], ExpPot: b.expP[k],
		}
	}

	pending := b.pending[:0] // indices into is/out still to resolve
	for q := 0; q < n; q++ {
		pending = append(pending, q)
	}
	next := b.again[:0]

	for round := 0; len(pending) > 0; round++ {
		if round > maxRetries {
			panic(fmt.Sprintf("gbackend: force exponent did not converge after %d retries "+
				"(non-finite force, e.g. unsoftened collision?)", maxRetries))
		}
		b.batch = growSlice(b.batch, len(pending))
		batch := b.batch[:len(pending)]
		for q, p := range pending {
			batch[q] = is[p]
		}
		b.partials = growSlice(b.partials, len(batch))
		ps := b.partials[:len(batch)]
		b.HWCycles += b.arr.ForcesInto(ps, t, batch, eps)
		if round > 0 {
			b.Retries++
		}

		next = next[:0]
		for q, p := range pending {
			if ps[q].Overflowed() {
				// Bump the failing groups and retry — the hardware's
				// repeat-with-better-exponent protocol.
				k := ks[p]
				if anyOverflow(ps[q].Acc[:]) {
					b.expA[k] += 8
				}
				if anyOverflow(ps[q].Jerk[:]) {
					b.expJ[k] += 8
				}
				if ps[q].Pot.Overflow {
					b.expP[k] += 8
				}
				is[p].ExpAcc, is[p].ExpJerk, is[p].ExpPot = b.expA[k], b.expJ[k], b.expP[k]
				next = append(next, p)
				continue
			}
			acc, jerk, pot := chip.PartialValues(&ps[q])
			out[p] = direct.Force{
				Acc: acc, Jerk: jerk, Pot: pot,
				NN: ps[q].NN, NND2: ps[q].NND2,
			}
		}
		pending, next = next, pending
	}
	b.pending, b.again = pending[:0], next[:0]
	return out
}

// Close releases the hardware attachment. An owned array is closed
// exactly once (repeat Closes are no-ops); a borrowed array is never
// closed — on a shared fleet that would tear down other tenants' silicon.
func (b *Backend) Close() {
	if b.closed {
		return
	}
	b.closed = true
	if b.owned {
		b.arr.Close()
	}
}

// growSlice returns s with length ≥ n, reallocating only on growth.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

func anyOverflow(as []gfixed.Accum) bool {
	for _, a := range as {
		if a.Overflow {
			return true
		}
	}
	return false
}
