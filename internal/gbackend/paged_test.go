package gbackend

import (
	"testing"

	"grape6/internal/board"
	"grape6/internal/direct"
	"grape6/internal/hermite"
	"grape6/internal/model"
	"grape6/internal/nbody"
	"grape6/internal/xrand"
)

// TestIntegrationPagedBitIdentical: per-chip memory capacity is a pure
// host-resource knob — a full Hermite integration on an attachment whose
// j-set pages through tiny chip memories must be bit-identical to the
// fully resident run, down to the last position bit (the end-to-end face
// of the §3.4 partition invariance applied across pages).
func TestIntegrationPagedBitIdentical(t *testing.T) {
	eps := 1.0 / 64
	run := func(memCapacity int) *nbody.System {
		sys := model.Plummer(96, xrand.New(19))
		cfg := board.Default
		cfg.ChipsPerModule = 2
		cfg.ModulesPerBoard = 2
		cfg.Boards = 1 // 4 chips
		if memCapacity > 0 {
			cfg.Chip.MemCapacity = memCapacity
		}
		arr := board.New(cfg)
		defer arr.Close()
		it, err := hermite.New(sys, New(arr), hermite.DefaultParams(eps))
		if err != nil {
			t.Fatal(err)
		}
		it.Run(0.0625)
		return sys
	}
	want := run(0)  // resident: default 64k slots per chip
	got := run(7)   // paged: 28 resident slots for 96 particles
	got2 := run(24) // paged, different page geometry

	for i := 0; i < want.N; i++ {
		if want.Pos[i] != got.Pos[i] || want.Vel[i] != got.Vel[i] ||
			want.Time[i] != got.Time[i] || want.Step[i] != got.Step[i] {
			t.Fatalf("particle %d state differs between resident and paged (cap 7)", i)
		}
		if want.Pos[i] != got2.Pos[i] || want.Vel[i] != got2.Vel[i] {
			t.Fatalf("particle %d state differs between resident and paged (cap 24)", i)
		}
	}
}

// TestSparseIDsUseMapFallback pins the id-index fallback: a j-set whose
// ids are far from dense must resolve every lookup through the map and
// produce the same force bits as the dense-id twin (particle identity
// only relabels, never perturbs arithmetic — modulo the NN id itself).
func TestSparseIDsUseMapFallback(t *testing.T) {
	cfg := board.Default
	cfg.ChipsPerModule = 1
	cfg.ModulesPerBoard = 2
	cfg.Boards = 1

	force := func(sparse bool) ([]direct.Force, *Backend) {
		sys := model.Plummer(32, xrand.New(8))
		if sparse {
			for i := 0; i < sys.N; i++ {
				sys.ID[i] = 1000000 + 37*i
			}
		}
		arr := board.New(cfg)
		defer arr.Close()
		b := New(arr)
		b.Load(sys)
		out := make([]direct.Force, sys.N)
		b.ForcesInto(out, 0, sys.ID, sys.Pos, sys.Vel, 1.0/64)
		// One update round-trip through the lookup path as well.
		b.Update(sys, []int{0, 17, 31})
		return out, b
	}
	dense, db := force(false)
	sparse, sb := force(true)
	if len(db.idIdx) == 0 {
		t.Fatal("dense ids should use the array index")
	}
	if len(sb.idIdx) != 0 {
		t.Fatal("sparse ids should fall back to the map index")
	}
	for i := range dense {
		if dense[i].Acc != sparse[i].Acc || dense[i].Jerk != sparse[i].Jerk || dense[i].Pot != sparse[i].Pot {
			t.Fatalf("force %d differs between dense and sparse id spaces", i)
		}
	}
}
