package gbackend

import (
	"testing"

	"grape6/internal/board"
	"grape6/internal/model"
	"grape6/internal/xrand"
)

// closeCounter wraps an Array and counts Close calls, standing in for a
// shared fleet whose arrays must outlive any one tenant.
type closeCounter struct {
	Array
	closes int
}

func (c *closeCounter) Close() {
	c.closes++
	c.Array.Close()
}

func TestOwnedCloseIsIdempotent(t *testing.T) {
	arr := tinyArray()
	cc := &closeCounter{Array: arr}
	b := NewBorrowed(cc)
	b.owned = true // owned semantics over the counting wrapper
	if !b.Owned() {
		t.Fatal("backend not owned")
	}
	b.Close()
	b.Close()
	b.Close()
	if cc.closes != 1 {
		t.Errorf("owned array closed %d times across three backend Closes, want exactly 1", cc.closes)
	}
}

func TestBorrowedCloseLeavesArrayRunning(t *testing.T) {
	arr := tinyArray()
	defer arr.Close()
	cc := &closeCounter{Array: arr}

	sys := model.Plummer(64, xrand.New(9))
	b := NewBorrowed(cc)
	if b.Owned() {
		t.Fatal("NewBorrowed claims ownership")
	}
	b.Load(sys)
	b.Close()
	b.Close()
	if cc.closes != 0 {
		t.Fatalf("borrowed array closed %d times by backend Close; a shared fleet would lose its other tenants", cc.closes)
	}

	// The array must remain fully usable by the next tenant.
	next := NewBorrowed(arr)
	next.Load(sys)
	ids := []int{0, 1, 2, 3}
	fs := next.Forces(0, ids, nil, nil, 1.0/64)
	if len(fs) != len(ids) {
		t.Fatalf("got %d forces from array after borrowed Close, want %d", len(fs), len(ids))
	}
	next.Close()
}

// TestBorrowedMatchesOwned pins that the two construction paths drive the
// hardware identically: same bits out of the same workload.
func TestBorrowedMatchesOwned(t *testing.T) {
	sys := model.Plummer(96, xrand.New(3))
	eps := 1.0 / 64
	ids := make([]int, 24)
	for i := range ids {
		ids[i] = i
	}

	owned := New(tinyArray())
	defer owned.Close()
	owned.Load(sys)
	a := owned.Forces(0, ids, nil, nil, eps)

	arr := tinyArray()
	defer arr.Close()
	borrowed := NewBorrowed(arr)
	defer borrowed.Close()
	borrowed.Load(sys)
	b := borrowed.Forces(0, ids, nil, nil, eps)

	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("force %d differs between owned and borrowed backends:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// Interface conformance: a dedicated attachment satisfies the Array
// contract directly, as does the test wrapper.
var (
	_ Array = (*board.Array)(nil)
	_ Array = (*closeCounter)(nil)
)
