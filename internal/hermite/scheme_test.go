package hermite

import (
	"math"
	"testing"
	"testing/quick"

	"grape6/internal/vec"
)

func TestPredictConstantVelocity(t *testing.T) {
	x0 := vec.New(1, 2, 3)
	v0 := vec.New(1, 0, -1)
	xp, vp := Predict(x0, v0, vec.Zero, vec.Zero, vec.Zero, 2)
	if xp != vec.New(3, 2, 1) {
		t.Errorf("xp = %v", xp)
	}
	if vp != v0 {
		t.Errorf("vp = %v", vp)
	}
}

func TestPredictConstantAcceleration(t *testing.T) {
	a := vec.New(0, -10, 0)
	xp, vp := Predict(vec.Zero, vec.New(5, 0, 0), a, vec.Zero, vec.Zero, 1)
	if xp.Dist(vec.New(5, -5, 0)) > 1e-15 {
		t.Errorf("xp = %v", xp)
	}
	if vp.Dist(vec.New(5, -10, 0)) > 1e-15 {
		t.Errorf("vp = %v", vp)
	}
}

func TestPredictPolynomialExactness(t *testing.T) {
	// For a trajectory that IS a 4th-degree polynomial in t (constant
	// snap), the predictor must be exact.
	a0 := vec.New(1, -2, 0.5)
	j0 := vec.New(-0.3, 0.7, 1.1)
	s0 := vec.New(0.2, 0.1, -0.4)
	v0 := vec.New(3, -1, 2)
	x0 := vec.New(0.5, 0.25, -1)
	dt := 0.37
	xp, vp := Predict(x0, v0, a0, j0, s0, dt)

	// Direct evaluation.
	wantX := x0.
		AddScaled(dt, v0).
		AddScaled(dt*dt/2, a0).
		AddScaled(dt*dt*dt/6, j0).
		AddScaled(dt*dt*dt*dt/24, s0)
	wantV := v0.
		AddScaled(dt, a0).
		AddScaled(dt*dt/2, j0).
		AddScaled(dt*dt*dt/6, s0)
	if xp.Dist(wantX) > 1e-15 {
		t.Errorf("xp = %v, want %v", xp, wantX)
	}
	if vp.Dist(wantV) > 1e-15 {
		t.Errorf("vp = %v, want %v", vp, wantV)
	}
}

func TestCorrectRecoversPolynomialTrajectory(t *testing.T) {
	// Construct an acceleration that is a cubic polynomial of time:
	// a(t) = a0 + j0 t + s0 t²/2 + c0 t³/6. The Hermite corrector is exact
	// for such trajectories: reconstructed snap/crackle must match, and
	// the corrected (x1, v1) must equal the true Taylor series.
	a0 := vec.New(0.3, -1.2, 0.8)
	j0 := vec.New(-0.5, 0.4, 0.9)
	s0 := vec.New(1.5, -0.6, 0.2)
	c0 := vec.New(-0.8, 0.3, -1.1)
	x0 := vec.New(1, 2, 3)
	v0 := vec.New(-1, 0.5, 0.25)
	dt := 0.25

	// True end-of-step state from the Taylor series of the polynomial.
	at := func(t float64) vec.V3 {
		return a0.AddScaled(t, j0).AddScaled(t*t/2, s0).AddScaled(t*t*t/6, c0)
	}
	jt := func(t float64) vec.V3 {
		return j0.AddScaled(t, s0).AddScaled(t*t/2, c0)
	}
	a1, j1 := at(dt), jt(dt)

	xTrue := x0.
		AddScaled(dt, v0).
		AddScaled(dt*dt/2, a0).
		AddScaled(dt*dt*dt/6, j0).
		AddScaled(dt*dt*dt*dt/24, s0).
		AddScaled(dt*dt*dt*dt*dt/120, c0)
	vTrue := v0.
		AddScaled(dt, a0).
		AddScaled(dt*dt/2, j0).
		AddScaled(dt*dt*dt/6, s0).
		AddScaled(dt*dt*dt*dt/24, c0)

	x1, v1, snap1, crackle := Correct(x0, v0, a0, j0, a1, j1, dt)

	if crackle.Dist(c0) > 1e-10 {
		t.Errorf("crackle = %v, want %v", crackle, c0)
	}
	wantSnap1 := s0.AddScaled(dt, c0)
	if snap1.Dist(wantSnap1) > 1e-10 {
		t.Errorf("snap1 = %v, want %v", snap1, wantSnap1)
	}
	if x1.Dist(xTrue) > 1e-12 {
		t.Errorf("x1 = %v, want %v", x1, xTrue)
	}
	if v1.Dist(vTrue) > 1e-12 {
		t.Errorf("v1 = %v, want %v", v1, vTrue)
	}
}

func TestAarsethStep(t *testing.T) {
	a := vec.New(1, 0, 0)
	j := vec.New(0, 1, 0)
	s := vec.New(0, 0, 1)
	c := vec.New(1, 1, 1)
	// num = |a||s| + |j|² = 2; den = |j||c| + |s|² = √3 + 1.
	want := 0.02 * math.Sqrt(2/(math.Sqrt(3)+1))
	got := AarsethStep(a, j, s, c, 0.02)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("AarsethStep = %v, want %v", got, want)
	}
}

func TestAarsethStepZeroDenominator(t *testing.T) {
	got := AarsethStep(vec.New(1, 0, 0), vec.Zero, vec.Zero, vec.Zero, 0.02)
	if !math.IsInf(got, 1) {
		t.Errorf("AarsethStep with zero derivatives = %v, want +Inf", got)
	}
}

func TestInitialStep(t *testing.T) {
	got := InitialStep(vec.New(2, 0, 0), vec.New(0, 4, 0), 0.01)
	if math.Abs(got-0.005) > 1e-18 {
		t.Errorf("InitialStep = %v", got)
	}
	if !math.IsInf(InitialStep(vec.New(1, 0, 0), vec.Zero, 0.01), 1) {
		t.Error("InitialStep with zero jerk should be +Inf")
	}
}

func TestFloorPow2(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{1, 1}, {1.5, 1}, {2, 2}, {3.999, 2}, {4, 4},
		{0.75, 0.5}, {0.5, 0.5}, {0.26, 0.25},
		{1e-9, math.Ldexp(1, -30)},
	}
	for _, c := range cases {
		if got := floorPow2(c.in); got != c.want {
			t.Errorf("floorPow2(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if floorPow2(0) != 0 || floorPow2(-1) != 0 {
		t.Error("floorPow2 of non-positive should be 0")
	}
	if !math.IsInf(floorPow2(math.Inf(1)), 1) {
		t.Error("floorPow2(+Inf) should be +Inf")
	}
	if floorPow2(math.NaN()) != 0 {
		t.Error("floorPow2(NaN) should be 0")
	}
}

func TestPropFloorPow2(t *testing.T) {
	f := func(x float64) bool {
		x = math.Abs(x)
		if x == 0 || math.IsInf(x, 0) || math.IsNaN(x) || x < 1e-300 || x > 1e300 {
			return true
		}
		p := floorPow2(x)
		if p > x || 2*p <= x {
			return false
		}
		fr, _ := math.Frexp(p)
		return fr == 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeInitial(t *testing.T) {
	if got := QuantizeInitial(0.3, 1.0/1024, 0.125); got != 0.125 {
		t.Errorf("clamped to max: %v", got)
	}
	if got := QuantizeInitial(1e-9, 1.0/1024, 0.125); got != 1.0/1024 {
		t.Errorf("clamped to min: %v", got)
	}
	if got := QuantizeInitial(0.07, 1.0/1024, 0.125); got != 0.0625 {
		t.Errorf("power of two floor: %v", got)
	}
}

func TestNextStepShrinksFreely(t *testing.T) {
	got := NextStep(0.25, 0.01, 1.0, 1.0/1024, 0.25)
	// Halve until ≤ desired: 0.25→0.125→0.0625→...→0.0078125.
	if got != 1.0/128 {
		t.Errorf("NextStep shrink = %v, want %v", got, 1.0/128)
	}
}

func TestNextStepGrowsOnlyWhenCommensurate(t *testing.T) {
	// At t = 0.375 a step of 0.125 may NOT double to 0.25 (0.375/0.25 is
	// not integral).
	if got := NextStep(0.125, 1.0, 0.375, 1.0/1024, 1.0); got != 0.125 {
		t.Errorf("grew at non-commensurate time: %v", got)
	}
	// At t = 0.5 it may.
	if got := NextStep(0.125, 1.0, 0.5, 1.0/1024, 1.0); got != 0.25 {
		t.Errorf("did not grow at commensurate time: %v", got)
	}
}

func TestNextStepGrowsAtMostOnce(t *testing.T) {
	// Even with desired far larger, only one doubling per update.
	if got := NextStep(0.125, 100.0, 1.0, 1.0/1024, 1.0); got != 0.25 {
		t.Errorf("NextStep grew more than one doubling: %v", got)
	}
}

func TestNextStepRespectsBounds(t *testing.T) {
	if got := NextStep(1.0/1024, 1e-9, 1.0, 1.0/1024, 1.0); got != 1.0/1024 {
		t.Errorf("NextStep below min: %v", got)
	}
	if got := NextStep(0.5, 10, 1.0, 1.0/1024, 0.5); got != 0.5 {
		t.Errorf("NextStep above max: %v", got)
	}
}

func TestPropNextStepPowerOfTwoAndCommensurate(t *testing.T) {
	f := func(curExp, desiredMant uint8, tSteps uint16) bool {
		// current step 2^-(curExp%10+1); t a multiple of current step.
		cur := math.Ldexp(1, -int(curExp%10)-1)
		tt := float64(tSteps) * cur
		desired := float64(desiredMant)/16 + 1e-6
		got := NextStep(cur, desired, tt, math.Ldexp(1, -20), 0.5)
		if !isPow2(got) {
			return false
		}
		// The particle's next time must stay commensurate with its step:
		// tt is a multiple of cur; got ≤ 2*cur; if got == 2*cur then
		// NextStep checked commensurability.
		return commensurate(tt, got) || got < cur
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCommensurate(t *testing.T) {
	if !commensurate(0.75, 0.25) {
		t.Error("0.75 should be commensurate with 0.25")
	}
	if commensurate(0.75, 0.5) {
		t.Error("0.75 should not be commensurate with 0.5")
	}
	if !commensurate(0, 0.125) {
		t.Error("0 is commensurate with everything")
	}
	if commensurate(1, 0) {
		t.Error("step 0 is never commensurate")
	}
}
