package hermite

import (
	"runtime"
	"sync"

	"grape6/internal/direct"
	"grape6/internal/nbody"
	"grape6/internal/vec"
)

// Backend is the force-calculation service consumed by the integrator. It
// mirrors the host↔GRAPE contract: the backend stores the full j-particle
// set (with the Hermite state needed to predict each particle to any
// system time), and evaluates forces on a block of predicted i-particles.
//
// Backends include the self-interaction (as the real hardware does): with
// softening ε > 0 the self-pair contributes nothing to acceleration and
// jerk but contributes -m_i/ε to the potential, which the integrator adds
// back. With ε = 0 the exactly-zero-distance pair is skipped.
type Backend interface {
	// Load replaces the stored j-particle set with the particles of sys.
	Load(sys *nbody.System)

	// Update refreshes the stored state of the particles at the given
	// indices after the integrator corrected them.
	Update(sys *nbody.System, idx []int)

	// Forces predicts all stored j-particles to time t and evaluates
	// eqs. (1)-(3) on the i-particles with predicted states (xi, vi) and
	// softening eps. ids carries the i-particles' stable IDs (for backends
	// that care, e.g. tracing); results are returned in input order.
	Forces(t float64, ids []int, xi, vi []vec.V3, eps float64) []direct.Force

	// NJ returns the number of stored j-particles.
	NJ() int
}

// ForcesIntoBackend is the optional allocation-free extension of Backend:
// results are written into the caller-owned dst (len(dst) ≥ len(ids)) and
// the filled prefix is returned. The integrator type-asserts for it and
// reuses one buffer across block steps, so backends that implement it make
// the whole force path allocation-free in steady state.
type ForcesIntoBackend interface {
	Backend
	ForcesInto(dst []direct.Force, t float64, ids []int, xi, vi []vec.V3, eps float64) []direct.Force
}

// PredictAheadBackend is the optional host/GRAPE-overlap extension of
// Backend (the paper's §6): BeginPredict(t) starts predicting the stored
// j-particles to time t in the background, overlapping the predictor with
// host-side work (block selection, correction, i-particle staging). The
// backend joins the prefetch before any operation that needs or mutates
// the j-memory, so results are bit-identical with or without the call.
// The integrator calls it with the next block time right after Update.
type PredictAheadBackend interface {
	Backend
	BeginPredict(t float64)
}

// YieldBackend is the optional multi-tenant extension of Backend: Yield
// announces that the integrator is entering a host phase (correction,
// rebinning, block selection) and will not need the force engine until
// the next block's evaluation. Backends over shared hardware (a grape6d
// scheduler lease) use it to release their residency affinity so
// another tenant's evaluation can occupy the silicon meanwhile; it is a
// scheduling hint only and never changes any result. The integrator
// calls it at the end of every block step.
type YieldBackend interface {
	Backend
	Yield()
}

// jstate is the per-particle state a backend needs to run the predictor
// pipeline, eqs. (6)-(7).
type jstate struct {
	mass float64
	t0   float64
	x0   vec.V3
	v0   vec.V3
	a0   vec.V3
	j0   vec.V3
	s0   vec.V3
}

// DirectBackend is the reference "software GRAPE": float64 predictor and
// float64 force kernels, parallelised over the host's cores.
type DirectBackend struct {
	js []jstate

	// scratch buffers reused across calls
	mass []float64
	pos  []vec.V3
	vel  []vec.V3

	// Prefetched-prediction state (PredictAheadBackend). When predOK,
	// pos/vel hold every particle predicted to predT. predWG is pending
	// iff predBusy; every method that reads or writes js/pos/vel joins it
	// first, so the background pass never races host access.
	predT    float64
	predOK   bool
	predBusy bool
	predWG   sync.WaitGroup
}

// asyncPredictMin is the j-set size below which BeginPredict stays a
// no-op: the pass is too short to be worth a goroutine handoff.
const asyncPredictMin = 256

// NewDirectBackend returns an empty DirectBackend.
func NewDirectBackend() *DirectBackend { return &DirectBackend{} }

// joinPredict waits for a pending background predict pass, if any.
func (b *DirectBackend) joinPredict() {
	if b.predBusy {
		b.predWG.Wait()
		b.predBusy = false
		b.predOK = true
	}
}

// predictAll runs the predictor pass (eqs. (6)-(7) in float64) for every
// stored j-particle, striped across the host's cores. The per-particle
// arithmetic is pure, so striping cannot change a bit of the result.
func (b *DirectBackend) predictAll(t float64) {
	direct.ParallelFor(len(b.js), 512, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dt := t - b.js[i].t0
			b.pos[i], b.vel[i] = Predict(b.js[i].x0, b.js[i].v0, b.js[i].a0, b.js[i].j0, b.js[i].s0, dt)
		}
	})
}

// BeginPredict implements PredictAheadBackend: it starts the predictor
// pass for time t on a background goroutine so it overlaps with the
// host's corrector and block setup. ForcesInto at the same t reuses the
// result; any other access joins first.
func (b *DirectBackend) BeginPredict(t float64) {
	b.joinPredict()
	if b.predOK && b.predT == t {
		return
	}
	if runtime.GOMAXPROCS(0) <= 1 || len(b.js) < asyncPredictMin {
		return // nothing to gain; ForcesInto predicts on demand
	}
	b.predT = t
	b.predOK = false
	b.predBusy = true
	b.predWG.Add(1)
	go func() {
		defer b.predWG.Done()
		b.predictAll(t)
	}()
}

// Load implements Backend.
func (b *DirectBackend) Load(sys *nbody.System) {
	b.joinPredict()
	b.predOK = false
	b.js = make([]jstate, sys.N)
	for i := 0; i < sys.N; i++ {
		b.js[i] = jstate{
			mass: sys.Mass[i],
			t0:   sys.Time[i],
			x0:   sys.Pos[i],
			v0:   sys.Vel[i],
			a0:   sys.Acc[i],
			j0:   sys.Jerk[i],
			s0:   sys.Snap[i],
		}
	}
	b.mass = make([]float64, sys.N)
	b.pos = make([]vec.V3, sys.N)
	b.vel = make([]vec.V3, sys.N)
	for i := range b.js {
		b.mass[i] = b.js[i].mass
	}
}

// Update implements Backend.
func (b *DirectBackend) Update(sys *nbody.System, idx []int) {
	b.joinPredict()
	b.predOK = false
	for _, i := range idx {
		b.js[i] = jstate{
			mass: sys.Mass[i],
			t0:   sys.Time[i],
			x0:   sys.Pos[i],
			v0:   sys.Vel[i],
			a0:   sys.Acc[i],
			j0:   sys.Jerk[i],
			s0:   sys.Snap[i],
		}
		b.mass[i] = sys.Mass[i]
	}
}

// NJ implements Backend.
func (b *DirectBackend) NJ() int { return len(b.js) }

// Forces implements Backend.
func (b *DirectBackend) Forces(t float64, ids []int, xi, vi []vec.V3, eps float64) []direct.Force {
	return b.ForcesInto(make([]direct.Force, len(ids)), t, ids, xi, vi, eps)
}

// ForcesInto implements ForcesIntoBackend.
func (b *DirectBackend) ForcesInto(dst []direct.Force, t float64, ids []int, xi, vi []vec.V3, eps float64) []direct.Force {
	// Predictor pass over all stored j-particles (the chip's predictor
	// pipeline does exactly this in hardware), unless a BeginPredict
	// prefetch for this t already ran it in the background.
	b.joinPredict()
	if !b.predOK || b.predT != t {
		b.predictAll(t)
		b.predT, b.predOK = t, true
	}
	js := direct.JSet{Mass: b.mass, Pos: b.pos, Vel: b.vel}
	if len(xi) >= 16 && len(b.js) >= 512 {
		return direct.EvalAllParallelInto(dst, xi, vi, js, eps, false)
	}
	return direct.EvalAllInto(dst, xi, vi, js, eps, false)
}
