package hermite

import (
	"math"
	"testing"

	"grape6/internal/model"
	"grape6/internal/nbody"
	"grape6/internal/xrand"
)

func TestNewRejectsBadParams(t *testing.T) {
	sys := model.TwoBodyCircular(0.5, 0.5, 1)
	p := DefaultParams(0)
	p.Eta = -1
	if _, err := New(sys, NewDirectBackend(), p); err == nil {
		t.Error("accepted negative eta")
	}
	p = DefaultParams(0)
	p.MinStep = 0.3 // not a power of two
	if _, err := New(sys, NewDirectBackend(), p); err == nil {
		t.Error("accepted non-power-of-two MinStep")
	}
	if _, err := New(nbody.New(0), NewDirectBackend(), DefaultParams(0)); err == nil {
		t.Error("accepted empty system")
	}
}

func TestNewRejectsUnsynchronised(t *testing.T) {
	sys := model.TwoBodyCircular(0.5, 0.5, 1)
	sys.Time[1] = 0.5
	if _, err := New(sys, NewDirectBackend(), DefaultParams(0)); err == nil {
		t.Error("accepted unsynchronised system")
	}
}

func TestInitSetsForces(t *testing.T) {
	sys := model.TwoBodyCircular(0.5, 0.5, 1)
	it, err := New(sys, NewDirectBackend(), DefaultParams(0))
	if err != nil {
		t.Fatal(err)
	}
	// a on body 0 from body 1: m/r² = 0.5 toward +x.
	if math.Abs(sys.Acc[0].X-0.5) > 1e-14 {
		t.Errorf("initial acc = %v", sys.Acc[0])
	}
	for i := 0; i < 2; i++ {
		if sys.Step[i] <= 0 || !isPow2(sys.Step[i]) {
			t.Errorf("initial step[%d] = %v", i, sys.Step[i])
		}
	}
	if it.Interactions != 4 {
		t.Errorf("init interactions = %d, want 4", it.Interactions)
	}
}

func TestSelfPotentialCorrection(t *testing.T) {
	// With eps > 0 the backend includes self-interaction (-m/ε in the
	// potential); the integrator must remove it, so the stored potential
	// must equal the exact pairwise value.
	sys := model.TwoBodyCircular(0.5, 0.5, 1)
	eps := 0.25
	_, err := New(sys, NewDirectBackend(), DefaultParams(eps))
	if err != nil {
		t.Fatal(err)
	}
	// φ_0 = -m_1/√(r²+ε²).
	want := -0.5 / math.Sqrt(1+eps*eps)
	if math.Abs(sys.Pot[0]-want) > 1e-14 {
		t.Errorf("pot = %v, want %v", sys.Pot[0], want)
	}
}

func TestCircularOrbitEnergyConservation(t *testing.T) {
	sys := model.TwoBodyCircular(0.5, 0.5, 1)
	p := DefaultParams(0)
	it, err := New(sys, NewDirectBackend(), p)
	if err != nil {
		t.Fatal(err)
	}
	e0 := it.Energy()
	period := model.OrbitalPeriod(1, 1)
	it.Run(period) // one full orbit
	e1 := it.Energy()
	rel := math.Abs((e1 - e0) / e0)
	if rel > 1e-8 {
		t.Errorf("relative energy error after one orbit = %v", rel)
	}
}

func TestCircularOrbitReturnsToStart(t *testing.T) {
	sys := model.TwoBodyCircular(0.5, 0.5, 1)
	x0 := sys.Pos[0]
	it, err := New(sys, NewDirectBackend(), DefaultParams(0))
	if err != nil {
		t.Fatal(err)
	}
	period := model.OrbitalPeriod(1, 1)
	it.Run(period)
	snap := it.Synchronize(period)
	if d := snap.Pos[0].Dist(x0); d > 1e-4 {
		t.Errorf("body 0 missed closure by %v", d)
	}
}

func TestEccentricOrbitEnergyAndAngularMomentum(t *testing.T) {
	sys := model.TwoBodyEccentric(0.5, 0.5, 1, 0.7)
	it, err := New(sys, NewDirectBackend(), DefaultParams(0))
	if err != nil {
		t.Fatal(err)
	}
	e0 := it.Energy()
	l0 := it.Synchronize(0).AngularMomentum()
	period := model.OrbitalPeriod(1, 1)
	it.Run(2 * period)
	e1 := it.Energy()
	l1 := it.Synchronize(it.T).AngularMomentum()
	if rel := math.Abs((e1 - e0) / e0); rel > 1e-6 {
		t.Errorf("energy error over eccentric orbit = %v", rel)
	}
	if d := l1.Dist(l0); d > 1e-7 {
		t.Errorf("angular momentum drift = %v", d)
	}
}

func TestEnergyErrorScalesWithEta(t *testing.T) {
	// Smaller eta must give (much) smaller energy error.
	errAt := func(eta float64) float64 {
		sys := model.TwoBodyEccentric(0.5, 0.5, 1, 0.5)
		p := DefaultParams(0)
		p.Eta = eta
		p.EtaS = eta / 2
		it, err := New(sys, NewDirectBackend(), p)
		if err != nil {
			t.Fatal(err)
		}
		e0 := it.Energy()
		it.Run(model.OrbitalPeriod(1, 1))
		return math.Abs((it.Energy() - e0) / e0)
	}
	coarse := errAt(0.08)
	fine := errAt(0.02)
	if fine >= coarse {
		t.Errorf("energy error did not shrink with eta: coarse=%v fine=%v", coarse, fine)
	}
}

func TestPlummerEnergyConservation(t *testing.T) {
	sys := model.Plummer(128, xrand.New(42))
	eps := 1.0 / 64
	it, err := New(sys, NewDirectBackend(), DefaultParams(eps))
	if err != nil {
		t.Fatal(err)
	}
	e0 := it.Energy()
	it.Run(1.0) // the paper's benchmark: 1 Heggie time unit
	e1 := it.Energy()
	rel := math.Abs((e1 - e0) / e0)
	if rel > 1e-4 {
		t.Errorf("Plummer energy error over 1 time unit = %v", rel)
	}
	if it.Steps == 0 || it.Blocks == 0 {
		t.Error("no steps recorded")
	}
	if it.Steps < int64(sys.N) {
		t.Errorf("only %d steps for %d particles", it.Steps, sys.N)
	}
}

func TestBlockStructure(t *testing.T) {
	sys := model.Plummer(64, xrand.New(7))
	it, err := New(sys, NewDirectBackend(), DefaultParams(1.0/64))
	if err != nil {
		t.Fatal(err)
	}
	var stats []BlockStat
	it.Trace = func(b BlockStat) { stats = append(stats, b) }
	it.Run(0.25)
	if len(stats) == 0 {
		t.Fatal("no blocks recorded")
	}
	prev := -1.0
	var total int64
	for _, b := range stats {
		if b.Size < 1 || b.Size > sys.N {
			t.Fatalf("block size %d out of range", b.Size)
		}
		if b.Time <= prev {
			t.Fatalf("block times not strictly increasing: %v after %v", b.Time, prev)
		}
		prev = b.Time
		total += int64(b.Size)
	}
	if total != it.Steps {
		t.Errorf("trace total %d != Steps %d", total, it.Steps)
	}
}

func TestTimesStayCommensurate(t *testing.T) {
	sys := model.Plummer(32, xrand.New(3))
	it, err := New(sys, NewDirectBackend(), DefaultParams(1.0/64))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 200; k++ {
		it.Step()
		for i := 0; i < sys.N; i++ {
			if !isPow2(sys.Step[i]) {
				t.Fatalf("step[%d] = %v not a power of two", i, sys.Step[i])
			}
			if !commensurate(sys.Time[i], sys.Step[i]) {
				t.Fatalf("time %v not commensurate with step %v", sys.Time[i], sys.Step[i])
			}
			if sys.Time[i] > it.T {
				t.Fatalf("particle %d ahead of system time", i)
			}
		}
	}
}

func TestRunStopsAtBoundary(t *testing.T) {
	sys := model.Plummer(32, xrand.New(9))
	it, err := New(sys, NewDirectBackend(), DefaultParams(1.0/64))
	if err != nil {
		t.Fatal(err)
	}
	it.Run(0.5)
	if it.NextBlockTime() <= 0.5 {
		t.Errorf("next block %v should exceed 0.5", it.NextBlockTime())
	}
	for i := 0; i < sys.N; i++ {
		if sys.Time[i] > 0.5 {
			t.Errorf("particle %d overshot: t=%v", i, sys.Time[i])
		}
	}
}

func TestDeterministicIntegration(t *testing.T) {
	run := func() *nbody.System {
		sys := model.Plummer(48, xrand.New(11))
		it, err := New(sys, NewDirectBackend(), DefaultParams(1.0/64))
		if err != nil {
			t.Fatal(err)
		}
		it.Run(0.25)
		return sys
	}
	a, b := run(), run()
	for i := 0; i < a.N; i++ {
		if a.Pos[i] != b.Pos[i] || a.Vel[i] != b.Vel[i] {
			t.Fatalf("non-deterministic result at particle %d", i)
		}
	}
}

func TestMassiveParticleSinks(t *testing.T) {
	// Sanity: black-hole particles get small timesteps relative to the
	// mean (they live in the dense centre and accelerate neighbours).
	sys := model.PlummerWithBlackHoles(100, 0.02, 0.2, xrand.New(13))
	it, err := New(sys, NewDirectBackend(), DefaultParams(1.0/256))
	if err != nil {
		t.Fatal(err)
	}
	it.Run(0.125)
	if it.Steps <= int64(sys.N) {
		t.Errorf("suspiciously few steps: %d", it.Steps)
	}
}

func TestInteractionsAccounting(t *testing.T) {
	sys := model.Plummer(32, xrand.New(17))
	it, err := New(sys, NewDirectBackend(), DefaultParams(1.0/64))
	if err != nil {
		t.Fatal(err)
	}
	init := it.Interactions
	if init != 32*32 {
		t.Errorf("init interactions = %d", init)
	}
	s := it.Step()
	if got := it.Interactions - init; got != int64(s.Size)*32 {
		t.Errorf("step interactions = %d, want %d", got, s.Size*32)
	}
}

func BenchmarkPlummer256Step(b *testing.B) {
	sys := model.Plummer(256, xrand.New(1))
	it, err := New(sys, NewDirectBackend(), DefaultParams(1.0/64))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.Step()
	}
}
