package hermite

import (
	"fmt"
	"math"

	"grape6/internal/direct"
	"grape6/internal/nbody"
	"grape6/internal/vec"
)

// Params collects the integrator's accuracy and scheduling parameters.
type Params struct {
	Eta     float64 // Aarseth timestep accuracy parameter
	EtaS    float64 // startup timestep parameter
	Eps     float64 // Plummer softening length
	MinStep float64 // smallest allowed block step (power of two)
	MaxStep float64 // largest allowed block step (power of two)
}

// DefaultParams returns the parameters used for the paper-style benchmark
// runs: η = 0.02 with softening eps.
func DefaultParams(eps float64) Params {
	return Params{
		Eta:     0.02,
		EtaS:    0.01,
		Eps:     eps,
		MinStep: math.Ldexp(1, -23),
		MaxStep: math.Ldexp(1, -3),
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.Eta <= 0 || p.EtaS <= 0 {
		return fmt.Errorf("hermite: eta parameters must be positive (eta=%v etaS=%v)", p.Eta, p.EtaS)
	}
	if p.Eps < 0 {
		return fmt.Errorf("hermite: negative softening %v", p.Eps)
	}
	if p.MinStep <= 0 || p.MaxStep < p.MinStep {
		return fmt.Errorf("hermite: invalid step bounds [%v, %v]", p.MinStep, p.MaxStep)
	}
	if !isPow2(p.MinStep) || !isPow2(p.MaxStep) {
		return fmt.Errorf("hermite: step bounds must be powers of two, got [%v, %v]", p.MinStep, p.MaxStep)
	}
	return nil
}

func isPow2(x float64) bool {
	if x <= 0 {
		return false
	}
	f, _ := math.Frexp(x)
	return f == 0.5
}

// BlockStat describes one block step, the record consumed by the timing
// simulator's trace input.
type BlockStat struct {
	Time float64 // system time of the block
	Size int     // number of particles integrated in the block

	// Bins is the number of occupied timestep bins when the block fired
	// (scheduler occupancy; 0 for producers that do not track it, e.g.
	// synthetic traces).
	Bins int
}

// Integrator advances an N-body system with individual block timesteps.
type Integrator struct {
	Sys *nbody.System
	B   Backend
	P   Params

	// T is the current system time (time of the last completed block).
	T float64

	// Counters for the paper's performance accounting.
	Steps        int64 // individual particle steps
	Blocks       int64 // block steps
	Interactions int64 // pairwise interactions evaluated

	// Trace, when non-nil, receives one BlockStat per block step.
	Trace func(BlockStat)

	// sched buckets particles by step exponent so block selection is
	// O(active block) instead of the O(N) MinTime scan.
	sched *nbody.BlockSched

	// scratch buffers
	block []int
	ids   []int
	xp    []vec.V3
	vp    []vec.V3
	fbuf  []direct.Force // force results, reused when the backend supports it

	// pab is B when it supports predict-ahead, cached once at New; yb
	// likewise when it supports the multi-tenant yield hint.
	pab PredictAheadBackend
	yb  YieldBackend
}

// prefetchPredict starts the backend's j-memory prediction for the next
// block time so it overlaps with the host work between blocks (trace
// callbacks, block selection, i-particle prediction) — the paper's §6
// host/GRAPE overlap. No-op for backends without predict-ahead support.
func (it *Integrator) prefetchPredict() {
	if it.pab != nil {
		it.pab.BeginPredict(it.sched.NextTime())
	}
}

// forces evaluates block forces through the backend, using the
// allocation-free ForcesInto path when the backend provides it.
func (it *Integrator) forces(t float64, ids []int, xi, vi []vec.V3) []direct.Force {
	fb, ok := it.B.(ForcesIntoBackend)
	if !ok {
		return it.B.Forces(t, ids, xi, vi, it.P.Eps)
	}
	if cap(it.fbuf) < len(ids) {
		it.fbuf = make([]direct.Force, len(ids))
	}
	return fb.ForcesInto(it.fbuf[:len(ids)], t, ids, xi, vi, it.P.Eps)
}

// New initialises the integrator: it computes forces on all particles at
// their current times (assumed equal), assigns startup timesteps and loads
// the backend.
func New(sys *nbody.System, b Backend, p Params) (*Integrator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if sys.N == 0 {
		return nil, fmt.Errorf("hermite: empty system")
	}
	t0 := sys.Time[0]
	for _, t := range sys.Time {
		if t != t0 {
			return nil, fmt.Errorf("hermite: particles not synchronised at init (t=%v vs %v)", t, t0)
		}
	}

	it := &Integrator{Sys: sys, B: b, P: p, T: t0}
	it.pab, _ = b.(PredictAheadBackend)
	it.yb, _ = b.(YieldBackend)
	b.Load(sys)

	// Full force evaluation at the common initial time.
	ids := make([]int, sys.N)
	for i := range ids {
		ids[i] = i
	}
	fs := it.forces(t0, ids, sys.Pos, sys.Vel)
	for i := 0; i < sys.N; i++ {
		sys.Acc[i] = fs[i].Acc
		sys.Jerk[i] = fs[i].Jerk
		sys.Pot[i] = correctedPot(fs[i].Pot, sys.Mass[i], p.Eps)
		sys.Snap[i] = vec.Zero
		sys.Crack[i] = vec.Zero
		sys.Time[i] = t0
		sys.Step[i] = QuantizeInitial(InitialStep(fs[i].Acc, fs[i].Jerk, p.EtaS), p.MinStep, p.MaxStep)
	}
	it.Interactions += int64(sys.N) * int64(b.NJ())
	b.Update(sys, ids)
	it.sched = nbody.NewBlockSched(sys)
	it.prefetchPredict()
	return it, nil
}

// correctedPot removes the self-interaction term -m/ε that backends
// include (as the hardware does) when ε > 0.
func correctedPot(pot, m, eps float64) float64 {
	if eps > 0 {
		return pot + m/eps
	}
	return pot
}

// NextBlockTime returns the time of the next block to integrate.
func (it *Integrator) NextBlockTime() float64 {
	return it.sched.NextTime()
}

// Step advances the system by one block step and returns its statistics.
func (it *Integrator) Step() BlockStat {
	sys := it.Sys
	t := it.sched.NextTime()

	// Select the block: particles whose next time equals t exactly. Times
	// and steps are exact binary fractions, so equality is reliable, and
	// the bucketed scheduler reproduces the retired O(N) scan's
	// membership and ordering bit-for-bit in O(active block).
	it.block = it.sched.AppendBlock(sys, t, it.block[:0])

	nb := len(it.block)
	it.ids = it.ids[:0]
	if cap(it.xp) < nb {
		it.xp = make([]vec.V3, nb)
		it.vp = make([]vec.V3, nb)
	}
	xp := it.xp[:nb]
	vp := it.vp[:nb]
	for k, i := range it.block {
		it.ids = append(it.ids, sys.ID[i])
		dt := t - sys.Time[i]
		xp[k], vp[k] = Predict(sys.Pos[i], sys.Vel[i], sys.Acc[i], sys.Jerk[i], sys.Snap[i], dt)
	}

	fs := it.forces(t, it.ids, xp, vp)

	for k, i := range it.block {
		dt := t - sys.Time[i]
		a0, j0 := sys.Acc[i], sys.Jerk[i]
		a1, j1 := fs[k].Acc, fs[k].Jerk
		x1, v1, snap1, crackle := Correct(sys.Pos[i], sys.Vel[i], a0, j0, a1, j1, dt)

		sys.Pos[i] = x1
		sys.Vel[i] = v1
		sys.Acc[i] = a1
		sys.Jerk[i] = j1
		sys.Snap[i] = snap1
		sys.Crack[i] = crackle
		sys.Pot[i] = correctedPot(fs[k].Pot, sys.Mass[i], it.P.Eps)
		sys.Time[i] = t

		desired := AarsethStep(a1, j1, snap1, crackle, it.P.Eta)
		sys.Step[i] = NextStep(sys.Step[i], desired, t, it.P.MinStep, it.P.MaxStep)
		it.sched.Rebin(sys, i)
	}

	it.B.Update(sys, it.block)
	it.prefetchPredict()
	if it.yb != nil {
		// The host phase until the next block — trace callbacks, block
		// selection, i-particle prediction — needs no silicon: on a
		// shared fleet, let another tenant's evaluation occupy it.
		it.yb.Yield()
	}

	it.T = t
	it.Steps += int64(nb)
	it.Blocks++
	it.Interactions += int64(nb) * int64(it.B.NJ())

	stat := BlockStat{Time: t, Size: nb, Bins: it.sched.Bins()}
	if it.Trace != nil {
		it.Trace(stat)
	}
	return stat
}

// Run advances the system until the next block time would exceed `until`.
// On return every particle's individual time is ≤ until and the next block
// lies beyond it.
func (it *Integrator) Run(until float64) {
	for it.NextBlockTime() <= until {
		it.Step()
	}
}

// Synchronize predicts every particle to time t and returns a snapshot
// system with all particles at that common time. The integrator's own
// state is not modified. Used for diagnostics (energy, snapshots).
func (it *Integrator) Synchronize(t float64) *nbody.System {
	snap := it.Sys.Clone()
	for i := 0; i < snap.N; i++ {
		dt := t - snap.Time[i]
		snap.Pos[i], snap.Vel[i] = Predict(snap.Pos[i], snap.Vel[i], snap.Acc[i], snap.Jerk[i], snap.Snap[i], dt)
		snap.Time[i] = t
	}
	return snap
}

// Energy returns the total energy of the system synchronized at the
// current system time, using exact double-precision potential summation.
func (it *Integrator) Energy() float64 {
	snap := it.Synchronize(it.T)
	return snap.TotalEnergy(it.P.Eps)
}
