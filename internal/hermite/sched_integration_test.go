package hermite

import (
	"math"
	"testing"

	"grape6/internal/model"
	"grape6/internal/xrand"
)

// TestSchedulerMatchesScan drives a real Plummer integration and checks,
// block by block, that the bucketed scheduler selects the exact time and
// membership the retired O(N) MinTime scan would have: same NextBlockTime,
// same block indices in the same (ascending) order, and the occupancy
// reported in BlockStat matches the distinct step exponents present.
func TestSchedulerMatchesScan(t *testing.T) {
	sys := model.Plummer(128, xrand.New(17))
	it, err := New(sys, NewDirectBackend(), DefaultParams(1.0/32))
	if err != nil {
		t.Fatal(err)
	}
	var wantBlock []int
	for step := 0; step < 400; step++ {
		// Reference selection from the raw arrays, before the step runs.
		wantT := sys.MinTime()
		wantBlock = wantBlock[:0]
		for i := 0; i < sys.N; i++ {
			if sys.Time[i]+sys.Step[i] == wantT {
				wantBlock = append(wantBlock, i)
			}
		}
		if got := it.NextBlockTime(); got != wantT {
			t.Fatalf("step %d: NextBlockTime = %v, want MinTime %v", step, got, wantT)
		}

		stat := it.Step()

		if stat.Time != wantT {
			t.Fatalf("step %d: block time %v, want %v", step, stat.Time, wantT)
		}
		if stat.Size != len(wantBlock) {
			t.Fatalf("step %d: block size %d, want %d", step, stat.Size, len(wantBlock))
		}
		for k := range wantBlock {
			if it.block[k] != wantBlock[k] {
				t.Fatalf("step %d: block[%d] = %d, want %d", step, k, it.block[k], wantBlock[k])
			}
		}

		// Bins is sampled after re-binning, so compare against the step
		// exponents now present in the system.
		exps := map[int]bool{}
		for i := 0; i < sys.N; i++ {
			_, e := math.Frexp(sys.Step[i])
			exps[e] = true
		}
		if stat.Bins != len(exps) {
			t.Fatalf("step %d: Bins = %d, want %d occupied bins", step, stat.Bins, len(exps))
		}
	}
}

// TestSchedulerTrajectoryUnchanged pins the end-to-end bit-identity
// requirement: the scheduler is a pure selection-mechanism swap, so a
// full integration must land on exactly the state the O(N)-scan
// integrator produced (the reference trajectory replayed here via the
// scan-equivalence property plus deterministic arithmetic).
func TestSchedulerTrajectoryUnchanged(t *testing.T) {
	run := func() ([]float64, []float64) {
		sys := model.Plummer(96, xrand.New(23))
		it, err := New(sys, NewDirectBackend(), DefaultParams(1.0/32))
		if err != nil {
			t.Fatal(err)
		}
		it.Run(0.25)
		var xs, ts []float64
		for i := 0; i < sys.N; i++ {
			xs = append(xs, sys.Pos[i].X, sys.Pos[i].Y, sys.Pos[i].Z)
			ts = append(ts, sys.Time[i], sys.Step[i])
		}
		return xs, ts
	}
	x1, t1 := run()
	x2, t2 := run()
	for k := range x1 {
		if x1[k] != x2[k] {
			t.Fatalf("position component %d differs between runs: %v vs %v", k, x1[k], x2[k])
		}
	}
	for k := range t1 {
		if t1[k] != t2[k] {
			t.Fatalf("time/step component %d differs between runs: %v vs %v", k, t1[k], t2[k])
		}
	}
}
