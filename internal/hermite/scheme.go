// Package hermite implements the 4th-order Hermite individual-block-
// timestep integration scheme of Makino & Aarseth (1992), the algorithm
// GRAPE-6's frontend hosts run (Section 4 of the paper). The force
// evaluation is delegated to a Backend — either the float64 reference
// kernels or the emulated GRAPE-6 hardware — mirroring the paper's split
// between frontend and special-purpose hardware.
package hermite

import (
	"math"

	"grape6/internal/vec"
)

// Predict evaluates the predictor polynomials, eqs. (6)-(7) of the paper,
// advancing state (x0, v0, a0, j0, s0) from its own time by dt. s0 is the
// second derivative of the acceleration (snap) retained from the previous
// corrector; passing the zero vector degrades gracefully to the standard
// third-order predictor.
func Predict(x0, v0, a0, j0, s0 vec.V3, dt float64) (xp, vp vec.V3) {
	dt2 := dt * dt / 2
	dt3 := dt * dt2 / 3
	dt4 := dt * dt3 / 4
	xp = x0.
		AddScaled(dt, v0).
		AddScaled(dt2, a0).
		AddScaled(dt3, j0).
		AddScaled(dt4, s0)
	vp = v0.
		AddScaled(dt, a0).
		AddScaled(dt2, j0).
		AddScaled(dt3, s0)
	return xp, vp
}

// Correct applies the Hermite corrector over a step dt: given the state
// (x0, v0) and force (a0, j0) at the start of the step and the force
// (a1, j1) evaluated at the predicted end-of-step state, it returns the
// corrected position and velocity in the Makino & Aarseth (1992) form —
// the third-order prediction plus the 4th/5th-order terms built from the
// reconstructed snap and crackle:
//
//	x1 = x0 + dt v0 + dt²/2 a0 + dt³/6 ȧ0 + dt⁴/24 a⁽²⁾ + dt⁵/120 a⁽³⁾,
//	v1 = v0 + dt a0 + dt²/2 ȧ0 + dt³/6 a⁽²⁾ + dt⁴/24 a⁽³⁾,
//
// together with the reconstructed snap at the END of the step and the
// (constant over the step) crackle, both needed by the next prediction and
// by the Aarseth timestep criterion. The corrector is exact when the true
// acceleration is a cubic polynomial of time.
func Correct(x0, v0, a0, j0, a1, j1 vec.V3, dt float64) (x1, v1, snap1, crackle vec.V3) {
	// Snap/crackle at the start of the step (Makino & Aarseth 1992).
	inv2 := 1 / (dt * dt)
	inv3 := inv2 / dt
	da := a0.Sub(a1)
	snap0 := da.Scale(-6 * inv2).Sub(j0.Scale(4 * inv2 * dt)).Sub(j1.Scale(2 * inv2 * dt))
	crackle = da.Scale(12 * inv3).Add(j0.Add(j1).Scale(6 * inv3 * dt))

	dt2 := dt * dt / 2
	dt3 := dt * dt2 / 3
	dt4 := dt * dt3 / 4
	dt5 := dt * dt4 / 5
	x1 = x0.
		AddScaled(dt, v0).
		AddScaled(dt2, a0).
		AddScaled(dt3, j0).
		AddScaled(dt4, snap0).
		AddScaled(dt5, crackle)
	v1 = v0.
		AddScaled(dt, a0).
		AddScaled(dt2, j0).
		AddScaled(dt3, snap0).
		AddScaled(dt4, crackle)

	// Snap at the end of the step.
	snap1 = snap0.AddScaled(dt, crackle)
	return x1, v1, snap1, crackle
}

// AarsethStep returns the timestep from Aarseth's criterion,
//
//	dt = η √[ (|a||a⁽²⁾| + |ȧ|²) / (|ȧ||a⁽³⁾| + |a⁽²⁾|²) ],
//
// using the force and its three derivatives at the particle's current time.
func AarsethStep(a, j, snap, crackle vec.V3, eta float64) float64 {
	num := a.Norm()*snap.Norm() + j.Norm2()
	den := j.Norm()*crackle.Norm() + snap.Norm2()
	if den == 0 {
		if num == 0 {
			return math.Inf(1)
		}
		return math.Inf(1)
	}
	return eta * math.Sqrt(num/den)
}

// InitialStep returns the startup timestep η_s |a|/|ȧ|, used before the
// higher derivatives exist.
func InitialStep(a, j vec.V3, etaS float64) float64 {
	jn := j.Norm()
	if jn == 0 {
		return math.Inf(1)
	}
	return etaS * a.Norm() / jn
}

// floorPow2 returns the largest power of two ≤ x (x > 0).
func floorPow2(x float64) float64 {
	if x <= 0 || math.IsNaN(x) {
		return 0
	}
	if math.IsInf(x, 1) {
		return math.Inf(1)
	}
	_, e := math.Frexp(x) // x = f × 2^e with f in [0.5, 1)
	return math.Ldexp(1, e-1)
}

// QuantizeInitial converts a desired timestep into the block-scheme form:
// a power of two clamped to [minStep, maxStep].
func QuantizeInitial(desired, minStep, maxStep float64) float64 {
	dt := floorPow2(desired)
	if dt > maxStep {
		dt = maxStep
	}
	if dt < minStep {
		dt = minStep
	}
	return dt
}

// NextStep implements the block-timestep update rule: the new step must be
// a power of two; it may shrink freely (halving as often as needed) but may
// grow only by a single doubling, and only when the doubled step remains
// commensurate with the current time t (i.e. t is a multiple of the doubled
// step). The result is clamped to [minStep, maxStep].
func NextStep(current, desired, t, minStep, maxStep float64) float64 {
	dt := current
	if desired < dt {
		for dt > minStep && desired < dt {
			dt /= 2
		}
	} else if desired >= 2*dt && dt < maxStep {
		if commensurate(t, 2*dt) {
			dt *= 2
		}
	}
	if dt > maxStep {
		dt = maxStep
	}
	if dt < minStep {
		dt = minStep
	}
	return dt
}

// commensurate reports whether t is an integer multiple of step. Both are
// exact binary fractions in this scheme, so the float computation is exact
// whenever t/step is within the integer-representable range.
func commensurate(t, step float64) bool {
	if step == 0 {
		return false
	}
	q := t / step
	return q == math.Trunc(q)
}
