package simnet

import (
	"math"
	"testing"

	"grape6/internal/des"
)

func TestNICProfilesMatchPaper(t *testing.T) {
	// Section 4.4 numbers.
	if NS83820.RTT != 200e-6 || NS83820.Bandwidth != 60e6 {
		t.Errorf("NS83820 = %+v", NS83820)
	}
	if Intel82540EM.RTT != 67e-6 || Intel82540EM.Bandwidth != 105e6 {
		t.Errorf("Intel82540EM = %+v", Intel82540EM)
	}
	if Tigon2.Bandwidth != 85e6 {
		t.Errorf("Tigon2 = %+v", Tigon2)
	}
	// Myrinet: latency 5-10× shorter than the 200µs TCP/IP baseline.
	ratio := NS83820.RTT / Myrinet.RTT
	if ratio < 5 || ratio > 10 {
		t.Errorf("Myrinet latency improvement = %v, want 5-10x", ratio)
	}
	for _, n := range []NIC{NS83820, Tigon2, Intel82540EM, Myrinet} {
		if err := n.Validate(); err != nil {
			t.Errorf("%s invalid: %v", n.Name, err)
		}
	}
}

func TestValidateRejectsBad(t *testing.T) {
	if err := (NIC{RTT: -1, Bandwidth: 1}).Validate(); err == nil {
		t.Error("accepted negative RTT")
	}
	if err := (NIC{RTT: 1, Bandwidth: 0}).Validate(); err == nil {
		t.Error("accepted zero bandwidth")
	}
}

func TestOneWayTime(t *testing.T) {
	n := NIC{RTT: 100e-6, Bandwidth: 1e8}
	// 10^6 bytes at 100 MB/s = 10 ms, plus 50 µs latency.
	want := 50e-6 + 0.01
	if got := n.OneWay(1_000_000); math.Abs(got-want) > 1e-9 {
		t.Errorf("OneWay = %v, want ≈%v", got, want)
	}
}

func TestPointToPointDelivery(t *testing.T) {
	eng := des.New()
	net := New(eng, NIC{RTT: 100e-6, Bandwidth: 1e8}, 2)
	var recvAt float64 = -1
	var payload interface{}
	eng.Spawn("recv", func(p *des.Proc) {
		m := net.Recv(p, 1, 7)
		recvAt = p.Now()
		payload = m.Payload
	})
	eng.Spawn("send", func(p *des.Proc) {
		net.Send(0, 1, 7, 1000, "hello")
	})
	eng.RunAll()
	// arrival = transfer (1000/1e8 = 10µs) + RTT/2 (50µs) = 60µs.
	if math.Abs(recvAt-60e-6) > 1e-9 {
		t.Errorf("received at %v, want 60µs", recvAt)
	}
	if payload != "hello" {
		t.Errorf("payload = %v", payload)
	}
}

func TestRecvBeforeSend(t *testing.T) {
	eng := des.New()
	net := New(eng, NS83820, 2)
	got := -1.0
	eng.Spawn("recv", func(p *des.Proc) {
		net.Recv(p, 0, 1)
		got = p.Now()
	})
	eng.Spawn("send", func(p *des.Proc) {
		p.Sleep(1e-3)
		net.Send(1, 0, 1, 0, nil)
	})
	eng.RunAll()
	want := 1e-3 + NS83820.RTT/2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("recv completed at %v, want %v", got, want)
	}
}

func TestSenderSerialization(t *testing.T) {
	// Two back-to-back 1 MB sends from the same rank: the second is
	// delayed by the first's serialization time.
	eng := des.New()
	nic := NIC{RTT: 0, Bandwidth: 1e6} // 1 MB/s, zero latency
	net := New(eng, nic, 3)
	var t1, t2 float64
	eng.Spawn("r1", func(p *des.Proc) {
		net.Recv(p, 1, 0)
		t1 = p.Now()
	})
	eng.Spawn("r2", func(p *des.Proc) {
		net.Recv(p, 2, 0)
		t2 = p.Now()
	})
	eng.Spawn("send", func(p *des.Proc) {
		net.Send(0, 1, 0, 1_000_000, nil) // 1 s transfer
		net.Send(0, 2, 0, 1_000_000, nil) // queued behind → arrives at 2 s
	})
	eng.RunAll()
	if math.Abs(t1-1.0) > 1e-9 || math.Abs(t2-2.0) > 1e-9 {
		t.Errorf("arrivals %v %v, want 1s and 2s", t1, t2)
	}
}

func TestDistinctSendersDoNotSerialize(t *testing.T) {
	eng := des.New()
	nic := NIC{RTT: 0, Bandwidth: 1e6}
	net := New(eng, nic, 3)
	var t1, t2 float64
	eng.Spawn("r", func(p *des.Proc) {
		net.Recv(p, 2, 0)
		t1 = p.Now()
		net.Recv(p, 2, 1)
		t2 = p.Now()
	})
	eng.Spawn("s0", func(p *des.Proc) { net.Send(0, 2, 0, 1_000_000, nil) })
	eng.Spawn("s1", func(p *des.Proc) { net.Send(1, 2, 1, 1_000_000, nil) })
	eng.RunAll()
	if math.Abs(t1-1.0) > 1e-9 || math.Abs(t2-1.0) > 1e-9 {
		t.Errorf("parallel senders arrived at %v, %v; want both at 1s", t1, t2)
	}
}

func TestFIFOOrderSameTag(t *testing.T) {
	eng := des.New()
	net := New(eng, NIC{RTT: 10e-6, Bandwidth: 1e9}, 2)
	var got []int
	eng.Spawn("recv", func(p *des.Proc) {
		for i := 0; i < 3; i++ {
			m := net.Recv(p, 1, 0)
			got = append(got, m.Payload.(int))
		}
	})
	eng.Spawn("send", func(p *des.Proc) {
		for i := 0; i < 3; i++ {
			net.Send(0, 1, 0, 100, i)
		}
	})
	eng.RunAll()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("order = %v", got)
	}
}

func TestButterflyBarrierSynchronizes(t *testing.T) {
	// 4 ranks arriving at different times: all leave the butterfly at (or
	// after) the last arrival.
	eng := des.New()
	net := New(eng, NIC{RTT: 100e-6, Bandwidth: 1e9}, 4)
	arrive := []float64{0, 3e-3, 1e-3, 2e-3}
	exit := make([]float64, 4)
	for r := 0; r < 4; r++ {
		r := r
		eng.Spawn("h", func(p *des.Proc) {
			p.Sleep(arrive[r])
			net.Butterfly(p, r, 4, 100, 8, nil, nil)
			exit[r] = p.Now()
		})
	}
	eng.RunAll()
	for r, e := range exit {
		if e < 3e-3 {
			t.Errorf("rank %d left barrier at %v, before last arrival", r, e)
		}
		if e > 3e-3+10*net.NIC().OneWay(8) {
			t.Errorf("rank %d left barrier too late: %v", r, e)
		}
	}
}

func TestButterflyAllReduce(t *testing.T) {
	eng := des.New()
	net := New(eng, Intel82540EM, 8)
	results := make([]int, 8)
	for r := 0; r < 8; r++ {
		r := r
		eng.Spawn("h", func(p *des.Proc) {
			v := net.Butterfly(p, r, 8, 200, 8, r, func(a, b interface{}) interface{} {
				return a.(int) + b.(int)
			})
			results[r] = v.(int)
		})
	}
	eng.RunAll()
	for r, v := range results {
		if v != 28 { // 0+1+...+7
			t.Errorf("rank %d allreduce = %d, want 28", r, v)
		}
	}
}

func TestButterflyLatencyScalesWithLog(t *testing.T) {
	// Barrier time ∝ log2(p) × one-way latency: 16 ranks ≈ 4 rounds.
	measure := func(size int) float64 {
		eng := des.New()
		net := New(eng, NIC{RTT: 100e-6, Bandwidth: 1e12}, size)
		var exit float64
		for r := 0; r < size; r++ {
			r := r
			eng.Spawn("h", func(p *des.Proc) {
				net.Butterfly(p, r, size, 0, 8, nil, nil)
				if p.Now() > exit {
					exit = p.Now()
				}
			})
		}
		eng.RunAll()
		return exit
	}
	t4 := measure(4)
	t16 := measure(16)
	if r := t16 / t4; math.Abs(r-2.0) > 0.2 {
		t.Errorf("barrier(16)/barrier(4) = %v, want ≈2 (4 vs 2 rounds)", r)
	}
}

func TestBarrierTimeModel(t *testing.T) {
	eng := des.New()
	net := New(eng, NS83820, 16)
	got := net.BarrierTime(16, 8)
	want := 4 * NS83820.OneWay(8)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("BarrierTime = %v, want %v", got, want)
	}
	if net.BarrierTime(1, 8) != 0 {
		t.Error("single-rank barrier should be free")
	}
}

func TestTrafficCounters(t *testing.T) {
	eng := des.New()
	net := New(eng, NS83820, 2)
	eng.Spawn("r", func(p *des.Proc) { net.Recv(p, 1, 0) })
	eng.Spawn("s", func(p *des.Proc) { net.Send(0, 1, 0, 12345, nil) })
	eng.RunAll()
	if net.MessagesSent != 1 || net.BytesSent != 12345 {
		t.Errorf("counters = %d msgs, %d bytes", net.MessagesSent, net.BytesSent)
	}
}

func TestPanicsOnBadRank(t *testing.T) {
	eng := des.New()
	net := New(eng, NS83820, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range rank did not panic")
		}
	}()
	net.Send(0, 5, 0, 0, nil)
}

func TestButterflyNonPow2Panics(t *testing.T) {
	eng := des.New()
	net := New(eng, NS83820, 3)
	caught := false
	eng.Spawn("h", func(p *des.Proc) {
		defer func() {
			if recover() != nil {
				caught = true
			}
		}()
		net.Butterfly(p, 0, 3, 0, 8, nil, nil)
	})
	eng.RunAll()
	if !caught {
		t.Error("non-power-of-two butterfly did not panic")
	}
}

func TestDeterministicTraffic(t *testing.T) {
	run := func() []float64 {
		eng := des.New()
		net := New(eng, Intel82540EM, 4)
		var times []float64
		for r := 0; r < 4; r++ {
			r := r
			eng.Spawn("h", func(p *des.Proc) {
				for k := 0; k < 5; k++ {
					net.Butterfly(p, r, 4, k*100, 64, nil, nil)
					times = append(times, p.Now())
				}
			})
		}
		eng.RunAll()
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic network at %d", i)
		}
	}
}

func TestKernelBypassProfile(t *testing.T) {
	// The software option sits between raw TCP/IP and a NIC swap: same
	// wire, lower software latency.
	if err := KernelBypass.Validate(); err != nil {
		t.Fatal(err)
	}
	if !(KernelBypass.RTT < NS83820.RTT) {
		t.Error("kernel bypass should cut the NS83820 latency")
	}
	if !(KernelBypass.RTT > Intel82540EM.RTT) {
		t.Error("kernel bypass on old hardware should not beat the tuned NIC")
	}
}

// Regression: a dequeue must zero the vacated ring slot — otherwise a
// duplicate of the popped Message, payload reference included, stays live
// in the mailbox's backing array, pinning delivered payloads for the life
// of the run.
func TestRecvZeroesVacatedSlot(t *testing.T) {
	eng := des.New()
	net := New(eng, NIC{RTT: 10e-6, Bandwidth: 1e9}, 2)
	eng.Spawn("recv", func(p *des.Proc) {
		p.Sleep(1e-3) // let both messages land in the mailbox first
		bi := net.findBox(1, 0)
		if bi < 0 || net.boxes[bi].n != 2 {
			t.Errorf("mailbox missing or wrong depth before recv (bi=%d)", bi)
			return
		}
		ring := net.boxes[bi].ring // backing array before the pop
		slot := net.boxes[bi].head // slot the pop will vacate
		net.Recv(p, 1, 0)
		if ring[slot] != (Message{}) {
			t.Errorf("vacated slot still holds %+v, want zero Message", ring[slot])
		}
	})
	eng.Spawn("send", func(p *des.Proc) {
		net.Send(0, 1, 0, 100, "first")
		net.Send(0, 1, 0, 100, "second")
	})
	eng.RunAll()
}

// Delivery unpins payloads from the in-flight slab, and drained mailboxes
// are recycled: a long run with round-strided tags (the parallel drivers'
// scheme) must not grow the network's state per round.
func TestSlabReuseBoundedGrowth(t *testing.T) {
	eng := des.New()
	net := New(eng, NIC{RTT: 10e-6, Bandwidth: 1e9}, 2)
	const rounds = 500
	eng.Spawn("rank0", func(p *des.Proc) {
		for r := 0; r < rounds; r++ {
			tag := r * 4096 // fresh tag every round, like the drivers
			net.Send(0, 1, tag, 64, nil)
			net.Recv(p, 0, tag+1)
		}
	})
	eng.Spawn("rank1", func(p *des.Proc) {
		for r := 0; r < rounds; r++ {
			tag := r * 4096
			net.Recv(p, 1, tag)
			net.Send(1, 0, tag+1, 64, nil)
		}
	})
	eng.RunAll()
	if eng.Live() != 0 {
		t.Fatalf("%d processes deadlocked", eng.Live())
	}
	if len(net.boxes) > 8 {
		t.Errorf("mailbox slab grew to %d slots over %d rounds, want bounded reuse", len(net.boxes), rounds)
	}
	if len(net.pend) > 8 {
		t.Errorf("in-flight slab grew to %d slots over %d rounds, want bounded reuse", len(net.pend), rounds)
	}
	for i := range net.pend {
		if net.pend[i].msg != (Message{}) {
			t.Errorf("recycled in-flight slot %d still pins %+v", i, net.pend[i].msg)
		}
	}
}

type obsLog struct {
	sends []struct {
		from, to, tag, bytes int
		queued               float64
	}
	blocks []struct {
		to, tag     int
		from, until float64
	}
}

func (o *obsLog) MessageSent(from, to, tag, bytes int, queued float64) {
	o.sends = append(o.sends, struct {
		from, to, tag, bytes int
		queued               float64
	}{from, to, tag, bytes, queued})
}

func (o *obsLog) RecvBlocked(to, tag int, from, until float64) {
	o.blocks = append(o.blocks, struct {
		to, tag     int
		from, until float64
	}{to, tag, from, until})
}

func TestObserverMessageSentQueueing(t *testing.T) {
	eng := des.New()
	nic := NIC{RTT: 0, Bandwidth: 1e6} // 1 s per MB
	net := New(eng, nic, 3)
	obs := &obsLog{}
	net.Observe(obs)
	eng.Spawn("r1", func(p *des.Proc) { net.Recv(p, 1, 0) })
	eng.Spawn("r2", func(p *des.Proc) { net.Recv(p, 2, 0) })
	eng.Spawn("send", func(p *des.Proc) {
		net.Send(0, 1, 0, 1_000_000, nil)
		net.Send(0, 2, 0, 1_000_000, nil) // queued 1 s behind the first
	})
	eng.RunAll()
	if len(obs.sends) != 2 {
		t.Fatalf("%d send events, want 2", len(obs.sends))
	}
	if obs.sends[0].queued != 0 {
		t.Errorf("first send queued %v, want 0", obs.sends[0].queued)
	}
	if math.Abs(obs.sends[1].queued-1.0) > 1e-9 {
		t.Errorf("second send queued %v, want 1 s", obs.sends[1].queued)
	}
	if obs.sends[1].from != 0 || obs.sends[1].to != 2 || obs.sends[1].bytes != 1_000_000 {
		t.Errorf("second send event = %+v", obs.sends[1])
	}
}

func TestObserverRecvBlockedInterval(t *testing.T) {
	eng := des.New()
	net := New(eng, NS83820, 2)
	obs := &obsLog{}
	net.Observe(obs)
	eng.Spawn("recv", func(p *des.Proc) {
		p.Sleep(1e-4)
		net.Recv(p, 0, 1) // blocks from 1e-4 until delivery
		net.Recv(p, 0, 2) // already in the mailbox: no block event
	})
	eng.Spawn("send", func(p *des.Proc) {
		p.Sleep(1e-3)
		net.Send(1, 0, 1, 0, nil)
		net.Send(1, 0, 2, 0, nil)
	})
	eng.RunAll()
	if len(obs.blocks) != 1 {
		t.Fatalf("%d block events, want 1 (second recv was immediate)", len(obs.blocks))
	}
	b := obs.blocks[0]
	want := 1e-3 + NS83820.RTT/2
	if b.to != 0 || b.tag != 1 || math.Abs(b.from-1e-4) > 1e-12 || math.Abs(b.until-want) > 1e-12 {
		t.Errorf("block event = %+v, want to=0 tag=1 [1e-4, %v]", b, want)
	}
}
